# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench harness harness-full pmpool examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One testing.B target per paper figure/table.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure (default scale, ~10 minutes).
harness:
	$(GO) run ./cmd/prdmabench -all

# The paper's exact workload sizes (long).
harness-full:
	$(GO) run ./cmd/prdmabench -all -scale full

# Remote PM pool figures: the alloc/write/free grid and the disaggregated
# shuffle (quick scale).
pmpool:
	$(GO) run ./cmd/prdmabench -pmpool -scale quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/pagerank
	$(GO) run ./examples/pagerank -pmpool
	$(GO) run ./examples/failover
	$(GO) run ./examples/replication

clean:
	$(GO) clean ./...
