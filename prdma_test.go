package prdma_test

import (
	"bytes"
	"testing"
	"time"

	"prdma"
)

func TestClusterQuickstartFlow(t *testing.T) {
	c, err := prdma.NewCluster(prdma.DefaultParams(), 1, 128, 1024)
	if err != nil {
		t.Fatal(err)
	}
	client := c.Connect(prdma.WFlushRPC, 0)
	payload := bytes.Repeat([]byte{7}, 1024)
	var durable, done prdma.Time
	c.Go("app", func(p *prdma.Proc) {
		r, err := client.Call(p, &prdma.Request{Op: prdma.OpWrite, Key: 1, Size: 1024, Payload: payload})
		if err != nil {
			t.Error(err)
			return
		}
		durable = r.DurableAt
		done = r.Done.Wait(p)
		rd, err := client.Call(p, &prdma.Request{Op: prdma.OpRead, Key: 1, Size: 1024, Payload: []byte{}})
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(rd.Data, payload) {
			t.Error("read-back mismatch")
		}
	})
	c.Run()
	if durable == 0 || done < durable {
		t.Fatalf("durable=%v done=%v", durable, done)
	}
}

func TestClusterMultiClient(t *testing.T) {
	c, err := prdma.NewCluster(prdma.DefaultParams(), 3, 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	doneOps := 0
	for i := 0; i < 3; i++ {
		client := c.Connect(prdma.FaRM, i)
		c.Go("app", func(p *prdma.Proc) {
			for j := 0; j < 10; j++ {
				if _, err := client.Call(p, &prdma.Request{Op: prdma.OpWrite, Key: uint64(j), Size: 256}); err != nil {
					t.Error(err)
					return
				}
				doneOps++
			}
		})
	}
	c.Run()
	if doneOps != 30 {
		t.Fatalf("completed %d of 30", doneOps)
	}
}

func TestKVAndYCSBThroughFacade(t *testing.T) {
	c, err := prdma.NewCluster(prdma.DefaultParams(), 1, 500, 1024)
	if err != nil {
		t.Fatal(err)
	}
	kv := c.OpenKV(c.Connect(prdma.SFlushRPC, 0), 0, 500, 1024)
	cfg := prdma.DefaultYCSBConfig()
	cfg.Records = 500
	cfg.ValueSize = 1024
	gen := prdma.NewYCSB(prdma.YCSBA, cfg)
	var res prdma.KVResult
	c.Go("ycsb", func(p *prdma.Proc) {
		var err error
		res, err = kv.Run(p, gen.Next, 200)
		if err != nil {
			t.Error(err)
		}
	})
	c.Run()
	if res.Ops != 200 || res.Latency.Mean() <= 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestGraphThroughFacade(t *testing.T) {
	g := prdma.GenerateGraph(prdma.GraphDataset{Name: "t", Nodes: 200, Edges: 800}, 1)
	if g.Nodes() != 200 || g.EdgeCount() != 800 {
		t.Fatal("graph sizes wrong")
	}
	c, _ := prdma.NewCluster(prdma.DefaultParams(), 1, 16, 4096)
	pr := &prdma.PageRank{G: g, Client: c.Connect(prdma.WRFlushRPC, 0), Iterations: 2}
	c.Go("pr", func(p *prdma.Proc) {
		if err := pr.Run(p, c.Clients[0]); err != nil {
			t.Error(err)
		}
	})
	c.Run()
	if len(pr.Ranks) != 200 {
		t.Fatal("no ranks computed")
	}
}

func TestFailureThroughFacade(t *testing.T) {
	p := prdma.DefaultParams()
	p.RPC.ProcessingTime = 10 * time.Microsecond
	c, _ := prdma.NewCluster(p, 1, 128, 1024)
	client := c.Connect(prdma.WFlushRPC, 0).(prdma.Recoverable)
	fp := prdma.FailureParams{
		Restart: 2 * time.Millisecond, Retransfer: time.Millisecond,
		Crashes: 2, OpsPerWindow: 60, Pipeline: 4,
	}
	d := c.NewFailureDriver(client, fp)
	payload := make([]byte, 1024)
	var m prdma.FailureMeasurement
	c.Go("driver", func(pp *prdma.Proc) {
		m = d.Run(pp, func(i int) *prdma.Request {
			return &prdma.Request{Op: prdma.OpWrite, Key: uint64(i % 64), Size: 1024, Payload: payload}
		})
	})
	c.Run()
	if m.Crashes != 2 || m.Replayed == 0 {
		t.Fatalf("measurement: %+v", m)
	}
}

func TestDeterministicClusters(t *testing.T) {
	run := func() prdma.Time {
		c, _ := prdma.NewCluster(prdma.DefaultParams(), 1, 64, 512)
		client := c.Connect(prdma.DaRPC, 0)
		c.Go("app", func(p *prdma.Proc) {
			for j := 0; j < 50; j++ {
				if _, err := client.Call(p, &prdma.Request{Op: prdma.OpWrite, Key: uint64(j % 64), Size: 512}); err != nil {
					t.Error(err)
				}
			}
		})
		c.Run()
		return c.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestReplicaClusterThroughFacade(t *testing.T) {
	p := prdma.DefaultParams()
	rc, err := prdma.NewReplicaCluster(p, 3, 64, 1024)
	if err != nil {
		t.Fatal(err)
	}
	client, err := rc.ConnectReplicated(prdma.WFlushRPC, prdma.WaitQuorum)
	if err != nil {
		t.Fatal(err)
	}
	rc.Go("driver", func(pp *prdma.Proc) {
		at, acked, err := client.Write(pp, &prdma.Request{Op: prdma.OpWrite, Key: 3, Size: 1024})
		if err != nil {
			t.Error(err)
			return
		}
		if at == 0 || acked < 2 {
			t.Errorf("at=%v acked=%d", at, acked)
		}
	})
	rc.Run()
}

func TestReplicaChainThroughFacade(t *testing.T) {
	p := prdma.DefaultParams()
	p.NIC.EmulateFlush = false
	rc, err := prdma.NewReplicaCluster(p, 2, 16, 512)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := rc.ConnectChain()
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x42}, 512)
	rc.Go("driver", func(pp *prdma.Proc) {
		ch.Write(pp, 4096, 512, payload)
		for i, s := range rc.Servers {
			if !bytes.Equal(s.PM.ReadBytes(4096, 512), payload) {
				t.Errorf("replica %d missing data at chain ACK", i)
			}
		}
	})
	rc.Run()
}
