package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"prdma/internal/scenario"
)

// matrixOptions selects which cells `prdmabench -matrix` sweeps.
type matrixOptions struct {
	seed int64
	// points overrides the crash points per cell (0 = matrix default).
	points int
	// shards/replicas reshape the deployment when set (0 = matrix default).
	shards, replicas int
	// faults is a comma-separated adversary list ("" = every builtin);
	// workloads a YCSB letter set like "ABF" ("" = A–F).
	faults    string
	workloads string
	// mutant seeds a known bug class into every cell; the run is then
	// expected to exit non-zero (the detection check).
	mutant   string
	parallel int
	jsonOut  string
}

// buildMatrix resolves the options into a validated MatrixSpec.
func buildMatrix(o matrixOptions) (scenario.MatrixSpec, error) {
	m := scenario.DefaultMatrixSpec(o.seed)
	if o.points > 0 {
		m.Points = o.points
	}
	if o.shards > 0 {
		m.Shards = o.shards
	}
	if o.replicas > 0 {
		m.Replicas = o.replicas
	}
	if o.faults != "" {
		m.Faults = m.Faults[:0]
		for _, name := range strings.Split(o.faults, ",") {
			f, err := scenario.FaultByName(strings.TrimSpace(name))
			if err != nil {
				return m, err
			}
			m.Faults = append(m.Faults, f)
		}
	}
	if o.workloads != "" {
		ws, err := scenario.ParseWorkloads(o.workloads)
		if err != nil {
			return m, err
		}
		m.Workloads = ws
	}
	m.Mutant = o.mutant
	return m, m.Validate()
}

// runMatrix sweeps every cell across a worker pool and prints the figure:
// one row per (fault, workload) with the cell's crash-free performance,
// the adversary's interference counters, the controller work across the
// crash points, and the invariant verdict. Rows print in deterministic
// matrix order regardless of worker scheduling; output is byte-identical
// for a fixed seed. Returns the number of cells with violations.
func runMatrix(w io.Writer, m scenario.MatrixSpec, parallel int) ([]scenario.CellResult, int) {
	cells := m.Cells()
	workers := parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	results := make([]scenario.CellResult, len(cells))
	var wg sync.WaitGroup
	next := make(chan int)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				results[idx] = m.RunCell(cells[idx])
			}
		}()
	}
	for idx := range cells {
		next <- idx
	}
	close(next)
	wg.Wait()

	fmt.Fprintf(w, "adversarial matrix: %d faults x %d workloads, %dx%d cluster, seed=%d, %d crash points/cell",
		len(m.Faults), len(m.Workloads), m.Shards, m.Replicas, m.Seed, m.Points)
	if m.Mutant != "" {
		fmt.Fprintf(w, ", mutant=%s", m.Mutant)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-15s %-3s %5s %8s %8s %8s %8s %6s %5s %6s %6s %6s %5s %7s %7s %s\n",
		"fault", "wl", "ops", "kops", "p50us", "p99us", "resends", "drops", "dup", "reord",
		"stale", "retry", "fo", "replay", "ship", "verdict")
	bad := 0
	for _, r := range results {
		fmt.Fprintf(w, "%-15s %-3s %5d %8.1f %8.1f %8.1f %8d %6d %5d %6d %6d %6d %5d %7d %7d %s\n",
			r.Fault, r.Workload, r.Ops, r.KOPS, r.P50US, r.P99US, r.Resends, r.FaultDrops,
			r.Duplicated, r.Reordered, r.StaleDrops, r.Retries, r.Failovers, r.Replayed,
			r.Shipped, r.Verdict())
		if r.Violations == 0 {
			continue
		}
		bad++
		fmt.Fprintf(w, "  VIOLATION %s\n", r.First)
		fmt.Fprintf(w, "  minimal repro: %s\n", r.Repro)
	}
	return results, bad
}

// matrixReport is the -json document for a matrix run (the BENCH artifact).
type matrixReport struct {
	Seed        int64                 `json:"seed"`
	Shards      int                   `json:"shards"`
	Replicas    int                   `json:"replicas"`
	Points      int                   `json:"points"`
	Mutant      string                `json:"mutant,omitempty"`
	TotalWallMS float64               `json:"total_wall_ms"`
	Cells       []scenario.CellResult `json:"cells"`
}

// matrixMain is the -matrix entry point; it exits non-zero when any cell
// violates the §4.2 invariants (which a -mutant run is expected to).
func matrixMain(o matrixOptions) {
	m, err := buildMatrix(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	start := time.Now()
	results, bad := runMatrix(os.Stdout, m, o.parallel)
	wall := time.Since(start)
	fmt.Fprintf(os.Stderr, "[matrix done in %v]\n", wall.Round(time.Millisecond))
	if o.jsonOut != "" {
		rep := matrixReport{
			Seed: m.Seed, Shards: m.Shards, Replicas: m.Replicas,
			Points: m.Points, Mutant: m.Mutant,
			TotalWallMS: float64(wall.Nanoseconds()) / 1e6,
			Cells:       results,
		}
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(o.jsonOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "matrix: %d cell(s) violated the durability invariants\n", bad)
		os.Exit(1)
	}
}
