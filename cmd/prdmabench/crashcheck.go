package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"prdma/internal/crashcheck"
	"prdma/internal/rpc"
)

// crashcheckOptions selects which sweeps `prdmabench -crashcheck` runs.
type crashcheckOptions struct {
	family   string // substring match against the family name, "" = all
	mix      string // exact mix name, "" = all
	points   int    // event-boundary crash points per (family, mix) cell
	torn     int    // additional mid-persist (torn-write) points per cell
	seed     int64
	parallel int
	// ackBug re-introduces the §2.4 premature-ack bug (flush ACK at DMA
	// placement instead of the durability horizon) so the sweep's catch —
	// lost acked writes with a minimal reproduction — can be demonstrated.
	ackBug bool
	// objSize overrides the per-request object size (0 = harness default).
	// Large objects widen the placement→durability gap the ack bug exposes.
	objSize int
}

// runCrashcheck sweeps crash points over every selected durable-RPC family
// and traffic mix, prints one summary line per cell, and — on any invariant
// violation — prints the violations plus the minimal reproduction recipe
// (seed + crash point). Returns the number of cells with violations.
func runCrashcheck(w io.Writer, o crashcheckOptions) int {
	type cell struct {
		kind rpc.Kind
		mix  crashcheck.Mix
	}
	var cells []cell
	for _, kind := range rpc.DurableKinds {
		if o.family != "" && !strings.Contains(
			strings.ToLower(kind.String()), strings.ToLower(o.family)) {
			continue
		}
		for _, mix := range crashcheck.Mixes {
			if o.mix != "" && mix.String() != o.mix {
				continue
			}
			cells = append(cells, cell{kind, mix})
		}
	}
	if len(cells) == 0 {
		fmt.Fprintf(os.Stderr, "crashcheck: no family matches -family %q / -mix %q\n", o.family, o.mix)
		os.Exit(2)
	}

	workers := o.parallel
	if workers <= 0 || workers > len(cells) {
		workers = len(cells)
	}
	results := make([]crashcheck.Result, len(cells))
	var wg sync.WaitGroup
	next := make(chan int)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				cfg := crashcheck.DefaultConfig(cells[idx].kind, cells[idx].mix, o.seed)
				cfg.Points = o.points
				cfg.TornPoints = o.torn
				cfg.AckBeforeDurable = o.ackBug
				if o.objSize > 0 {
					cfg.ObjSize = o.objSize
				}
				results[idx] = crashcheck.Sweep(cfg)
			}
		}()
	}
	for idx := range cells {
		next <- idx
	}
	close(next)
	wg.Wait()

	bad := 0
	for _, res := range results {
		fmt.Fprintf(w, "%-13v %-9v seed=%-4d points=%-4d events=%-6d replays=%-5d violations=%d\n",
			res.Kind, res.Mix, res.Seed, res.Points, res.Events, res.Replayed, res.ViolationCount)
		if res.ViolationCount == 0 {
			continue
		}
		bad++
		for _, v := range res.Violations {
			fmt.Fprintf(w, "  VIOLATION %v\n", v)
		}
		if res.ViolationCount > len(res.Violations) {
			fmt.Fprintf(w, "  ... %d further violations truncated\n", res.ViolationCount-len(res.Violations))
		}
		if min := res.Minimal(); min != nil {
			cmd := fmt.Sprintf("-crashcheck -family %s -mix %s -seed %d -points %d -torn %d",
				strings.TrimSuffix(min.Kind.String(), "-RPC"), min.Mix, min.Seed, o.points, o.torn)
			if o.ackBug {
				cmd += " -ackbug"
			}
			if o.objSize > 0 {
				cmd += fmt.Sprintf(" -objsize %d", o.objSize)
			}
			fmt.Fprintf(w, "  minimal repro: %s  crash at {%v} (t=%v)\n", cmd, min.Point, min.At)
		}
	}
	return bad
}

// clusterCrashcheckMain is the `-crashcheck -cluster` entry point: a
// crash-point sweep over the cluster failover/resync path. One replica
// crashes at every sampled event boundary (periodically a second replica of
// the same shard fails during the first resync); no acknowledged write may
// be lost and live replicas must converge byte-identically. Exits non-zero
// on any violation.
func clusterCrashcheckMain(seed int64, points, shards, replicas, objSize int) {
	start := time.Now()
	cfg := crashcheck.DefaultClusterConfig(seed)
	if points > 0 {
		cfg.Points = points
	}
	cfg.Shards = shards
	cfg.Replicas = replicas
	if objSize > 0 {
		cfg.ObjSize = objSize
	}
	res := crashcheck.ClusterSweep(cfg)
	fmt.Printf("cluster %dx%d seed=%-4d points=%-4d events=%-6d failovers=%-4d resyncs=%-4d replays=%-5d shipped=%-5d violations=%d\n",
		cfg.Shards, cfg.Replicas, res.Seed, res.Points, res.Events,
		res.Failovers, res.Resyncs, res.Replayed, res.Shipped, res.ViolationCount)
	for _, v := range res.Violations {
		fmt.Printf("  VIOLATION %v\n", v)
	}
	if res.ViolationCount > len(res.Violations) {
		fmt.Printf("  ... %d further violations truncated\n", res.ViolationCount-len(res.Violations))
	}
	if min := res.Minimal(); min != nil {
		fmt.Printf("  minimal repro: -crashcheck -cluster -seed %d -points %d -shards %d -replicas %d  crash at {%v} (t=%v)\n",
			min.Seed, cfg.Points, cfg.Shards, cfg.Replicas, min.Point, min.At)
	}
	fmt.Fprintf(os.Stderr, "[cluster crashcheck done in %v]\n", time.Since(start).Round(time.Millisecond))
	if res.ViolationCount > 0 {
		fmt.Fprintf(os.Stderr, "crashcheck: cluster sweep violated failover invariants\n")
		os.Exit(1)
	}
}

// partitionedCrashcheckMain is the `-crashcheck -cluster -simpar N` entry
// point: the window-quiesce crash sweep over the partitioned (multi-kernel)
// deployment. Crash points are lookahead-window indices, which are
// worker-count-stable, so the minimal repro it prints replays at any
// -simpar — including 1.
func partitionedCrashcheckMain(seed int64, points, shards, replicas, objSize, workers int, mutant string) {
	start := time.Now()
	cfg := crashcheck.DefaultPartitionedConfig(seed)
	if points > 0 {
		cfg.Points = points
	}
	if shards > 0 {
		cfg.Shards = shards
	}
	if replicas > 0 {
		cfg.Replicas = replicas
	}
	if objSize > 0 {
		cfg.ObjSize = objSize
	}
	if workers > 0 {
		cfg.Workers = workers
	}
	cfg.Mutant = mutant
	res := crashcheck.PartitionedSweep(cfg)
	fmt.Printf("partitioned %dx%d seed=%-4d workers=%d points=%-4d windows=%-6d failovers=%-4d resyncs=%-4d replays=%-5d shipped=%-5d pmfull=%-4d violations=%d\n",
		cfg.Shards, cfg.Replicas, res.Seed, res.Workers, res.Points, res.Windows,
		res.Failovers, res.Resyncs, res.Replayed, res.Shipped, res.PMFull, res.ViolationCount)
	for _, v := range res.Violations {
		fmt.Printf("  VIOLATION %v\n", v)
	}
	if res.ViolationCount > len(res.Violations) {
		fmt.Printf("  ... %d further violations truncated\n", res.ViolationCount-len(res.Violations))
	}
	if min := res.Minimal(); min != nil {
		fmt.Printf("  minimal repro: -crashcheck -cluster -simpar 1 -seed %d -points %d -shards %d -replicas %d  crash at window %d (t=%v)\n",
			min.Seed, cfg.Points, cfg.Shards, cfg.Replicas, min.Point.Event, min.At)
	}
	fmt.Fprintf(os.Stderr, "[partitioned crashcheck done in %v]\n", time.Since(start).Round(time.Millisecond))
	if res.ViolationCount > 0 {
		fmt.Fprintf(os.Stderr, "crashcheck: partitioned sweep violated failover invariants\n")
		os.Exit(1)
	}
}

// pmpoolCrashcheckMain is the `-crashcheck -pmpool` entry point: a
// crash-point sweep over the remote PM pool's alloc/free/write/lease path.
// Every point asserts the pool's crash contract — no slot leaks, no double
// seating, no acked free resurrects, no acked write loses its bytes, and
// orphaned allocations are bounded by lease reclamation. Exits non-zero on
// any violation; -mutant leak seeds the known bug the sweep must catch.
func pmpoolCrashcheckMain(seed int64, points, torn int, family, mutant string) {
	start := time.Now()
	kind := rpc.WFlushRPC
	if family != "" {
		found := false
		for _, k := range rpc.DurableKinds {
			if strings.Contains(strings.ToLower(k.String()), strings.ToLower(family)) {
				kind, found = k, true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "crashcheck: no durable family matches -family %q\n", family)
			os.Exit(2)
		}
	}
	cfg := crashcheck.DefaultPMPoolConfig(kind, seed)
	if points > 0 {
		cfg.Points = points
	}
	if torn >= 0 {
		cfg.TornPoints = torn
	}
	cfg.Mutant = mutant
	res := crashcheck.PMPoolSweep(cfg)
	fmt.Printf("pmpool %-13v seed=%-4d points=%-4d events=%-6d replays=%-5d violations=%d\n",
		res.Kind, res.Seed, res.Points, res.Events, res.Replayed, res.ViolationCount)
	for _, v := range res.Violations {
		fmt.Printf("  VIOLATION %v\n", v)
	}
	if res.ViolationCount > len(res.Violations) {
		fmt.Printf("  ... %d further violations truncated\n", res.ViolationCount-len(res.Violations))
	}
	if min := res.Minimal(); min != nil {
		cmd := fmt.Sprintf("-crashcheck -pmpool -family %s -seed %d -points %d -torn %d",
			strings.TrimSuffix(min.Kind.String(), "-RPC"), min.Seed, cfg.Points, cfg.TornPoints)
		if mutant != "" {
			cmd += " -mutant " + mutant
		}
		fmt.Printf("  minimal repro: %s  crash at {%v} (t=%v)\n", cmd, min.Point, min.At)
	}
	fmt.Fprintf(os.Stderr, "[pmpool crashcheck done in %v]\n", time.Since(start).Round(time.Millisecond))
	if res.ViolationCount > 0 {
		fmt.Fprintf(os.Stderr, "crashcheck: pmpool sweep violated pool crash invariants\n")
		os.Exit(1)
	}
}

// crashcheckMain is the -crashcheck entry point; it exits non-zero when
// any sweep finds a violation.
func crashcheckMain(o crashcheckOptions) {
	start := time.Now()
	bad := runCrashcheck(os.Stdout, o)
	fmt.Fprintf(os.Stderr, "[crashcheck done in %v]\n", time.Since(start).Round(time.Millisecond))
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "crashcheck: %d sweep(s) violated crash-consistency invariants\n", bad)
		os.Exit(1)
	}
}
