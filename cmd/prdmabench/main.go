// Command prdmabench regenerates the paper's tables and figures on the
// simulated testbed. Each figure prints the same rows/series the paper
// reports, with a note recalling the published expectation.
//
// Usage:
//
//	prdmabench -fig 8          # one figure (8..20)
//	prdmabench -table 2        # Table 2
//	prdmabench -ablation all   # design-choice ablations
//	prdmabench -all            # everything
//	prdmabench -all -scale full    # the paper's exact workload sizes
//	prdmabench -all -parallel 1    # force sequential cells (default: one worker per CPU)
//	prdmabench -fig 8 -cpuprofile cpu.pprof   # profile the harness itself
//	prdmabench -crashcheck         # crash-point sweep over every durable RPC family
//	prdmabench -crashcheck -family WFlush -points 50 -torn 10   # short smoke sweep
//	prdmabench -crashcheck -ackbug -objsize 16384   # demo: catch the §2.4 premature-ack bug (exit 1)
//	prdmabench -cluster            # sharded replicated KV: failover figure (4 shards x 3 replicas)
//	prdmabench -cluster -shards 8 -replicas 5 -scale full       # bigger deployment
//	prdmabench -crashcheck -cluster -points 20   # crash-point sweep over the cluster failover/resync path
//	prdmabench -crashcheck -cluster -simpar 4 -points 12   # window-barrier sweep on the partitioned engine
//	prdmabench -crashcheck -cluster -simpar 2 -mutant ackbug   # partitioned mutant-detection check (expect exit 1)
//	prdmabench -matrix             # adversarial fault x YCSB A-F matrix, crashcheck asserted per cell
//	prdmabench -matrix -faults partition,gray -workloads AB -points 6   # reduced cell set
//	prdmabench -matrix -mutant ackbug   # mutant-detection check: expect exit 1
//	prdmabench -parscale           # parallel-kernel scaling ladder + 1M-client open-loop smoke
//	prdmabench -parscale -simpar 4 -logclients 1000000 -json BENCH_PR7.json
//	prdmabench -pmpool             # remote PM pool: alloc grid + disaggregated shuffle figures
//	prdmabench -crashcheck -pmpool -points 60 -torn 12   # pool crash-point sweep (alloc/free/write invariants)
//	prdmabench -crashcheck -pmpool -mutant leak   # seeded leak bug: the sweep must catch it (exit 1)
//
// -simpar selects the worker count for partitioned (multi-kernel) drivers.
// With -crashcheck -cluster, -simpar N (N>0) switches the sweep to the
// partitioned deployment: crashes land at lookahead-window barriers, whose
// indices are worker-count-stable, so the minimal repro replays at -simpar 1.
// The legacy single-host figure drivers still run the serial kernel and
// accept -simpar as a no-op so harnesses can pass it uniformly.
//
// Experiment cells are independent deployments, so drivers fan them across
// a worker pool (-parallel). Output is byte-identical at any setting; only
// wall time changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"prdma/internal/bench"
)

// validateModes rejects top-level mode combinations instead of silently
// running one and ignoring the other: every pair of driver modes is
// mutually exclusive, except -crashcheck with -cluster or -pmpool, which
// select *which* crash sweep runs.
func validateModes(flagSet map[string]bool) error {
	conflicts := [][2]string{
		{"pmpool", "matrix"}, {"pmpool", "parscale"}, {"pmpool", "cluster"},
		{"pmpool", "fig"}, {"pmpool", "table"}, {"pmpool", "ablation"}, {"pmpool", "all"},
		{"matrix", "crashcheck"}, {"matrix", "parscale"}, {"matrix", "cluster"},
		{"matrix", "fig"}, {"matrix", "table"}, {"matrix", "ablation"}, {"matrix", "all"},
		{"parscale", "crashcheck"}, {"parscale", "cluster"},
		{"parscale", "fig"}, {"parscale", "table"}, {"parscale", "ablation"}, {"parscale", "all"},
		{"crashcheck", "fig"}, {"crashcheck", "table"}, {"crashcheck", "ablation"}, {"crashcheck", "all"},
	}
	for _, c := range conflicts {
		if flagSet[c[0]] && flagSet[c[1]] {
			return fmt.Errorf("-%s and -%s are mutually exclusive (run them separately)", c[0], c[1])
		}
	}
	return nil
}

func main() {
	fig := flag.Int("fig", 0, "figure number to reproduce (7..20; 7 = the §4.4 case study)")
	table := flag.Int("table", 0, "table number to reproduce (2)")
	ablation := flag.String("ablation", "", "ablation to run: flush|ddio|workers|throttle|replication|table1|all")
	all := flag.Bool("all", false, "run every experiment")
	scale := flag.String("scale", "default", "workload scale: quick|default|full")
	ops := flag.Int("ops", 0, "override operations per configuration")
	seed := flag.Uint64("seed", 1, "random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	parallel := flag.Int("parallel", -1, "concurrent experiment cells per figure (1 = sequential, -1 = one per CPU); tables are identical at any setting")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	jsonOut := flag.String("json", "", "write per-figure wall times and ns-per-simulated-op to this JSON file")
	ccheck := flag.Bool("crashcheck", false, "sweep crash points over the durable-RPC recovery path and check invariants")
	family := flag.String("family", "", "crashcheck: restrict to one RPC family (substring, e.g. WFlush or S-RFlush)")
	mix := flag.String("mix", "", "crashcheck: restrict to one traffic mix (writes|readwrite|batch)")
	points := flag.Int("points", 300, "crashcheck: event-boundary crash points per family/mix cell")
	torn := flag.Int("torn", 40, "crashcheck: additional mid-persist (torn-write) crash points per cell")
	ackbug := flag.Bool("ackbug", false, "crashcheck: re-introduce the §2.4 premature-ack bug to demonstrate the sweep catching it (expect exit 1)")
	objsize := flag.Int("objsize", 0, "crashcheck: per-request object bytes (0 = harness default)")
	clusterRun := flag.Bool("cluster", false, "run the sharded replicated-KV failover figure (or, with -crashcheck, the cluster crash-point sweep)")
	shards := flag.Int("shards", 4, "cluster: number of shard groups")
	replicas := flag.Int("replicas", 3, "cluster: replication factor per shard")
	simpar := flag.Int("simpar", 0, "parallel simulation workers for partitioned drivers (0 = serial legacy kernel; with -crashcheck -cluster, N>0 runs the window-barrier partitioned crash sweep)")
	parscale := flag.Bool("parscale", false, "run the parallel-kernel scaling ladder (workers 1/2/4/8 over the 8-shard partitioned cluster) plus the open-loop population smoke; write BENCH_PR7-style JSON with -json")
	logclients := flag.Int("logclients", 1_000_000, "parscale: logical client population for the open-loop smoke")
	matrixRun := flag.Bool("matrix", false, "run the adversarial fault x YCSB workload matrix (cluster crash-point sweep per cell)")
	faults := flag.String("faults", "", "matrix: comma-separated adversary names (default: every builtin; see -matrix -faults help)")
	workloads := flag.String("workloads", "", "matrix: YCSB workload letters, e.g. ABF (default: A-F)")
	mutant := flag.String("mutant", "", "matrix / partitioned / pmpool crashcheck: seed a known bug class (ackbug|resurrect|leak); the sweep must then fail (exit 1)")
	pmpoolRun := flag.Bool("pmpool", false, "run the remote PM pool figures (or, with -crashcheck, the pool crash-point sweep)")
	flag.Parse()
	flagSet := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { flagSet[f.Name] = true })
	pointsSet := flagSet["points"]
	if err := validateModes(flagSet); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *matrixRun {
		o := matrixOptions{
			seed:      int64(*seed),
			faults:    *faults,
			workloads: *workloads,
			mutant:    *mutant,
			parallel:  *parallel,
			jsonOut:   *jsonOut,
		}
		if pointsSet {
			o.points = *points
		}
		if flagSet["shards"] {
			o.shards = *shards
		}
		if flagSet["replicas"] {
			o.replicas = *replicas
		}
		matrixMain(o)
		if *memprofile != "" {
			if err := writeHeapProfile(*memprofile); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	if *ccheck && *pmpoolRun {
		pts, trn := 0, -1
		if pointsSet {
			pts = *points
		}
		if flagSet["torn"] {
			trn = *torn
		}
		pmpoolCrashcheckMain(int64(*seed), pts, trn, *family, *mutant)
		if *memprofile != "" {
			if err := writeHeapProfile(*memprofile); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	if *ccheck && *clusterRun {
		pts := 0
		if pointsSet {
			pts = *points
		}
		if *simpar > 0 {
			partitionedCrashcheckMain(int64(*seed), pts, *shards, *replicas, *objsize, *simpar, *mutant)
		} else {
			clusterCrashcheckMain(int64(*seed), pts, *shards, *replicas, *objsize)
		}
		if *memprofile != "" {
			if err := writeHeapProfile(*memprofile); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	if *ccheck {
		crashcheckMain(crashcheckOptions{
			family:   *family,
			mix:      *mix,
			points:   *points,
			torn:     *torn,
			seed:     int64(*seed),
			parallel: *parallel,
			ackBug:   *ackbug,
			objSize:  *objsize,
		})
		// Reached only on a clean sweep (violations exit nonzero above).
		if *memprofile != "" {
			if err := writeHeapProfile(*memprofile); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	var o bench.Options
	switch *scale {
	case "quick":
		o = bench.Quick()
	case "full":
		o = bench.Full()
	case "default":
		o = bench.Default()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *ops > 0 {
		o.Ops = *ops
	}
	o.Seed = *seed
	o.Parallel = *parallel

	if *parscale {
		parscaleMain(o, *scale, *simpar, *logclients, *jsonOut, *csv)
		if *memprofile != "" {
			if err := writeHeapProfile(*memprofile); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	var timings []runTiming
	run := func(name string, fn func() []bench.Table) {
		start := time.Now()
		opsBefore := bench.SimOps()
		for _, t := range fn() {
			if *csv {
				fmt.Printf("# %s\n", t.Title)
				if err := t.CSV(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Println()
			} else {
				t.Fprint(os.Stdout)
			}
		}
		wall := time.Since(start)
		timings = append(timings, newRunTiming(name, wall, bench.SimOps()-opsBefore))
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, wall.Round(time.Millisecond))
	}
	one := func(fn func() bench.Table) func() []bench.Table {
		return func() []bench.Table { return []bench.Table{fn()} }
	}

	figs := map[int]func() []bench.Table{
		7:  one(o.Fig7CaseStudy),
		8:  o.Fig8,
		9:  o.Fig9,
		10: one(o.Fig10),
		11: one(o.Fig11),
		12: one(o.Fig12),
		13: one(o.Fig13),
		14: one(o.Fig14),
		15: one(o.Fig15),
		16: one(o.Fig16),
		17: one(o.Fig17),
		18: one(o.Fig18),
		19: one(o.Fig19),
		20: one(o.Fig20),
	}
	ablations := map[string]func() []bench.Table{
		"flush":       one(o.AblationNativeFlush),
		"ddio":        one(o.AblationDDIO),
		"workers":     one(o.AblationWorkers),
		"throttle":    one(o.AblationThrottle),
		"replication": one(o.Replication),
		"table1":      one(o.Table1Extras),
	}

	ran := false
	if *pmpoolRun {
		run("pmpool", o.PMPoolFigures)
		ran = true
	}
	if *clusterRun {
		run("cluster", func() []bench.Table { return o.ClusterFigures(*shards, *replicas) })
		ran = true
	}
	if *fig != 0 {
		fn, ok := figs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "no such figure: %d\n", *fig)
			os.Exit(2)
		}
		run(fmt.Sprintf("fig %d", *fig), fn)
		ran = true
	}
	if *table == 2 {
		run("table 2", one(o.Table2))
		ran = true
	} else if *table != 0 {
		fmt.Fprintf(os.Stderr, "no such table: %d (Table 1 is the taxonomy in the README)\n", *table)
		os.Exit(2)
	}
	if *ablation != "" {
		if *ablation == "all" {
			for _, name := range []string{"flush", "ddio", "workers", "throttle", "replication", "table1"} {
				run("ablation "+name, ablations[name])
			}
		} else if fn, ok := ablations[*ablation]; ok {
			run("ablation "+*ablation, fn)
		} else {
			fmt.Fprintf(os.Stderr, "no such ablation: %s\n", *ablation)
			os.Exit(2)
		}
		ran = true
	}
	if *all {
		for i := 7; i <= 20; i++ {
			run(fmt.Sprintf("fig %d", i), figs[i])
		}
		run("table 2", one(o.Table2))
		for _, name := range []string{"flush", "ddio", "workers", "throttle", "replication", "table1"} {
			run("ablation "+name, ablations[name])
		}
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if *jsonOut != "" {
		if err := writeTimings(*jsonOut, *scale, timings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *memprofile != "" {
		if err := writeHeapProfile(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
