package main

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// runTiming is one -json record: how long a figure/table/ablation took on
// the wall clock and how that divides over the simulated operations its
// cells completed. Figures without a counted op stream (PageRank, the
// recovery sweep, …) report sim_ops 0 and omit the per-op rate.
type runTiming struct {
	Name       string  `json:"name"`
	WallMS     float64 `json:"wall_ms"`
	SimOps     int64   `json:"sim_ops"`
	NsPerSimOp float64 `json:"ns_per_sim_op,omitempty"`
}

func newRunTiming(name string, wall time.Duration, ops int64) runTiming {
	t := runTiming{Name: name, WallMS: float64(wall.Nanoseconds()) / 1e6, SimOps: ops}
	if ops > 0 {
		t.NsPerSimOp = float64(wall.Nanoseconds()) / float64(ops)
	}
	return t
}

// timingReport is the top-level -json document.
type timingReport struct {
	Scale       string      `json:"scale"`
	GoMaxProcs  int         `json:"gomaxprocs"`
	TotalWallMS float64     `json:"total_wall_ms"`
	Runs        []runTiming `json:"runs"`
}

func writeTimings(path, scale string, runs []runTiming) error {
	rep := timingReport{Scale: scale, GoMaxProcs: runtime.GOMAXPROCS(0), Runs: runs}
	for _, r := range runs {
		rep.TotalWallMS += r.WallMS
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// writeHeapProfile records the live heap at end of run (-memprofile),
// running a GC first so the profile reflects retained memory, not garbage.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
