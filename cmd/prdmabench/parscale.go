package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"prdma/internal/bench"
)

// parscaleReport is the BENCH_PR7.json document: the parallel-kernel scaling
// ladder plus the open-loop population smoke, with the determinism verdict
// the CI diff job gates on.
type parscaleReport struct {
	Scale         string             `json:"scale"`
	GoMaxProcs    int                `json:"gomaxprocs"`
	Scaling       *bench.ScaleResult `json:"scaling"`
	Smoke         *bench.SmokeResult `json:"smoke"`
	Deterministic bool               `json:"deterministic"`
	SpeedupAt4    float64            `json:"speedup_at_4_workers"`
}

// parscaleMain runs the PR 7 drivers: the worker ladder over the fixed
// 8-shard partitioned cluster, then the large-population open-loop smoke.
// Exit is nonzero if any rung's fingerprint diverges or a smoke invariant
// fails — wall-clock speedup is reported, never asserted, because it is a
// property of the machine (GOMAXPROCS), not of the simulation.
func parscaleMain(o bench.Options, scale string, simpar, logclients int, jsonOut string, csv bool) {
	emit := func(t bench.Table) {
		if csv {
			fmt.Printf("# %s\n", t.Title)
			if err := t.CSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
		} else {
			t.Fprint(os.Stdout)
		}
	}

	sr, err := o.ParallelScale([]int{1, 2, 4, 8})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	emit(sr.Table())

	smokeWorkers := simpar
	if smokeWorkers <= 0 {
		smokeWorkers = 4
	}
	sm, err := o.MillionClientSmoke(smokeWorkers, logclients)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	emit(sm.Table())

	rep := parscaleReport{
		Scale:         scale,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Scaling:       sr,
		Smoke:         sm,
		Deterministic: sr.Deterministic,
	}
	for _, p := range sr.Points {
		if p.Workers == 4 {
			rep.SpeedupAt4 = p.Speedup
		}
	}
	if jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if !sr.Deterministic {
		fmt.Fprintln(os.Stderr, "parscale: FINGERPRINT DIVERGENCE across worker counts")
		os.Exit(1)
	}
	if !sm.OK {
		fmt.Fprintln(os.Stderr, "parscale: smoke invariants failed")
		os.Exit(1)
	}
}
