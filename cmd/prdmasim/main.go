// Command prdmasim runs a user-described scenario on the simulated
// distributed-PM testbed and prints a JSON report: throughput, latency
// percentiles and model counters.
//
// Usage:
//
//	prdmasim -f scenario.json
//	prdmasim -example            # print a template scenario and exit
//	echo '{"rpc":"WFlush-RPC","ops":5000}' | prdmasim
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"prdma/internal/scenario"
)

const exampleSpec = `{
  "name": "durable writes under heavy processing",
  "rpc": "WFlush-RPC",
  "ops": 20000,
  "objects": 10000,
  "objectSize": 4096,
  "readFraction": 0.5,
  "clients": 1,
  "processingUS": 100,
  "workers": 3,
  "seed": 1,
  "busyNetwork": false,
  "busyReceiver": false,
  "busySender": false,
  "ddio": false,
  "nativeFlush": false,
  "crashes": null
}`

func main() {
	file := flag.String("f", "", "scenario JSON file (default: stdin)")
	example := flag.Bool("example", false, "print a template scenario and exit")
	flag.Parse()

	if *example {
		fmt.Println(exampleSpec)
		return
	}

	in := os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	spec, err := scenario.Load(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep, err := spec.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}
