// Benchmarks: one testing.B target per table/figure of the paper's
// evaluation, wrapping the drivers in internal/bench. Each iteration runs
// the full experiment at a reduced-but-statistically-identical scale; use
// cmd/prdmabench for paper-scale runs and human-readable tables.
//
//	go test -bench=Fig08 -benchmem
package prdma_test

import (
	"testing"

	"prdma/internal/bench"
)

// benchOpts sizes experiments so a -bench=. sweep stays tractable.
func benchOpts() bench.Options {
	o := bench.Quick()
	o.Ops = 800
	o.Objects = 1000
	o.OpsPerSender = 60
	return o
}

func runTables(b *testing.B, fn func() []bench.Table) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := fn()
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func one(fn func() bench.Table) func() []bench.Table {
	return func() []bench.Table { return []bench.Table{fn()} }
}

// BenchmarkFig08Throughput regenerates Fig. 8(a,b): micro-benchmark
// throughput for all RPC systems under heavy and light load.
func BenchmarkFig08Throughput(b *testing.B) { runTables(b, benchOpts().Fig8) }

// BenchmarkFig09TailLatency regenerates Fig. 9: 95th/99th/avg latency for
// 1 KB and 64 KB objects.
func BenchmarkFig09TailLatency(b *testing.B) { runTables(b, benchOpts().Fig9) }

// BenchmarkFig10PageRank regenerates Fig. 10: PageRank over the three
// graph datasets.
func BenchmarkFig10PageRank(b *testing.B) { runTables(b, one(benchOpts().Fig10)) }

// BenchmarkFig11YCSB regenerates Fig. 11: YCSB A–F average latency.
func BenchmarkFig11YCSB(b *testing.B) { runTables(b, one(benchOpts().Fig11)) }

// BenchmarkFig12Failure regenerates Fig. 12: normalized total time under
// crashes across availability levels.
func BenchmarkFig12Failure(b *testing.B) { runTables(b, one(benchOpts().Fig12)) }

// BenchmarkFig13ObjectSize regenerates Fig. 13: latency vs object size.
func BenchmarkFig13ObjectSize(b *testing.B) { runTables(b, one(benchOpts().Fig13)) }

// BenchmarkFig14NetLoad regenerates Fig. 14: latency under network load.
func BenchmarkFig14NetLoad(b *testing.B) { runTables(b, one(benchOpts().Fig14)) }

// BenchmarkFig15RecvCPU regenerates Fig. 15: latency under receiver CPU load.
func BenchmarkFig15RecvCPU(b *testing.B) { runTables(b, one(benchOpts().Fig15)) }

// BenchmarkFig16SendCPU regenerates Fig. 16: latency under sender CPU load.
func BenchmarkFig16SendCPU(b *testing.B) { runTables(b, one(benchOpts().Fig16)) }

// BenchmarkFig17Senders regenerates Fig. 17: latency vs concurrent senders.
func BenchmarkFig17Senders(b *testing.B) { runTables(b, one(benchOpts().Fig17)) }

// BenchmarkFig18RWRatio regenerates Fig. 18: latency vs read/write mix.
func BenchmarkFig18RWRatio(b *testing.B) { runTables(b, one(benchOpts().Fig18)) }

// BenchmarkFig19Batching regenerates Fig. 19: total time vs batch size.
func BenchmarkFig19Batching(b *testing.B) { runTables(b, one(benchOpts().Fig19)) }

// BenchmarkFig20Breakdown regenerates Fig. 20: the hardware/software
// latency breakdown.
func BenchmarkFig20Breakdown(b *testing.B) { runTables(b, one(benchOpts().Fig20)) }

// BenchmarkTable2Summary regenerates Table 2: the qualitative summary,
// derived from sensitivity measurements.
func BenchmarkTable2Summary(b *testing.B) { runTables(b, one(benchOpts().Table2)) }

// BenchmarkAblationNativeFlush compares emulated vs native Flush primitives.
func BenchmarkAblationNativeFlush(b *testing.B) {
	runTables(b, one(benchOpts().AblationNativeFlush))
}

// BenchmarkAblationDDIO compares DDIO off vs on.
func BenchmarkAblationDDIO(b *testing.B) { runTables(b, one(benchOpts().AblationDDIO)) }

// BenchmarkAblationWorkers sweeps the server worker pool.
func BenchmarkAblationWorkers(b *testing.B) { runTables(b, one(benchOpts().AblationWorkers)) }

// BenchmarkAblationThrottle sweeps the back-pressure threshold.
func BenchmarkAblationThrottle(b *testing.B) { runTables(b, one(benchOpts().AblationThrottle)) }

// BenchmarkFig07CaseStudy regenerates the §4.4.1 case study: Octopus made
// durable with the WFlush primitive (Fig. 7(a)).
func BenchmarkFig07CaseStudy(b *testing.B) { runTables(b, one(benchOpts().Fig7CaseStudy)) }

// BenchmarkReplication measures the §4.5 extension: replicated durable
// writes across replication factors and completion policies.
func BenchmarkReplication(b *testing.B) { runTables(b, one(benchOpts().Replication)) }

// BenchmarkTable1Extras measures the Table 1 systems the paper does not
// plot: Hotpot and Mojim against DaRPC and SFlush-RPC.
func BenchmarkTable1Extras(b *testing.B) { runTables(b, one(benchOpts().Table1Extras)) }
