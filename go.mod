module prdma

go 1.22
