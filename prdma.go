// Package prdma is a faithful, simulation-backed reproduction of
// "Hardware-Supported Remote Persistence for Distributed Persistent Memory"
// (Duan, Lu, et al., SC '21).
//
// It models a distributed-PM testbed — Optane-like persistent memory,
// RNICs with volatile staging SRAM, an InfiniBand-like fabric, DDIO — on a
// deterministic discrete-event kernel, and implements on top of it:
//
//   - the paper's RDMA Flush primitives (WFlush, SFlush, RFlush), both the
//     native form and the read-after-write emulation the paper measures;
//   - the four durable RPCs (WFlush-RPC, SFlush-RPC, W-RFlush-RPC,
//     S-RFlush-RPC) with redo logging and crash recovery;
//   - the seven baseline RPC systems the paper compares against (L5, RFP,
//     FaSST, Octopus, FaRM, ScaleRPC, DaRPC) plus Herd and LITE;
//   - the evaluation workloads: micro-benchmarks, YCSB A–F, PageRank, and
//     failure injection.
//
// The entry point is Cluster: build one, connect clients with the RPC kind
// under test, and drive requests from simulated procs. See examples/ for
// runnable programs and bench_test.go for the figure reproductions.
package prdma

import (
	"fmt"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// Re-exported core types: the public API speaks in these.
type (
	// Kind selects an RPC system.
	Kind = rpc.Kind
	// Request is one RPC invocation.
	Request = rpc.Request
	// Response is an RPC outcome; ReadyAt is the paper's latency metric.
	Response = rpc.Response
	// Client issues RPCs from one sender host.
	Client = rpc.Client
	// BatchClient supports batched RPCs (§4.3).
	BatchClient = rpc.BatchClient
	// Recoverable supports the failure-recovery protocol (§5.4).
	Recoverable = rpc.Recoverable
	// Op is the application-level operation code.
	Op = rpc.Op
	// Proc is a simulated thread; all client calls run on one.
	Proc = sim.Proc
	// Time is virtual time.
	Time = sim.Time
)

// The RPC systems (paper Table 1 / §4.2).
const (
	L5         = rpc.L5
	RFP        = rpc.RFP
	FaSST      = rpc.FaSST
	Octopus    = rpc.Octopus
	FaRM       = rpc.FaRM
	ScaleRPC   = rpc.ScaleRPC
	DaRPC      = rpc.DaRPC
	Herd       = rpc.Herd
	LITE       = rpc.LITE
	SRFlushRPC = rpc.SRFlushRPC
	SFlushRPC  = rpc.SFlushRPC
	WRFlushRPC = rpc.WRFlushRPC
	WFlushRPC  = rpc.WFlushRPC
)

// Operation codes.
const (
	OpRead  = rpc.OpRead
	OpWrite = rpc.OpWrite
	OpScan  = rpc.OpScan
)

// Kind groupings, in the paper's plotting order.
var (
	Kinds        = rpc.Kinds
	WriteKinds   = rpc.WriteKinds
	SendKinds    = rpc.SendKinds
	DurableKinds = rpc.DurableKinds
)

// Params aggregates every model knob. Zero values take defaults.
type Params struct {
	Net  fabric.Params
	Host host.Params
	PM   pmem.Params
	NIC  rnic.Params
	RPC  rpc.Config
	Seed uint64
}

// DefaultParams returns the calibrated defaults of DESIGN.md §4.
func DefaultParams() Params {
	return Params{
		Net:  fabric.DefaultParams(),
		Host: host.DefaultParams(),
		PM:   pmem.DefaultParams(),
		NIC:  rnic.DefaultParams(),
		RPC:  rpc.DefaultConfig(),
		Seed: 1,
	}
}

// Cluster is a simulated testbed: one server with PM and a store, plus any
// number of client hosts, all on one fabric and virtual clock.
type Cluster struct {
	K   *sim.Kernel
	Net *fabric.Network

	Server  *host.Host
	Engine  *rpc.Server
	Store   *rpc.Store
	Clients []*host.Host

	Params Params
}

// NewCluster builds a testbed with numClients client hosts and a server
// store holding `objects` objects of objSize bytes.
func NewCluster(p Params, numClients, objects, objSize int) (*Cluster, error) {
	k := sim.New()
	net := fabric.New(k, p.Net, p.Seed)
	c := &Cluster{K: k, Net: net, Params: p}
	c.Server = host.New(k, "server", net, p.Host, p.PM, p.NIC)
	var err error
	c.Store, err = rpc.NewStore(c.Server, objects, objSize)
	if err != nil {
		return nil, fmt.Errorf("prdma: %w", err)
	}
	c.Engine = rpc.NewServer(c.Server, c.Store, p.RPC)
	for i := 0; i < numClients; i++ {
		c.Clients = append(c.Clients, host.New(k, fmt.Sprintf("client-%d", i), net, p.Host, p.PM, p.NIC))
	}
	return c, nil
}

// MustCluster is NewCluster that panics on setup errors (benchmarks).
func MustCluster(p Params, numClients, objects, objSize int) *Cluster {
	c, err := NewCluster(p, numClients, objects, objSize)
	if err != nil {
		panic(err)
	}
	return c
}

// Connect attaches client host i to the server with the given RPC system.
func (c *Cluster) Connect(kind Kind, i int) Client {
	return rpc.New(kind, c.Clients[i], c.Engine, c.Params.RPC)
}

// Go spawns a simulated proc (a client driver, a background load, ...).
func (c *Cluster) Go(name string, fn func(p *Proc)) { c.K.Go(name, fn) }

// Run executes the simulation until no events remain.
func (c *Cluster) Run() { c.K.Run() }

// Now returns the current virtual time.
func (c *Cluster) Now() Time { return c.K.Now() }
