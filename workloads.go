package prdma

import (
	"fmt"

	"prdma/internal/fabric"
	"prdma/internal/failure"
	"prdma/internal/graph"
	"prdma/internal/host"
	"prdma/internal/kv"
	"prdma/internal/replicate"
	"prdma/internal/rpc"
	"prdma/internal/sim"
	"prdma/internal/stats"
	"prdma/internal/ycsb"
)

// Workload-layer re-exports: the KV store, YCSB generators, graphs and the
// failure driver, so applications need only this package.
type (
	// KV is a client handle to the remote key-value store.
	KV = kv.Store
	// KVResult summarizes a KV workload run.
	KVResult = kv.RunResult
	// YCSBWorkload names one of the YCSB core workloads A–F.
	YCSBWorkload = ycsb.Workload
	// YCSBConfig shapes a YCSB run.
	YCSBConfig = ycsb.Config
	// YCSBGenerator produces a YCSB operation stream.
	YCSBGenerator = ycsb.Generator
	// Mix generates an arbitrary read/write mix over zipfian keys.
	Mix = ycsb.Mix
	// Graph is a CSR graph for the PageRank macro-benchmark.
	Graph = graph.Graph
	// GraphDataset describes one of the paper's graphs.
	GraphDataset = graph.Dataset
	// PageRank runs the §5.3 computation against a remote graph store.
	PageRank = graph.PageRank
	// FailureParams configures the §5.4 failure experiment.
	FailureParams = failure.Params
	// FailureDriver injects crashes and measures recovery.
	FailureDriver = failure.Driver
	// FailureMeasurement is a failure run's outcome.
	FailureMeasurement = failure.Measurement
	// Latency records samples and reports percentiles.
	Latency = stats.Latency
	// Throughput is an ops-over-time measurement.
	Throughput = stats.Throughput
)

// The YCSB core workloads.
const (
	YCSBA = ycsb.A
	YCSBB = ycsb.B
	YCSBC = ycsb.C
	YCSBD = ycsb.D
	YCSBE = ycsb.E
	YCSBF = ycsb.F
)

// YCSBWorkloads lists A–F in order.
var YCSBWorkloads = ycsb.Workloads

// The paper's graph datasets (§5.1).
var (
	WordAssociation = graph.WordAssociation
	Enron           = graph.Enron
	DBLP            = graph.DBLP
	GraphDatasets   = graph.Datasets
)

// DefaultYCSBConfig returns the paper's YCSB parameters (50 K records,
// 4 KB values, 0.99 zipfian skew).
func DefaultYCSBConfig() YCSBConfig { return ycsb.DefaultConfig() }

// NewYCSB builds a generator for workload w.
func NewYCSB(w YCSBWorkload, cfg YCSBConfig) *YCSBGenerator { return ycsb.NewGenerator(w, cfg) }

// NewMix builds a read/write mix generator (readFrac in [0,1]) over n keys.
func NewMix(readFrac float64, n int64, size int, seed uint64) *Mix {
	return ycsb.NewMix(readFrac, n, size, seed)
}

// GenerateGraph builds a deterministic power-law graph at ds's size.
func GenerateGraph(ds GraphDataset, seed uint64) *Graph { return graph.Generate(ds, seed) }

// OpenKV wraps client (connected from client host i) as a KV store with
// `preload` pre-existing keys of valueSize bytes.
func (c *Cluster) OpenKV(client Client, i, preload, valueSize int) *KV {
	return kv.Open(client, c.Clients[i], preload, valueSize)
}

// DefaultFailureParams returns the paper's failure-experiment constants
// (300 ms unikernel restart, 100 ms RDMA re-transfer interval).
func DefaultFailureParams() FailureParams { return failure.DefaultParams() }

// Replication-layer re-exports (§4.5 extension).
type (
	// ReplicatedClient fans durable writes out to several replica servers.
	ReplicatedClient = replicate.Client
	// ReplicaChain is HyperLoop-style NIC-offloaded chain replication.
	ReplicaChain = replicate.Chain
	// ReplicaPolicy selects the write-completion rule.
	ReplicaPolicy = replicate.Policy
)

// Replica write-completion policies.
const (
	WaitAll    = replicate.WaitAll
	WaitQuorum = replicate.WaitQuorum
)

// ReplicaCluster is a testbed with one client host and R replica servers,
// each with its own store and worker pool.
type ReplicaCluster struct {
	K       *sim.Kernel
	Net     *fabric.Network
	Client  *host.Host
	Servers []*host.Host
	Engines []*rpc.Server
	Params  Params
}

// NewReplicaCluster builds the multi-server testbed of the §4.5 extension.
func NewReplicaCluster(p Params, replicas, objects, objSize int) (*ReplicaCluster, error) {
	k := sim.New()
	net := fabric.New(k, p.Net, p.Seed)
	rc := &ReplicaCluster{K: k, Net: net, Params: p}
	rc.Client = host.New(k, "client-0", net, p.Host, p.PM, p.NIC)
	for i := 0; i < replicas; i++ {
		srv := host.New(k, fmt.Sprintf("replica-%d", i), net, p.Host, p.PM, p.NIC)
		store, err := rpc.NewStore(srv, objects, objSize)
		if err != nil {
			return nil, err
		}
		rc.Servers = append(rc.Servers, srv)
		rc.Engines = append(rc.Engines, rpc.NewServer(srv, store, p.RPC))
	}
	return rc, nil
}

// ConnectReplicated builds a replicated durable-RPC client of the given
// kind over every replica.
func (rc *ReplicaCluster) ConnectReplicated(kind Kind, policy ReplicaPolicy) (*ReplicatedClient, error) {
	var clients []Client
	for _, e := range rc.Engines {
		clients = append(clients, rpc.New(kind, rc.Client, e, rc.Params.RPC))
	}
	return replicate.New(rc.K, policy, clients)
}

// ConnectChain builds the NIC-offloaded replica chain (requires native
// Flush primitives: set Params.NIC.EmulateFlush = false).
func (rc *ReplicaCluster) ConnectChain() (*ReplicaChain, error) {
	return replicate.NewChain(rc.Client, rc.Servers)
}

// Go spawns a simulated proc on the replica cluster.
func (rc *ReplicaCluster) Go(name string, fn func(p *Proc)) { rc.K.Go(name, fn) }

// Run executes the simulation until no events remain.
func (rc *ReplicaCluster) Run() { rc.K.Run() }

// NewFailureDriver wires a crash-injection driver around an established
// Recoverable connection on this cluster.
func (c *Cluster) NewFailureDriver(client Recoverable, p FailureParams) *FailureDriver {
	return failure.NewDriver(c.K, c.Server, c.Engine, client, p)
}
