// PageRank: the §5.3 macro-benchmark — graph data in remote PM, adjacency
// lists fetched over RPCs, ranks combined at the client (Fig. 10).
//
//	go run ./examples/pagerank            # wordassociation-2011 at 1/4 scale
//	go run ./examples/pagerank -full      # the paper's full dataset sizes
//	go run ./examples/pagerank -pmpool    # disaggregated: the map→reduce shuffle staged through a remote PM pool
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"

	"prdma"
	"prdma/internal/fabric"
	"prdma/internal/graph"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/pmpool"
	"prdma/internal/rnic"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// runPMPool is the -pmpool mode: PageRank with every map→reduce rank
// exchange staged through a 2-node remote persistent-memory pool, then
// checked bit-for-bit against the in-memory shuffle baseline.
func runPMPool(ds prdma.GraphDataset, iters int) {
	g := graph.Generate(graph.Dataset{Name: ds.Name, Nodes: ds.Nodes, Edges: ds.Edges}, 7)
	fmt.Printf("dataset %s: %d nodes, %d edges, %d iterations (disaggregated shuffle)\n",
		ds.Name, g.Nodes(), g.EdgeCount(), iters)

	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), 7)
	rcfg := rpc.DefaultConfig()
	rcfg.LogBytes = 128 << 10
	scfg := pmpool.DefaultServerConfig()
	scfg.PoolBytes = 512 * 4096
	servers := make([]*pmpool.Server, 2)
	for i := range servers {
		h := host.New(k, fmt.Sprintf("pool%d", i), net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
		servers[i] = pmpool.NewServer(h, rcfg, scfg)
	}
	pools := make([]*pmpool.Pool, 2)
	for c := range pools {
		h := host.New(k, fmt.Sprintf("cli%d", c), net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
		pcfg := pmpool.DefaultPoolConfig(uint64(c + 1))
		pcfg.LeaseTTL = scfg.LeaseTTL
		pools[c] = pmpool.NewPool(h, servers, rcfg, pcfg)
	}

	cfg := pmpool.DefaultShuffleConfig()
	cfg.Iterations = iters
	cfg.MaxChunk = int(scfg.SlabBytes) // every block must fit one slab
	var ranks []float64
	var st pmpool.ShuffleStats
	k.Go("pagerank-pmpool", func(p *sim.Proc) {
		var err error
		ranks, st, err = pmpool.ShufflePageRank(p, pools, g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, pl := range pools {
			pl.Stop()
		}
		for _, s := range servers {
			s.Stop()
		}
	})
	k.Run()
	fmt.Printf("shuffled %d blocks (%d bytes) through the pool in %v virtual time\n",
		st.Blocks, st.Bytes, k.Now())

	local := pmpool.LocalShufflePageRank(g, cfg)
	for i := range local {
		if math.Float64bits(ranks[i]) != math.Float64bits(local[i]) {
			log.Fatalf("rank %d diverged from the local baseline: %g != %g", i, ranks[i], local[i])
		}
	}
	fmt.Println("ranks bit-identical to the local in-memory shuffle baseline")

	type vr struct {
		v int
		r float64
	}
	top := make([]vr, 0, len(ranks))
	for v, r := range ranks {
		top = append(top, vr{v, r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("top-5 ranked vertices:")
	for _, e := range top[:5] {
		fmt.Printf("  v%-6d rank %.6f\n", e.v, e.r)
	}
}

func main() {
	full := flag.Bool("full", false, "run the paper's full dataset size")
	iters := flag.Int("iters", 3, "PageRank iterations")
	pmpoolMode := flag.Bool("pmpool", false, "stage the map→reduce shuffle through a remote PM pool")
	flag.Parse()

	ds := prdma.WordAssociation
	if !*full {
		ds = prdma.GraphDataset{Name: ds.Name + "/4", Nodes: ds.Nodes / 4, Edges: ds.Edges / 4}
	}
	if *pmpoolMode {
		runPMPool(ds, *iters)
		return
	}
	g := prdma.GenerateGraph(ds, 7)
	fmt.Printf("dataset %s: %d nodes, %d edges, %d iterations\n", ds.Name, g.Nodes(), g.EdgeCount(), *iters)

	for _, kind := range []prdma.Kind{prdma.DaRPC, prdma.WFlushRPC} {
		cluster, err := prdma.NewCluster(prdma.DefaultParams(), 1, 16, 4096)
		if err != nil {
			log.Fatal(err)
		}
		pr := &prdma.PageRank{G: g, Client: cluster.Connect(kind, 0), Iterations: *iters}
		cluster.Go("pagerank", func(p *prdma.Proc) {
			if err := pr.Run(p, cluster.Clients[0]); err != nil {
				log.Fatal(err)
			}
		})
		cluster.Run()
		fmt.Printf("%-12s finished in %v virtual time (%d adjacency fetches)\n",
			kind, cluster.Now(), pr.Fetches)

		if kind == prdma.WFlushRPC {
			type vr struct {
				v int
				r float64
			}
			top := make([]vr, 0, g.Nodes())
			for v, r := range pr.Ranks {
				top = append(top, vr{v, r})
			}
			sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
			fmt.Println("top-5 ranked vertices:")
			for _, e := range top[:5] {
				fmt.Printf("  v%-6d rank %.6f\n", e.v, e.r)
			}
		}
	}
}
