// PageRank: the §5.3 macro-benchmark — graph data in remote PM, adjacency
// lists fetched over RPCs, ranks combined at the client (Fig. 10).
//
//	go run ./examples/pagerank            # wordassociation-2011 at 1/4 scale
//	go run ./examples/pagerank -full      # the paper's full dataset sizes
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"prdma"
)

func main() {
	full := flag.Bool("full", false, "run the paper's full dataset size")
	iters := flag.Int("iters", 3, "PageRank iterations")
	flag.Parse()

	ds := prdma.WordAssociation
	if !*full {
		ds = prdma.GraphDataset{Name: ds.Name + "/4", Nodes: ds.Nodes / 4, Edges: ds.Edges / 4}
	}
	g := prdma.GenerateGraph(ds, 7)
	fmt.Printf("dataset %s: %d nodes, %d edges, %d iterations\n", ds.Name, g.Nodes(), g.EdgeCount(), *iters)

	for _, kind := range []prdma.Kind{prdma.DaRPC, prdma.WFlushRPC} {
		cluster, err := prdma.NewCluster(prdma.DefaultParams(), 1, 16, 4096)
		if err != nil {
			log.Fatal(err)
		}
		pr := &prdma.PageRank{G: g, Client: cluster.Connect(kind, 0), Iterations: *iters}
		cluster.Go("pagerank", func(p *prdma.Proc) {
			if err := pr.Run(p, cluster.Clients[0]); err != nil {
				log.Fatal(err)
			}
		})
		cluster.Run()
		fmt.Printf("%-12s finished in %v virtual time (%d adjacency fetches)\n",
			kind, cluster.Now(), pr.Fetches)

		if kind == prdma.WFlushRPC {
			type vr struct {
				v int
				r float64
			}
			top := make([]vr, 0, g.Nodes())
			for v, r := range pr.Ranks {
				top = append(top, vr{v, r})
			}
			sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
			fmt.Println("top-5 ranked vertices:")
			for _, e := range top[:5] {
				fmt.Printf("  v%-6d rank %.6f\n", e.v, e.r)
			}
		}
	}
}
