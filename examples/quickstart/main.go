// Quickstart: one client, one PM server, a durable write over WFlush-RPC.
//
// The program demonstrates the paper's central idea: the client learns that
// its data is persistent in the remote PM (DurableAt) well before the RPC
// has been processed (Done) — the T_A/T_B gap closed by the RDMA Flush
// primitives — and compares against FaRM, where the client must wait for
// the full round trip.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"prdma"
)

func main() {
	params := prdma.DefaultParams()
	params.RPC.ProcessingTime = 100e3 // 100us of "real" server work per RPC

	cluster, err := prdma.NewCluster(params, 1, 1024, 4096)
	if err != nil {
		log.Fatal(err)
	}

	durable := cluster.Connect(prdma.WFlushRPC, 0)
	classic := cluster.Connect(prdma.FaRM, 0)

	payload := bytes.Repeat([]byte("pmem!"), 4096/5+1)[:4096]

	cluster.Go("app", func(p *prdma.Proc) {
		// Durable RPC: Call returns the moment the remote NIC reports the
		// redo-log entry persistent.
		w, err := durable.Call(p, &prdma.Request{Op: prdma.OpWrite, Key: 42, Size: 4096, Payload: payload})
		if err != nil {
			log.Fatal(err)
		}
		persistLat := w.ReadyAt.Sub(w.IssuedAt)
		doneAt := w.Done.Wait(p)
		fullLat := doneAt.Sub(w.IssuedAt)
		fmt.Printf("WFlush-RPC write: durable after %v, fully processed after %v\n", persistLat, fullLat)
		fmt.Printf("  -> the sender could pipeline %.0fx more requests by not waiting for processing\n",
			float64(fullLat)/float64(persistLat))

		// Read it back to prove the bytes made it.
		r, err := durable.Call(p, &prdma.Request{Op: prdma.OpRead, Key: 42, Size: 4096, Payload: []byte{}})
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(r.Data, payload) {
			log.Fatal("read-back mismatch")
		}
		fmt.Printf("read-back: %d bytes intact\n", len(r.Data))

		// The traditional RPC for contrast: completion == persistence.
		w2, err := classic.Call(p, &prdma.Request{Op: prdma.OpWrite, Key: 43, Size: 4096, Payload: payload})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("FaRM write: sender blocked for the full %v (processing included)\n",
			w2.ReadyAt.Sub(w2.IssuedAt))
	})
	cluster.Run()
	fmt.Printf("simulation finished at virtual time %v\n", cluster.Now())
}
