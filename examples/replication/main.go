// Replication: the §4.5 extension — one durable write fanned out to several
// PM replicas, completing on all or a quorum of RDMA Flush acknowledgements,
// versus a HyperLoop-style chain where the NICs forward the write themselves
// with zero replica CPU involvement.
//
//	go run ./examples/replication
package main

import (
	"fmt"
	"log"
	"time"

	"prdma"
)

const (
	replicas = 3
	ops      = 500
	objSize  = 4096
)

func fanout(policy prdma.ReplicaPolicy) time.Duration {
	params := prdma.DefaultParams()
	rc, err := prdma.NewReplicaCluster(params, replicas, 512, objSize)
	if err != nil {
		log.Fatal(err)
	}
	client, err := rc.ConnectReplicated(prdma.WFlushRPC, policy)
	if err != nil {
		log.Fatal(err)
	}
	var total time.Duration
	rc.Go("driver", func(p *prdma.Proc) {
		for i := 0; i < ops; i++ {
			start := p.Now()
			if _, _, err := client.Write(p, &prdma.Request{Op: prdma.OpWrite, Key: uint64(i % 512), Size: objSize}); err != nil {
				log.Fatal(err)
			}
			total += p.Now().Sub(start)
		}
	})
	rc.Run()
	return total / ops
}

func chain() (time.Duration, time.Duration) {
	params := prdma.DefaultParams()
	params.NIC.EmulateFlush = false // NIC offload needs the native primitives
	rc, err := prdma.NewReplicaCluster(params, replicas, 512, objSize)
	if err != nil {
		log.Fatal(err)
	}
	ch, err := rc.ConnectChain()
	if err != nil {
		log.Fatal(err)
	}
	var total time.Duration
	rc.Go("driver", func(p *prdma.Proc) {
		for i := 0; i < ops; i++ {
			start := p.Now()
			ch.Write(p, int64(i%512)*objSize, objSize, nil)
			total += p.Now().Sub(start)
		}
	})
	rc.Run()
	var replicaCPU time.Duration
	for _, s := range rc.Servers {
		replicaCPU += s.SWTime
	}
	return total / ops, replicaCPU
}

func main() {
	fmt.Printf("replicated durable writes, R=%d, %dB objects, %d ops\n\n", replicas, objSize, ops)
	all := fanout(prdma.WaitAll)
	quorum := fanout(prdma.WaitQuorum)
	chainLat, chainCPU := chain()

	fmt.Printf("%-28s %12s\n", "strategy", "avg latency")
	fmt.Printf("%-28s %12v\n", "fan-out, wait-all", all.Round(10))
	fmt.Printf("%-28s %12v\n", "fan-out, quorum", quorum.Round(10))
	fmt.Printf("%-28s %12v   (replica CPU spent: %v)\n", "NIC chain (HyperLoop-style)", chainLat.Round(10), chainCPU)

	fmt.Println("\nthe fan-out completes when enough flush ACKs arrive (quorum hides stragglers);")
	fmt.Println("the chain serializes hops but needs zero replica CPU and a single ACK certifies")
	fmt.Println("group durability — the tradeoff the paper sketches in §4.5.")
}
