// KV store: the §5.3 YCSB scenario — 4 KB values in remote PM, client-side
// index, zipfian access — comparing a durable RPC against DaRPC across
// workloads A (update-heavy) and C (read-only).
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"prdma"
)

func run(kind prdma.Kind, w prdma.YCSBWorkload, ops int) (prdma.KVResult, error) {
	cluster, err := prdma.NewCluster(prdma.DefaultParams(), 1, 5000, 4096)
	if err != nil {
		return prdma.KVResult{}, err
	}
	kv := cluster.OpenKV(cluster.Connect(kind, 0), 0, 5000, 4096)
	cfg := prdma.DefaultYCSBConfig()
	cfg.Records = 5000
	var res prdma.KVResult
	var runErr error
	cluster.Go("ycsb", func(p *prdma.Proc) {
		res, runErr = kv.Run(p, prdma.NewYCSB(w, cfg).Next, ops)
	})
	cluster.Run()
	return res, runErr
}

func main() {
	const ops = 3000
	fmt.Println("YCSB over remote PM, 4KB values, zipfian(0.99), 3000 ops per cell")
	fmt.Printf("%-14s %-10s %12s %12s %12s\n", "rpc", "workload", "avg", "p99", "KOPS")
	for _, w := range []prdma.YCSBWorkload{prdma.YCSBA, prdma.YCSBC} {
		for _, kind := range []prdma.Kind{prdma.DaRPC, prdma.SFlushRPC, prdma.FaRM, prdma.WFlushRPC} {
			res, err := run(kind, w, ops)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %-10s %12v %12v %12.1f\n",
				kind, w, res.Latency.Mean().Round(10), res.Latency.Percentile(99).Round(10),
				res.Throughput().KOPS())
		}
	}
	fmt.Println("\nexpected shape (paper Fig. 11): durable RPCs win on workload A's updates,")
	fmt.Println("roughly tie on read-only workload C.")
}
