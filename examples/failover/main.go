// Failover: the §5.4 scenario — the RPC service crashes mid-stream and
// restarts; the durable RPC replays persisted-but-unprocessed requests from
// the redo log, while the traditional baseline makes the client re-send.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"prdma"
)

func run(kind prdma.Kind) prdma.FailureMeasurement {
	params := prdma.DefaultParams()
	params.RPC.ProcessingTime = 20 * time.Microsecond // server is the bottleneck
	cluster, err := prdma.NewCluster(params, 1, 512, 4096)
	if err != nil {
		log.Fatal(err)
	}
	client, ok := cluster.Connect(kind, 0).(prdma.Recoverable)
	if !ok {
		log.Fatalf("%v does not implement the recovery protocol", kind)
	}
	fp := prdma.FailureParams{
		Restart:      5 * time.Millisecond, // scaled unikernel restart
		Retransfer:   time.Millisecond,     // scaled RDMA re-transfer interval
		Crashes:      4,
		OpsPerWindow: 400,
		Pipeline:     8,
	}
	driver := cluster.NewFailureDriver(client, fp)
	payload := make([]byte, 4096)
	gen := prdma.NewMix(0.0, 512, 4096, 11) // write-only: the hard case
	var m prdma.FailureMeasurement
	cluster.Go("driver", func(p *prdma.Proc) {
		m = driver.Run(p, func(i int) *prdma.Request {
			req := gen.Next()
			req.Payload = payload
			return req
		})
	})
	cluster.Run()
	return m
}

func main() {
	fmt.Println("crash/recovery comparison: 4 injected crashes, write-only workload, 4KB values")
	durable := run(prdma.WFlushRPC)
	baseline := run(prdma.FaRM)

	show := func(name string, m prdma.FailureMeasurement) {
		fmt.Printf("%-12s ops=%d crashes=%d replayed-from-log=%d client-resent=%d clean-per-op=%v per-crash-overhead=%v\n",
			name, m.Ops, m.Crashes, m.Replayed, m.Resent, m.CleanPerOp.Round(10), m.PerCrashCost.Round(time.Microsecond))
	}
	show("WFlush-RPC", durable)
	show("FaRM", baseline)

	fmt.Println("\nextrapolated to the paper's 1e9-operation run (300ms restarts):")
	fmt.Printf("%-14s %12s %12s %10s\n", "availability", "WFlush-RPC", "FaRM", "normalized")
	for _, a := range []float64{0.99, 0.999, 0.9999, 0.99999} {
		d := durable.ExpectedTotal(1e9, a, 300*time.Millisecond)
		b := baseline.ExpectedTotal(1e9, a, 300*time.Millisecond)
		fmt.Printf("%13.3f%% %12v %12v %10.3f\n", a*100, d.Round(time.Second), b.Round(time.Second), float64(d)/float64(b))
	}
	fmt.Println("\nthe durable RPC recovers server-side from the redo log — the client never")
	fmt.Println("re-sends data that was already acknowledged as persistent (paper §4.2, Fig. 12).")
}
