package prdma_test

import (
	"testing"
	"time"

	"prdma"
)

// TestCalibrationConstants pins the DESIGN.md §4 timing model to the code:
// if a default drifts, this test points at the stale documentation — and at
// the experiments whose calibration depended on it.
func TestCalibrationConstants(t *testing.T) {
	p := prdma.DefaultParams()

	// Network: ConnectX-4-like.
	if p.Net.Propagation != 800*time.Nanosecond {
		t.Errorf("propagation = %v, DESIGN.md says 0.8us", p.Net.Propagation)
	}
	if p.Net.BytesPerSec != 5e9 {
		t.Errorf("link bandwidth = %v, DESIGN.md says 5 GB/s", p.Net.BytesPerSec)
	}

	// PM: the asymmetry that drives the 64 KB results.
	if p.PM.DMABytesPerSec <= p.PM.CPUBytesPerSec {
		t.Error("NIC DMA persist path must out-run the CPU clwb path")
	}
	if p.PM.PersistBase != 500*time.Nanosecond {
		t.Errorf("persist base = %v, DESIGN.md says 0.5us", p.PM.PersistBase)
	}

	// NIC: the paper's emulation constants.
	if p.NIC.AddrLookup != 7*time.Microsecond {
		t.Errorf("SFlush address lookup = %v, the paper emulates ~7us", p.NIC.AddrLookup)
	}
	if !p.NIC.EmulateFlush {
		t.Error("default must be the paper's measured emulation mode")
	}
	if p.NIC.DDIO {
		t.Error("the paper disables DDIO by default (§5.1)")
	}
	if p.NIC.RetransmitInterval != 100*time.Millisecond {
		t.Errorf("re-transfer interval = %v, the paper sets 100ms", p.NIC.RetransmitInterval)
	}

	// Failure experiment constants.
	fp := prdma.DefaultFailureParams()
	if fp.Restart != 300*time.Millisecond {
		t.Errorf("restart = %v, the paper's unikernels restart in ~300ms", fp.Restart)
	}
	if fp.Retransfer != 100*time.Millisecond {
		t.Errorf("retransfer = %v, want 100ms", fp.Retransfer)
	}

	// YCSB: §5.1 parameters.
	y := prdma.DefaultYCSBConfig()
	if y.Records != 50000 || y.ValueSize != 4096 || y.Theta != 0.99 {
		t.Errorf("YCSB defaults %+v diverge from §5.1 (50K records, 4KB values, 0.99 skew)", y)
	}

	// Graph datasets: §5.1 sizes.
	if prdma.WordAssociation.Nodes != 10000 || prdma.WordAssociation.Edges != 72000 {
		t.Error("wordassociation-2011 size drifted")
	}
	if prdma.Enron.Nodes != 69000 || prdma.Enron.Edges != 276000 {
		t.Error("enron size drifted")
	}
	if prdma.DBLP.Nodes != 326000 || prdma.DBLP.Edges != 1615000 {
		t.Error("dblp-2010 size drifted")
	}
}
