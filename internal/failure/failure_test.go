package failure

import (
	"bytes"
	"testing"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

type rig struct {
	k      *sim.Kernel
	cli    *host.Host
	srv    *host.Host
	engine *rpc.Server
}

func newRig(t *testing.T, workers int) *rig {
	t.Helper()
	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), 11)
	np := rnic.DefaultParams()
	cli := host.New(k, "cli", net, host.DefaultParams(), pmem.DefaultParams(), np)
	srv := host.New(k, "srv", net, host.DefaultParams(), pmem.DefaultParams(), np)
	store, err := rpc.NewStore(srv, 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rpc.DefaultConfig()
	cfg.Workers = workers
	// Fig. 12 regime: real per-request processing makes the server the
	// steady-state bottleneck for every system, so clean throughput is
	// equal and the measured difference is recovery cost alone.
	cfg.ProcessingTime = 20 * time.Microsecond
	return &rig{k: k, cli: cli, srv: srv, engine: rpc.NewServer(srv, store, cfg)}
}

func payload(i int) []byte {
	b := bytes.Repeat([]byte{byte(i)}, 1024)
	return b
}

func writeGen(i int) *rpc.Request {
	return &rpc.Request{Op: rpc.OpWrite, Key: uint64(i % 128), Size: 1024, Payload: payload(i)}
}

// shortParams keeps virtual time small for unit tests.
func shortParams() Params {
	return Params{
		Restart:      5 * time.Millisecond,
		Retransfer:   time.Millisecond,
		Crashes:      3,
		OpsPerWindow: 60,
		Pipeline:     8,
	}
}

func TestDurableSurvivesCrashesWithReplay(t *testing.T) {
	r := newRig(t, 2)
	c := rpc.New(rpc.WFlushRPC, r.cli, r.engine, r.engine.Cfg).(rpc.Recoverable)
	d := NewDriver(r.k, r.srv, r.engine, c, shortParams())
	var m Measurement
	r.k.Go("driver", func(p *sim.Proc) { m = d.Run(p, writeGen) })
	r.k.Run()
	want := shortParams().OpsPerWindow * (shortParams().Crashes + 1)
	if m.Ops != want {
		t.Fatalf("ops = %d, want %d", m.Ops, want)
	}
	if m.Crashes != 3 {
		t.Fatalf("crashes = %d", m.Crashes)
	}
	if m.Replayed == 0 {
		t.Fatal("durable RPC recovered nothing from the log across 3 crashes")
	}
	if m.CleanPerOp <= 0 || m.PerCrashCost < 0 {
		t.Fatalf("bad measurement: %+v", m)
	}
}

func TestBaselineSurvivesCrashesWithResend(t *testing.T) {
	r := newRig(t, 2)
	c := rpc.New(rpc.FaRM, r.cli, r.engine, r.engine.Cfg).(rpc.Recoverable)
	d := NewDriver(r.k, r.srv, r.engine, c, shortParams())
	var m Measurement
	r.k.Go("driver", func(p *sim.Proc) { m = d.Run(p, writeGen) })
	r.k.Run()
	want := shortParams().OpsPerWindow * (shortParams().Crashes + 1)
	if m.Ops != want {
		t.Fatalf("ops = %d, want %d", m.Ops, want)
	}
	if m.Resent == 0 {
		t.Fatal("baseline resent nothing across 3 crashes")
	}
	if m.Replayed != 0 {
		t.Fatal("baseline has no log to replay from")
	}
}

func TestDurableResendsLessThanBaseline(t *testing.T) {
	run := func(kind rpc.Kind) Measurement {
		r := newRig(t, 2)
		c := rpc.New(kind, r.cli, r.engine, r.engine.Cfg).(rpc.Recoverable)
		p := shortParams()
		p.Crashes = 5
		d := NewDriver(r.k, r.srv, r.engine, c, p)
		var m Measurement
		r.k.Go("driver", func(pp *sim.Proc) { m = d.Run(pp, writeGen) })
		r.k.Run()
		return m
	}
	durable := run(rpc.WFlushRPC)
	baseline := run(rpc.FaRM)
	// The durable client recovers server-side from the log; the baseline
	// has nothing to replay and can only re-send.
	if durable.Replayed == 0 {
		t.Fatal("durable client replayed nothing")
	}
	if baseline.Replayed != 0 {
		t.Fatal("baseline replayed from a log it does not have")
	}
	// Extrapolated totals (the Fig. 12 quantity): the durable RPC must win
	// at every availability level.
	const ops = 1_000_000
	restart := 300 * time.Millisecond
	for _, a := range []float64{0.99999, 0.9999, 0.999, 0.99} {
		norm := float64(durable.ExpectedTotal(ops, a, restart)) /
			float64(baseline.ExpectedTotal(ops, a, restart))
		if norm >= 1 {
			t.Fatalf("normalized time %.3f >= 1 at availability %v", norm, a)
		}
	}
}

func TestRecoveredDataIntact(t *testing.T) {
	// After crashes, every op that was issued must be applied exactly once
	// or more (at-least-once), with intact contents: read back a sample.
	r := newRig(t, 1)
	c := rpc.New(rpc.WFlushRPC, r.cli, r.engine, r.engine.Cfg).(rpc.Recoverable)
	p := shortParams()
	p.Crashes = 2
	p.Pipeline = 4
	d := NewDriver(r.k, r.srv, r.engine, c, p)
	r.k.Go("driver", func(pp *sim.Proc) {
		d.Run(pp, writeGen)
		// Drain processing, then spot-check several keys.
		pp.Sleep(50 * time.Millisecond)
		for _, i := range []int{1, 17, 42, 99} {
			resp, err := c.CallTimeout(pp, &rpc.Request{Op: rpc.OpRead, Key: uint64(i % 128), Size: 1024, Payload: []byte{1}}, 100*time.Millisecond)
			if err != nil {
				t.Errorf("read key %d: %v", i, err)
				continue
			}
			if len(resp.Data) != 1024 {
				t.Errorf("key %d: got %d bytes", i, len(resp.Data))
			}
		}
	})
	r.k.Run()
}

func TestExpectedTotalMonotonicity(t *testing.T) {
	m := Measurement{CleanPerOp: 10 * time.Microsecond, PerCrashCost: 20 * time.Millisecond}
	restart := 300 * time.Millisecond
	prev := time.Duration(1 << 62)
	for _, a := range []float64{0.99, 0.999, 0.9999, 0.99999} {
		tot := m.ExpectedTotal(1e6, a, restart)
		if tot >= prev {
			t.Fatalf("expected total not decreasing with availability: %v at %v", tot, a)
		}
		prev = tot
	}
	clean := m.ExpectedTotal(1e6, 1.0, restart)
	if clean != time.Duration(1e6)*m.CleanPerOp {
		t.Fatalf("clean total = %v", clean)
	}
}

// A window that drains faster than the calibrated crash delay must not leave
// the crash timer armed: before the fix it fired into the next window (or
// after Run returned), crashing a server no measurement was watching and
// corrupting PerCrashCost.
func TestFastWindowLeavesNoArmedCrash(t *testing.T) {
	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), 11)
	np := rnic.DefaultParams()
	cli := host.New(k, "cli", net, host.DefaultParams(), pmem.DefaultParams(), np)
	srv := host.New(k, "srv", net, host.DefaultParams(), pmem.DefaultParams(), np)
	store, err := rpc.NewStore(srv, 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rpc.DefaultConfig()
	cfg.Workers = 2
	engine := rpc.NewServer(srv, store, cfg)
	c := rpc.New(rpc.WFlushRPC, cli, engine, cfg).(rpc.Recoverable)

	p := shortParams()
	// Calibration ops are 512x larger than the crash-window ops, so every
	// crash window drains long before half a calibrated window elapses.
	gen := func(i int) *rpc.Request {
		size := 64
		if i < p.OpsPerWindow {
			size = 32768
		}
		return &rpc.Request{Op: rpc.OpWrite, Key: uint64(i % 128), Size: size}
	}
	d := NewDriver(k, srv, engine, c, p)
	var m Measurement
	k.Go("driver", func(pp *sim.Proc) {
		m = d.Run(pp, gen)
		// Idle long past the crash delay: a leaked timer would fire here.
		pp.Sleep(time.Second)
	})
	k.Run()

	if srv.Crashes != 0 {
		t.Fatalf("server crashed %d times; every window drained before its crash delay", srv.Crashes)
	}
	if m.Crashes != 0 {
		t.Fatalf("measurement counted %d crashes that never landed", m.Crashes)
	}
	if m.PerCrashCost != 0 {
		t.Fatalf("PerCrashCost = %v from zero observed crashes", m.PerCrashCost)
	}
	if !d.serverUp {
		t.Fatal("server left down after Run")
	}
	if want := p.OpsPerWindow * (p.Crashes + 1); m.Ops != want {
		t.Fatalf("ops = %d, want %d", m.Ops, want)
	}
}
