package failure

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// TestAckedWritesSurviveAnyCrashSchedule is the system's end-to-end
// durability invariant: for any schedule of crashes, every write whose
// persistence was acknowledged to the client before a crash must be
// readable — with its latest acknowledged contents — once the system
// settles. This is the guarantee the Flush primitives exist to provide.
func TestAckedWritesSurviveAnyCrashSchedule(t *testing.T) {
	f := func(crashGaps []uint16, seed uint64) bool {
		if len(crashGaps) > 6 {
			crashGaps = crashGaps[:6]
		}
		k, cli, srv, engine := buildRig(1) // Workers=1: strict FIFO apply
		client := rpc.New(rpc.WFlushRPC, cli, engine, engine.Cfg).(rpc.Recoverable)

		const keys = 32
		const valSize = 256
		// lastAcked[key] = version of the last acknowledged write.
		lastAcked := make(map[uint64]uint32)
		version := uint32(0)

		payload := func(key uint64, ver uint32) []byte {
			b := bytes.Repeat([]byte{byte(ver)}, valSize)
			binary.LittleEndian.PutUint64(b[0:], key)
			binary.LittleEndian.PutUint32(b[8:], ver)
			return b
		}

		rng := sim.NewRand(seed)
		serverUp := true
		gen := 0
		handled := 0
		ok := true

		k.Go("driver", func(p *sim.Proc) {
			myGen := 0
			for round := 0; round <= len(crashGaps); round++ {
				// A burst of writes.
				for i := 0; i < 25; i++ {
					for !serverUp {
						p.Sleep(200 * time.Microsecond)
					}
					if myGen != gen {
						myGen = gen
						client.Reestablish(p)
					}
					key := uint64(rng.Intn(keys))
					version++
					ver := version
					_, err := client.CallTimeout(p,
						&rpc.Request{Op: rpc.OpWrite, Key: key, Size: valSize, Payload: payload(key, ver)},
						300*time.Microsecond)
					if err == nil {
						lastAcked[key] = ver // acked: must survive anything
					}
				}
				if round < len(crashGaps) {
					// Crash after a schedule-dependent pause.
					p.Sleep(time.Duration(crashGaps[round]%500) * time.Microsecond)
					srv.Crash()
					engine.Crash()
					serverUp = false
					k.After(time.Millisecond, func() {
						srv.Restart()
						serverUp = true
						gen++
					})
				}
			}
			// Settle: reconnect if needed, let the backlog apply.
			for !serverUp {
				p.Sleep(200 * time.Microsecond)
			}
			if myGen != gen {
				myGen = gen
				client.Reestablish(p)
			}
			p.Sleep(10 * time.Millisecond)

			// Verify every acknowledged write.
			for key, ver := range lastAcked {
				r, err := client.CallTimeout(p,
					&rpc.Request{Op: rpc.OpRead, Key: key, Size: valSize, Payload: []byte{}},
					10*time.Millisecond)
				if err != nil {
					ok = false
					t.Logf("seed %d: read key %d: %v", seed, key, err)
					return
				}
				if len(r.Data) != valSize {
					ok = false
					t.Logf("seed %d: key %d short read", seed, key)
					return
				}
				gotKey := binary.LittleEndian.Uint64(r.Data[0:])
				gotVer := binary.LittleEndian.Uint32(r.Data[8:])
				// The read must observe the last acked version or a NEWER
				// acknowledged... no newer exists: lastAcked is the newest.
				// An unacked-but-durable later write may also have applied
				// (at-least-once), so allow gotVer >= ver for the same key.
				if gotKey != key || gotVer < ver {
					ok = false
					t.Logf("seed %d: key %d has v%d, acked v%d", seed, key, gotVer, ver)
					return
				}
				handled++
			}
		})
		k.Run()
		return ok && handled > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// buildRig is a light-weight rig constructor for the fuzz test.
func buildRig(workers int) (*sim.Kernel, *host.Host, *host.Host, *rpc.Server) {
	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), 23)
	cli := host.New(k, "cli", net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
	srv := host.New(k, "srv", net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
	store, err := rpc.NewStore(srv, 64, 256)
	if err != nil {
		panic(err)
	}
	cfg := rpc.DefaultConfig()
	cfg.Workers = workers
	return k, cli, srv, rpc.NewServer(srv, store, cfg)
}
