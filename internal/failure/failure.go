// Package failure drives the §5.4 failure-recovery experiment (Fig. 12):
// RPC services deployed in unikernel-style VMs crash and restart in ~300 ms;
// clients retry on the RDMA re-transfer interval (100 ms). Durable RPCs
// replay persisted-but-unprocessed requests from the redo log after restart,
// so only not-yet-durable requests are re-sent; the traditional baseline
// re-sends every request whose completion it never observed.
//
// The client pipelines requests across a window of worker procs — the
// natural usage of durable RPCs, whose whole point is issuing ahead of
// processing. At a crash the baseline has a window's worth of unconfirmed
// requests to re-send (with their data), while the durable client's
// unconfirmed window is only as deep as the short persist-ack latency.
//
// The paper runs 1e9 operations per configuration; simulating that much
// virtual time is wasteful. The driver instead measures the clean per-op
// time and the actual per-crash overhead over several injected crashes,
// then extrapolates the expected total for any availability level — the
// quantity Fig. 12 normalizes (see Measurement.ExpectedTotal).
package failure

import (
	"time"

	"prdma/internal/host"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// Params configures the failure experiment.
type Params struct {
	// Restart is the unikernel restart latency (paper: ~300 ms).
	Restart time.Duration
	// Retransfer is the RDMA packet re-transfer interval (paper: 100 ms).
	Retransfer time.Duration
	// Crashes is how many failures to inject while measuring.
	Crashes int
	// OpsPerWindow is how many operations run between injected crashes.
	OpsPerWindow int
	// Pipeline is the client-side issue window (worker procs).
	Pipeline int
}

// DefaultParams returns the paper's constants with a measurement-friendly
// crash count.
func DefaultParams() Params {
	return Params{
		Restart:      300 * time.Millisecond,
		Retransfer:   100 * time.Millisecond,
		Crashes:      6,
		OpsPerWindow: 240,
		Pipeline:     16,
	}
}

// Measurement is the outcome of one failure run.
type Measurement struct {
	Ops          int
	Crashes      int
	Replayed     int // ops recovered from the redo log (no client re-send)
	Resent       int // ops the client had to re-issue over the wire
	CleanPerOp   time.Duration
	PerCrashCost time.Duration // recovery overhead beyond the restart time
}

// Driver runs the workload against one Recoverable client.
type Driver struct {
	K      *sim.Kernel
	Server *host.Host
	Engine *rpc.Server
	Client rpc.Recoverable
	P      Params

	serverUp bool
	// generation counts restarts so exactly one proc re-establishes the
	// connection per crash; reconnecting holds the other procs off while
	// the log recovery scan (which takes media-read time) is in flight.
	generation   int
	reestGen     int
	reconnecting bool
}

// NewDriver wraps an established connection.
func NewDriver(k *sim.Kernel, server *host.Host, engine *rpc.Server, client rpc.Recoverable, p Params) *Driver {
	if p.Pipeline <= 0 {
		p.Pipeline = 1
	}
	return &Driver{K: k, Server: server, Engine: engine, Client: client, P: p, serverUp: true}
}

// crash fails the server host and schedules its restart. A crash landing
// while the server is already down (or still restarting) is ignored: double-
// crashing would schedule a second restart and double-count the failure.
func (d *Driver) crash() {
	if !d.serverUp {
		return
	}
	d.serverUp = false
	d.Server.Crash()
	d.Engine.Crash()
	d.K.AfterFunc(d.P.Restart, func() {
		d.Server.Restart()
		d.serverUp = true
		d.generation++
	})
}

// callUntilDone drives one operation to completion across any number of
// crashes, counting re-sends, and waiting out restarts.
func (d *Driver) callUntilDone(p *sim.Proc, req *rpc.Request, m *Measurement) {
	attempts := 0
	for {
		for !d.serverUp {
			p.Sleep(d.P.Retransfer)
		}
		if d.reestGen != d.generation {
			d.reestGen = d.generation
			d.reconnecting = true
			replayed, err := d.Client.Reestablish(p)
			if err != nil {
				panic(err) // serial-kernel driver: reestablish cannot refuse
			}
			m.Replayed += replayed
			d.reconnecting = false
		}
		for d.reconnecting {
			p.Sleep(10 * time.Microsecond)
		}
		attempts++
		_, err := d.Client.CallTimeout(p, req, d.P.Retransfer)
		if err == nil {
			if attempts > 1 {
				m.Resent += attempts - 1
			}
			return
		}
	}
}

// window issues n ops (generated from offset) through the pipeline and
// waits for all of them.
func (d *Driver) window(p *sim.Proc, n, offset int, gen func(i int) *rpc.Request, m *Measurement) {
	wg := sim.NewWaitGroup(d.K)
	next := offset
	for w := 0; w < d.P.Pipeline; w++ {
		wg.Add(1)
		d.K.Go("failure-worker", func(wp *sim.Proc) {
			defer wg.Done()
			for {
				i := next
				if i >= offset+n {
					return
				}
				next++
				d.callUntilDone(wp, gen(i), m)
				m.Ops++
			}
		})
	}
	wg.Wait(p)
}

// Run executes the workload: one clean window to calibrate, then P.Crashes
// windows each with a crash injected mid-window while requests are in
// flight. gen supplies the i-th request.
func (d *Driver) Run(p *sim.Proc, gen func(i int) *rpc.Request) Measurement {
	var m Measurement

	cleanStart := p.Now()
	d.window(p, d.P.OpsPerWindow, 0, gen, &m)
	m.CleanPerOp = p.Now().Sub(cleanStart) / time.Duration(d.P.OpsPerWindow)

	var recoveryCost time.Duration
	for c := 0; c < d.P.Crashes; c++ {
		start := p.Now()
		// Crash strikes while the window's requests are in flight. The
		// timer is canceled once the window drains: a fast window must not
		// leave a live crash armed to fire into the next window (or after
		// Run returns), which would skew PerCrashCost and the crash count.
		half := d.P.OpsPerWindow / 2
		fired := false
		timer := d.K.After(time.Duration(half)*m.CleanPerOp, func() {
			fired = true
			d.crash()
		})
		d.window(p, d.P.OpsPerWindow, (c+1)*d.P.OpsPerWindow, gen, &m)
		timer.Stop()
		if !fired {
			continue // window drained before the crash could land
		}
		m.Crashes++
		window := p.Now().Sub(start)
		over := window - m.CleanPerOp*time.Duration(d.P.OpsPerWindow) - d.P.Restart
		if over < 0 {
			over = 0
		}
		recoveryCost += over
	}
	if m.Crashes > 0 {
		m.PerCrashCost = recoveryCost / time.Duration(m.Crashes)
	}
	return m
}

// ExpectedTotal extrapolates the total execution time of `ops` operations at
// the given availability, using the measured clean per-op time and per-crash
// recovery overhead: the quantity Fig. 12 normalizes.
//
// downFrac = 1-A fixes the mean time between failures at
// MTBF = restart*A/(1-A); the run then suffers T_clean/MTBF crashes, each
// costing the restart plus the measured recovery overhead.
func (m Measurement) ExpectedTotal(ops int64, availability float64, restart time.Duration) time.Duration {
	clean := time.Duration(ops) * m.CleanPerOp
	if availability >= 1 {
		return clean
	}
	up := float64(restart) * availability / (1 - availability)
	crashes := float64(clean) / up
	return clean + time.Duration(crashes*float64(restart+m.PerCrashCost))
}
