package failure

import (
	"fmt"
	"testing"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// TestRecoveryMatrix drives the crash/restart/replay protocol through every
// durable RPC family in both flush modes: the Reestablish paths differ
// (write pollers vs send receivers, native FlushSink rewiring, PM- vs
// DRAM-resident receive buffers) and each must survive crashes.
func TestRecoveryMatrix(t *testing.T) {
	for _, emulate := range []bool{true, false} {
		for _, kind := range rpc.DurableKinds {
			kind := kind
			emulate := emulate
			t.Run(fmt.Sprintf("%v/emulate=%v", kind, emulate), func(t *testing.T) {
				k := sim.New()
				net := fabric.New(k, fabric.DefaultParams(), 13)
				np := rnic.DefaultParams()
				np.EmulateFlush = emulate
				cli := host.New(k, "cli", net, host.DefaultParams(), pmem.DefaultParams(), np)
				srv := host.New(k, "srv", net, host.DefaultParams(), pmem.DefaultParams(), np)
				store, err := rpc.NewStore(srv, 128, 1024)
				if err != nil {
					t.Fatal(err)
				}
				cfg := rpc.DefaultConfig()
				cfg.Workers = 2
				cfg.ProcessingTime = 15 * time.Microsecond
				engine := rpc.NewServer(srv, store, cfg)
				client := rpc.New(kind, cli, engine, cfg).(rpc.Recoverable)
				d := NewDriver(k, srv, engine, client, Params{
					Restart:      4 * time.Millisecond,
					Retransfer:   time.Millisecond,
					Crashes:      3,
					OpsPerWindow: 80,
					Pipeline:     6,
				})
				var m Measurement
				k.Go("driver", func(p *sim.Proc) {
					m = d.Run(p, func(i int) *rpc.Request {
						return &rpc.Request{Op: rpc.OpWrite, Key: uint64(i % 128), Size: 1024, Payload: payload(i)}
					})
				})
				k.Run()
				if m.Ops != 80*4 {
					t.Fatalf("ops = %d, want %d (driver stalled?)", m.Ops, 80*4)
				}
				if m.Crashes != 3 {
					t.Fatalf("crashes = %d", m.Crashes)
				}
				if m.Replayed == 0 {
					t.Fatalf("%v recovered nothing from the log", kind)
				}
			})
		}
	}
}
