package trace

import (
	"strings"
	"testing"
)

func fixedClock(t *int64) func() int64 {
	return func() int64 { return *t }
}

func TestEmitAndEvents(t *testing.T) {
	now := int64(0)
	tr := New(fixedClock(&now), 10)
	tr.Emit("a", "first %d", 1)
	now = 1000
	tr.Emit("b", "second")
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Msg != "first 1" || evs[0].Cat != "a" || evs[0].AtNanos != 0 {
		t.Fatalf("ev0 = %+v", evs[0])
	}
	if evs[1].AtNanos != 1000 {
		t.Fatalf("ev1 = %+v", evs[1])
	}
}

func TestRingEviction(t *testing.T) {
	now := int64(0)
	tr := New(fixedClock(&now), 3)
	for i := 0; i < 7; i++ {
		now = int64(i)
		tr.Emit("x", "ev%d", i)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Msg != "ev4" || evs[2].Msg != "ev6" {
		t.Fatalf("ring order wrong: %+v", evs)
	}
	if tr.Dropped() != 4 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
}

func TestFilter(t *testing.T) {
	now := int64(0)
	tr := New(fixedClock(&now), 10)
	tr.Filter("keep")
	tr.Emit("keep", "yes")
	tr.Emit("drop", "no")
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
	tr.Filter() // clear
	tr.Emit("drop", "now kept")
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestWriteTo(t *testing.T) {
	now := int64(1500)
	tr := New(fixedClock(&now), 2)
	tr.Emit("rnic", "hello")
	tr.Emit("rnic", "a")
	tr.Emit("rnic", "b") // evicts "hello"
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "evicted") || !strings.Contains(out, "1.500us") || strings.Contains(out, "hello") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestDefaultCapacity(t *testing.T) {
	now := int64(0)
	tr := New(fixedClock(&now), 0)
	if tr.max != 4096 {
		t.Fatalf("default max = %d", tr.max)
	}
}
