// Package trace is a lightweight, deterministic event tracer for the
// simulated testbed. Model components expose an optional Trace callback;
// attaching a Tracer records (virtual time, category, message) tuples into
// a bounded ring for debugging protocol behaviour — which write staged
// when, when its flush ACK fired, what a crash aborted, what recovery
// replayed. cmd/prdmasim exposes it via -trace.
package trace

import (
	"fmt"
	"io"
)

// Event is one recorded trace point.
type Event struct {
	// AtNanos is the virtual time in nanoseconds.
	AtNanos int64
	// Cat is the category ("rnic", "redolog", ...).
	Cat string
	// Msg is the formatted message.
	Msg string
}

// Tracer records events into a bounded ring buffer.
type Tracer struct {
	max     int
	events  []Event
	start   int // ring start when full
	full    bool
	dropped int64
	cats    map[string]bool // nil: all categories pass

	// now supplies virtual time; the tracer stays decoupled from the sim
	// package so any clock works.
	now func() int64
}

// New returns a tracer keeping at most max events (the newest win).
func New(now func() int64, max int) *Tracer {
	if max <= 0 {
		max = 4096
	}
	return &Tracer{max: max, now: now}
}

// Filter restricts recording to the given categories; no arguments clears
// the filter (record everything).
func (t *Tracer) Filter(cats ...string) {
	if len(cats) == 0 {
		t.cats = nil
		return
	}
	t.cats = make(map[string]bool, len(cats))
	for _, c := range cats {
		t.cats[c] = true
	}
}

// Emit records one event. It is the function components call; pass it
// around as a value (`tracer.Emit`) so components need no trace import.
func (t *Tracer) Emit(cat, format string, args ...interface{}) {
	if t.cats != nil && !t.cats[cat] {
		return
	}
	ev := Event{AtNanos: t.now(), Cat: cat, Msg: fmt.Sprintf(format, args...)}
	if len(t.events) < t.max {
		t.events = append(t.events, ev)
		return
	}
	// Ring: overwrite the oldest.
	t.full = true
	t.dropped++
	t.events[t.start] = ev
	t.start = (t.start + 1) % t.max
}

// Len returns the number of retained events.
func (t *Tracer) Len() int { return len(t.events) }

// Dropped returns how many events the ring evicted.
func (t *Tracer) Dropped() int64 { return t.dropped }

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	if !t.full {
		out := make([]Event, len(t.events))
		copy(out, t.events)
		return out
	}
	out := make([]Event, 0, t.max)
	for i := 0; i < t.max; i++ {
		out = append(out, t.events[(t.start+i)%t.max])
	}
	return out
}

// WriteTo renders the trace as one line per event.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	var n int64
	if t.dropped > 0 {
		c, err := fmt.Fprintf(w, "... %d earlier events evicted ...\n", t.dropped)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	for _, ev := range t.Events() {
		c, err := fmt.Fprintf(w, "%12.3fus  %-8s %s\n", float64(ev.AtNanos)/1e3, ev.Cat, ev.Msg)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
