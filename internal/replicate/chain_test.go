package replicate

import (
	"bytes"
	"testing"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

func chainRig(t *testing.T, replicas int, emulate bool) (*sim.Kernel, *host.Host, []*host.Host) {
	t.Helper()
	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), 31)
	np := rnic.DefaultParams()
	np.EmulateFlush = emulate
	cli := host.New(k, "cli", net, host.DefaultParams(), pmem.DefaultParams(), np)
	var hs []*host.Host
	for i := 0; i < replicas; i++ {
		hs = append(hs, host.New(k, nameOf(i), net, host.DefaultParams(), pmem.DefaultParams(), np))
	}
	return k, cli, hs
}

func TestChainAllReplicasDurableAtAck(t *testing.T) {
	for _, emulate := range []bool{false} {
		k, cli, hs := chainRig(t, 3, emulate)
		chain, err := NewChain(cli, hs)
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{0xC4}, 4096)
		k.Go("driver", func(p *sim.Proc) {
			at := chain.Write(p, 8192, len(data), data)
			if at == 0 {
				t.Error("no completion")
			}
			// The single ACK certifies the WHOLE group: every replica
			// must hold the bytes durably right now.
			for i, h := range hs {
				if got := h.PM.ReadBytes(8192, len(data)); !bytes.Equal(got, data) {
					t.Errorf("emulate=%v: replica %d not durable at chain ACK", emulate, i)
				}
			}
		})
		k.Run()
	}
}

func TestChainAckLaterThanSingleReplica(t *testing.T) {
	lat := func(replicas int) time.Duration {
		k, cli, hs := chainRig(t, replicas, false)
		chain, _ := NewChain(cli, hs)
		var d time.Duration
		k.Go("driver", func(p *sim.Proc) {
			start := p.Now()
			chain.Write(p, 0, 1024, nil)
			d = p.Now().Sub(start)
		})
		k.Run()
		return d
	}
	one, three := lat(1), lat(3)
	if three <= one {
		t.Fatalf("3-replica chain (%v) should cost more than 1 (%v): hops serialize", three, one)
	}
	// But not absurdly more: forwarding overlaps with local persistence.
	if three > 5*one {
		t.Fatalf("chain scaling looks wrong: %v vs %v", three, one)
	}
}

func TestChainNoReplicaCPUInvolved(t *testing.T) {
	// The whole chain write must complete without any replica host
	// software cost: the NICs do everything.
	k, cli, hs := chainRig(t, 3, false)
	chain, _ := NewChain(cli, hs)
	k.Go("driver", func(p *sim.Proc) {
		chain.Write(p, 0, 4096, nil)
	})
	k.Run()
	for i, h := range hs {
		if h.SWTime != 0 {
			t.Errorf("replica %d spent %v of CPU time on a NIC-offloaded chain", i, h.SWTime)
		}
	}
	if chain.Writes != 1 || chain.Len() != 3 {
		t.Fatalf("chain bookkeeping: writes=%d len=%d", chain.Writes, chain.Len())
	}
}

func TestChainMidReplicaCrashStallsAck(t *testing.T) {
	k, cli, hs := chainRig(t, 3, false)
	chain, _ := NewChain(cli, hs)
	hs[1].Crash() // middle of the chain is down
	completed := false
	k.Go("driver", func(p *sim.Proc) {
		if _, ok := chain.WriteAsync(0, 1024, nil).WaitTimeout(p, 50*time.Millisecond); ok {
			completed = true
		}
	})
	k.Run()
	if completed {
		t.Fatal("chain ACK arrived despite a dead replica: group durability violated")
	}
}

func TestChainEmptyRejected(t *testing.T) {
	k, cli, _ := chainRig(t, 1, false)
	_ = k
	if _, err := NewChain(cli, nil); err == nil {
		t.Fatal("expected error for empty chain")
	}
}

func TestChainRequiresNativeFlush(t *testing.T) {
	k, cli, hs := chainRig(t, 2, true) // emulated flush
	_ = k
	if _, err := NewChain(cli, hs); err == nil {
		t.Fatal("expected error: chain offload needs native primitives")
	}
}
