package replicate

import (
	"errors"

	"prdma/internal/host"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// Chain is a HyperLoop-style NIC-offloaded replica chain (§4.5): the client
// writes to the head replica with a WFlush, each replica's NIC forwards the
// write to the next without any CPU involvement, and the single flush ACK
// the client receives certifies that the data is persistent on every
// replica in the group.
//
// Compared with the fan-out Client, the chain trades latency (hops
// serialize) for zero client fan-out cost and zero replica CPU on the
// replication path — exactly HyperLoop's offload argument, which the paper
// cites as the group-based alternative to its point-to-point primitives.
type Chain struct {
	head *rnic.QP
	len  int

	// Writes counts chain writes issued.
	Writes int64
}

// NewChain wires client → replicas[0] → replicas[1] → ... with NIC
// forwarding. The replicas must share an address-space layout (they do:
// hosts map PM identically), because the write lands at the same address
// on every member.
func NewChain(client *host.Host, replicas []*host.Host) (*Chain, error) {
	if len(replicas) == 0 {
		return nil, errors.New("replicate: empty chain")
	}
	if client.NIC.Params.EmulateFlush {
		// The read-after-write emulation has no NIC-forwarding analogue:
		// a probe read only drains the local QP. Group offload is a
		// hardware capability — require the native primitives.
		return nil, errors.New("replicate: NIC chain offload requires native Flush primitives (Params.EmulateFlush=false)")
	}
	headQP := client.NIC.CreateQP(rnic.RC)
	headSrv := replicas[0].NIC.CreateQP(rnic.RC)
	rnic.Connect(headQP, headSrv)

	prevSrv := headSrv
	for i := 1; i < len(replicas); i++ {
		fwd := replicas[i-1].NIC.CreateQP(rnic.RC)
		next := replicas[i].NIC.CreateQP(rnic.RC)
		rnic.Connect(fwd, next)
		prevSrv.ChainNext = fwd
		prevSrv = next
	}
	return &Chain{head: headQP, len: len(replicas)}, nil
}

// Len returns the chain length.
func (c *Chain) Len() int { return c.len }

// Write performs one group-durable write: it blocks p until every replica
// in the chain has persisted [addr, addr+n).
func (c *Chain) Write(p *sim.Proc, addr int64, n int, data []byte) sim.Time {
	c.Writes++
	return c.head.WriteFlush(p, addr, n, data)
}

// WriteAsync is Write without blocking.
func (c *Chain) WriteAsync(addr int64, n int, data []byte) *sim.Future[sim.Time] {
	c.Writes++
	return c.head.WriteFlushAsync(addr, n, data)
}
