// Package replicate implements the paper's §4.5 extension: data persistence
// with multiple replicas. A replicated write fans one durable RPC out to R
// replica servers and completes according to a persistence policy:
//
//   - WaitAll — every replica's RDMA Flush has acknowledged. Strongest:
//     any replica can serve after a failure.
//   - WaitQuorum — a majority acknowledged. The paper notes that RC cannot
//     order Flush ACKs across independent replicas, so distributed
//     consistency needs a consensus-style tradeoff; a quorum is the classic
//     one, trading tail latency for weaker per-replica guarantees.
//
// Reads are policy-aware: they round-robin over the live, in-sync replicas.
// Under WaitQuorum a replica that has not yet acknowledged every completed
// write is stale and gets skipped (the staleness guard), so a read never
// observes a replica behind the acknowledged prefix. The redo-log machinery
// carries over per replica, so a crashed replica recovers its backlog
// locally and is resynchronized by replaying — exactly the "foundational
// capability for data replication protocols" the paper claims.
//
// Membership is explicit: a failover controller (internal/cluster) calls
// MarkDown when it detects a crash and MarkUp after resynchronizing the
// replica. Marked-down replicas receive no traffic and do not count toward
// WaitAll (which then means "all live replicas"); WaitQuorum still requires
// a majority of the full configured set, so a shard with a minority of
// replicas up refuses writes rather than silently weakening the guarantee.
package replicate

import (
	"errors"
	"fmt"
	"time"

	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// Policy selects the write-completion rule.
type Policy int

const (
	// WaitAll completes a write when every replica persisted it.
	WaitAll Policy = iota
	// WaitQuorum completes a write at a majority of persistence ACKs.
	WaitQuorum
)

func (p Policy) String() string {
	if p == WaitQuorum {
		return "quorum"
	}
	return "all"
}

// ErrUnavailable reports that too few replicas are live to satisfy the
// policy (WaitQuorum with a minority up, or no replica up at all).
var ErrUnavailable = errors.New("replicate: not enough live replicas")

// Client is a replicated durable-RPC client.
type Client struct {
	K        *sim.Kernel
	Policy   Policy
	replicas []rpc.AsyncClient

	// down marks replicas excluded from traffic (crashed and not yet
	// resynchronized); acked counts durable ACKs received per replica and
	// completed counts policy-met writes. Together they form the staleness
	// guard: acked[i] >= completed means replica i has persisted every
	// write this client has acknowledged (ACKs arrive in issue order on a
	// connection, and writes are issued one at a time per Client).
	down      []bool
	acked     []int64
	completed int64
	rr        int // round-robin read cursor

	pendBuf []*rpc.Pending // per-write scratch, reused across calls
	idxBuf  []int

	// Writes/Reads count operations; SlowestWaits counts writes where the
	// policy saved waiting on a straggler (quorum met before all ACKs).
	// StaleSkips counts reads diverted away from a lagging replica by the
	// staleness guard; ReadsByReplica records where reads actually landed.
	Writes, Reads, SlowestWaits int64
	StaleSkips                  int64
	ReadsByReplica              []int64

	// WriteTag and OnDurable, both set, observe per-replica durability:
	// WriteTag extracts an opaque tag from each write at issue time (before
	// the caller can reuse the payload buffer), and OnDurable fires with
	// that tag once per replica durability ACK. A durable ACK asserts the
	// write is remotely persistent on that replica — the §4.2 contract the
	// crash-point auditor holds each replica to.
	WriteTag  func(req *rpc.Request) uint64
	OnDurable func(replica int, tag uint64, at sim.Time)
}

// New builds a replicated client over per-replica durable connections.
// Every replica client must support asynchronous issue (the durable RPCs
// do; traditional RPCs cannot replicate without blocking serially).
func New(k *sim.Kernel, policy Policy, replicas []rpc.Client) (*Client, error) {
	if len(replicas) == 0 {
		return nil, errors.New("replicate: no replicas")
	}
	c := &Client{K: k, Policy: policy}
	for _, r := range replicas {
		ac, ok := r.(rpc.AsyncClient)
		if !ok {
			return nil, fmt.Errorf("replicate: %v cannot issue asynchronously", r.Kind())
		}
		c.replicas = append(c.replicas, ac)
	}
	n := len(c.replicas)
	c.down = make([]bool, n)
	c.acked = make([]int64, n)
	c.ReadsByReplica = make([]int64, n)
	c.pendBuf = make([]*rpc.Pending, 0, n)
	c.idxBuf = make([]int, 0, n)
	return c, nil
}

// Replicas returns the replication factor.
func (c *Client) Replicas() int { return len(c.replicas) }

// Live returns how many replicas are currently marked up.
func (c *Client) Live() int {
	live := 0
	for _, d := range c.down {
		if !d {
			live++
		}
	}
	return live
}

// need returns how many persistence ACKs complete a write.
func (c *Client) need() int {
	if c.Policy == WaitQuorum {
		return len(c.replicas)/2 + 1
	}
	return len(c.replicas)
}

// MarkDown excludes replica i from writes and reads until MarkUp.
func (c *Client) MarkDown(i int) { c.down[i] = true }

// MarkUp readmits replica i. The caller must have resynchronized it first
// (log shipping in internal/cluster); readmission credits the replica as
// caught up with every completed write.
func (c *Client) MarkUp(i int) {
	c.down[i] = false
	c.acked[i] = c.completed
}

// Down reports whether replica i is currently marked down.
func (c *Client) Down(i int) bool { return c.down[i] }

// InSync reports whether replica i is live and has acknowledged every
// completed write — i.e. eligible to serve reads under the staleness guard.
func (c *Client) InSync(i int) bool { return !c.down[i] && c.acked[i] >= c.completed }

// Replica exposes replica i's client (recovery and resync drivers use it).
func (c *Client) Replica(i int) rpc.AsyncClient { return c.replicas[i] }

// Write replicates one durable write and blocks p until the policy is
// satisfied. It returns the completion time and the number of replicas
// that had persisted by then.
func (c *Client) Write(p *sim.Proc, req *rpc.Request) (sim.Time, int, error) {
	return c.write(p, req, 0)
}

// WriteTimeout is Write with a deadline. On timeout the write may still be
// durable on some replicas; the caller decides whether to retry (replicated
// full-object writes are idempotent, so retrying is safe).
func (c *Client) WriteTimeout(p *sim.Proc, req *rpc.Request, d time.Duration) (sim.Time, int, error) {
	return c.write(p, req, d)
}

func (c *Client) write(p *sim.Proc, req *rpc.Request, timeout time.Duration) (sim.Time, int, error) {
	if req.Op != rpc.OpWrite {
		return 0, 0, errors.New("replicate: Write requires OpWrite")
	}
	need := c.need()
	live := c.Live()
	if c.Policy == WaitAll {
		need = live // marked-down replicas left the write set
	}
	if live == 0 || live < need {
		return 0, 0, ErrUnavailable
	}
	c.Writes++
	var tag uint64
	if c.WriteTag != nil && c.OnDurable != nil {
		tag = c.WriteTag(req)
	}
	c.pendBuf = c.pendBuf[:0]
	c.idxBuf = c.idxBuf[:0]
	for i, r := range c.replicas {
		if c.down[i] {
			continue
		}
		pend, err := r.CallAsync(p, req)
		if err != nil {
			return 0, 0, err
		}
		c.pendBuf = append(c.pendBuf, pend)
		c.idxBuf = append(c.idxBuf, i)
	}
	acked := 0
	met := sim.NewFuture[sim.Time](c.K)
	for j := range c.pendBuf {
		i := c.idxBuf[j]
		c.pendBuf[j].Durable.Then(func(at sim.Time) {
			c.acked[i]++
			if c.OnDurable != nil {
				c.OnDurable(i, tag, at)
			}
			acked++
			if acked == need {
				met.Complete(at)
			}
		})
	}
	var done sim.Time
	if timeout > 0 {
		var ok bool
		if done, ok = met.WaitTimeout(p, timeout); !ok {
			return 0, acked, rpc.ErrTimeout
		}
	} else {
		done = met.Wait(p)
	}
	c.completed++
	if acked < live {
		c.SlowestWaits++
	}
	return done, acked, nil
}

// pickReader chooses the replica for the next read: round-robin over the
// live, in-sync replicas; replicas lagging behind the acknowledged prefix
// are skipped (StaleSkips). If no live replica is in sync — transiently
// possible while quorum ACKs are in flight — it falls back to the
// most-caught-up live replica, which by quorum intersection holds the most
// recent acknowledged data among the live set.
func (c *Client) pickReader() int {
	n := len(c.replicas)
	best, bestAcked := -1, int64(-1)
	for off := 0; off < n; off++ {
		i := (c.rr + off) % n
		if c.down[i] {
			continue
		}
		if c.acked[i] >= c.completed {
			c.rr = (i + 1) % n
			return i
		}
		c.StaleSkips++
		if c.acked[i] > bestAcked {
			best, bestAcked = i, c.acked[i]
		}
	}
	return best
}

// Read fetches from a live, in-sync replica (see pickReader).
func (c *Client) Read(p *sim.Proc, req *rpc.Request) (*rpc.Response, error) {
	i := c.pickReader()
	if i < 0 {
		return nil, ErrUnavailable
	}
	c.Reads++
	c.ReadsByReplica[i]++
	return c.replicas[i].Call(p, req)
}

// ReadTimeout is Read with a deadline, for callers racing a failover window.
func (c *Client) ReadTimeout(p *sim.Proc, req *rpc.Request, d time.Duration) (*rpc.Response, error) {
	i := c.pickReader()
	if i < 0 {
		return nil, ErrUnavailable
	}
	c.Reads++
	c.ReadsByReplica[i]++
	if rec, ok := c.replicas[i].(rpc.Recoverable); ok {
		return rec.CallTimeout(p, req, d)
	}
	return c.replicas[i].Call(p, req)
}

// Primary exposes the primary replica's client (recovery drivers use it).
func (c *Client) Primary() rpc.AsyncClient { return c.replicas[0] }
