// Package replicate implements the paper's §4.5 extension: data persistence
// with multiple replicas. A replicated write fans one durable RPC out to R
// replica servers and completes according to a persistence policy:
//
//   - WaitAll — every replica's RDMA Flush has acknowledged. Strongest:
//     any replica can serve after a failure.
//   - WaitQuorum — a majority acknowledged. The paper notes that RC cannot
//     order Flush ACKs across independent replicas, so distributed
//     consistency needs a consensus-style tradeoff; a quorum is the classic
//     one, trading tail latency for weaker per-replica guarantees.
//
// Reads go to the primary (replica 0). The redo-log machinery carries over
// per replica, so a crashed replica recovers its backlog locally and is
// resynchronized by replaying — exactly the "foundational capability for
// data replication protocols" the paper claims.
package replicate

import (
	"errors"
	"fmt"

	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// Policy selects the write-completion rule.
type Policy int

const (
	// WaitAll completes a write when every replica persisted it.
	WaitAll Policy = iota
	// WaitQuorum completes a write at a majority of persistence ACKs.
	WaitQuorum
)

func (p Policy) String() string {
	if p == WaitQuorum {
		return "quorum"
	}
	return "all"
}

// Client is a replicated durable-RPC client.
type Client struct {
	K        *sim.Kernel
	Policy   Policy
	replicas []rpc.AsyncClient

	// Writes/Reads count operations; SlowestWaits counts writes where the
	// policy saved waiting on a straggler (quorum met before all ACKs).
	Writes, Reads, SlowestWaits int64
}

// New builds a replicated client over per-replica durable connections.
// Every replica client must support asynchronous issue (the durable RPCs
// do; traditional RPCs cannot replicate without blocking serially).
func New(k *sim.Kernel, policy Policy, replicas []rpc.Client) (*Client, error) {
	if len(replicas) == 0 {
		return nil, errors.New("replicate: no replicas")
	}
	c := &Client{K: k, Policy: policy}
	for _, r := range replicas {
		ac, ok := r.(rpc.AsyncClient)
		if !ok {
			return nil, fmt.Errorf("replicate: %v cannot issue asynchronously", r.Kind())
		}
		c.replicas = append(c.replicas, ac)
	}
	return c, nil
}

// Replicas returns the replication factor.
func (c *Client) Replicas() int { return len(c.replicas) }

// need returns how many persistence ACKs complete a write.
func (c *Client) need() int {
	if c.Policy == WaitQuorum {
		return len(c.replicas)/2 + 1
	}
	return len(c.replicas)
}

// Write replicates one durable write and blocks p until the policy is
// satisfied. It returns the completion time and the number of replicas
// that had persisted by then.
func (c *Client) Write(p *sim.Proc, req *rpc.Request) (sim.Time, int, error) {
	if req.Op != rpc.OpWrite {
		return 0, 0, errors.New("replicate: Write requires OpWrite")
	}
	c.Writes++
	pendings := make([]*rpc.Pending, 0, len(c.replicas))
	for _, r := range c.replicas {
		pend, err := r.CallAsync(p, req)
		if err != nil {
			return 0, 0, err
		}
		pendings = append(pendings, pend)
	}
	acked := 0
	met := sim.NewFuture[sim.Time](c.K)
	need := c.need()
	for _, pend := range pendings {
		pend.Durable.Then(func(at sim.Time) {
			acked++
			if acked == need {
				met.Complete(at)
			}
		})
	}
	done := met.Wait(p)
	if acked < len(c.replicas) {
		c.SlowestWaits++
	}
	return done, acked, nil
}

// Read fetches from the primary replica.
func (c *Client) Read(p *sim.Proc, req *rpc.Request) (*rpc.Response, error) {
	c.Reads++
	return c.replicas[0].Call(p, req)
}

// Primary exposes the primary replica's client (recovery drivers use it).
func (c *Client) Primary() rpc.AsyncClient { return c.replicas[0] }
