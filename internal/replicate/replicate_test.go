package replicate

import (
	"bytes"
	"testing"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// rig is a one-client, R-replica test cluster.
type rig struct {
	k       *sim.Kernel
	cli     *host.Host
	servers []*host.Host
	engines []*rpc.Server
	clients []rpc.Client
}

func newRig(t *testing.T, replicas int, kind rpc.Kind, slow int) *rig {
	t.Helper()
	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), 17)
	r := &rig{k: k}
	r.cli = host.New(k, "cli", net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
	for i := 0; i < replicas; i++ {
		hp := host.DefaultParams()
		if i == slow {
			hp.LoadFactor = 6 // a straggler replica
		}
		srv := host.New(k, nameOf(i), net, hp, pmem.DefaultParams(), rnic.DefaultParams())
		store, err := rpc.NewStore(srv, 128, 1024)
		if err != nil {
			t.Fatal(err)
		}
		engine := rpc.NewServer(srv, store, rpc.DefaultConfig())
		r.servers = append(r.servers, srv)
		r.engines = append(r.engines, engine)
		r.clients = append(r.clients, rpc.New(kind, r.cli, engine, engine.Cfg))
	}
	return r
}

func nameOf(i int) string { return string(rune('A'+i)) + "-replica" }

func TestWriteReplicatesToAll(t *testing.T) {
	r := newRig(t, 3, rpc.WFlushRPC, -1)
	c, err := New(r.k, WaitAll, r.clients)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xEE}, 1024)
	r.k.Go("driver", func(p *sim.Proc) {
		at, acked, err := c.Write(p, &rpc.Request{Op: rpc.OpWrite, Key: 5, Size: 1024, Payload: payload})
		if err != nil {
			t.Error(err)
			return
		}
		if acked != 3 {
			t.Errorf("acked = %d", acked)
		}
		if at == 0 {
			t.Error("no completion time")
		}
	})
	r.k.Run()
	// Every replica's redo log holds the durable payload; give the engines
	// time to apply, then check the object homes.
	r.k.Go("verify", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		for i, srv := range r.servers {
			addr := r.engines[i].Store.Addr(5)
			if got := srv.PM.ReadBytes(addr, 1024); !bytes.Equal(got, payload) {
				t.Errorf("replica %d object home not durable", i)
			}
		}
	})
	r.k.Run()
}

func TestQuorumBeatsWaitAllWithStraggler(t *testing.T) {
	lat := func(policy Policy) time.Duration {
		r := newRig(t, 3, rpc.WFlushRPC, 2) // replica 2 is slow
		c, err := New(r.k, policy, r.clients)
		if err != nil {
			t.Fatal(err)
		}
		var total time.Duration
		const ops = 30
		r.k.Go("driver", func(p *sim.Proc) {
			for i := 0; i < ops; i++ {
				start := p.Now()
				if _, _, err := c.Write(p, &rpc.Request{Op: rpc.OpWrite, Key: uint64(i % 64), Size: 1024}); err != nil {
					t.Error(err)
					return
				}
				total += p.Now().Sub(start)
			}
		})
		r.k.Run()
		return total / ops
	}
	all, quorum := lat(WaitAll), lat(WaitQuorum)
	if quorum >= all {
		t.Fatalf("quorum (%v) should beat wait-all (%v) with a straggler", quorum, all)
	}
}

func TestQuorumCountsStragglerSaves(t *testing.T) {
	r := newRig(t, 3, rpc.WFlushRPC, 1)
	c, _ := New(r.k, WaitQuorum, r.clients)
	r.k.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if _, _, err := c.Write(p, &rpc.Request{Op: rpc.OpWrite, Key: uint64(i), Size: 1024}); err != nil {
				t.Error(err)
			}
		}
	})
	r.k.Run()
	if c.SlowestWaits == 0 {
		t.Fatal("quorum never completed ahead of the straggler")
	}
}

func TestReadFromPrimary(t *testing.T) {
	r := newRig(t, 2, rpc.WFlushRPC, -1)
	c, _ := New(r.k, WaitAll, r.clients)
	payload := bytes.Repeat([]byte{0x21}, 1024)
	r.k.Go("driver", func(p *sim.Proc) {
		if _, _, err := c.Write(p, &rpc.Request{Op: rpc.OpWrite, Key: 8, Size: 1024, Payload: payload}); err != nil {
			t.Fatal(err)
		}
		p.Sleep(time.Millisecond) // let the primary apply
		resp, err := c.Read(p, &rpc.Request{Op: rpc.OpRead, Key: 8, Size: 1024, Payload: []byte{}})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp.Data, payload) {
			t.Error("primary read mismatch")
		}
	})
	r.k.Run()
	if c.Reads != 1 || c.Writes != 1 {
		t.Fatalf("counters: %d reads %d writes", c.Reads, c.Writes)
	}
}

func TestReplicaCrashDataSurvivesOnOthers(t *testing.T) {
	r := newRig(t, 3, rpc.WFlushRPC, -1)
	c, _ := New(r.k, WaitQuorum, r.clients)
	payload := bytes.Repeat([]byte{0x37}, 1024)
	r.k.Go("driver", func(p *sim.Proc) {
		if _, _, err := c.Write(p, &rpc.Request{Op: rpc.OpWrite, Key: 1, Size: 1024, Payload: payload}); err != nil {
			t.Fatal(err)
		}
		// Crash replica 2 immediately: its volatile state dies.
		r.servers[2].Crash()
		p.Sleep(time.Millisecond)
		// Replicas 0 and 1 still applied the write.
		for i := 0; i < 2; i++ {
			addr := r.engines[i].Store.Addr(1)
			if got := r.servers[i].PM.ReadBytes(addr, 1024); !bytes.Equal(got, payload) {
				t.Errorf("surviving replica %d lost the write", i)
			}
		}
	})
	r.k.Run()
}

func TestPolicyNeeds(t *testing.T) {
	r := newRig(t, 5, rpc.WFlushRPC, -1)
	all, _ := New(r.k, WaitAll, r.clients)
	q, _ := New(r.k, WaitQuorum, r.clients)
	if all.need() != 5 || q.need() != 3 {
		t.Fatalf("needs: all=%d quorum=%d", all.need(), q.need())
	}
}

func TestRejectsNonAsyncClients(t *testing.T) {
	r := newRig(t, 1, rpc.WFlushRPC, -1)
	// A FaRM client cannot fan out asynchronously.
	farm := rpc.New(rpc.FaRM, r.cli, r.engines[0], r.engines[0].Cfg)
	if _, err := New(r.k, WaitAll, []rpc.Client{farm}); err == nil {
		t.Fatal("expected error for non-async replica client")
	}
	if _, err := New(r.k, WaitAll, nil); err == nil {
		t.Fatal("expected error for zero replicas")
	}
}

// TestQuorumReadSkipsStaleReplica is the regression test for the read-path
// fix: under WaitQuorum a write completes before the straggler's ACK, and a
// read issued immediately afterwards must not land on the lagging replica
// (the old code always read replica 0). The straggler is replica 0, so any
// read it serves would return pre-write data.
func TestQuorumReadSkipsStaleReplica(t *testing.T) {
	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), 17)
	cli := host.New(k, "cli", net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
	var clients []rpc.Client
	for i := 0; i < 3; i++ {
		pp := pmem.DefaultParams()
		if i == 0 {
			// Replica 0 (the old hard-wired read target) persists ~200 µs
			// late, so its WFlush ACK reliably trails the quorum and any
			// immediate read round trip.
			pp.PersistBase = 200 * time.Microsecond
		}
		srv := host.New(k, nameOf(i), net, host.DefaultParams(), pp, rnic.DefaultParams())
		store, err := rpc.NewStore(srv, 128, 1024)
		if err != nil {
			t.Fatal(err)
		}
		cfg := rpc.DefaultConfig()
		cfg.Workers = 1 // FIFO apply: a read behind a write sees it applied
		engine := rpc.NewServer(srv, store, cfg)
		clients = append(clients, rpc.New(rpc.WFlushRPC, cli, engine, cfg))
	}
	c, err := New(k, WaitQuorum, clients)
	if err != nil {
		t.Fatal(err)
	}
	const ops = 10
	k.Go("driver", func(p *sim.Proc) {
		for v := 0; v < ops; v++ {
			payload := bytes.Repeat([]byte{byte(0x40 + v)}, 1024)
			if _, _, err := c.Write(p, &rpc.Request{Op: rpc.OpWrite, Key: 9, Size: 1024, Payload: payload}); err != nil {
				t.Fatal(err)
			}
			// Read immediately: quorum met on replicas 1/2; replica 0 has
			// not acked yet and must be skipped by the staleness guard.
			resp, err := c.Read(p, &rpc.Request{Op: rpc.OpRead, Key: 9, Size: 1024, Payload: []byte{}})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(resp.Data, payload) {
				t.Fatalf("op %d: read returned stale data", v)
			}
		}
	})
	k.Run()
	if c.ReadsByReplica[0] != 0 {
		t.Errorf("%d reads landed on the lagging replica 0", c.ReadsByReplica[0])
	}
	if c.StaleSkips == 0 {
		t.Error("staleness guard never skipped the straggler")
	}
	if got := c.ReadsByReplica[1] + c.ReadsByReplica[2]; got != ops {
		t.Errorf("in-sync replicas served %d reads, want %d", got, ops)
	}
}

// TestMembershipWriteSet checks MarkDown/MarkUp semantics: a marked-down
// replica receives no writes, WaitAll completes over the live set, a
// minority-live quorum refuses writes, and MarkUp credits the rejoiner as
// in sync again.
func TestMembershipWriteSet(t *testing.T) {
	r := newRig(t, 3, rpc.WFlushRPC, -1)
	c, _ := New(r.k, WaitQuorum, r.clients)
	all, _ := New(r.k, WaitAll, r.clients)
	r.k.Go("driver", func(p *sim.Proc) {
		c.MarkDown(2)
		if _, acked, err := c.Write(p, &rpc.Request{Op: rpc.OpWrite, Key: 3, Size: 1024}); err != nil || acked > 2 {
			t.Errorf("quorum write with one down replica: acked=%d err=%v", acked, err)
		}
		if c.InSync(2) {
			t.Error("down replica reported in sync")
		}
		c.MarkDown(1)
		if _, _, err := c.Write(p, &rpc.Request{Op: rpc.OpWrite, Key: 3, Size: 1024}); err != ErrUnavailable {
			t.Errorf("minority-live quorum write: err=%v, want ErrUnavailable", err)
		}
		c.MarkUp(1)
		c.MarkUp(2)
		if !c.InSync(2) {
			t.Error("readmitted replica not in sync")
		}
		// WaitAll over a shrunken live set completes at 2 ACKs.
		all.MarkDown(0)
		if _, acked, err := all.Write(p, &rpc.Request{Op: rpc.OpWrite, Key: 4, Size: 1024}); err != nil || acked != 2 {
			t.Errorf("wait-all over live set: acked=%d err=%v", acked, err)
		}
	})
	r.k.Run()
	// Replica 2 missed the first quorum write; it must not serve reads for
	// it, and the second client's replica 0 likewise.
	if c.ReadsByReplica == nil || len(c.ReadsByReplica) != 3 {
		t.Fatal("ReadsByReplica not sized to the replica set")
	}
}

func TestWriteRejectsReads(t *testing.T) {
	r := newRig(t, 2, rpc.WFlushRPC, -1)
	c, _ := New(r.k, WaitAll, r.clients)
	r.k.Go("driver", func(p *sim.Proc) {
		if _, _, err := c.Write(p, &rpc.Request{Op: rpc.OpRead, Key: 1, Size: 64}); err == nil {
			t.Error("Write accepted a read")
		}
	})
	r.k.Run()
}
