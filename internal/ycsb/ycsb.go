// Package ycsb generates the YCSB workloads the paper evaluates (§5.1,
// Fig. 11): workloads A–F over 50 K objects with 8-byte keys and 4 KB
// values, zipfian-skewed (99 % skewness) except D, which reads the latest
// inserts. The zipfian generator follows Gray et al. ("Quickly generating
// billion-record synthetic databases"), as YCSB's own does.
package ycsb

import (
	"math"

	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// Zipfian draws integers in [0, n) with P(k) ∝ 1/(k+1)^theta.
type Zipfian struct {
	n     int64
	theta float64

	alpha, zetan, eta float64
	zeta2             float64
	rng               *sim.Rand
}

// NewZipfian builds a generator over [0, n) with the given skew (the paper
// uses theta = 0.99).
func NewZipfian(rng *sim.Rand, n int64, theta float64) *Zipfian {
	z := &Zipfian{n: n, theta: theta, rng: rng}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next key.
func (z *Zipfian) Next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Scrambled hashes the zipfian rank across the key space so hot keys are
// spread out, as YCSB's ScrambledZipfianGenerator does.
func (z *Zipfian) Scrambled() int64 {
	return int64(fnv64(uint64(z.Next())) % uint64(z.n))
}

func fnv64(x uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= 1099511628211
		x >>= 8
	}
	return h
}

// Workload identifies a YCSB core workload.
type Workload byte

// The YCSB core workloads, as §5.1 describes them.
const (
	// A: 50% update, 50% read.
	A Workload = 'A'
	// B: 95% read, 5% update.
	B Workload = 'B'
	// C: read-only.
	C Workload = 'C'
	// D: 95% read of the latest inserts, 5% insert.
	D Workload = 'D'
	// E: 95% scan, 5% insert.
	E Workload = 'E'
	// F: 50% read, 50% read-modify-write.
	F Workload = 'F'
)

// Workloads lists A–F in order.
var Workloads = []Workload{A, B, C, D, E, F}

func (w Workload) String() string { return string(w) }

// Config shapes a workload run.
type Config struct {
	Records   int // objects pre-loaded (paper: 50 K)
	ValueSize int // bytes per value (paper: 4 KB)
	Theta     float64
	MaxScan   int
	Seed      uint64
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{Records: 50000, ValueSize: 4096, Theta: 0.99, MaxScan: 16, Seed: 42}
}

// Generator produces the operation stream of one workload.
type Generator struct {
	W   Workload
	Cfg Config

	zip      *Zipfian
	rng      *sim.Rand
	inserted int64

	// RMWs counts read-modify-write pairs issued (workload F).
	RMWs int64
}

// NewGenerator builds a generator for w.
func NewGenerator(w Workload, cfg Config) *Generator {
	rng := sim.NewRand(cfg.Seed ^ uint64(w))
	return &Generator{
		W: w, Cfg: cfg,
		zip:      NewZipfian(rng.Fork(), int64(cfg.Records), cfg.Theta),
		rng:      rng,
		inserted: int64(cfg.Records),
	}
}

// key draws the target key per the workload's distribution.
func (g *Generator) key() uint64 {
	if g.W == D {
		// Latest distribution: skewed towards the most recent inserts.
		off := NewZipfian(g.rng, 64, g.Cfg.Theta).Next()
		k := g.inserted - 1 - off
		if k < 0 {
			k = 0
		}
		return uint64(k)
	}
	return uint64(g.zip.Scrambled())
}

// Next produces the next request (two for a read-modify-write: the returned
// slice has one or two elements, executed in order).
func (g *Generator) Next() []*rpc.Request {
	v := g.rng.Float64()
	sz := g.Cfg.ValueSize
	switch g.W {
	case A:
		if v < 0.5 {
			return []*rpc.Request{{Op: rpc.OpWrite, Key: g.key(), Size: sz}}
		}
	case B:
		if v < 0.05 {
			return []*rpc.Request{{Op: rpc.OpWrite, Key: g.key(), Size: sz}}
		}
	case C:
		// read-only
	case D:
		if v < 0.05 {
			k := uint64(g.inserted)
			g.inserted++
			return []*rpc.Request{{Op: rpc.OpWrite, Key: k, Size: sz}}
		}
	case E:
		if v < 0.05 {
			k := uint64(g.inserted)
			g.inserted++
			return []*rpc.Request{{Op: rpc.OpWrite, Key: k, Size: sz}}
		}
		scan := 1 + g.rng.Intn(g.Cfg.MaxScan)
		return []*rpc.Request{{Op: rpc.OpScan, Key: g.key(), Size: sz, ScanLen: scan}}
	case F:
		if v < 0.5 {
			g.RMWs++
			k := g.key()
			return []*rpc.Request{
				{Op: rpc.OpRead, Key: k, Size: sz},
				{Op: rpc.OpWrite, Key: k, Size: sz},
			}
		}
	}
	return []*rpc.Request{{Op: rpc.OpRead, Key: g.key(), Size: sz}}
}

// Mix returns a generator for an arbitrary read fraction over zipfian keys —
// the knob behind Figs. 8, 12 and 18.
type Mix struct {
	ReadFrac float64
	Size     int
	zip      *Zipfian
	rng      *sim.Rand
}

// NewMix builds a read/write mix over n keys.
func NewMix(readFrac float64, n int64, size int, seed uint64) *Mix {
	rng := sim.NewRand(seed)
	return &Mix{ReadFrac: readFrac, Size: size, zip: NewZipfian(rng.Fork(), n, 0.99), rng: rng}
}

// Next produces the next request.
func (m *Mix) Next() *rpc.Request {
	op := rpc.OpWrite
	if m.rng.Float64() < m.ReadFrac {
		op = rpc.OpRead
	}
	return &rpc.Request{Op: op, Key: uint64(m.zip.Scrambled()), Size: m.Size}
}
