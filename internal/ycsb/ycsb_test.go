package ycsb

import (
	"testing"
	"testing/quick"

	"prdma/internal/rpc"
	"prdma/internal/sim"
)

func TestZipfianRange(t *testing.T) {
	z := NewZipfian(sim.NewRand(1), 1000, 0.99)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("zipfian out of range: %d", v)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(sim.NewRand(2), 10000, 0.99)
	counts := make(map[int64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should dominate: with theta=0.99 over 10k items it gets ~10%.
	if frac := float64(counts[0]) / draws; frac < 0.05 {
		t.Fatalf("head item got only %.1f%% of draws", frac*100)
	}
	// And the tail should still be hit.
	distinct := len(counts)
	if distinct < 1000 {
		t.Fatalf("only %d distinct keys drawn", distinct)
	}
}

func TestScrambledSpreadsHotKeys(t *testing.T) {
	z := NewZipfian(sim.NewRand(3), 10000, 0.99)
	counts := make(map[int64]int)
	for i := 0; i < 100000; i++ {
		k := z.Scrambled()
		if k < 0 || k >= 10000 {
			t.Fatalf("scrambled key out of range: %d", k)
		}
		counts[k]++
	}
	// The hottest key must not be key 0 by construction; find the top key
	// and check the distribution is still skewed.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 5000 {
		t.Fatalf("scrambling destroyed skew: max count %d", max)
	}
}

func TestZipfianDeterminism(t *testing.T) {
	a := NewZipfian(sim.NewRand(7), 1000, 0.99)
	b := NewZipfian(sim.NewRand(7), 1000, 0.99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("zipfian not deterministic")
		}
	}
}

func TestWorkloadMixRatios(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 1000
	cases := []struct {
		w           Workload
		wantWrites  float64
		wantScans   float64
		tol         float64
		rmwExpected bool
	}{
		{A, 0.50, 0, 0.03, false},
		{B, 0.05, 0, 0.02, false},
		{C, 0.00, 0, 0.001, false},
		{D, 0.05, 0, 0.02, false},
		{E, 0.05, 0.95, 0.02, false},
		{F, 0.25, 0, 0.03, true}, // 50% RMW -> 1/3 of ops are writes; per-pair accounting below
	}
	for _, c := range cases {
		g := NewGenerator(c.w, cfg)
		var reads, writes, scans, total int
		const draws = 20000
		for i := 0; i < draws; i++ {
			for _, r := range g.Next() {
				total++
				switch r.Op {
				case rpc.OpWrite:
					writes++
				case rpc.OpScan:
					scans++
				default:
					reads++
				}
			}
		}
		wf := float64(writes) / float64(total)
		sf := float64(scans) / float64(total)
		wantW, wantS := c.wantWrites, c.wantScans
		if c.w == F {
			// F emits read+write pairs for RMW: writes/total ~ 1/3.
			wantW = 1.0 / 3
		}
		if c.w == E {
			wantS = 0.95
		}
		if diff := wf - wantW; diff > c.tol || diff < -c.tol {
			t.Errorf("workload %v: write frac %.3f, want %.3f", c.w, wf, wantW)
		}
		if diff := sf - wantS; diff > 0.03 || diff < -0.03 {
			t.Errorf("workload %v: scan frac %.3f, want %.3f", c.w, sf, wantS)
		}
		if c.rmwExpected && g.RMWs == 0 {
			t.Errorf("workload %v: no RMWs", c.w)
		}
	}
}

func TestWorkloadDInsertsGrowKeyspace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 100
	g := NewGenerator(D, cfg)
	for i := 0; i < 5000; i++ {
		g.Next()
	}
	if g.inserted <= 100 {
		t.Fatal("workload D never inserted")
	}
	// Latest-distribution reads target recent keys.
	recent := 0
	for i := 0; i < 1000; i++ {
		reqs := g.Next()
		r := reqs[0]
		if r.Op == rpc.OpRead && int64(r.Key) > g.inserted-64 {
			recent++
		}
	}
	if recent < 500 {
		t.Fatalf("only %d of ~950 reads hit recent keys", recent)
	}
}

func TestScanLengthsBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 100
	g := NewGenerator(E, cfg)
	for i := 0; i < 5000; i++ {
		for _, r := range g.Next() {
			if r.Op == rpc.OpScan && (r.ScanLen < 1 || r.ScanLen > cfg.MaxScan) {
				t.Fatalf("scan length %d out of bounds", r.ScanLen)
			}
		}
	}
}

// TestGeneratorDeterministicStream pins the determinism contract the
// adversarial matrix leans on: for every core workload, a fixed (seed,
// config) pair reproduces the identical operation stream — op, key, size and
// scan length all equal, element by element.
func TestGeneratorDeterministicStream(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 500
	cfg.Seed = 31
	for _, w := range Workloads {
		t.Run(w.String(), func(t *testing.T) {
			a, b := NewGenerator(w, cfg), NewGenerator(w, cfg)
			for i := 0; i < 3000; i++ {
				ra, rb := a.Next(), b.Next()
				if len(ra) != len(rb) {
					t.Fatalf("draw %d: %d vs %d requests", i, len(ra), len(rb))
				}
				for j := range ra {
					if ra[j].Op != rb[j].Op || ra[j].Key != rb[j].Key ||
						ra[j].Size != rb[j].Size || ra[j].ScanLen != rb[j].ScanLen {
						t.Fatalf("draw %d[%d]: %+v vs %+v", i, j, ra[j], rb[j])
					}
				}
			}
			if a.RMWs != b.RMWs {
				t.Fatalf("RMW counts diverged: %d vs %d", a.RMWs, b.RMWs)
			}
		})
	}
}

// TestGeneratorSeedVariesStream is the inverse pin: a different seed must
// produce a different stream, so seed sweeps genuinely vary the traffic.
func TestGeneratorSeedVariesStream(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 500
	cfg.Seed = 31
	cfg2 := cfg
	cfg2.Seed = 32
	a, b := NewGenerator(A, cfg), NewGenerator(A, cfg2)
	for i := 0; i < 1000; i++ {
		ra, rb := a.Next(), b.Next()
		if ra[0].Op != rb[0].Op || ra[0].Key != rb[0].Key {
			return
		}
	}
	t.Fatal("1000 identical draws across different seeds")
}

// TestScanLengthDistribution checks workload E's scan lengths are uniform on
// [1, MaxScan]: every length occurs, frequencies stay near 1/MaxScan, and
// the mean sits at (MaxScan+1)/2.
func TestScanLengthDistribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 1000
	cfg.MaxScan = 16
	g := NewGenerator(E, cfg)
	counts := make(map[int]int)
	scans, sum := 0, 0
	for i := 0; i < 40000; i++ {
		for _, r := range g.Next() {
			if r.Op != rpc.OpScan {
				continue
			}
			counts[r.ScanLen]++
			scans++
			sum += r.ScanLen
		}
	}
	if scans == 0 {
		t.Fatal("workload E produced no scans")
	}
	expect := float64(scans) / float64(cfg.MaxScan)
	for l := 1; l <= cfg.MaxScan; l++ {
		c := counts[l]
		if c == 0 {
			t.Errorf("scan length %d never drawn", l)
		}
		if f := float64(c); f < 0.8*expect || f > 1.2*expect {
			t.Errorf("scan length %d drawn %d times, want ~%.0f (uniform)", l, c, expect)
		}
	}
	mean := float64(sum) / float64(scans)
	want := float64(cfg.MaxScan+1) / 2
	if mean < want-0.3 || mean > want+0.3 {
		t.Errorf("mean scan length %.2f, want ~%.1f", mean, want)
	}
}

func TestMixReadFraction(t *testing.T) {
	f := func(fracRaw uint8) bool {
		frac := float64(fracRaw%101) / 100
		m := NewMix(frac, 1000, 64, 9)
		reads := 0
		const n = 5000
		for i := 0; i < n; i++ {
			if m.Next().Op == rpc.OpRead {
				reads++
			}
		}
		got := float64(reads) / n
		return got > frac-0.05 && got < frac+0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMixKeysInRange(t *testing.T) {
	m := NewMix(0.5, 500, 64, 10)
	for i := 0; i < 10000; i++ {
		if k := m.Next().Key; k >= 500 {
			t.Fatalf("key %d out of range", k)
		}
	}
}
