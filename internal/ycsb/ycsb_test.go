package ycsb

import (
	"testing"
	"testing/quick"

	"prdma/internal/rpc"
	"prdma/internal/sim"
)

func TestZipfianRange(t *testing.T) {
	z := NewZipfian(sim.NewRand(1), 1000, 0.99)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("zipfian out of range: %d", v)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(sim.NewRand(2), 10000, 0.99)
	counts := make(map[int64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should dominate: with theta=0.99 over 10k items it gets ~10%.
	if frac := float64(counts[0]) / draws; frac < 0.05 {
		t.Fatalf("head item got only %.1f%% of draws", frac*100)
	}
	// And the tail should still be hit.
	distinct := len(counts)
	if distinct < 1000 {
		t.Fatalf("only %d distinct keys drawn", distinct)
	}
}

func TestScrambledSpreadsHotKeys(t *testing.T) {
	z := NewZipfian(sim.NewRand(3), 10000, 0.99)
	counts := make(map[int64]int)
	for i := 0; i < 100000; i++ {
		k := z.Scrambled()
		if k < 0 || k >= 10000 {
			t.Fatalf("scrambled key out of range: %d", k)
		}
		counts[k]++
	}
	// The hottest key must not be key 0 by construction; find the top key
	// and check the distribution is still skewed.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 5000 {
		t.Fatalf("scrambling destroyed skew: max count %d", max)
	}
}

func TestZipfianDeterminism(t *testing.T) {
	a := NewZipfian(sim.NewRand(7), 1000, 0.99)
	b := NewZipfian(sim.NewRand(7), 1000, 0.99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("zipfian not deterministic")
		}
	}
}

func TestWorkloadMixRatios(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 1000
	cases := []struct {
		w           Workload
		wantWrites  float64
		wantScans   float64
		tol         float64
		rmwExpected bool
	}{
		{A, 0.50, 0, 0.03, false},
		{B, 0.05, 0, 0.02, false},
		{C, 0.00, 0, 0.001, false},
		{D, 0.05, 0, 0.02, false},
		{E, 0.05, 0.95, 0.02, false},
		{F, 0.25, 0, 0.03, true}, // 50% RMW -> 1/3 of ops are writes; per-pair accounting below
	}
	for _, c := range cases {
		g := NewGenerator(c.w, cfg)
		var reads, writes, scans, total int
		const draws = 20000
		for i := 0; i < draws; i++ {
			for _, r := range g.Next() {
				total++
				switch r.Op {
				case rpc.OpWrite:
					writes++
				case rpc.OpScan:
					scans++
				default:
					reads++
				}
			}
		}
		wf := float64(writes) / float64(total)
		sf := float64(scans) / float64(total)
		wantW, wantS := c.wantWrites, c.wantScans
		if c.w == F {
			// F emits read+write pairs for RMW: writes/total ~ 1/3.
			wantW = 1.0 / 3
		}
		if c.w == E {
			wantS = 0.95
		}
		if diff := wf - wantW; diff > c.tol || diff < -c.tol {
			t.Errorf("workload %v: write frac %.3f, want %.3f", c.w, wf, wantW)
		}
		if diff := sf - wantS; diff > 0.03 || diff < -0.03 {
			t.Errorf("workload %v: scan frac %.3f, want %.3f", c.w, sf, wantS)
		}
		if c.rmwExpected && g.RMWs == 0 {
			t.Errorf("workload %v: no RMWs", c.w)
		}
	}
}

func TestWorkloadDInsertsGrowKeyspace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 100
	g := NewGenerator(D, cfg)
	for i := 0; i < 5000; i++ {
		g.Next()
	}
	if g.inserted <= 100 {
		t.Fatal("workload D never inserted")
	}
	// Latest-distribution reads target recent keys.
	recent := 0
	for i := 0; i < 1000; i++ {
		reqs := g.Next()
		r := reqs[0]
		if r.Op == rpc.OpRead && int64(r.Key) > g.inserted-64 {
			recent++
		}
	}
	if recent < 500 {
		t.Fatalf("only %d of ~950 reads hit recent keys", recent)
	}
}

func TestScanLengthsBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 100
	g := NewGenerator(E, cfg)
	for i := 0; i < 5000; i++ {
		for _, r := range g.Next() {
			if r.Op == rpc.OpScan && (r.ScanLen < 1 || r.ScanLen > cfg.MaxScan) {
				t.Fatalf("scan length %d out of bounds", r.ScanLen)
			}
		}
	}
}

func TestMixReadFraction(t *testing.T) {
	f := func(fracRaw uint8) bool {
		frac := float64(fracRaw%101) / 100
		m := NewMix(frac, 1000, 64, 9)
		reads := 0
		const n = 5000
		for i := 0; i < n; i++ {
			if m.Next().Op == rpc.OpRead {
				reads++
			}
		}
		got := float64(reads) / n
		return got > frac-0.05 && got < frac+0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMixKeysInRange(t *testing.T) {
	m := NewMix(0.5, 500, 64, 10)
	for i := 0; i < 10000; i++ {
		if k := m.Next().Key; k >= 500 {
			t.Fatalf("key %d out of range", k)
		}
	}
}
