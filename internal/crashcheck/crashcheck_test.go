package crashcheck

import (
	"strings"
	"testing"

	"prdma/internal/rpc"
)

// TestSweepClean sweeps crash points across every durable RPC family and
// traffic mix and expects zero invariant violations: acked writes survive
// every crash placement, replay is ordered, torn entries are rejected,
// and accounting reconciles after recovery.
func TestSweepClean(t *testing.T) {
	for _, kind := range rpc.DurableKinds {
		for _, mix := range Mixes {
			kind, mix := kind, mix
			t.Run(kind.String()+"/"+mix.String(), func(t *testing.T) {
				t.Parallel()
				cfg := DefaultConfig(kind, mix, 42)
				cfg.Points = 60
				cfg.TornPoints = 15
				res := Sweep(cfg)
				if res.Points < cfg.Points {
					t.Fatalf("swept %d points, want >= %d (reference run fired %d events)",
						res.Points, cfg.Points, res.Events)
				}
				for _, v := range res.Violations {
					t.Errorf("violation: %v", v)
				}
				if res.ViolationCount > len(res.Violations) {
					t.Errorf("%d further violations truncated", res.ViolationCount-len(res.Violations))
				}
				if res.Replayed == 0 {
					t.Errorf("no crash point led to a log replay; the sweep is not exercising recovery")
				}
			})
		}
	}
}

// TestSecondCrashDuringRecoveryClean arms a second crash at every point,
// so every recovery is itself interrupted and recovered again.
func TestSecondCrashDuringRecoveryClean(t *testing.T) {
	cfg := DefaultConfig(rpc.WFlushRPC, MixReadWrite, 7)
	cfg.Points = 40
	cfg.TornPoints = 10
	cfg.SecondCrashEvery = 1
	res := Sweep(cfg)
	for _, v := range res.Violations {
		t.Errorf("violation: %v", v)
	}
	if res.Replayed == 0 {
		t.Errorf("no replays despite double crashes at every point")
	}
}

// TestAckBeforeDurableCaught re-introduces the §2.4 premature-ack bug
// (flush ACK at DMA placement instead of the durability horizon) and
// requires the sweep to catch it as a lost acked write, with a
// reproducible (seed, point) pair.
func TestAckBeforeDurableCaught(t *testing.T) {
	for _, kind := range []rpc.Kind{rpc.WFlushRPC, rpc.SFlushRPC} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(kind, MixWrites, 11)
			// Large objects widen the placement→durability gap the bug
			// exposes, so event-boundary crashes land inside it.
			cfg.ObjSize = 16384
			cfg.Points = 120
			cfg.TornPoints = 40
			cfg.AckBeforeDurable = true
			res := Sweep(cfg)
			if res.ViolationCount == 0 {
				t.Fatalf("premature-ack bug not caught over %d points (%d events)", res.Points, res.Events)
			}
			min := res.Minimal()
			if min == nil {
				t.Fatal("violations counted but none recorded")
			}
			if !strings.Contains(min.Msg, "acked write") {
				t.Errorf("expected a lost/torn acked write, got: %v", min)
			}
			// The minimal reproduction must replay deterministically
			// from (seed, point) alone.
			r, _ := runPoint(cfg, min.Point, 0)
			repro := r.verify()
			found := false
			for _, msg := range repro {
				if msg == min.Msg {
					found = true
				}
			}
			if !found {
				t.Errorf("minimal point %v did not reproduce %q; got %q", min.Point, min.Msg, repro)
			}
		})
	}
}

// TestPointDeterminism runs the same crash point twice and requires
// byte-identical verification output — the property that makes a printed
// (seed, point) pair a real reproduction recipe.
func TestPointDeterminism(t *testing.T) {
	cfg := DefaultConfig(rpc.WRFlushRPC, MixBatch, 3)
	pt := Point{Event: 900, TornFrac: 0.5, SecondCrash: true}
	a, atA := runPoint(cfg, pt, 0)
	b, atB := runPoint(cfg, pt, 0)
	if atA != atB {
		t.Fatalf("crash times diverged: %v vs %v", atA, atB)
	}
	va, vb := a.verify(), b.verify()
	if len(va) != len(vb) {
		t.Fatalf("verification diverged: %q vs %q", va, vb)
	}
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("verification diverged at %d: %q vs %q", i, va[i], vb[i])
		}
	}
	if a.replayed != b.replayed {
		t.Fatalf("replay counts diverged: %d vs %d", a.replayed, b.replayed)
	}
}
