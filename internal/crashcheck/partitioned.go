// Partitioned mode: the cluster crash sweep against the parallel engine
// deployment (cluster.NewPartitioned). The serial sweep's crash coordinate
// — "after event i" — does not exist under parallel execution: worker
// threads interleave events inside a window, so no global event index is
// stable. Window barriers are: every boundary is a global quiesce point
// (no kernel mid-event, every delivered cross message queued), and with
// identical inputs the i-th window covers the same events in every run at
// any worker count. So the partitioned sweep crashes "at window w" instead,
// replaying the same workload per point and injecting the crash at that
// barrier inside a serialized engine span. The driver holds the Serialize
// token — and with it the serial-kernel-equivalent global event order the
// failover choreography needs — from the crash until the cluster is healthy
// again, firing restarts and second crashes at the first barrier past their
// due time. Invariants checked are the cluster contract (see cluster.go);
// a violation's minimal repro is its (seed, window, workers) triple.
package crashcheck

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"prdma/internal/cluster"
	"prdma/internal/sim"
)

// PartitionedConfig parameterizes one window-indexed sweep.
type PartitionedConfig struct {
	// Seed drives the workload, placement, and point selection.
	Seed int64
	// Points is how many window-boundary crash points to sweep.
	Points int
	// SecondCrashEvery arms a second same-shard crash during the first
	// victim's resync window at every n-th point. 0 disables.
	SecondCrashEvery int
	// Ops and Clients size the closed-loop verified workload.
	Ops, Clients int
	// Shards and Replicas shape the deployment (one gateway: the failover
	// controller requires it).
	Shards, Replicas int
	// ObjSize is the object size in bytes (≥ 16 for versioned payloads).
	ObjSize int
	// Workers is the engine worker count. The crash windows are
	// worker-count-stable, so a violation found at Workers=8 replays at
	// Workers=1 — that is the point of the coordinate system.
	Workers int
	// Mutant seeds a known bug class, as in ClusterConfig: "ackbug" or
	// "resurrect".
	Mutant string
}

// DefaultPartitionedConfig returns a CI-sized partitioned sweep.
func DefaultPartitionedConfig(seed int64) PartitionedConfig {
	return PartitionedConfig{
		Seed:             seed,
		Points:           40,
		SecondCrashEvery: 6,
		Ops:              240,
		Clients:          6,
		Shards:           2,
		Replicas:         3,
		ObjSize:          64,
		Workers:          2,
	}
}

// PartitionedResult summarizes one partitioned sweep. Point.Event holds the
// crash window index.
type PartitionedResult struct {
	Seed    int64
	Workers int
	Points  int
	// Windows is the window count of the crash-free reference load — the
	// coordinate space the points were sampled from.
	Windows uint64
	// Controller work totals across all points.
	Failovers, Resyncs, Replayed, Shipped int64
	// PMFull totals PM-exhaustion backpressure drops across all points.
	PMFull         int64
	Violations     []ClusterViolation
	ViolationCount int
}

// Minimal returns the earliest-window violation, nil when clean. Replaying
// it needs only the (seed, window, workers) triple — and workers is free to
// be 1, since window indices are worker-count-stable.
func (r *PartitionedResult) Minimal() *ClusterViolation {
	var min *ClusterViolation
	for i := range r.Violations {
		v := &r.Violations[i]
		if min == nil || v.Point.Event < min.Point.Event {
			min = v
		}
	}
	return min
}

// pRun is one partitioned deployment plus its in-flight workload; the sweep
// driver owns the engine stepping.
type pRun struct {
	c    *cluster.PCluster
	ct   *cluster.PController
	load *cluster.PLoadRun
	res  *cluster.PLoadResult
	err  error

	loadEndWindows uint64
	auditMsgs      []string
}

func newPartitionedRun(cfg PartitionedConfig) *pRun {
	p := cluster.DefaultParams()
	p.Shards = cfg.Shards
	p.Replicas = cfg.Replicas
	p.Gateways = 1
	p.PoolSize = 2
	p.Objects = 128
	p.ObjSize = cfg.ObjSize
	p.Seed = uint64(cfg.Seed) | 1
	switch cfg.Mutant {
	case "ackbug":
		// See ClusterConfig.Mutant: the premature-ack knob only exists on
		// the native flush path.
		p.NIC.EmulateFlush = false
		p.NIC.AckBeforeDurable = true
	case "resurrect":
		p.MutantResurrect = true
	}
	r := &pRun{}
	c, err := cluster.NewPartitioned(cfg.Workers, p)
	if err != nil {
		panic(err)
	}
	r.c = c
	c.EnableAckAudit()
	ct, err := c.StartController()
	if err != nil {
		panic(err)
	}
	r.ct = ct
	ct.AuditReplay = r.auditReplay
	r.load, r.err = c.StartLoad(cluster.Load{
		Clients:  cfg.Clients,
		Ops:      cfg.Ops,
		ReadFrac: 0.3,
		Verify:   true,
		Seed:     uint64(cfg.Seed) | 1,
	})
	if r.err != nil {
		panic(r.err)
	}
	return r
}

// auditReplay is the partitioned port of clusterRun.auditReplay: hold a
// rejoining replica to its §4.2 ack contract right after log replay, before
// any catch-up image ships.
func (r *pRun) auditReplay(p *sim.Proc, grp *cluster.PGroup, ri int) {
	acked := grp.AckedVersions(ri)
	if len(acked) == 0 {
		return
	}
	rep := grp.Replicas[ri]
	slots := make([]uint64, 0, len(acked))
	for slot := range acked {
		slots = append(slots, slot)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	buf := make([]byte, 12)
	for _, slot := range slots {
		want := acked[slot]
		if !rep.Store.Has(slot) {
			r.auditMsgs = append(r.auditMsgs, fmt.Sprintf(
				"ack audit: shard %d replica %d slot %d: durably acked ver %d but replay restored nothing",
				grp.ID, ri, slot, want))
			continue
		}
		got := binary.LittleEndian.Uint32(rep.Host.PM.ReadBytesInto(rep.Store.Addr(slot), buf)[8:12])
		if got < want {
			r.auditMsgs = append(r.auditMsgs, fmt.Sprintf(
				"ack audit: shard %d replica %d slot %d: durably acked ver %d but replay restored ver %d",
				grp.ID, ri, slot, want, got))
		}
	}
}

// stepTo advances the engine to exactly window w (a no-op if already past).
func (r *pRun) stepTo(w uint64) {
	for r.c.Eng.Windows() < w {
		n := int(w - r.c.Eng.Windows())
		if n > 4096 {
			n = 4096
		}
		if r.c.Eng.RunWindows(n) == 0 {
			return // quiescent before w: crash lands on a drained engine
		}
	}
}

// injection is a driver-side pending intervention, fired at the first window
// barrier at or past its due time. Crashes enqueue the victim's restart
// P.Restart later — the partitioned CrashReplica leaves the restart to the
// driver because only barriers may flip replica liveness.
type injection struct {
	due   sim.Time
	crash bool
	s, r  int
}

// settle fires due injections and steps windows until every injection has
// fired, the load has finished, and the cluster is healthy — or the horizon
// passes. The controller polls forever, so the engine never quiesces on its
// own; sim time bounds the run. Returns at a window barrier.
func (r *pRun) settle(pend []injection, horizon sim.Time) {
	for {
		now := r.c.Now()
		for i := 0; i < len(pend); {
			inj := pend[i]
			if inj.due > now {
				i++
				continue
			}
			pend = append(pend[:i], pend[i+1:]...)
			if inj.crash {
				r.c.CrashReplica(inj.s, inj.r)
				pend = append(pend, injection{due: now.Add(r.c.P.Restart), s: inj.s, r: inj.r})
			} else {
				r.c.RestartReplica(inj.s, inj.r)
			}
			i = 0
		}
		if len(pend) == 0 && r.load.Done() && r.c.Healthy() {
			return
		}
		if now >= horizon {
			return
		}
		if r.c.Eng.RunWindows(16) == 0 {
			return
		}
	}
}

// drain stops the controller and runs the engine quiescent (bounded, in case
// an auxiliary proc is still polling), then collects the load result.
func (r *pRun) drain(horizon sim.Time) {
	r.ct.Stop()
	for r.c.Now() < horizon && r.c.Eng.RunWindows(256) != 0 {
	}
	r.res = r.load.Collect()
}

// verify checks the cluster contract after drain (see clusterRun.verify).
func (r *pRun) verify() []string {
	var out []string
	bad := func(format string, a ...any) {
		out = append(out, fmt.Sprintf(format, a...))
	}
	out = append(out, r.auditMsgs...)
	if !r.load.Done() {
		bad("workload never finished before the settle horizon")
		return out
	}
	if r.res.Errors != 0 {
		bad("%d operations failed permanently", r.res.Errors)
	}
	if r.res.BadReads != 0 {
		bad("%d reads returned malformed or future payloads", r.res.BadReads)
	}
	if !r.c.Healthy() {
		bad("cluster not healthy at horizon (replica still down or resyncing)")
	}
	if err := r.c.CheckConsistency(); err != nil {
		bad("consistency: %v", err)
	}
	return out
}

func (r *pRun) counters(res *PartitionedResult) {
	for _, grp := range r.c.Groups {
		res.Failovers += grp.Failovers
		res.Resyncs += grp.Resyncs
		res.Replayed += grp.Replayed
		res.Shipped += grp.Shipped
	}
	res.PMFull += r.c.PMFull()
}

// PartitionedSweep runs the crash-free reference to size the window space,
// then replays the workload once per window-boundary crash point.
func PartitionedSweep(cfg PartitionedConfig) PartitionedResult {
	res := PartitionedResult{Seed: cfg.Seed, Workers: cfg.Workers}
	horizonFrom := func(t sim.Time) sim.Time { return t.Add(120 * time.Millisecond) }

	ref := newPartitionedRun(cfg)
	refHorizon := horizonFrom(0)
	for !(ref.load.Done() && ref.c.Healthy()) && ref.c.Now() < refHorizon {
		if ref.c.Eng.RunWindows(16) == 0 {
			break
		}
		if ref.loadEndWindows == 0 && ref.load.Done() {
			ref.loadEndWindows = ref.c.Eng.Windows()
		}
	}
	ref.drain(refHorizon)
	res.Windows = ref.loadEndWindows
	record := func(r *pRun, pt Point, at sim.Time, msgs []string) {
		for _, msg := range msgs {
			res.ViolationCount++
			if len(res.Violations) < maxViolations {
				res.Violations = append(res.Violations, ClusterViolation{
					Seed: cfg.Seed, Point: pt, At: at, Msg: msg,
				})
			}
		}
	}
	record(ref, Point{}, ref.c.Now(), ref.verify())
	ref.c.Eng.Shutdown()

	points := pickPartitionedPoints(cfg, res.Windows)
	res.Points = len(points)
	for _, pt := range points {
		r := newPartitionedRun(cfg)
		w := pt.Event
		r.stepTo(w)
		at := r.c.Now()
		// The victim cycles deterministically through every (shard, replica)
		// pair as the window index advances.
		s := int(w) % cfg.Shards
		rep := int(w/uint64(cfg.Shards)) % cfg.Replicas
		// The driver holds the Serialize token across the whole crash/
		// recovery span: every post-crash window runs serial-kernel
		// equivalent, which is what legalizes the controller's cross-
		// partition reestablish/quiesce/drain choreography.
		r.c.Eng.Serialize()
		pend := []injection{{due: at, crash: true, s: s, r: rep}}
		if pt.SecondCrash {
			// A second replica of the same shard fails while the first
			// victim's recovery/resync is typically in flight.
			delta := time.Duration(w%40) * 50 * time.Microsecond
			pend = append(pend, injection{
				due: at.Add(r.c.P.Restart + delta), crash: true, s: s, r: (rep + 1) % cfg.Replicas,
			})
		}
		horizon := horizonFrom(at)
		r.settle(pend, horizon)
		r.drain(horizon)
		r.c.Eng.Unserialize()
		r.counters(&res)
		record(r, pt, at, r.verify())
		r.c.Eng.Shutdown()
	}
	return res
}

// pickPartitionedPoints samples distinct window boundaries across the
// reference load's window space.
func pickPartitionedPoints(cfg PartitionedConfig, windows uint64) []Point {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x9A27170))
	lo := uint64(20)
	if windows <= lo+2 {
		lo = 1
	}
	span := int64(windows - lo)
	if span <= 0 {
		span = 1
	}
	seen := make(map[uint64]bool)
	var points []Point
	n := cfg.Points
	if uint64(n) > uint64(span) {
		n = int(span)
	}
	for len(points) < n {
		w := lo + uint64(rng.Int63n(span))
		if seen[w] {
			continue
		}
		seen[w] = true
		points = append(points, Point{Event: w})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Event < points[j].Event })
	if cfg.SecondCrashEvery > 0 {
		for i := range points {
			if (i+1)%cfg.SecondCrashEvery == 0 {
				points[i].SecondCrash = true
			}
		}
	}
	return points
}
