package crashcheck

import (
	"testing"
)

// TestClusterSweepClean sweeps a reduced point set over the cluster
// failover/resync path: no acknowledged write may be lost and replicas
// must converge byte-identically at every crash placement.
func TestClusterSweepClean(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep is seconds-long")
	}
	cfg := DefaultClusterConfig(1)
	cfg.Points = 12
	cfg.SecondCrashEvery = 4
	res := ClusterSweep(cfg)
	if res.ViolationCount != 0 {
		for _, v := range res.Violations {
			t.Error(v)
		}
		t.Fatalf("%d violations over %d points (minimal: %v)",
			res.ViolationCount, res.Points, res.Minimal())
	}
	if res.Points != 12 {
		t.Fatalf("swept %d points, want 12", res.Points)
	}
	if res.Failovers == 0 {
		t.Fatal("no crash was ever detected — the sweep tested nothing")
	}
	if res.Resyncs == 0 {
		t.Fatal("no resync completed — readmission path untested")
	}
	if res.Shipped == 0 {
		t.Fatal("log shipping never ran")
	}
}

// TestClusterSweepDeterministic replays one point twice and expects
// identical outcomes (event count, controller work, violations).
func TestClusterSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep is seconds-long")
	}
	cfg := DefaultClusterConfig(7)
	cfg.Points = 3
	cfg.SecondCrashEvery = 0
	a := ClusterSweep(cfg)
	b := ClusterSweep(cfg)
	if a.Events != b.Events || a.Failovers != b.Failovers ||
		a.Resyncs != b.Resyncs || a.Shipped != b.Shipped ||
		a.Replayed != b.Replayed || a.ViolationCount != b.ViolationCount {
		t.Fatalf("sweep not deterministic:\n  a=%+v\n  b=%+v", a, b)
	}
}
