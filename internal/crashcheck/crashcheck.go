// Package crashcheck is a deterministic crash-point sweep checker for the
// durable-RPC recovery path. It replays the same pipelined client workload
// over and over, each time injecting a server crash at a different point —
// every selected event boundary in the run, plus seeded offsets *inside*
// the PM device's in-flight persist windows (torn writes) — then restarts
// the server, runs redo-log recovery and connection re-establishment, and
// asserts the crash-consistency contract end to end:
//
//  1. No acked write is ever lost: every request whose durability future
//     completed before the crash is either already applied or replayed.
//  2. Replay is at-least-once and in sequence order: the recovery scan
//     yields strictly increasing sequence numbers at or above the durable
//     floor (the sequence space is gapped — reads own numbers but no log
//     bytes — so contiguity is not required).
//  3. Torn entries never surface: anything the scan returns decodes to an
//     internally consistent request frame; a commit word that was not yet
//     durable keeps the entry (and everything after it) out.
//  4. Post-recovery ring accounting matches a from-scratch reconstruction
//     of the ring state (redolog.CheckAccounting).
//  5. A crash during recovery is itself recoverable: selected points arm
//     a second crash timed to land while the first recovery is in flight.
//
// Determinism: the workload is precomputed from a seed, the simulator is
// deterministic, and crashes are placed by event index (Kernel.RunEvents)
// or by an exact simulated time inside a persist window (Kernel.RunUntil),
// so every violation is replayable from (seed, point) alone.
package crashcheck

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/redolog"
	"prdma/internal/rnic"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// Mix selects the traffic shape driven through the client.
type Mix int

const (
	// MixWrites is all full-object writes.
	MixWrites Mix = iota
	// MixReadWrite interleaves reads between writes, so the log's
	// sequence space has gaps (reads take numbers but no log bytes).
	MixReadWrite
	// MixBatch issues multi-request batch frames (plus interleaved
	// singles), exercising batch replay after a crash.
	MixBatch
)

// Mixes lists all traffic mixes.
var Mixes = []Mix{MixWrites, MixReadWrite, MixBatch}

func (m Mix) String() string {
	switch m {
	case MixWrites:
		return "writes"
	case MixReadWrite:
		return "readwrite"
	default:
		return "batch"
	}
}

// Config parameterizes one sweep.
type Config struct {
	Kind rpc.Kind
	Mix  Mix
	// Seed drives workload generation and crash-point selection.
	Seed int64
	// Points is how many event-boundary crash points to sweep.
	Points int
	// TornPoints is how many extra points aim inside an in-flight
	// persist's service window (a torn write) instead of at an event
	// boundary.
	TornPoints int
	// SecondCrashEvery arms a second crash — timed to land while the
	// first recovery is running — at every n-th point. 0 disables.
	SecondCrashEvery int
	// Ops is the number of client operations per run.
	Ops int
	// Pipeline is the number of concurrent client worker procs.
	Pipeline int
	// ObjSize is the object (and write payload) size in bytes.
	ObjSize int
	// AckBeforeDurable re-introduces the §2.4 premature-ack bug in the
	// NIC (flush ACK at DMA placement instead of the durability
	// horizon). The sweep must then report lost acked writes.
	AckBeforeDurable bool
	// Restart is the server restart latency after a crash.
	Restart time.Duration
	// Retransfer is the client's call timeout / retry interval.
	Retransfer time.Duration
}

// DefaultConfig returns a sweep sized for CI: small objects, a short
// restart, and enough operations that the log ring wraps several times.
func DefaultConfig(kind rpc.Kind, mix Mix, seed int64) Config {
	return Config{
		Kind:             kind,
		Mix:              mix,
		Seed:             seed,
		Points:           250,
		TornPoints:       50,
		SecondCrashEvery: 5,
		Ops:              96,
		Pipeline:         4,
		ObjSize:          256,
		Restart:          2 * time.Millisecond,
		Retransfer:       500 * time.Microsecond,
	}
}

// Point identifies one crash placement.
type Point struct {
	// Event is the event-boundary index the crash lands on.
	Event uint64
	// TornFrac, when positive, advances the clock from the event
	// boundary to this fraction of an in-flight persist window before
	// crashing, so the crash lands mid-persist.
	TornFrac float64
	// SecondCrash arms another crash during the first recovery.
	SecondCrash bool
}

func (pt Point) String() string {
	s := fmt.Sprintf("event=%d", pt.Event)
	if pt.TornFrac > 0 {
		s += fmt.Sprintf(" torn=%.3f", pt.TornFrac)
	}
	if pt.SecondCrash {
		s += " second-crash"
	}
	return s
}

// Violation is one broken invariant at one crash point.
type Violation struct {
	Kind  rpc.Kind
	Mix   Mix
	Seed  int64
	Point Point
	// At is the simulated crash time.
	At  sim.Time
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("%v/%v seed=%d %v at=%v: %s", v.Kind, v.Mix, v.Seed, v.Point, v.At, v.Msg)
}

// Result summarizes one sweep.
type Result struct {
	Kind rpc.Kind
	Mix  Mix
	Seed int64
	// Points is how many distinct crash points were swept.
	Points int
	// Events is the event count of the crash-free reference run.
	Events uint64
	// Replayed totals log replays across all points.
	Replayed int
	// Violations holds up to maxViolations broken invariants;
	// ViolationCount is the true total.
	Violations     []Violation
	ViolationCount int
}

const maxViolations = 50

// Minimal returns the earliest-crash violation: the minimal reproduction
// to chase first. Nil when the sweep was clean.
func (r *Result) Minimal() *Violation {
	var min *Violation
	for i := range r.Violations {
		v := &r.Violations[i]
		if min == nil || v.Point.Event < min.Point.Event {
			min = v
		}
	}
	return min
}

// reqSpec is one precomputed request: a versioned full-object write or a
// read. Versions increase in issue order, and each key is only ever
// written by one worker, so the version stored under a key must never
// move backwards — the property the post-crash read-back checks.
type reqSpec struct {
	read bool
	key  uint64
	ver  uint32
}

// opSpec is one client operation: a single request or a batch of them.
type opSpec struct {
	batch bool
	reqs  []reqSpec
}

// genOps precomputes the workload. Worker w handles ops w, w+Pipeline, …
// and only touches keys ≡ w (mod Pipeline), so per-key writes are issued
// sequentially by one proc and versions are monotone per key.
func genOps(cfg Config, rng *rand.Rand) []opSpec {
	const keysPerWorker = 3
	key := func(w int) uint64 {
		return uint64(w + cfg.Pipeline*rng.Intn(keysPerWorker))
	}
	ops := make([]opSpec, cfg.Ops)
	ver := uint32(0)
	write := func(w int) reqSpec {
		ver++
		return reqSpec{key: key(w), ver: ver}
	}
	for i := range ops {
		w := i % cfg.Pipeline
		switch {
		case cfg.Mix == MixReadWrite && i%3 == 1:
			ops[i] = opSpec{reqs: []reqSpec{{read: true, key: key(w)}}}
		case cfg.Mix == MixBatch && i%2 == 1:
			reqs := make([]reqSpec, 4)
			for j := range reqs {
				if j == 2 {
					reqs[j] = reqSpec{read: true, key: key(w)}
				} else {
					reqs[j] = write(w)
				}
			}
			ops[i] = opSpec{batch: true, reqs: reqs}
		default:
			ops[i] = opSpec{reqs: []reqSpec{write(w)}}
		}
	}
	return ops
}

// fill builds a self-describing object image: key, version, then a byte
// pattern derived from both, so a torn or misdirected apply is visible.
func fill(objSize int, key uint64, ver uint32) []byte {
	b := make([]byte, objSize)
	binary.LittleEndian.PutUint64(b[0:], key)
	binary.LittleEndian.PutUint32(b[8:], ver)
	for j := 16; j < objSize; j++ {
		b[j] = byte(17*key + 31*uint64(ver) + uint64(j))
	}
	return b
}

func checkFill(b []byte, key uint64) (uint32, error) {
	if got := binary.LittleEndian.Uint64(b[0:]); got != key {
		return 0, fmt.Errorf("object stamped with key %d, want %d", got, key)
	}
	ver := binary.LittleEndian.Uint32(b[8:])
	for j := 16; j < len(b); j++ {
		if b[j] != byte(17*key+31*uint64(ver)+uint64(j)) {
			return 0, fmt.Errorf("object for key %d ver %d torn at byte %d", key, ver, j)
		}
	}
	return ver, nil
}

// run is one simulated cluster plus the driver state for a single
// crash-point execution (or the crash-free reference).
type run struct {
	cfg Config
	ops []opSpec

	k      *sim.Kernel
	srv    *host.Host
	engine *rpc.Server
	store  *rpc.Store
	client rpc.Recoverable
	log    *redolog.Log

	serverUp     bool
	generation   int
	reestGen     int
	reconnecting bool

	// acked maps key -> highest version whose durability completed.
	acked map[uint64]uint32
	// progress counts completed ops per worker; inCall marks workers
	// blocked inside a call (stranded if still set at the end).
	progress []int
	inCall   []bool
	replayed int

	// recoverViolations collects invariant 2/3/4 breaks observed by the
	// redo log's OnRecover hook during this run.
	recoverViolations []string
}

func newRun(cfg Config, withMonitor bool) *run {
	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), uint64(cfg.Seed)|1)
	np := rnic.DefaultParams()
	if cfg.AckBeforeDurable {
		// The premature-ack knob only exists on the native flush path;
		// the read-after-write emulation has no flush ACK to misplace.
		np.EmulateFlush = false
		np.AckBeforeDurable = true
	}
	cli := host.New(k, "cli", net, host.DefaultParams(), pmem.DefaultParams(), np)
	srv := host.New(k, "srv", net, host.DefaultParams(), pmem.DefaultParams(), np)
	store, err := rpc.NewStore(srv, 128, cfg.ObjSize)
	if err != nil {
		panic(err)
	}
	rcfg := rpc.DefaultConfig()
	rcfg.Workers = 1 // single applier keeps per-key apply order = seq order
	rcfg.ProcessingTime = 3 * time.Microsecond
	// Sparse flyweights are forced off under the sweep: torn-write probes
	// inspect raw entry bytes, which a sparse gap leaves unmaterialized.
	rcfg.SparsePayloads = false
	// A small ring forces wraps, lazy control-word lag, and ring-full
	// throttling — the recovery states worth crashing into.
	rcfg.LogBytes = int64(16 * (cfg.ObjSize + 64))
	engine := rpc.NewServer(srv, store, rcfg)

	r := &run{
		cfg:      cfg,
		k:        k,
		srv:      srv,
		engine:   engine,
		store:    store,
		serverUp: true,
		acked:    make(map[uint64]uint32),
		progress: make([]int, cfg.Pipeline),
		inCall:   make([]bool, cfg.Pipeline),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	r.ops = genOps(cfg, rng)

	client := rpc.New(cfg.Kind, cli, engine, rcfg)
	rec, ok := client.(rpc.Recoverable)
	if !ok {
		panic(fmt.Sprintf("crashcheck: %v is not recoverable", cfg.Kind))
	}
	r.client = rec
	r.log = client.(interface{ Log() *redolog.Log }).Log()
	r.log.OnRecover = r.checkRecover

	for w := 0; w < cfg.Pipeline; w++ {
		w := w
		k.Go("crashcheck-worker", func(p *sim.Proc) { r.worker(p, w) })
	}
	if withMonitor {
		// One proc owns re-establishment so replay is enqueued before
		// any worker's retried or new requests. The reference run skips
		// it: its poll loop would keep the event queue alive forever.
		k.Go("crashcheck-monitor", func(p *sim.Proc) {
			for {
				p.Sleep(20 * time.Microsecond)
				if r.serverUp && r.reestGen != r.generation {
					r.reconnecting = true
					replayed, err := r.client.Reestablish(p)
					if err != nil {
						panic(err) // serial harness: reestablish cannot refuse
					}
					r.replayed += replayed
					r.reestGen = r.generation
					r.reconnecting = false
				}
			}
		})
	}
	return r
}

func (r *run) buildReq(s reqSpec) *rpc.Request {
	if s.read {
		return &rpc.Request{Op: rpc.OpRead, Key: s.key, Size: r.cfg.ObjSize}
	}
	return &rpc.Request{Op: rpc.OpWrite, Key: s.key, Size: r.cfg.ObjSize, Payload: fill(r.cfg.ObjSize, s.key, s.ver)}
}

// worker drives its share of the precomputed ops, retrying across crashes
// and journaling acked writes. CallBatch has no timeout variant, so a
// batch in flight at the crash can strand its worker forever on the dead
// durability future; inCall records that for the liveness check.
func (r *run) worker(p *sim.Proc, w int) {
	for i := w; i < len(r.ops); i += r.cfg.Pipeline {
		op := r.ops[i]
		r.inCall[w] = true
		for {
			for !r.serverUp || r.reconnecting || r.reestGen != r.generation {
				p.Sleep(r.cfg.Retransfer / 4)
			}
			var err error
			if op.batch {
				reqs := make([]*rpc.Request, len(op.reqs))
				for j, s := range op.reqs {
					reqs[j] = r.buildReq(s)
				}
				_, err = r.client.(rpc.BatchClient).CallBatch(p, reqs)
			} else {
				_, err = r.client.CallTimeout(p, r.buildReq(op.reqs[0]), r.cfg.Retransfer)
			}
			if err == nil {
				break
			}
		}
		// The call returned with durability complete: journal every
		// constituent write as acked.
		for _, s := range op.reqs {
			if !s.read && s.ver > r.acked[s.key] {
				r.acked[s.key] = s.ver
			}
		}
		r.inCall[w] = false
		r.progress[w]++
	}
}

// crash fails the server and schedules its restart, exactly as the §5.4
// failure driver does. Safe to call while already down (no-op).
func (r *run) crash() {
	if !r.serverUp {
		return
	}
	r.serverUp = false
	r.srv.Crash()
	r.engine.Crash()
	r.k.AfterFunc(r.cfg.Restart, func() {
		r.srv.Restart()
		r.serverUp = true
		r.generation++
	})
}

// checkRecover is the redo log's OnRecover hook: invariants 2–4.
func (r *run) checkRecover(info redolog.RecoverInfo) {
	bad := func(format string, a ...any) {
		r.recoverViolations = append(r.recoverViolations, fmt.Sprintf(format, a...))
	}
	prev := uint64(0)
	for i, e := range info.Entries {
		if e.Seq < info.Floor {
			bad("recovered seq %d below durable floor %d", e.Seq, info.Floor)
		}
		if i > 0 && e.Seq <= prev {
			bad("recovered seqs not strictly increasing: %d after %d", e.Seq, prev)
		}
		prev = e.Seq
		_, req, err := rpc.DecodeLoggedRequest(e)
		if err != nil {
			bad("recovered entry is not a consistent frame: %v", err)
			continue
		}
		r.checkLoggedReq(bad, e.Seq, req)
	}
	if err := r.log.CheckAccounting(); err != nil {
		bad("post-recover accounting: %v", err)
	}
}

// checkLoggedReq verifies a recovered request (or each constituent of a
// recovered batch frame) carries an untorn payload from the workload.
func (r *run) checkLoggedReq(bad func(string, ...any), seq uint64, req *rpc.Request) {
	if subs, ok := rpc.BatchContents(req); ok {
		for _, s := range subs {
			r.checkLoggedReq(bad, seq, s)
		}
		return
	}
	if req.Op != rpc.OpWrite {
		return
	}
	if len(req.Payload) != r.cfg.ObjSize {
		bad("recovered write seq %d: payload %d bytes, want %d", seq, len(req.Payload), r.cfg.ObjSize)
		return
	}
	ver, err := checkFill(req.Payload, req.Key)
	if err != nil {
		bad("recovered write seq %d: %v", seq, err)
		return
	}
	_ = ver
}

// verify checks the end state after the run settled: liveness, then the
// acked-writes journal against the objects actually in server PM.
func (r *run) verify() []string {
	var out []string
	bad := func(format string, a ...any) {
		out = append(out, fmt.Sprintf(format, a...))
	}
	out = append(out, r.recoverViolations...)

	if !r.serverUp {
		bad("server still down after settle horizon")
	}
	stranded := 0
	for w := 0; w < r.cfg.Pipeline; w++ {
		expected := (len(r.ops) - w + r.cfg.Pipeline - 1) / r.cfg.Pipeline
		if r.inCall[w] {
			stranded++
			if r.cfg.Mix != MixBatch {
				bad("worker %d stranded mid-call (mix %v has timeouts everywhere)", w, r.cfg.Mix)
			}
			continue
		}
		if r.progress[w] != expected {
			bad("worker %d stopped at %d/%d ops without being stranded", w, r.progress[w], expected)
		}
	}

	// Invariant 1: every acked write survived — the stored object is
	// untorn and at least as new as the last acked version for its key.
	keys := make([]uint64, 0, len(r.acked))
	for key := range r.acked {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	obj := make([]byte, r.cfg.ObjSize) // one scratch for the whole scan
	for _, key := range keys {
		want := r.acked[key]
		if !r.store.Has(key) {
			bad("acked write lost: key %d ver %d never reached the store", key, want)
			continue
		}
		b := r.srv.PM.ReadBytesInto(r.store.Addr(key), obj)
		got, err := checkFill(b, key)
		if err != nil {
			bad("acked write torn: key %d acked ver %d: %v", key, want, err)
			continue
		}
		if got < want {
			bad("acked write lost: key %d holds ver %d < acked ver %d", key, got, want)
		}
	}

	if err := r.log.CheckAccounting(); err != nil {
		bad("final accounting: %v", err)
	}
	return out
}

// Sweep runs the reference execution to size the event space, then
// replays the workload once per crash point and collects violations.
func Sweep(cfg Config) Result {
	res := Result{Kind: cfg.Kind, Mix: cfg.Mix, Seed: cfg.Seed}

	// Crash-free reference: measures the event count and proves the
	// workload itself is clean.
	ref := newRun(cfg, false)
	ref.k.Run()
	res.Events = ref.k.Fired()
	record := func(r *run, pt Point, at sim.Time, msgs []string) {
		for _, msg := range msgs {
			res.ViolationCount++
			if len(res.Violations) < maxViolations {
				res.Violations = append(res.Violations, Violation{
					Kind: cfg.Kind, Mix: cfg.Mix, Seed: cfg.Seed,
					Point: pt, At: at, Msg: msg,
				})
			}
		}
	}
	record(ref, Point{}, ref.k.Now(), ref.verify())
	refSpan := ref.k.Now().Sub(sim.Time(0))
	ref.k.Shutdown()

	points := pickPoints(cfg, res.Events)
	res.Points = len(points)
	for _, pt := range points {
		r, at := runPoint(cfg, pt, refSpan)
		res.Replayed += r.replayed
		record(r, pt, at, r.verify())
		// Reap the point's kernel: hundreds of points each parking their
		// procs would otherwise accumulate across the sweep.
		r.k.Shutdown()
	}
	return res
}

// pickPoints selects distinct crash points across the reference event
// space: Points event boundaries, TornPoints mid-persist offsets, and a
// second crash armed every SecondCrashEvery-th point.
func pickPoints(cfg Config, events uint64) []Point {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5E3779B97F4A7C15))
	lo := uint64(20)
	if events <= lo+2 {
		lo = 1
	}
	span := int64(events - lo)
	if span <= 0 {
		span = 1
	}
	seen := make(map[uint64]bool)
	var points []Point
	n := cfg.Points
	if uint64(n) > uint64(span) {
		n = int(span)
	}
	for len(points) < n {
		e := lo + uint64(rng.Int63n(span))
		if seen[e] {
			continue
		}
		seen[e] = true
		points = append(points, Point{Event: e})
	}
	for i := 0; i < cfg.TornPoints; i++ {
		e := lo + uint64(rng.Int63n(span))
		points = append(points, Point{Event: e, TornFrac: 0.05 + 0.9*rng.Float64()})
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].Event != points[j].Event {
			return points[i].Event < points[j].Event
		}
		return points[i].TornFrac < points[j].TornFrac
	})
	if cfg.SecondCrashEvery > 0 {
		for i := range points {
			if (i+1)%cfg.SecondCrashEvery == 0 {
				points[i].SecondCrash = true
			}
		}
	}
	return points
}

// runPoint executes the workload, crashes at pt, and lets the system
// settle. Returns the run (for verification) and the crash time.
func runPoint(cfg Config, pt Point, refSpan time.Duration) (*run, sim.Time) {
	r := newRun(cfg, true)
	r.k.RunEvents(pt.Event)
	if pt.TornFrac > 0 {
		// Aim inside an in-flight persist: advance the clock (executing
		// any earlier events) to the chosen fraction of its window.
		if ws := r.srv.PM.InflightTornWindows(r.k.Now()); len(ws) > 0 {
			w := ws[int(pt.Event)%len(ws)]
			start := w.Start
			if now := r.k.Now(); start < now {
				start = now
			}
			t := start.Add(time.Duration(pt.TornFrac * float64(w.End.Sub(start))))
			if t > r.k.Now() {
				r.k.RunUntil(t)
			}
		}
	}
	at := r.k.Now()
	r.crash()
	if pt.SecondCrash {
		// Land a second crash shortly after the restart, while the
		// recovery scan and replay are typically still in flight.
		delta := time.Duration(pt.Event%40) * time.Microsecond
		r.k.AfterFunc(cfg.Restart+delta, r.crash)
	}
	// The monitor proc polls forever, so the event queue never drains;
	// bound the settle phase by time instead. The horizon comfortably
	// covers both restarts plus a full re-execution of the workload.
	horizon := at.Add(3*cfg.Restart + 2*refSpan + 100*time.Duration(len(r.ops))*cfg.Retransfer/10)
	r.k.RunUntil(horizon)
	return r, at
}
