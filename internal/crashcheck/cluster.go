// Cluster mode: the crash-point sweep applied to a sharded, replicated
// deployment (internal/cluster). Each point replays the same cluster
// workload, crashes one replica at a chosen event boundary — landing
// anywhere in the issue/failover/resync state space — optionally crashes a
// second replica of the same shard while the first resync is in flight,
// lets the failover controller run to completion, and asserts the cluster
// contract:
//
//  1. No acknowledged write is lost: every Put that returned success is
//     present, untorn, on every live replica of its shard.
//  2. Replicas converge byte-identically: live replicas of a shard hold
//     identical bytes for every acknowledged key (single-writer keys make
//     apply order deterministic across replicas).
//  3. Liveness: the workload finishes, no operation fails permanently, and
//     the cluster returns to full health (victim readmitted) before the
//     settle horizon.
//  4. Read sanity: every read during the run returned a well-formed
//     payload no newer than the issued history.
package crashcheck

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"prdma/internal/cluster"
	"prdma/internal/fabric"
	"prdma/internal/sim"
	"prdma/internal/stats"
	"prdma/internal/ycsb"
)

// ClusterConfig parameterizes one cluster-mode sweep.
type ClusterConfig struct {
	// Seed drives the workload, the placement ring, and point selection.
	Seed int64
	// Points is how many event-boundary crash points to sweep.
	Points int
	// SecondCrashEvery arms a second crash — a different replica of the
	// same shard, timed to land during the first resync window — at every
	// n-th point. 0 disables.
	SecondCrashEvery int
	// Ops and Clients size the closed-loop verified workload.
	Ops, Clients int
	// Shards and Replicas shape the deployment.
	Shards, Replicas int
	// ObjSize is the object size in bytes (≥ 16 for versioned payloads).
	ObjSize int

	// Fault, when set, installs a deterministic fabric adversary (the same
	// spec and seed for the reference run and every crash point). Fault
	// runs shorten the RC retransmit interval and raise the retry budget
	// so sub-millisecond partitions are ridden out by retransmission
	// instead of killing queue pairs.
	Fault *fabric.FaultSpec
	// Workload, when set, drives the load from a YCSB core workload
	// (ycsb.A..ycsb.F) instead of the default 70/30 mix.
	Workload ycsb.Workload
	// Mutant seeds a known bug class for the detection check: "ackbug"
	// (flush ACK before the durability horizon) or "resurrect" (stale
	// version guard off + resync ships images before replaying logs).
	Mutant string
}

// DefaultClusterConfig returns a CI-sized cluster sweep: a 2-shard,
// 3-replica quorum cluster, small objects, enough operations that crashes
// land across issue, failover, and resync phases.
func DefaultClusterConfig(seed int64) ClusterConfig {
	return ClusterConfig{
		Seed:             seed,
		Points:           60,
		SecondCrashEvery: 6,
		Ops:              240,
		Clients:          6,
		Shards:           2,
		Replicas:         3,
		ObjSize:          64,
	}
}

// ClusterViolation is one broken cluster invariant at one crash point.
type ClusterViolation struct {
	Seed  int64
	Point Point
	At    sim.Time
	Msg   string
}

func (v ClusterViolation) String() string {
	return fmt.Sprintf("cluster seed=%d %v at=%v: %s", v.Seed, v.Point, v.At, v.Msg)
}

// RefStats measures the sweep's crash-free reference run — the per-cell
// performance row of the adversarial-matrix figure.
type RefStats struct {
	Ops          int
	KOPS         float64
	P50US, P99US float64
	// Resends is total RC retransmissions; FaultDrops the injector- or
	// DropProb-lost messages; Duplicated/Reordered the adversary's copies
	// and holds; StaleDrops the version-guarded writes the stores
	// rejected; Retries the cluster-level op retries.
	Resends, FaultDrops, Duplicated, Reordered, StaleDrops, Retries int64
}

// ClusterResult summarizes one cluster sweep.
type ClusterResult struct {
	Seed   int64
	Points int
	// Events is the event count of the crash-free reference load.
	Events uint64
	// Ref measures the crash-free reference run.
	Ref RefStats
	// Failovers/Resyncs/Replayed/Shipped total the controller work across
	// all points.
	Failovers, Resyncs, Replayed, Shipped int64
	Violations                            []ClusterViolation
	ViolationCount                        int
}

// Minimal returns the earliest-crash violation, nil when clean.
func (r *ClusterResult) Minimal() *ClusterViolation {
	var min *ClusterViolation
	for i := range r.Violations {
		v := &r.Violations[i]
		if min == nil || v.Point.Event < min.Point.Event {
			min = v
		}
	}
	return min
}

// clusterRun is one deployment plus its workload driver.
type clusterRun struct {
	k   *sim.Kernel
	c   *cluster.Cluster
	ct  *cluster.Controller
	res *cluster.LoadResult
	err error

	loadDone      bool
	loadEndEvents uint64

	// auditMsgs collects §4.2 ack-contract breaks observed by the
	// post-replay audit (see auditReplay).
	auditMsgs []string
}

func newClusterRun(cfg ClusterConfig) *clusterRun {
	k := sim.New()
	p := cluster.DefaultParams()
	p.Shards = cfg.Shards
	p.Replicas = cfg.Replicas
	p.PoolSize = 2
	p.Objects = 128
	p.ObjSize = cfg.ObjSize
	p.Seed = uint64(cfg.Seed) | 1
	if cfg.Fault != nil {
		// Adversary runs retransmit aggressively: a sub-millisecond
		// partition or drop burst must be ridden out by RC retries well
		// inside the retry budget, not kill the queue pair.
		p.NIC.RetransmitInterval = 100 * time.Microsecond
		p.NIC.RetryCount = 64
	}
	switch cfg.Mutant {
	case "ackbug":
		// The premature-ack knob only exists on the native flush path; the
		// read-after-write emulation has no flush ACK to misplace.
		p.NIC.EmulateFlush = false
		p.NIC.AckBeforeDurable = true
	case "resurrect":
		p.MutantResurrect = true
	}
	r := &clusterRun{k: k}
	c, err := cluster.New(k, p)
	if err != nil {
		panic(err)
	}
	if cfg.Fault != nil {
		c.Net.SetInjector(fabric.NewInjector(*cfg.Fault, (uint64(cfg.Seed)|1)^0xfa175eed))
	}
	r.c = c
	c.EnableAckAudit()
	r.ct = c.StartController()
	r.ct.AuditReplay = r.auditReplay
	k.Go("cluster-load", func(mp *sim.Proc) {
		r.res, r.err = c.RunLoad(mp, cluster.Load{
			Clients:  cfg.Clients,
			Ops:      cfg.Ops,
			ReadFrac: 0.3,
			Workload: cfg.Workload,
			Verify:   true,
			Seed:     uint64(cfg.Seed) | 1,
		})
		r.loadDone = true
		r.loadEndEvents = k.Fired()
	})
	return r
}

// refStats extracts the performance row from a settled crash-free run.
func (r *clusterRun) refStats() RefStats {
	st := RefStats{
		Resends:    r.c.Retransmits(),
		StaleDrops: r.c.StaleDrops(),
	}
	net := r.c.Net
	st.FaultDrops = net.DroppedFault
	st.Duplicated = net.Duplicated
	st.Reordered = net.Reordered
	for _, sh := range r.c.Shards {
		st.Retries += sh.Retries
	}
	if r.res == nil || len(r.res.Samples) == 0 {
		return st
	}
	st.Ops = len(r.res.Samples)
	lat := stats.NewLatency(st.Ops)
	for _, sm := range r.res.Samples {
		lat.Add(sm.Dur)
	}
	elapsed := r.res.End.Sub(r.res.Start)
	st.KOPS = stats.Throughput{Ops: st.Ops, Elapsed: elapsed}.KOPS()
	st.P50US = float64(lat.Percentile(50)) / float64(time.Microsecond)
	st.P99US = float64(lat.Percentile(99)) / float64(time.Microsecond)
	return st
}

// auditReplay holds a rejoining replica to its §4.2 ack contract at the
// one instant its durable state is exactly what it persisted itself:
// after its redo-log backlogs replayed and applied, before any catch-up
// image ships. Every slot version the replica durably acknowledged must
// be resident at that version or newer — a flush ACK that replay cannot
// honor was a durability lie (the ack-before-durable bug class).
func (r *clusterRun) auditReplay(p *sim.Proc, sh *cluster.Shard, ri int) {
	acked := sh.AckedVersions(ri)
	if len(acked) == 0 {
		return
	}
	rep := sh.Replicas[ri]
	slots := make([]uint64, 0, len(acked))
	for slot := range acked {
		slots = append(slots, slot)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	buf := make([]byte, 12)
	for _, slot := range slots {
		want := acked[slot]
		if !rep.Store.Has(slot) {
			r.auditMsgs = append(r.auditMsgs, fmt.Sprintf(
				"ack audit: shard %d replica %d slot %d: durably acked ver %d but replay restored nothing",
				sh.ID, ri, slot, want))
			continue
		}
		got := binary.LittleEndian.Uint32(rep.Host.PM.ReadBytesInto(rep.Store.Addr(slot), buf)[8:12])
		if got < want {
			r.auditMsgs = append(r.auditMsgs, fmt.Sprintf(
				"ack audit: shard %d replica %d slot %d: durably acked ver %d but replay restored ver %d",
				sh.ID, ri, slot, want, got))
		}
	}
}

// settle advances the run until the load completes and the cluster is
// healthy again (or the bounded horizon passes), then gives the engines a
// final apply window. The controller polls forever, so the event queue
// never drains; time bounds the run instead.
func (r *clusterRun) settle() {
	for i := 0; i < 60 && !(r.loadDone && r.c.Healthy()); i++ {
		r.k.RunUntil(r.k.Now().Add(2 * time.Millisecond))
	}
	r.k.RunUntil(r.k.Now().Add(3 * time.Millisecond))
}

// verify checks the cluster contract after settle.
func (r *clusterRun) verify() []string {
	var out []string
	bad := func(format string, a ...any) {
		out = append(out, fmt.Sprintf(format, a...))
	}
	out = append(out, r.auditMsgs...)
	if !r.loadDone {
		bad("workload never finished before the settle horizon")
		return out
	}
	if r.err != nil {
		bad("load error: %v", r.err)
	}
	if r.res.Errors != 0 {
		bad("%d operations failed permanently", r.res.Errors)
	}
	if r.res.BadReads != 0 {
		bad("%d reads returned malformed or future payloads", r.res.BadReads)
	}
	if !r.c.Healthy() {
		bad("cluster not healthy at horizon (replica still down or resyncing)")
	}
	// Invariants 1+2: acked writes present and byte-identical on every
	// live replica.
	if err := r.c.CheckConsistency(); err != nil {
		bad("consistency: %v", err)
	}
	return out
}

func (r *clusterRun) counters(res *ClusterResult) {
	for _, sh := range r.c.Shards {
		res.Failovers += sh.Failovers
		res.Resyncs += sh.Resyncs
		res.Replayed += sh.Replayed
		res.Shipped += sh.Shipped
	}
}

// ClusterSweep runs the crash-free reference to size the event space, then
// replays the cluster workload once per crash point.
func ClusterSweep(cfg ClusterConfig) ClusterResult {
	res := ClusterResult{Seed: cfg.Seed}

	ref := newClusterRun(cfg)
	ref.settle()
	res.Events = ref.loadEndEvents
	res.Ref = ref.refStats()
	record := func(r *clusterRun, pt Point, at sim.Time, msgs []string) {
		for _, msg := range msgs {
			res.ViolationCount++
			if len(res.Violations) < maxViolations {
				res.Violations = append(res.Violations, ClusterViolation{
					Seed: cfg.Seed, Point: pt, At: at, Msg: msg,
				})
			}
		}
	}
	record(ref, Point{}, ref.k.Now(), ref.verify())
	ref.k.Shutdown()

	points := pickClusterPoints(cfg, res.Events)
	res.Points = len(points)
	restart := cluster.DefaultParams().Restart
	for _, pt := range points {
		r := newClusterRun(cfg)
		r.k.RunEvents(pt.Event)
		at := r.k.Now()
		// The victim cycles deterministically through every (shard,
		// replica) pair as the event index advances.
		s := int(pt.Event) % cfg.Shards
		rep := int(pt.Event/uint64(cfg.Shards)) % cfg.Replicas
		r.c.CrashReplica(s, rep)
		if pt.SecondCrash {
			// A second replica of the same shard fails while the first
			// victim's recovery/resync is typically in flight.
			delta := time.Duration(pt.Event%40) * 50 * time.Microsecond
			second := (rep + 1) % cfg.Replicas
			r.k.AfterFunc(restart+delta, func() { r.c.CrashReplica(s, second) })
		}
		r.settle()
		r.counters(&res)
		record(r, pt, at, r.verify())
		r.k.Shutdown()
	}
	return res
}

// pickClusterPoints samples distinct event boundaries across the reference
// load's event space.
func pickClusterPoints(cfg ClusterConfig, events uint64) []Point {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7E57C0DE))
	lo := uint64(50)
	if events <= lo+2 {
		lo = 1
	}
	span := int64(events - lo)
	if span <= 0 {
		span = 1
	}
	seen := make(map[uint64]bool)
	var points []Point
	n := cfg.Points
	if uint64(n) > uint64(span) {
		n = int(span)
	}
	for len(points) < n {
		e := lo + uint64(rng.Int63n(span))
		if seen[e] {
			continue
		}
		seen[e] = true
		points = append(points, Point{Event: e})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Event < points[j].Event })
	if cfg.SecondCrashEvery > 0 {
		for i := range points {
			if (i+1)%cfg.SecondCrashEvery == 0 {
				points[i].SecondCrash = true
			}
		}
	}
	return points
}
