// Cluster mode: the crash-point sweep applied to a sharded, replicated
// deployment (internal/cluster). Each point replays the same cluster
// workload, crashes one replica at a chosen event boundary — landing
// anywhere in the issue/failover/resync state space — optionally crashes a
// second replica of the same shard while the first resync is in flight,
// lets the failover controller run to completion, and asserts the cluster
// contract:
//
//  1. No acknowledged write is lost: every Put that returned success is
//     present, untorn, on every live replica of its shard.
//  2. Replicas converge byte-identically: live replicas of a shard hold
//     identical bytes for every acknowledged key (single-writer keys make
//     apply order deterministic across replicas).
//  3. Liveness: the workload finishes, no operation fails permanently, and
//     the cluster returns to full health (victim readmitted) before the
//     settle horizon.
//  4. Read sanity: every read during the run returned a well-formed
//     payload no newer than the issued history.
package crashcheck

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"prdma/internal/cluster"
	"prdma/internal/sim"
)

// ClusterConfig parameterizes one cluster-mode sweep.
type ClusterConfig struct {
	// Seed drives the workload, the placement ring, and point selection.
	Seed int64
	// Points is how many event-boundary crash points to sweep.
	Points int
	// SecondCrashEvery arms a second crash — a different replica of the
	// same shard, timed to land during the first resync window — at every
	// n-th point. 0 disables.
	SecondCrashEvery int
	// Ops and Clients size the closed-loop verified workload.
	Ops, Clients int
	// Shards and Replicas shape the deployment.
	Shards, Replicas int
	// ObjSize is the object size in bytes (≥ 16 for versioned payloads).
	ObjSize int
}

// DefaultClusterConfig returns a CI-sized cluster sweep: a 2-shard,
// 3-replica quorum cluster, small objects, enough operations that crashes
// land across issue, failover, and resync phases.
func DefaultClusterConfig(seed int64) ClusterConfig {
	return ClusterConfig{
		Seed:             seed,
		Points:           60,
		SecondCrashEvery: 6,
		Ops:              240,
		Clients:          6,
		Shards:           2,
		Replicas:         3,
		ObjSize:          64,
	}
}

// ClusterViolation is one broken cluster invariant at one crash point.
type ClusterViolation struct {
	Seed  int64
	Point Point
	At    sim.Time
	Msg   string
}

func (v ClusterViolation) String() string {
	return fmt.Sprintf("cluster seed=%d %v at=%v: %s", v.Seed, v.Point, v.At, v.Msg)
}

// ClusterResult summarizes one cluster sweep.
type ClusterResult struct {
	Seed   int64
	Points int
	// Events is the event count of the crash-free reference load.
	Events uint64
	// Failovers/Resyncs/Replayed/Shipped total the controller work across
	// all points.
	Failovers, Resyncs, Replayed, Shipped int64
	Violations                            []ClusterViolation
	ViolationCount                        int
}

// Minimal returns the earliest-crash violation, nil when clean.
func (r *ClusterResult) Minimal() *ClusterViolation {
	var min *ClusterViolation
	for i := range r.Violations {
		v := &r.Violations[i]
		if min == nil || v.Point.Event < min.Point.Event {
			min = v
		}
	}
	return min
}

// clusterRun is one deployment plus its workload driver.
type clusterRun struct {
	k   *sim.Kernel
	c   *cluster.Cluster
	ct  *cluster.Controller
	res *cluster.LoadResult
	err error

	loadDone      bool
	loadEndEvents uint64
}

func newClusterRun(cfg ClusterConfig) *clusterRun {
	k := sim.New()
	p := cluster.DefaultParams()
	p.Shards = cfg.Shards
	p.Replicas = cfg.Replicas
	p.PoolSize = 2
	p.Objects = 128
	p.ObjSize = cfg.ObjSize
	p.Seed = uint64(cfg.Seed) | 1
	r := &clusterRun{k: k}
	c, err := cluster.New(k, p)
	if err != nil {
		panic(err)
	}
	r.c = c
	r.ct = c.StartController()
	k.Go("cluster-load", func(mp *sim.Proc) {
		r.res, r.err = c.RunLoad(mp, cluster.Load{
			Clients:  cfg.Clients,
			Ops:      cfg.Ops,
			ReadFrac: 0.3,
			Verify:   true,
			Seed:     uint64(cfg.Seed) | 1,
		})
		r.loadDone = true
		r.loadEndEvents = k.Fired()
	})
	return r
}

// settle advances the run until the load completes and the cluster is
// healthy again (or the bounded horizon passes), then gives the engines a
// final apply window. The controller polls forever, so the event queue
// never drains; time bounds the run instead.
func (r *clusterRun) settle() {
	for i := 0; i < 60 && !(r.loadDone && r.c.Healthy()); i++ {
		r.k.RunUntil(r.k.Now().Add(2 * time.Millisecond))
	}
	r.k.RunUntil(r.k.Now().Add(3 * time.Millisecond))
}

// verify checks the cluster contract after settle.
func (r *clusterRun) verify() []string {
	var out []string
	bad := func(format string, a ...any) {
		out = append(out, fmt.Sprintf(format, a...))
	}
	if !r.loadDone {
		bad("workload never finished before the settle horizon")
		return out
	}
	if r.err != nil {
		bad("load error: %v", r.err)
	}
	if r.res.Errors != 0 {
		bad("%d operations failed permanently", r.res.Errors)
	}
	if r.res.BadReads != 0 {
		bad("%d reads returned malformed or future payloads", r.res.BadReads)
	}
	if !r.c.Healthy() {
		bad("cluster not healthy at horizon (replica still down or resyncing)")
	}
	// Invariants 1+2: acked writes present and byte-identical on every
	// live replica.
	if err := r.c.CheckConsistency(); err != nil {
		bad("consistency: %v", err)
	}
	return out
}

func (r *clusterRun) counters(res *ClusterResult) {
	for _, sh := range r.c.Shards {
		res.Failovers += sh.Failovers
		res.Resyncs += sh.Resyncs
		res.Replayed += sh.Replayed
		res.Shipped += sh.Shipped
	}
}

// ClusterSweep runs the crash-free reference to size the event space, then
// replays the cluster workload once per crash point.
func ClusterSweep(cfg ClusterConfig) ClusterResult {
	res := ClusterResult{Seed: cfg.Seed}

	ref := newClusterRun(cfg)
	ref.settle()
	res.Events = ref.loadEndEvents
	record := func(r *clusterRun, pt Point, at sim.Time, msgs []string) {
		for _, msg := range msgs {
			res.ViolationCount++
			if len(res.Violations) < maxViolations {
				res.Violations = append(res.Violations, ClusterViolation{
					Seed: cfg.Seed, Point: pt, At: at, Msg: msg,
				})
			}
		}
	}
	record(ref, Point{}, ref.k.Now(), ref.verify())

	points := pickClusterPoints(cfg, res.Events)
	res.Points = len(points)
	restart := cluster.DefaultParams().Restart
	for _, pt := range points {
		r := newClusterRun(cfg)
		r.k.RunEvents(pt.Event)
		at := r.k.Now()
		// The victim cycles deterministically through every (shard,
		// replica) pair as the event index advances.
		s := int(pt.Event) % cfg.Shards
		rep := int(pt.Event/uint64(cfg.Shards)) % cfg.Replicas
		r.c.CrashReplica(s, rep)
		if pt.SecondCrash {
			// A second replica of the same shard fails while the first
			// victim's recovery/resync is typically in flight.
			delta := time.Duration(pt.Event%40) * 50 * time.Microsecond
			second := (rep + 1) % cfg.Replicas
			r.k.AfterFunc(restart+delta, func() { r.c.CrashReplica(s, second) })
		}
		r.settle()
		r.counters(&res)
		record(r, pt, at, r.verify())
	}
	return res
}

// pickClusterPoints samples distinct event boundaries across the reference
// load's event space.
func pickClusterPoints(cfg ClusterConfig, events uint64) []Point {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7E57C0DE))
	lo := uint64(50)
	if events <= lo+2 {
		lo = 1
	}
	span := int64(events - lo)
	if span <= 0 {
		span = 1
	}
	seen := make(map[uint64]bool)
	var points []Point
	n := cfg.Points
	if uint64(n) > uint64(span) {
		n = int(span)
	}
	for len(points) < n {
		e := lo + uint64(rng.Int63n(span))
		if seen[e] {
			continue
		}
		seen[e] = true
		points = append(points, Point{Event: e})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Event < points[j].Event })
	if cfg.SecondCrashEvery > 0 {
		for i := range points {
			if (i+1)%cfg.SecondCrashEvery == 0 {
				points[i].SecondCrash = true
			}
		}
	}
	return points
}
