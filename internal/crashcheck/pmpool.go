package crashcheck

import (
	"fmt"
	"sort"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/pmpool"
	"prdma/internal/redolog"
	"prdma/internal/rnic"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// PMPoolConfig parameterizes a crash-point sweep over the remote
// persistent-memory pool (internal/pmpool): workers cycle allocations
// through alloc → write → free across size classes while crashes land at
// event boundaries and inside in-flight persists, and every point asserts
// the pool's crash contract — no slot leaks, no double seating, no acked
// free resurrects, no acked write loses its bytes.
type PMPoolConfig struct {
	// Kind is the durable RPC family carrying the pool protocol.
	Kind rpc.Kind
	// Seed drives workload generation and crash-point selection.
	Seed int64
	// Points / TornPoints / SecondCrashEvery place crashes exactly as in
	// Config (see pickPoints).
	Points           int
	TornPoints       int
	SecondCrashEvery int
	// Ops is the total alloc/write/free cycle count across workers.
	Ops int
	// Workers is the number of concurrent client procs.
	Workers int
	// Restart is the server restart latency; Retransfer the call timeout.
	Restart    time.Duration
	Retransfer time.Duration
	// LeaseTTL bounds orphaned allocations (abandoned cycles rely on it).
	LeaseTTL time.Duration
	// Mutant plants a seeded bug the sweep must catch. Supported: "leak"
	// (Free skips the durable owner-word clear).
	Mutant string
}

// DefaultPMPoolConfig returns a CI-sized pool sweep.
func DefaultPMPoolConfig(kind rpc.Kind, seed int64) PMPoolConfig {
	return PMPoolConfig{
		Kind:             kind,
		Seed:             seed,
		Points:           200,
		TornPoints:       40,
		SecondCrashEvery: 5,
		Ops:              60,
		Workers:          3,
		Restart:          2 * time.Millisecond,
		Retransfer:       500 * time.Microsecond,
		LeaseTTL:         3 * time.Millisecond,
	}
}

// pmpoolCycle is one precomputed allocation lifecycle. Every 8th cycle is
// abandoned (the lease reclaim must collect it); every 7th is kept live to
// the end of the run (its contents must survive every crash).
type pmpoolCycle struct {
	id   uint64
	size int64
	ver  uint32
	// abandon drops the handle unfreed; keep holds it live to the end.
	abandon, keep bool
}

// pmpoolLedger is the acked-operation journal for one cycle: only effects
// whose calls returned are asserted after a crash.
type pmpoolLedger struct {
	allocAcked bool
	freeAcked  bool
	abandoned  bool
	addr       int64
	writeVer   uint32
}

// genPMPoolCycles deals cycles to workers round-robin across a deterministic
// size-class rotation (classes 64, 256 and 1024 after rounding).
func genPMPoolCycles(cfg PMPoolConfig) [][]pmpoolCycle {
	sizes := []int64{64, 192, 520, 1000}
	out := make([][]pmpoolCycle, cfg.Workers)
	for i := 0; i < cfg.Ops; i++ {
		w := i % cfg.Workers
		cy := pmpoolCycle{
			id:   uint64(w+1)<<32 | uint64(i+1),
			size: sizes[i%len(sizes)],
			ver:  uint32(i + 1),
		}
		switch {
		case i%8 == 5:
			cy.abandon = true
		case i%7 == 3:
			cy.keep = true
		}
		out[w] = append(out[w], cy)
	}
	return out
}

// pmpoolRun is one simulated pool deployment plus driver state for a single
// crash-point execution.
type pmpoolRun struct {
	cfg    PMPoolConfig
	cycles [][]pmpoolCycle

	k    *sim.Kernel
	srv  *pmpool.Server
	pool *pmpool.Pool
	logs []*redolog.Log

	serverUp     bool
	generation   int
	reestGen     int
	reconnecting bool

	ledger   map[uint64]*pmpoolLedger
	progress []int
	replayed int

	recoverViolations []string
}

func newPMPoolRun(cfg PMPoolConfig, withMonitor bool) *pmpoolRun {
	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), uint64(cfg.Seed)|1)
	srvHost := host.New(k, "pool", net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
	cliHost := host.New(k, "cli", net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())

	rcfg := rpc.DefaultConfig()
	rcfg.ProcessingTime = 3 * time.Microsecond
	rcfg.SparsePayloads = false
	// A small ring forces wraps and ring-full throttling during the sweep.
	rcfg.LogBytes = 16 * (1024 + 64)

	scfg := pmpool.ServerConfig{
		PoolBytes:    32 * 4096,
		SlabBytes:    4096,
		LeaseTTL:     cfg.LeaseTTL,
		ReclaimEvery: cfg.LeaseTTL / 4,
		LeakMutant:   cfg.Mutant == "leak",
	}
	srv := pmpool.NewServer(srvHost, rcfg, scfg)

	pcfg := pmpool.DefaultPoolConfig(1)
	pcfg.Kind = cfg.Kind
	pcfg.ConnsPerServer = 2
	pcfg.LeaseTTL = cfg.LeaseTTL
	pcfg.Timeout = cfg.Retransfer
	pool := pmpool.NewPool(cliHost, []*pmpool.Server{srv}, rcfg, pcfg)

	r := &pmpoolRun{
		cfg:      cfg,
		cycles:   genPMPoolCycles(cfg),
		k:        k,
		srv:      srv,
		pool:     pool,
		logs:     pool.Logs(),
		serverUp: true,
		ledger:   make(map[uint64]*pmpoolLedger),
		progress: make([]int, cfg.Workers),
	}
	for _, lg := range r.logs {
		lg := lg
		lg.OnRecover = func(info redolog.RecoverInfo) { r.checkRecover(lg, info) }
	}
	for w := 0; w < cfg.Workers; w++ {
		w := w
		k.Go("pmpool-worker", func(p *sim.Proc) { r.worker(p, w) })
	}
	if withMonitor {
		k.Go("pmpool-monitor", func(p *sim.Proc) {
			for {
				p.Sleep(20 * time.Microsecond)
				if r.serverUp && r.reestGen != r.generation {
					r.reconnecting = true
					// Hold the lease renewer off for the whole recovery
					// span: a renewal appended while a log's recovery scan
					// is in flight would be dropped from the rebuilt
					// window.
					r.pool.PauseRenew()
					// Rebuild the server's volatile pool state from the
					// durable metadata shadow first, then replay the
					// unconsumed redo-log tail onto it.
					r.srv.Recover(p)
					replayed, err := r.pool.Reestablish(p, 0)
					r.pool.ResumeRenew()
					if err != nil {
						panic(err) // serial harness: reestablish cannot refuse
					}
					r.replayed += replayed
					r.reestGen = r.generation
					r.reconnecting = false
				}
			}
		})
	}
	return r
}

// waitReady parks a worker while the server is down or reconnecting.
func (r *pmpoolRun) waitReady(p *sim.Proc) {
	for !r.serverUp || r.reconnecting || r.reestGen != r.generation {
		p.Sleep(r.cfg.Retransfer / 4)
	}
}

// worker drives its cycles to completion, retrying every call across
// crashes. Alloc retries reuse the cycle's fixed id, so a durably-logged
// first attempt replays server-side and the retry dedups against it.
func (r *pmpoolRun) worker(p *sim.Proc, w int) {
	for _, cy := range r.cycles[w] {
		led := &pmpoolLedger{}
		r.ledger[cy.id] = led
		var h *pmpool.Handle
		for {
			r.waitReady(p)
			var err error
			if h, err = r.pool.AllocID(p, cy.id, cy.size); err == nil {
				break
			}
		}
		led.allocAcked = true
		led.addr = h.Addr
		payload := fill(int(cy.size), cy.id, cy.ver)
		for {
			r.waitReady(p)
			if err := r.pool.Write(p, h, 0, payload); err == nil {
				break
			}
		}
		led.writeVer = cy.ver
		switch {
		case cy.abandon:
			r.pool.Abandon(h)
			led.abandoned = true
		case cy.keep:
			// Held live: the renewer keeps its lease, and the final state
			// check requires its bytes intact.
		default:
			for {
				r.waitReady(p)
				if err := r.pool.Free(p, h); err == nil {
					break
				}
			}
			led.freeAcked = true
		}
		r.progress[w]++
	}
}

func (r *pmpoolRun) doneAll() bool {
	for w := range r.progress {
		if r.progress[w] != len(r.cycles[w]) {
			return false
		}
	}
	return true
}

// crash fails the pool node and schedules its restart.
func (r *pmpoolRun) crash() {
	if !r.serverUp {
		return
	}
	r.serverUp = false
	r.srv.Crash()
	r.k.AfterFunc(r.cfg.Restart, func() {
		r.srv.H.Restart()
		r.serverUp = true
		r.generation++
	})
}

// checkRecover asserts the redo-log recovery invariants on one connection:
// sequence order at or above the durable floor, decodable frames, untorn
// write payloads, and clean post-recovery accounting.
func (r *pmpoolRun) checkRecover(lg *redolog.Log, info redolog.RecoverInfo) {
	bad := func(format string, a ...any) {
		r.recoverViolations = append(r.recoverViolations, fmt.Sprintf(format, a...))
	}
	prev := uint64(0)
	for i, e := range info.Entries {
		if e.Seq < info.Floor {
			bad("recovered seq %d below durable floor %d", e.Seq, info.Floor)
		}
		if i > 0 && e.Seq <= prev {
			bad("recovered seqs not strictly increasing: %d after %d", e.Seq, prev)
		}
		prev = e.Seq
		_, req, err := rpc.DecodeLoggedRequest(e)
		if err != nil {
			bad("recovered entry is not a consistent frame: %v", err)
			continue
		}
		if req.Op == rpc.OpWrite {
			if len(req.Payload) != req.Size {
				bad("recovered write seq %d: payload %d bytes, want %d", e.Seq, len(req.Payload), req.Size)
				continue
			}
			if _, err := checkFill(req.Payload, req.Key); err != nil {
				bad("recovered write seq %d: %v", e.Seq, err)
			}
		}
	}
	if err := lg.CheckAccounting(); err != nil {
		bad("post-recover accounting: %v", err)
	}
}

// verify checks the settled end state: liveness, then the acked-operation
// ledger against the durable metadata shadow and the data region.
func (r *pmpoolRun) verify() []string {
	var out []string
	bad := func(format string, a ...any) {
		out = append(out, fmt.Sprintf(format, a...))
	}
	out = append(out, r.recoverViolations...)

	if !r.serverUp {
		bad("server still down after settle horizon")
	}
	for w := range r.progress {
		if r.progress[w] != len(r.cycles[w]) {
			bad("worker %d stopped at %d/%d cycles", w, r.progress[w], len(r.cycles[w]))
		}
	}

	// The durable owned-id set must be exactly the kept allocations:
	// everything else was either freed with an ack, or abandoned and
	// reclaimed by lease expiry.
	owned := r.srv.OwnedIDs()
	ids := make([]uint64, 0, len(r.ledger))
	for id := range r.ledger {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	scratch := make([]byte, 1024)
	for _, id := range ids {
		led := r.ledger[id]
		want := led.allocAcked && !led.freeAcked && !led.abandoned
		addr, has := owned[id]
		switch {
		case want && !has:
			bad("live allocation lost: id %#x acked but not durably owned", id)
		case !has:
			// freed or reclaimed, as required
		case led.freeAcked:
			bad("acked free leaked: id %#x still durably owned at %#x", id, addr)
		case led.abandoned:
			bad("orphan never reclaimed: abandoned id %#x still owned at %#x", id, addr)
		default:
			if addr != led.addr {
				bad("id %#x moved: acked at %#x, durably owned at %#x", id, led.addr, addr)
			}
			// Acked write durability: the kept allocation's bytes.
			var size int64
			for _, cys := range r.cycles {
				for _, cy := range cys {
					if cy.id == id {
						size = cy.size
					}
				}
			}
			b := r.srv.H.PM.ReadBytesInto(led.addr, scratch[:size])
			ver, err := checkFill(b, id)
			if err != nil {
				bad("kept allocation %#x torn: %v", id, err)
			} else if ver != led.writeVer {
				bad("kept allocation %#x holds ver %d, acked ver %d", id, ver, led.writeVer)
			}
		}
	}
	for id := range owned {
		if _, ok := r.ledger[id]; !ok {
			bad("durably owned id %#x was never allocated", id)
		}
	}

	// Volatile/durable agreement and allocator books.
	if r.srv.Live() != len(owned) {
		bad("volatile index holds %d ids, durable shadow %d", r.srv.Live(), len(owned))
	}
	if err := r.srv.Slabs().CheckConsistent(); err != nil {
		bad("slab allocator inconsistent: %v", err)
	}
	for i, lg := range r.logs {
		if err := lg.CheckAccounting(); err != nil {
			bad("final accounting (conn %d): %v", i, err)
		}
	}
	return out
}

// PMPoolSweep runs the crash-free reference to size the event space, then
// replays the pool workload once per crash point.
func PMPoolSweep(cfg PMPoolConfig) Result {
	res := Result{Kind: cfg.Kind, Mix: MixWrites, Seed: cfg.Seed}

	// Crash-free reference. The lease renewer and reclaimer poll forever,
	// so the event queue never drains: step in event batches until the
	// workload completes, then include the orphan-reclaim tail so crashes
	// can land inside reclamation too.
	ref := newPMPoolRun(cfg, false)
	for !ref.doneAll() {
		if ref.k.RunEvents(4096) == 0 {
			break
		}
	}
	ref.k.RunFor(3 * cfg.LeaseTTL)
	res.Events = ref.k.Fired()
	record := func(r *pmpoolRun, pt Point, at sim.Time, msgs []string) {
		for _, msg := range msgs {
			res.ViolationCount++
			if len(res.Violations) < maxViolations {
				res.Violations = append(res.Violations, Violation{
					Kind: cfg.Kind, Mix: MixWrites, Seed: cfg.Seed,
					Point: pt, At: at, Msg: msg,
				})
			}
		}
	}
	record(ref, Point{}, ref.k.Now(), ref.verify())
	refSpan := ref.k.Now().Sub(sim.Time(0))
	ref.k.Shutdown()

	points := pickPoints(Config{
		Seed: cfg.Seed, Points: cfg.Points,
		TornPoints: cfg.TornPoints, SecondCrashEvery: cfg.SecondCrashEvery,
	}, res.Events)
	res.Points = len(points)
	for _, pt := range points {
		r, at := runPMPoolPoint(cfg, pt, refSpan)
		res.Replayed += r.replayed
		record(r, pt, at, r.verify())
		r.k.Shutdown()
	}
	return res
}

// runPMPoolPoint executes the workload, crashes at pt, and lets the pool
// settle long enough for recovery, replay, retries, and lease reclamation
// of both abandoned and crash-resurrected orphans.
func runPMPoolPoint(cfg PMPoolConfig, pt Point, refSpan time.Duration) (*pmpoolRun, sim.Time) {
	r := newPMPoolRun(cfg, true)
	r.k.RunEvents(pt.Event)
	if pt.TornFrac > 0 {
		if ws := r.srv.H.PM.InflightTornWindows(r.k.Now()); len(ws) > 0 {
			w := ws[int(pt.Event)%len(ws)]
			start := w.Start
			if now := r.k.Now(); start < now {
				start = now
			}
			t := start.Add(time.Duration(pt.TornFrac * float64(w.End.Sub(start))))
			if t > r.k.Now() {
				r.k.RunUntil(t)
			}
		}
	}
	at := r.k.Now()
	r.crash()
	if pt.SecondCrash {
		delta := time.Duration(pt.Event%40) * time.Microsecond
		r.k.AfterFunc(cfg.Restart+delta, r.crash)
	}
	horizon := at.Add(3*cfg.Restart + 2*refSpan +
		100*time.Duration(cfg.Ops)*cfg.Retransfer/10 + 4*cfg.LeaseTTL)
	r.k.RunUntil(horizon)
	return r, at
}
