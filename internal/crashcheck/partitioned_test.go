package crashcheck

import (
	"testing"
)

// TestPartitionedSweepClean sweeps a reduced window-boundary point set over
// the partitioned deployment's failover/resync path: no acknowledged write
// may be lost and replicas must converge byte-identically at every crash
// window, with the engine running multi-worker up to each crash.
func TestPartitionedSweepClean(t *testing.T) {
	if testing.Short() {
		t.Skip("partitioned sweep is seconds-long")
	}
	cfg := DefaultPartitionedConfig(1)
	cfg.Points = 8
	cfg.SecondCrashEvery = 4
	cfg.Workers = 2
	res := PartitionedSweep(cfg)
	if res.ViolationCount != 0 {
		for _, v := range res.Violations {
			t.Error(v)
		}
		t.Fatalf("%d violations over %d points (minimal: %v)",
			res.ViolationCount, res.Points, res.Minimal())
	}
	if res.Points != 8 {
		t.Fatalf("swept %d points, want 8", res.Points)
	}
	if res.Failovers == 0 {
		t.Fatal("no crash was ever detected — the sweep tested nothing")
	}
	if res.Resyncs == 0 {
		t.Fatal("no resync completed — readmission path untested")
	}
	if res.Shipped == 0 {
		t.Fatal("log shipping never ran")
	}
}

// TestPartitionedSweepWorkerStable pins the coordinate-system claim: the
// same sweep at different worker counts crashes at the same windows, drives
// the same failover work, and reaches the same verdicts — a violation found
// under parallel execution replays serially from its (seed, window) pair.
func TestPartitionedSweepWorkerStable(t *testing.T) {
	if testing.Short() {
		t.Skip("partitioned sweep is seconds-long")
	}
	cfg := DefaultPartitionedConfig(7)
	cfg.Points = 3
	cfg.SecondCrashEvery = 0
	cfg.Workers = 1
	a := PartitionedSweep(cfg)
	cfg.Workers = 4
	b := PartitionedSweep(cfg)
	if a.Windows != b.Windows || a.Failovers != b.Failovers ||
		a.Resyncs != b.Resyncs || a.Shipped != b.Shipped ||
		a.Replayed != b.Replayed || a.ViolationCount != b.ViolationCount {
		t.Fatalf("sweep not worker-count-stable:\n  workers=1 %+v\n  workers=4 %+v", a, b)
	}
}

// TestPartitionedMutantsCaught seeds both known bug classes and expects the
// partitioned sweep to flag each within a handful of points — the detection
// power the serial cluster sweep already has must survive the engine port.
func TestPartitionedMutantsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("partitioned sweep is seconds-long")
	}
	for _, mutant := range []string{"ackbug", "resurrect"} {
		t.Run(mutant, func(t *testing.T) {
			cfg := DefaultPartitionedConfig(3)
			cfg.Points = 6
			cfg.SecondCrashEvery = 0
			cfg.Workers = 2
			cfg.Mutant = mutant
			res := PartitionedSweep(cfg)
			if res.ViolationCount == 0 {
				t.Fatalf("seeded %q mutant survived %d crash points undetected", mutant, res.Points)
			}
		})
	}
}
