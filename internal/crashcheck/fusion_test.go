package crashcheck

import (
	"testing"

	"prdma/internal/sim"
)

// TestPartitionedSweepFusionStable pins the (seed, window) repro contract
// across the engine's window-fusion optimization: fusion changes how windows
// execute (solo stretches run without barriers), never which events the
// i-th window covers, so the identical sweep — same crash windows, same
// failover work, same verdicts — must come out of a fusion-off and a
// fusion-on run. A minimal repro recorded before the optimization replays
// identically after it, and vice versa.
func TestPartitionedSweepFusionStable(t *testing.T) {
	if testing.Short() {
		t.Skip("partitioned sweep is seconds-long")
	}
	defer sim.SetDefaultWindowFusion(true)

	cfg := DefaultPartitionedConfig(5)
	cfg.Points = 3
	cfg.SecondCrashEvery = 2
	cfg.Workers = 2

	sim.SetDefaultWindowFusion(false)
	off := PartitionedSweep(cfg)
	sim.SetDefaultWindowFusion(true)
	on := PartitionedSweep(cfg)

	if off.Windows != on.Windows || off.Failovers != on.Failovers ||
		off.Resyncs != on.Resyncs || off.Shipped != on.Shipped ||
		off.Replayed != on.Replayed || off.ViolationCount != on.ViolationCount ||
		off.Points != on.Points {
		t.Fatalf("sweep not fusion-stable:\n  fusion=off %+v\n  fusion=on  %+v", off, on)
	}
}
