// Package fabric models the RDMA interconnect (InfiniBand / RoCE in the
// paper's testbed) at the level the experiments need: per-message delivery
// latency composed of propagation, egress serialization with FIFO queueing,
// and optional congestion from background traffic; plus message loss and
// endpoint up/down state for the failure-recovery experiments.
package fabric

import (
	"fmt"
	"sync/atomic"
	"time"

	"prdma/internal/sim"
)

// Params configures the network.
type Params struct {
	// Propagation is the one-way wire+switch latency.
	Propagation time.Duration
	// BytesPerSec is the link bandwidth (per direction, per endpoint).
	BytesPerSec float64
	// BusyQueueMean, when positive, adds an exponentially distributed
	// queueing delay to every message: the "busy network" knob of Fig. 14,
	// which the paper produces with a background flood of small packets.
	BusyQueueMean time.Duration
	// BusyBandwidthShare scales available bandwidth under load (0<s<=1);
	// zero means 1 (no reduction).
	BusyBandwidthShare float64
	// DropProb is the per-message loss probability (failure experiments).
	DropProb float64
}

// DefaultParams returns the ConnectX-4-like defaults from DESIGN.md §4.
func DefaultParams() Params {
	return Params{
		Propagation: 800 * time.Nanosecond,
		BytesPerSec: 5e9, // ~40 GbE
	}
}

// Lookahead returns the conservative-PDES lookahead the network guarantees:
// no message ever arrives sooner than the wire propagation delay, so an
// engine partitioned along fabric boundaries may run each partition that far
// ahead without risk (see sim.Engine).
func (p Params) Lookahead() time.Duration { return p.Propagation }

// Transferable is implemented by payloads that can cross between engine
// partitions: CloneForTransfer returns a deep copy owned by nobody (no pools,
// no refcounts), safe for the destination partition to read while the source
// reuses the original's buffers.
type Transferable interface{ CloneForTransfer() interface{} }

// Message is one unit of wire transfer. Payload is opaque to the fabric.
type Message struct {
	From, To string
	Size     int
	Payload  interface{}
}

// pooledMsg is a free-listed message envelope with its delivery thunk bound
// once, so the SendPooled hot path schedules delivery without allocating
// either the Message or a closure. Handlers receive &pm.Message and must
// not retain it past the handler call; the envelope is recycled as soon as
// the handler returns (payloads are the sender's to manage, via release).
type pooledMsg struct {
	Message
	net     *Network
	src     *Endpoint
	dst     *Endpoint
	arrive  sim.Time
	release func()
	fn      func()
}

// Network connects named endpoints. Endpoints may live on different kernels
// of one sim.Engine (AttachOn): each endpoint's egress state is then owned by
// its partition, deliveries between partitions ride the engine's window
// barrier, and the counters below — bumped from several partitions at once —
// are maintained with atomic adds (commutative sums, so the totals stay
// deterministic at any worker count).
type Network struct {
	K      *sim.Kernel
	Params Params

	endpoints   map[string]*Endpoint
	rng         *sim.Rand
	inj         *Injector
	partitioned bool

	// reclaim indexes dirty cross-transfer slabs by destination partition;
	// the engine flush hook drains it at every window barrier (see xfer.go).
	reclaim [][]*xferDir
	hooked  bool

	// Stats. Dropped is the total; DroppedFault counts losses the model
	// injected (DropProb and fault-injector partitions/bursts) and
	// DroppedDown counts messages that reached a down or handlerless
	// endpoint — the matrix figure needs the two attributed separately.
	Delivered    int64
	Dropped      int64
	DroppedFault int64
	DroppedDown  int64
	Duplicated   int64
	Reordered    int64
	BytesSent    int64
	// XferReused / XferAllocs count cross-partition transfer envelopes
	// served from a slab vs freshly allocated (see XferSlabStats).
	XferReused int64
	XferAllocs int64
}

// New returns an empty network.
func New(k *sim.Kernel, p Params, seed uint64) *Network {
	return &Network{K: k, Params: p, endpoints: make(map[string]*Endpoint), rng: sim.NewRand(seed)}
}

// SetInjector installs (or, with nil, removes) a fault injector. With no
// injector the send paths are bit-for-bit identical to an unfaulted build.
func (n *Network) SetInjector(i *Injector) {
	if i != nil && n.partitioned {
		panic("fabric: the fault injector requires a single-kernel network (shared rng)")
	}
	n.inj = i
}

// Injector returns the installed fault injector (nil when none).
func (n *Network) Injector() *Injector { return n.inj }

// Endpoint is one NIC port attached to the network.
type Endpoint struct {
	Name string
	Net  *Network

	k       *sim.Kernel // partition owning this endpoint's state
	tx      *sim.Resource
	up      bool
	handler func(at sim.Time, m *Message)
	// lastArrive enforces per-destination FIFO delivery so that RC/UC
	// in-order semantics hold even under congestion jitter. It is keyed by
	// destination on the *source* endpoint, so it stays partition-local.
	lastArrive map[string]sim.Time
	// msgFree pools send envelopes. Per endpoint (not per network) so two
	// partitions never share a free list: an intra-partition message is
	// allocated and recycled on its source's kernel, and cross-partition
	// messages bypass the pool entirely.
	msgFree []*pooledMsg
	// xfer pools cross-partition transfer envelopes, indexed by destination
	// partition (see xfer.go).
	xfer []*xferDir
}

// Attach creates an endpoint on the network's own kernel. The handler runs
// at message arrival time.
func (n *Network) Attach(name string, handler func(at sim.Time, m *Message)) *Endpoint {
	return n.AttachOn(n.K, name, handler)
}

// AttachOn creates an endpoint whose state lives on kernel k — one partition
// of a sim.Engine when the deployment is split across kernels. Sends between
// endpoints on different kernels deep-copy Transferable payloads and deliver
// through the engine barrier; everything else is identical to Attach.
// Random per-message behavior (fault injection, busy-network queueing,
// loss) draws from the network's single rng, whose consumption order would
// depend on partition interleaving, so it is rejected on partitioned
// networks.
func (n *Network) AttachOn(k *sim.Kernel, name string, handler func(at sim.Time, m *Message)) *Endpoint {
	if _, dup := n.endpoints[name]; dup {
		panic(fmt.Sprintf("fabric: duplicate endpoint %q", name))
	}
	if k != n.K {
		if k.Engine() == nil || k.Engine() != n.K.Engine() {
			panic("fabric: AttachOn kernel must share an engine with the network's kernel")
		}
		if sim.Time(n.Params.Propagation) < sim.Time(k.Engine().Lookahead()) {
			panic("fabric: engine lookahead exceeds the network propagation delay")
		}
		if n.inj != nil || n.Params.BusyQueueMean > 0 || n.Params.DropProb > 0 {
			panic("fabric: fault injection and random congestion require a single-kernel network (shared rng)")
		}
		n.partitioned = true
	}
	if eng := k.Engine(); eng != nil {
		// Size the transfer-slab reclaim index for this partition and hook
		// the slab recycler into the engine's window barrier (once).
		n.growReclaim(k.Partition())
		if !n.hooked {
			eng.AddFlushHook(n.reclaimXfer)
			n.hooked = true
		}
	}
	e := &Endpoint{Name: name, Net: n, k: k, tx: sim.NewResource(k), up: true, handler: handler, lastArrive: make(map[string]sim.Time)}
	n.endpoints[name] = e
	return e
}

// SetHandler replaces the arrival handler (used when a NIC restarts).
func (e *Endpoint) SetHandler(h func(at sim.Time, m *Message)) { e.handler = h }

// Up reports whether the endpoint accepts traffic.
func (e *Endpoint) Up() bool { return e.up }

// SetUp changes the endpoint's availability. While down, inbound messages
// are dropped silently (the sender's reliability layer times out and
// retries, as real RC QPs do).
func (e *Endpoint) SetUp(up bool) { e.up = up }

// bandwidth returns effective egress bandwidth given the load knobs.
func (n *Network) bandwidth() float64 {
	bw := n.Params.BytesPerSec
	if n.Params.BusyBandwidthShare > 0 && n.Params.BusyBandwidthShare < 1 {
		bw *= n.Params.BusyBandwidthShare
	}
	return bw
}

// SerializeCost returns the egress serialization time for n bytes.
func (n *Network) SerializeCost(size int) time.Duration {
	bw := n.bandwidth()
	if bw <= 0 || size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / bw * 1e9)
}

// Send transmits m from endpoint e. It returns the time the message will
// finish serializing onto the wire (when the sender-side NIC is free again).
// Delivery to the destination handler is scheduled internally; lost or
// down-endpoint messages are silently dropped — reliability is the QP
// layer's job.
func (e *Endpoint) Send(m *Message) sim.Time {
	n := e.Net
	m.From = e.Name
	atomic.AddInt64(&n.BytesSent, int64(m.Size))

	txDone := e.tx.Reserve(n.SerializeCost(m.Size))

	var v verdict
	if n.inj != nil {
		v = n.inj.judge(txDone, e.Name, m.To)
		if v.drop {
			n.countDrop(&n.DroppedFault)
			return txDone
		}
	}
	delay := n.Params.Propagation + v.extra
	if n.Params.BusyQueueMean > 0 {
		delay += time.Duration(n.rng.Exp(float64(n.Params.BusyQueueMean)))
	}
	arrive := txDone.Add(delay)
	if last := e.lastArrive[m.To]; arrive < last {
		arrive = last
	}
	e.lastArrive[m.To] = arrive
	if v.reorder > 0 {
		// Held back past the FIFO point without advancing lastArrive, so
		// later messages to the same destination may overtake — bounded
		// reordering.
		arrive = arrive.Add(v.reorder)
		atomic.AddInt64(&n.Reordered, 1)
	}

	if n.Params.DropProb > 0 && n.rng.Float64() < n.Params.DropProb {
		n.countDrop(&n.DroppedFault)
		return txDone
	}
	dst, ok := n.endpoints[m.To]
	if !ok {
		panic(fmt.Sprintf("fabric: send to unknown endpoint %q", m.To))
	}
	if dst.k != e.k {
		// Cross-partition: detach the payload from the source's pools into a
		// pooled transfer envelope and hand delivery to the engine barrier
		// (faults never reach here — they are rejected on partitioned
		// networks, so no dup/reorder).
		e.postCross(dst, arrive, m.To, m.Size, m.Payload)
		return txDone
	}
	deliver := func(at sim.Time) {
		if !dst.up || dst.handler == nil {
			n.countDrop(&n.DroppedDown)
			return
		}
		atomic.AddInt64(&n.Delivered, 1)
		dst.handler(at, m)
	}
	e.k.Schedule(arrive, func() { deliver(arrive) })
	if v.dup > 0 {
		atomic.AddInt64(&n.Duplicated, 1)
		dupAt := arrive.Add(v.dup)
		e.k.Schedule(dupAt, func() { deliver(dupAt) })
	}
	return txDone
}

// countDrop bumps the total drop counter and one attribution counter.
func (n *Network) countDrop(attr *int64) {
	atomic.AddInt64(&n.Dropped, 1)
	atomic.AddInt64(attr, 1)
}

// deliverCross runs on the destination partition's kernel at arrival time.
func (e *Endpoint) deliverCross(at sim.Time, m *Message) {
	n := e.Net
	if !e.up || e.handler == nil {
		n.countDrop(&n.DroppedDown)
		return
	}
	atomic.AddInt64(&n.Delivered, 1)
	e.handler(at, m)
}

func (e *Endpoint) getMsg() *pooledMsg {
	if l := len(e.msgFree); l > 0 {
		pm := e.msgFree[l-1]
		e.msgFree = e.msgFree[:l-1]
		return pm
	}
	pm := &pooledMsg{net: e.Net, src: e}
	pm.fn = func() { pm.deliver() }
	return pm
}

// finish recycles the envelope and then fires the sender's release hook —
// in that order, so a release that immediately sends again can reuse this
// very envelope. Recycling happens on the source's kernel: intra-partition
// deliveries share it, and cross-partition sends finish at send time.
func (pm *pooledMsg) finish() {
	src, rel := pm.src, pm.release
	pm.Payload, pm.release, pm.dst = nil, nil, nil
	src.msgFree = append(src.msgFree, pm)
	if rel != nil {
		rel()
	}
}

func (pm *pooledMsg) deliver() {
	n, dst, arrive := pm.net, pm.dst, pm.arrive
	if !dst.up || dst.handler == nil {
		n.countDrop(&n.DroppedDown)
	} else {
		atomic.AddInt64(&n.Delivered, 1)
		dst.handler(arrive, &pm.Message)
	}
	pm.finish()
}

// deliverAt is the duplicated-delivery variant: it hands the message to the
// destination at the given time and recycles the envelope only after the
// final copy, so the sender's release hook still fires exactly once.
func (pm *pooledMsg) deliverAt(at sim.Time, final bool) {
	n, dst := pm.net, pm.dst
	if !dst.up || dst.handler == nil {
		n.countDrop(&n.DroppedDown)
	} else {
		atomic.AddInt64(&n.Delivered, 1)
		dst.handler(at, &pm.Message)
	}
	if final {
		pm.finish()
	}
}

// SendPooled transmits like Send but from a free-listed envelope with a
// pre-bound delivery event, making the send/deliver path alloc-free.
// Timing, FIFO, loss, and stats semantics are identical to Send. release,
// when non-nil, is invoked exactly once when the fabric is done with the
// message: after the destination handler returns, or at the point of any
// drop (loss, down endpoint, missing handler). The handler's *Message is
// only valid for the duration of the handler call.
func (e *Endpoint) SendPooled(to string, size int, payload interface{}, release func()) sim.Time {
	n := e.Net
	pm := e.getMsg()
	pm.From, pm.To, pm.Size, pm.Payload = e.Name, to, size, payload
	pm.release = release
	atomic.AddInt64(&n.BytesSent, int64(size))

	txDone := e.tx.Reserve(n.SerializeCost(size))

	var v verdict
	if n.inj != nil {
		v = n.inj.judge(txDone, e.Name, to)
		if v.drop {
			n.countDrop(&n.DroppedFault)
			pm.finish()
			return txDone
		}
	}
	delay := n.Params.Propagation + v.extra
	if n.Params.BusyQueueMean > 0 {
		delay += time.Duration(n.rng.Exp(float64(n.Params.BusyQueueMean)))
	}
	arrive := txDone.Add(delay)
	if last := e.lastArrive[to]; arrive < last {
		arrive = last
	}
	e.lastArrive[to] = arrive
	if v.reorder > 0 {
		arrive = arrive.Add(v.reorder) // see Send: bounded reordering
		atomic.AddInt64(&n.Reordered, 1)
	}

	if n.Params.DropProb > 0 && n.rng.Float64() < n.Params.DropProb {
		n.countDrop(&n.DroppedFault)
		pm.finish()
		return txDone
	}
	dst, ok := n.endpoints[to]
	if !ok {
		panic(fmt.Sprintf("fabric: send to unknown endpoint %q", to))
	}
	if dst.k != e.k {
		// Cross-partition: clone the payload into a pooled transfer envelope
		// (before finish — the sender's release may reuse its buffers), then
		// finish this envelope immediately: release fires at send time, which
		// is legal because the clone detaches the sender's buffers.
		e.postCross(dst, arrive, to, size, payload)
		pm.finish()
		return txDone
	}
	pm.dst, pm.arrive = dst, arrive
	if v.dup > 0 {
		// Duplicated delivery allocates its closures — acceptable: faults
		// are never active on the alloc-pinned benchmark paths.
		atomic.AddInt64(&n.Duplicated, 1)
		dupAt := arrive.Add(v.dup)
		e.k.Schedule(arrive, func() { pm.deliverAt(arrive, false) })
		e.k.Schedule(dupAt, func() { pm.deliverAt(dupAt, true) })
		return txDone
	}
	e.k.Schedule(arrive, pm.fn)
	return txDone
}

// Endpoint returns a registered endpoint by name (nil if absent).
func (n *Network) Endpoint(name string) *Endpoint { return n.endpoints[name] }

// RTT estimates the round-trip time for a request of reqSize and a response
// of respSize with no queueing, useful for calibration tests.
func (n *Network) RTT(reqSize, respSize int) time.Duration {
	return 2*n.Params.Propagation + n.SerializeCost(reqSize) + n.SerializeCost(respSize)
}
