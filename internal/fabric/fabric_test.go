package fabric

import (
	"testing"
	"time"

	"prdma/internal/sim"
)

func pair(p Params) (*sim.Kernel, *Network, *Endpoint, *Endpoint, *[]sim.Time) {
	k := sim.New()
	n := New(k, p, 1)
	var arrivals []sim.Time
	b := n.Attach("b", func(at sim.Time, m *Message) { arrivals = append(arrivals, at) })
	a := n.Attach("a", nil)
	return k, n, a, b, &arrivals
}

func TestDeliveryLatency(t *testing.T) {
	p := DefaultParams()
	k, _, a, _, arrivals := pair(p)
	a.Send(&Message{To: "b", Size: 0})
	k.Run()
	if len(*arrivals) != 1 {
		t.Fatalf("delivered %d", len(*arrivals))
	}
	if (*arrivals)[0] != sim.Time(p.Propagation) {
		t.Fatalf("arrival = %v, want %v", (*arrivals)[0], p.Propagation)
	}
}

func TestSerializationAndQueueing(t *testing.T) {
	p := DefaultParams()
	k, n, a, _, arrivals := pair(p)
	// Two 64 KiB messages back to back share the egress link.
	a.Send(&Message{To: "b", Size: 65536})
	a.Send(&Message{To: "b", Size: 65536})
	k.Run()
	ser := n.SerializeCost(65536)
	want1 := sim.Time(0).Add(ser + p.Propagation)
	want2 := sim.Time(0).Add(2*ser + p.Propagation)
	if (*arrivals)[0] != want1 || (*arrivals)[1] != want2 {
		t.Fatalf("arrivals = %v, want %v and %v", *arrivals, want1, want2)
	}
}

func TestSerializeCost(t *testing.T) {
	n := New(sim.New(), Params{BytesPerSec: 1e9}, 1)
	if got := n.SerializeCost(1000); got != time.Microsecond {
		t.Fatalf("cost = %v", got)
	}
	if n.SerializeCost(0) != 0 {
		t.Fatal("zero size should be free")
	}
}

func TestDownEndpointDrops(t *testing.T) {
	k, n, a, b, arrivals := pair(DefaultParams())
	b.SetUp(false)
	a.Send(&Message{To: "b", Size: 10})
	k.Run()
	if len(*arrivals) != 0 {
		t.Fatal("message delivered to down endpoint")
	}
	if n.Dropped != 1 {
		t.Fatalf("Dropped = %d", n.Dropped)
	}
	b.SetUp(true)
	a.Send(&Message{To: "b", Size: 10})
	k.Run()
	if len(*arrivals) != 1 {
		t.Fatal("message not delivered after endpoint came back")
	}
}

func TestDropProbability(t *testing.T) {
	p := DefaultParams()
	p.DropProb = 0.5
	k, n, a, _, arrivals := pair(p)
	const total = 2000
	for i := 0; i < total; i++ {
		a.Send(&Message{To: "b", Size: 1})
	}
	k.Run()
	got := len(*arrivals)
	if got < total/3 || got > 2*total/3 {
		t.Fatalf("delivered %d of %d with 50%% drop", got, total)
	}
	if n.Dropped+int64(got) != total {
		t.Fatalf("dropped %d + delivered %d != %d", n.Dropped, got, total)
	}
}

func TestBusyQueueingAddsLatency(t *testing.T) {
	idle := DefaultParams()
	busy := DefaultParams()
	busy.BusyQueueMean = 5 * time.Microsecond

	mean := func(p Params) time.Duration {
		k, _, a, _, arrivals := pair(p)
		for i := 0; i < 500; i++ {
			i := i
			k.After(time.Duration(i)*time.Millisecond, func() {
				a.Send(&Message{To: "b", Size: 64})
			})
		}
		k.Run()
		var sum time.Duration
		prev := sim.Time(0)
		for i, at := range *arrivals {
			base := sim.Time(time.Duration(i) * time.Millisecond)
			sum += at.Sub(base)
			prev = at
		}
		_ = prev
		return sum / time.Duration(len(*arrivals))
	}
	mi, mb := mean(idle), mean(busy)
	if mb < mi+3*time.Microsecond {
		t.Fatalf("busy mean %v not sufficiently above idle mean %v", mb, mi)
	}
}

func TestBusyBandwidthShare(t *testing.T) {
	p := DefaultParams()
	p.BusyBandwidthShare = 0.5
	n := New(sim.New(), p, 1)
	full := DefaultParams()
	nf := New(sim.New(), full, 1)
	if n.SerializeCost(65536) != 2*nf.SerializeCost(65536) {
		t.Fatal("halved bandwidth should double serialization")
	}
}

func TestUnknownEndpointPanics(t *testing.T) {
	k, _, a, _, _ := pair(DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Send(&Message{To: "nowhere", Size: 1})
	k.Run()
}

func TestDuplicateAttachPanics(t *testing.T) {
	n := New(sim.New(), DefaultParams(), 1)
	n.Attach("x", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Attach("x", nil)
}

func TestRTTEstimate(t *testing.T) {
	n := New(sim.New(), Params{Propagation: time.Microsecond, BytesPerSec: 1e9}, 1)
	want := 2*time.Microsecond + 2*time.Microsecond // prop*2 + 1000B + 1000B
	if got := n.RTT(1000, 1000); got != want {
		t.Fatalf("RTT = %v, want %v", got, want)
	}
}

func TestStats(t *testing.T) {
	k, n, a, _, _ := pair(DefaultParams())
	a.Send(&Message{To: "b", Size: 100})
	k.Run()
	if n.BytesSent != 100 || n.Delivered != 1 {
		t.Fatalf("stats: %d bytes, %d delivered", n.BytesSent, n.Delivered)
	}
}

// Property: per-destination delivery order matches send order, even with
// congestion jitter — the invariant RC correctness rests on.
func TestPerPairFIFOProperty(t *testing.T) {
	p := DefaultParams()
	p.BusyQueueMean = 10 * time.Microsecond // heavy jitter
	k := sim.New()
	n := New(k, p, 77)
	var got []int
	n.Attach("dst", func(at sim.Time, m *Message) {
		got = append(got, m.Payload.(int))
	})
	src := n.Attach("src", nil)
	const total = 500
	for i := 0; i < total; i++ {
		i := i
		k.After(time.Duration(i)*100*time.Nanosecond, func() {
			src.Send(&Message{To: "dst", Size: 32, Payload: i})
		})
	}
	k.Run()
	if len(got) != total {
		t.Fatalf("delivered %d of %d", len(got), total)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reordered at %d: got %d", i, v)
		}
	}
}
