package fabric

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"prdma/internal/sim"
)

// arrival records one observed delivery: which message, when.
type arrival struct {
	ID int
	At sim.Time
}

// runAdversary pushes n zero-size messages from a→b at a fixed interval
// under the given adversary and returns the observed delivery schedule plus
// the network for counter inspection. Zero-size messages serialize for free,
// so a message sent at t reaches the injector's judgment at exactly t.
func runAdversary(t *testing.T, spec FaultSpec, seed uint64, n int, every time.Duration) ([]arrival, *Network) {
	t.Helper()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	k := sim.New()
	net := New(k, DefaultParams(), 1)
	net.SetInjector(NewInjector(spec, seed))
	var got []arrival
	net.Attach("b", func(at sim.Time, m *Message) {
		got = append(got, arrival{ID: m.Payload.(int), At: at})
	})
	a := net.Attach("a", nil)
	for i := 0; i < n; i++ {
		i := i
		k.Schedule(sim.Time(int64(i)*int64(every)), func() {
			a.Send(&Message{To: "b", Size: 0, Payload: i})
		})
	}
	k.Run()
	return got, net
}

// TestInjectorDeterministicSchedule runs each adversary mechanism twice at
// the same seed and expects the byte-identical delivery schedule the matrix
// figure depends on — and a different schedule at a different seed, so the
// randomness actually flows from the seed rather than being vestigial.
func TestInjectorDeterministicSchedule(t *testing.T) {
	cases := []struct {
		name   string
		spec   FaultSpec
		seeded bool // schedule should change with the seed
	}{
		{"partition", FaultSpec{Partitions: []PartitionSpec{{To: "b", StartUS: 50, EndUS: 120}}}, false},
		{"gray", FaultSpec{Gray: []GraySpec{{Endpoint: "b", MeanUS: 5, Prob: 0.5}}}, true},
		{"reorder", FaultSpec{ReorderProb: 0.5, ReorderMaxUS: 15}, true},
		{"duplicate", FaultSpec{DupProb: 0.5, DupDelayUS: 8}, true},
		{"burst", FaultSpec{Bursts: []BurstSpec{{PeriodUS: 40, LenUS: 20, DropProb: 0.5}}}, true},
		{"combined", FaultSpec{
			Partitions:  []PartitionSpec{{To: "b", StartUS: 30, EndUS: 90, Symmetric: true}},
			Gray:        []GraySpec{{Endpoint: "b", MeanUS: 3, Prob: 0.3}},
			ReorderProb: 0.2, ReorderMaxUS: 10,
			DupProb: 0.2, DupDelayUS: 6,
			Bursts: []BurstSpec{{StartUS: 100, PeriodUS: 60, LenUS: 30, DropProb: 0.4}},
		}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a1, _ := runAdversary(t, c.spec, 9, 200, time.Microsecond)
			a2, _ := runAdversary(t, c.spec, 9, 200, time.Microsecond)
			if !reflect.DeepEqual(a1, a2) {
				t.Fatal("same (spec, seed, traffic) produced different delivery schedules")
			}
			if c.seeded {
				a3, _ := runAdversary(t, c.spec, 10, 200, time.Microsecond)
				if reflect.DeepEqual(a1, a3) {
					t.Fatal("different seed produced an identical schedule — seed is not wired through")
				}
			}
		})
	}
}

// TestPartitionHealRestoresConnectivity cuts a→b for [100µs, 300µs) and
// expects exactly the in-window messages to vanish: connectivity before the
// cut and — the heal contract — after it, with every loss attributed to the
// partition counter.
func TestPartitionHealRestoresConnectivity(t *testing.T) {
	spec := FaultSpec{Partitions: []PartitionSpec{{From: "a", To: "b", StartUS: 100, EndUS: 300}}}
	got, net := runAdversary(t, spec, 3, 50, 10*time.Microsecond) // sends at 0,10,...,490µs
	seen := make(map[int]bool, len(got))
	for _, ar := range got {
		seen[ar.ID] = true
	}
	for i := 0; i < 50; i++ {
		at := time.Duration(i) * 10 * time.Microsecond
		inCut := at >= 100*time.Microsecond && at < 300*time.Microsecond
		if inCut && seen[i] {
			t.Errorf("message %d sent at %v crossed the partition", i, at)
		}
		if !inCut && !seen[i] {
			t.Errorf("message %d sent at %v lost outside the cut window", i, at)
		}
	}
	if net.DroppedFault != 20 {
		t.Errorf("DroppedFault = %d, want 20", net.DroppedFault)
	}
	if inj := net.Injector(); inj.DropsPartition != 20 || inj.DropsBurst != 0 {
		t.Errorf("drop attribution: partition=%d burst=%d, want 20/0", inj.DropsPartition, inj.DropsBurst)
	}
}

// TestPartitionDirectionality checks the symmetric knob: a one-sided cut
// From a To b must leave b→a traffic flowing, and a symmetric cut must
// black-hole both directions.
func TestPartitionDirectionality(t *testing.T) {
	run := func(symmetric bool) (ab, ba int) {
		k := sim.New()
		net := New(k, DefaultParams(), 1)
		net.SetInjector(NewInjector(FaultSpec{
			Partitions: []PartitionSpec{{From: "a", To: "b", Symmetric: symmetric}},
		}, 1))
		var atB, atA int
		net.Attach("b", func(at sim.Time, m *Message) { atB++ })
		net.Attach("a", func(at sim.Time, m *Message) { atA++ })
		for i := 0; i < 10; i++ {
			k.Schedule(sim.Time(int64(i)*int64(time.Microsecond)), func() {
				net.Endpoint("a").Send(&Message{To: "b", Size: 0})
				net.Endpoint("b").Send(&Message{To: "a", Size: 0})
			})
		}
		k.Run()
		return atB, atA
	}
	if ab, ba := run(false); ab != 0 || ba != 10 {
		t.Errorf("asymmetric cut: a→b delivered %d (want 0), b→a delivered %d (want 10)", ab, ba)
	}
	if ab, ba := run(true); ab != 0 || ba != 0 {
		t.Errorf("symmetric cut: a→b delivered %d, b→a delivered %d, want 0/0", ab, ba)
	}
}

// TestReorderBoundRespected turns every message into a straggler and checks
// the contract: each is held at most ReorderMaxUS past its FIFO delivery
// point, and the holds genuinely let later messages overtake.
func TestReorderBoundRespected(t *testing.T) {
	const maxUS = 20
	spec := FaultSpec{ReorderProb: 1, ReorderMaxUS: maxUS}
	got, net := runAdversary(t, spec, 5, 100, time.Microsecond)
	if len(got) != 100 {
		t.Fatalf("delivered %d of 100 — reordering must not lose messages", len(got))
	}
	prop := DefaultParams().Propagation
	for _, ar := range got {
		sent := time.Duration(ar.ID) * time.Microsecond
		hold := ar.At.Duration() - sent - prop
		if hold <= 0 || hold > maxUS*time.Microsecond {
			t.Fatalf("message %d held %v past its FIFO point, want (0, %dµs]", ar.ID, hold, maxUS)
		}
	}
	if sort.SliceIsSorted(got, func(i, j int) bool { return got[i].ID < got[j].ID }) {
		t.Fatal("delivery stayed in send order — nothing actually overtook")
	}
	if net.Reordered != 100 {
		t.Errorf("Reordered = %d, want 100", net.Reordered)
	}
}

// TestDuplicateDeliveredTwice turns every message into a duplicate and
// checks each arrives exactly twice, the copy strictly after the original.
func TestDuplicateDeliveredTwice(t *testing.T) {
	spec := FaultSpec{DupProb: 1, DupDelayUS: 5}
	got, net := runAdversary(t, spec, 6, 50, time.Microsecond)
	if len(got) != 100 {
		t.Fatalf("delivered %d arrivals for 50 duplicated sends, want 100", len(got))
	}
	first := make(map[int]sim.Time, 50)
	count := make(map[int]int, 50)
	for _, ar := range got {
		count[ar.ID]++
		if prev, ok := first[ar.ID]; !ok {
			first[ar.ID] = ar.At
		} else if ar.At <= prev {
			t.Fatalf("message %d: copy at %v not strictly after original at %v", ar.ID, ar.At, prev)
		}
	}
	for id, c := range count {
		if c != 2 {
			t.Errorf("message %d delivered %d times, want 2", id, c)
		}
	}
	if net.Duplicated != 50 {
		t.Errorf("Duplicated = %d, want 50", net.Duplicated)
	}
}

// TestGraySlowdownWindowed checks a gray failure slows — without losing or
// reordering — exactly the traffic inside its window.
func TestGraySlowdownWindowed(t *testing.T) {
	spec := FaultSpec{Gray: []GraySpec{{Endpoint: "b", MeanUS: 10, EndUS: 200}}}
	got, net := runAdversary(t, spec, 8, 40, 10*time.Microsecond) // sends at 0,10,...,390µs
	if len(got) != 40 {
		t.Fatalf("delivered %d of 40 — gray failures must not lose messages", len(got))
	}
	for i, ar := range got {
		if ar.ID != i {
			t.Fatalf("gray slowdown reordered delivery: position %d got message %d", i, ar.ID)
		}
	}
	prop := DefaultParams().Propagation
	var slowed time.Duration
	for _, ar := range got {
		sent := time.Duration(ar.ID) * 10 * time.Microsecond
		if sent < 200*time.Microsecond {
			slowed += ar.At.Duration() - sent - prop
		}
	}
	if slowed == 0 {
		t.Fatal("no extra latency inside the gray window")
	}
	if net.Injector().GrayDelays != 20 {
		t.Errorf("GrayDelays = %d, want 20 (one per in-window message at prob 1)", net.Injector().GrayDelays)
	}
}

// TestBurstDropsAttributed uses a deterministic full-loss burst (dropProb 1,
// 50µs on / 50µs off) and checks the exact on-window messages die, counted
// on the burst attribution counter.
func TestBurstDropsAttributed(t *testing.T) {
	spec := FaultSpec{Bursts: []BurstSpec{{PeriodUS: 100, LenUS: 50, DropProb: 1, To: "b"}}}
	got, net := runAdversary(t, spec, 2, 30, 10*time.Microsecond) // sends at 0,10,...,290µs
	seen := make(map[int]bool, len(got))
	for _, ar := range got {
		seen[ar.ID] = true
	}
	drops := 0
	for i := 0; i < 30; i++ {
		at := time.Duration(i) * 10 * time.Microsecond
		inBurst := (at % (100 * time.Microsecond)) < 50*time.Microsecond
		if inBurst {
			drops++
		}
		if inBurst == seen[i] {
			t.Errorf("message %d at %v: inBurst=%v but delivered=%v", i, at, inBurst, seen[i])
		}
	}
	if inj := net.Injector(); inj.DropsBurst != int64(drops) || inj.DropsPartition != 0 {
		t.Errorf("drop attribution: burst=%d partition=%d, want %d/0", inj.DropsBurst, inj.DropsPartition, drops)
	}
}

// TestFaultSpecValidate sweeps the malformed-knob table.
func TestFaultSpecValidate(t *testing.T) {
	bad := []struct {
		name string
		spec FaultSpec
	}{
		{"dup prob without delay", FaultSpec{DupProb: 0.5}},
		{"dup prob above 1", FaultSpec{DupProb: 1.5, DupDelayUS: 5}},
		{"negative reorder prob", FaultSpec{ReorderProb: -0.1, ReorderMaxUS: 10}},
		{"reorder prob without bound", FaultSpec{ReorderProb: 0.5}},
		{"empty partition window", FaultSpec{Partitions: []PartitionSpec{{StartUS: 100, EndUS: 100}}}},
		{"inverted partition window", FaultSpec{Partitions: []PartitionSpec{{StartUS: 200, EndUS: 100}}}},
		{"gray without mean", FaultSpec{Gray: []GraySpec{{Endpoint: "b"}}}},
		{"gray prob above 1", FaultSpec{Gray: []GraySpec{{Endpoint: "b", MeanUS: 5, Prob: 2}}}},
		{"burst longer than period", FaultSpec{Bursts: []BurstSpec{{PeriodUS: 10, LenUS: 20, DropProb: 0.5}}}},
		{"burst zero period", FaultSpec{Bursts: []BurstSpec{{LenUS: 1, DropProb: 0.5}}}},
	}
	for _, c := range bad {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed spec", c.name)
		}
	}
	good := []FaultSpec{
		{},
		{Partitions: []PartitionSpec{{To: "b", StartUS: 10}}}, // EndUS 0 = never heals
		{DupProb: 0.5, DupDelayUS: 1, ReorderProb: 0.5, ReorderMaxUS: 1},
	}
	for i, spec := range good {
		if err := spec.Validate(); err != nil {
			t.Errorf("good spec %d rejected: %v", i, err)
		}
	}
	if !(&FaultSpec{Name: "none"}).Empty() {
		t.Error("name-only spec should be Empty")
	}
	if (&FaultSpec{DupProb: 0.5, DupDelayUS: 1}).Empty() {
		t.Error("dup spec should not be Empty")
	}
}
