// Cross-partition transfer slabs: pooled delivery envelopes so that a
// partition crossing in steady state allocates nothing — no Message, no
// delivery closure, and (for payloads implementing TransferPooled) no clone
// struct. Payload *data buffers* are still copied fresh per crossing:
// receivers retain them past the delivery refcount (rx pipelines, deferred
// PCIe applies, futures), so recycling them would be a use-after-free in
// simulation form. See DESIGN.md §12.
package fabric

import (
	"sync/atomic"

	"prdma/internal/sim"
)

// TransferPooled is the recycling counterpart of Transferable. The clone it
// returns must be safe for the destination partition while the source reuses
// the original, like CloneForTransfer — but it may reuse `prev`, the clone
// recycled from this slab slot's previous crossing, instead of allocating.
// The returned clone must implement TransferRef, and must call `release`
// exactly once when the receiver drops its last reference: that is what
// parks the envelope (and with it the clone, via env.msg.Payload) for reuse.
type TransferPooled interface {
	CloneForTransferPooled(prev interface{}, release func()) interface{}
}

// TransferRef is implemented by pooled transfer clones. The fabric holds one
// reference on behalf of the in-flight delivery and drops it after the
// destination handler returns (or the message lands on a down endpoint);
// handlers that retain the clone take their own references underneath.
type TransferRef interface {
	DropTransferRef()
}

// xferEnv is one pooled cross-partition delivery: envelope, fabric.Message
// and pre-bound delivery event in a single free-listed struct. msg.Payload
// doubles as the slab slot's recycled clone (`prev` above) between uses.
type xferEnv struct {
	dir *xferDir
	dst *Endpoint
	at  sim.Time
	msg Message
	// pooled marks a payload cloned via TransferPooled: the envelope then
	// parks when the clone's last receiver reference drops — possibly long
	// after delivery — instead of when the handler returns.
	pooled  bool
	release func()
	fn      func()
}

// xferDir is the per-(source endpoint, destination partition) slab.
// Ownership is split so no lock is ever taken: the source partition pops
// free envelopes, the destination partition parks spent ones, and the
// engine's flush hook — coordinator context, every kernel quiesced — moves
// spent back to free at window barriers. The engine's barrier atomics
// provide the happens-before edges for each hand-off.
type xferDir struct {
	net     *Network
	dstPart int
	free    []*xferEnv // popped by the source partition only
	spent   []*xferEnv // appended by the destination partition only
	dirty   bool       // queued on net.reclaim[dstPart]
}

// getXfer returns a transfer envelope for a send from e to dst, reusing one
// parked by an earlier crossing in the same direction when available.
func (e *Endpoint) getXfer(dst *Endpoint) *xferEnv {
	part := dst.k.Partition()
	for len(e.xfer) <= part {
		e.xfer = append(e.xfer, nil)
	}
	dir := e.xfer[part]
	if dir == nil {
		dir = &xferDir{net: e.Net, dstPart: part}
		e.xfer[part] = dir
	}
	if l := len(dir.free); l > 0 {
		env := dir.free[l-1]
		dir.free[l-1] = nil
		dir.free = dir.free[:l-1]
		env.dst = dst
		atomic.AddInt64(&e.Net.XferReused, 1)
		return env
	}
	atomic.AddInt64(&e.Net.XferAllocs, 1)
	env := &xferEnv{dir: dir, dst: dst}
	env.release = func() { env.park() }
	env.fn = func() { env.deliver() }
	return env
}

// postCross clones the payload into a pooled envelope and hands delivery to
// the engine barrier. Runs on the source partition; the clone must happen
// here, before the sender recycles its buffers.
func (e *Endpoint) postCross(dst *Endpoint, arrive sim.Time, to string, size int, payload interface{}) {
	env := e.getXfer(dst)
	env.at = arrive
	env.msg.From, env.msg.To, env.msg.Size = e.Name, to, size
	switch p := payload.(type) {
	case TransferPooled:
		env.pooled = true
		env.msg.Payload = p.CloneForTransferPooled(env.msg.Payload, env.release)
	case Transferable:
		env.pooled = false
		env.msg.Payload = p.CloneForTransfer()
	default:
		env.pooled = false
		env.msg.Payload = payload
	}
	e.k.Engine().Post(e.k, dst.k, arrive, env.fn)
}

// deliver runs on the destination partition at arrival time.
func (env *xferEnv) deliver() {
	env.dst.deliverCross(env.at, &env.msg)
	if env.pooled {
		// The receiver may still hold references to the clone; the release
		// hook bound at clone time parks the envelope when the last drops.
		env.msg.Payload.(TransferRef).DropTransferRef()
		return
	}
	env.msg.Payload = nil
	env.park()
}

// park returns the envelope to its slab. It runs on the destination
// partition (at delivery for plain payloads, at the last reference drop for
// pooled clones); the spent list stays destination-owned until the engine's
// flush hook moves it back to free.
func (env *xferEnv) park() {
	d := env.dir
	d.spent = append(d.spent, env)
	if !d.dirty {
		d.dirty = true
		n := d.net
		n.reclaim[d.dstPart] = append(n.reclaim[d.dstPart], d)
	}
}

// reclaimXfer is the engine flush hook: at every window barrier, return each
// dirty slab's spent envelopes to its free list. Coordinator context —
// single goroutine, all kernels quiesced — is what makes this cross-
// partition hand-off safe without locks.
func (n *Network) reclaimXfer() {
	for pi := range n.reclaim {
		dirs := n.reclaim[pi]
		if len(dirs) == 0 {
			continue
		}
		for di, d := range dirs {
			d.free = append(d.free, d.spent...)
			for j := range d.spent {
				d.spent[j] = nil
			}
			d.spent = d.spent[:0]
			d.dirty = false
			dirs[di] = nil
		}
		n.reclaim[pi] = dirs[:0]
	}
}

// growReclaim ensures the reclaim index covers destination partition part.
// Called only at AttachOn time (setup, single-threaded).
func (n *Network) growReclaim(part int) {
	for len(n.reclaim) <= part {
		n.reclaim = append(n.reclaim, nil)
	}
}

// XferSlabStats reports pooled cross-transfer envelope reuse: hits are
// envelopes served from a slab, misses are fresh allocations. Both are
// deterministic at any worker count (pops and parks are per-direction and
// ordered by the simulation, reclaim by the barrier).
func (n *Network) XferSlabStats() (hits, misses int64) {
	return atomic.LoadInt64(&n.XferReused), atomic.LoadInt64(&n.XferAllocs)
}
