package fabric

import (
	"testing"

	"prdma/internal/sim"
)

// TestSendDeliverAllocRegression pins the steady-state allocation cost of
// the pooled fabric data plane: once the envelope free list is warm, a
// SendPooled plus its delivery must not allocate at all. The kernel's event
// heap may grow once while warming, which is why the measured phase runs
// after a warm-up batch.
func TestSendDeliverAllocRegression(t *testing.T) {
	k := sim.New()
	n := New(k, DefaultParams(), 1)
	delivered := 0
	n.Attach("b", func(at sim.Time, m *Message) { delivered++ })
	a := n.Attach("a", nil)

	send := func(rounds int) {
		for i := 0; i < rounds; i++ {
			a.SendPooled("b", 1024, nil, nil)
			k.Run()
		}
	}
	send(64) // warm the envelope pool and event heap

	const rounds = 100
	per := testing.AllocsPerRun(5, func() { send(rounds) }) / rounds
	// Expected: 0 allocs per send+deliver. The envelope, its delivery thunk,
	// and the event slot all come from pools.
	if per > 0 {
		t.Fatalf("send+deliver allocates %.2f objects/op, want 0", per)
	}
	if delivered == 0 {
		t.Fatal("no messages delivered")
	}
}
