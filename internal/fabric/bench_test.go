package fabric

import (
	"testing"

	"prdma/internal/sim"
)

// BenchmarkSendDeliver measures one message send plus delivery through the
// switch model (serialization, propagation, handler dispatch) on the plain
// allocating path.
func BenchmarkSendDeliver(b *testing.B) {
	k := sim.New()
	n := New(k, DefaultParams(), 1)
	delivered := 0
	n.Attach("b", func(at sim.Time, m *Message) { delivered++ })
	a := n.Attach("a", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(&Message{To: "b", Size: 1024})
		k.Run()
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkSendDeliverPooled measures the same hop through the pooled
// envelope path the NIC data plane uses (alloc-free in steady state).
func BenchmarkSendDeliverPooled(b *testing.B) {
	k := sim.New()
	n := New(k, DefaultParams(), 1)
	delivered := 0
	n.Attach("b", func(at sim.Time, m *Message) { delivered++ })
	a := n.Attach("a", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SendPooled("b", 1024, nil, nil)
		k.Run()
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}
