package fabric

import (
	"testing"
	"time"

	"prdma/internal/sim"
)

// xferPayload is a pooled-transfer payload for slab tests. Unlike wireMsg
// clones — whose receivers retain Data past the refcount, forcing a fresh
// copy per crossing — this test payload's receiver never retains the slice,
// so the clone may reuse prev's buffer and the whole crossing is alloc-free.
type xferPayload struct {
	data []byte
	refs int
	rel  func()
}

func (p *xferPayload) CloneForTransferPooled(prev interface{}, release func()) interface{} {
	c, _ := prev.(*xferPayload)
	if c == nil {
		c = &xferPayload{}
	}
	c.refs, c.rel = 1, release
	c.data = append(c.data[:0], p.data...)
	return c
}

func (p *xferPayload) DropTransferRef() {
	p.refs--
	if p.refs == 0 {
		p.rel()
	}
}

// plainPayload exercises the non-pooled Transferable fallback.
type plainPayload struct{ v int }

func (p *plainPayload) CloneForTransfer() interface{} { return &plainPayload{v: p.v} }

// xferPair is a two-partition deployment with a cross ping-pong workload:
// a sends to b, b's handler replies to a, each hop paced by the propagation
// delay so every crossing rides the engine barrier.
type xferPair struct {
	e      *sim.Engine
	ka, kb *sim.Kernel
	a, b   *Endpoint
	n      *Network
	got    int
}

func newXferPair(t *testing.T, payload func() interface{}) *xferPair {
	t.Helper()
	p := DefaultParams()
	e := sim.NewEngine(p.Lookahead(), 2)
	ka, kb := e.NewKernel(), e.NewKernel()
	xp := &xferPair{e: e, ka: ka, kb: kb}
	n := New(ka, p, 7)
	xp.n = n
	xp.b = n.AttachOn(kb, "b", func(at sim.Time, m *Message) {
		xp.got++
		xp.b.SendPooled("a", 64, payload(), nil)
	})
	xp.a = n.AttachOn(ka, "a", func(at sim.Time, m *Message) {
		xp.got++
	})
	return xp
}

// TestCrossTransferSlabReuse proves envelopes recycle: after a warm-up
// round, further crossings are served from the slab, and the payload clone
// structs are the same objects crossing after crossing.
func TestCrossTransferSlabReuse(t *testing.T) {
	pay := &xferPayload{data: []byte("abcdefgh")}
	xp := newXferPair(t, func() interface{} { return pay })
	const rounds = 200
	for i := 0; i < rounds; i++ {
		xp.a.SendPooled("b", 64, pay, nil)
		xp.e.Run()
	}
	if xp.got != 2*rounds {
		t.Fatalf("delivered %d, want %d", xp.got, 2*rounds)
	}
	hits, misses := xp.n.XferSlabStats()
	if hits+misses != 2*rounds {
		t.Fatalf("slab stats %d+%d, want %d crossings", hits, misses, 2*rounds)
	}
	// Each direction allocates one envelope on its first crossing (the
	// ping-pong is strictly sequential), everything after is a hit.
	if misses > 4 {
		t.Fatalf("slab misses = %d, want <= 4 (one per direction plus slack)", misses)
	}
	if hits < int64(2*rounds)-4 {
		t.Fatalf("slab hits = %d, want >= %d", hits, int64(2*rounds)-4)
	}
}

// TestCrossTransferAllocFree is the AllocsPerRun pin on the steady-state
// cross-transfer path: with the slab warm, a partition crossing — envelope,
// Message, delivery event, payload clone — allocates nothing.
func TestCrossTransferAllocFree(t *testing.T) {
	pay := &xferPayload{data: []byte("abcdefgh")}
	xp := newXferPair(t, func() interface{} { return pay })
	run := func(rounds int) {
		for i := 0; i < rounds; i++ {
			xp.a.SendPooled("b", 64, pay, nil)
			xp.e.Run()
		}
	}
	run(64) // warm slabs, event pools, outbox capacity

	const rounds = 100
	per := testing.AllocsPerRun(5, func() { run(rounds) }) / (2 * rounds)
	if per != 0 {
		t.Fatalf("steady-state cross transfer allocates %.2f/crossing, want 0", per)
	}
}

// TestCrossTransferPlainFallback checks the non-pooled Transferable path
// still deep-copies per crossing and delivers correctly through the slab
// envelope (the envelope recycles at delivery; the clone is GC-owned).
func TestCrossTransferPlainFallback(t *testing.T) {
	var last *plainPayload
	p := DefaultParams()
	e := sim.NewEngine(p.Lookahead(), 1)
	ka, kb := e.NewKernel(), e.NewKernel()
	n := New(ka, p, 7)
	n.AttachOn(kb, "b", func(at sim.Time, m *Message) { last = m.Payload.(*plainPayload) })
	a := n.AttachOn(ka, "a", nil)

	// Both sends run as events on a (cross posts must come from inside the
	// simulation); the gap between them spans several windows so the first
	// envelope is parked and reclaimed before the second send.
	src := &plainPayload{v: 41}
	var first *plainPayload
	ka.Schedule(0, func() { a.SendPooled("b", 64, src, nil) })
	ka.Schedule(5000, func() {
		first = last
		src.v = 42
		a.SendPooled("b", 64, src, nil)
	})
	e.Run()
	if first == nil || first == src || first.v != 41 || last == first || last.v != 42 {
		t.Fatalf("plain fallback: first=%+v last=%+v (src %p)", first, last, src)
	}
	if hits, misses := n.XferSlabStats(); hits != 1 || misses != 1 {
		t.Fatalf("slab stats hits=%d misses=%d, want 1/1 (envelope reused even for plain payloads)", hits, misses)
	}
}

// TestCrossTransferRetainedClone pins the deferred-release path: a receiver
// that takes its own reference keeps the clone (and its envelope) checked
// out past delivery, and the envelope is only reused after the release.
func TestCrossTransferRetainedClone(t *testing.T) {
	p := DefaultParams()
	e := sim.NewEngine(p.Lookahead(), 1)
	ka, kb := e.NewKernel(), e.NewKernel()
	n := New(ka, p, 7)
	var held []*xferPayload
	n.AttachOn(kb, "b", func(at sim.Time, m *Message) {
		pl := m.Payload.(*xferPayload)
		pl.refs++ // receiver retention, dropped later
		held = append(held, pl)
	})
	a := n.AttachOn(ka, "a", nil)

	pay := &xferPayload{data: []byte{1, 2, 3}}
	for i := 0; i < 3; i++ {
		ka.Schedule(sim.Time(i)*2000, func() { a.SendPooled("b", 64, pay, nil) })
	}
	e.Run()
	if len(held) != 3 {
		t.Fatalf("held %d clones, want 3", len(held))
	}
	// All three crossings allocated: the clone stays checked out, so the
	// slab could not serve any of them.
	if hits, misses := n.XferSlabStats(); hits != 0 || misses != 3 {
		t.Fatalf("slab stats hits=%d misses=%d, want 0/3 while clones are retained", hits, misses)
	}
	if held[0] == held[1] || held[1] == held[2] {
		t.Fatal("retained clones must be distinct objects")
	}
	// Drop the retentions; the envelopes park and the next crossing reuses.
	for _, pl := range held {
		pl.DropTransferRef()
	}
	ka.Schedule(ka.Now()+2000, func() { a.SendPooled("b", 64, pay, nil) })
	e.Run()
	if hits, _ := n.XferSlabStats(); hits != 1 {
		t.Fatalf("slab hits after release = %d, want 1", hits)
	}
}

// BenchmarkCrossTransfer measures one partition crossing (send, barrier
// merge, delivery, slab recycle) in steady state, with and without payload
// data riding along.
func BenchmarkCrossTransfer(b *testing.B) {
	for _, bc := range []struct {
		name string
		data []byte
	}{
		{"nil-payload", nil},
		{"64B-data", make([]byte, 64)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			p := DefaultParams()
			e := sim.NewEngine(p.Lookahead(), 1)
			ka, kb := e.NewKernel(), e.NewKernel()
			n := New(ka, p, 7)
			n.AttachOn(kb, "b", func(at sim.Time, m *Message) {})
			a := n.AttachOn(ka, "a", nil)
			pay := &xferPayload{data: bc.data}
			send := func() { a.SendPooled("b", 64, pay, nil) }
			step := func() {
				ka.Schedule(ka.Now()+2000, send)
				e.Run()
			}
			for i := 0; i < 64; i++ { // warm
				step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		})
	}
}

// BenchmarkWindowBarrier measures an engine window with two active kernels
// and no cross traffic — the pure coordination cost the sense-reversing
// barrier replaces the channel dispatch with.
func BenchmarkWindowBarrier(b *testing.B) {
	for _, workers := range []int{1, 2} {
		name := map[int]string{1: "serial", 2: "2workers"}[workers]
		b.Run(name, func(b *testing.B) {
			e := sim.NewEngine(100*time.Nanosecond, workers)
			ka, kb := e.NewKernel(), e.NewKernel()
			stop := false
			var ta, tb func()
			ta = func() {
				if !stop {
					ka.Schedule(ka.Now()+100, ta)
				}
			}
			tb = func() {
				if !stop {
					kb.Schedule(kb.Now()+100, tb)
				}
			}
			ka.Schedule(0, ta)
			kb.Schedule(0, tb)
			e.RunWindows(64) // warm
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.RunWindows(1)
			}
			b.StopTimer()
			stop = true
			e.Run()
		})
	}
}
