// Fault injection: a deterministic, seed-driven adversary layered over the
// fabric's delivery path. The injector models the delivery-order and
// availability hazards a real RDMA fabric can exhibit — network partitions
// with heal schedules, gray failures (endpoints that are up but slow),
// duplicated delivery, bounded reordering, and periodic congestion/RNR drop
// bursts — without touching the reliability machinery above it: the QP
// layer's retransmission, dedup, and durability-horizon logic must absorb
// every adversary here, which is exactly what the scenario matrix asserts.
//
// All randomness comes from one splitmix64 stream seeded at construction,
// so a (spec, seed) pair reproduces the exact delivery schedule.
package fabric

import (
	"fmt"
	"strings"
	"time"

	"prdma/internal/sim"
)

// PartitionSpec cuts links for a window of simulated time. From and To are
// endpoint-name prefixes ("" matches every endpoint): a message is cut when
// its source matches From and its destination matches To — or, with
// Symmetric, the reverse direction too. Prefixes make partial partitions
// cheap to express ("s0" cuts every replica of shard 0).
type PartitionSpec struct {
	From      string `json:"from,omitempty"`
	To        string `json:"to,omitempty"`
	Symmetric bool   `json:"symmetric,omitempty"`
	// The partition holds during [StartUS, EndUS) of sim time, in
	// microseconds; EndUS 0 means it never heals.
	StartUS int `json:"startUS,omitempty"`
	EndUS   int `json:"endUS,omitempty"`
}

// GraySpec models a gray failure: an endpoint that stays up but serves its
// traffic slowly. Matching messages (to or from the endpoint prefix) gain
// an exponentially distributed extra latency of mean MeanUS during the
// window; Prob (default 1) is the fraction of matching messages slowed.
type GraySpec struct {
	Endpoint string  `json:"endpoint,omitempty"`
	MeanUS   int     `json:"meanUS,omitempty"`
	Prob     float64 `json:"prob,omitempty"`
	StartUS  int     `json:"startUS,omitempty"`
	EndUS    int     `json:"endUS,omitempty"`
}

// BurstSpec drops messages with probability DropProb during repeating
// windows [StartUS + i·PeriodUS, +LenUS) — congestion or receiver-not-ready
// bursts. To (prefix, "" = all) restricts which destinations are hit.
type BurstSpec struct {
	StartUS  int     `json:"startUS,omitempty"`
	PeriodUS int     `json:"periodUS,omitempty"`
	LenUS    int     `json:"lenUS,omitempty"`
	DropProb float64 `json:"dropProb,omitempty"`
	To       string  `json:"to,omitempty"`
}

// FaultSpec is one complete adversary: any combination of partitions, gray
// failures, duplicated delivery, bounded reordering, and drop bursts.
type FaultSpec struct {
	Name string `json:"name,omitempty"`

	Partitions []PartitionSpec `json:"partitions,omitempty"`
	Gray       []GraySpec      `json:"gray,omitempty"`

	// DupProb duplicates a delivered message with this probability; the
	// copy arrives an exponentially distributed DupDelayUS (mean) later.
	DupProb    float64 `json:"dupProb,omitempty"`
	DupDelayUS int     `json:"dupDelayUS,omitempty"`

	// ReorderProb holds a message back past the per-pair FIFO point by a
	// uniform extra delay in (0, ReorderMaxUS], letting later messages
	// overtake it — bounded reordering.
	ReorderProb  float64 `json:"reorderProb,omitempty"`
	ReorderMaxUS int     `json:"reorderMaxUS,omitempty"`

	Bursts []BurstSpec `json:"bursts,omitempty"`
}

// Empty reports whether the spec injects nothing.
func (s *FaultSpec) Empty() bool {
	return len(s.Partitions) == 0 && len(s.Gray) == 0 && len(s.Bursts) == 0 &&
		s.DupProb == 0 && s.ReorderProb == 0
}

// Validate rejects nonsensical knobs before a run silently misbehaves.
func (s *FaultSpec) Validate() error {
	checkProb := func(p float64, what string) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("fabric: fault %q: %s probability %v outside [0,1]", s.Name, what, p)
		}
		return nil
	}
	if err := checkProb(s.DupProb, "dup"); err != nil {
		return err
	}
	if err := checkProb(s.ReorderProb, "reorder"); err != nil {
		return err
	}
	if s.ReorderProb > 0 && s.ReorderMaxUS <= 0 {
		return fmt.Errorf("fabric: fault %q: reorderProb needs reorderMaxUS > 0", s.Name)
	}
	if s.DupProb > 0 && s.DupDelayUS <= 0 {
		return fmt.Errorf("fabric: fault %q: dupProb needs dupDelayUS > 0", s.Name)
	}
	for _, p := range s.Partitions {
		if p.EndUS != 0 && p.EndUS <= p.StartUS {
			return fmt.Errorf("fabric: fault %q: partition window [%d,%d) is empty", s.Name, p.StartUS, p.EndUS)
		}
	}
	for _, g := range s.Gray {
		if err := checkProb(g.Prob, "gray"); err != nil {
			return err
		}
		if g.MeanUS <= 0 {
			return fmt.Errorf("fabric: fault %q: gray endpoint %q needs meanUS > 0", s.Name, g.Endpoint)
		}
	}
	for _, b := range s.Bursts {
		if err := checkProb(b.DropProb, "burst"); err != nil {
			return err
		}
		if b.PeriodUS <= 0 || b.LenUS <= 0 || b.LenUS > b.PeriodUS {
			return fmt.Errorf("fabric: fault %q: burst needs 0 < lenUS <= periodUS", s.Name)
		}
	}
	return nil
}

// Injector evaluates one FaultSpec against every message the network sends.
// Attach with Network.SetInjector; a nil injector (the default) leaves the
// fabric's behavior — timing, stats, allocation — exactly unchanged.
type Injector struct {
	Spec FaultSpec
	rng  *sim.Rand

	// Per-adversary counters, split finer than the network's DroppedFault
	// total so the matrix figure can attribute loss.
	DropsPartition int64
	DropsBurst     int64
	GrayDelays     int64
	Duplicates     int64
	Reorders       int64
}

// NewInjector builds an injector for spec. The seed fixes the full delivery
// schedule: same (spec, seed, traffic) ⇒ identical drops, delays, copies.
func NewInjector(spec FaultSpec, seed uint64) *Injector {
	return &Injector{Spec: spec, rng: sim.NewRand(seed)}
}

// verdict is the injector's judgment on one message.
type verdict struct {
	drop    bool
	extra   time.Duration // gray slowdown, added before the FIFO point
	reorder time.Duration // held past the FIFO point (0 = in order)
	dup     time.Duration // duplicate arrives this long after the original (0 = none)
}

func prefixMatch(pat, name string) bool {
	return pat == "" || strings.HasPrefix(name, pat)
}

func inWindow(t sim.Time, startUS, endUS int) bool {
	if t < sim.Time(startUS)*sim.Time(time.Microsecond) {
		return false
	}
	return endUS == 0 || t < sim.Time(endUS)*sim.Time(time.Microsecond)
}

// judge decides the fate of a message leaving `from` for `to` at time t
// (its tx-complete instant). Draw order is fixed so the schedule is a pure
// function of (spec, seed, traffic).
func (i *Injector) judge(t sim.Time, from, to string) verdict {
	var v verdict
	s := &i.Spec
	for _, p := range s.Partitions {
		if !inWindow(t, p.StartUS, p.EndUS) {
			continue
		}
		if (prefixMatch(p.From, from) && prefixMatch(p.To, to)) ||
			(p.Symmetric && prefixMatch(p.From, to) && prefixMatch(p.To, from)) {
			i.DropsPartition++
			v.drop = true
			return v
		}
	}
	for _, b := range s.Bursts {
		if t < sim.Time(b.StartUS)*sim.Time(time.Microsecond) || !prefixMatch(b.To, to) {
			continue
		}
		phase := (t - sim.Time(b.StartUS)*sim.Time(time.Microsecond)) %
			(sim.Time(b.PeriodUS) * sim.Time(time.Microsecond))
		if phase < sim.Time(b.LenUS)*sim.Time(time.Microsecond) && i.rng.Float64() < b.DropProb {
			i.DropsBurst++
			v.drop = true
			return v
		}
	}
	for _, g := range s.Gray {
		if !inWindow(t, g.StartUS, g.EndUS) {
			continue
		}
		if prefixMatch(g.Endpoint, to) || prefixMatch(g.Endpoint, from) {
			prob := g.Prob
			if prob == 0 {
				prob = 1
			}
			if i.rng.Float64() < prob {
				i.GrayDelays++
				v.extra += time.Duration(i.rng.Exp(float64(g.MeanUS) * float64(time.Microsecond)))
			}
		}
	}
	if s.ReorderProb > 0 && i.rng.Float64() < s.ReorderProb {
		i.Reorders++
		v.reorder = time.Duration(1 + i.rng.Int63n(int64(s.ReorderMaxUS)*int64(time.Microsecond)))
	}
	if s.DupProb > 0 && i.rng.Float64() < s.DupProb {
		i.Duplicates++
		v.dup = time.Duration(i.rng.Exp(float64(s.DupDelayUS) * float64(time.Microsecond)))
		if v.dup <= 0 {
			v.dup = time.Microsecond
		}
	}
	return v
}
