package pmpool

import (
	"encoding/binary"
	"fmt"
	"math"

	"prdma/internal/graph"
	"prdma/internal/sim"
)

// ShuffleConfig shapes the disaggregated shuffle: PageRank with the
// map→reduce contribution exchange staged through the remote pool instead
// of local memory. Map partition m computes the rank contributions its
// nodes push to each reducer, encodes them into fixed-size blocks, and
// Alloc+Writes every block into the pool; reducer r Reads the blocks
// addressed to it back in deterministic (map, block) order, accumulates,
// and Frees them. The only channel between the phases is remote PM.
type ShuffleConfig struct {
	// Maps is the number of map partitions (contiguous node ranges).
	Maps int
	// Reducers is the number of reduce partitions (node % Reducers).
	Reducers int
	// Iterations is the PageRank iteration count.
	Iterations int
	// MaxChunk caps the encoded bytes per pool block (default 32 KiB).
	MaxChunk int
	// Damping is the PageRank damping factor (default 0.85).
	Damping float64
}

// DefaultShuffleConfig returns a 4x4 shuffle matching examples/pagerank's
// iteration count.
func DefaultShuffleConfig() ShuffleConfig {
	return ShuffleConfig{Maps: 4, Reducers: 4, Iterations: 10, MaxChunk: 32 << 10, Damping: 0.85}
}

func (cfg *ShuffleConfig) norm() {
	if cfg.MaxChunk <= 0 {
		cfg.MaxChunk = 32 << 10
	}
	if cfg.MaxChunk%recordBytes != 0 {
		cfg.MaxChunk -= cfg.MaxChunk % recordBytes
	}
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
}

// recordBytes is one encoded contribution: target node (4) + float64 bits (8).
const recordBytes = 12

// mapRange returns map partition m's node range [lo, hi).
func mapRange(n, maps, m int) (int32, int32) {
	lo := m * n / maps
	hi := (m + 1) * n / maps
	return int32(lo), int32(hi)
}

// emitChunks encodes the contributions map partition m sends reducer r
// under the current ranks, split into blocks of at most MaxChunk bytes.
// Both the remote shuffle and the local baseline call it, so the bytes —
// and therefore the floating-point accumulation order downstream — are
// identical by construction.
func emitChunks(g *graph.Graph, ranks []float64, cfg ShuffleConfig, m, r int) [][]byte {
	lo, hi := mapRange(g.Nodes(), cfg.Maps, m)
	var chunks [][]byte
	var cur []byte
	for u := lo; u < hi; u++ {
		deg := g.Degree(u)
		if deg == 0 {
			continue // dangling mass is dropped, identically in both paths
		}
		contrib := ranks[u] / float64(deg)
		for _, v := range g.Neighbors(u) {
			if int(v)%cfg.Reducers != r {
				continue
			}
			if len(cur)+recordBytes > cfg.MaxChunk {
				chunks = append(chunks, cur)
				cur = nil
			}
			var rec [recordBytes]byte
			binary.LittleEndian.PutUint32(rec[0:], uint32(v))
			binary.LittleEndian.PutUint64(rec[4:], math.Float64bits(contrib))
			cur = append(cur, rec[:]...)
		}
	}
	if len(cur) > 0 {
		chunks = append(chunks, cur)
	}
	return chunks
}

// reduceChunks folds decoded contribution records into acc. Records apply
// in chunk order, so the float addition order is fixed by the chunk list.
func reduceChunks(acc []float64, chunks [][]byte) error {
	for _, ch := range chunks {
		if len(ch)%recordBytes != 0 {
			return fmt.Errorf("pmpool: shuffle block of %d bytes is not record-aligned", len(ch))
		}
		for o := 0; o < len(ch); o += recordBytes {
			v := binary.LittleEndian.Uint32(ch[o:])
			acc[v] += math.Float64frombits(binary.LittleEndian.Uint64(ch[o+4:]))
		}
	}
	return nil
}

// ShuffleStats summarizes one remote shuffle run.
type ShuffleStats struct {
	// Blocks and Bytes count pool allocations carrying shuffle data.
	Blocks int64
	Bytes  int64
}

// ShufflePageRank runs cfg.Iterations of PageRank with every map→reduce
// exchange staged through the pool cluster: map partition m uses
// pools[m%len(pools)], reducer r uses pools[r%len(pools)], and each phase
// runs its partitions as concurrent procs joined by a barrier. Returns the
// final ranks, which must be bit-identical to LocalShufflePageRank on the
// same graph and config — the blocks round-trip through remote PM but the
// bytes, and so the float accumulation order, are the same.
func ShufflePageRank(p *sim.Proc, pools []*Pool, g *graph.Graph, cfg ShuffleConfig) ([]float64, ShuffleStats, error) {
	cfg.norm()
	n := g.Nodes()
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	var stats ShuffleStats
	k := p.K

	// blocks[m][r] is the handle+length list map m wrote for reducer r.
	type block struct {
		h *Handle
		n int
	}
	blocks := make([][][]block, cfg.Maps)
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		// Map phase: emit and push every block into the pool.
		wg := sim.NewWaitGroup(k)
		wg.Add(cfg.Maps)
		for m := 0; m < cfg.Maps; m++ {
			m := m
			pool := pools[m%len(pools)]
			blocks[m] = make([][]block, cfg.Reducers)
			k.Go(fmt.Sprintf("shuffle-map-%d", m), func(mp *sim.Proc) {
				defer wg.Done()
				for r := 0; r < cfg.Reducers; r++ {
					for _, ch := range emitChunks(g, ranks, cfg, m, r) {
						h, err := pool.Alloc(mp, int64(len(ch)))
						if err != nil {
							fail(err)
							return
						}
						if err := pool.Write(mp, h, 0, ch); err != nil {
							fail(err)
							return
						}
						blocks[m][r] = append(blocks[m][r], block{h: h, n: len(ch)})
						stats.Blocks++
						stats.Bytes += int64(len(ch))
					}
				}
			})
		}
		wg.Wait(p)
		if firstErr != nil {
			return nil, stats, firstErr
		}

		// Reduce phase: pull blocks back in (map, block) order, fold, free.
		wg = sim.NewWaitGroup(k)
		wg.Add(cfg.Reducers)
		for r := 0; r < cfg.Reducers; r++ {
			r := r
			pool := pools[r%len(pools)]
			k.Go(fmt.Sprintf("shuffle-reduce-%d", r), func(rp *sim.Proc) {
				defer wg.Done()
				acc := make([]float64, n)
				for m := 0; m < cfg.Maps; m++ {
					for _, b := range blocks[m][r] {
						data, err := pool.Read(rp, b.h, 0, b.n)
						if err != nil {
							fail(err)
							return
						}
						if err := reduceChunks(acc, [][]byte{data}); err != nil {
							fail(err)
							return
						}
						if err := pool.Free(rp, b.h); err != nil {
							fail(err)
							return
						}
					}
				}
				base := (1 - cfg.Damping) / float64(n)
				for v := r; v < n; v += cfg.Reducers {
					next[v] = base + cfg.Damping*acc[v]
				}
			})
		}
		wg.Wait(p)
		if firstErr != nil {
			return nil, stats, firstErr
		}
		ranks, next = next, ranks
	}
	return ranks, stats, nil
}

// LocalShufflePageRank is the in-memory baseline: the identical emit /
// reduce loops over the identical encoded blocks, with the pool round-trip
// replaced by holding the blocks in DRAM. Its ranks are the ground truth
// the disaggregated run must reproduce bit-for-bit.
func LocalShufflePageRank(g *graph.Graph, cfg ShuffleConfig) []float64 {
	cfg.norm()
	n := g.Nodes()
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for iter := 0; iter < cfg.Iterations; iter++ {
		for r := 0; r < cfg.Reducers; r++ {
			acc := make([]float64, n)
			for m := 0; m < cfg.Maps; m++ {
				if err := reduceChunks(acc, emitChunks(g, ranks, cfg, m, r)); err != nil {
					panic(err) // emitChunks produces aligned blocks by construction
				}
			}
			base := (1 - cfg.Damping) / float64(n)
			for v := r; v < n; v += cfg.Reducers {
				next[v] = base + cfg.Damping*acc[v]
			}
		}
		ranks, next = next, ranks
	}
	return ranks
}

// CompareRanks reports the first bit-level divergence between a remote
// shuffle's ranks and the local baseline (nil when bit-identical).
func CompareRanks(got, want []float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("pmpool: rank vector length %d != baseline %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return fmt.Errorf("pmpool: rank %d diverged from the local baseline: %g != %g", i, got[i], want[i])
		}
	}
	return nil
}
