package pmpool

import (
	"bytes"
	"testing"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/graph"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// testCluster builds n pool servers and one client pool on a fresh kernel.
func testCluster(t *testing.T, n int, scfg ServerConfig) (*sim.Kernel, []*Server, *Pool) {
	t.Helper()
	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), 1)
	rcfg := rpc.DefaultConfig()
	rcfg.LogBytes = 64 << 10
	servers := make([]*Server, n)
	for i := range servers {
		h := host.New(k, "pool"+string(rune('0'+i)), net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
		servers[i] = NewServer(h, rcfg, scfg)
	}
	cli := host.New(k, "cli", net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
	pcfg := DefaultPoolConfig(1)
	pcfg.LeaseTTL = scfg.LeaseTTL
	pool := NewPool(cli, servers, rcfg, pcfg)
	return k, servers, pool
}

func stopAll(pool *Pool, servers []*Server) {
	pool.Stop()
	for _, s := range servers {
		s.Stop()
	}
}

func TestPoolAllocWriteReadFree(t *testing.T) {
	k, servers, pool := testCluster(t, 1, DefaultServerConfig())
	srv := servers[0]
	k.Go("driver", func(p *sim.Proc) {
		defer stopAll(pool, servers)
		h, err := pool.Alloc(p, 1000)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		if h.Class != 1024 {
			t.Errorf("class = %d, want 1024", h.Class)
		}
		data := make([]byte, 1000)
		for i := range data {
			data[i] = byte(i * 7)
		}
		if err := pool.Write(p, h, 0, data); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		rd, err := pool.Read(p, h, 16, 64)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if !bytes.Equal(rd, data[16:80]) {
			t.Errorf("read returned wrong bytes")
		}
		// The read is FIFO-ordered behind the write on the same connection,
		// so by now the apply has landed the payload in the extent: the
		// durable-on-return ack (payload in the redo log) has been turned
		// into durable contents at the allocation's address.
		got := srv.H.PM.ReadBytes(h.Addr, len(data))
		if !bytes.Equal(got, data) {
			t.Errorf("applied write missing from the allocation's extent")
		}
		if err := pool.Free(p, h); err != nil {
			t.Errorf("free: %v", err)
			return
		}
		if srv.Live() != 0 || srv.Slabs().Live() != 0 {
			t.Errorf("server still holds %d allocations after free", srv.Live())
		}
		if len(srv.OwnedIDs()) != 0 {
			t.Errorf("durable owner table still holds freed ids")
		}
		if err := srv.Slabs().CheckConsistent(); err != nil {
			t.Errorf("slabs inconsistent: %v", err)
		}
	})
	k.Run()
	k.Shutdown()
}

func TestPoolStriping(t *testing.T) {
	scfg := DefaultServerConfig()
	k, servers, pool := testCluster(t, 4, scfg)
	k.Go("driver", func(p *sim.Proc) {
		defer stopAll(pool, servers)
		seen := map[int]int{}
		var hs []*Handle
		for i := 0; i < 64; i++ {
			h, err := pool.Alloc(p, 256)
			if err != nil {
				t.Errorf("alloc %d: %v", i, err)
				return
			}
			seen[h.Server]++
			hs = append(hs, h)
		}
		if len(seen) < 3 {
			t.Errorf("64 allocations landed on only %d of 4 servers: %v", len(seen), seen)
		}
		for _, h := range hs {
			if err := pool.Free(p, h); err != nil {
				t.Errorf("free: %v", err)
				return
			}
		}
	})
	k.Run()
	k.Shutdown()
}

func TestPoolLeaseReclaim(t *testing.T) {
	scfg := DefaultServerConfig()
	scfg.LeaseTTL = 500 * time.Microsecond
	scfg.ReclaimEvery = 200 * time.Microsecond
	k, servers, pool := testCluster(t, 1, scfg)
	srv := servers[0]
	k.Go("driver", func(p *sim.Proc) {
		kept, err := pool.Alloc(p, 128)
		if err != nil {
			t.Errorf("alloc kept: %v", err)
			return
		}
		orphan, err := pool.Alloc(p, 128)
		if err != nil {
			t.Errorf("alloc orphan: %v", err)
			return
		}
		// The orphan stops being renewed; the kept handle's lease stays
		// alive through the renewer across many TTLs.
		pool.Abandon(orphan)
		p.Sleep(10 * scfg.LeaseTTL)
		if srv.Reclaimed != 1 {
			t.Errorf("Reclaimed = %d, want 1 (the orphan)", srv.Reclaimed)
		}
		owned := srv.OwnedIDs()
		if _, ok := owned[orphan.ID]; ok {
			t.Errorf("orphaned id still durably owned after %v", 10*scfg.LeaseTTL)
		}
		if _, ok := owned[kept.ID]; !ok {
			t.Errorf("renewed id was reclaimed")
		}
		if err := pool.Free(p, kept); err != nil {
			t.Errorf("free kept: %v", err)
		}
		stopAll(pool, servers)
	})
	k.Run()
	k.Shutdown()
}

func TestPoolCrashRecovery(t *testing.T) {
	scfg := DefaultServerConfig()
	k, servers, pool := testCluster(t, 1, scfg)
	srv := servers[0]
	k.Go("driver", func(p *sim.Proc) {
		defer stopAll(pool, servers)
		var hs []*Handle
		var imgs [][]byte
		for i := 0; i < 8; i++ {
			h, err := pool.Alloc(p, 512)
			if err != nil {
				t.Errorf("alloc %d: %v", i, err)
				return
			}
			img := make([]byte, 512)
			for j := range img {
				img[j] = byte(i + j*3)
			}
			if err := pool.Write(p, h, 0, img); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			hs = append(hs, h)
			imgs = append(imgs, img)
		}
		pool.Free(p, hs[3])

		// Crash, restart, recover, reestablish: the rebuilt pool must hold
		// exactly the live allocations with their contents.
		srv.Crash()
		srv.H.Restart()
		p.Sleep(100 * time.Microsecond)
		srv.Recover(p)
		if _, err := pool.Reestablish(p, 0); err != nil {
			t.Errorf("reestablish: %v", err)
			return
		}
		if srv.Live() != 7 {
			t.Errorf("recovered %d live allocations, want 7", srv.Live())
		}
		if err := srv.Slabs().CheckConsistent(); err != nil {
			t.Errorf("recovered slabs inconsistent: %v", err)
		}
		for i, h := range hs {
			if i == 3 {
				continue
			}
			rd, err := pool.Read(p, h, 0, 512)
			if err != nil {
				t.Errorf("post-recovery read %d: %v", i, err)
				return
			}
			if !bytes.Equal(rd, imgs[i]) {
				t.Errorf("post-recovery contents of allocation %d differ", i)
			}
		}
		// The rebuilt allocator keeps serving: the freed slot is reusable.
		h, err := pool.Alloc(p, 512)
		if err != nil {
			t.Errorf("post-recovery alloc: %v", err)
			return
		}
		if err := pool.Free(p, h); err != nil {
			t.Errorf("post-recovery free: %v", err)
		}
	})
	k.Run()
	k.Shutdown()
}

func TestShuffleMatchesLocal(t *testing.T) {
	scfg := DefaultServerConfig()
	scfg.PoolBytes = 1 << 22
	scfg.SlabBytes = 1 << 15
	k, servers, pool := testCluster(t, 2, scfg)
	g := graph.Generate(graph.Dataset{Name: "test", Nodes: 200, Edges: 1200}, 7)
	cfg := ShuffleConfig{Maps: 3, Reducers: 2, Iterations: 4}
	var remote []float64
	k.Go("driver", func(p *sim.Proc) {
		defer stopAll(pool, servers)
		var err error
		var stats ShuffleStats
		remote, stats, err = ShufflePageRank(p, []*Pool{pool}, g, cfg)
		if err != nil {
			t.Errorf("shuffle: %v", err)
			return
		}
		if stats.Blocks == 0 || stats.Bytes == 0 {
			t.Errorf("shuffle moved no data through the pool")
		}
	})
	k.Run()
	k.Shutdown()
	if t.Failed() {
		return
	}
	local := LocalShufflePageRank(g, cfg)
	if len(remote) != len(local) {
		t.Fatalf("rank vector length %d vs %d", len(remote), len(local))
	}
	for i := range local {
		if remote[i] != local[i] {
			t.Fatalf("rank[%d]: remote %v != local %v (must be bit-identical)", i, remote[i], local[i])
		}
	}
	// Nothing may leak: every shuffle block was freed.
	for _, s := range servers {
		if s.Live() != 0 || len(s.OwnedIDs()) != 0 {
			t.Fatalf("shuffle leaked %d allocations on %s", s.Live(), s.H.Name)
		}
	}
}
