package pmpool

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"prdma/internal/cluster"
	"prdma/internal/host"
	"prdma/internal/redolog"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// Errors surfaced by the pool client.
var (
	ErrPoolFull = errors.New("pmpool: pool exhausted")
	ErrTooLarge = errors.New("pmpool: allocation exceeds the slab size")
	ErrBad      = errors.New("pmpool: request refused")
)

// Handle names one remote allocation.
type Handle struct {
	ID    uint64
	Addr  int64 // server-side address (diagnostic; clients never dereference)
	Class int64 // rounded allocation class
	Size  int64 // requested size
	// Server is the pool node the allocation lives on.
	Server int
}

// PoolConfig shapes one client's view of the pool cluster.
type PoolConfig struct {
	// ClientID disambiguates id spaces across client hosts (ids are
	// ClientID<<32 | counter, so they never collide and never hit 0).
	ClientID uint64
	// Kind is the durable RPC family carrying the pool protocol.
	Kind rpc.Kind
	// ConnsPerServer sizes the pooled fabric-connection set per pool node;
	// calls check connections out round-robin. Default 1.
	ConnsPerServer int
	// Vnodes is the consistent-hash ring's virtual node count per server.
	Vnodes int
	// RingSeed seeds the ring placement.
	RingSeed uint64
	// LeaseTTL must match the servers'; the renewer runs every LeaseTTL/3.
	LeaseTTL time.Duration
	// Timeout, when positive, issues every call with this deadline
	// (crash-recovery drivers retry on rpc.ErrTimeout). Zero blocks.
	Timeout time.Duration
}

// DefaultPoolConfig returns a single-connection WFlush-backed client.
func DefaultPoolConfig(clientID uint64) PoolConfig {
	return PoolConfig{
		ClientID:       clientID,
		Kind:           rpc.WFlushRPC,
		ConnsPerServer: 1,
		Vnodes:         32,
		RingSeed:       0x9E3779B97F4A7C15,
		LeaseTTL:       4 * time.Millisecond,
	}
}

// Pool is a client host's front end to the pool cluster: it stripes
// allocations across the servers by consistent hash of the allocation id,
// multiplexes traffic over a pooled set of durable fabric connections, and
// renews leases for every live handle on a sim timer.
type Pool struct {
	H   *host.Host
	Cfg PoolConfig

	servers []*Server
	ring    *cluster.Ring
	// conns[s] is the pooled connection set to server s; rr[s] deals them
	// out round-robin.
	conns [][]rpc.Recoverable
	rr    []int

	nextID uint64
	// live tracks handles the renewer keeps alive, per server.
	live map[uint64]*Handle

	stop bool
	// pause holds the renewer off while positive: issuing a renewal while a
	// connection's redo log is being recovered would race the recovery scan
	// (an append the scan misses is dropped from the rebuilt window, and its
	// eventual consume would fault). Reestablish pauses it; crash drivers
	// should hold a pause across their whole recover+reestablish span.
	pause int

	// Stats.
	Allocs, Frees, Writes, Reads int64
	WriteBytes, ReadBytes        int64
	Retries                      int64
}

// NewPool connects h to the pool servers. rcfg is the transport config used
// for every connection (the redo-log ring size in particular).
func NewPool(h *host.Host, servers []*Server, rcfg rpc.Config, cfg PoolConfig) *Pool {
	if cfg.ConnsPerServer <= 0 {
		cfg.ConnsPerServer = 1
	}
	if cfg.Vnodes <= 0 {
		cfg.Vnodes = 32
	}
	rcfg.Workers = 1
	pl := &Pool{
		H:       h,
		Cfg:     cfg,
		servers: servers,
		ring:    cluster.NewRing(len(servers), cfg.Vnodes, cfg.RingSeed),
		conns:   make([][]rpc.Recoverable, len(servers)),
		rr:      make([]int, len(servers)),
		live:    make(map[uint64]*Handle),
	}
	for si, srv := range servers {
		for c := 0; c < cfg.ConnsPerServer; c++ {
			cl := rpc.New(cfg.Kind, h, srv.RPC, rcfg)
			rec, ok := cl.(rpc.Recoverable)
			if !ok {
				panic(fmt.Sprintf("pmpool: %v is not recoverable", cfg.Kind))
			}
			pl.conns[si] = append(pl.conns[si], rec)
		}
	}
	if cfg.LeaseTTL > 0 {
		h.K.Go(h.Name+"-pmpool-renew", pl.renewLoop)
	}
	return pl
}

// Stop retires the renewer at its next tick (figure kernels drain on it).
func (pl *Pool) Stop() { pl.stop = true }

// PauseRenew holds the lease renewer off (counted; pair with ResumeRenew).
// Crash drivers bracket server recovery with it so no renewal appends to a
// redo log whose recovery scan is in flight.
func (pl *Pool) PauseRenew() { pl.pause++ }

// ResumeRenew undoes one PauseRenew.
func (pl *Pool) ResumeRenew() { pl.pause-- }

// Live returns the number of handles this client keeps leases on.
func (pl *Pool) Live() int { return len(pl.live) }

// conn checks a pooled connection to server s out round-robin.
func (pl *Pool) conn(s int) rpc.Recoverable {
	set := pl.conns[s]
	c := set[pl.rr[s]%len(set)]
	pl.rr[s]++
	return c
}

// call issues req on a pooled connection to server s, honoring Cfg.Timeout.
func (pl *Pool) call(p *sim.Proc, s int, req *rpc.Request) (*rpc.Response, error) {
	c := pl.conn(s)
	if pl.Cfg.Timeout > 0 {
		return c.CallTimeout(p, req, pl.Cfg.Timeout)
	}
	return c.Call(p, req)
}

// Alloc carves size bytes out of the pool and returns its handle.
func (pl *Pool) Alloc(p *sim.Proc, size int64) (*Handle, error) {
	pl.nextID++
	return pl.AllocID(p, pl.Cfg.ClientID<<32|pl.nextID, size)
}

// AllocID is Alloc with a caller-chosen id: crash-recovery drivers retry an
// interrupted alloc under the same id, so a durably-logged first attempt
// replays and the retry dedups against it server-side instead of leaking a
// second slot. The striping target is fixed by the id (consistent hash), so
// retry and replay land on the same server.
func (pl *Pool) AllocID(p *sim.Proc, id uint64, size int64) (*Handle, error) {
	s := pl.ring.Shard(id)
	resp, err := pl.call(p, s, encodeAlloc(id, size))
	if err != nil {
		return nil, err
	}
	res, err := decodeResult(resp.Data)
	if err != nil {
		return nil, err
	}
	switch res.status {
	case statusOK:
	case statusFull:
		return nil, ErrPoolFull
	case statusTooLarge:
		return nil, ErrTooLarge
	default:
		return nil, ErrBad
	}
	h := &Handle{ID: id, Addr: res.addr, Class: res.class, Size: size, Server: s}
	pl.live[id] = h
	pl.Allocs++
	return h, nil
}

// Free releases h. The lease stops being renewed first, so a crash between
// the two cannot leave the renewer resurrecting a freed id.
func (pl *Pool) Free(p *sim.Proc, h *Handle) error {
	delete(pl.live, h.ID)
	resp, err := pl.call(p, h.Server, encodeFree(h.ID))
	if err != nil {
		pl.live[h.ID] = h // still ours: caller retries (or lease expiry reclaims)
		return err
	}
	if res, derr := decodeResult(resp.Data); derr != nil || res.status != statusOK {
		return ErrBad
	}
	pl.Frees++
	return nil
}

// Abandon drops h from the renew set without freeing it: the orphaned-
// allocation case the server's lease reclaim must bound.
func (pl *Pool) Abandon(h *Handle) { delete(pl.live, h.ID) }

// Write lands data durably at offset off of h: the call returns when the
// payload is persistent on the pool node (the durable-RPC ack), not when it
// is processed.
func (pl *Pool) Write(p *sim.Proc, h *Handle, off int64, data []byte) error {
	if off < 0 || off+int64(len(data)) > h.Class {
		return ErrBad
	}
	if _, err := pl.call(p, h.Server, encodeWrite(h.ID, off, data)); err != nil {
		return err
	}
	pl.Writes++
	pl.WriteBytes += int64(len(data))
	return nil
}

// Read returns n bytes at offset off of h.
func (pl *Pool) Read(p *sim.Proc, h *Handle, off int64, n int) ([]byte, error) {
	if off < 0 || off+int64(n) > h.Class {
		return nil, ErrBad
	}
	resp, err := pl.call(p, h.Server, encodeRead(h.ID, off, n))
	if err != nil {
		return nil, err
	}
	pl.Reads++
	pl.ReadBytes += int64(n)
	return resp.Data, nil
}

// renewLoop batches one lease-renewal record per server every TTL/3 for all
// live handles, in sorted id order (deterministic wire traffic). Renewal
// failures are ignored: the crash-recovery driver reestablishes and the
// recovered server grants a fresh grace period anyway.
func (pl *Pool) renewLoop(p *sim.Proc) {
	for {
		p.Sleep(pl.Cfg.LeaseTTL / 3)
		if pl.stop {
			return
		}
		if pl.pause > 0 {
			continue
		}
		perServer := make(map[int][]uint64)
		for id, h := range pl.live {
			perServer[h.Server] = append(perServer[h.Server], id)
		}
		order := make([]int, 0, len(perServer))
		for s := range perServer {
			order = append(order, s)
		}
		sort.Ints(order)
		for _, s := range order {
			if pl.pause > 0 {
				break // recovery started mid-sweep: back off this tick
			}
			ids := perServer[s]
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			c := pl.conn(s)
			d := pl.Cfg.Timeout
			if d <= 0 {
				d = pl.Cfg.LeaseTTL / 3
			}
			if _, err := c.CallTimeout(p, encodeRenew(ids), d); err != nil {
				pl.Retries++
			}
			if pl.stop {
				return
			}
		}
	}
}

// Logs returns the redo log of every pooled connection (crash checkers
// hook recovery-scan invariants on them), ordered by server then slot.
func (pl *Pool) Logs() []*redolog.Log {
	var out []*redolog.Log
	for _, set := range pl.conns {
		for _, c := range set {
			out = append(out, c.(interface{ Log() *redolog.Log }).Log())
		}
	}
	return out
}

// Reestablish rebuilds every pooled connection to server s after its
// restart, replaying unconsumed durable requests. Returns the total
// replayed across the connection set.
func (pl *Pool) Reestablish(p *sim.Proc, s int) (int, error) {
	pl.PauseRenew()
	defer pl.ResumeRenew()
	total := 0
	for _, c := range pl.conns[s] {
		n, err := c.Reestablish(p)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}
