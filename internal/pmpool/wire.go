// Package pmpool implements a crash-safe remote persistent-memory pool —
// RPMP-style memory disaggregation — on top of the durable RPC families:
// clients Alloc/Free remote PM through a malloc/free-shaped API and
// Write/Read allocation extents with durable-on-return semantics, while the
// server CPU stays off the data-persistence path (the paper's decoupling).
//
// Allocation metadata is a durable shadow in server PM: one slab-class word
// per slab and one owner word per 64-byte unit, each updated with a single
// failure-atomic 8-byte persist at apply time, *before* the request's redo
// log entry is consumed. A crash at any point therefore leaves the pool
// reconstructible: recovery scans the shadow to rebuild the slab allocator
// (pmem.Slabs.Adopt) and the id index, then redo-log replay re-applies the
// unconsumed tail idempotently — an alloc whose id is already owned dedups
// to the same address, a free whose id is already gone is a no-op. Leases
// renewed on a sim timer bound orphaned allocations: a client that vanishes
// stops renewing, and the server reclaims its slots after the TTL.
package pmpool

import (
	"encoding/binary"
	"fmt"

	"prdma/internal/rpc"
)

// Control record opcodes (first byte of an OpCtrl payload).
const (
	ctrlAlloc = 1
	ctrlFree  = 2
	ctrlRenew = 3
)

// Control response status codes.
const (
	statusOK       = 0
	statusFull     = 1 // allocator exhausted
	statusBad      = 2 // malformed or unknown record
	statusTooLarge = 3 // request exceeds the slab size
)

// ctrlReqBytes is the fixed alloc/free record: op(1) pad(7) id(8) size(8).
const ctrlReqBytes = 24

// ctrlRespBytes is the fixed result record: status(1) pad(7) addr(8) class(8).
const ctrlRespBytes = 24

// encodeAlloc builds the OpCtrl request for Alloc(id, size).
func encodeAlloc(id uint64, size int64) *rpc.Request {
	b := make([]byte, ctrlReqBytes)
	b[0] = ctrlAlloc
	binary.LittleEndian.PutUint64(b[8:], id)
	binary.LittleEndian.PutUint64(b[16:], uint64(size))
	return &rpc.Request{Op: rpc.OpCtrl, Key: id, Size: len(b), Payload: b}
}

// encodeFree builds the OpCtrl request for Free(id).
func encodeFree(id uint64) *rpc.Request {
	b := make([]byte, ctrlReqBytes)
	b[0] = ctrlFree
	binary.LittleEndian.PutUint64(b[8:], id)
	return &rpc.Request{Op: rpc.OpCtrl, Key: id, Size: len(b), Payload: b}
}

// encodeRenew builds the OpCtrl lease-renewal record carrying ids (one
// batched record renews every live lease a client holds on one server).
func encodeRenew(ids []uint64) *rpc.Request {
	b := make([]byte, 16+8*len(ids))
	b[0] = ctrlRenew
	binary.LittleEndian.PutUint64(b[8:], uint64(len(ids)))
	for i, id := range ids {
		binary.LittleEndian.PutUint64(b[16+8*i:], id)
	}
	return &rpc.Request{Op: rpc.OpCtrl, Size: len(b), Payload: b}
}

// ctrlResult is a decoded control response.
type ctrlResult struct {
	status byte
	addr   int64
	class  int64
}

func encodeResult(r ctrlResult) []byte {
	b := make([]byte, ctrlRespBytes)
	b[0] = r.status
	binary.LittleEndian.PutUint64(b[8:], uint64(r.addr))
	binary.LittleEndian.PutUint64(b[16:], uint64(r.class))
	return b
}

func decodeResult(b []byte) (ctrlResult, error) {
	if len(b) < ctrlRespBytes {
		return ctrlResult{}, fmt.Errorf("pmpool: short control response (%d bytes)", len(b))
	}
	return ctrlResult{
		status: b[0],
		addr:   int64(binary.LittleEndian.Uint64(b[8:])),
		class:  int64(binary.LittleEndian.Uint64(b[16:])),
	}, nil
}

// encodeWrite builds the durable write into allocation id at off. The
// offset rides the ScanLen header field (unused by writes), so the request
// needs no payload framing beyond the raw data.
func encodeWrite(id uint64, off int64, data []byte) *rpc.Request {
	return &rpc.Request{Op: rpc.OpWrite, Key: id, Size: len(data), ScanLen: int(off), Payload: data}
}

// encodeRead builds the read of n bytes from allocation id at off. The
// empty (non-nil) payload marks "real contents wanted" on the wire.
func encodeRead(id uint64, off int64, n int) *rpc.Request {
	return &rpc.Request{Op: rpc.OpRead, Key: id, Size: n, ScanLen: int(off), Payload: []byte{}}
}
