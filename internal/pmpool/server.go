package pmpool

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// unitBytes is the durable-metadata granularity: one owner word per 64-byte
// unit of the data region. Slot base addresses are always unit-aligned
// (classes are powers of two >= 64), so one word per unit suffices.
const unitBytes = pmem.MinSlabClass

// ServerConfig sizes one pool server.
type ServerConfig struct {
	// PoolBytes is the data-region size (must be a multiple of SlabBytes).
	PoolBytes int64
	// SlabBytes is the slab size (power of two >= 64).
	SlabBytes int64
	// LeaseTTL bounds orphaned allocations: an id whose lease is not
	// renewed for this long is reclaimed. Zero disables reclamation.
	LeaseTTL time.Duration
	// ReclaimEvery is the reclaimer's scan period (default LeaseTTL/2).
	ReclaimEvery time.Duration
	// LeakMutant, when true, plants the seeded bug the crash-point sweep
	// must catch: Free skips the durable owner-word clear, so a crash after
	// an acked free resurrects the allocation from the stale metadata.
	LeakMutant bool
}

// DefaultServerConfig returns a small pool sized for tests and CI sweeps.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		PoolBytes:    64 * 4096,
		SlabBytes:    4096,
		LeaseTTL:     4 * time.Millisecond,
		ReclaimEvery: 1 * time.Millisecond,
	}
}

// allocInfo is the volatile index entry for one live allocation.
type allocInfo struct {
	addr  int64
	class int64
}

// Server is one pool node: a host whose PM holds the data region plus the
// durable metadata shadow, fronted by the durable-RPC transport. All
// volatile state (the slab allocator, the id index, the lease table) is
// rebuilt by Recover from the shadow after a crash.
type Server struct {
	H   *host.Host
	RPC *rpc.Server
	Cfg ServerConfig

	// Durable layout, all in H's PM: a class word per slab, an owner word
	// per unit of the data region, then the data region itself.
	classTable int64 // nslabs * 8 bytes
	ownerTable int64 // (PoolBytes/unitBytes) * 8 bytes
	dataBase   int64 // PoolBytes bytes

	// Volatile state (dropped on Crash, rebuilt by Recover).
	slabs *pmem.Slabs
	byID  map[uint64]allocInfo
	lease map[uint64]sim.Time
	down  bool
	stop  bool

	// Stats.
	Allocs, Frees, Renews int64
	Reclaimed             int64
	StaleDrops            int64
	Recoveries            int64
	Adopted               int64
}

// NewServer builds a pool server on h and mounts its handler on the durable
// transport. rcfg shapes the RPC deployment (the redo-log ring in
// particular); Workers is forced to 1 so per-id apply order equals log
// order.
func NewServer(h *host.Host, rcfg rpc.Config, cfg ServerConfig) *Server {
	if cfg.SlabBytes < unitBytes || cfg.SlabBytes&(cfg.SlabBytes-1) != 0 {
		panic(fmt.Sprintf("pmpool: slab size %d is not a power of two >= %d", cfg.SlabBytes, unitBytes))
	}
	if cfg.PoolBytes <= 0 || cfg.PoolBytes%cfg.SlabBytes != 0 {
		panic(fmt.Sprintf("pmpool: pool size %d is not a positive multiple of slab size %d", cfg.PoolBytes, cfg.SlabBytes))
	}
	if cfg.ReclaimEvery <= 0 {
		cfg.ReclaimEvery = cfg.LeaseTTL / 2
	}
	rcfg.Workers = 1
	s := &Server{H: h, Cfg: cfg}
	s.RPC = rpc.NewServer(h, nil, rcfg)
	s.RPC.Handler = s.handle

	nslabs := cfg.PoolBytes / cfg.SlabBytes
	units := cfg.PoolBytes / unitBytes
	var err error
	if s.classTable, err = h.PMArena.Alloc(nslabs * 8); err != nil {
		panic(err)
	}
	if s.ownerTable, err = h.PMArena.Alloc(units * 8); err != nil {
		panic(err)
	}
	if s.dataBase, err = h.PMArena.Alloc(cfg.PoolBytes); err != nil {
		panic(err)
	}
	s.slabs = pmem.NewSlabs(s.dataBase, cfg.PoolBytes, cfg.SlabBytes)
	s.byID = make(map[uint64]allocInfo)
	s.lease = make(map[uint64]sim.Time)

	if cfg.LeaseTTL > 0 {
		h.K.Go(h.Name+"-pmpool-reclaim", s.reclaimLoop)
	}
	return s
}

// Slabs exposes the live allocator for consistency checks.
func (s *Server) Slabs() *pmem.Slabs { return s.slabs }

// Live returns the number of live allocations.
func (s *Server) Live() int { return len(s.byID) }

// Stop retires the reclaimer at its next tick so a figure kernel's event
// queue can drain.
func (s *Server) Stop() { s.stop = true }

// classWordAddr is the durable class word of slab i.
func (s *Server) classWordAddr(i int) int64 { return s.classTable + int64(i)*8 }

// ownerWordAddr is the durable owner word covering the unit at addr.
func (s *Server) ownerWordAddr(addr int64) int64 {
	return s.ownerTable + (addr-s.dataBase)/unitBytes*8
}

// persistWord persists one failure-atomic metadata word over the CPU path
// and blocks p until it is durable — the commit discipline every metadata
// mutation goes through. It reports whether the word committed in the
// epoch the handler entered with: a crash while p slept aborts the persist
// and resets the volatile state under the handler, which must then bail
// without touching anything (the request stays durable in the redo log and
// replays after recovery).
func (s *Server) persistWord(p *sim.Proc, epoch int, addr int64, v uint64) bool {
	if s.H.PM.Epoch() != epoch {
		return false
	}
	t := s.H.PM.PersistWord(p.Now(), addr, v, pmem.CPU)
	if d := t.Sub(p.Now()); d > 0 {
		p.Sleep(d)
	}
	return s.H.PM.Epoch() == epoch
}

// handle is the transport's apply function. The request payload is already
// durable in the connection's redo log when it runs; everything here must
// leave the durable metadata consistent before returning, because the log
// entry is consumed right after.
func (s *Server) handle(p *sim.Proc, req *rpc.Request) []byte {
	if s.down {
		// Restarted but not yet recovered: decline so the transport leaves
		// the entry durable in the redo log instead of consuming it. This
		// window is real — a second crash landing inside a client's
		// Reestablish makes its internal retry replay into a server whose
		// Recover has not rerun yet; consuming here would discard an acked
		// request forever.
		return rpc.Declined
	}
	// The entry epoch pins this apply to the pre-crash world: handlers yield
	// inside timed persists, and a crash landing in that window resets the
	// volatile state under them. Every yielding step re-checks it and bails.
	epoch := s.H.PM.Epoch()
	switch req.Op {
	case rpc.OpCtrl:
		return s.handleCtrl(p, epoch, req)
	case rpc.OpWrite:
		s.handleWrite(p, epoch, req)
		return nil
	case rpc.OpRead:
		return s.handleRead(p, req)
	}
	s.StaleDrops++
	return nil
}

func (s *Server) handleCtrl(p *sim.Proc, epoch int, req *rpc.Request) []byte {
	b := req.Payload
	if len(b) < 16 {
		return encodeResult(ctrlResult{status: statusBad})
	}
	switch b[0] {
	case ctrlAlloc:
		if len(b) < ctrlReqBytes {
			return encodeResult(ctrlResult{status: statusBad})
		}
		id := binary.LittleEndian.Uint64(b[8:])
		size := int64(binary.LittleEndian.Uint64(b[16:]))
		return encodeResult(s.applyAlloc(p, epoch, id, size))
	case ctrlFree:
		if len(b) < ctrlReqBytes {
			return encodeResult(ctrlResult{status: statusBad})
		}
		return encodeResult(s.applyFree(p, epoch, binary.LittleEndian.Uint64(b[8:])))
	case ctrlRenew:
		n := int(binary.LittleEndian.Uint64(b[8:]))
		if len(b) < 16+8*n {
			return encodeResult(ctrlResult{status: statusBad})
		}
		now := p.Now()
		for i := 0; i < n; i++ {
			id := binary.LittleEndian.Uint64(b[16+8*i:])
			if _, ok := s.byID[id]; ok {
				s.lease[id] = now.Add(s.Cfg.LeaseTTL)
			}
		}
		s.Renews++
		return encodeResult(ctrlResult{status: statusOK})
	}
	return encodeResult(ctrlResult{status: statusBad})
}

// applyAlloc seats id. Idempotent by id: redo-log replay (or a client retry
// that raced a crash) re-applying an alloc that already committed returns
// the same address instead of leaking a second slot.
func (s *Server) applyAlloc(p *sim.Proc, epoch int, id uint64, size int64) ctrlResult {
	if id == 0 {
		return ctrlResult{status: statusBad} // 0 is the free marker
	}
	if ai, ok := s.byID[id]; ok {
		s.lease[id] = p.Now().Add(s.Cfg.LeaseTTL)
		return ctrlResult{status: statusOK, addr: ai.addr, class: ai.class}
	}
	if size <= 0 {
		return ctrlResult{status: statusBad}
	}
	if pmem.SizeClass(size) > s.Cfg.SlabBytes {
		return ctrlResult{status: statusTooLarge}
	}
	addr, err := s.slabs.Alloc(size)
	if err != nil {
		return ctrlResult{status: statusFull}
	}
	c := pmem.SizeClass(size)
	// Durable commit, single-word-atomic at every step: first the slab's
	// class word (idempotent — re-persisting the same class is harmless,
	// and a re-carved slab legitimately changes it), then the owner word,
	// which is the commit point. A crash between the two leaves a carved
	// class word with no owned slots, which recovery treats as a free slab.
	// A crash during either persist aborts the apply entirely: the logged
	// request replays post-recovery and commits then.
	if !s.persistWord(p, epoch, s.classWordAddr(s.slabs.SlabIndex(addr)), uint64(c)) {
		return ctrlResult{status: statusBad}
	}
	if !s.persistWord(p, epoch, s.ownerWordAddr(addr), id) {
		return ctrlResult{status: statusBad}
	}
	s.byID[id] = allocInfo{addr: addr, class: c}
	s.lease[id] = p.Now().Add(s.Cfg.LeaseTTL)
	s.Allocs++
	return ctrlResult{status: statusOK, addr: addr, class: c}
}

// applyFree releases id. Idempotent: a replayed or retried free of an id
// that is already gone succeeds without touching anything.
func (s *Server) applyFree(p *sim.Proc, epoch int, id uint64) ctrlResult {
	ai, ok := s.byID[id]
	if !ok {
		return ctrlResult{status: statusOK}
	}
	if !s.Cfg.LeakMutant {
		// The durable commit of the free: clear the owner word. The seeded
		// leak mutant skips exactly this persist, leaving a stale owner
		// word for recovery to resurrect — the sweep must catch it. A crash
		// during the persist aborts the apply: the logged free replays.
		if !s.persistWord(p, epoch, s.ownerWordAddr(ai.addr), 0) {
			return ctrlResult{status: statusBad}
		}
	}
	s.slabs.Free(ai.addr)
	delete(s.byID, id)
	delete(s.lease, id)
	s.Frees++
	return ctrlResult{status: statusOK}
}

// handleWrite lands payload bytes in id's extent: CPU copy out of the log,
// then a synchronous persist into the data region. An unknown id (freed or
// reclaimed under a stale client) is counted and dropped — the transport
// has already acknowledged the payload's durability, and replay-after-crash
// of the same stale write must stay a no-op.
func (s *Server) handleWrite(p *sim.Proc, epoch int, req *rpc.Request) {
	ai, ok := s.byID[req.Key]
	off := int64(req.ScanLen)
	if !ok || off < 0 || off+int64(req.Size) > ai.class {
		s.StaleDrops++
		return
	}
	s.H.Memcpy(p, req.Size)
	if s.H.PM.Epoch() != epoch {
		return // crashed during the copy: the logged write replays instead
	}
	var data []byte
	if req.Payload != nil && len(req.Payload) >= req.Size {
		data = req.Payload[:req.Size]
	}
	s.H.PM.PersistSync(p, ai.addr+off, req.Size, data, pmem.CPU)
}

// handleRead returns id's bytes at [off, off+Size), timed as a media read.
func (s *Server) handleRead(p *sim.Proc, req *rpc.Request) []byte {
	ai, ok := s.byID[req.Key]
	off := int64(req.ScanLen)
	if !ok || off < 0 || off+int64(req.Size) > ai.class {
		s.StaleDrops++
		return nil
	}
	return s.H.PM.ReadSync(p, ai.addr+off, req.Size)
}

// reclaimLoop frees expired leases: the server-side bound on allocations
// orphaned by a vanished client. Expired ids are freed in sorted order so
// the slab state after reclamation is a deterministic function of the
// lease table.
func (s *Server) reclaimLoop(p *sim.Proc) {
	for {
		p.Sleep(s.Cfg.ReclaimEvery)
		if s.stop {
			return
		}
		if s.down {
			continue
		}
		now := p.Now()
		var expired []uint64
		for id, exp := range s.lease {
			if now > exp {
				expired = append(expired, id)
			}
		}
		if len(expired) == 0 {
			continue
		}
		sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
		for _, id := range expired {
			if s.down || s.stop {
				break // crashed mid-scan: recovery re-grants fresh leases
			}
			if exp, ok := s.lease[id]; !ok || now <= exp {
				continue
			}
			if res := s.applyFree(p, s.H.PM.Epoch(), id); res.status != statusOK {
				break // crashed mid-free: recovery re-grants fresh leases
			}
			s.Frees-- // count as reclaim, not client free
			s.Reclaimed++
		}
	}
}

// Crash fails the pool node: host volatile state, the transport work queue,
// and every volatile pool structure die; PM (data + metadata shadow + redo
// logs) survives. The caller owns restart choreography (Host.Restart, then
// Recover, then client Reestablish).
func (s *Server) Crash() {
	s.H.Crash()
	s.RPC.Crash()
	s.down = true
	s.slabs = nil
	s.byID = nil
	s.lease = nil
}

// Recover rebuilds the volatile pool state from the durable metadata
// shadow: a timed scan of the class table and the owner words of every
// carved slab, adopting each owned slot into a fresh slab allocator. A slab
// whose class word is set but which owns no slots is free (the alloc that
// carved it never committed, or its last slot was freed and the slab
// coalesced). Run it after Host.Restart and before the clients'
// Reestablish, so redo-log replay applies onto rebuilt state; replayed
// allocs and frees then dedup against exactly what was durable.
func (s *Server) Recover(p *sim.Proc) {
	for {
		epoch := s.H.PM.Epoch()
		nslabs := int(s.Cfg.PoolBytes / s.Cfg.SlabBytes)
		unitsPerSlab := int(s.Cfg.SlabBytes / unitBytes)
		slabs := pmem.NewSlabs(s.dataBase, s.Cfg.PoolBytes, s.Cfg.SlabBytes)
		byID := make(map[uint64]allocInfo)
		classes := s.H.PM.ReadSync(p, s.classTable, nslabs*8)
		adopted := int64(0)
		for i := 0; i < nslabs; i++ {
			c := int64(binary.LittleEndian.Uint64(classes[i*8:]))
			if c == 0 {
				continue
			}
			// Owner words for this slab's units, one timed read per slab.
			words := s.H.PM.ReadSync(p, s.ownerTable+int64(i*unitsPerSlab)*8, unitsPerSlab*8)
			slabBase := s.dataBase + int64(i)*s.Cfg.SlabBytes
			for u := 0; u < unitsPerSlab; u++ {
				if int64(u)*unitBytes%c != 0 {
					continue // not a slot base for this class
				}
				id := binary.LittleEndian.Uint64(words[u*8:])
				if id == 0 {
					continue
				}
				addr := slabBase + int64(u)*unitBytes
				slabs.Adopt(addr, c)
				byID[id] = allocInfo{addr: addr, class: c}
				adopted++
			}
		}
		if s.H.PM.Epoch() != epoch {
			continue // crashed again mid-scan: start over
		}
		s.slabs = slabs
		s.byID = byID
		// Recovered allocations get a fresh lease grace period: their
		// owners are reconnecting and could not renew while we were down.
		s.lease = make(map[uint64]sim.Time)
		exp := p.Now().Add(s.Cfg.LeaseTTL)
		for id := range byID {
			s.lease[id] = exp
		}
		s.Adopted += adopted
		s.Recoveries++
		s.down = false
		return
	}
}

// OwnedIDs returns the durable owned-id set by scanning the metadata shadow
// directly (untimed). Crash checkers use it as the ground truth to compare
// against an acked-operation ledger.
func (s *Server) OwnedIDs() map[uint64]int64 {
	nslabs := int(s.Cfg.PoolBytes / s.Cfg.SlabBytes)
	unitsPerSlab := int(s.Cfg.SlabBytes / unitBytes)
	out := make(map[uint64]int64)
	classes := make([]byte, nslabs*8)
	s.H.PM.ReadBytesInto(s.classTable, classes)
	words := make([]byte, unitsPerSlab*8)
	for i := 0; i < nslabs; i++ {
		c := int64(binary.LittleEndian.Uint64(classes[i*8:]))
		if c == 0 {
			continue
		}
		s.H.PM.ReadBytesInto(s.ownerTable+int64(i*unitsPerSlab)*8, words)
		slabBase := s.dataBase + int64(i)*s.Cfg.SlabBytes
		for u := 0; u < unitsPerSlab; u++ {
			id := binary.LittleEndian.Uint64(words[u*8:])
			if id == 0 {
				continue
			}
			out[id] = slabBase + int64(u)*unitBytes
		}
	}
	return out
}
