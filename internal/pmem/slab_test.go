package pmem

import (
	"testing"
)

func TestSlabsClassBoundaries(t *testing.T) {
	s := NewSlabs(0, 1<<20, 4096)
	// Requests at and around power-of-two boundaries land in the right
	// class: n, the slab slot stride, must round up exactly.
	cases := []struct{ n, class int64 }{
		{1, 64}, {63, 64}, {64, 64}, {65, 128}, {128, 128},
		{129, 256}, {2048, 2048}, {2049, 4096}, {4096, 4096},
	}
	for _, c := range cases {
		if got := SizeClass(c.n); got != c.class {
			t.Fatalf("SizeClass(%d) = %d, want %d", c.n, got, c.class)
		}
		a, err := s.Alloc(c.n)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", c.n, err)
		}
		if i := s.SlabIndex(a); s.SlabClassOf(i) != c.class {
			t.Fatalf("Alloc(%d) landed in class-%d slab, want %d", c.n, s.SlabClassOf(i), c.class)
		}
		s.Free(a)
	}
	if _, err := s.Alloc(4097); err == nil {
		t.Fatalf("Alloc larger than the slab size must fail")
	}
	if err := s.CheckConsistent(); err != nil {
		t.Fatalf("CheckConsistent: %v", err)
	}
}

func TestSlabsExhaustion(t *testing.T) {
	// 4 slabs x 4096 bytes; class 1024 = 4 slots per slab = 16 total.
	s := NewSlabs(1<<30, 4*4096, 4096)
	var addrs []int64
	for i := 0; i < 16; i++ {
		a, err := s.Alloc(1000)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		addrs = append(addrs, a)
	}
	if _, err := s.Alloc(1000); err == nil {
		t.Fatalf("17th allocation must exhaust the region")
	}
	// A different class is just as stuck: every slab is carved.
	if _, err := s.Alloc(64); err == nil {
		t.Fatalf("cross-class allocation must also fail when all slabs are carved")
	}
	// Freeing one class-1024 slot does not help class 64 (the slab stays
	// bound to 1024) ...
	s.Free(addrs[0])
	if _, err := s.Alloc(64); err == nil {
		t.Fatalf("a partially-free class-1024 slab must not serve class 64")
	}
	// ... but freeing a whole slab coalesces it, and the freed slab can
	// be re-carved for the other class.
	for _, a := range addrs[1:4] {
		s.Free(a)
	}
	if s.Coalesced != 1 {
		t.Fatalf("Coalesced = %d, want 1", s.Coalesced)
	}
	if _, err := s.Alloc(64); err != nil {
		t.Fatalf("re-carve after coalesce: %v", err)
	}
	if err := s.CheckConsistent(); err != nil {
		t.Fatalf("CheckConsistent: %v", err)
	}
}

func TestSlabsCoalesceInterleaved(t *testing.T) {
	s := NewSlabs(0, 1<<20, 8192)
	// Interleave allocs and frees across two classes so slabs fill,
	// drain, coalesce, and get re-carved for the other class.
	var live []int64
	rng := uint64(42)
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	for i := 0; i < 4000; i++ {
		if len(live) > 0 && next(3) == 0 {
			j := int(next(uint64(len(live))))
			s.Free(live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		size := int64(64)
		if next(2) == 0 {
			size = 1024
		}
		a, err := s.Alloc(size)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		live = append(live, a)
	}
	if err := s.CheckConsistent(); err != nil {
		t.Fatalf("mid-run CheckConsistent: %v", err)
	}
	for _, a := range live {
		s.Free(a)
	}
	if s.Live() != 0 || s.LiveBytes() != 0 {
		t.Fatalf("live %d / %d bytes after freeing everything", s.Live(), s.LiveBytes())
	}
	if s.Coalesced == 0 {
		t.Fatalf("interleaved run never coalesced a slab")
	}
	// Every slab must be back in the free pool.
	for i := 0; i < s.NumSlabs(); i++ {
		if s.SlabClassOf(i) != 0 {
			t.Fatalf("slab %d still carved (class %d) after full drain", i, s.SlabClassOf(i))
		}
	}
	if err := s.CheckConsistent(); err != nil {
		t.Fatalf("final CheckConsistent: %v", err)
	}
}

func TestSlabsDoubleFreePanics(t *testing.T) {
	s := NewSlabs(0, 1<<16, 4096)
	a, err := s.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	_ = b
	s.Free(a)
	defer func() {
		if recover() == nil {
			t.Fatalf("double free must panic")
		}
	}()
	s.Free(a)
}

func TestSlabsAdoptRebuild(t *testing.T) {
	// Drive one allocator, snapshot its live set, rebuild a second via
	// Adopt, and require the two to agree structurally.
	s := NewSlabs(0, 1<<18, 8192)
	type al struct{ addr, class int64 }
	var live []al
	for i := 0; i < 200; i++ {
		size := int64(64 << (i % 5))
		a, err := s.Alloc(size)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if i%3 == 0 {
			s.Free(a)
			continue
		}
		live = append(live, al{a, SizeClass(size)})
	}
	r := NewSlabs(0, 1<<18, 8192)
	// Adopt out of order to prove order independence.
	for i := len(live) - 1; i >= 0; i-- {
		r.Adopt(live[i].addr, live[i].class)
	}
	if r.Live() != len(live) {
		t.Fatalf("rebuilt live %d, want %d", r.Live(), len(live))
	}
	if err := r.CheckConsistent(); err != nil {
		t.Fatalf("rebuilt CheckConsistent: %v", err)
	}
	// The rebuilt allocator keeps serving: it must be able to reuse the
	// free slots and, after the lives are freed, coalesce everything.
	for _, l := range live {
		r.Free(l.addr)
	}
	if r.Live() != 0 {
		t.Fatalf("rebuilt allocator live %d after full drain", r.Live())
	}
	if err := r.CheckConsistent(); err != nil {
		t.Fatalf("drained CheckConsistent: %v", err)
	}
}

// TestSlabsAllocRegression pins the steady-state alloc/free cycle — the
// pool service's hot path — at zero allocations per operation.
func TestSlabsAllocRegression(t *testing.T) {
	s := NewSlabs(0, 1<<20, 8192)
	// Warm: carve the slabs and grow every free list to capacity once.
	var warm []int64
	for i := 0; i < 64; i++ {
		a, err := s.Alloc(512)
		if err != nil {
			t.Fatal(err)
		}
		warm = append(warm, a)
	}
	for _, a := range warm {
		s.Free(a)
	}
	avg := testing.AllocsPerRun(200, func() {
		a, err := s.Alloc(512)
		if err != nil {
			t.Fatal(err)
		}
		s.Free(a)
	})
	if avg > 0 {
		t.Fatalf("steady-state Alloc/Free allocates %.1f/op, want 0", avg)
	}
}
