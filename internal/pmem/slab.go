package pmem

import "fmt"

// Slabs is a slab allocator over a fixed PM region: the region is carved
// into equal-size slabs, each slab is bound to one power-of-two size class
// when it is carved, and its slots feed a per-class free list. A slab whose
// last slot is freed is coalesced — its remaining slots leave the free list
// and the slab returns to the free-slab pool, re-carvable for any class.
//
// Like Arena, Slabs is host-DRAM bookkeeping: the real system keeps it
// volatile and rebuilds it on recovery (internal/pmpool persists a shadow of
// the owned-slot set through its redo-logged metadata and calls Adopt to
// reconstruct this exact structure), so operations carry no simulated
// latency. The steady-state Alloc/Free cycle is allocation-free — the pool
// service sits on its hot path.
type Slabs struct {
	base      int64
	slabBytes int64
	slabs     []slab
	// free holds per-class free slot addresses, LIFO. Carving pushes a
	// slab's slots in descending address order so pops ascend: allocation
	// placement is deterministic given the operation sequence.
	free map[int64][]int64
	// freeSlabs is the LIFO pool of uncarved slab indices.
	freeSlabs []int

	liveCount int
	liveBytes int64

	// Carved counts slab-carve events; Coalesced counts slabs returned
	// whole to the free pool.
	Carved, Coalesced int64
}

// slab is one region-resident slab. class is 0 while uncarved; inUse is
// sized at first carve for the smallest class and re-sliced on re-carve so
// steady-state carving allocates nothing.
type slab struct {
	class int64
	used  int
	inUse []bool
}

// MinSlabClass is the smallest slot class a slab can be carved for.
const MinSlabClass = 64

// SizeClass rounds n up to its allocation class (powers of two from 64
// bytes) — the same classing Arena uses.
func SizeClass(n int64) int64 { return class(n) }

// NewSlabs manages [base, base+size) carved into size/slabBytes slabs.
// size must be a multiple of slabBytes, and slabBytes a power of two no
// smaller than MinSlabClass.
func NewSlabs(base, size, slabBytes int64) *Slabs {
	if slabBytes < MinSlabClass || slabBytes&(slabBytes-1) != 0 {
		panic(fmt.Sprintf("pmem: slab size %d is not a power of two >= %d", slabBytes, MinSlabClass))
	}
	if size <= 0 || size%slabBytes != 0 {
		panic(fmt.Sprintf("pmem: region size %d is not a positive multiple of slab size %d", size, slabBytes))
	}
	n := int(size / slabBytes)
	s := &Slabs{
		base:      base,
		slabBytes: slabBytes,
		slabs:     make([]slab, n),
		free:      make(map[int64][]int64),
		freeSlabs: make([]int, 0, n),
	}
	// Push descending so pops carve ascending slab addresses.
	for i := n - 1; i >= 0; i-- {
		s.freeSlabs = append(s.freeSlabs, i)
	}
	return s
}

// SlabBytes returns the slab size.
func (s *Slabs) SlabBytes() int64 { return s.slabBytes }

// NumSlabs returns the slab count.
func (s *Slabs) NumSlabs() int { return len(s.slabs) }

// Live returns the number of live allocations.
func (s *Slabs) Live() int { return s.liveCount }

// LiveBytes returns the class-rounded bytes held by live allocations.
func (s *Slabs) LiveBytes() int64 { return s.liveBytes }

// SlabIndex returns the index of the slab containing addr.
func (s *Slabs) SlabIndex(addr int64) int { return int((addr - s.base) / s.slabBytes) }

// SlabClassOf returns the bound class of slab i (0 = uncarved).
func (s *Slabs) SlabClassOf(i int) int64 { return s.slabs[i].class }

// carve binds a free slab to class c and pushes its slots on c's free list.
func (s *Slabs) carve(c int64) error {
	if len(s.freeSlabs) == 0 {
		return fmt.Errorf("pmem: slab region exhausted (%d slabs carved, %d live allocations)", len(s.slabs), s.liveCount)
	}
	i := s.freeSlabs[len(s.freeSlabs)-1]
	s.freeSlabs = s.freeSlabs[:len(s.freeSlabs)-1]
	sl := &s.slabs[i]
	slots := int(s.slabBytes / c)
	if sl.inUse == nil {
		// First carve sizes the occupancy bitmap for the smallest class;
		// every re-carve re-slices it.
		sl.inUse = make([]bool, s.slabBytes/MinSlabClass)
	}
	sl.class = c
	sl.used = 0
	b := sl.inUse[:slots]
	for j := range b {
		b[j] = false
	}
	slabBase := s.base + int64(i)*s.slabBytes
	for j := slots - 1; j >= 0; j-- {
		s.free[c] = append(s.free[c], slabBase+int64(j)*c)
	}
	s.Carved++
	return nil
}

// Alloc returns the address of a slot holding at least n bytes. Requests
// larger than the slab size, and requests the exhausted region cannot seat,
// return an error.
func (s *Slabs) Alloc(n int64) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("pmem: slab alloc of %d bytes", n)
	}
	c := class(n)
	if c > s.slabBytes {
		return 0, fmt.Errorf("pmem: slab alloc of %d bytes exceeds slab size %d", n, s.slabBytes)
	}
	lst := s.free[c]
	if len(lst) == 0 {
		if err := s.carve(c); err != nil {
			return 0, err
		}
		lst = s.free[c]
	}
	addr := lst[len(lst)-1]
	s.free[c] = lst[:len(lst)-1]
	s.markUsed(addr, c)
	return addr, nil
}

// markUsed flips addr's occupancy bit on (panicking on corruption) and
// advances the live counters.
func (s *Slabs) markUsed(addr int64, c int64) {
	i := s.SlabIndex(addr)
	sl := &s.slabs[i]
	slot := (addr - s.base - int64(i)*s.slabBytes) / c
	if sl.inUse[slot] {
		panic(fmt.Sprintf("pmem: slab slot %#x double-allocated", addr))
	}
	sl.inUse[slot] = true
	sl.used++
	s.liveCount++
	s.liveBytes += c
}

// Free returns a slot to its class free list; freeing the slab's last live
// slot coalesces the whole slab back to the free-slab pool. Freeing an
// address that is not a live allocation panics.
func (s *Slabs) Free(addr int64) {
	i := s.SlabIndex(addr)
	if i < 0 || i >= len(s.slabs) {
		panic(fmt.Sprintf("pmem: slab free of out-of-region address %#x", addr))
	}
	sl := &s.slabs[i]
	c := sl.class
	if c == 0 {
		panic(fmt.Sprintf("pmem: slab free of %#x in an uncarved slab", addr))
	}
	slabBase := s.base + int64(i)*s.slabBytes
	if (addr-slabBase)%c != 0 {
		panic(fmt.Sprintf("pmem: slab free of unaligned address %#x (class %d)", addr, c))
	}
	slot := (addr - slabBase) / c
	if !sl.inUse[slot] {
		panic(fmt.Sprintf("pmem: double free of slab slot %#x", addr))
	}
	sl.inUse[slot] = false
	sl.used--
	s.liveCount--
	s.liveBytes -= c
	if sl.used == 0 {
		s.coalesce(i, c, slabBase)
		return
	}
	s.free[c] = append(s.free[c], addr)
}

// coalesce pulls slab i's remaining free slots off class c's list and
// returns the slab whole to the free pool.
func (s *Slabs) coalesce(i int, c int64, slabBase int64) {
	lst := s.free[c]
	keep := lst[:0]
	for _, a := range lst {
		if a < slabBase || a >= slabBase+s.slabBytes {
			keep = append(keep, a)
		}
	}
	s.free[c] = keep
	s.slabs[i].class = 0
	s.freeSlabs = append(s.freeSlabs, i)
	s.Coalesced++
}

// Adopt marks addr live as a class-c allocation without going through the
// free lists: the recovery path rebuilding the allocator from a durable
// owned-slot scan. The containing slab is carved for c on first adoption; a
// class conflict inside one slab means the durable metadata is corrupt and
// panics. Adoptions may arrive in any order; the free lists stay exact
// throughout, so the rebuilt allocator is usable immediately.
func (s *Slabs) Adopt(addr, c int64) {
	if c < MinSlabClass || c&(c-1) != 0 || c > s.slabBytes {
		panic(fmt.Sprintf("pmem: adopt of %#x with bad class %d", addr, c))
	}
	i := s.SlabIndex(addr)
	if i < 0 || i >= len(s.slabs) {
		panic(fmt.Sprintf("pmem: adopt of out-of-region address %#x", addr))
	}
	sl := &s.slabs[i]
	slabBase := s.base + int64(i)*s.slabBytes
	if sl.class == 0 {
		// Carve for c, then immediately claim addr off the fresh list.
		if err := s.carveIndex(i, c); err != nil {
			panic(err)
		}
	} else if sl.class != c {
		panic(fmt.Sprintf("pmem: adopt class %d conflicts with slab class %d at %#x", c, sl.class, addr))
	}
	if (addr-slabBase)%c != 0 {
		panic(fmt.Sprintf("pmem: adopt of unaligned address %#x (class %d)", addr, c))
	}
	// Remove addr from the class free list and mark it live.
	lst := s.free[c]
	for j := len(lst) - 1; j >= 0; j-- {
		if lst[j] == addr {
			lst[j] = lst[len(lst)-1]
			s.free[c] = lst[:len(lst)-1]
			s.markUsed(addr, c)
			return
		}
	}
	panic(fmt.Sprintf("pmem: adopt of %#x: slot already live", addr))
}

// carveIndex carves a specific free slab (recovery adopts into fixed
// addresses, so the slab choice is forced).
func (s *Slabs) carveIndex(i int, c int64) error {
	for j := len(s.freeSlabs) - 1; j >= 0; j-- {
		if s.freeSlabs[j] == i {
			s.freeSlabs[j] = s.freeSlabs[len(s.freeSlabs)-1]
			s.freeSlabs = s.freeSlabs[:len(s.freeSlabs)-1]
			// Re-push so carve pops exactly slab i.
			s.freeSlabs = append(s.freeSlabs, i)
			return s.carve(c)
		}
	}
	return fmt.Errorf("pmem: slab %d is not free", i)
}

// CheckConsistent cross-checks the allocator's books: every free-list entry
// must point into a carved slab of its class and not be live, no slot may be
// both live and free, per-slab used counts must match the bitmaps, and the
// live totals must reconcile. It returns the first inconsistency found.
func (s *Slabs) CheckConsistent() error {
	freeSlabSet := make(map[int]bool, len(s.freeSlabs))
	for _, i := range s.freeSlabs {
		if s.slabs[i].class != 0 {
			return fmt.Errorf("slab %d is on the free-slab pool but carved for class %d", i, s.slabs[i].class)
		}
		if freeSlabSet[i] {
			return fmt.Errorf("slab %d appears twice in the free-slab pool", i)
		}
		freeSlabSet[i] = true
	}
	freeSlots := make(map[int64]bool)
	for c, lst := range s.free {
		for _, a := range lst {
			i := s.SlabIndex(a)
			if i < 0 || i >= len(s.slabs) {
				return fmt.Errorf("free slot %#x outside the region", a)
			}
			sl := &s.slabs[i]
			if sl.class != c {
				return fmt.Errorf("free slot %#x on class-%d list but slab %d is class %d", a, c, i, sl.class)
			}
			slot := (a - s.base - int64(i)*s.slabBytes) / c
			if sl.inUse[slot] {
				return fmt.Errorf("slot %#x is both live and on the class-%d free list", a, c)
			}
			if freeSlots[a] {
				return fmt.Errorf("slot %#x appears twice across free lists", a)
			}
			freeSlots[a] = true
		}
	}
	live, liveBytes := 0, int64(0)
	for i := range s.slabs {
		sl := &s.slabs[i]
		if sl.class == 0 {
			if sl.used != 0 {
				return fmt.Errorf("uncarved slab %d has used=%d", i, sl.used)
			}
			if !freeSlabSet[i] {
				return fmt.Errorf("uncarved slab %d missing from the free-slab pool", i)
			}
			continue
		}
		slots := int(s.slabBytes / sl.class)
		used, freeHere := 0, 0
		slabBase := s.base + int64(i)*s.slabBytes
		for j := 0; j < slots; j++ {
			if sl.inUse[j] {
				used++
			} else if freeSlots[slabBase+int64(j)*sl.class] {
				freeHere++
			}
		}
		if used != sl.used {
			return fmt.Errorf("slab %d used count %d but bitmap holds %d", i, sl.used, used)
		}
		if used+freeHere != slots {
			return fmt.Errorf("slab %d: %d live + %d free != %d slots", i, used, freeHere, slots)
		}
		live += used
		liveBytes += int64(used) * sl.class
	}
	if live != s.liveCount || liveBytes != s.liveBytes {
		return fmt.Errorf("live totals %d/%d bytes, books say %d/%d", live, liveBytes, s.liveCount, s.liveBytes)
	}
	return nil
}
