package pmem

import (
	"fmt"
	"sort"
)

// Arena hands out address ranges from a device's address space. It is a
// bump allocator with size-class free lists, enough to back the redo log
// ring buffers and the KV store's value slabs. Allocation metadata is host
// DRAM state in the real system and is rebuilt on recovery, so it carries
// no simulated latency here.
type Arena struct {
	base int64
	size int64
	next int64
	// free lists keyed by rounded size class.
	free map[int64][]int64
	// live tracks outstanding allocations for double-free detection.
	live map[int64]int64
}

// NewArena manages [base, base+size).
func NewArena(base, size int64) *Arena {
	return &Arena{
		base: base, size: size, next: base,
		free: make(map[int64][]int64),
		live: make(map[int64]int64),
	}
}

// class rounds n up to its allocation class (powers of two from 64 bytes).
func class(n int64) int64 {
	c := int64(64)
	for c < n {
		c <<= 1
	}
	return c
}

// Alloc returns the address of a range holding at least n bytes, aligned to
// 64 bytes. It returns an error when the arena is exhausted.
func (a *Arena) Alloc(n int64) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("pmem: alloc of %d bytes", n)
	}
	c := class(n)
	if lst := a.free[c]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		a.free[c] = lst[:len(lst)-1]
		a.live[addr] = c
		return addr, nil
	}
	if a.next+c > a.base+a.size {
		return 0, fmt.Errorf("pmem: arena exhausted (%d of %d used, want %d)", a.next-a.base, a.size, c)
	}
	addr := a.next
	a.next += c
	a.live[addr] = c
	return addr, nil
}

// Free returns a range to the allocator.
func (a *Arena) Free(addr int64) {
	c, ok := a.live[addr]
	if !ok {
		panic(fmt.Sprintf("pmem: free of unallocated address %#x", addr))
	}
	delete(a.live, addr)
	a.free[c] = append(a.free[c], addr)
}

// InUse returns the number of live allocations.
func (a *Arena) InUse() int { return len(a.live) }

// Used returns bytes consumed from the arena (including freed classes).
func (a *Arena) Used() int64 { return a.next - a.base }

// Live returns the live allocation addresses in sorted order (for tests).
func (a *Arena) Live() []int64 {
	out := make([]int64, 0, len(a.live))
	for addr := range a.live {
		out = append(out, addr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
