package pmem

import (
	"bytes"
	"testing"
	"time"

	"prdma/internal/sim"
)

func newDev() (*sim.Kernel, *Device) {
	k := sim.New()
	return k, New(k, DefaultParams())
}

func TestPersistCostAsymmetry(t *testing.T) {
	_, d := newDev()
	dma := d.PersistCost(65536, DMA)
	cpu := d.PersistCost(65536, CPU)
	if cpu <= dma {
		t.Fatalf("CPU persist (%v) should be slower than DMA persist (%v)", cpu, dma)
	}
	// 64 KiB at 2 GB/s is ~32.8us plus base.
	want := 500*time.Nanosecond + time.Duration(65536/2e9*1e9)
	if dma != want {
		t.Fatalf("dma cost = %v, want %v", dma, want)
	}
}

func TestPersistMakesDataDurable(t *testing.T) {
	k, d := newDev()
	data := []byte("hello persistent world")
	end := d.Persist(k.Now(), 100, len(data), data, DMA)
	k.RunUntil(end)
	if got := d.ReadBytes(100, len(data)); !bytes.Equal(got, data) {
		t.Fatalf("got %q want %q", got, data)
	}
}

func TestPersistNotDurableBeforeCompletion(t *testing.T) {
	k, d := newDev()
	data := bytes.Repeat([]byte{0xAB}, 1024)
	d.Persist(k.Now(), 0, len(data), data, DMA)
	// Immediately (no events run) nothing is durable.
	if got := d.ReadBytes(0, 1024); !bytes.Equal(got, make([]byte, 1024)) {
		t.Fatal("data durable before any virtual time elapsed")
	}
	k.Run()
	if got := d.ReadBytes(0, 1024); !bytes.Equal(got, data) {
		t.Fatal("data not durable after completion")
	}
}

func TestCrashMidPersistTearsPrefix(t *testing.T) {
	k, d := newDev()
	data := bytes.Repeat([]byte{0xCD}, 64*1024)
	end := d.Persist(k.Now(), 0, len(data), data, DMA)
	// Crash halfway through the persist.
	half := sim.Time(0).Add(end.Sub(sim.Time(0)) / 2)
	k.RunUntil(half)
	d.Crash()
	k.Run()
	got := d.ReadBytes(0, len(data))
	// Some prefix must be durable, the tail must not be.
	if got[0] != 0xCD {
		t.Fatal("no prefix durable after half the persist time")
	}
	if got[len(got)-1] == 0xCD {
		t.Fatal("tail durable despite crash mid-persist")
	}
	// Durable region is a prefix: once we see a zero, all later bytes are zero.
	seenZero := false
	for _, b := range got {
		if b == 0 {
			seenZero = true
		} else if seenZero {
			t.Fatal("durable bytes are not a prefix")
		}
	}
}

func TestAtomicUnitPersistIsAllOrNothing(t *testing.T) {
	for _, runFrac := range []float64{0.01, 0.5, 0.99, 1.0} {
		k, d := newDev()
		data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
		end := d.Persist(k.Now(), 0, 8, data, CPU)
		k.RunUntil(sim.Time(float64(end) * runFrac))
		d.Crash()
		k.Run()
		got := d.ReadBytes(0, 8)
		zero := bytes.Equal(got, make([]byte, 8))
		full := bytes.Equal(got, data)
		if !zero && !full {
			t.Fatalf("8-byte persist tore at frac=%v: %v", runFrac, got)
		}
	}
}

func TestMediaContentionQueues(t *testing.T) {
	k, d := newDev()
	// Same channel block: must queue.
	e1 := d.Persist(k.Now(), 0, 1024, nil, DMA)
	e2 := d.Persist(k.Now(), 2048, 1024, nil, DMA)
	if e2 <= e1 {
		t.Fatalf("same-channel persists did not queue: e1=%v e2=%v", e1, e2)
	}
	cost := d.PersistCost(1024, DMA)
	if e2 != sim.Time(0).Add(2*cost) {
		t.Fatalf("e2 = %v, want %v", e2, 2*cost)
	}
}

func TestReadSyncReturnsDurableData(t *testing.T) {
	k, d := newDev()
	d.WriteRaw(500, []byte("abc"))
	var got []byte
	k.Go("r", func(p *sim.Proc) {
		got = d.ReadSync(p, 500, 3)
	})
	k.Run()
	if string(got) != "abc" {
		t.Fatalf("got %q", got)
	}
	if k.Now() == 0 {
		t.Fatal("read consumed no virtual time")
	}
}

func TestPersistSyncBlocksForDuration(t *testing.T) {
	k, d := newDev()
	var done sim.Time
	k.Go("w", func(p *sim.Proc) {
		d.PersistSync(p, 0, 4096, nil, CPU)
		done = p.Now()
	})
	k.Run()
	if done != sim.Time(0).Add(d.PersistCost(4096, CPU)) {
		t.Fatalf("done = %v", done)
	}
}

func TestSparsePagesCrossBoundary(t *testing.T) {
	k, d := newDev()
	data := bytes.Repeat([]byte{7}, 100)
	addr := int64(PageSize - 50) // straddles a page boundary
	end := d.Persist(k.Now(), addr, len(data), data, DMA)
	k.RunUntil(end)
	if got := d.ReadBytes(addr, 100); !bytes.Equal(got, data) {
		t.Fatal("cross-page write corrupted")
	}
	// Neighbouring bytes untouched.
	if d.ReadBytes(addr-1, 1)[0] != 0 || d.ReadBytes(addr+100, 1)[0] != 0 {
		t.Fatal("write spilled outside its range")
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	_, d := newDev()
	if !bytes.Equal(d.ReadBytes(1<<30, 16), make([]byte, 16)) {
		t.Fatal("unwritten PM should read zero")
	}
}

func TestPersistNilDataTimingOnly(t *testing.T) {
	k, d := newDev()
	end := d.Persist(k.Now(), 0, 1<<20, nil, DMA)
	if end <= 0 {
		t.Fatal("nil-data persist should still cost time")
	}
	k.Run()
	if len(d.pages) != 0 {
		t.Fatal("nil-data persist touched backing store")
	}
}

func TestPersistOverlongDataPanics(t *testing.T) {
	k, d := newDev()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Persist(k.Now(), 0, 3, []byte("too long"), DMA)
}

func TestPersistSparsePrefix(t *testing.T) {
	// A short data slice carries real contents for the prefix while the
	// full n bytes are timed (synthetic payload with a real header).
	k, d := newDev()
	end := d.Persist(k.Now(), 0, 4096, []byte("hdr!"), DMA)
	if end != sim.Time(0).Add(d.PersistCost(4096, DMA)) {
		t.Fatalf("sparse persist mistimed: %v", end)
	}
	k.Run()
	if got := string(d.ReadBytes(0, 4)); got != "hdr!" {
		t.Fatalf("prefix = %q", got)
	}
	if d.ReadBytes(4096-1, 1)[0] != 0 {
		t.Fatal("tail should be contentless")
	}
}

func TestCrashResetsQueue(t *testing.T) {
	k, d := newDev()
	d.Persist(k.Now(), 0, 1<<20, nil, DMA) // long op occupies the media
	k.RunFor(time.Microsecond)
	d.Crash()
	// After restart, a new persist should start from now, not queue behind
	// the aborted op.
	end := d.Persist(k.Now(), 0, 64, nil, DMA)
	if end.Sub(k.Now()) > 2*d.PersistCost(64, DMA) {
		t.Fatalf("post-crash persist queued behind dead op: %v", end.Sub(k.Now()))
	}
}

func TestStatsCounters(t *testing.T) {
	k, d := newDev()
	d.Persist(k.Now(), 0, 100, nil, DMA)
	d.Read(k.Now(), 0, 100)
	if d.PersistOps != 1 || d.PersistBytes != 100 || d.ReadOps != 1 {
		t.Fatalf("counters: %d %d %d", d.PersistOps, d.PersistBytes, d.ReadOps)
	}
}

func TestChannelsParallelism(t *testing.T) {
	// Persists to different channel blocks proceed in parallel; persists to
	// the same block queue.
	k, d := newDev()
	e1 := d.Persist(k.Now(), 0, 1024, nil, DMA)
	e2 := d.Persist(k.Now(), channelBlock, 1024, nil, DMA) // other channel
	if e2 != e1 {
		t.Fatalf("cross-channel persists should not queue: %v vs %v", e1, e2)
	}
	e3 := d.Persist(k.Now(), 64, 1024, nil, DMA) // same channel as e1
	if e3 <= e1 {
		t.Fatalf("same-channel persist should queue: %v vs %v", e3, e1)
	}
}
