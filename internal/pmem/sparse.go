package pmem

// SparsePayload is a flyweight description of a uniform-fill payload: the
// fill byte, the length, and a checksum of the materialized bytes. The RPC
// data plane uses it (opt in, off by default) to ship and persist large
// uniform payloads without materializing them: the wire carries the entry
// header and commit trailer, the device persists them via PersistTail, and
// the gap reads back as the fill. It is only legal for payloads that are
// uniformly the fill byte — callers must check Uniform first.
type SparsePayload struct {
	Fill byte
	Len  int
	Sum  uint64
}

// FNV-64a, the same parameters as hash/fnv (inlined so describing a payload
// stays alloc-free).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Describe returns the flyweight for b, checksumming its contents. The
// caller asserts (via Uniform) that b is uniform; Describe records b[0] as
// the fill so Matches can detect misuse.
func Describe(b []byte) SparsePayload {
	s := SparsePayload{Len: len(b)}
	if len(b) > 0 {
		s.Fill = b[0]
	}
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	s.Sum = h
	return s
}

// Uniform reports whether every byte of b equals fill.
func Uniform(b []byte, fill byte) bool {
	for _, c := range b {
		if c != fill {
			return false
		}
	}
	return true
}

// Materialize writes the payload bytes into dst (which must be at least Len
// bytes long).
func (s SparsePayload) Materialize(dst []byte) {
	for i := 0; i < s.Len; i++ {
		dst[i] = s.Fill
	}
}

// Matches reports whether b is exactly the payload s describes, verified
// against the checksum.
func (s SparsePayload) Matches(b []byte) bool {
	if len(b) != s.Len {
		return false
	}
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h == s.Sum
}
