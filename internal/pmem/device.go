// Package pmem models a byte-addressable persistent-memory device (Intel
// Optane DCPMM in the paper's testbed).
//
// The model captures the three properties the paper's results rest on:
//
//  1. Persisting data costs time: a base latency plus a bandwidth term, with
//     FIFO queueing when multiple agents (NIC DMA engine, CPU clwb path)
//     contend for the media.
//  2. The CPU persist path (store + clwb/clflush-opt) has lower bandwidth
//     than the NIC's DMA path; this asymmetry is why RNIC-side flushing wins
//     for large objects.
//  3. Durability is delayed: bytes become durable only when their persist
//     operation completes. A crash before completion loses (part of) the
//     write; writes larger than an atomic unit may tear.
//
// Contents are stored sparsely (4 KiB pages allocated on demand). Callers
// that only need timing — the throughput experiments move gigabytes of
// synthetic payload — pass nil data and no memory is touched.
package pmem

import (
	"encoding/binary"
	"fmt"
	"time"

	"prdma/internal/sim"
)

// PageSize is the sparse backing-store granularity.
const PageSize = 4096

// AtomicUnit is the size of a failure-atomic write (an aligned 8-byte store,
// as the paper uses for the redo-log operator entry).
const AtomicUnit = 8

// tornChunks caps how many separately-durable pieces a large persist is
// split into. Tearing granularity only needs to exist for the crash-safety
// proofs; more pieces would just multiply event count.
const tornChunks = 8

// Params configures a device.
type Params struct {
	// PersistBase is the fixed latency of any persist operation.
	PersistBase time.Duration
	// DMABytesPerSec is the NIC-DMA persist bandwidth.
	DMABytesPerSec float64
	// CPUBytesPerSec is the CPU store+clwb persist bandwidth.
	CPUBytesPerSec float64
	// ReadBase and ReadBytesPerSec model media reads.
	ReadBase        time.Duration
	ReadBytesPerSec float64
	// Channels is the number of independently-queued media channels
	// (interleaved DIMMs). Requests map to channels by address block, as
	// the Optane AIT interleaving does. Zero means 4.
	Channels int
}

// DefaultParams returns the Optane-like defaults from DESIGN.md §4.
func DefaultParams() Params {
	return Params{
		PersistBase:     500 * time.Nanosecond,
		DMABytesPerSec:  2e9,
		CPUBytesPerSec:  1e9,
		ReadBase:        300 * time.Nanosecond,
		ReadBytesPerSec: 6e9,
		Channels:        4,
	}
}

// Path selects which agent persists and therefore which bandwidth applies.
type Path int

const (
	// DMA is the RNIC's direct path to the persistence domain.
	DMA Path = iota
	// CPU is the store + clwb path through the cache hierarchy.
	CPU
)

func (p Path) String() string {
	if p == DMA {
		return "dma"
	}
	return "cpu"
}

// Device is one PM module.
type Device struct {
	K      *sim.Kernel
	Params Params

	pages map[int64][]byte
	media []*sim.Resource

	// epoch invalidates in-flight persist completions on crash.
	epoch int

	// inflight records the service interval of every data-carrying persist
	// that tears (applies in more than one chunk). Crash-point sweeps sample
	// crash times inside these windows to exercise partial application.
	inflight []TornWindow

	// chunkFree pools chunk appliers: the persist path schedules up to
	// tornChunks content applications per write, and pooling their closures
	// keeps the data plane alloc-free (same pattern as the kernel's event
	// free list). Single-threaded per kernel, so no sync.
	chunkFree []*chunkApply

	// Stats.
	PersistOps   int64
	PersistBytes int64
	ReadOps      int64
	TornWrites   int64
	// SparseSkippedBytes counts bytes that were timed but never
	// materialized because they fell in a segment gap (redo-log entry
	// padding, SparsePayload flyweight bodies).
	SparseSkippedBytes int64
}

// chunkApply is one pooled, pre-bound application of a torn chunk. The
// persist path fills in the segment views and schedules fn; run returns the
// applier to the device pool before touching media so a chunk firing can
// immediately be reused by the next persist. Segments of at most
// stageBytes are staged into the applier's inline buffer, letting callers
// reuse small header/commit scratch buffers as soon as the persist call
// returns; larger segments are aliased and must stay untouched until the
// persist completes.
type chunkApply struct {
	d                *Device
	epoch            int
	addr             int64 // media address of this chunk
	head, body, tail []byte
	off, sz, n       int // chunk range and logical image size
	stage            [stageBytes]byte
	tbuf             [AtomicUnit]byte
	fn               func()
}

// stageBytes is the inline staging capacity for head segments (enough for a
// redo-log entry header and then some).
const stageBytes = 24

func (d *Device) newChunk() *chunkApply {
	if n := len(d.chunkFree); n > 0 {
		c := d.chunkFree[n-1]
		d.chunkFree = d.chunkFree[:n-1]
		return c
	}
	c := &chunkApply{d: d}
	c.fn = func() { c.run() }
	return c
}

func (c *chunkApply) run() {
	d := c.d
	epoch, addr := c.epoch, c.addr
	head, body, tail := c.head, c.body, c.tail
	off, sz, n := c.off, c.sz, c.n
	c.head, c.body, c.tail = nil, nil, nil
	d.chunkFree = append(d.chunkFree, c)
	if d.epoch != epoch {
		return // lost in a crash
	}
	d.applySegs(addr, off, sz, n, head, body, tail)
}

// applySegs materializes the bytes of logical range [off, off+sz) of an
// n-byte image whose contents are head ++ body ++ zero-gap ++ tail (the
// tail ending at offset n), starting at media address addr. Bytes outside
// the segments are never written; unwritten media reads as zero.
func (d *Device) applySegs(addr int64, off, sz, n int, head, body, tail []byte) {
	if off < len(head) {
		hi := off + sz
		if hi > len(head) {
			hi = len(head)
		}
		d.write(addr, head[off:hi])
	}
	if len(body) > 0 {
		lo, hi := off, off+sz
		blo, bhi := len(head), len(head)+len(body)
		if lo < blo {
			lo = blo
		}
		if hi > bhi {
			hi = bhi
		}
		if lo < hi {
			d.write(addr+int64(lo-off), body[lo-blo:hi-blo])
		}
	}
	if len(tail) > 0 {
		lo, hi := off, off+sz
		tlo := n - len(tail)
		if lo < tlo {
			lo = tlo
		}
		if lo < hi {
			d.write(addr+int64(lo-off), tail[lo-tlo:hi-tlo])
		}
	}
}

// New returns a device bound to kernel k.
func New(k *sim.Kernel, p Params) *Device {
	if p.Channels <= 0 {
		p.Channels = 4
	}
	d := &Device{K: k, Params: p, pages: make(map[int64][]byte)}
	for i := 0; i < p.Channels; i++ {
		d.media = append(d.media, sim.NewResource(k))
	}
	return d
}

// channelBlock is the interleave granularity across media channels.
const channelBlock = 4096

// channel maps an address to its media channel.
func (d *Device) channel(addr int64) *sim.Resource {
	idx := int(addr/channelBlock) % len(d.media)
	if idx < 0 {
		idx = -idx
	}
	return d.media[idx]
}

// bandwidth returns the bytes/sec for the chosen path.
func (d *Device) bandwidth(path Path) float64 {
	if path == CPU {
		return d.Params.CPUBytesPerSec
	}
	return d.Params.DMABytesPerSec
}

// PersistCost returns the service time to persist n bytes over path,
// excluding queueing.
func (d *Device) PersistCost(n int, path Path) time.Duration {
	c := sim.CostModel{Base: d.Params.PersistBase, BytesPerSec: d.bandwidth(path)}
	return c.Cost(n)
}

// Persist schedules a durable write of n bytes at media address addr,
// starting no earlier than `at`, and returns the completion time. data may
// be nil for timing-only traffic, or shorter than n, in which case only the
// prefix carries real contents while the full n bytes are timed (used for
// synthetic payloads with real headers).
//
// The write becomes durable piecewise: up to tornChunks sub-ranges are
// applied to the media at evenly spaced points across the service interval,
// so a crash mid-persist leaves a prefix durable. Writes of AtomicUnit bytes
// or less are applied in a single step (failure-atomic).
func (d *Device) Persist(at sim.Time, addr int64, n int, data []byte, path Path) sim.Time {
	return d.PersistSegs(at, addr, n, data, nil, nil, path)
}

// PersistParts persists head ++ body as one n-byte write without the caller
// staging a joined copy: the redo log uses it to persist an entry header and
// the payload bytes taken directly from the wire buffer. Timing, queueing
// and torn-write semantics are identical to Persist of the joined image.
// Bytes beyond the segments (entry padding) are timed but never written, so
// they read back as zero — exactly what a freshly-zeroed joined image would
// have left. body must stay untouched until the returned completion time;
// heads of at most stageBytes are staged and may be reused immediately.
func (d *Device) PersistParts(at sim.Time, addr int64, n int, head, body []byte, path Path) sim.Time {
	return d.PersistSegs(at, addr, n, head, body, nil, path)
}

// PersistTail persists head at the start and tail at the very end of the
// n-byte range, leaving the gap unmaterialized: it is timed (and may tear)
// like any n-byte write, but its bytes are never written and read back as
// zero. This is the SparsePayload append path: a log entry whose payload is
// a flyweight persists only its header prefix and commit trailer. Tails of
// at most AtomicUnit bytes are staged; larger heads/tails alias the caller's
// buffer until completion.
func (d *Device) PersistTail(at sim.Time, addr int64, n int, head, tail []byte, path Path) sim.Time {
	return d.PersistSegs(at, addr, n, head, nil, tail, path)
}

// PersistSegs is the shared persist core: contents are the concatenation
// head ++ body ++ unmaterialized-gap ++ tail with the tail ending at offset
// n. A nil head with nil body and tail is timing-only traffic (no content
// events at all, as before). Gap bytes are timed but never written; on
// reused ring space they keep whatever the previous lap left, which is safe
// exactly when no reader addresses them (redo-log entry padding, flyweight
// payload bodies).
func (d *Device) PersistSegs(at sim.Time, addr int64, n int, head, body, tail []byte, path Path) sim.Time {
	content := len(head) + len(body) + len(tail)
	if content > n {
		panic(fmt.Sprintf("pmem: content %d > n=%d", content, n))
	}
	if n < 0 {
		panic("pmem: negative persist size")
	}
	d.PersistOps++
	d.PersistBytes += int64(n)
	service := d.PersistCost(n, path)
	ch := d.channel(addr)
	start := at
	if nf := ch.NextFree(); nf > start {
		start = nf
	}
	end := ch.ReserveAt(at, service)

	epoch := d.epoch
	if head == nil && body == nil && tail == nil {
		return end
	}
	if tail != nil {
		d.SparseSkippedBytes += int64(n - content)
	}
	// Apply contents in chunks spread across [start, end].
	chunks := tornChunks
	if n <= AtomicUnit || n < chunks {
		chunks = 1
	}
	if chunks > 1 {
		d.TornWrites++
		d.noteTorn(start, end)
	}
	per := n / chunks
	off := 0
	for i := 0; i < chunks; i++ {
		sz := per
		if i == chunks-1 {
			sz = n - off
		}
		frac := float64(i+1) / float64(chunks)
		when := start.Add(time.Duration(float64(end.Sub(start)) * frac))
		c := d.newChunk()
		c.epoch, c.addr = epoch, addr+int64(off)
		c.head, c.body, c.tail = head, body, tail
		c.off, c.sz, c.n = off, sz, n
		if len(head) > 0 && len(head) <= stageBytes {
			c.head = c.stage[:copy(c.stage[:], head)]
		}
		if len(tail) > 0 && len(tail) <= AtomicUnit {
			c.tbuf = [AtomicUnit]byte{}
			c.tail = c.tbuf[:copy(c.tbuf[:], tail)]
		}
		d.K.Schedule(when, c.fn)
		off += sz
	}
	return end
}

// PersistWord persists one failure-atomic 8-byte little-endian word. It is
// Persist of an 8-byte buffer without the caller allocating one whose
// lifetime must span the persist — the redo log's control-pointer updates
// use it. Timing is identical to an 8-byte Persist.
func (d *Device) PersistWord(at sim.Time, addr int64, v uint64, path Path) sim.Time {
	d.PersistOps++
	d.PersistBytes += AtomicUnit
	service := d.PersistCost(AtomicUnit, path)
	ch := d.channel(addr)
	start := at
	if nf := ch.NextFree(); nf > start {
		start = nf
	}
	end := ch.ReserveAt(at, service)
	// One atomic chunk, applied at the end of the service interval (the
	// single-chunk schedule of persist3, with the word staged inline).
	when := start.Add(time.Duration(float64(end.Sub(start))))
	c := d.newChunk()
	c.epoch, c.addr = d.epoch, addr
	binary.LittleEndian.PutUint64(c.stage[:], v)
	c.head, c.body, c.tail = c.stage[:AtomicUnit], nil, nil
	c.off, c.sz, c.n = 0, AtomicUnit, AtomicUnit
	d.K.Schedule(when, c.fn)
	return end
}

// TornWindow is the service interval of an in-flight multi-chunk persist: a
// crash strictly inside (Start, End) leaves the write partially applied.
type TornWindow struct {
	Start, End sim.Time
}

// noteTorn records a tearable persist interval, pruning windows that have
// already completed so the slice tracks only the in-flight set.
func (d *Device) noteTorn(start, end sim.Time) {
	now := d.K.Now()
	live := d.inflight[:0]
	for _, w := range d.inflight {
		if w.End > now {
			live = append(live, w)
		}
	}
	d.inflight = append(live, TornWindow{Start: start, End: end})
}

// InflightTornWindows returns the service intervals of multi-chunk persists
// still in flight at time now. Crash-point sweeps use them to aim crashes
// inside torn-write intervals rather than only at event boundaries.
func (d *Device) InflightTornWindows(now sim.Time) []TornWindow {
	var out []TornWindow
	for _, w := range d.inflight {
		if w.End > now {
			out = append(out, w)
		}
	}
	return out
}

// PersistSync persists and blocks p until durable.
func (d *Device) PersistSync(p *sim.Proc, addr int64, n int, data []byte, path Path) {
	end := d.Persist(p.K.Now(), addr, n, data, path)
	p.Sleep(end.Sub(p.K.Now()))
}

// Read schedules a media read of n bytes at addr and returns its completion
// time. The caller should sample contents (ReadBytes) at or after that time.
func (d *Device) Read(at sim.Time, addr int64, n int) sim.Time {
	d.ReadOps++
	c := sim.CostModel{Base: d.Params.ReadBase, BytesPerSec: d.Params.ReadBytesPerSec}
	return d.channel(addr).ReserveAt(at, c.Cost(n))
}

// ReadSync reads n bytes at addr, blocking p for the media latency, and
// returns the durable contents.
func (d *Device) ReadSync(p *sim.Proc, addr int64, n int) []byte {
	return d.ReadSyncInto(p, addr, make([]byte, n))
}

// ReadSyncInto reads len(dst) bytes at addr into dst, blocking p for the
// media latency, and returns dst. The alloc-free ReadSync for callers that
// reuse a scratch buffer (recovery header/commit probes).
func (d *Device) ReadSyncInto(p *sim.Proc, addr int64, dst []byte) []byte {
	end := d.Read(p.K.Now(), addr, len(dst))
	p.Sleep(end.Sub(p.K.Now()))
	return d.ReadBytesInto(addr, dst)
}

// write applies bytes to the media immediately (no timing). Exported as
// WriteRaw for test setup and recovery bookkeeping that is off the timed
// path.
func (d *Device) write(addr int64, b []byte) {
	for len(b) > 0 {
		page := addr / PageSize
		off := int(addr % PageSize)
		n := PageSize - off
		if n > len(b) {
			n = len(b)
		}
		pg, ok := d.pages[page]
		if !ok {
			pg = make([]byte, PageSize)
			d.pages[page] = pg
		}
		copy(pg[off:], b[:n])
		addr += int64(n)
		b = b[n:]
	}
}

// WriteRaw applies bytes to the media with no simulated latency. It is for
// initialization and tests, not for the timed data path.
func (d *Device) WriteRaw(addr int64, b []byte) { d.write(addr, b) }

// ReadBytes returns the current durable contents of [addr, addr+n).
// Unwritten bytes read as zero.
func (d *Device) ReadBytes(addr int64, n int) []byte {
	return d.ReadBytesInto(addr, make([]byte, n))
}

// ReadBytesInto fills dst with the current durable contents of
// [addr, addr+len(dst)) and returns dst. Unwritten bytes read as zero. It
// is the alloc-free ReadBytes: callers on hot paths reuse a scratch buffer.
func (d *Device) ReadBytesInto(addr int64, dst []byte) []byte {
	n := len(dst)
	o := 0
	for o < n {
		page := (addr + int64(o)) / PageSize
		off := int((addr + int64(o)) % PageSize)
		cnt := PageSize - off
		if cnt > n-o {
			cnt = n - o
		}
		if pg, ok := d.pages[page]; ok {
			copy(dst[o:o+cnt], pg[off:off+cnt])
		} else {
			seg := dst[o : o+cnt]
			for i := range seg {
				seg[i] = 0
			}
		}
		o += cnt
	}
	return dst
}

// Crash models a power failure: every in-flight persist is aborted (its
// not-yet-applied chunks are lost) while already-durable bytes survive.
// The media queue is drained because the device restarts idle.
func (d *Device) Crash() {
	d.epoch++
	d.inflight = nil
	for _, ch := range d.media {
		ch.Reset()
	}
}

// Epoch returns the crash epoch, used by recovery code to detect restarts.
func (d *Device) Epoch() int { return d.epoch }
