package pmem

import (
	"testing"
	"testing/quick"
)

func TestArenaAllocBasic(t *testing.T) {
	a := NewArena(0, 1<<20)
	x, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	y, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if x == y {
		t.Fatal("overlapping allocations")
	}
	if x%64 != 0 || y%64 != 0 {
		t.Fatal("unaligned allocation")
	}
	if a.InUse() != 2 {
		t.Fatalf("InUse = %d", a.InUse())
	}
}

func TestArenaReuseAfterFree(t *testing.T) {
	a := NewArena(4096, 1<<20)
	x, _ := a.Alloc(200)
	a.Free(x)
	y, _ := a.Alloc(200)
	if x != y {
		t.Fatalf("freed block not reused: %#x vs %#x", x, y)
	}
}

func TestArenaExhaustion(t *testing.T) {
	a := NewArena(0, 256)
	if _, err := a.Alloc(128); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(128); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1); err == nil {
		t.Fatal("expected exhaustion error")
	}
}

func TestArenaDoubleFreePanics(t *testing.T) {
	a := NewArena(0, 1<<20)
	x, _ := a.Alloc(64)
	a.Free(x)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Free(x)
}

func TestArenaAllocZeroErrors(t *testing.T) {
	a := NewArena(0, 1<<20)
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("expected error for zero-size alloc")
	}
}

func TestClassRounding(t *testing.T) {
	cases := map[int64]int64{1: 64, 64: 64, 65: 128, 4096: 4096, 4097: 8192}
	for n, want := range cases {
		if got := class(n); got != want {
			t.Errorf("class(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: live allocations never overlap.
func TestArenaNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint16, frees []uint8) bool {
		a := NewArena(0, 1<<24)
		var live []int64
		sz := make(map[int64]int64)
		for i, s := range sizes {
			n := int64(s%8192) + 1
			addr, err := a.Alloc(n)
			if err != nil {
				return true // exhaustion is fine
			}
			live = append(live, addr)
			sz[addr] = class(n)
			// Occasionally free something.
			if len(frees) > 0 && i < len(frees) && frees[i]%3 == 0 && len(live) > 0 {
				j := int(frees[i]) % len(live)
				a.Free(live[j])
				delete(sz, live[j])
				live = append(live[:j], live[j+1:]...)
			}
		}
		// Check pairwise disjointness of live blocks.
		addrs := a.Live()
		for i := 0; i < len(addrs)-1; i++ {
			if addrs[i]+sz[addrs[i]] > addrs[i+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
