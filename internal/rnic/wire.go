package rnic

import "prdma/internal/sim"

// wireKind enumerates NIC-to-NIC message types.
type wireKind int

const (
	wWrite wireKind = iota
	wWriteImm
	wSend
	wRead
	wReadResp
	wAck      // RC acknowledgement (T_A: data staged in SRAM)
	wFlushAck // flush acknowledgement (T_B: data durable in PM)
	wNotify   // small application-level notification (RFlush completion)
)

func (k wireKind) String() string {
	switch k {
	case wWrite:
		return "write"
	case wWriteImm:
		return "write-imm"
	case wSend:
		return "send"
	case wRead:
		return "read"
	case wReadResp:
		return "read-resp"
	case wAck:
		return "ack"
	case wFlushAck:
		return "flush-ack"
	default:
		return "notify"
	}
}

// wireMsg is the payload carried by fabric messages between NICs. Messages
// are reference-counted free-list objects owned by the creating NIC's pool
// (see newWireMsg): every holder that can outlive the current event — the
// fabric in flight, the rx pipeline, an RNR queue, a retransmit timer —
// takes a ref and drops it when done, and the message recycles at zero.
// Data/Tail are views into caller-owned buffers; the pool never owns them.
type wireMsg struct {
	Kind         wireKind
	SrcQP, DstQP int
	Seq          uint64 // per-QP sequence for acks and dedup
	Addr         int64  // target address (write/read)
	N            int    // payload length
	Data         []byte // nil for timing-only payloads
	Tail         []byte // sparse image trailer, persisted at Addr+N-len(Tail)
	Imm          uint32 // immediate value (write-imm)
	Flush        bool   // piggy-backed native flush request
	Tag          uint64 // notify tag

	nic       *NIC
	refs      int
	releaseFn func() // pre-bound unref, handed to the fabric as release hook
	// xrel marks a pooled transfer clone (CloneForTransferPooled): it fires
	// when the receiver's last reference drops, returning the clone's slab
	// envelope — and with it this struct — to the fabric for reuse.
	xrel func()
}

// newWireMsg returns a pooled message with one reference, owned by the
// caller. Passing it to post/postAt transfers that reference.
func (n *NIC) newWireMsg() *wireMsg {
	if l := len(n.wmFree); l > 0 {
		m := n.wmFree[l-1]
		n.wmFree = n.wmFree[:l-1]
		m.refs = 1
		return m
	}
	m := &wireMsg{nic: n, refs: 1}
	m.releaseFn = func() { m.unref() }
	return m
}

// CloneForTransfer implements fabric.Transferable: when a message crosses
// between engine partitions the fabric detaches it from the sending NIC's
// pool with a deep copy. The clone has no owning NIC, so the receiver's
// ref/unref calls are no-ops and the garbage collector owns its lifetime;
// Data and Tail are copied because the originals view sender buffers that
// the sender is free to reuse the moment its release hook fires.
func (m *wireMsg) CloneForTransfer() interface{} {
	c := &wireMsg{}
	*c = *m
	c.nic, c.refs, c.releaseFn = nil, 0, nil
	if m.Data != nil {
		c.Data = append([]byte(nil), m.Data...)
	}
	if m.Tail != nil {
		c.Tail = append([]byte(nil), m.Tail...)
	}
	return c
}

// CloneForTransferPooled implements fabric.TransferPooled: like
// CloneForTransfer, but the clone struct recycles through the fabric's
// transfer slab. prev is the clone this slab slot carried on its previous
// crossing (nil on the first); its struct is reused, but Data/Tail are
// always copied fresh — receivers retain those slices past the reference
// count (deferred PCIe applies, Arrival/Recv channel pushes, read futures),
// so buffer reuse would corrupt messages still being consumed. The clone
// carries one reference for the in-flight delivery; receiver-side ref/unref
// count it like a pool-owned message, and release fires at zero.
func (m *wireMsg) CloneForTransferPooled(prev interface{}, release func()) interface{} {
	c, _ := prev.(*wireMsg)
	if c == nil {
		c = &wireMsg{}
	}
	*c = *m
	c.nic, c.refs, c.releaseFn = nil, 1, nil
	c.xrel = release
	if m.Data != nil {
		c.Data = append([]byte(nil), m.Data...)
	}
	if m.Tail != nil {
		c.Tail = append([]byte(nil), m.Tail...)
	}
	return c
}

// DropTransferRef implements fabric.TransferRef (the fabric's delivery
// reference on a pooled clone).
func (m *wireMsg) DropTransferRef() { m.unref() }

// ref and unref count references for pool-owned messages and pooled
// transfer clones; they are no-ops for caller-constructed (unpooled)
// messages, which have no owner and are garbage-collected as before.
func (m *wireMsg) ref() {
	if m.nic != nil || m.xrel != nil {
		m.refs++
	}
}

func (m *wireMsg) unref() {
	if m.nic == nil && m.xrel == nil {
		return
	}
	m.refs--
	if m.refs > 0 {
		return
	}
	if m.refs < 0 {
		panic("rnic: wireMsg over-released")
	}
	if rel := m.xrel; rel != nil {
		// Pooled transfer clone: drop the buffer views (fresh copies come
		// with the next crossing) and hand the struct back to its slab slot.
		m.Data, m.Tail, m.xrel = nil, nil, nil
		rel()
		return
	}
	*m = wireMsg{nic: m.nic, releaseFn: m.releaseFn}
	m.nic.wmFree = append(m.nic.wmFree, m)
}

// Arrival is delivered on QP.Arrivals when a one-sided write lands in
// receiver memory, modelling what a polling server discovers.
type Arrival struct {
	Addr int64
	N    int
	Data []byte
	// At is when the data became CPU-visible.
	At sim.Time
	// Durable is when (or whether) the data is persistent: zero means the
	// data sits volatile in the LLC (DDIO) and needs a CPU flush.
	Durable sim.Time
	SrcQP   int
}

// Recv is delivered on QP.RecvCQ for two-sided operations and write-imm.
type Recv struct {
	// Addr is the receive-buffer (send) or target (write-imm) address.
	Addr int64
	N    int
	Data []byte
	Imm  uint32
	// At is when the completion was raised.
	At sim.Time
	// Durable is when the payload is persistent (zero: not persistent).
	Durable sim.Time
	// LogAddr is where an SFlush deposited the payload in PM (else -1).
	LogAddr int64
	SrcQP   int
	IsImm   bool
}

// RecvBuf is a posted receive buffer.
type RecvBuf struct {
	Addr int64
	Len  int
}
