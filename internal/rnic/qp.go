package rnic

import (
	"fmt"

	"prdma/internal/sim"
)

// QP is a queue pair: one endpoint of an RDMA connection.
type QP struct {
	nic       *NIC
	ID        int
	Transport Transport

	remoteNIC string
	remoteQP  int

	// RecvCQ delivers two-sided completions (send, write-imm).
	RecvCQ *sim.Chan[Recv]
	// Arrivals delivers one-sided write landings for polling servers.
	Arrivals *sim.Chan[Arrival]

	// FlushSink, set on a server-side QP, lets the NIC autonomously
	// reserve redo-log space for native SFlush operations.
	FlushSink func(n int) int64

	// FlushProbe is a sender-side PM address used by the read-after-write
	// emulation of SFlush (any registered PM address on the peer works:
	// the read drains the QP's pending DMA regardless of address).
	FlushProbe int64

	// ChainNext, set on a server-side QP, makes the NIC forward inbound
	// flush-flagged writes to the next replica without CPU involvement —
	// the HyperLoop-style group offload the paper discusses in §4.5. The
	// flush ACK returns to the origin only once the local persist AND the
	// downstream chain have completed, so one ACK certifies the whole
	// group. ChainNext must be a client-side QP owned by the same NIC.
	ChainNext *QP

	recvBufs     []RecvBuf
	pendingSends []*wireMsg

	seq      uint64
	acks     map[uint64]*sim.Future[sim.Time]
	flushes  map[uint64]*sim.Future[sim.Time]
	reads    map[uint64]*sim.Future[[]byte]
	notifies map[uint64]*sim.Future[sim.Time]
	// retryBySeq tracks the live retransmit job per in-flight RC message so
	// the completion that settles it can release the job (and its message
	// reference) immediately instead of at the next 100 ms timer tick.
	retryBySeq map[uint64]*retryJob
	// pendingNotify buffers tags that arrived before ExpectNotify.
	pendingNotify []uint64
	// expected is the next fresh RC request sequence this QP will execute.
	// Requests below it are retransmitted duplicates (re-acknowledge, do not
	// re-apply); requests above it are out-of-order — an earlier request on
	// the connection was lost and is still retransmitting — and are dropped,
	// as a real RC responder NAKs a PSN gap. Executing ahead of a gap would
	// let a flush acknowledgement cover a hole in the redo log.
	expected uint64

	// lastDurable is the durability horizon of inbound operations on this
	// QP: reads (and therefore flush emulation) wait for it.
	lastDurable sim.Time

	dead bool
}

// NIC returns the owning NIC.
func (q *QP) NIC() *NIC { return q.nic }

// RemoteName returns the peer NIC's fabric name.
func (q *QP) RemoteName() string { return q.remoteNIC }

// Dead reports whether the QP was destroyed by a crash.
func (q *QP) Dead() bool { return q.dead }

func (q *QP) nextSeq() uint64 {
	q.seq++
	return q.seq
}

// wireSize is payload plus per-message header overhead.
func (q *QP) wireSize(n int) int { return q.nic.Params.HeaderBytes + n }

// retryJob is a pooled retransmit timer for one RC message. It holds one
// reference to the message (the caller's, taken over by reliablePost) until
// the transfer settles, the QP dies, or the retry budget is exhausted, and
// re-arms itself via its pre-bound thunk, so the reliability path allocates
// nothing in the steady state. settleRetry releases the job as soon as the
// settling completion arrives; the already-armed timer then fires into a
// stale-swallow (the job may have been reused by then) instead of attempting.
type retryJob struct {
	q       *QP
	m       *wireMsg
	size    int
	tries   int
	stale   int // armed timer fires to swallow after an early settle
	settled interface{ Done() bool }
	fn      func()
}

func (n *NIC) newRetryJob() *retryJob {
	if l := len(n.retryFree); l > 0 {
		j := n.retryFree[l-1]
		n.retryFree = n.retryFree[:l-1]
		return j
	}
	j := &retryJob{}
	j.fn = func() { j.timerFire() }
	return j
}

func (j *retryJob) finish() {
	m, q := j.m, j.q
	n := q.nic
	if q.retryBySeq[m.Seq] == j {
		delete(q.retryBySeq, m.Seq)
	}
	j.m, j.q, j.settled = nil, nil, nil
	n.retryFree = append(n.retryFree, j)
	m.unref()
}

// settleRetry releases the retransmit job for seq if f is the future it was
// waiting on. Called from the completion paths (ACK, flush ACK, read
// response); the future identity check keeps a plain ACK from settling a
// flush-guarded job, whose retransmits must continue until the flush ACK.
func (q *QP) settleRetry(seq uint64, f interface{ Done() bool }) {
	j, ok := q.retryBySeq[seq]
	if !ok || j.settled != f {
		return
	}
	j.stale++ // exactly one armed timer outstanding: swallow it
	j.finish()
}

// timerFire is the retransmit-timer entry point: it discounts fires armed by
// a previous, already-settled incarnation of this (pooled) job.
func (j *retryJob) timerFire() {
	if j.stale > 0 {
		j.stale--
		return
	}
	j.attempt()
}

func (j *retryJob) attempt() {
	q := j.q
	n := q.nic
	if q.dead || j.settled.Done() {
		j.finish()
		return
	}
	retries := n.Params.RetryCount
	if retries <= 0 {
		retries = 7
	}
	if j.tries > retries {
		// Retry budget exhausted: the QP enters the error state,
		// exactly as InfiniBand retry_cnt exhaustion does. The
		// application layer re-establishes the connection.
		q.dead = true
		if n.Trace != nil {
			n.Trace("rnic", "%s: qp=%d retry budget exhausted (seq=%d) -> error state", n.Name, q.ID, j.m.Seq)
		}
		j.finish()
		return
	}
	if j.tries > 0 {
		n.Retransmits++
		if n.Trace != nil {
			n.Trace("rnic", "%s: retransmit #%d seq=%d qp=%d", n.Name, j.tries, j.m.Seq, q.ID)
		}
	}
	j.m.ref()
	n.post(q.remoteNIC, j.m, j.size)
	j.tries++
	n.K.AfterFuncMonotonic(n.Params.RetransmitInterval, j.fn)
}

// reliablePost transmits an RC message and retransmits it every
// RetransmitInterval until `settled` reports completion or the QP dies.
// The receiver admits requests strictly in sequence order (see QP.expected):
// duplicates are re-acknowledged without re-applying, and requests ahead of
// a loss-induced gap are dropped until the retransmit fills it — RC's
// in-order execution semantics. Takes over the caller's reference to m.
func (q *QP) reliablePost(m *wireMsg, size int, settled interface{ Done() bool }) {
	j := q.nic.newRetryJob()
	j.q, j.m, j.size, j.tries, j.settled = q, m, size, 0, settled
	q.retryBySeq[m.Seq] = j
	j.attempt()
}

// PostRecv posts a receive buffer. Buffered sends that arrived while no
// buffer was available are placed immediately (RNR retry resolution).
func (q *QP) PostRecv(addr int64, length int) {
	buf := RecvBuf{Addr: addr, Len: length}
	if len(q.pendingSends) > 0 {
		m := q.pendingSends[0]
		q.pendingSends = q.pendingSends[1:]
		q.nic.placeSend(q, m, buf)
		m.unref() // drop the RNR-queue retention
		return
	}
	q.recvBufs = append(q.recvBufs, buf)
}

// localCompleteFuture returns a future resolved when the message has left
// the local NIC (the completion semantics of UC/UD). Takes over the
// caller's reference to m.
func (q *QP) localCompleteFuture(m *wireMsg, size int) *sim.Future[sim.Time] {
	f := sim.NewFuture[sim.Time](q.nic.K)
	done := q.nic.tx.Reserve(q.nic.Params.ProcPerWQE)
	epoch := q.nic.epoch
	n := q.nic
	n.K.Schedule(done, func() {
		if n.epoch != epoch {
			m.unref()
			return
		}
		txDone := n.EP.SendPooled(q.remoteNIC, size, m, m.releaseFn)
		n.K.Schedule(txDone, func() { f.Complete(n.K.Now()) })
	})
	return f
}

// WriteAsync posts a one-sided write of n bytes to remote address raddr and
// returns a future resolved at the work completion: the RC ACK (data staged
// in remote SRAM — not durable!), or local wire-out for UC/UD.
func (q *QP) WriteAsync(raddr int64, n int, data []byte) *sim.Future[sim.Time] {
	return q.WriteTailAsync(raddr, n, data, nil)
}

// WriteTailAsync is WriteAsync for a sparse image: data lands at raddr and
// tail at raddr+n-len(tail); the gap between them is timed like any other
// byte but never materialized (see pmem.PersistSegs). A nil tail is a plain
// write. The simulated wire still carries n bytes either way — sparseness
// elides host-memory work, not modeled traffic, so results are identical.
func (q *QP) WriteTailAsync(raddr int64, n int, data, tail []byte) *sim.Future[sim.Time] {
	m := q.nic.newWireMsg()
	m.Kind, m.SrcQP, m.DstQP, m.Seq = wWrite, q.ID, q.remoteQP, q.nextSeq()
	m.Addr, m.N, m.Data, m.Tail = raddr, n, data, tail
	if q.Transport != RC {
		return q.localCompleteFuture(m, q.wireSize(n))
	}
	f := sim.NewFuture[sim.Time](q.nic.K)
	q.acks[m.Seq] = f
	q.reliablePost(m, q.wireSize(n), f)
	return f
}

// Write posts a write and blocks p until the work completion.
func (q *QP) Write(p *sim.Proc, raddr int64, n int, data []byte) sim.Time {
	return q.WriteAsync(raddr, n, data).Wait(p)
}

// WriteImmAsync is WriteAsync with an immediate value that raises a receive
// completion at the remote CPU.
func (q *QP) WriteImmAsync(raddr int64, n int, data []byte, imm uint32) *sim.Future[sim.Time] {
	m := q.nic.newWireMsg()
	m.Kind, m.SrcQP, m.DstQP, m.Seq = wWriteImm, q.ID, q.remoteQP, q.nextSeq()
	m.Addr, m.N, m.Data, m.Imm = raddr, n, data, imm
	if q.Transport != RC {
		return q.localCompleteFuture(m, q.wireSize(n))
	}
	f := sim.NewFuture[sim.Time](q.nic.K)
	q.acks[m.Seq] = f
	q.reliablePost(m, q.wireSize(n), f)
	return f
}

// WriteImm posts a write-with-immediate and blocks until the completion.
func (q *QP) WriteImm(p *sim.Proc, raddr int64, n int, data []byte, imm uint32) sim.Time {
	return q.WriteImmAsync(raddr, n, data, imm).Wait(p)
}

// WriteFlushAsync posts a write followed by a WFlush (RC only). The returned
// future resolves when the data is durable in the remote PM (T_B).
//
// In native mode the flush piggybacks on the write and the remote NIC ACKs
// at persist completion. In emulated mode (the paper's measurement setup) a
// 1-byte RDMA read of the last written byte follows the write; RC ordering
// makes the read drain the pending DMA, so its response implies durability.
func (q *QP) WriteFlushAsync(raddr int64, n int, data []byte) *sim.Future[sim.Time] {
	return q.WriteFlushTailAsync(raddr, n, data, nil)
}

// WriteFlushTailAsync is WriteFlushAsync for a sparse image (see
// WriteTailAsync); a nil tail is a plain write+flush.
func (q *QP) WriteFlushTailAsync(raddr int64, n int, data, tail []byte) *sim.Future[sim.Time] {
	if q.Transport != RC {
		panic("rnic: WFlush requires RC")
	}
	if q.nic.Params.EmulateFlush {
		q.WriteTailAsync(raddr, n, data, tail)
		durable := sim.NewFuture[sim.Time](q.nic.K)
		rd := q.ReadAsync(raddr+int64(n)-1, 1)
		k := q.nic.K
		rd.Then(func([]byte) { durable.Complete(k.Now()) })
		return durable
	}
	m := q.nic.newWireMsg()
	m.Kind, m.SrcQP, m.DstQP, m.Seq = wWrite, q.ID, q.remoteQP, q.nextSeq()
	m.Addr, m.N, m.Data, m.Tail, m.Flush = raddr, n, data, tail, true
	f := sim.NewFuture[sim.Time](q.nic.K)
	q.flushes[m.Seq] = f
	q.reliablePost(m, q.wireSize(n), f)
	return f
}

// WriteFlush posts write+WFlush and blocks p until the data is durable.
func (q *QP) WriteFlush(p *sim.Proc, raddr int64, n int, data []byte) sim.Time {
	return q.WriteFlushAsync(raddr, n, data).Wait(p)
}

// SendAsync posts a two-sided send. The future resolves at the RC ACK or at
// local wire-out for UC/UD. UD payloads above the MTU panic; RPC layers must
// segment or avoid them (the paper caps FaSST at 4 KB for this reason).
func (q *QP) SendAsync(n int, data []byte) *sim.Future[sim.Time] {
	return q.SendTailAsync(n, data, nil)
}

// SendTailAsync is SendAsync for a sparse image (see WriteTailAsync); a nil
// tail is a plain send.
func (q *QP) SendTailAsync(n int, data, tail []byte) *sim.Future[sim.Time] {
	if q.Transport == UD && n > UDMTU {
		panic(fmt.Sprintf("rnic: UD payload %d exceeds MTU %d", n, UDMTU))
	}
	m := q.nic.newWireMsg()
	m.Kind, m.SrcQP, m.DstQP, m.Seq = wSend, q.ID, q.remoteQP, q.nextSeq()
	m.N, m.Data, m.Tail = n, data, tail
	if q.Transport != RC {
		return q.localCompleteFuture(m, q.wireSize(n))
	}
	f := sim.NewFuture[sim.Time](q.nic.K)
	q.acks[m.Seq] = f
	q.reliablePost(m, q.wireSize(n), f)
	return f
}

// Send posts a send and blocks p until the work completion.
func (q *QP) Send(p *sim.Proc, n int, data []byte) sim.Time {
	return q.SendAsync(n, data).Wait(p)
}

// SendFlushAsync posts a send followed by an SFlush (RC only). The future
// resolves when the payload is durable in the remote PM.
//
// Native mode: the remote NIC resolves the log address itself (AddrLookup),
// DMAs the payload into the redo log, and flush-ACKs at persist completion;
// the remote QP must have a FlushSink. Emulated mode: the receive buffers
// themselves live in PM, the sender waits the paper's 7 µs address-lookup
// emulation, then issues a 1-byte read against FlushProbe to drain the DMA.
func (q *QP) SendFlushAsync(n int, data []byte) *sim.Future[sim.Time] {
	return q.SendFlushTailAsync(n, data, nil)
}

// SendFlushTailAsync is SendFlushAsync for a sparse image (see
// WriteTailAsync); a nil tail is a plain send+flush.
func (q *QP) SendFlushTailAsync(n int, data, tail []byte) *sim.Future[sim.Time] {
	if q.Transport != RC {
		panic("rnic: SFlush requires RC")
	}
	if q.nic.Params.EmulateFlush {
		q.SendTailAsync(n, data, tail)
		durable := sim.NewFuture[sim.Time](q.nic.K)
		k := q.nic.K
		probe := q.FlushProbe
		k.AfterFunc(q.nic.Params.AddrLookup, func() {
			rd := q.ReadAsync(probe, 1)
			rd.Then(func([]byte) { durable.Complete(k.Now()) })
		})
		return durable
	}
	m := q.nic.newWireMsg()
	m.Kind, m.SrcQP, m.DstQP, m.Seq = wSend, q.ID, q.remoteQP, q.nextSeq()
	m.N, m.Data, m.Tail, m.Flush = n, data, tail, true
	f := sim.NewFuture[sim.Time](q.nic.K)
	q.flushes[m.Seq] = f
	q.reliablePost(m, q.wireSize(n), f)
	return f
}

// SendFlush posts send+SFlush and blocks p until durable.
func (q *QP) SendFlush(p *sim.Proc, n int, data []byte) sim.Time {
	return q.SendFlushAsync(n, data).Wait(p)
}

// ReadAsync posts a one-sided read of n bytes at remote address raddr.
func (q *QP) ReadAsync(raddr int64, n int) *sim.Future[[]byte] {
	if q.Transport == UD {
		panic("rnic: RDMA read requires a connected transport")
	}
	m := q.nic.newWireMsg()
	m.Kind, m.SrcQP, m.DstQP, m.Seq = wRead, q.ID, q.remoteQP, q.nextSeq()
	m.Addr, m.N = raddr, n
	f := sim.NewFuture[[]byte](q.nic.K)
	q.reads[m.Seq] = f
	// A read request is small; the response carries the payload. Reads are
	// idempotent: a retransmitted read is simply re-served, replacing a
	// response the fabric may have lost.
	if q.Transport == RC {
		q.reliablePost(m, q.nic.Params.HeaderBytes, f)
	} else {
		q.nic.post(q.remoteNIC, m, q.nic.Params.HeaderBytes)
	}
	return f
}

// Read posts a read and blocks p for the data.
func (q *QP) Read(p *sim.Proc, raddr int64, n int) []byte {
	return q.ReadAsync(raddr, n).Wait(p)
}

// Notify sends a small application-level notification (used by RFlush-based
// RPCs: the receiver CPU tells the sender its data is durable). It does not
// involve the remote CPU. Notifications are matched by tag and posted
// unreliably, so they stay outside the QP's request sequence space — a lost
// notify must not open a gap that stalls the peer's in-order admission.
func (q *QP) Notify(tag uint64) {
	m := q.nic.newWireMsg()
	m.Kind, m.SrcQP, m.DstQP, m.Tag = wNotify, q.ID, q.remoteQP, tag
	q.nic.post(q.remoteNIC, m, q.nic.Params.AckBytes)
}

// ExpectNotify returns a future resolved when the peer's Notify(tag)
// arrives. A notification that raced ahead resolves the future immediately.
func (q *QP) ExpectNotify(tag uint64) *sim.Future[sim.Time] {
	f := sim.NewFuture[sim.Time](q.nic.K)
	for i, t := range q.pendingNotify {
		if t == tag {
			q.pendingNotify = append(q.pendingNotify[:i], q.pendingNotify[i+1:]...)
			f.Complete(q.nic.K.Now())
			return f
		}
	}
	q.notifies[tag] = f
	return f
}
