package rnic

import "testing"

// TestCloneForTransferPooledReusesStruct pins the pooled transfer-clone
// lifecycle: the clone is a deep copy with one reference, receiver-side
// ref/unref count on it, the release hook fires exactly once at zero, and a
// later clone into the same slab slot reuses the struct.
func TestCloneForTransferPooledReusesStruct(t *testing.T) {
	src := &wireMsg{Kind: wWrite, SrcQP: 3, DstQP: 4, Seq: 9, Addr: 0x100, N: 3,
		Data: []byte{1, 2, 3}, Tail: []byte{7}}
	released := 0
	rel := func() { released++ }

	c := src.CloneForTransferPooled(nil, rel).(*wireMsg)
	if c == src || c.Kind != wWrite || c.Seq != 9 || c.refs != 1 || c.nic != nil {
		t.Fatalf("bad clone: %+v", c)
	}
	if &c.Data[0] == &src.Data[0] || &c.Tail[0] == &src.Tail[0] {
		t.Fatal("clone must not share buffers with the source")
	}
	src.Data[0] = 99 // sender reuses its buffer; the clone must not see it
	if c.Data[0] != 1 {
		t.Fatalf("clone data corrupted by sender reuse: %v", c.Data)
	}

	// A receiver retention beyond the delivery reference.
	c.ref()
	if c.refs != 2 {
		t.Fatalf("refs=%d after ref, want 2", c.refs)
	}
	c.DropTransferRef() // fabric drops its delivery reference
	if released != 0 {
		t.Fatal("released while the receiver still holds a reference")
	}
	c.unref() // receiver done
	if released != 1 {
		t.Fatalf("release fired %d times, want 1", released)
	}
	if c.Data != nil || c.Tail != nil || c.xrel != nil {
		t.Fatalf("parked clone retains buffers: %+v", c)
	}

	// The next crossing reuses the parked struct; only the Data copy is new.
	c2 := src.CloneForTransferPooled(c, rel).(*wireMsg)
	if c2 != c {
		t.Fatal("slab slot's previous clone not reused")
	}
	if c2.refs != 1 || c2.Data[0] != 99 || c2.N != 3 {
		t.Fatalf("reused clone not reinitialized: %+v", c2)
	}
}

// TestCloneForTransferPooledAllocs pins the allocation cost of a pooled
// clone: zero for timing-only messages (the vast majority of crossings),
// exactly the fresh Data/Tail copies for data-carrying ones — buffers are
// never recycled because receivers retain them past the reference count.
func TestCloneForTransferPooledAllocs(t *testing.T) {
	rel := func() {}
	nilMsg := &wireMsg{Kind: wAck, Seq: 1}
	var prev interface{} = nilMsg.CloneForTransferPooled(nil, rel)
	prev.(*wireMsg).DropTransferRef()
	if got := testing.AllocsPerRun(100, func() {
		c := nilMsg.CloneForTransferPooled(prev, rel)
		c.(*wireMsg).DropTransferRef()
		prev = c
	}); got != 0 {
		t.Fatalf("nil-payload pooled clone allocates %.1f, want 0", got)
	}

	dataMsg := &wireMsg{Kind: wWrite, N: 64, Data: make([]byte, 64)}
	prev = dataMsg.CloneForTransferPooled(nil, rel)
	prev.(*wireMsg).DropTransferRef()
	if got := testing.AllocsPerRun(100, func() {
		c := dataMsg.CloneForTransferPooled(prev, rel)
		c.(*wireMsg).DropTransferRef()
		prev = c
	}); got != 1 {
		t.Fatalf("data-carrying pooled clone allocates %.1f, want exactly 1 (the Data copy)", got)
	}
}
