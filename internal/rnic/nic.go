package rnic

import (
	"fmt"
	"time"

	"prdma/internal/cache"
	"prdma/internal/dram"
	"prdma/internal/fabric"
	"prdma/internal/pmem"
	"prdma/internal/sim"
)

// NIC is one RDMA network interface card.
type NIC struct {
	K      *sim.Kernel
	Name   string
	Params Params

	EP   *fabric.Endpoint
	PM   *pmem.Device
	LLC  *cache.LLC
	DRAM *dram.Memory

	// rx is the inbound message pipeline, tx the WQE-processing pipeline,
	// pcie the DMA engine. All FIFO resources.
	rx   *sim.Resource
	tx   *sim.Resource
	pcie *sim.Resource

	qps    map[int]*QP
	nextQP int

	mrs []MR

	// Free lists for the data plane: wire messages, WQE-processing thunks,
	// inbound-processing thunks, and retransmit timers. All pre-bind their
	// event closure once, so the steady-state send/receive path allocates
	// nothing. Single-threaded per kernel, so no sync.
	wmFree    []*wireMsg
	txFree    []*txJob
	rxFree    []*rxJob
	retryFree []*retryJob
	jobFree   []*nicJob

	// epoch invalidates in-flight receive-side work on crash (the data in
	// the NIC's volatile SRAM and its pending DMA chain is lost).
	epoch int

	// Trace, when set, receives high-signal model events (see package
	// trace): message staging, flush ACKs, retransmissions, crashes,
	// protection faults.
	Trace func(cat, format string, args ...interface{})

	// Stats.
	StagedMsgs       int64 // messages that touched SRAM
	FlushAcks        int64
	Retransmits      int64
	DroppedStale     int64 // messages for dead QPs
	OutOfOrderDrops  int64 // RC requests NAKed ahead of a PSN gap
	AccessViolations int64 // one-sided ops that failed MR protection
}

// MR is a registered memory region.
type MR struct {
	Base int64
	Len  int64
	Kind MemKind
	// RemoteWrite/RemoteRead grant one-sided access, as ibv_reg_mr access
	// flags do. RegisterMR grants both; RegisterMRProt does not.
	RemoteWrite bool
	RemoteRead  bool
}

// New creates a NIC attached to net under the given endpoint name.
func New(k *sim.Kernel, name string, net *fabric.Network, pm *pmem.Device, llc *cache.LLC, mem *dram.Memory, p Params) *NIC {
	n := &NIC{
		K: k, Name: name, Params: p,
		PM: pm, LLC: llc, DRAM: mem,
		rx: sim.NewResource(k), tx: sim.NewResource(k), pcie: sim.NewResource(k),
		qps: make(map[int]*QP),
	}
	// Attach on the host's kernel: identical to Attach on a single-kernel
	// deployment, and the endpoint's partition when the host lives on one
	// kernel of a multi-kernel engine.
	n.EP = net.AttachOn(k, name, n.handleWire)
	return n
}

// RegisterMR registers [base, base+len) as kind memory with full remote
// access.
func (n *NIC) RegisterMR(base, length int64, kind MemKind) MR {
	mr := MR{Base: base, Len: length, Kind: kind, RemoteWrite: true, RemoteRead: true}
	n.mrs = append(n.mrs, mr)
	return mr
}

// RegisterMRProt registers a region with explicit access flags. Later
// registrations take precedence over earlier overlapping ones, so a
// read-only window can be carved out of a full-access region.
func (n *NIC) RegisterMRProt(base, length int64, kind MemKind, remoteWrite, remoteRead bool) MR {
	mr := MR{Base: base, Len: length, Kind: kind, RemoteWrite: remoteWrite, RemoteRead: remoteRead}
	n.mrs = append([]MR{mr}, n.mrs...)
	return mr
}

// lookupMR resolves the MR covering addr. Unregistered addresses panic:
// that is always a protocol bug in a model this controlled.
func (n *NIC) lookupMR(addr int64) MR {
	for _, mr := range n.mrs {
		if addr >= mr.Base && addr < mr.Base+mr.Len {
			return mr
		}
	}
	panic(fmt.Sprintf("rnic(%s): access to unregistered address %#x", n.Name, addr))
}

// mrKind resolves the memory kind of addr.
func (n *NIC) mrKind(addr int64) MemKind {
	return n.lookupMR(addr).Kind
}

// checkAccess enforces the MR access flags for a one-sided operation:
// a violation drops the request and moves the target QP into the error
// state, which is how a real RNIC NAKs a protection fault.
func (n *NIC) checkAccess(q *QP, addr int64, write bool) bool {
	mr := n.lookupMR(addr)
	ok := mr.RemoteRead
	if write {
		ok = mr.RemoteWrite
	}
	if !ok {
		n.AccessViolations++
		q.dead = true
		if n.Trace != nil {
			n.Trace("rnic", "%s: PROTECTION FAULT addr=%#x write=%v qp=%d -> error state", n.Name, addr, write, q.ID)
		}
	}
	return ok
}

// pcieCost is the DMA transfer time for n bytes.
func (n *NIC) pcieCost(size int) time.Duration {
	c := sim.CostModel{Base: n.Params.PCIeBase, BytesPerSec: n.Params.PCIeBytesPerSec}
	return c.Cost(size)
}

// CreateQP allocates a queue pair.
func (n *NIC) CreateQP(t Transport) *QP {
	n.nextQP++
	q := &QP{
		nic: n, ID: n.nextQP, Transport: t,
		RecvCQ:   sim.NewChan[Recv](n.K),
		Arrivals: sim.NewChan[Arrival](n.K),
		acks:     make(map[uint64]*sim.Future[sim.Time]),
		flushes:  make(map[uint64]*sim.Future[sim.Time]),
		reads:    make(map[uint64]*sim.Future[[]byte]),
		notifies: make(map[uint64]*sim.Future[sim.Time]),
		expected: 1,

		retryBySeq: make(map[uint64]*retryJob),
	}
	n.qps[q.ID] = q
	return q
}

// Connect pairs two QPs (they must use the same transport).
func Connect(a, b *QP) {
	if a.Transport != b.Transport {
		panic("rnic: transport mismatch in Connect")
	}
	a.remoteNIC, a.remoteQP = b.nic.Name, b.ID
	b.remoteNIC, b.remoteQP = a.nic.Name, a.ID
}

// Crash models a host power failure from the NIC's perspective: all staged
// SRAM contents and pending receive-side work die, all QPs are destroyed,
// and the endpoint stops accepting traffic until Restart.
func (n *NIC) Crash() {
	if n.Trace != nil {
		n.Trace("rnic", "%s: CRASH (epoch %d -> %d), %d QPs destroyed", n.Name, n.epoch, n.epoch+1, len(n.qps))
	}
	n.epoch++
	for _, q := range n.qps {
		q.dead = true
	}
	n.qps = make(map[int]*QP)
	n.EP.SetUp(false)
	n.rx.Reset()
	n.tx.Reset()
	n.pcie.Reset()
}

// Restart brings the endpoint back up; callers re-create QPs and MRs.
func (n *NIC) Restart() {
	if n.Trace != nil {
		n.Trace("rnic", "%s: restart (epoch %d)", n.Name, n.epoch)
	}
	n.EP.SetUp(true)
	n.mrs = nil
}

// Epoch returns the crash epoch.
func (n *NIC) Epoch() int { return n.epoch }

// txJob is a pooled, pre-bound WQE-processing event: post fills it in and
// schedules fn, avoiding a closure per posted message.
type txJob struct {
	n     *NIC
	dst   string
	m     *wireMsg
	size  int
	epoch int
	fn    func()
}

func (n *NIC) newTxJob() *txJob {
	if l := len(n.txFree); l > 0 {
		j := n.txFree[l-1]
		n.txFree = n.txFree[:l-1]
		return j
	}
	j := &txJob{n: n}
	j.fn = func() { j.run() }
	return j
}

func (j *txJob) run() {
	n, dst, m, size, epoch := j.n, j.dst, j.m, j.size, j.epoch
	j.m, j.dst = nil, ""
	n.txFree = append(n.txFree, j)
	if n.epoch != epoch {
		m.unref() // message died in the crashed NIC's queues
		return
	}
	// The fabric takes over our reference and drops it when the message is
	// delivered (after the handler returns) or lost.
	n.EP.SendPooled(dst, size, m, m.releaseFn)
}

// post runs a WQE through the tx pipeline and puts the message on the wire.
// It takes over one reference to m.
func (n *NIC) post(dst string, m *wireMsg, wireSize int) {
	n.postJob(n.tx.Reserve(n.Params.ProcPerWQE), dst, m, wireSize)
}

// postAt is post starting no earlier than at.
func (n *NIC) postAt(at sim.Time, dst string, m *wireMsg, wireSize int) {
	n.postJob(n.tx.ReserveAt(at, n.Params.ProcPerWQE), dst, m, wireSize)
}

func (n *NIC) postJob(done sim.Time, dst string, m *wireMsg, wireSize int) {
	j := n.newTxJob()
	j.dst, j.m, j.size, j.epoch = dst, m, wireSize, n.epoch
	n.K.Schedule(done, j.fn)
}

// nicJob is the pooled receive-side event: one struct covers the memory
// applies, delivery pushes, flush ACKs, deferred reads and read responses
// that the inbound paths previously scheduled as per-message closures. A
// job recycles itself before acting, so the event it fires may immediately
// reuse the slot; every kind therefore snapshots the fields it reads first.
type nicJob struct {
	n       *NIC
	kind    uint8
	epoch   int
	q       *QP
	m       *wireMsg
	addr    int64
	nb      int
	data    []byte
	tail    []byte
	imm     uint32
	seq     uint64
	srcQP   int
	logAddr int64
	durable sim.Time
	fn      func()
}

// nicJob kinds. Each helper that creates a job sets every field its kind
// reads; fields left over from a previous use are never consulted.
const (
	jFlushAck uint8 = iota
	jApplyDRAM
	jApplyLLC
	jArrival
	jRecvImm
	jRecvSend
	jServeRead
	jReadRespDRAM
	jReadRespLLC
	jReadRespPM
)

func (n *NIC) newNICJob(kind uint8) *nicJob {
	if l := len(n.jobFree); l > 0 {
		j := n.jobFree[l-1]
		n.jobFree = n.jobFree[:l-1]
		j.kind, j.epoch = kind, n.epoch
		return j
	}
	j := &nicJob{n: n, kind: kind, epoch: n.epoch}
	j.fn = func() { j.run() }
	return j
}

func (j *nicJob) run() {
	// Snapshot and recycle first: the body below may schedule further
	// pooled work that reuses this slot.
	n, kind, epoch, q, m := j.n, j.kind, j.epoch, j.q, j.m
	addr, nb, data, tail := j.addr, j.nb, j.data, j.tail
	imm, seq, srcQP, logAddr, durable := j.imm, j.seq, j.srcQP, j.logAddr, j.durable
	j.q, j.m, j.data, j.tail = nil, nil, nil, nil
	n.jobFree = append(n.jobFree, j)

	if kind == jServeRead {
		// The deferred read retains its message across the PCIe drain; the
		// reference drops whether or not the epoch survived.
		if n.epoch == epoch {
			n.serveRead(q, m)
		}
		m.unref()
		return
	}
	if n.epoch != epoch {
		return
	}
	switch kind {
	case jFlushAck:
		n.flushAck(q, seq)
	case jApplyDRAM:
		n.DRAM.Write(addr, data)
		if tail != nil {
			n.DRAM.Write(addr+int64(nb-len(tail)), tail)
		}
	case jApplyLLC:
		n.LLC.InstallDirty(addr, nb, data)
		if tail != nil {
			n.LLC.InstallDirty(addr+int64(nb-len(tail)), len(tail), tail)
		}
	case jArrival:
		q.Arrivals.Push(Arrival{Addr: addr, N: nb, Data: data,
			At: n.K.Now(), Durable: durable, SrcQP: srcQP})
	case jRecvImm:
		q.RecvCQ.Push(Recv{Addr: addr, N: nb, Data: data, Imm: imm,
			At: n.K.Now(), Durable: durable, LogAddr: -1, SrcQP: srcQP, IsImm: true})
	case jRecvSend:
		q.RecvCQ.Push(Recv{Addr: addr, N: nb, Data: data,
			At: n.K.Now(), Durable: durable, LogAddr: logAddr, SrcQP: srcQP})
	case jReadRespDRAM, jReadRespLLC, jReadRespPM:
		rm := n.newWireMsg()
		rm.Kind, rm.DstQP, rm.SrcQP, rm.Seq, rm.N = wReadResp, q.remoteQP, q.ID, seq, nb
		switch kind {
		case jReadRespDRAM:
			rm.Data = n.DRAM.Read(addr, nb)
		case jReadRespLLC:
			rm.Data = n.LLC.Read(addr, nb)
		default:
			rm.Data = n.PM.ReadBytes(addr, nb)
		}
		n.postAt(n.K.Now(), q.remoteNIC, rm, n.Params.HeaderBytes+nb)
	}
}

// scheduleFlushAck emits the T_B flush acknowledgement for seq at `at`,
// suppressed if the NIC crashes first.
func (n *NIC) scheduleFlushAck(at sim.Time, q *QP, seq uint64) {
	j := n.newNICJob(jFlushAck)
	j.q, j.seq = q, seq
	n.K.Schedule(at, j.fn)
}

// scheduleApply stages the DMA memory effect (DRAM write or dirty-LLC
// install) of an inbound message at `at`.
func (n *NIC) scheduleApply(at sim.Time, kind uint8, addr int64, nb int, data, tail []byte) {
	j := n.newNICJob(kind)
	j.addr, j.nb, j.data, j.tail = addr, nb, data, tail
	n.K.Schedule(at, j.fn)
}

// scheduleReadResp emits the read response at `at`, fetching the payload
// from the source that kind names at fire time.
func (n *NIC) scheduleReadResp(at sim.Time, kind uint8, q *QP, addr int64, nb int, seq uint64) {
	j := n.newNICJob(kind)
	j.q, j.addr, j.nb, j.seq = q, addr, nb, seq
	n.K.Schedule(at, j.fn)
}

// rxJob is the pooled inbound counterpart of txJob.
type rxJob struct {
	n     *NIC
	m     *wireMsg
	epoch int
	fn    func()
}

func (n *NIC) newRxJob() *rxJob {
	if l := len(n.rxFree); l > 0 {
		j := n.rxFree[l-1]
		n.rxFree = n.rxFree[:l-1]
		return j
	}
	j := &rxJob{n: n}
	j.fn = func() { j.run() }
	return j
}

func (j *rxJob) run() {
	n, m, epoch := j.n, j.m, j.epoch
	j.m = nil
	n.rxFree = append(n.rxFree, j)
	if n.epoch == epoch {
		n.process(m)
	}
	m.unref()
}

// handleWire is the fabric arrival handler: it runs the message through the
// inbound pipeline and then processes it.
func (n *NIC) handleWire(at sim.Time, fm *fabric.Message) {
	m := fm.Payload.(*wireMsg)
	cost := n.Params.ProcPerWQE
	if m.Kind == wSend {
		cost += n.Params.SendExtra
	}
	done := n.rx.ReserveAt(at, cost)
	// Retain across the rx pipeline: the sender's reference dies with the
	// fabric's release hook as soon as this handler returns.
	m.ref()
	j := n.newRxJob()
	j.m, j.epoch = m, n.epoch
	n.K.Schedule(done, j.fn)
}

// process dispatches one inbound message at the current virtual time.
func (n *NIC) process(m *wireMsg) {
	q, ok := n.qps[m.DstQP]
	if !ok {
		n.DroppedStale++
		return
	}
	switch m.Kind {
	case wWrite, wWriteImm:
		n.inboundWrite(q, m)
	case wSend:
		n.inboundSend(q, m)
	case wRead:
		n.inboundRead(q, m)
	case wReadResp:
		if f, ok := q.reads[m.Seq]; ok {
			delete(q.reads, m.Seq)
			q.settleRetry(m.Seq, f)
			f.Complete(m.Data)
		}
	case wAck:
		if f, ok := q.acks[m.Seq]; ok {
			delete(q.acks, m.Seq)
			q.settleRetry(m.Seq, f)
			f.Complete(n.K.Now())
		}
	case wFlushAck:
		if f, ok := q.flushes[m.Seq]; ok {
			delete(q.flushes, m.Seq)
			q.settleRetry(m.Seq, f)
			f.Complete(n.K.Now())
		}
	case wNotify:
		if f, ok := q.notifies[m.Tag]; ok {
			delete(q.notifies, m.Tag)
			f.Complete(n.K.Now())
		} else {
			q.pendingNotify = append(q.pendingNotify, m.Tag)
		}
	}
}

// rcAck sends the RC acknowledgement: data has reached NIC SRAM (T_A).
func (n *NIC) rcAck(q *QP, seq uint64) {
	if q.Transport != RC {
		return
	}
	m := n.newWireMsg()
	m.Kind, m.DstQP, m.SrcQP, m.Seq = wAck, q.remoteQP, q.ID, seq
	n.post(q.remoteNIC, m, n.Params.AckBytes)
}

// flushAck acknowledges durability (T_B).
func (n *NIC) flushAck(q *QP, seq uint64) {
	n.FlushAcks++
	if n.Trace != nil {
		n.Trace("rnic", "%s: flush-ack seq=%d qp=%d (durable)", n.Name, seq, q.ID)
	}
	m := n.newWireMsg()
	m.Kind, m.DstQP, m.SrcQP, m.Seq = wFlushAck, q.remoteQP, q.ID, seq
	n.post(q.remoteNIC, m, n.Params.AckBytes)
}

// inboundWrite handles write and write-imm: stage in SRAM, ACK (RC), DMA to
// the target memory, and track/ack durability.
func (n *NIC) inboundWrite(q *QP, m *wireMsg) {
	if q.Transport == RC {
		if m.Seq > q.expected {
			// Out-of-order request: an earlier request on this QP was lost
			// and is still retransmitting. Executing ahead of the gap would
			// break the durability-horizon contract (an ACKed entry could
			// sit behind a hole in the redo log), so NAK-drop it; the
			// sender's retransmit redelivers it in order.
			n.OutOfOrderDrops++
			return
		}
		if m.Seq < q.expected {
			// Duplicate from a retransmit: re-ACK (and re-issue the
			// flush ACK, which covers the durability horizon), but do
			// not re-apply the data.
			n.rcAck(q, m.Seq)
			if m.Flush {
				at := n.K.Now()
				if q.lastDurable > at {
					at = q.lastDurable
				}
				n.scheduleFlushAck(at, q, m.Seq)
			}
			return
		}
		q.expected++
	}
	if !n.checkAccess(q, m.Addr, true) {
		return // protection fault: NAK, QP error
	}
	n.StagedMsgs++
	n.rcAck(q, m.Seq) // T_A

	// Snapshot the message: m is pooled and may be recycled before the
	// events scheduled below fire.
	addr, nb, data, tail := m.Addr, m.N, m.Data, m.Tail
	seq, flush := m.Seq, m.Flush

	kind := n.mrKind(addr)
	pcieDone := n.pcie.Reserve(n.pcieCost(nb))
	epoch := n.epoch

	// The delivery (completion-queue push) job; each branch below fills in
	// the durability horizon and schedules it after the memory effect.
	dj := n.newNICJob(jArrival)
	if m.Kind == wWriteImm {
		dj.kind = jRecvImm
	}
	dj.q, dj.addr, dj.nb, dj.data = q, addr, nb, data
	dj.imm, dj.srcQP = m.Imm, m.SrcQP

	switch {
	case kind == MemDRAM:
		n.scheduleApply(pcieDone, jApplyDRAM, addr, nb, data, tail)
		dj.durable = 0
		n.K.Schedule(pcieDone, dj.fn)
	case n.Params.DDIO && !flush:
		// DDIO steers the DMA into the volatile LLC (§2.3): fast and
		// CPU-visible, but not durable until a CPU clflush. A sparse image
		// dirties the same lines as a materialized one (timing-identical
		// flushes); only the head and trailer bytes carry content.
		n.scheduleApply(pcieDone, jApplyLLC, addr, nb, data, tail)
		dj.durable = 0
		n.K.Schedule(pcieDone, dj.fn)
	default:
		var durable sim.Time
		if tail != nil {
			durable = n.PM.PersistTail(pcieDone, addr, nb, data, tail, pmem.DMA)
		} else {
			durable = n.PM.Persist(pcieDone, addr, nb, data, pmem.DMA)
		}
		if durable > q.lastDurable {
			q.lastDurable = durable
		}
		// Flush semantics (and CPU visibility for polling-based
		// persistence checks) apply to the QP's whole durability horizon:
		// the ACK implies every earlier write on the connection is
		// durable too, matching IBTA flush ordering rules. This is what
		// lets log recovery stop at the first torn entry without ever
		// dropping an acknowledged one.
		horizon := q.lastDurable
		dj.durable = horizon
		n.K.Schedule(horizon, dj.fn)
		if q.ChainNext != nil {
			// Chained QPs forward every inbound write to the next
			// replica (HyperLoop forwards the whole write stream).
			if !flush {
				q.ChainNext.WriteTailAsync(addr, nb, data, tail)
				return
			}
			// HyperLoop-style group offload (§4.5): forward the write
			// down the replica chain NIC-to-NIC and ACK the origin only
			// when the local persist and the whole downstream chain are
			// durable.
			fwd := q.ChainNext.WriteFlushTailAsync(addr, nb, data, tail)
			fwd.Then(func(sim.Time) {
				if n.epoch != epoch {
					return
				}
				at := horizon
				if now := n.K.Now(); now > at {
					at = now
				}
				n.scheduleFlushAck(at, q, seq)
			})
			return
		}
		if flush {
			ackAt := horizon
			if n.Params.AckBeforeDurable {
				ackAt = pcieDone // §2.4 bug: ACK before the media persist
			}
			n.scheduleFlushAck(ackAt, q, seq)
		}
	}
}

// inboundSend handles two-sided sends: consume a posted receive buffer, DMA
// the payload into it, raise a receive completion; with an SFlush, also
// resolve the log address and persist the payload there.
func (n *NIC) inboundSend(q *QP, m *wireMsg) {
	if q.Transport == RC {
		if m.Seq > q.expected {
			// Out-of-order: see inboundWrite. For sends, in-order admission
			// also keeps native-SFlush reservation matching exact.
			n.OutOfOrderDrops++
			return
		}
		if m.Seq < q.expected {
			n.rcAck(q, m.Seq)
			if m.Flush {
				at := n.K.Now()
				if q.lastDurable > at {
					at = q.lastDurable
				}
				// The job snapshots m.Seq now: m is pooled and may carry a
				// different message by the time the ACK fires.
				n.scheduleFlushAck(at, q, m.Seq)
			}
			return
		}
		q.expected++
	}
	n.StagedMsgs++
	n.rcAck(q, m.Seq) // T_A
	if len(q.recvBufs) == 0 {
		// Receiver-not-ready: hold in SRAM until a buffer is posted. The
		// queue retains the message past this event (released in PostRecv).
		m.ref()
		q.pendingSends = append(q.pendingSends, m)
		return
	}
	buf := q.recvBufs[0]
	q.recvBufs = q.recvBufs[1:]
	n.placeSend(q, m, buf)
}

// placeSend performs the DMA chain for a send whose buffer is known. It
// only uses m synchronously; scheduled events snapshot the fields.
func (n *NIC) placeSend(q *QP, m *wireMsg, buf RecvBuf) {
	nb, data, tail := m.N, m.Data, m.Tail
	seq, srcQP, flush := m.Seq, m.SrcQP, m.Flush
	kind := n.mrKind(buf.Addr)
	pcieDone := n.pcie.Reserve(n.pcieCost(nb))

	var visible, durable sim.Time
	switch {
	case kind == MemDRAM:
		n.scheduleApply(pcieDone, jApplyDRAM, buf.Addr, nb, data, tail)
		visible, durable = pcieDone, 0
	default:
		var d sim.Time
		if tail != nil {
			d = n.PM.PersistTail(pcieDone, buf.Addr, nb, data, tail, pmem.DMA)
		} else {
			d = n.PM.Persist(pcieDone, buf.Addr, nb, data, pmem.DMA)
		}
		if d > q.lastDurable {
			q.lastDurable = d
		}
		// Horizon semantics: see inboundWrite.
		visible, durable = q.lastDurable, q.lastDurable
	}

	logAddr := int64(-1)
	if flush && q.FlushSink != nil {
		// SFlush: the NIC parses the packet to resolve the destination
		// (AddrLookup), then a second DMA deposits the payload in the
		// redo log and persists it (paper Fig. 5, steps A and B).
		logAddr = q.FlushSink(nb)
		lookupDone := pcieDone.Add(n.Params.AddrLookup)
		dma2 := n.pcie.ReserveAt(lookupDone, n.pcieCost(nb))
		var d sim.Time
		if tail != nil {
			d = n.PM.PersistTail(dma2, logAddr, nb, data, tail, pmem.DMA)
		} else {
			d = n.PM.Persist(dma2, logAddr, nb, data, pmem.DMA)
		}
		if d > q.lastDurable {
			q.lastDurable = d
		}
		durable = q.lastDurable // horizon semantics: see inboundWrite
		ackAt := durable
		if n.Params.AckBeforeDurable {
			ackAt = dma2 // §2.4 bug: ACK before the media persist
		}
		n.scheduleFlushAck(ackAt, q, seq)
		if visible < durable {
			visible = durable
		}
	}

	j := n.newNICJob(jRecvSend)
	j.q, j.addr, j.nb, j.data = q, buf.Addr, nb, data
	j.durable, j.logAddr, j.srcQP = durable, logAddr, srcQP
	n.K.Schedule(visible, j.fn)
}

// inboundRead serves a one-sided read. Without DDIO, a read of a range with
// in-flight DMA forces/waits for the flush to PM first — this is exactly the
// mechanism the paper uses to emulate WFlush. With DDIO the read is served
// from the LLC immediately, which is why read-after-write fails as a
// persistence check (§2.4).
func (n *NIC) inboundRead(q *QP, m *wireMsg) {
	if q.Transport == RC {
		if m.Seq > q.expected {
			// Out-of-order: the read must not pass a lost earlier write —
			// that is precisely what makes read-after-write a valid flush
			// emulation. Drop it; the sender retransmits.
			n.OutOfOrderDrops++
			return
		}
		if m.Seq == q.expected {
			q.expected++
		}
		// Below expected: a retransmitted read whose response was lost.
		// Reads are idempotent — re-serve to replace the response.
	}
	// PCIe ordering: a read cannot pass DMA writes already queued in the
	// engine; defer service until the current backlog drains.
	start := n.pcie.NextFree()
	if now := n.K.Now(); now > start {
		start = now
	}
	m.ref() // retained until serveRead runs
	j := n.newNICJob(jServeRead)
	j.q, j.m = q, m
	n.K.Schedule(start, j.fn)
}

// serveRead resolves a read once the DMA engine has drained ahead of it.
// m is only used synchronously; scheduled events snapshot the fields.
func (n *NIC) serveRead(q *QP, m *wireMsg) {
	if !n.checkAccess(q, m.Addr, false) {
		return // protection fault: NAK, QP error
	}
	addr, nb, seq := m.Addr, m.N, m.Seq
	kind := n.mrKind(addr)
	switch {
	case kind == MemDRAM:
		done := n.pcie.Reserve(n.pcieCost(nb))
		n.scheduleReadResp(done, jReadRespDRAM, q, addr, nb, seq)
	case n.Params.DDIO && n.LLC.DirtyIn(addr, nb):
		// Served from cache: fast, and silently non-durable.
		done := n.pcie.Reserve(n.pcieCost(nb))
		n.scheduleReadResp(done, jReadRespLLC, q, addr, nb, seq)
	default:
		start := n.K.Now()
		if q.lastDurable > start {
			start = q.lastDurable // read flushes pending DMA first
		}
		readDone := n.PM.Read(start, addr, nb)
		pcieDone := n.pcie.ReserveAt(readDone, n.pcieCost(nb))
		n.scheduleReadResp(pcieDone, jReadRespPM, q, addr, nb, seq)
	}
}
