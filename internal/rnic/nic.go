package rnic

import (
	"fmt"
	"time"

	"prdma/internal/cache"
	"prdma/internal/dram"
	"prdma/internal/fabric"
	"prdma/internal/pmem"
	"prdma/internal/sim"
)

// NIC is one RDMA network interface card.
type NIC struct {
	K      *sim.Kernel
	Name   string
	Params Params

	EP   *fabric.Endpoint
	PM   *pmem.Device
	LLC  *cache.LLC
	DRAM *dram.Memory

	// rx is the inbound message pipeline, tx the WQE-processing pipeline,
	// pcie the DMA engine. All FIFO resources.
	rx   *sim.Resource
	tx   *sim.Resource
	pcie *sim.Resource

	qps    map[int]*QP
	nextQP int

	mrs []MR

	// epoch invalidates in-flight receive-side work on crash (the data in
	// the NIC's volatile SRAM and its pending DMA chain is lost).
	epoch int

	// Trace, when set, receives high-signal model events (see package
	// trace): message staging, flush ACKs, retransmissions, crashes,
	// protection faults.
	Trace func(cat, format string, args ...interface{})

	// Stats.
	StagedMsgs       int64 // messages that touched SRAM
	FlushAcks        int64
	Retransmits      int64
	DroppedStale     int64 // messages for dead QPs
	AccessViolations int64 // one-sided ops that failed MR protection
}

// MR is a registered memory region.
type MR struct {
	Base int64
	Len  int64
	Kind MemKind
	// RemoteWrite/RemoteRead grant one-sided access, as ibv_reg_mr access
	// flags do. RegisterMR grants both; RegisterMRProt does not.
	RemoteWrite bool
	RemoteRead  bool
}

// New creates a NIC attached to net under the given endpoint name.
func New(k *sim.Kernel, name string, net *fabric.Network, pm *pmem.Device, llc *cache.LLC, mem *dram.Memory, p Params) *NIC {
	n := &NIC{
		K: k, Name: name, Params: p,
		PM: pm, LLC: llc, DRAM: mem,
		rx: sim.NewResource(k), tx: sim.NewResource(k), pcie: sim.NewResource(k),
		qps: make(map[int]*QP),
	}
	n.EP = net.Attach(name, n.handleWire)
	return n
}

// RegisterMR registers [base, base+len) as kind memory with full remote
// access.
func (n *NIC) RegisterMR(base, length int64, kind MemKind) MR {
	mr := MR{Base: base, Len: length, Kind: kind, RemoteWrite: true, RemoteRead: true}
	n.mrs = append(n.mrs, mr)
	return mr
}

// RegisterMRProt registers a region with explicit access flags. Later
// registrations take precedence over earlier overlapping ones, so a
// read-only window can be carved out of a full-access region.
func (n *NIC) RegisterMRProt(base, length int64, kind MemKind, remoteWrite, remoteRead bool) MR {
	mr := MR{Base: base, Len: length, Kind: kind, RemoteWrite: remoteWrite, RemoteRead: remoteRead}
	n.mrs = append([]MR{mr}, n.mrs...)
	return mr
}

// lookupMR resolves the MR covering addr. Unregistered addresses panic:
// that is always a protocol bug in a model this controlled.
func (n *NIC) lookupMR(addr int64) MR {
	for _, mr := range n.mrs {
		if addr >= mr.Base && addr < mr.Base+mr.Len {
			return mr
		}
	}
	panic(fmt.Sprintf("rnic(%s): access to unregistered address %#x", n.Name, addr))
}

// mrKind resolves the memory kind of addr.
func (n *NIC) mrKind(addr int64) MemKind {
	return n.lookupMR(addr).Kind
}

// checkAccess enforces the MR access flags for a one-sided operation:
// a violation drops the request and moves the target QP into the error
// state, which is how a real RNIC NAKs a protection fault.
func (n *NIC) checkAccess(q *QP, addr int64, write bool) bool {
	mr := n.lookupMR(addr)
	ok := mr.RemoteRead
	if write {
		ok = mr.RemoteWrite
	}
	if !ok {
		n.AccessViolations++
		q.dead = true
		if n.Trace != nil {
			n.Trace("rnic", "%s: PROTECTION FAULT addr=%#x write=%v qp=%d -> error state", n.Name, addr, write, q.ID)
		}
	}
	return ok
}

// pcieCost is the DMA transfer time for n bytes.
func (n *NIC) pcieCost(size int) time.Duration {
	c := sim.CostModel{Base: n.Params.PCIeBase, BytesPerSec: n.Params.PCIeBytesPerSec}
	return c.Cost(size)
}

// CreateQP allocates a queue pair.
func (n *NIC) CreateQP(t Transport) *QP {
	n.nextQP++
	q := &QP{
		nic: n, ID: n.nextQP, Transport: t,
		RecvCQ:   sim.NewChan[Recv](n.K),
		Arrivals: sim.NewChan[Arrival](n.K),
		acks:     make(map[uint64]*sim.Future[sim.Time]),
		flushes:  make(map[uint64]*sim.Future[sim.Time]),
		reads:    make(map[uint64]*sim.Future[[]byte]),
		notifies: make(map[uint64]*sim.Future[sim.Time]),
		seen:     make(map[uint64]bool),
	}
	n.qps[q.ID] = q
	return q
}

// Connect pairs two QPs (they must use the same transport).
func Connect(a, b *QP) {
	if a.Transport != b.Transport {
		panic("rnic: transport mismatch in Connect")
	}
	a.remoteNIC, a.remoteQP = b.nic.Name, b.ID
	b.remoteNIC, b.remoteQP = a.nic.Name, a.ID
}

// Crash models a host power failure from the NIC's perspective: all staged
// SRAM contents and pending receive-side work die, all QPs are destroyed,
// and the endpoint stops accepting traffic until Restart.
func (n *NIC) Crash() {
	if n.Trace != nil {
		n.Trace("rnic", "%s: CRASH (epoch %d -> %d), %d QPs destroyed", n.Name, n.epoch, n.epoch+1, len(n.qps))
	}
	n.epoch++
	for _, q := range n.qps {
		q.dead = true
	}
	n.qps = make(map[int]*QP)
	n.EP.SetUp(false)
	n.rx.Reset()
	n.tx.Reset()
	n.pcie.Reset()
}

// Restart brings the endpoint back up; callers re-create QPs and MRs.
func (n *NIC) Restart() {
	if n.Trace != nil {
		n.Trace("rnic", "%s: restart (epoch %d)", n.Name, n.epoch)
	}
	n.EP.SetUp(true)
	n.mrs = nil
}

// Epoch returns the crash epoch.
func (n *NIC) Epoch() int { return n.epoch }

// post runs a WQE through the tx pipeline and puts the message on the wire.
func (n *NIC) post(dst string, m *wireMsg, wireSize int) {
	done := n.tx.Reserve(n.Params.ProcPerWQE)
	epoch := n.epoch
	n.K.Schedule(done, func() {
		if n.epoch != epoch {
			return
		}
		n.EP.Send(&fabric.Message{To: dst, Size: wireSize, Payload: m})
	})
}

// postAt is post starting no earlier than at.
func (n *NIC) postAt(at sim.Time, dst string, m *wireMsg, wireSize int) {
	done := n.tx.ReserveAt(at, n.Params.ProcPerWQE)
	epoch := n.epoch
	n.K.Schedule(done, func() {
		if n.epoch != epoch {
			return
		}
		n.EP.Send(&fabric.Message{To: dst, Size: wireSize, Payload: m})
	})
}

// handleWire is the fabric arrival handler: it runs the message through the
// inbound pipeline and then processes it.
func (n *NIC) handleWire(at sim.Time, fm *fabric.Message) {
	m := fm.Payload.(*wireMsg)
	cost := n.Params.ProcPerWQE
	if m.Kind == wSend {
		cost += n.Params.SendExtra
	}
	done := n.rx.ReserveAt(at, cost)
	epoch := n.epoch
	n.K.Schedule(done, func() {
		if n.epoch != epoch {
			return
		}
		n.process(m)
	})
}

// process dispatches one inbound message at the current virtual time.
func (n *NIC) process(m *wireMsg) {
	q, ok := n.qps[m.DstQP]
	if !ok {
		n.DroppedStale++
		return
	}
	switch m.Kind {
	case wWrite, wWriteImm:
		n.inboundWrite(q, m)
	case wSend:
		n.inboundSend(q, m)
	case wRead:
		n.inboundRead(q, m)
	case wReadResp:
		if f, ok := q.reads[m.Seq]; ok {
			delete(q.reads, m.Seq)
			f.Complete(m.Data)
		}
	case wAck:
		if f, ok := q.acks[m.Seq]; ok {
			delete(q.acks, m.Seq)
			f.Complete(n.K.Now())
		}
	case wFlushAck:
		if f, ok := q.flushes[m.Seq]; ok {
			delete(q.flushes, m.Seq)
			f.Complete(n.K.Now())
		}
	case wNotify:
		if f, ok := q.notifies[m.Tag]; ok {
			delete(q.notifies, m.Tag)
			f.Complete(n.K.Now())
		} else {
			q.pendingNotify = append(q.pendingNotify, m.Tag)
		}
	}
}

// rcAck sends the RC acknowledgement: data has reached NIC SRAM (T_A).
func (n *NIC) rcAck(q *QP, seq uint64) {
	if q.Transport != RC {
		return
	}
	n.post(q.remoteNIC, &wireMsg{Kind: wAck, DstQP: q.remoteQP, SrcQP: q.ID, Seq: seq}, n.Params.AckBytes)
}

// flushAck acknowledges durability (T_B).
func (n *NIC) flushAck(q *QP, seq uint64) {
	n.FlushAcks++
	if n.Trace != nil {
		n.Trace("rnic", "%s: flush-ack seq=%d qp=%d (durable)", n.Name, seq, q.ID)
	}
	n.post(q.remoteNIC, &wireMsg{Kind: wFlushAck, DstQP: q.remoteQP, SrcQP: q.ID, Seq: seq}, n.Params.AckBytes)
}

// inboundWrite handles write and write-imm: stage in SRAM, ACK (RC), DMA to
// the target memory, and track/ack durability.
func (n *NIC) inboundWrite(q *QP, m *wireMsg) {
	if q.Transport == RC {
		if q.seen[m.Seq] {
			// Duplicate from a retransmit: re-ACK (and re-issue the
			// flush ACK, which covers the durability horizon), but do
			// not re-apply the data.
			n.rcAck(q, m.Seq)
			if m.Flush {
				at := n.K.Now()
				if q.lastDurable > at {
					at = q.lastDurable
				}
				epoch := n.epoch
				n.K.Schedule(at, func() {
					if n.epoch == epoch {
						n.flushAck(q, m.Seq)
					}
				})
			}
			return
		}
		q.seen[m.Seq] = true
	}
	if !n.checkAccess(q, m.Addr, true) {
		return // protection fault: NAK, QP error
	}
	n.StagedMsgs++
	n.rcAck(q, m.Seq) // T_A

	kind := n.mrKind(m.Addr)
	pcieDone := n.pcie.Reserve(n.pcieCost(m.N))
	epoch := n.epoch

	deliver := func(at sim.Time, durable sim.Time) {
		n.K.Schedule(at, func() {
			if n.epoch != epoch {
				return
			}
			if m.Kind == wWriteImm {
				q.RecvCQ.Push(Recv{Addr: m.Addr, N: m.N, Data: m.Data, Imm: m.Imm,
					At: n.K.Now(), Durable: durable, LogAddr: -1, SrcQP: m.SrcQP, IsImm: true})
			} else {
				q.Arrivals.Push(Arrival{Addr: m.Addr, N: m.N, Data: m.Data,
					At: n.K.Now(), Durable: durable, SrcQP: m.SrcQP})
			}
		})
	}

	switch {
	case kind == MemDRAM:
		n.K.Schedule(pcieDone, func() {
			if n.epoch != epoch {
				return
			}
			n.DRAM.Write(m.Addr, m.Data)
		})
		deliver(pcieDone, 0)
	case n.Params.DDIO && !m.Flush:
		// DDIO steers the DMA into the volatile LLC (§2.3): fast and
		// CPU-visible, but not durable until a CPU clflush.
		n.K.Schedule(pcieDone, func() {
			if n.epoch != epoch {
				return
			}
			n.LLC.InstallDirty(m.Addr, m.N, m.Data)
		})
		deliver(pcieDone, 0)
	default:
		durable := n.PM.Persist(pcieDone, m.Addr, m.N, m.Data, pmem.DMA)
		if durable > q.lastDurable {
			q.lastDurable = durable
		}
		// Flush semantics (and CPU visibility for polling-based
		// persistence checks) apply to the QP's whole durability horizon:
		// the ACK implies every earlier write on the connection is
		// durable too, matching IBTA flush ordering rules. This is what
		// lets log recovery stop at the first torn entry without ever
		// dropping an acknowledged one.
		horizon := q.lastDurable
		deliver(horizon, horizon)
		if q.ChainNext != nil {
			// Chained QPs forward every inbound write to the next
			// replica (HyperLoop forwards the whole write stream).
			if !m.Flush {
				q.ChainNext.WriteAsync(m.Addr, m.N, m.Data)
				return
			}
			// HyperLoop-style group offload (§4.5): forward the write
			// down the replica chain NIC-to-NIC and ACK the origin only
			// when the local persist and the whole downstream chain are
			// durable.
			fwd := q.ChainNext.WriteFlushAsync(m.Addr, m.N, m.Data)
			fwd.Then(func(sim.Time) {
				if n.epoch != epoch {
					return
				}
				at := horizon
				if now := n.K.Now(); now > at {
					at = now
				}
				n.K.Schedule(at, func() {
					if n.epoch == epoch {
						n.flushAck(q, m.Seq)
					}
				})
			})
			return
		}
		if m.Flush {
			ackAt := horizon
			if n.Params.AckBeforeDurable {
				ackAt = pcieDone // §2.4 bug: ACK before the media persist
			}
			n.K.Schedule(ackAt, func() {
				if n.epoch != epoch {
					return
				}
				n.flushAck(q, m.Seq)
			})
		}
	}
}

// inboundSend handles two-sided sends: consume a posted receive buffer, DMA
// the payload into it, raise a receive completion; with an SFlush, also
// resolve the log address and persist the payload there.
func (n *NIC) inboundSend(q *QP, m *wireMsg) {
	if q.Transport == RC {
		if q.seen[m.Seq] {
			n.rcAck(q, m.Seq)
			if m.Flush {
				at := n.K.Now()
				if q.lastDurable > at {
					at = q.lastDurable
				}
				epoch := n.epoch
				n.K.Schedule(at, func() {
					if n.epoch == epoch {
						n.flushAck(q, m.Seq)
					}
				})
			}
			return
		}
		q.seen[m.Seq] = true
	}
	n.StagedMsgs++
	n.rcAck(q, m.Seq) // T_A
	if len(q.recvBufs) == 0 {
		// Receiver-not-ready: hold in SRAM until a buffer is posted.
		q.pendingSends = append(q.pendingSends, m)
		return
	}
	buf := q.recvBufs[0]
	q.recvBufs = q.recvBufs[1:]
	n.placeSend(q, m, buf)
}

// placeSend performs the DMA chain for a send whose buffer is known.
func (n *NIC) placeSend(q *QP, m *wireMsg, buf RecvBuf) {
	epoch := n.epoch
	kind := n.mrKind(buf.Addr)
	pcieDone := n.pcie.Reserve(n.pcieCost(m.N))

	var visible, durable sim.Time
	switch {
	case kind == MemDRAM:
		n.K.Schedule(pcieDone, func() {
			if n.epoch != epoch {
				return
			}
			n.DRAM.Write(buf.Addr, m.Data)
		})
		visible, durable = pcieDone, 0
	default:
		d := n.PM.Persist(pcieDone, buf.Addr, m.N, m.Data, pmem.DMA)
		if d > q.lastDurable {
			q.lastDurable = d
		}
		// Horizon semantics: see inboundWrite.
		visible, durable = q.lastDurable, q.lastDurable
	}

	logAddr := int64(-1)
	if m.Flush && q.FlushSink != nil {
		// SFlush: the NIC parses the packet to resolve the destination
		// (AddrLookup), then a second DMA deposits the payload in the
		// redo log and persists it (paper Fig. 5, steps A and B).
		logAddr = q.FlushSink(m.N)
		lookupDone := pcieDone.Add(n.Params.AddrLookup)
		dma2 := n.pcie.ReserveAt(lookupDone, n.pcieCost(m.N))
		d := n.PM.Persist(dma2, logAddr, m.N, m.Data, pmem.DMA)
		if d > q.lastDurable {
			q.lastDurable = d
		}
		durable = q.lastDurable // horizon semantics: see inboundWrite
		ackAt := durable
		if n.Params.AckBeforeDurable {
			ackAt = dma2 // §2.4 bug: ACK before the media persist
		}
		n.K.Schedule(ackAt, func() {
			if n.epoch != epoch {
				return
			}
			n.flushAck(q, m.Seq)
		})
		if visible < durable {
			visible = durable
		}
	}

	la := logAddr
	n.K.Schedule(visible, func() {
		if n.epoch != epoch {
			return
		}
		q.RecvCQ.Push(Recv{Addr: buf.Addr, N: m.N, Data: m.Data,
			At: n.K.Now(), Durable: durable, LogAddr: la, SrcQP: m.SrcQP})
	})
}

// inboundRead serves a one-sided read. Without DDIO, a read of a range with
// in-flight DMA forces/waits for the flush to PM first — this is exactly the
// mechanism the paper uses to emulate WFlush. With DDIO the read is served
// from the LLC immediately, which is why read-after-write fails as a
// persistence check (§2.4).
func (n *NIC) inboundRead(q *QP, m *wireMsg) {
	// PCIe ordering: a read cannot pass DMA writes already queued in the
	// engine; defer service until the current backlog drains.
	start := n.pcie.NextFree()
	if now := n.K.Now(); now > start {
		start = now
	}
	epoch := n.epoch
	n.K.Schedule(start, func() {
		if n.epoch != epoch {
			return
		}
		n.serveRead(q, m)
	})
}

// serveRead resolves a read once the DMA engine has drained ahead of it.
func (n *NIC) serveRead(q *QP, m *wireMsg) {
	if !n.checkAccess(q, m.Addr, false) {
		return // protection fault: NAK, QP error
	}
	epoch := n.epoch
	kind := n.mrKind(m.Addr)
	respond := func(at sim.Time, fetch func() []byte) {
		n.K.Schedule(at, func() {
			if n.epoch != epoch {
				return
			}
			n.postAt(n.K.Now(), q.remoteNIC,
				&wireMsg{Kind: wReadResp, DstQP: q.remoteQP, SrcQP: q.ID, Seq: m.Seq, N: m.N, Data: fetch()},
				n.Params.HeaderBytes+m.N)
		})
	}
	switch {
	case kind == MemDRAM:
		done := n.pcie.Reserve(n.pcieCost(m.N))
		respond(done, func() []byte { return n.DRAM.Read(m.Addr, m.N) })
	case n.Params.DDIO && n.LLC.DirtyIn(m.Addr, m.N):
		// Served from cache: fast, and silently non-durable.
		done := n.pcie.Reserve(n.pcieCost(m.N))
		respond(done, func() []byte { return n.LLC.Read(m.Addr, m.N) })
	default:
		start := n.K.Now()
		if q.lastDurable > start {
			start = q.lastDurable // read flushes pending DMA first
		}
		readDone := n.PM.Read(start, m.Addr, m.N)
		pcieDone := n.pcie.ReserveAt(readDone, n.pcieCost(m.N))
		respond(pcieDone, func() []byte { return n.PM.ReadBytes(m.Addr, m.N) })
	}
}
