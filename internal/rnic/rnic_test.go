package rnic

import (
	"bytes"
	"testing"
	"time"

	"prdma/internal/cache"
	"prdma/internal/dram"
	"prdma/internal/fabric"
	"prdma/internal/pmem"
	"prdma/internal/sim"
)

// rig is a two-host test cluster.
type rig struct {
	k        *sim.Kernel
	net      *fabric.Network
	cn, sn   *NIC
	cpm, spm *pmem.Device
	sllc     *cache.LLC
	sdram    *dram.Memory
}

const (
	pmBase   = int64(0)
	pmLen    = int64(1 << 26)
	dramBase = int64(1 << 30)
	dramLen  = int64(1 << 26)
)

func newRig(mod func(*Params)) *rig {
	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), 1)
	p := DefaultParams()
	if mod != nil {
		mod(&p)
	}
	r := &rig{k: k, net: net}
	r.cpm = pmem.New(k, pmem.DefaultParams())
	r.spm = pmem.New(k, pmem.DefaultParams())
	cllc := cache.New(k, r.cpm)
	r.sllc = cache.New(k, r.spm)
	cdram := dram.New()
	r.sdram = dram.New()
	r.cn = New(k, "client", net, r.cpm, cllc, cdram, p)
	r.sn = New(k, "server", net, r.spm, r.sllc, r.sdram, p)
	for _, n := range []*NIC{r.cn, r.sn} {
		n.RegisterMR(pmBase, pmLen, MemPM)
		n.RegisterMR(dramBase, dramLen, MemDRAM)
	}
	return r
}

func (r *rig) connect(t Transport) (cq, sq *QP) {
	cq = r.cn.CreateQP(t)
	sq = r.sn.CreateQP(t)
	Connect(cq, sq)
	return cq, sq
}

func TestWriteAckBeforeDurable(t *testing.T) {
	r := newRig(nil)
	cq, sq := r.connect(RC)
	data := bytes.Repeat([]byte{0xEE}, 4096)
	var ackAt sim.Time
	r.k.Go("c", func(p *sim.Proc) {
		ackAt = cq.Write(p, 100, len(data), data)
		// At ACK time the data must NOT yet be durable: that is the
		// T_A < T_B gap the paper is about.
		if got := r.spm.ReadBytes(100, len(data)); bytes.Equal(got, data) {
			t.Error("data durable already at ACK time")
		}
	})
	r.k.Run()
	if ackAt == 0 {
		t.Fatal("no ack")
	}
	if got := r.spm.ReadBytes(100, len(data)); !bytes.Equal(got, data) {
		t.Fatal("data never became durable")
	}
	_ = sq
}

func TestWriteFlushDurableAtCompletion(t *testing.T) {
	for _, emulate := range []bool{true, false} {
		r := newRig(func(p *Params) { p.EmulateFlush = emulate })
		cq, _ := r.connect(RC)
		data := bytes.Repeat([]byte{0xAB}, 8192)
		r.k.Go("c", func(p *sim.Proc) {
			cq.WriteFlush(p, 4096, len(data), data)
			if got := r.spm.ReadBytes(4096, len(data)); !bytes.Equal(got, data) {
				t.Errorf("emulate=%v: data not durable at WFlush completion", emulate)
			}
		})
		r.k.Run()
	}
}

func TestWriteFlushSlowerThanWrite(t *testing.T) {
	r := newRig(nil)
	cq, _ := r.connect(RC)
	var ack, durable sim.Time
	r.k.Go("c", func(p *sim.Proc) {
		ack = cq.Write(p, 0, 4096, nil)
	})
	r.k.Run()

	r2 := newRig(nil)
	cq2, _ := r2.connect(RC)
	r2.k.Go("c", func(p *sim.Proc) {
		durable = cq2.WriteFlush(p, 0, 4096, nil)
	})
	r2.k.Run()
	if durable <= ack {
		t.Fatalf("WFlush completion (%v) should be later than plain ACK (%v)", durable, ack)
	}
}

func TestNativeFlushFasterThanEmulated(t *testing.T) {
	measure := func(emulate bool) sim.Time {
		r := newRig(func(p *Params) { p.EmulateFlush = emulate })
		cq, _ := r.connect(RC)
		var done sim.Time
		r.k.Go("c", func(p *sim.Proc) { done = cq.WriteFlush(p, 0, 65536, nil) })
		r.k.Run()
		return done
	}
	em, nat := measure(true), measure(false)
	if nat >= em {
		t.Fatalf("native flush (%v) should beat read-after-write emulation (%v)", nat, em)
	}
}

func TestCrashLosesStagedWrite(t *testing.T) {
	r := newRig(nil)
	cq, _ := r.connect(RC)
	data := bytes.Repeat([]byte{0x77}, 65536)
	acked := false
	r.k.Go("c", func(p *sim.Proc) {
		cq.WriteAsync(200, len(data), data).Then(func(sim.Time) { acked = true })
	})
	// Crash the server just after the ACK (generated at ~14us for a 64 KiB
	// transfer) but before the DMA+persist completes (~50us).
	r.k.After(20*time.Microsecond, func() {
		r.sn.Crash()
		r.spm.Crash()
		r.sllc.Crash()
		r.sdram.Crash()
	})
	r.k.Run()
	if !acked {
		t.Fatal("expected the RC ACK to arrive before the crash")
	}
	if got := r.spm.ReadBytes(200, len(data)); bytes.Equal(got, data) {
		t.Fatal("acked-but-unflushed data survived the crash: T_A/T_B gap not modelled")
	}
}

func TestSendRecvDelivery(t *testing.T) {
	r := newRig(nil)
	cq, sq := r.connect(RC)
	sq.PostRecv(dramBase, 4096)
	payload := []byte("rpc request payload")
	var rcv Recv
	r.k.Go("server", func(p *sim.Proc) { rcv = sq.RecvCQ.Pop(p) })
	r.k.Go("client", func(p *sim.Proc) { cq.Send(p, len(payload), payload) })
	r.k.Run()
	if !bytes.Equal(rcv.Data, payload) || rcv.N != len(payload) {
		t.Fatalf("recv = %+v", rcv)
	}
	if rcv.Durable != 0 {
		t.Fatal("DRAM recv buffer must not be durable")
	}
	if !bytes.Equal(r.sdram.Read(dramBase, len(payload)), payload) {
		t.Fatal("payload not in DRAM recv buffer")
	}
}

func TestSendBeforePostRecvIsHeld(t *testing.T) {
	r := newRig(nil)
	cq, sq := r.connect(RC)
	var rcv Recv
	r.k.Go("client", func(p *sim.Proc) { cq.Send(p, 64, nil) })
	r.k.After(time.Millisecond, func() { sq.PostRecv(dramBase, 4096) })
	r.k.Go("server", func(p *sim.Proc) { rcv = sq.RecvCQ.Pop(p) })
	r.k.Run()
	if rcv.N != 64 {
		t.Fatalf("held send not delivered: %+v", rcv)
	}
	if rcv.At < sim.Time(time.Millisecond) {
		t.Fatal("delivery before buffer was posted")
	}
}

func TestSendFlushNative(t *testing.T) {
	r := newRig(func(p *Params) { p.EmulateFlush = false })
	cq, sq := r.connect(RC)
	logCursor := int64(1 << 20)
	sq.FlushSink = func(n int) int64 {
		a := logCursor
		logCursor += int64(n)
		return a
	}
	sq.PostRecv(dramBase, 4096)
	payload := []byte("durable send payload")
	var rcv Recv
	var durableAt sim.Time
	r.k.Go("server", func(p *sim.Proc) { rcv = sq.RecvCQ.Pop(p) })
	r.k.Go("client", func(p *sim.Proc) {
		durableAt = cq.SendFlush(p, len(payload), payload)
		if got := r.spm.ReadBytes(1<<20, len(payload)); !bytes.Equal(got, payload) {
			t.Error("payload not durable in log at SFlush completion")
		}
	})
	r.k.Run()
	if durableAt == 0 {
		t.Fatal("no SFlush completion")
	}
	if rcv.LogAddr != 1<<20 {
		t.Fatalf("recv LogAddr = %#x", rcv.LogAddr)
	}
	if rcv.Durable == 0 {
		t.Fatal("recv should carry durability time")
	}
}

func TestSendFlushEmulated(t *testing.T) {
	r := newRig(func(p *Params) { p.EmulateFlush = true })
	cq, sq := r.connect(RC)
	cq.FlushProbe = 1 << 20
	// Emulated SFlush: receive buffers live directly in PM.
	sq.PostRecv(1<<20, 4096)
	payload := []byte("emulated durable send")
	var durableAt sim.Time
	r.k.Go("server", func(p *sim.Proc) { sq.RecvCQ.Pop(p) })
	r.k.Go("client", func(p *sim.Proc) {
		durableAt = cq.SendFlush(p, len(payload), payload)
		if got := r.spm.ReadBytes(1<<20, len(payload)); !bytes.Equal(got, payload) {
			t.Error("payload not durable at emulated SFlush completion")
		}
	})
	r.k.Run()
	if durableAt < sim.Time(7*time.Microsecond) {
		t.Fatalf("emulated SFlush must include the 7us lookup: %v", durableAt)
	}
}

func TestReadForcesFlushWithoutDDIO(t *testing.T) {
	r := newRig(nil)
	cq, _ := r.connect(RC)
	data := bytes.Repeat([]byte{0x42}, 65536)
	r.k.Go("c", func(p *sim.Proc) {
		cq.WriteAsync(0, len(data), data)
		got := cq.Read(p, 65535, 1)
		// The read drained the DMA: the byte it returns is durable.
		if got[0] != 0x42 {
			t.Errorf("read returned %v", got[0])
		}
		if r.spm.ReadBytes(65535, 1)[0] != 0x42 {
			t.Error("read completed before data was durable")
		}
	})
	r.k.Run()
}

func TestDDIODefeatsReadAfterWrite(t *testing.T) {
	r := newRig(func(p *Params) { p.DDIO = true })
	cq, _ := r.connect(RC)
	data := bytes.Repeat([]byte{0x99}, 4096)
	r.k.Go("c", func(p *sim.Proc) {
		cq.WriteAsync(0, len(data), data)
		got := cq.Read(p, 4095, 1)
		if got[0] != 0x99 {
			t.Errorf("read-after-write returned %v; DDIO should serve it from LLC", got[0])
		}
		// The check "passed" — but the data is NOT durable (§2.4).
		if r.spm.ReadBytes(4095, 1)[0] == 0x99 {
			t.Error("data durable under DDIO without a clflush")
		}
	})
	r.k.Run()
	// And a crash now loses it even though read-after-write "verified" it.
	r.sllc.Crash()
	if r.sllc.Read(0, 1)[0] == 0x99 {
		t.Fatal("volatile LLC data survived crash")
	}
}

func TestDDIOFlushFlaggedWriteBypassesCache(t *testing.T) {
	r := newRig(func(p *Params) { p.DDIO = true; p.EmulateFlush = false })
	cq, _ := r.connect(RC)
	data := bytes.Repeat([]byte{0x13}, 1024)
	r.k.Go("c", func(p *sim.Proc) {
		cq.WriteFlush(p, 0, len(data), data)
		if got := r.spm.ReadBytes(0, len(data)); !bytes.Equal(got, data) {
			t.Error("flush-flagged write not durable under DDIO (non-cacheable region)")
		}
	})
	r.k.Run()
}

func TestWriteImmRaisesRecvCompletion(t *testing.T) {
	r := newRig(nil)
	cq, sq := r.connect(RC)
	var rcv Recv
	r.k.Go("server", func(p *sim.Proc) { rcv = sq.RecvCQ.Pop(p) })
	r.k.Go("client", func(p *sim.Proc) { cq.WriteImm(p, 300, 128, nil, 0xDEAD) })
	r.k.Run()
	if rcv.Imm != 0xDEAD || !rcv.IsImm || rcv.Addr != 300 {
		t.Fatalf("recv = %+v", rcv)
	}
}

func TestArrivalsForPollingServer(t *testing.T) {
	r := newRig(nil)
	cq, sq := r.connect(RC)
	var arr Arrival
	r.k.Go("server", func(p *sim.Proc) { arr = sq.Arrivals.Pop(p) })
	r.k.Go("client", func(p *sim.Proc) { cq.Write(p, 512, 256, nil) })
	r.k.Run()
	if arr.Addr != 512 || arr.N != 256 {
		t.Fatalf("arrival = %+v", arr)
	}
	if arr.Durable == 0 {
		t.Fatal("PM write arrival should carry durability time")
	}
}

func TestUCWriteCompletesLocally(t *testing.T) {
	r := newRig(nil)
	cq, _ := r.connect(UC)
	var done sim.Time
	r.k.Go("c", func(p *sim.Proc) { done = cq.Write(p, 0, 1024, nil) })
	r.k.Run()
	// UC completion is local wire-out: earlier than any possible RTT.
	if done.Duration() >= r.net.Params.Propagation*2 {
		t.Fatalf("UC completion %v looks like it waited for an ACK", done)
	}
}

func TestUDMTUPanics(t *testing.T) {
	r := newRig(nil)
	cq, _ := r.connect(UD)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cq.SendAsync(UDMTU+1, nil)
}

func TestNotifyRoundTrip(t *testing.T) {
	r := newRig(nil)
	cq, sq := r.connect(RC)
	var at sim.Time
	r.k.Go("client", func(p *sim.Proc) {
		at = cq.ExpectNotify(7).Wait(p)
	})
	r.k.After(time.Microsecond, func() { sq.Notify(7) })
	r.k.Run()
	if at == 0 {
		t.Fatal("notify not delivered")
	}
}

func TestNotifyBeforeExpectBuffered(t *testing.T) {
	r := newRig(nil)
	cq, sq := r.connect(RC)
	sq.Notify(9)
	var ok bool
	r.k.GoAfter(time.Millisecond, "client", func(p *sim.Proc) {
		_, ok = cq.ExpectNotify(9).WaitTimeout(p, time.Millisecond)
	})
	r.k.Run()
	if !ok {
		t.Fatal("early notify lost")
	}
}

func TestRetransmitDedup(t *testing.T) {
	r := newRig(nil)
	cq, sq := r.connect(RC)
	// Simulate a retransmission by posting the same seq twice.
	m := &wireMsg{Kind: wWrite, SrcQP: cq.ID, DstQP: sq.ID, Seq: 1, Addr: 0, N: 8, Data: []byte("12345678")}
	dup := *m
	cq.nic.post(cq.remoteNIC, m, 72)
	cq.nic.post(cq.remoteNIC, &dup, 72)
	count := 0
	r.k.Go("server", func(p *sim.Proc) {
		for {
			if _, ok := sq.Arrivals.PopTimeout(p, time.Millisecond); !ok {
				return
			}
			count++
		}
	})
	r.k.Run()
	if count != 1 {
		t.Fatalf("duplicate write applied %d times", count)
	}
}

func TestOutOfOrderRequestDropped(t *testing.T) {
	// RC in-order execution: a request ahead of a loss-induced PSN gap is
	// dropped (the responder NAKs it) and executes only once the retransmit
	// fills the gap. Without this, a flush acknowledgement could cover a
	// hole in the redo log and recovery would truncate acknowledged entries.
	r := newRig(nil)
	cq, sq := r.connect(RC)
	w1 := &wireMsg{Kind: wWrite, SrcQP: cq.ID, DstQP: sq.ID, Seq: 1, Addr: 0, N: 8, Data: []byte("11111111")}
	w2 := &wireMsg{Kind: wWrite, SrcQP: cq.ID, DstQP: sq.ID, Seq: 2, Addr: 64, N: 8, Data: []byte("22222222")}
	w2b := *w2
	// Deliver seq 2 while seq 1 is still "lost": it must not execute.
	cq.nic.post(cq.remoteNIC, w2, 72)
	r.k.RunFor(time.Millisecond)
	if r.sn.OutOfOrderDrops != 1 {
		t.Fatalf("out-of-order write not dropped (drops=%d)", r.sn.OutOfOrderDrops)
	}
	// The retransmit fills the gap; both requests then execute in order.
	cq.nic.post(cq.remoteNIC, w1, 72)
	cq.nic.post(cq.remoteNIC, &w2b, 72)
	count := 0
	r.k.Go("server", func(p *sim.Proc) {
		for {
			if _, ok := sq.Arrivals.PopTimeout(p, time.Millisecond); !ok {
				return
			}
			count++
		}
	})
	r.k.Run()
	if count != 2 {
		t.Fatalf("expected 2 arrivals after the gap filled, got %d", count)
	}
}

func TestStaleQPMessagesDropped(t *testing.T) {
	r := newRig(nil)
	cq, _ := r.connect(RC)
	r.sn.Crash()
	r.sn.Restart()
	r.sn.RegisterMR(pmBase, pmLen, MemPM)
	r.k.Go("c", func(p *sim.Proc) {
		_, ok := cq.WriteAsync(0, 64, nil).WaitTimeout(p, 10*time.Millisecond)
		if ok {
			t.Error("write to dead QP completed")
		}
	})
	r.k.Run()
	if r.sn.DroppedStale == 0 {
		t.Fatal("stale message not counted")
	}
}

func TestUnregisteredAddressPanics(t *testing.T) {
	r := newRig(nil)
	cq, _ := r.connect(RC)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.k.Go("c", func(p *sim.Proc) { cq.Write(p, 1<<40, 64, nil) })
	r.k.Run()
}

func TestTransportMismatchConnectPanics(t *testing.T) {
	r := newRig(nil)
	a := r.cn.CreateQP(RC)
	b := r.sn.CreateQP(UD)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Connect(a, b)
}

func TestSendCostsMoreThanWriteAtReceiver(t *testing.T) {
	// Two-sided ops pay SendExtra at the receiver NIC; with equal payloads
	// a send RPC's one-way time exceeds a write's.
	r := newRig(nil)
	cq, sq := r.connect(RC)
	sq.PostRecv(dramBase, 65536)
	var sendVisible, writeVisible sim.Time
	r.k.Go("server", func(p *sim.Proc) {
		rcv := sq.RecvCQ.Pop(p)
		sendVisible = rcv.At
	})
	r.k.Go("client", func(p *sim.Proc) { cq.SendAsync(4096, nil) })
	r.k.Run()

	r2 := newRig(nil)
	cq2, sq2 := r2.connect(RC)
	r2.k.Go("server", func(p *sim.Proc) {
		arr := sq2.Arrivals.Pop(p)
		writeVisible = arr.At
	})
	r2.k.Go("client", func(p *sim.Proc) { cq2.WriteAsync(dramBase, 4096, nil) })
	r2.k.Run()
	if sendVisible <= writeVisible {
		t.Fatalf("send visible at %v, write at %v: SendExtra not charged", sendVisible, writeVisible)
	}
}

func TestRCRetransmissionOnLossyFabric(t *testing.T) {
	// 20% message loss: every RC operation must still complete, via NIC
	// retransmission, and the receiver must apply each write exactly once.
	k := sim.New()
	fp := fabric.DefaultParams()
	fp.DropProb = 0.2
	net := fabric.New(k, fp, 99)
	p := DefaultParams()
	p.RetransmitInterval = 50 * time.Microsecond // shorter for test speed
	cpm := pmem.New(k, pmem.DefaultParams())
	spm := pmem.New(k, pmem.DefaultParams())
	cn := New(k, "c", net, cpm, cache.New(k, cpm), dram.New(), p)
	sn := New(k, "s", net, spm, cache.New(k, spm), dram.New(), p)
	for _, n := range []*NIC{cn, sn} {
		n.RegisterMR(pmBase, pmLen, MemPM)
		n.RegisterMR(dramBase, dramLen, MemDRAM)
	}
	cq := cn.CreateQP(RC)
	sq := sn.CreateQP(RC)
	Connect(cq, sq)

	const ops = 60
	completed := 0
	k.Go("driver", func(pr *sim.Proc) {
		for i := 0; i < ops; i++ {
			data := []byte{byte(i), 1, 2, 3, 4, 5, 6, 7}
			cq.WriteFlush(pr, int64(i*64), len(data), data)
			completed++
		}
	})
	arrivals := 0
	k.Go("server", func(pr *sim.Proc) {
		for {
			if _, ok := sq.Arrivals.PopTimeout(pr, 10*time.Millisecond); !ok {
				return
			}
			arrivals++
		}
	})
	k.Run()
	if completed != ops {
		t.Fatalf("completed %d of %d despite retransmission", completed, ops)
	}
	if arrivals != ops {
		t.Fatalf("receiver applied %d arrivals, want exactly %d (dedup)", arrivals, ops)
	}
	if cn.Retransmits == 0 {
		t.Fatal("no retransmissions counted on a 20%-loss fabric")
	}
	// Every write durable.
	for i := 0; i < ops; i++ {
		if spm.ReadBytes(int64(i*64), 1)[0] != byte(i) {
			t.Fatalf("write %d not durable", i)
		}
	}
}

func TestRetransmitStopsWhenQPDies(t *testing.T) {
	k := sim.New()
	fp := fabric.DefaultParams()
	net := fabric.New(k, fp, 5)
	p := DefaultParams()
	p.RetransmitInterval = 100 * time.Microsecond
	cpm := pmem.New(k, pmem.DefaultParams())
	spm := pmem.New(k, pmem.DefaultParams())
	cn := New(k, "c", net, cpm, cache.New(k, cpm), dram.New(), p)
	sn := New(k, "s", net, spm, cache.New(k, spm), dram.New(), p)
	for _, n := range []*NIC{cn, sn} {
		n.RegisterMR(pmBase, pmLen, MemPM)
	}
	cq := cn.CreateQP(RC)
	sq := sn.CreateQP(RC)
	Connect(cq, sq)
	sn.Crash() // server gone: acks never come
	cq.WriteAsync(0, 64, nil)
	k.RunFor(time.Millisecond) // a few retransmit periods
	before := cn.Retransmits
	if before == 0 {
		t.Fatal("expected retransmissions against a dead server")
	}
	cn.Crash() // client QP dies: retransmission must stop
	k.RunFor(10 * time.Millisecond)
	if cn.Retransmits != before {
		t.Fatalf("retransmits continued after QP death: %d -> %d", before, cn.Retransmits)
	}
}

func TestMRProtectionBlocksWrites(t *testing.T) {
	r := newRig(nil)
	// Carve a read-only window out of the PM region.
	r.sn.RegisterMRProt(1<<20, 4096, MemPM, false, true)
	cq, _ := r.connect(RC)
	r.k.Go("c", func(p *sim.Proc) {
		// Read of the protected window is fine.
		cq.Read(p, 1<<20, 64)
		// Write must fault: the future never completes and the QP errors.
		_, ok := cq.WriteAsync(1<<20, 64, nil).WaitTimeout(p, 2*time.Millisecond)
		if ok {
			t.Error("write to read-only MR completed")
		}
	})
	r.k.Run()
	if r.sn.AccessViolations == 0 {
		t.Fatal("violation not counted")
	}
}

func TestMRProtectionBlocksReads(t *testing.T) {
	r := newRig(nil)
	r.sn.RegisterMRProt(1<<21, 4096, MemPM, true, false)
	cq, _ := r.connect(RC)
	r.k.Go("c", func(p *sim.Proc) {
		_, ok := cq.ReadAsync(1<<21, 64).WaitTimeout(p, 2*time.Millisecond)
		if ok {
			t.Error("read of write-only MR completed")
		}
	})
	r.k.Run()
	if r.sn.AccessViolations == 0 {
		t.Fatal("violation not counted")
	}
}

func TestMRProtLaterRegistrationWins(t *testing.T) {
	r := newRig(nil)
	r.sn.RegisterMRProt(2<<20, 4096, MemPM, false, true)
	cq, _ := r.connect(RC)
	r.k.Go("c", func(p *sim.Proc) {
		// Outside the protected window, the original full-access MR rules.
		if _, ok := cq.WriteAsync((2<<20)+8192, 64, nil).WaitTimeout(p, 5*time.Millisecond); !ok {
			t.Error("write outside protected window blocked")
		}
	})
	r.k.Run()
}

func TestStringersAndAccessors(t *testing.T) {
	if RC.String() != "RC" || UC.String() != "UC" || UD.String() != "UD" {
		t.Fatal("Transport.String wrong")
	}
	if MemPM.String() != "pm" || MemDRAM.String() != "dram" {
		t.Fatal("MemKind.String wrong")
	}
	for k, want := range map[wireKind]string{
		wWrite: "write", wWriteImm: "write-imm", wSend: "send", wRead: "read",
		wReadResp: "read-resp", wAck: "ack", wFlushAck: "flush-ack", wNotify: "notify",
	} {
		if k.String() != want {
			t.Fatalf("wireKind %d = %q", k, k.String())
		}
	}
	r := newRig(nil)
	cq, sq := r.connect(RC)
	if cq.NIC() != r.cn || cq.RemoteName() != "server" || cq.Dead() {
		t.Fatal("QP accessors wrong")
	}
	if r.cn.Epoch() != 0 {
		t.Fatal("epoch not 0")
	}
	r.cn.Crash()
	if r.cn.Epoch() != 1 || !cq.Dead() {
		t.Fatal("crash did not bump epoch / kill QPs")
	}
	_ = sq
}

func TestSendFlushDuplicateReacked(t *testing.T) {
	// A retransmitted flush-flagged send must re-issue the flush ACK so a
	// lost ACK cannot wedge the sender.
	r := newRig(func(p *Params) { p.EmulateFlush = false })
	cq, sq := r.connect(RC)
	logCursor := int64(1 << 20)
	sq.FlushSink = func(n int) int64 {
		a := logCursor
		logCursor += 64
		return a
	}
	sq.PostRecv(dramBase, 4096)
	sq.PostRecv(dramBase+4096, 4096)
	m := &wireMsg{Kind: wSend, SrcQP: cq.ID, DstQP: sq.ID, Seq: 1, N: 8, Data: []byte("12345678"), Flush: true}
	dup := *m
	cq.nic.post(cq.remoteNIC, m, 72)
	r.k.RunFor(time.Millisecond)
	acksBefore := r.sn.FlushAcks
	cq.nic.post(cq.remoteNIC, &dup, 72)
	r.k.RunFor(time.Millisecond)
	if r.sn.FlushAcks <= acksBefore {
		t.Fatal("duplicate flush-flagged send not re-acked")
	}
}

func TestWriteFlushDuplicateReacked(t *testing.T) {
	r := newRig(func(p *Params) { p.EmulateFlush = false })
	cq, sq := r.connect(RC)
	m := &wireMsg{Kind: wWrite, SrcQP: cq.ID, DstQP: sq.ID, Seq: 1, Addr: 0, N: 8, Data: []byte("abcdefgh"), Flush: true}
	dup := *m
	cq.nic.post(cq.remoteNIC, m, 72)
	r.k.RunFor(time.Millisecond)
	acksBefore := r.sn.FlushAcks
	cq.nic.post(cq.remoteNIC, &dup, 72)
	r.k.RunFor(time.Millisecond)
	if r.sn.FlushAcks <= acksBefore {
		t.Fatal("duplicate flush-flagged write not re-acked")
	}
}

func TestDDIOSendToDRAMBuffer(t *testing.T) {
	// Sends to DRAM recv buffers are untouched by DDIO settings.
	r := newRig(func(p *Params) { p.DDIO = true })
	cq, sq := r.connect(RC)
	sq.PostRecv(dramBase, 4096)
	var rcv Recv
	r.k.Go("s", func(p *sim.Proc) { rcv = sq.RecvCQ.Pop(p) })
	r.k.Go("c", func(p *sim.Proc) { cq.Send(p, 32, nil) })
	r.k.Run()
	if rcv.N != 32 || rcv.Durable != 0 {
		t.Fatalf("rcv = %+v", rcv)
	}
}

func TestTraceHookFires(t *testing.T) {
	r := newRig(func(p *Params) { p.EmulateFlush = false })
	var events []string
	r.sn.Trace = func(cat, format string, args ...interface{}) {
		events = append(events, cat)
	}
	cq, _ := r.connect(RC)
	r.k.Go("c", func(p *sim.Proc) { cq.WriteFlush(p, 0, 64, nil) })
	r.k.Run()
	if len(events) == 0 {
		t.Fatal("trace hook never fired")
	}
}

// TestCalibrationRTT pins the model's small-operation round trips to the
// ConnectX-4 ballpark DESIGN.md §4 targets: a small RC write completes in
// a few microseconds, and a durable (flushed) small write lands under
// ~10us — the regime where the paper's Figs. 13/20 live.
func TestCalibrationRTT(t *testing.T) {
	r := newRig(nil)
	cq, _ := r.connect(RC)
	var ack, durable sim.Time
	r.k.Go("c", func(p *sim.Proc) {
		start := p.Now()
		cq.Write(p, 0, 32, nil)
		ack = sim.Time(p.Now().Sub(start))
		start = p.Now()
		cq.WriteFlush(p, 64, 32, nil)
		durable = sim.Time(p.Now().Sub(start))
	})
	r.k.Run()
	if d := ack.Duration(); d < time.Microsecond || d > 6*time.Microsecond {
		t.Fatalf("small-write RTT %v outside the 1-6us ConnectX-4 ballpark", d)
	}
	if d := durable.Duration(); d < 2*time.Microsecond || d > 12*time.Microsecond {
		t.Fatalf("durable small write %v outside the 2-12us ballpark", d)
	}
}
