// Package rnic models an RDMA NIC with a volatile staging SRAM, a DMA
// engine, RC/UC/UD queue pairs, and the paper's proposed Flush primitives
// (WFlush, SFlush) in both native and read-after-write-emulated forms.
//
// The model's load-bearing property is the paper's T_A < T_B gap (§2.4): an
// RC ACK is generated when data reaches the NIC's volatile SRAM (T_A), but
// the data only becomes durable when the DMA + media persist completes
// (T_B). A crash in between loses the data. The Flush primitives close the
// gap by acknowledging at T_B.
package rnic

import "time"

// Transport is the RDMA transmission mode.
type Transport int

const (
	// RC is a reliable connection: lossless, in-order, ACKed.
	RC Transport = iota
	// UC is an unreliable connection: in-order, no ACKs.
	UC
	// UD is an unreliable datagram: no ACKs, limited MTU.
	UD
)

func (t Transport) String() string {
	switch t {
	case RC:
		return "RC"
	case UC:
		return "UC"
	default:
		return "UD"
	}
}

// UDMTU is the maximum UD payload, which is why the paper only reports
// FaSST for objects up to 4 KB (§5.1).
const UDMTU = 4096

// MemKind says which memory an MR (and therefore a DMA target) lives in.
type MemKind int

const (
	// MemDRAM is volatile host memory (message buffers, indexes).
	MemDRAM MemKind = iota
	// MemPM is persistent memory.
	MemPM
)

func (k MemKind) String() string {
	if k == MemPM {
		return "pm"
	}
	return "dram"
}

// Params configures a NIC.
type Params struct {
	// ProcPerWQE is the NIC pipeline cost to process one WQE or one
	// inbound message.
	ProcPerWQE time.Duration
	// SendExtra is the additional receiver-side NIC cost of two-sided
	// operations (RQ WQE fetch and scatter), making send-based RPCs
	// slower than write-based ones for large payloads (paper §5.5).
	SendExtra time.Duration
	// PCIeBase + PCIeBytesPerSec model the DMA engine between NIC SRAM
	// and host memory.
	PCIeBase        time.Duration
	PCIeBytesPerSec float64
	// AddrLookup is the time for an SFlush to resolve the destination
	// address from the packet (the paper emulates ~7 µs with sleep(0)).
	AddrLookup time.Duration
	// HeaderBytes is the per-message wire overhead; AckBytes the size of
	// ACK/flush-ACK/notify messages.
	HeaderBytes int
	AckBytes    int
	// RetransmitInterval is the RC retry period after loss (paper: 100 ms).
	RetransmitInterval time.Duration
	// RetryCount bounds RC retransmissions; exhaustion puts the QP in the
	// error state, as InfiniBand's retry_cnt does.
	RetryCount int
	// EmulateFlush selects the paper's read-after-write emulation of
	// WFlush/SFlush (an extra 1-byte RDMA read on the wire) instead of
	// the native piggy-backed primitive.
	EmulateFlush bool
	// DDIO steers inbound PM-targeted DMA into the volatile LLC (§2.3).
	// Flush-flagged operations bypass DDIO, modelling the non-cacheable
	// regions of §4.4.2.
	DDIO bool
	// AckBeforeDurable deliberately breaks the Flush contract: the flush
	// ACK is issued at DMA placement (T_A-ish) instead of the durability
	// horizon (T_B), re-creating the §2.4 premature-acknowledgement bug.
	// Only the crash-point sweep checker sets it, to prove the checker
	// catches acknowledged-but-lost requests.
	AckBeforeDurable bool
}

// DefaultParams returns the ConnectX-4-like defaults from DESIGN.md §4.
// EmulateFlush is on by default because that is what the paper measures.
func DefaultParams() Params {
	return Params{
		ProcPerWQE:         300 * time.Nanosecond,
		SendExtra:          1200 * time.Nanosecond,
		PCIeBase:           500 * time.Nanosecond,
		PCIeBytesPerSec:    12e9,
		AddrLookup:         7 * time.Microsecond,
		HeaderBytes:        64,
		AckBytes:           16,
		RetransmitInterval: 100 * time.Millisecond,
		RetryCount:         7,
		EmulateFlush:       true,
		DDIO:               false,
	}
}
