package redolog

import (
	"testing"

	"prdma/internal/pmem"
	"prdma/internal/sim"
)

// BenchmarkAppendConsume measures the log's hot path: one NIC append and
// one consume per iteration, including the PM persist events.
func BenchmarkAppendConsume(b *testing.B) {
	k := sim.New()
	pm := pmem.New(k, pmem.DefaultParams())
	l := New(k, pm, 0, 64<<20)
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq, done, err := l.AppendNIC(k.Now(), 1, len(payload), payload)
		if err != nil {
			b.Fatal(err)
		}
		k.RunUntil(done)
		l.Consume(k.Now(), seq)
		k.Run()
	}
}

// BenchmarkRecover measures the recovery scan over a loaded ring.
func BenchmarkRecover(b *testing.B) {
	k := sim.New()
	pm := pmem.New(k, pmem.DefaultParams())
	l := New(k, pm, 0, 64<<20)
	payload := make([]byte, 1024)
	for i := 0; i < 1000; i++ {
		_, done, err := l.AppendNIC(k.Now(), 1, len(payload), payload)
		if err != nil {
			b.Fatal(err)
		}
		k.RunUntil(done)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l2 := New(k, pm, 0, 64<<20)
		var got []Entry
		k.Go("recover", func(p *sim.Proc) { got = l2.Recover(p) })
		k.Run()
		if len(got) != 1000 {
			b.Fatalf("recovered %d", len(got))
		}
	}
}
