package redolog

import (
	"testing"

	"prdma/internal/pmem"
	"prdma/internal/sim"
)

// TestAppendConsumeAllocRegression pins the steady-state allocation cost of
// the log's hot path: one NIC append (header + payload + commit persists)
// plus the matching consume. The entry's control-word persist completes
// through pooled persist jobs and the log's own scratch buffers, so the
// remaining allocations are the completion future AppendNIC hands back and
// the event it resolves through.
func TestAppendConsumeAllocRegression(t *testing.T) {
	k := sim.New()
	pm := pmem.New(k, pmem.DefaultParams())
	l := New(k, pm, 0, 64<<20)
	payload := make([]byte, 1024)

	cycle := func(rounds int) {
		for i := 0; i < rounds; i++ {
			seq, done, err := l.AppendNIC(k.Now(), 1, len(payload), payload)
			if err != nil {
				t.Fatal(err)
			}
			k.RunUntil(done)
			l.Consume(k.Now(), seq)
			k.Run()
		}
	}
	cycle(64) // warm the device's persist-job pools and the event heap

	const rounds = 100
	per := testing.AllocsPerRun(5, func() { cycle(rounds) }) / rounds
	// Expected: 3 allocations per append+consume — the done future, its
	// completion event, and the future's waiter list. The seed tree spent 16.
	if per > 4 {
		t.Fatalf("append+consume allocates %.2f objects/op, want <= 4", per)
	}
}
