// Package redolog implements the paper's persistent redo log (§4.2): a ring
// buffer in PM that makes RPCs durable before they are processed and
// recoverable after a crash without re-sending data from the client.
//
// Entry layout (all fields little-endian):
//
//	offset 0  : seq     (8 bytes)
//	offset 8  : op|len  (8 bytes: op in the top byte, payload length below)
//	offset 16 : payload (len bytes, padded to 8)
//	tail      : commit  (8 bytes: magic ^ seq ^ oplen)
//
// The commit word sits at the highest address of the entry. Because the PM
// model persists a write front-to-back, persisting the whole entry with one
// DMA guarantees the paper's "data is always persisted before the RPC
// operator" invariant: a crash can leave a torn payload, but then the commit
// word is absent and recovery rejects the entry. The commit word itself is
// 8 bytes and persists atomically. The PM media services persists FIFO, so
// if entry k is torn, no entry after k can be complete — recovery therefore
// never drops an acknowledged entry by stopping at the first tear.
//
// The ring head (consumption frontier) advances strictly in FIFO order even
// though workers may finish out of order; two durable 8-byte words at the
// region base record the head offset and the lowest-live sequence (floor).
// Both may lag the volatile truth by the in-flight persist window, which
// recovery tolerates: it replays at-least-once from a conservative frontier
// and skips entries below the floor.
//
// Three writers share this format, matching the paper's durable RPC
// families: the remote sender (WFlush-RPC writes fully formed entries),
// the local NIC (native SFlush reserves space and persists autonomously),
// and the local CPU (RFlush copies from the message buffer).
package redolog

import (
	"encoding/binary"
	"fmt"

	"prdma/internal/pmem"
	"prdma/internal/sim"
)

const (
	// HeaderBytes precede the payload; CommitBytes follow it.
	HeaderBytes = 16
	CommitBytes = 8
	// Overhead is the per-entry metadata total.
	Overhead = HeaderBytes + CommitBytes

	commitMagic = 0x52444C4F47434D54 // "RDLOGCMT"

	// ctrlBytes is the durable control area at the ring base:
	// [headOff 8][floorSeq 8].
	ctrlBytes = 16
)

// EntrySize returns the ring footprint of an entry with an n-byte payload.
func EntrySize(n int) int64 { return int64(HeaderBytes + pad8(n) + CommitBytes) }

func pad8(n int) int { return (n + 7) &^ 7 }

func max0(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// Entry is a decoded log record.
type Entry struct {
	Seq     uint64
	Op      byte
	Len     int
	Payload []byte
	// Addr is the entry's PM address.
	Addr int64
}

// PutHeader writes the 16-byte entry header (seq, op|len) into b.
func PutHeader(b []byte, seq uint64, op byte, n int) {
	binary.LittleEndian.PutUint64(b[0:], seq)
	binary.LittleEndian.PutUint64(b[8:], uint64(op)<<56|uint64(uint32(n)))
}

// Commit returns the 8-byte commit word of an entry.
func Commit(seq uint64, op byte, n int) uint64 {
	oplen := uint64(op)<<56 | uint64(uint32(n))
	return commitMagic ^ seq ^ oplen
}

// PutCommit writes the commit word into b (8 bytes).
func PutCommit(b []byte, seq uint64, op byte, n int) {
	binary.LittleEndian.PutUint64(b, Commit(seq, op, n))
}

// Encode builds the on-PM image of an entry. When payload is nil or shorter
// than n (synthetic benchmark traffic with a real header prefix), only the
// available bytes are materialized; the commit word is then never durable
// and such entries are — by design — not recoverable.
func Encode(seq uint64, op byte, n int, payload []byte) []byte {
	if len(payload) < n {
		return EncodeInto(make([]byte, HeaderBytes+len(payload)), seq, op, n, payload)
	}
	return EncodeInto(make([]byte, EntrySize(n)), seq, op, n, payload)
}

// EncodeInto encodes the entry image into b, which must be exactly
// EntrySize(n) bytes (full entry) or HeaderBytes+len(payload) bytes
// (synthetic short image), and returns b. Padding bytes are zeroed so a
// reused scratch buffer yields the same image a fresh allocation would.
func EncodeInto(b []byte, seq uint64, op byte, n int, payload []byte) []byte {
	PutHeader(b, seq, op, n)
	copy(b[HeaderBytes:], payload)
	if len(payload) < n {
		if len(b) != HeaderBytes+len(payload) {
			panic(fmt.Sprintf("redolog: short image buffer %d != %d", len(b), HeaderBytes+len(payload)))
		}
		return b
	}
	if len(payload) != n {
		panic(fmt.Sprintf("redolog: payload %d != n %d", len(payload), n))
	}
	if len(b) != int(EntrySize(n)) {
		panic(fmt.Sprintf("redolog: image buffer %d != entry size %d", len(b), EntrySize(n)))
	}
	for i := HeaderBytes + n; i < len(b)-CommitBytes; i++ {
		b[i] = 0
	}
	PutCommit(b[len(b)-CommitBytes:], seq, op, n)
	return b
}

// rec tracks one in-ring entry (or wrap slack) in the volatile FIFO window.
type rec struct {
	seq      uint64 // 0 for wrap slack
	off      int64
	foot     int64
	consumed bool
}

// Log is one connection's ring buffer.
type Log struct {
	K  *sim.Kernel
	PM *pmem.Device

	// Trace, when set, receives append/consume/recover events.
	Trace func(cat, format string, args ...interface{})

	// OnRecover, when set, observes every Recover scan right after the
	// volatile state is rebuilt. The crashcheck harness uses it to assert
	// replay-order and accounting invariants on each recovery.
	OnRecover func(RecoverInfo)

	base int64 // region base (control area)
	lo   int64 // first entry byte
	size int64 // entry area capacity

	// Volatile state (rebuilt by Recover).
	tail    int64 // next append offset
	used    int64
	nextSeq uint64
	window  []*rec // FIFO window of in-ring entries
	bySeq   map[uint64]*rec

	// durUsed is the byte span from the durable head (the last head offset
	// whose control-word persist completed) to the tail. Reserve must keep
	// this — not just used — within capacity: space reclaimed in DRAM but
	// not yet durably recorded may still be scanned by recovery, so
	// overwriting it would make a crash lose acknowledged entries.
	durUsed int64
	// freedSinceCtrl accumulates reclaimed bytes between control persists;
	// each persist moves its accumulated total out of durUsed on completion.
	freedSinceCtrl int64
	// gen invalidates scheduled durUsed updates across a Recover.
	gen int

	// CtrlEvery batches the durable control-pointer update: the head/floor
	// words are persisted once per CtrlEvery head advances rather than on
	// every consume. A lazier pointer only widens the at-least-once replay
	// window after a crash — it never loses entries. Zero means 16.
	CtrlEvery int
	ctrlSkew  int

	// CtrlPersist, when set, replaces the direct PM word persists of the
	// control area. Engine mode uses it: the log's accounting runs on the
	// client's partition while the ring's PM device lives on the server's,
	// so the hook forwards (headOff, floor) there as a cross-partition
	// message and arranges for done to run back on l.K once both words are
	// durable. done must be called exactly once; the durable-span
	// accounting (durUsed) is released only when it fires.
	CtrlPersist func(at sim.Time, headOff int64, floor uint64, done func())

	// Appends / Consumes / Recovered count operations for introspection.
	Appends   int64
	Consumes  int64
	Recovered int64

	// Scratch buffers for the alloc-free append and recovery-probe paths.
	// Heads and commit words are staged by the device at schedule time, so
	// these are reusable as soon as the persist call returns.
	hdr  [HeaderBytes]byte
	cmt  [CommitBytes]byte
	ctrl [ctrlBytes]byte
}

// New manages a ring over [base, base+size) of pm.
func New(k *sim.Kernel, pm *pmem.Device, base, size int64) *Log {
	if size < ctrlBytes+Overhead {
		panic("redolog: region too small")
	}
	return &Log{
		K: k, PM: pm, base: base, lo: base + ctrlBytes,
		size: size - ctrlBytes, nextSeq: 1,
		bySeq: make(map[uint64]*rec),
	}
}

// Base returns the region base address.
func (l *Log) Base() int64 { return l.base }

// Capacity returns the entry-area size in bytes.
func (l *Log) Capacity() int64 { return l.size }

// Outstanding returns the number of appended-but-unconsumed entries, the
// quantity the paper's back-pressure threshold watches.
func (l *Log) Outstanding() int { return len(l.bySeq) }

// NextSeq allocates a sequence number with no ring footprint. Non-mutating
// requests use it: they share the connection's FIFO sequence space (response
// matching, ring-slot rotation) but never occupy log bytes — a reserved slot
// that is never written would read as garbage to the recovery scan and make
// it stop early, losing acknowledged entries behind it. In-log sequences are
// therefore gapped; Recover accepts any strictly-increasing run.
func (l *Log) NextSeq() uint64 {
	seq := l.nextSeq
	l.nextSeq++
	return seq
}

// UsedBytes returns the occupied ring capacity.
func (l *Log) UsedBytes() int64 { return l.used }

// Reserve allocates ring space for an n-byte-payload entry, assigns it the
// next sequence number, and returns (seq, PM address). It fails when the
// ring is full — the caller throttles, per §4.2. Entries never wrap: if the
// tail room is insufficient the cursor jumps to the ring start and the
// skipped slack is reclaimed with its FIFO turn.
func (l *Log) Reserve(n int) (uint64, int64, error) {
	foot := EntrySize(n)
	if foot > l.size {
		return 0, 0, fmt.Errorf("redolog: entry of %d bytes exceeds ring capacity %d", foot, l.size)
	}
	slack := int64(-1) // -1: no wrap needed
	if tailroom := l.size - l.tail; tailroom < foot {
		slack = tailroom
	}
	// Capacity is gated on the durable span, not the volatile one: bytes
	// between the durable head and the tail may still be rescanned after a
	// crash, so they cannot be overwritten until a control persist lands.
	if l.durUsed+foot+max0(slack) > l.size {
		if l.freedSinceCtrl > 0 {
			// Space exists but its reclamation is not durable yet: expedite
			// the control persist so the caller's retry can succeed.
			l.persistCtrl(l.K.Now())
		}
		return 0, 0, fmt.Errorf("redolog: ring full (%d/%d durable-span bytes, %d outstanding)", l.durUsed, l.size, len(l.bySeq))
	}
	if slack >= 0 {
		if slack > 0 {
			l.window = append(l.window, &rec{off: l.tail, foot: slack, consumed: true})
			l.used += slack
			l.durUsed += slack
		}
		l.tail = 0
	}
	seq := l.nextSeq
	l.nextSeq++
	r := &rec{seq: seq, off: l.tail, foot: foot}
	l.window = append(l.window, r)
	l.bySeq[seq] = r
	l.tail += foot
	l.used += foot
	l.durUsed += foot
	l.Appends++
	return seq, l.lo + r.off, nil
}

// AppendNIC reserves space and persists a fully formed entry over the DMA
// path starting at time at, returning (seq, durable-completion time). This
// is the WFlush/SFlush ingestion path: no CPU involved. The entry is
// persisted as three segments — header scratch, payload taken directly from
// the caller's (wire) buffer, commit scratch — so no joined image is ever
// staged; payload must stay untouched until the returned completion time.
func (l *Log) AppendNIC(at sim.Time, op byte, n int, payload []byte) (uint64, sim.Time, error) {
	seq, addr, err := l.Reserve(n)
	if err != nil {
		return 0, 0, err
	}
	done := l.persistEntry(at, addr, seq, op, n, payload, pmem.DMA)
	return seq, done, nil
}

// AppendCPU persists an entry over the CPU path, blocking p until durable.
// This is the RFlush ingestion path: the receiver CPU copies the payload
// from the message buffer into the log and flushes it. The same zero-copy
// segment persist as AppendNIC; payload must stay untouched until the
// append is durable (the call blocks that long, so callers rarely care).
func (l *Log) AppendCPU(p *sim.Proc, op byte, n int, payload []byte) (uint64, int64, error) {
	seq, addr, err := l.Reserve(n)
	if err != nil {
		return 0, 0, err
	}
	done := l.persistEntry(p.K.Now(), addr, seq, op, n, payload, pmem.CPU)
	p.Sleep(done.Sub(p.K.Now()))
	return seq, addr, nil
}

// persistEntry issues the segmented persist of one entry image. A payload
// shorter than n (synthetic benchmark traffic) materializes only the header
// and available bytes — no commit word — matching Encode's short image.
func (l *Log) persistEntry(at sim.Time, addr int64, seq uint64, op byte, n int, payload []byte, path pmem.Path) sim.Time {
	if len(payload) > n {
		panic(fmt.Sprintf("redolog: payload %d != n %d", len(payload), n))
	}
	foot := int(EntrySize(n))
	PutHeader(l.hdr[:], seq, op, n)
	if len(payload) < n {
		return l.PM.PersistParts(at, addr, foot, l.hdr[:], payload, path)
	}
	PutCommit(l.cmt[:], seq, op, n)
	return l.PM.PersistSegs(at, addr, foot, l.hdr[:], payload, l.cmt[:], path)
}

// Consume marks seq processed. Space is reclaimed — and the durable head
// advanced — only over the contiguous consumed prefix, so out-of-order
// worker completion is safe. Returns the completion time of the control
// persist (callers rarely wait: consumption is off the critical path).
func (l *Log) Consume(at sim.Time, seq uint64) sim.Time {
	r, ok := l.bySeq[seq]
	if !ok {
		panic(fmt.Sprintf("redolog: consume of unknown seq %d", seq))
	}
	r.consumed = true
	delete(l.bySeq, seq)
	l.Consumes++

	advanced := false
	for len(l.window) > 0 && l.window[0].consumed {
		l.used -= l.window[0].foot
		l.freedSinceCtrl += l.window[0].foot
		l.window = l.window[1:]
		advanced = true
	}
	if !advanced {
		return at
	}
	// Lazy control update: persist the head/floor words only every
	// CtrlEvery head advances, plus whenever the window fully drains. A
	// stale pointer merely widens the at-least-once replay window after a
	// crash; it never loses entries.
	every := l.CtrlEvery
	if every <= 0 {
		every = 16
	}
	l.ctrlSkew++
	if l.ctrlSkew < every && len(l.window) > 0 {
		return at
	}
	l.ctrlSkew = 0
	return l.persistCtrl(at)
}

// persistCtrl persists the current head/floor words starting at time at and
// returns the later completion. The bytes freed since the previous control
// persist leave the durable span only when this persist completes — until
// then a crash would rescan them.
func (l *Log) persistCtrl(at sim.Time) sim.Time {
	headOff := l.tail
	floor := l.nextSeq
	if len(l.window) > 0 {
		headOff = l.window[0].off
		floor = l.window[0].seq
	}
	freed := l.freedSinceCtrl
	l.freedSinceCtrl = 0
	gen := l.gen
	settle := func() {
		if freed > 0 && l.gen == gen {
			l.durUsed -= freed
		}
	}
	if l.CtrlPersist != nil {
		// Engine mode: the PM device lives on another partition; the hook
		// performs the word persists there and calls settle back on this
		// kernel when they complete. The local completion time is unknown
		// (it is at plus a cross-partition round trip), so return `at`;
		// durable-span accounting waits for settle either way.
		l.CtrlPersist(at, headOff, floor, settle)
		return at
	}
	// Two atomic 8-byte persists; each may individually lag after a crash,
	// which recovery tolerates (at-least-once replay).
	t1 := l.PM.PersistWord(at, l.base, uint64(headOff), pmem.CPU)
	t2 := l.PM.PersistWord(at, l.base+8, floor, pmem.CPU)
	if t1 > t2 {
		t2 = t1
	}
	if freed > 0 {
		l.K.Schedule(t2, settle)
	}
	return t2
}

// EntryAddr returns the PM address of a live entry.
func (l *Log) EntryAddr(seq uint64) (int64, bool) {
	r, ok := l.bySeq[seq]
	if !ok {
		return 0, false
	}
	return l.lo + r.off, true
}

// RecoverInfo summarizes one Recover scan for observers.
type RecoverInfo struct {
	// Entries are the recovered records, in replay (FIFO seq) order.
	Entries []Entry
	// Floor is the durable floor the scan honored; HeadOff the durable head
	// offset it started from.
	Floor   uint64
	HeadOff int64
}

// Recover scans the ring after a crash and returns the committed entries at
// or above the durable floor, in FIFO order — the RPCs that were durable but
// not durably consumed. It restores the volatile cursors so the log can
// continue, re-registering recovered entries as live, then persists a fresh
// control checkpoint so a subsequent crash rescans from an exact frontier.
// p pays media-read latency for the scan and the checkpoint persist.
func (l *Log) Recover(p *sim.Proc) []Entry {
	ctrl := l.PM.ReadSyncInto(p, l.base, l.ctrl[:])
	headOff := int64(binary.LittleEndian.Uint64(ctrl[0:]))
	floor := binary.LittleEndian.Uint64(ctrl[8:])
	if floor == 0 {
		floor = 1
	}
	if headOff < 0 || headOff >= l.size {
		headOff = 0
	}

	l.gen++ // invalidate scheduled durable-span updates from before the crash
	l.window = nil
	l.bySeq = make(map[uint64]*rec)
	l.used = 0
	l.tail = headOff
	l.nextSeq = floor
	l.ctrlSkew = 0

	var out []Entry
	off := headOff
	expect := uint64(0)
	wrapped := false
	// Ring-end slack is only charged to the used-span once a valid wrapped
	// entry confirms the writer actually wrapped; a probe of offset 0 that
	// finds nothing must not consume capacity.
	pendSlackOff := int64(-1)
	wrapTo0 := func() {
		if expect != 0 {
			pendSlackOff = off
		}
		wrapped = true
		off = 0
	}
	for {
		if l.size-off < Overhead {
			if wrapped {
				break
			}
			wrapTo0()
			continue
		}
		hb := l.PM.ReadSyncInto(p, l.lo+off, l.hdr[:])
		seq := binary.LittleEndian.Uint64(hb[0:])
		oplen := binary.LittleEndian.Uint64(hb[8:])
		n := int(uint32(oplen))
		foot := EntrySize(n)
		valid := seq != 0 && foot <= l.size-off
		if valid {
			cb := l.PM.ReadSyncInto(p, l.lo+off+foot-8, l.cmt[:])
			valid = binary.LittleEndian.Uint64(cb) == commitMagic^seq^oplen
		}
		if !valid {
			// Either the torn frontier of the log (stop) or a head that
			// does not sit on a live entry: lazy control persists can
			// leave the durable head pointing into wrap slack, in which
			// case the surviving entries sit at the ring start. Probe
			// offset 0 once before giving up — the probe cannot resurrect
			// stale records because everything physically below the
			// durable head is below the durable floor and gets skipped.
			if !wrapped {
				wrapTo0()
				continue
			}
			break
		}
		if seq < floor {
			// Durably consumed on a previous lap: walk over it.
			off += foot
			continue
		}
		if seq < expect {
			break // stale entry from an older lap: frontier reached
		}
		// Sequences must strictly increase but need not be contiguous:
		// non-mutating requests consume sequence numbers without writing
		// log entries (see NextSeq).
		expect = seq + 1
		if pendSlackOff >= 0 {
			if slack := l.size - pendSlackOff; slack > 0 {
				l.window = append(l.window, &rec{off: pendSlackOff, foot: slack, consumed: true})
				l.used += slack
			}
			pendSlackOff = -1
		}
		payload := l.PM.ReadSync(p, l.lo+off+HeaderBytes, n)
		out = append(out, Entry{
			Seq: seq, Op: byte(oplen >> 56), Len: n,
			Payload: payload, Addr: l.lo + off,
		})
		r := &rec{seq: seq, off: off, foot: foot}
		l.window = append(l.window, r)
		l.bySeq[seq] = r
		l.used += foot
		l.tail = off + foot
		if l.nextSeq <= seq {
			l.nextSeq = seq + 1
		}
		off += foot
	}
	// Wrap slack positioned behind the first surviving entry is dead space
	// the checkpoint steps over; drop it so the head lands on a real entry.
	for len(l.window) > 0 && l.window[0].consumed {
		l.used -= l.window[0].foot
		l.window = l.window[1:]
	}
	// The durable span still stretches from the pre-crash head to the
	// rebuilt tail until the recovery checkpoint below lands; account for
	// the gap so concurrent reservations cannot overwrite the old frontier.
	span := l.tail - headOff
	for span < l.used {
		span += l.size
	}
	l.durUsed = span
	l.freedSinceCtrl = span - l.used
	l.Recovered += int64(len(out))
	if l.Trace != nil {
		first, last := uint64(0), uint64(0)
		if len(out) > 0 {
			first, last = out[0].Seq, out[len(out)-1].Seq
		}
		l.Trace("redolog", "recover: %d entries (seq %d..%d), floor=%d headOff=%d", len(out), first, last, floor, headOff)
	}
	if l.OnRecover != nil {
		l.OnRecover(RecoverInfo{Entries: out, Floor: floor, HeadOff: headOff})
	}
	// Recovery checkpoint: persist the exact rebuilt frontier. A crash
	// before it completes simply rescans from the old conservative head.
	done := l.persistCtrl(p.K.Now())
	p.Sleep(done.Sub(p.K.Now()))
	return out
}

// Accounting is a snapshot of the ring's volatile cursors for tests and
// invariant checks.
type Accounting struct {
	Used, DurUsed, Tail int64
	WindowLen, Live     int
	NextSeq             uint64
}

// Snapshot returns the current accounting state.
func (l *Log) Snapshot() Accounting {
	return Accounting{
		Used: l.used, DurUsed: l.durUsed, Tail: l.tail,
		WindowLen: len(l.window), Live: len(l.bySeq), NextSeq: l.nextSeq,
	}
}

// CheckAccounting verifies the ring's cursors against a from-scratch
// reconstruction from the FIFO window: contiguous offsets (mod one wrap),
// used equal to the sum of window footprints, a tail at the end of the last
// record, a live map in bijection with unconsumed records, and sequence
// numbers monotone below nextSeq. It returns the first violation found.
func (l *Log) CheckAccounting() error {
	var used int64
	live := 0
	lastSeq := uint64(0)
	for i, r := range l.window {
		if r.foot <= 0 || r.off < 0 || r.off+r.foot > l.size {
			return fmt.Errorf("redolog: window[%d] footprint [%d,+%d) outside ring of %d", i, r.off, r.foot, l.size)
		}
		if i > 0 {
			prev := l.window[i-1]
			end := prev.off + prev.foot
			if end == l.size {
				end = 0
			}
			if r.off != end {
				return fmt.Errorf("redolog: window[%d] at %d not contiguous with previous end %d", i, r.off, end)
			}
		}
		used += r.foot
		if r.seq == 0 {
			if !r.consumed {
				return fmt.Errorf("redolog: window[%d] wrap slack not marked consumed", i)
			}
			continue
		}
		if r.seq <= lastSeq {
			return fmt.Errorf("redolog: window[%d] seq %d not above predecessor %d", i, r.seq, lastSeq)
		}
		lastSeq = r.seq
		if r.seq >= l.nextSeq {
			return fmt.Errorf("redolog: window[%d] seq %d >= nextSeq %d", i, r.seq, l.nextSeq)
		}
		got, ok := l.bySeq[r.seq]
		if r.consumed {
			if ok {
				return fmt.Errorf("redolog: consumed seq %d still in live map", r.seq)
			}
		} else {
			live++
			if !ok || got != r {
				return fmt.Errorf("redolog: live seq %d missing from or mismatched in live map", r.seq)
			}
		}
	}
	if used != l.used {
		return fmt.Errorf("redolog: used=%d but window sums to %d", l.used, used)
	}
	if live != len(l.bySeq) {
		return fmt.Errorf("redolog: %d live window records but %d map entries", live, len(l.bySeq))
	}
	if len(l.window) > 0 {
		last := l.window[len(l.window)-1]
		if l.tail != last.off+last.foot {
			return fmt.Errorf("redolog: tail=%d but last record ends at %d", l.tail, last.off+last.foot)
		}
	}
	if l.used < 0 || l.used > l.size {
		return fmt.Errorf("redolog: used=%d outside [0,%d]", l.used, l.size)
	}
	if l.durUsed < l.used || l.durUsed > l.size {
		return fmt.Errorf("redolog: durable span %d outside [used=%d, size=%d]", l.durUsed, l.used, l.size)
	}
	return nil
}
