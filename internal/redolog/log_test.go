package redolog

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"prdma/internal/pmem"
	"prdma/internal/sim"
)

func newLog(size int64) (*sim.Kernel, *pmem.Device, *Log) {
	k := sim.New()
	pm := pmem.New(k, pmem.DefaultParams())
	return k, pm, New(k, pm, 1<<20, size)
}

func payload(i, n int) []byte {
	b := bytes.Repeat([]byte{byte(i)}, n)
	copy(b, fmt.Sprintf("entry-%d", i))
	return b
}

func TestAppendConsumeRoundTrip(t *testing.T) {
	k, _, l := newLog(1 << 16)
	var seqs []uint64
	for i := 0; i < 10; i++ {
		seq, done, err := l.AppendNIC(k.Now(), 1, 100, payload(i, 100))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
		k.RunUntil(done)
	}
	if l.Outstanding() != 10 {
		t.Fatalf("outstanding = %d", l.Outstanding())
	}
	for _, s := range seqs {
		l.Consume(k.Now(), s)
	}
	k.Run()
	if l.Outstanding() != 0 || l.UsedBytes() != 0 {
		t.Fatalf("outstanding=%d used=%d after full consume", l.Outstanding(), l.UsedBytes())
	}
}

func TestRecoverReturnsUnconsumedFIFO(t *testing.T) {
	k, _, l := newLog(1 << 16)
	l.CtrlEvery = 1 // eager head persistence: exact replay set
	for i := 0; i < 6; i++ {
		_, done, err := l.AppendNIC(k.Now(), byte(i), 64, payload(i, 64))
		if err != nil {
			t.Fatal(err)
		}
		k.RunUntil(done)
	}
	// Consume the first two (FIFO), then crash.
	l.Consume(k.Now(), 1)
	l.Consume(k.Now(), 2)
	k.Run()
	// Simulate restart: fresh Log object over the same PM.
	l2 := New(k, l.PM, 1<<20, 1<<16)
	var got []Entry
	k.Go("recover", func(p *sim.Proc) { got = l2.Recover(p) })
	k.Run()
	if len(got) != 4 {
		t.Fatalf("recovered %d entries, want 4", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+3) {
			t.Fatalf("entry %d has seq %d, want %d (FIFO order)", i, e.Seq, i+3)
		}
		if !bytes.Equal(e.Payload, payload(i+2, 64)) {
			t.Fatalf("entry %d payload corrupted", i)
		}
		if e.Op != byte(i+2) {
			t.Fatalf("entry %d op = %d", i, e.Op)
		}
	}
}

func TestTornEntryNotRecovered(t *testing.T) {
	k, pm, l := newLog(1 << 16)
	_, done, err := l.AppendNIC(k.Now(), 1, 64, payload(0, 64))
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(done)
	// Second entry: crash mid-persist.
	_, done2, err := l.AppendNIC(k.Now(), 2, 4096, payload(1, 4096))
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(done2 - 1) // stop just before completion
	pm.Crash()
	k.Run()
	l2 := New(k, pm, 1<<20, 1<<16)
	var got []Entry
	k.Go("recover", func(p *sim.Proc) { got = l2.Recover(p) })
	k.Run()
	if len(got) != 1 {
		t.Fatalf("recovered %d entries, want 1 (torn second entry)", len(got))
	}
	if got[0].Seq != 1 {
		t.Fatalf("recovered seq %d", got[0].Seq)
	}
}

func TestDataBeforeOperatorInvariant(t *testing.T) {
	// Crash at every 10% of the persist window; whenever the commit word
	// is durable, the payload must be intact.
	for frac := 1; frac <= 10; frac++ {
		k, pm, l := newLog(1 << 16)
		want := payload(7, 1024)
		_, done, err := l.AppendNIC(k.Now(), 9, 1024, want)
		if err != nil {
			t.Fatal(err)
		}
		k.RunUntil(sim.Time(int64(done) * int64(frac) / 10))
		pm.Crash()
		k.Run()
		l2 := New(k, pm, 1<<20, 1<<16)
		var got []Entry
		k.Go("recover", func(p *sim.Proc) { got = l2.Recover(p) })
		k.Run()
		switch len(got) {
		case 0: // commit not durable: fine
		case 1:
			if !bytes.Equal(got[0].Payload, want) {
				t.Fatalf("frac=%d: committed entry has torn payload", frac)
			}
		default:
			t.Fatalf("frac=%d: recovered %d entries", frac, len(got))
		}
	}
}

func TestRingWrapAndReuse(t *testing.T) {
	k, _, l := newLog(4096 + ctrlBytes)
	// Entries of 512+24 bytes: ~7 per lap. Append and consume in lockstep
	// for several laps.
	for i := 0; i < 100; i++ {
		seq, done, err := l.AppendNIC(k.Now(), 1, 512, nil)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		k.RunUntil(done)
		l.Consume(k.Now(), seq)
		k.Run()
	}
	if l.UsedBytes() != 0 {
		t.Fatalf("used = %d after lockstep laps", l.UsedBytes())
	}
}

func TestRingFullThrottles(t *testing.T) {
	k, _, l := newLog(2048 + ctrlBytes)
	var lastErr error
	n := 0
	for i := 0; i < 100; i++ {
		_, _, err := l.AppendNIC(k.Now(), 1, 128, nil)
		if err != nil {
			lastErr = err
			break
		}
		n++
	}
	if lastErr == nil {
		t.Fatal("ring never filled")
	}
	if n == 0 {
		t.Fatal("no appends admitted")
	}
	// Consuming frees space — but only once the head advance is durable:
	// until the control persist lands, recovery may rescan the freed bytes,
	// so Reserve must keep refusing them (and expedite the persist).
	l.Consume(k.Now(), 1)
	if _, _, err := l.AppendNIC(k.Now(), 1, 128, nil); err == nil {
		t.Fatal("append admitted before the head advance was durable")
	}
	k.Run() // the expedited control persist completes
	if _, _, err := l.AppendNIC(k.Now(), 1, 128, nil); err != nil {
		t.Fatalf("append after durable consume: %v", err)
	}
}

func TestOversizeEntryRejected(t *testing.T) {
	k, _, l := newLog(1024 + ctrlBytes)
	if _, _, err := l.AppendNIC(k.Now(), 1, 4096, nil); err == nil {
		t.Fatal("oversize entry accepted")
	}
}

func TestOutOfOrderConsumeReclaimsInOrder(t *testing.T) {
	k, _, l := newLog(1 << 16)
	var seqs []uint64
	for i := 0; i < 3; i++ {
		seq, done, _ := l.AppendNIC(k.Now(), 1, 64, nil)
		seqs = append(seqs, seq)
		k.RunUntil(done)
	}
	used := l.UsedBytes()
	// Consume the middle and last entries: no space reclaimed yet.
	l.Consume(k.Now(), seqs[1])
	l.Consume(k.Now(), seqs[2])
	if l.UsedBytes() != used {
		t.Fatal("space reclaimed before FIFO prefix consumed")
	}
	l.Consume(k.Now(), seqs[0])
	if l.UsedBytes() != 0 {
		t.Fatalf("used = %d after prefix consume", l.UsedBytes())
	}
}

func TestConsumeUnknownPanics(t *testing.T) {
	k, _, l := newLog(1 << 16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Consume(k.Now(), 999)
}

func TestRecoverAfterWrap(t *testing.T) {
	k, pm, l := newLog(4096 + ctrlBytes)
	// Fill several laps with lockstep consumption, then leave a few live
	// entries straddling the wrap point and crash.
	i := 0
	for ; i < 9; i++ {
		seq, done, err := l.AppendNIC(k.Now(), 1, 512, payload(i, 512))
		if err != nil {
			t.Fatal(err)
		}
		k.RunUntil(done)
		l.Consume(k.Now(), seq)
		k.Run()
	}
	var liveSeqs []uint64
	var livePayloads [][]byte
	for j := 0; j < 4; j++ {
		pl := payload(100+j, 512)
		seq, done, err := l.AppendNIC(k.Now(), 1, 512, pl)
		if err != nil {
			t.Fatal(err)
		}
		liveSeqs = append(liveSeqs, seq)
		livePayloads = append(livePayloads, pl)
		k.RunUntil(done)
	}
	k.Run()
	pm.Crash() // nothing in flight; pure restart

	l2 := New(k, pm, 1<<20, 4096+ctrlBytes)
	var got []Entry
	k.Go("recover", func(p *sim.Proc) { got = l2.Recover(p) })
	k.Run()
	if len(got) != len(liveSeqs) {
		t.Fatalf("recovered %d entries, want %d", len(got), len(liveSeqs))
	}
	for j, e := range got {
		if e.Seq != liveSeqs[j] {
			t.Fatalf("entry %d seq %d want %d", j, e.Seq, liveSeqs[j])
		}
		if !bytes.Equal(e.Payload, livePayloads[j]) {
			t.Fatalf("entry %d payload corrupted after wrap", j)
		}
	}
	// The recovered log must keep working.
	if _, _, err := l2.AppendNIC(k.Now(), 1, 512, nil); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

func TestRecoveredLogContinuesSeq(t *testing.T) {
	k, pm, l := newLog(1 << 16)
	_, done, _ := l.AppendNIC(k.Now(), 1, 64, payload(0, 64))
	k.RunUntil(done)
	l2 := New(k, pm, 1<<20, 1<<16)
	k.Go("recover", func(p *sim.Proc) { l2.Recover(p) })
	k.Run()
	seq, _, err := l2.Reserve(64)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("post-recovery seq = %d, want 2", seq)
	}
}

func TestAppendCPUPath(t *testing.T) {
	k, pm, l := newLog(1 << 16)
	var addr int64
	k.Go("cpu", func(p *sim.Proc) {
		var err error
		_, addr, err = l.AppendCPU(p, 3, 256, payload(1, 256))
		if err != nil {
			t.Error(err)
		}
	})
	k.Run()
	// Entry is durable: header seq at addr.
	if pm.ReadBytes(addr, 1)[0] != 1 {
		t.Fatal("CPU-appended entry not durable")
	}
}

func TestSyntheticPayloadNotRecoverable(t *testing.T) {
	k, pm, l := newLog(1 << 16)
	_, done, _ := l.AppendNIC(k.Now(), 1, 4096, nil) // timing-only
	k.RunUntil(done)
	l2 := New(k, pm, 1<<20, 1<<16)
	var got []Entry
	k.Go("recover", func(p *sim.Proc) { got = l2.Recover(p) })
	k.Run()
	if len(got) != 0 {
		t.Fatal("synthetic entry should not recover (no commit word)")
	}
}

func TestEntrySizeAndEncode(t *testing.T) {
	if EntrySize(0) != 24 || EntrySize(1) != 32 || EntrySize(8) != 32 {
		t.Fatalf("EntrySize: %d %d %d", EntrySize(0), EntrySize(1), EntrySize(8))
	}
	b := Encode(5, 7, 16, bytes.Repeat([]byte{1}, 16))
	if int64(len(b)) != EntrySize(16) {
		t.Fatalf("encoded len %d", len(b))
	}
	if Encode(5, 7, 16, nil); len(Encode(5, 7, 16, nil)) != HeaderBytes {
		t.Fatal("nil-payload encode should be header-only")
	}
}

// TestRecoverHeadLagsAcrossWrap batches control persists so the durable
// head stays several consumes behind while the writer wraps the ring.
// Recovery must replay at-least-once from the stale head: the two
// non-durably-consumed entries reappear, followed by the live tail and the
// wrapped entry — and never fewer.
func TestRecoverHeadLagsAcrossWrap(t *testing.T) {
	k, pm, l := newLog(4096 + ctrlBytes)
	l.CtrlEvery = 1
	// Lap 1: seven 536-byte entries fill the ring; durably consume four,
	// advancing the control words to (head=entry 5, floor=5).
	var payloads [][]byte
	for i := 1; i <= 7; i++ {
		pl := payload(i, 512)
		payloads = append(payloads, pl)
		_, done, err := l.AppendNIC(k.Now(), 1, 512, pl)
		if err != nil {
			t.Fatal(err)
		}
		k.RunUntil(done)
	}
	for seq := uint64(1); seq <= 4; seq++ {
		l.Consume(k.Now(), seq)
		k.Run()
	}
	// Lazy window: consume 5 and 6 without a control persist (entry 7 keeps
	// the window non-empty, so the full-drain persist does not fire either).
	l.CtrlEvery = 100
	l.Consume(k.Now(), 5)
	l.Consume(k.Now(), 6)
	// Entry 8 does not fit the 344-byte tailroom: wrap slack plus a fresh
	// entry at offset 0, while the durable head still points at entry 5.
	pl8 := payload(8, 512)
	payloads = append(payloads, pl8)
	if _, done, err := l.AppendNIC(k.Now(), 1, 512, pl8); err != nil {
		t.Fatal(err)
	} else {
		k.RunUntil(done)
	}
	k.Run()
	pm.Crash()
	k.Run()

	l2 := New(k, pm, 1<<20, 4096+ctrlBytes)
	var got []Entry
	k.Go("recover", func(p *sim.Proc) { got = l2.Recover(p) })
	k.Run()
	want := []uint64{5, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %v", len(got), want)
	}
	for i, e := range got {
		if e.Seq != want[i] {
			t.Fatalf("entry %d seq %d, want %d", i, e.Seq, want[i])
		}
		if !bytes.Equal(e.Payload, payloads[e.Seq-1]) {
			t.Fatalf("seq %d payload corrupted across wrap", e.Seq)
		}
	}
	if err := l2.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
	// The rebuilt ring keeps working past the wrap.
	seq, _, err := l2.Reserve(512)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 9 {
		t.Fatalf("post-recovery seq = %d, want 9", seq)
	}
}

// TestRecoverHeadInWrapSlack drives the durable head into the ring-end wrap
// slack: every entry of a full lap is durably consumed (head = old tail),
// then the next append wraps. The recovery scan finds nothing at the head,
// probes offset 0, and must pick up the wrapped entry without charging
// phantom slack to the used span.
func TestRecoverHeadInWrapSlack(t *testing.T) {
	k, pm, l := newLog(4096 + ctrlBytes)
	l.CtrlEvery = 1
	for i := 1; i <= 7; i++ {
		seq, done, err := l.AppendNIC(k.Now(), 1, 512, payload(i, 512))
		if err != nil {
			t.Fatal(err)
		}
		k.RunUntil(done)
		l.Consume(k.Now(), seq)
		k.Run()
	}
	// Durable control words now read (head=3752, floor=8) — and 3752 is
	// about to become wrap slack.
	pl8 := payload(8, 512)
	if _, done, err := l.AppendNIC(k.Now(), 1, 512, pl8); err != nil {
		t.Fatal(err)
	} else {
		k.RunUntil(done)
	}
	k.Run()
	pm.Crash()
	k.Run()

	l2 := New(k, pm, 1<<20, 4096+ctrlBytes)
	var got []Entry
	k.Go("recover", func(p *sim.Proc) { got = l2.Recover(p) })
	k.Run()
	if len(got) != 1 || got[0].Seq != 8 {
		t.Fatalf("recovered %v, want exactly seq 8", got)
	}
	if !bytes.Equal(got[0].Payload, pl8) {
		t.Fatal("wrapped entry payload corrupted")
	}
	if err := l2.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
	if seq, _, err := l2.Reserve(512); err != nil || seq != 9 {
		t.Fatalf("post-recovery reserve: seq=%d err=%v", seq, err)
	}
}

// TestCrashBetweenCtrlWordPersists crashes at every offset across the
// control-persist window, so recovery sees every split of {old,new} head ×
// {old,new} floor — including a fresh floor with a stale head, which forces
// the scan to walk over a durably-consumed entry. No split may lose an
// unconsumed durable entry.
func TestCrashBetweenCtrlWordPersists(t *testing.T) {
	for delta := 0; delta <= 8; delta++ {
		k, pm, l := newLog(1<<14 + ctrlBytes)
		l.CtrlEvery = 1
		var payloads [][]byte
		for i := 1; i <= 6; i++ {
			pl := payload(i, 64)
			payloads = append(payloads, pl)
			_, done, err := l.AppendNIC(k.Now(), 1, 64, pl)
			if err != nil {
				t.Fatal(err)
			}
			k.RunUntil(done)
		}
		start := k.Now()
		done := l.Consume(k.Now(), 1) // persists head then floor
		if done <= start {
			t.Fatal("control persist completed instantly; the sweep is vacuous")
		}
		k.RunUntil(start.Add(done.Sub(start) * time.Duration(delta) / 8))
		pm.Crash()
		k.Run()

		l2 := New(k, pm, 1<<20, 1<<14+ctrlBytes)
		var got []Entry
		k.Go("recover", func(p *sim.Proc) { got = l2.Recover(p) })
		k.Run()
		// Entries 2..6 are durable and unconsumed: every split must return
		// them; entry 1 may also replay (at-least-once).
		seen := make(map[uint64][]byte)
		last := uint64(0)
		for _, e := range got {
			if e.Seq <= last {
				t.Fatalf("delta=%d: seq %d after %d breaks FIFO order", delta, e.Seq, last)
			}
			last = e.Seq
			seen[e.Seq] = e.Payload
		}
		for seq := uint64(2); seq <= 6; seq++ {
			pl, ok := seen[seq]
			if !ok {
				t.Fatalf("delta=%d: unconsumed durable seq %d lost", delta, seq)
			}
			if !bytes.Equal(pl, payloads[seq-1]) {
				t.Fatalf("delta=%d: seq %d payload corrupted", delta, seq)
			}
		}
		if err := l2.CheckAccounting(); err != nil {
			t.Fatalf("delta=%d: %v", delta, err)
		}
	}
}

// TestRecoverWithSeqGaps interleaves ring-less sequence allocations
// (NextSeq, the non-mutating request path) with real appends: the recovery
// scan must accept the gapped, strictly-increasing run and continue the
// sequence space above the highest allocation it can see.
func TestRecoverWithSeqGaps(t *testing.T) {
	k, pm, l := newLog(1 << 14)
	var want []uint64
	for i := 0; i < 4; i++ {
		seq, done, err := l.AppendNIC(k.Now(), 1, 64, payload(i, 64))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, seq)
		k.RunUntil(done)
		l.NextSeq() // a read slips between every two writes
	}
	pm.Crash()
	k.Run()

	l2 := New(k, pm, 1<<20, 1<<14)
	var got []Entry
	k.Go("recover", func(p *sim.Proc) { got = l2.Recover(p) })
	k.Run()
	if len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Seq != want[i] {
			t.Fatalf("entry %d seq %d, want %d", i, e.Seq, want[i])
		}
	}
	// The trailing NextSeq allocation is invisible to the scan; continuing
	// from the highest logged sequence is correct (it was never acked with
	// a durability promise and owns no log bytes).
	if seq, _, err := l2.Reserve(64); err != nil || seq != want[len(want)-1]+1 {
		t.Fatalf("post-recovery reserve: seq=%d err=%v", seq, err)
	}
}

// Property: for a random schedule of appends, in-order consumes, and a crash
// at a random time, recovery returns exactly a contiguous FIFO range of
// committed entries — never a torn payload, never an entry that was durably
// consumed, never out of order — and every entry whose append completed
// before the crash and was not consumed IS recovered.
func TestCrashRecoveryProperty(t *testing.T) {
	type step struct {
		Size    uint8
		Consume bool
	}
	f := func(steps []step, crashAt uint16) bool {
		k, pm, l := newLog(8192 + ctrlBytes)
		type applied struct {
			seq  uint64
			done sim.Time
			data []byte
		}
		var appendedList []applied
		consumed := make(map[uint64]bool)
		nextConsume := 0
		for i, s := range steps {
			n := int(s.Size)%512 + 8
			data := payload(i, n)
			seq, done, err := l.AppendNIC(k.Now(), 1, n, data)
			if err == nil {
				appendedList = append(appendedList, applied{seq, done, data})
			}
			k.RunFor(time.Duration(int(s.Size)) * time.Microsecond)
			if s.Consume && nextConsume < len(appendedList) {
				a := appendedList[nextConsume]
				if k.Now() >= a.done { // only consume completed appends
					l.Consume(k.Now(), a.seq)
					consumed[a.seq] = true
					nextConsume++
				}
			}
		}
		crash := k.Now().Add(time.Duration(crashAt) * time.Microsecond / 4)
		k.RunUntil(crash)
		crashTime := k.Now()
		pm.Crash()
		k.Run()

		l2 := New(k, pm, 1<<20, 8192+ctrlBytes)
		var got []Entry
		k.Go("recover", func(p *sim.Proc) { got = l2.Recover(p) })
		k.Run()

		// 1. FIFO order, no duplicates.
		for i := 1; i < len(got); i++ {
			if got[i].Seq != got[i-1].Seq+1 {
				return false
			}
		}
		byseq := make(map[uint64]applied)
		for _, a := range appendedList {
			byseq[a.seq] = a
		}
		for _, e := range got {
			a, ok := byseq[e.Seq]
			if !ok {
				return false // recovered an entry that was never appended
			}
			// 2. Never a torn payload.
			if !bytes.Equal(e.Payload, a.data) {
				return false
			}
		}
		// 3. Every durably-appended, unconsumed entry is recovered.
		// (Consume persists lag, so recently consumed entries MAY also
		// appear — at-least-once is allowed.)
		gotSet := make(map[uint64]bool)
		for _, e := range got {
			gotSet[e.Seq] = true
		}
		for _, a := range appendedList {
			if a.done <= crashTime && !consumed[a.seq] && !gotSet[a.seq] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
