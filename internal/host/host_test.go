package host

import (
	"bytes"
	"testing"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

func newHost(name string, mod func(*Params)) (*sim.Kernel, *Host) {
	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), 1)
	hp := DefaultParams()
	if mod != nil {
		mod(&hp)
	}
	return k, New(k, name, net, hp, pmem.DefaultParams(), rnic.DefaultParams())
}

func TestLoadFactorInflatesCosts(t *testing.T) {
	measure := func(lf float64) time.Duration {
		k, h := newHost("h", func(p *Params) { p.LoadFactor = lf; p.JitterSigma = 0 })
		var d time.Duration
		k.Go("c", func(p *sim.Proc) {
			start := p.Now()
			h.Compute(p, 10*time.Microsecond)
			d = p.Now().Sub(start)
		})
		k.Run()
		return d
	}
	idle, busy := measure(1), measure(4)
	if busy != 4*idle {
		t.Fatalf("busy %v != 4x idle %v", busy, idle)
	}
}

func TestComputeExactIgnoresLoad(t *testing.T) {
	k, h := newHost("h", func(p *Params) { p.LoadFactor = 8; p.JitterSigma = 1 })
	var d time.Duration
	k.Go("c", func(p *sim.Proc) {
		start := p.Now()
		h.ComputeExact(p, 100*time.Microsecond)
		d = p.Now().Sub(start)
	})
	k.Run()
	if d != 100*time.Microsecond {
		t.Fatalf("exact compute = %v", d)
	}
}

func TestJitterIsDeterministicPerHost(t *testing.T) {
	sample := func() []time.Duration {
		k, h := newHost("same-name", nil)
		var out []time.Duration
		k.Go("c", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				s := p.Now()
				h.Compute(p, time.Microsecond)
				out = append(out, p.Now().Sub(s))
			}
		})
		k.Run()
		return out
	}
	a, b := sample(), sample()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("jitter not deterministic across identical runs")
		}
	}
}

func TestJitterHasVariance(t *testing.T) {
	k, h := newHost("h", nil)
	seen := make(map[time.Duration]bool)
	k.Go("c", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			s := p.Now()
			h.Compute(p, 10*time.Microsecond)
			seen[p.Now().Sub(s)] = true
		}
	})
	k.Run()
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct costs", len(seen))
	}
}

func TestMemcpyScalesWithSize(t *testing.T) {
	k, h := newHost("h", func(p *Params) { p.JitterSigma = 0 })
	var small, large time.Duration
	k.Go("c", func(p *sim.Proc) {
		s := p.Now()
		h.Memcpy(p, 1024)
		small = p.Now().Sub(s)
		s = p.Now()
		h.Memcpy(p, 1024*1024)
		large = p.Now().Sub(s)
	})
	k.Run()
	if large < 100*small {
		t.Fatalf("1MiB copy (%v) should dwarf 1KiB copy (%v)", large, small)
	}
}

func TestPersistCPUMakesDurable(t *testing.T) {
	k, h := newHost("h", nil)
	data := []byte("durable via clwb")
	k.Go("c", func(p *sim.Proc) {
		h.PersistCPU(p, 4096, len(data), data)
	})
	k.Run()
	if !bytes.Equal(h.PM.ReadBytes(4096, len(data)), data) {
		t.Fatal("PersistCPU did not persist")
	}
}

func TestCrashClearsVolatileKeepsPM(t *testing.T) {
	k, h := newHost("h", nil)
	h.PM.WriteRaw(0, []byte{1})
	h.DRAM.Write(DRAMBase, []byte{2})
	h.LLC.InstallDirty(64, 1, []byte{3})
	h.Crash()
	if h.PM.ReadBytes(0, 1)[0] != 1 {
		t.Fatal("PM lost on crash")
	}
	if h.DRAM.Read(DRAMBase, 1)[0] != 0 {
		t.Fatal("DRAM survived crash")
	}
	if h.LLC.DirtyIn(64, 1) {
		t.Fatal("LLC dirty lines survived crash")
	}
	if h.NIC.EP.Up() {
		t.Fatal("NIC still up after crash")
	}
	if h.Crashes != 1 {
		t.Fatalf("Crashes = %d", h.Crashes)
	}
	h.Restart()
	if !h.NIC.EP.Up() {
		t.Fatal("NIC down after restart")
	}
	_ = k
}

func TestArenasDisjointRegions(t *testing.T) {
	_, h := newHost("h", nil)
	pa, err := h.PMArena.Alloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	da, err := h.DRAMArena.Alloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if pa >= DRAMBase || da < DRAMBase {
		t.Fatalf("arena addresses in wrong regions: pm=%#x dram=%#x", pa, da)
	}
}

func TestPostPollDispatchCharges(t *testing.T) {
	k, h := newHost("h", func(p *Params) { p.JitterSigma = 0 })
	var total time.Duration
	k.Go("c", func(p *sim.Proc) {
		s := p.Now()
		h.Post(p)
		h.PollDelay(p)
		h.Dispatch(p)
		total = p.Now().Sub(s)
	})
	k.Run()
	want := h.Params.PostWR + h.Params.PollDetect + h.Params.Dispatch
	if total != want {
		t.Fatalf("total = %v, want %v", total, want)
	}
}
