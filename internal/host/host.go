// Package host assembles one machine of the testbed — CPU cores, DRAM, PM,
// LLC, and an RNIC — and models the software costs the paper's breakdown
// (Fig. 20) attributes to the sender and receiver: posting work requests,
// polling completion/message buffers, dispatching handlers, memcpy, and
// CPU-path persists. A load factor inflates software costs to reproduce the
// busy-sender/busy-receiver experiments (Figs. 15 and 16).
package host

import (
	"time"

	"prdma/internal/cache"
	"prdma/internal/dram"
	"prdma/internal/fabric"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// Address-space layout: every host maps PM low and DRAM high. The regions
// are sparse, so the sizes are generous.
const (
	PMBase   = int64(0)
	PMSize   = int64(1) << 40
	DRAMBase = int64(1) << 44
	DRAMSize = int64(1) << 40
)

// Params configures the software-cost model of one host.
type Params struct {
	// PostWR is the CPU cost of posting one work request (doorbell).
	PostWR time.Duration
	// PollDetect is the latency from data landing in a polled buffer to
	// the polling thread noticing it.
	PollDetect time.Duration
	// Dispatch is the cost of handing a request to a worker.
	Dispatch time.Duration
	// MemcpyBytesPerSec is the DRAM-to-DRAM copy bandwidth.
	MemcpyBytesPerSec float64
	// LoadFactor scales all software costs; 1 = idle host. The busy-CPU
	// experiments use ~4.
	LoadFactor float64
	// JitterSigma adds log-normal jitter (sigma of the underlying normal)
	// to software costs; this is what gives RPC latency its tail.
	JitterSigma float64
}

// DefaultParams returns the Xeon-like defaults from DESIGN.md §4.
func DefaultParams() Params {
	return Params{
		PostWR:            200 * time.Nanosecond,
		PollDetect:        300 * time.Nanosecond,
		Dispatch:          500 * time.Nanosecond,
		MemcpyBytesPerSec: 10e9,
		LoadFactor:        1.0,
		JitterSigma:       0.25,
	}
}

// Host is one machine.
type Host struct {
	K      *sim.Kernel
	Name   string
	Params Params

	PM   *pmem.Device
	LLC  *cache.LLC
	DRAM *dram.Memory
	NIC  *rnic.NIC

	// PMArena and DRAMArena hand out addresses in the two regions.
	PMArena   *pmem.Arena
	DRAMArena *pmem.Arena

	rng *sim.Rand

	// Crashes counts host failures (for the recovery experiments).
	Crashes int
	// SWTime accumulates all software-model time spent on this host; the
	// Fig. 20 breakdown divides it by operations.
	SWTime time.Duration
}

// New builds a host and attaches its NIC to net.
func New(k *sim.Kernel, name string, net *fabric.Network, hp Params, pp pmem.Params, np rnic.Params) *Host {
	h := &Host{K: k, Name: name, Params: hp, rng: sim.NewRand(hashName(name))}
	h.PM = pmem.New(k, pp)
	h.LLC = cache.New(k, h.PM)
	h.DRAM = dram.New()
	h.NIC = rnic.New(k, name, net, h.PM, h.LLC, h.DRAM, np)
	h.registerMRs()
	h.PMArena = pmem.NewArena(PMBase, PMSize)
	h.DRAMArena = pmem.NewArena(DRAMBase, DRAMSize)
	return h
}

func (h *Host) registerMRs() {
	h.NIC.RegisterMR(PMBase, PMSize, rnic.MemPM)
	h.NIC.RegisterMR(DRAMBase, DRAMSize, rnic.MemDRAM)
}

func hashName(s string) uint64 {
	var x uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= 1099511628211
	}
	return x
}

// cost scales d by the load factor and jitter.
func (h *Host) cost(d time.Duration) time.Duration {
	lf := h.Params.LoadFactor
	if lf <= 0 {
		lf = 1
	}
	out := time.Duration(float64(d) * lf)
	if s := h.Params.JitterSigma; s > 0 && out > 0 {
		// Normalize the log-normal so its mean is 1.
		j := h.rng.LogNorm(-s*s/2, s)
		out = time.Duration(float64(out) * j)
	}
	return out
}

// spend sleeps p for d and accounts it as software time.
func (h *Host) spend(p *sim.Proc, d time.Duration) {
	h.SWTime += d
	p.Sleep(d)
}

// Compute burns d of CPU time (scaled by load and jitter) on proc p.
func (h *Host) Compute(p *sim.Proc, d time.Duration) {
	h.spend(p, h.cost(d))
}

// ComputeExact burns exactly d — no load scaling, no jitter — for injected
// workload components that the paper holds constant (the 100 µs "RPC
// processing" of Fig. 8).
func (h *Host) ComputeExact(p *sim.Proc, d time.Duration) {
	h.spend(p, d)
}

// Post charges the work-request posting cost.
func (h *Host) Post(p *sim.Proc) { h.spend(p, h.cost(h.Params.PostWR)) }

// PollDelay charges the polling-detection latency.
func (h *Host) PollDelay(p *sim.Proc) { h.spend(p, h.cost(h.Params.PollDetect)) }

// Dispatch charges the handler hand-off cost.
func (h *Host) Dispatch(p *sim.Proc) { h.spend(p, h.cost(h.Params.Dispatch)) }

// Memcpy charges a CPU copy of n bytes.
func (h *Host) Memcpy(p *sim.Proc, n int) {
	c := sim.CostModel{BytesPerSec: h.Params.MemcpyBytesPerSec}
	h.spend(p, h.cost(c.Cost(n)))
}

// PersistCPU copies data into PM over the CPU store+clwb path and blocks p
// until it is durable. This is the receiver-side persist of traditional
// RPCs — note its bandwidth disadvantage versus the NIC's DMA path.
func (h *Host) PersistCPU(p *sim.Proc, addr int64, n int, data []byte) {
	h.PM.PersistSync(p, addr, n, data, pmem.CPU)
}

// Crash fails the host: NIC SRAM, LLC and DRAM contents are lost; PM
// survives. The caller is responsible for restart choreography.
func (h *Host) Crash() {
	h.Crashes++
	h.NIC.Crash()
	h.PM.Crash()
	h.LLC.Crash()
	h.DRAM.Crash()
}

// Restart brings the NIC back up. Applications re-create QPs and rebuild
// volatile state (from PM where they can — that is the point of the paper).
func (h *Host) Restart() {
	h.NIC.Restart()
	h.registerMRs()
}
