// Package stats provides latency recorders and throughput counters for the
// PRDMA experiment harness. Recorders keep raw samples (experiment sizes are
// bounded) so any percentile can be computed exactly, matching how the paper
// reports 95th/99th/99.9th tails.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Latency records a set of duration samples.
type Latency struct {
	samples []time.Duration
	sorted  bool
}

// NewLatency returns an empty recorder with capacity hint n.
func NewLatency(n int) *Latency {
	return &Latency{samples: make([]time.Duration, 0, n)}
}

// Add records one sample.
func (l *Latency) Add(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Count returns the number of samples.
func (l *Latency) Count() int { return len(l.samples) }

func (l *Latency) sortIfNeeded() {
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank on the sorted samples. Zero samples yields zero.
func (l *Latency) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	if p <= 0 {
		p = math.SmallestNonzeroFloat64
	}
	if p > 100 {
		p = 100
	}
	l.sortIfNeeded()
	rank := int(math.Ceil(p / 100 * float64(len(l.samples))))
	if rank < 1 {
		rank = 1
	}
	return l.samples[rank-1]
}

// Mean returns the arithmetic mean of the samples.
func (l *Latency) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

// Min returns the smallest sample.
func (l *Latency) Min() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sortIfNeeded()
	return l.samples[0]
}

// Max returns the largest sample.
func (l *Latency) Max() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sortIfNeeded()
	return l.samples[len(l.samples)-1]
}

// Sum returns the total of all samples.
func (l *Latency) Sum() time.Duration {
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum
}

// Stddev returns the sample standard deviation.
func (l *Latency) Stddev() time.Duration {
	n := len(l.samples)
	if n < 2 {
		return 0
	}
	mean := float64(l.Mean())
	var ss float64
	for _, s := range l.samples {
		d := float64(s) - mean
		ss += d * d
	}
	return time.Duration(math.Sqrt(ss / float64(n-1)))
}

// Summary is a compact snapshot of a latency distribution.
type Summary struct {
	Count                  int
	Mean, P50, P95, P99    time.Duration
	P999, Min, Max, Stddev time.Duration
}

// Summarize computes the standard summary.
func (l *Latency) Summarize() Summary {
	return Summary{
		Count: l.Count(), Mean: l.Mean(),
		P50: l.Percentile(50), P95: l.Percentile(95),
		P99: l.Percentile(99), P999: l.Percentile(99.9),
		Min: l.Min(), Max: l.Max(), Stddev: l.Stddev(),
	}
}

// Micros formats d with microsecond precision, as the paper's plots do.
func Micros(d time.Duration) string {
	return fmt.Sprintf("%.2fus", float64(d)/float64(time.Microsecond))
}

// Throughput describes a completed-operations-over-time measurement.
type Throughput struct {
	Ops     int
	Elapsed time.Duration
}

// KOPS returns thousands of operations per second, the unit in Fig. 8.
func (t Throughput) KOPS() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Ops) / t.Elapsed.Seconds() / 1e3
}

// OPS returns operations per second.
func (t Throughput) OPS() float64 { return t.KOPS() * 1e3 }

func (t Throughput) String() string {
	return fmt.Sprintf("%.1f KOPS (%d ops in %v)", t.KOPS(), t.Ops, t.Elapsed)
}

// Counter is a named monotone counter used for model introspection
// (retransmissions, log replays, cache flushes, ...).
type Counter struct {
	Name string
	N    int64
}

// Inc adds one.
func (c *Counter) Inc() { c.N++ }

// Addn adds n.
func (c *Counter) Addn(n int64) { c.N += n }

// Series is an ordered list of (x, y) points for figure output.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// AddPoint appends a point.
func (s *Series) AddPoint(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}
