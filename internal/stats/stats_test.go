package stats

import (
	"testing"
	"testing/quick"
	"time"
)

func mkLatency(vals ...int) *Latency {
	l := NewLatency(len(vals))
	for _, v := range vals {
		l.Add(time.Duration(v) * time.Microsecond)
	}
	return l
}

func TestPercentileNearestRank(t *testing.T) {
	l := mkLatency(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	cases := []struct {
		p    float64
		want int
	}{
		{50, 5}, {90, 9}, {99, 10}, {100, 10}, {10, 1}, {1, 1},
	}
	for _, c := range cases {
		if got := l.Percentile(c.p); got != time.Duration(c.want)*time.Microsecond {
			t.Errorf("P%v = %v, want %dus", c.p, got, c.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	l := NewLatency(0)
	if l.Percentile(99) != 0 || l.Mean() != 0 || l.Min() != 0 || l.Max() != 0 {
		t.Fatal("empty recorder should return zeros")
	}
}

func TestMeanMinMaxSum(t *testing.T) {
	l := mkLatency(2, 4, 6)
	if l.Mean() != 4*time.Microsecond {
		t.Fatalf("mean = %v", l.Mean())
	}
	if l.Min() != 2*time.Microsecond || l.Max() != 6*time.Microsecond {
		t.Fatal("min/max wrong")
	}
	if l.Sum() != 12*time.Microsecond {
		t.Fatalf("sum = %v", l.Sum())
	}
}

func TestStddev(t *testing.T) {
	l := mkLatency(2, 4, 4, 4, 5, 5, 7, 9)
	// sample stddev of this classic set is ~2.138
	got := float64(l.Stddev()) / float64(time.Microsecond)
	if got < 2.0 || got > 2.3 {
		t.Fatalf("stddev = %v", got)
	}
	if mkLatency(5).Stddev() != 0 {
		t.Fatal("single-sample stddev should be 0")
	}
}

func TestAddAfterSortResorts(t *testing.T) {
	l := mkLatency(5, 1)
	_ = l.Percentile(50) // forces sort
	l.Add(0)
	if l.Min() != 0 {
		t.Fatal("Add after sort not re-sorted")
	}
}

func TestSummarize(t *testing.T) {
	l := mkLatency(1, 2, 3, 4, 100)
	s := l.Summarize()
	if s.Count != 5 || s.Max != 100*time.Microsecond || s.Min != time.Microsecond {
		t.Fatalf("summary: %+v", s)
	}
	if s.P99 != 100*time.Microsecond {
		t.Fatalf("P99 = %v", s.P99)
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		l := NewLatency(len(raw))
		for _, v := range raw {
			l.Add(time.Duration(v))
		}
		p := float64(pRaw%100) + 1
		v := l.Percentile(p)
		return v >= l.Min() && v <= l.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		l := NewLatency(len(raw))
		for _, v := range raw {
			l.Add(time.Duration(v))
		}
		prev := time.Duration(-1)
		for _, p := range []float64{10, 25, 50, 75, 90, 95, 99, 99.9, 100} {
			v := l.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThroughput(t *testing.T) {
	th := Throughput{Ops: 1000, Elapsed: time.Second}
	if th.KOPS() != 1.0 {
		t.Fatalf("KOPS = %v", th.KOPS())
	}
	if th.OPS() != 1000 {
		t.Fatalf("OPS = %v", th.OPS())
	}
	if (Throughput{Ops: 5}).KOPS() != 0 {
		t.Fatal("zero elapsed should yield 0")
	}
}

func TestMicros(t *testing.T) {
	if got := Micros(1500 * time.Nanosecond); got != "1.50us" {
		t.Fatalf("Micros = %q", got)
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "x"}
	c.Inc()
	c.Addn(4)
	if c.N != 5 {
		t.Fatalf("N = %d", c.N)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.AddPoint(1, 2)
	s.AddPoint(3, 4)
	if len(s.X) != 2 || s.Y[1] != 4 {
		t.Fatal("series points wrong")
	}
}
