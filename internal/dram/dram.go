// Package dram is a volatile byte store: host main memory used for message
// buffers and client-side indexes. Contents are lost on a crash. CPU access
// latency is folded into the software-cost model (package host), so reads
// and writes here are content operations only.
package dram

// pageSize is the sparse backing granularity.
const pageSize = 4096

// Memory is one host's DRAM.
type Memory struct {
	pages map[int64][]byte
}

// New returns empty memory.
func New() *Memory { return &Memory{pages: make(map[int64][]byte)} }

// Write stores b at addr. nil b is a no-op (timing-only traffic).
func (m *Memory) Write(addr int64, b []byte) {
	for len(b) > 0 {
		page := addr / pageSize
		off := int(addr % pageSize)
		n := pageSize - off
		if n > len(b) {
			n = len(b)
		}
		pg, ok := m.pages[page]
		if !ok {
			pg = make([]byte, pageSize)
			m.pages[page] = pg
		}
		copy(pg[off:], b[:n])
		addr += int64(n)
		b = b[n:]
	}
}

// Read returns n bytes at addr; unwritten bytes read as zero.
func (m *Memory) Read(addr int64, n int) []byte {
	return m.ReadInto(addr, make([]byte, n))
}

// ReadInto fills dst with the bytes at [addr, addr+len(dst)) and returns
// dst; unwritten bytes read as zero. The alloc-free Read for hot paths that
// reuse a scratch buffer.
func (m *Memory) ReadInto(addr int64, dst []byte) []byte {
	n := len(dst)
	o := 0
	for o < n {
		page := (addr + int64(o)) / pageSize
		off := int((addr + int64(o)) % pageSize)
		cnt := pageSize - off
		if cnt > n-o {
			cnt = n - o
		}
		if pg, ok := m.pages[page]; ok {
			copy(dst[o:o+cnt], pg[off:off+cnt])
		} else {
			seg := dst[o : o+cnt]
			for i := range seg {
				seg[i] = 0
			}
		}
		o += cnt
	}
	return dst
}

// Crash discards all contents: DRAM is volatile.
func (m *Memory) Crash() { m.pages = make(map[int64][]byte) }
