package dram

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestWriteRead(t *testing.T) {
	m := New()
	m.Write(100, []byte("hello"))
	if got := m.Read(100, 5); string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestCrossPage(t *testing.T) {
	m := New()
	data := bytes.Repeat([]byte{3}, 10000)
	m.Write(pageSize-17, data)
	if !bytes.Equal(m.Read(pageSize-17, 10000), data) {
		t.Fatal("cross-page round trip failed")
	}
}

func TestUnwrittenZero(t *testing.T) {
	m := New()
	if !bytes.Equal(m.Read(1<<40, 8), make([]byte, 8)) {
		t.Fatal("unwritten DRAM should read zero")
	}
}

func TestCrashClears(t *testing.T) {
	m := New()
	m.Write(0, []byte{1, 2, 3})
	m.Crash()
	if !bytes.Equal(m.Read(0, 3), []byte{0, 0, 0}) {
		t.Fatal("DRAM survived crash")
	}
}

func TestNilWriteNoop(t *testing.T) {
	m := New()
	m.Write(0, nil)
	if len(m.pages) != 0 {
		t.Fatal("nil write allocated pages")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(addr uint16, data []byte) bool {
		m := New()
		m.Write(int64(addr), data)
		return bytes.Equal(m.Read(int64(addr), len(data)), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
