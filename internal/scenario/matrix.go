// The adversarial fault-injection matrix: every cell pairs one named
// fabric adversary (partitions with heal schedules, gray failures,
// duplicated and reordered delivery, drop bursts) with one YCSB core
// workload (A–F) and runs the cluster crash-point sweep under it — the
// §4.2 durability invariants are asserted at every cell, with a minimal
// (seed, cell) reproduction reported on failure. The whole matrix is a
// pure function of the seed: fixed seed ⇒ byte-identical figure.
package scenario

import (
	"fmt"
	"strings"

	"prdma/internal/crashcheck"
	"prdma/internal/fabric"
	"prdma/internal/ycsb"
)

// builtinFaults returns the named adversary library. Endpoint prefixes
// assume the matrix deployment (a "gateway" client host and "s<shard>r<replica>"
// storage nodes, 2 shards × 3 replicas by default); windows assume the
// default load's ~0.6–2 ms span. Every partition heals within the run, so
// retransmission — not operator surgery — must restore connectivity.
func builtinFaults() []fabric.FaultSpec {
	return []fabric.FaultSpec{
		{Name: "none"},
		{
			// Symmetric full cut of one replica: both directions to s0r1
			// black-hole for 300 µs, then heal. Quorum writes ride on the
			// remaining two replicas; the healed replica catches up from
			// RC retransmissions, and the store's version guard must fend
			// off the stale ones.
			Name: "partition",
			Partitions: []fabric.PartitionSpec{
				{To: "s0r1", Symmetric: true, StartUS: 120, EndUS: 420},
			},
		},
		{
			// Asymmetric cut: requests gateway→s0r2 vanish but ACKs still
			// flow — the half-open link failure mode.
			Name: "asym-partition",
			Partitions: []fabric.PartitionSpec{
				{From: "gateway", To: "s0r2", StartUS: 150, EndUS: 500},
			},
		},
		{
			// Gray failure: shard 0's primary stays up but serves slowly
			// (exponential extra latency, mean 15 µs, on 70% of its
			// traffic) for the whole run. No detector fires — the cluster
			// must absorb the slowness, visible only in the tail.
			Name: "gray",
			Gray: []fabric.GraySpec{
				{Endpoint: "s0r0", MeanUS: 15, Prob: 0.7},
			},
		},
		{
			// Bounded reordering: 15% of messages are held up to 20 µs
			// past the FIFO point, letting later traffic overtake.
			Name:         "reorder",
			ReorderProb:  0.15,
			ReorderMaxUS: 20,
		},
		{
			// Duplicated delivery: 20% of messages arrive twice, the copy
			// an exponential ~10 µs later. QP-level dedup must swallow
			// every copy without re-applying.
			Name:       "duplicate",
			DupProb:    0.2,
			DupDelayUS: 10,
		},
		{
			// Congestion/RNR bursts: every 200 µs, a 60 µs window drops
			// half of all deliveries fabric-wide.
			Name: "burst",
			Bursts: []fabric.BurstSpec{
				{StartUS: 60, PeriodUS: 200, LenUS: 60, DropProb: 0.5},
			},
		},
		{
			// Everything at once, each knob dialed down: a healing
			// partition under reordering, duplication, and periodic loss.
			Name: "chaos",
			Partitions: []fabric.PartitionSpec{
				{To: "s1r2", Symmetric: true, StartUS: 200, EndUS: 450},
			},
			ReorderProb:  0.1,
			ReorderMaxUS: 15,
			DupProb:      0.1,
			DupDelayUS:   8,
			Bursts: []fabric.BurstSpec{
				{StartUS: 100, PeriodUS: 300, LenUS: 80, DropProb: 0.35},
			},
		},
	}
}

// FaultNames lists the builtin adversary names in matrix order.
func FaultNames() []string {
	specs := builtinFaults()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// FaultByName resolves one builtin adversary.
func FaultByName(name string) (fabric.FaultSpec, error) {
	for _, s := range builtinFaults() {
		if s.Name == name {
			return s, nil
		}
	}
	return fabric.FaultSpec{}, fmt.Errorf("scenario: unknown fault %q (have %s)",
		name, strings.Join(FaultNames(), ", "))
}

// ParseWorkloads maps a string like "ABF" (or "A,B,F") to workloads.
func ParseWorkloads(s string) ([]ycsb.Workload, error) {
	var out []ycsb.Workload
	for _, r := range strings.ToUpper(s) {
		if r == ',' || r == ' ' {
			continue
		}
		if r < 'A' || r > 'F' {
			return nil, fmt.Errorf("scenario: unknown YCSB workload %q (A–F)", string(r))
		}
		out = append(out, ycsb.Workload(r))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario: no workloads in %q", s)
	}
	return out, nil
}

// MatrixSpec parameterizes the adversarial matrix: the cross product of
// Faults × Workloads, each cell one cluster crash-point sweep.
type MatrixSpec struct {
	Seed             int64
	Shards, Replicas int
	Ops, Clients     int
	ObjSize          int
	// Points is the crash points swept per cell; SecondCrashEvery arms a
	// second same-shard crash at every n-th point.
	Points           int
	SecondCrashEvery int
	Workloads        []ycsb.Workload
	Faults           []fabric.FaultSpec
	// Mutant seeds a known bug class into every cell ("ackbug" or
	// "resurrect"); the detection check asserts at least one cell fails.
	Mutant string
}

// DefaultMatrixSpec returns the full matrix at the CI-sized deployment:
// all builtin adversaries × YCSB A–F.
func DefaultMatrixSpec(seed int64) MatrixSpec {
	return MatrixSpec{
		Seed:             seed,
		Shards:           2,
		Replicas:         3,
		Ops:              240,
		Clients:          6,
		ObjSize:          64,
		Points:           12,
		SecondCrashEvery: 6,
		Workloads:        ycsb.Workloads,
		Faults:           builtinFaults(),
	}
}

// Validate rejects a malformed matrix before any cell runs.
func (m *MatrixSpec) Validate() error {
	if len(m.Faults) == 0 || len(m.Workloads) == 0 {
		return fmt.Errorf("scenario: matrix needs at least one fault and one workload")
	}
	for i := range m.Faults {
		if err := m.Faults[i].Validate(); err != nil {
			return err
		}
	}
	for _, w := range m.Workloads {
		if w < ycsb.A || w > ycsb.F {
			return fmt.Errorf("scenario: unknown YCSB workload %q", w)
		}
	}
	switch m.Mutant {
	case "", "ackbug", "resurrect":
	default:
		return fmt.Errorf("scenario: unknown mutant %q (ackbug, resurrect)", m.Mutant)
	}
	return nil
}

// Cell is one matrix coordinate.
type Cell struct {
	Fault    fabric.FaultSpec
	Workload ycsb.Workload
}

// Cells expands the cross product in deterministic order: faults outer,
// workloads inner.
func (m *MatrixSpec) Cells() []Cell {
	cells := make([]Cell, 0, len(m.Faults)*len(m.Workloads))
	for _, f := range m.Faults {
		for _, w := range m.Workloads {
			cells = append(cells, Cell{Fault: f, Workload: w})
		}
	}
	return cells
}

// CellResult is one figure row: the cell's crash-free performance under
// its adversary plus the sweep verdict.
type CellResult struct {
	Fault    string  `json:"fault"`
	Workload string  `json:"workload"`
	Ops      int     `json:"ops"`
	KOPS     float64 `json:"kops"`
	P50US    float64 `json:"p50US"`
	P99US    float64 `json:"p99US"`
	// Resends counts RC retransmissions in the reference run; FaultDrops,
	// Duplicated, Reordered the adversary's interference; StaleDrops the
	// version-guarded writes the stores rejected; Retries cluster-level
	// op retries.
	Resends    int64 `json:"resends"`
	FaultDrops int64 `json:"faultDrops"`
	Duplicated int64 `json:"duplicated"`
	Reordered  int64 `json:"reordered"`
	StaleDrops int64 `json:"staleDrops"`
	Retries    int64 `json:"retries"`
	// Points is the crash points swept; Failovers/Resyncs/Replayed/
	// Shipped total the controller work across them.
	Points    int   `json:"points"`
	Failovers int64 `json:"failovers"`
	Resyncs   int64 `json:"resyncs"`
	Replayed  int64 `json:"replayed"`
	Shipped   int64 `json:"shipped"`
	// Violations counts broken invariants; First is the earliest-crash
	// violation and Repro the minimal reproduction command line.
	Violations int    `json:"violations"`
	First      string `json:"first,omitempty"`
	Repro      string `json:"repro,omitempty"`
}

// Verdict renders the cell's pass/fail column.
func (r *CellResult) Verdict() string {
	if r.Violations == 0 {
		return "OK"
	}
	return fmt.Sprintf("FAIL(%d)", r.Violations)
}

// RunCell executes one cell: a full cluster crash-point sweep under the
// cell's adversary and workload.
func (m *MatrixSpec) RunCell(cell Cell) CellResult {
	cfg := crashcheck.ClusterConfig{
		Seed:             m.Seed,
		Points:           m.Points,
		SecondCrashEvery: m.SecondCrashEvery,
		Ops:              m.Ops,
		Clients:          m.Clients,
		Shards:           m.Shards,
		Replicas:         m.Replicas,
		ObjSize:          m.ObjSize,
		Workload:         cell.Workload,
		Mutant:           m.Mutant,
	}
	if !cell.Fault.Empty() {
		f := cell.Fault
		cfg.Fault = &f
	}
	sw := crashcheck.ClusterSweep(cfg)
	out := CellResult{
		Fault:      cell.Fault.Name,
		Workload:   cell.Workload.String(),
		Ops:        sw.Ref.Ops,
		KOPS:       sw.Ref.KOPS,
		P50US:      sw.Ref.P50US,
		P99US:      sw.Ref.P99US,
		Resends:    sw.Ref.Resends,
		FaultDrops: sw.Ref.FaultDrops,
		Duplicated: sw.Ref.Duplicated,
		Reordered:  sw.Ref.Reordered,
		StaleDrops: sw.Ref.StaleDrops,
		Retries:    sw.Ref.Retries,
		Points:     sw.Points,
		Failovers:  sw.Failovers,
		Resyncs:    sw.Resyncs,
		Replayed:   sw.Replayed,
		Shipped:    sw.Shipped,
		Violations: sw.ViolationCount,
	}
	if v := sw.Minimal(); v != nil {
		out.First = v.String()
		out.Repro = m.repro(cell)
	}
	return out
}

// repro renders the minimal (seed, cell) reproduction command line.
func (m *MatrixSpec) repro(cell Cell) string {
	s := fmt.Sprintf("prdmabench -matrix -faults %s -workloads %s -seed %d -points %d -shards %d -replicas %d",
		cell.Fault.Name, cell.Workload, m.Seed, m.Points, m.Shards, m.Replicas)
	if m.Mutant != "" {
		s += " -mutant " + m.Mutant
	}
	return s
}

// Run sweeps every cell sequentially (the CLI fans cells out itself when
// parallelism is wanted) and returns the rows in Cells() order.
func (m *MatrixSpec) Run() ([]CellResult, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cells := m.Cells()
	out := make([]CellResult, len(cells))
	for i, c := range cells {
		out[i] = m.RunCell(c)
	}
	return out, nil
}
