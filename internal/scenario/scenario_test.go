package scenario

import (
	"strings"
	"testing"

	"prdma/internal/fabric"
)

func TestLoadAndDefaults(t *testing.T) {
	s, err := Load(strings.NewReader(`{"rpc":"FaRM"}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Ops == 0 || s.Objects == 0 || s.ObjectSize == 0 || s.Clients == 0 {
		t.Fatalf("defaults not applied: %+v", s)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"rpc":"FaRM","bogus":1}`)); err == nil {
		t.Fatal("expected error for unknown field")
	}
}

func TestRunBasicScenario(t *testing.T) {
	s := &Spec{RPC: "WFlush-RPC", Ops: 500, Objects: 256, ObjectSize: 1024, ReadFraction: 0.5}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 500 || rep.KOPS <= 0 || rep.AvgUS <= 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.P99US < rep.P50US {
		t.Fatal("p99 < p50")
	}
	if rep.Counters["serverPersistOps"] == 0 {
		t.Fatal("no persists counted")
	}
	if rep.Counters["handled"] == 0 {
		t.Fatal("no handled ops counted")
	}
}

func TestRunUnknownRPC(t *testing.T) {
	s := &Spec{RPC: "NotARealRPC"}
	if _, err := s.Run(); err == nil {
		t.Fatal("expected unknown-rpc error")
	}
}

func TestRunMultiClient(t *testing.T) {
	s := &Spec{RPC: "FaRM", Ops: 600, Objects: 128, ObjectSize: 512, Clients: 3}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 600 {
		t.Fatalf("ops = %d", rep.Ops)
	}
}

func TestRunBusyKnobsSlowdown(t *testing.T) {
	base := &Spec{RPC: "FaRM", Ops: 400, Objects: 128, ObjectSize: 1024, Seed: 3}
	r1, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	busy := *base
	busy.BusyNetwork = true
	busy.BusyReceiver = true
	r2, err := busy.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r2.AvgUS <= r1.AvgUS {
		t.Fatalf("busy run (%v us) not slower than idle (%v us)", r2.AvgUS, r1.AvgUS)
	}
}

func TestRunCrashScenario(t *testing.T) {
	s := &Spec{
		RPC: "WFlush-RPC", Ops: 400, Objects: 128, ObjectSize: 1024,
		ProcessingUS: 5,
		Crashes:      &CrashSpec{Count: 2, RestartMS: 2, RetransferMS: 1, Pipeline: 4},
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes != 2 {
		t.Fatalf("crashes = %d", rep.Crashes)
	}
	if rep.Replayed == 0 {
		t.Fatal("nothing replayed from the log")
	}
}

func TestCrashScenarioRejectsNonRecoverable(t *testing.T) {
	s := &Spec{RPC: "DaRPC", Crashes: &CrashSpec{Count: 1}}
	if _, err := s.Run(); err == nil {
		t.Fatal("expected error: DaRPC has no recovery protocol")
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := func() *Report {
		s := &Spec{RPC: "W-RFlush-RPC", Ops: 300, Objects: 64, ObjectSize: 256, Seed: 9}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := mk(), mk()
	if a.Elapsed != b.Elapsed || a.AvgUS != b.AvgUS {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestRunWithTrace(t *testing.T) {
	s := &Spec{RPC: "WFlush-RPC", Ops: 50, Objects: 32, ObjectSize: 512, ReadFraction: 0.0, Trace: true, TraceEvents: 100, NativeFlush: true}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trace) == 0 {
		t.Fatal("no trace events recorded")
	}
	found := false
	for _, line := range rep.Trace {
		if strings.Contains(line, "flush-ack") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no flush-ack events in trace (got %d events, first: %s)", len(rep.Trace), rep.Trace[0])
	}
}

func TestLoadRejectsMalformedJSON(t *testing.T) {
	for _, doc := range []string{`{"rpc":`, `[]`, `{"ops":"many"}`} {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("malformed document %q accepted", doc)
		}
	}
}

func TestCrashesAndClusterConflict(t *testing.T) {
	s := &Spec{
		RPC:     "WFlush-RPC",
		Crashes: &CrashSpec{Count: 1},
		Cluster: &ClusterSpec{Shards: 2, Replicas: 3},
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("want mutually-exclusive error, got %v", err)
	}
}

func TestClusterFaultErrors(t *testing.T) {
	base := func() *Spec {
		return &Spec{RPC: "WFlush-RPC", Ops: 100, Objects: 64, ObjectSize: 64, Cluster: &ClusterSpec{}}
	}
	cases := []struct {
		name string
		mod  func(*Spec)
	}{
		{"unknown fault name", func(s *Spec) { s.Cluster.FaultName = "nope" }},
		{"name and inline fault", func(s *Spec) {
			s.Cluster.FaultName = "gray"
			s.Cluster.Fault = &fabric.FaultSpec{DupProb: 0.1, DupDelayUS: 5}
		}},
		{"invalid inline fault", func(s *Spec) { s.Cluster.Fault = &fabric.FaultSpec{DupProb: 2} }},
		{"unknown workload", func(s *Spec) { s.Cluster.Workload = "G" }},
		{"multi-letter workload", func(s *Spec) { s.Cluster.Workload = "AB" }},
		{"workload with open loop", func(s *Spec) {
			s.Cluster.Workload = "A"
			s.Cluster.OpenLoop = true
			s.Cluster.RatePerSec = 1e5
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := base()
			c.mod(s)
			if _, err := s.Run(); err == nil {
				t.Fatal("expected an error")
			}
		})
	}
}

func TestClusterFaultScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster runs are slow")
	}
	s := &Spec{
		RPC: "WFlush-RPC", Ops: 600, Objects: 256, ObjectSize: 64,
		Clients: 6, Seed: 7,
		Cluster: &ClusterSpec{Shards: 2, Replicas: 3, Workload: "A", FaultName: "partition"},
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters["faultDrops"] == 0 {
		t.Error("partition adversary dropped nothing")
	}
	if rep.Counters["retransmits"] == 0 {
		t.Error("no retransmissions rode out the cut")
	}
	if rep.Counters["puts"] == 0 || rep.Counters["gets"] == 0 {
		t.Errorf("workload A should mix puts and gets: %v", rep.Counters)
	}
}

func TestRunHotpotScenario(t *testing.T) {
	s := &Spec{RPC: "Hotpot", Ops: 200, Objects: 64, ObjectSize: 512, ReadFraction: 0.5}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 200 {
		t.Fatalf("ops = %d", rep.Ops)
	}
}

func TestRunPMPoolScenario(t *testing.T) {
	s := &Spec{
		Name: "pmpool", RPC: "WFlush-RPC", Seed: 7,
		PMPool: &PMPoolSpec{Servers: 2, Clients: 2, Iterations: 2, GraphScale: 16},
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 || rep.Counters["shuffleBlocks"] == 0 {
		t.Fatalf("shuffle moved no blocks: %+v", rep)
	}
	if rep.Counters["blocksLeaked"] != 0 {
		t.Fatalf("leaked %d blocks", rep.Counters["blocksLeaked"])
	}
}

func TestPMPoolScenarioExclusions(t *testing.T) {
	base := func() *Spec {
		return &Spec{RPC: "WFlush-RPC", PMPool: &PMPoolSpec{Iterations: 1, GraphScale: 16}}
	}
	s := base()
	s.Cluster = &ClusterSpec{Shards: 2, Replicas: 2}
	if _, err := s.Run(); err == nil {
		t.Error("pmpool+cluster should be rejected")
	}
	s = base()
	s.Crashes = &CrashSpec{Count: 1}
	if _, err := s.Run(); err == nil {
		t.Error("pmpool+crashes should be rejected")
	}
	s = base()
	s.RPC = "FaRM"
	if _, err := s.Run(); err == nil {
		t.Error("pmpool over a non-durable family should be rejected")
	}
}
