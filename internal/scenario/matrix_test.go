package scenario

import (
	"reflect"
	"testing"

	"prdma/internal/ycsb"
)

// reducedMatrix is a small cell set sized for unit tests: fewer crash
// points, the adversaries that exercise every injector mechanism.
func reducedMatrix(seed int64, faults []string, workloads []ycsb.Workload) MatrixSpec {
	m := DefaultMatrixSpec(seed)
	m.Points = 4
	m.SecondCrashEvery = 3
	m.Workloads = workloads
	m.Faults = m.Faults[:0]
	for _, name := range faults {
		f, err := FaultByName(name)
		if err != nil {
			panic(err)
		}
		m.Faults = append(m.Faults, f)
	}
	return m
}

// TestMatrixCellsClean sweeps a reduced adversary × workload set and
// expects every §4.2 invariant to hold at every crash point.
func TestMatrixCellsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweeps are slow")
	}
	m := reducedMatrix(7, []string{"partition", "duplicate"}, []ycsb.Workload{ycsb.A, ycsb.E})
	rows, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Violations != 0 {
			t.Errorf("cell %s/%s: %d violations, first: %s\nrepro: %s",
				r.Fault, r.Workload, r.Violations, r.First, r.Repro)
		}
	}
	// The partition cells must actually have partitioned something, and
	// the duplicate cells duplicated something — an inert adversary would
	// pass vacuously.
	for _, r := range rows {
		switch r.Fault {
		case "partition":
			if r.FaultDrops == 0 {
				t.Errorf("partition/%s: adversary dropped nothing", r.Workload)
			}
			if r.Resends == 0 {
				t.Errorf("partition/%s: no retransmissions rode out the cut", r.Workload)
			}
		case "duplicate":
			if r.Duplicated == 0 {
				t.Errorf("duplicate/%s: adversary duplicated nothing", r.Workload)
			}
		}
	}
}

// TestMatrixDeterministic runs the same cell twice and expects
// byte-identical rows: the whole sweep is a pure function of the seed.
func TestMatrixDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweeps are slow")
	}
	m := reducedMatrix(11, []string{"chaos"}, []ycsb.Workload{ycsb.B})
	a, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different rows:\n%+v\n%+v", a, b)
	}
}

// TestMatrixMutantsDetected seeds each known bug class and expects the
// matrix to catch it in at least one cell — the checker's checker.
func TestMatrixMutantsDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweeps are slow")
	}
	for _, mutant := range []string{"ackbug", "resurrect"} {
		m := reducedMatrix(7, []string{"none", "partition"}, []ycsb.Workload{ycsb.A})
		// The ackbug window (ACK issued at DMA completion, crash before the
		// media persist lands) is narrow; give the sweep the full crash-point
		// budget so at least one point falls inside it.
		m.Points = 12
		m.Mutant = mutant
		rows, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, r := range rows {
			total += r.Violations
		}
		if total == 0 {
			t.Errorf("mutant %q survived the matrix undetected", mutant)
		}
	}
}

func TestParseWorkloads(t *testing.T) {
	ws, err := ParseWorkloads("a,B F")
	if err != nil {
		t.Fatal(err)
	}
	want := []ycsb.Workload{ycsb.A, ycsb.B, ycsb.F}
	if !reflect.DeepEqual(ws, want) {
		t.Fatalf("got %v want %v", ws, want)
	}
	if _, err := ParseWorkloads("AG"); err == nil {
		t.Fatal("workload G should be rejected")
	}
	if _, err := ParseWorkloads(""); err == nil {
		t.Fatal("empty workload set should be rejected")
	}
}

func TestFaultByName(t *testing.T) {
	for _, name := range FaultNames() {
		f, err := FaultByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Validate(); err != nil {
			t.Errorf("builtin fault %q invalid: %v", name, err)
		}
	}
	if _, err := FaultByName("nope"); err == nil {
		t.Fatal("unknown fault should be rejected")
	}
}
