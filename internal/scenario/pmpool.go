package scenario

import (
	"fmt"

	"prdma/internal/fabric"
	"prdma/internal/graph"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/pmpool"
	"prdma/internal/rnic"
	"prdma/internal/rpc"
	"prdma/internal/sim"
	"prdma/internal/stats"
)

// PMPoolSpec shapes the disaggregated-shuffle run over the remote
// persistent-memory pool (internal/pmpool): PageRank whose every
// map→reduce exchange is staged through remote PM, with the final ranks
// checked bit-for-bit against the local in-memory baseline.
type PMPoolSpec struct {
	// Servers and Clients size the deployment: Servers pool nodes striped
	// by consistent hash, Clients hosts each with a striping Pool front end.
	Servers int `json:"servers"`
	Clients int `json:"clients"`
	// Maps, Reducers and Iterations shape the shuffle PageRank.
	Maps       int `json:"maps"`
	Reducers   int `json:"reducers"`
	Iterations int `json:"iterations"`
	// GraphScale divides the wordassociation-2011 dataset (default 8).
	GraphScale int `json:"graphScale"`
}

// runPMPool executes the pmpool scenario: build the pool deployment, run
// the disaggregated shuffle, and fail the run on any leak or rank
// divergence — the two invariants a correct pool cannot break.
func (s *Spec) runPMPool(kind rpc.Kind) (*Report, error) {
	durable := false
	for _, k := range rpc.DurableKinds {
		durable = durable || k == kind
	}
	if !durable {
		return nil, fmt.Errorf("scenario: pmpool needs a durable RPC family, not %v", kind)
	}
	ps := s.PMPool
	servers := orDefault(ps.Servers, 2)
	clients := orDefault(ps.Clients, 2)
	scale := orDefault(ps.GraphScale, 8)

	g := graph.Generate(graph.Dataset{
		Name:  graph.WordAssociation.Name,
		Nodes: graph.WordAssociation.Nodes / scale,
		Edges: graph.WordAssociation.Edges / scale,
	}, s.Seed)
	cfg := pmpool.DefaultShuffleConfig()
	if ps.Maps > 0 {
		cfg.Maps = ps.Maps
	}
	if ps.Reducers > 0 {
		cfg.Reducers = ps.Reducers
	}
	if ps.Iterations > 0 {
		cfg.Iterations = ps.Iterations
	}

	k := sim.New()
	defer k.Shutdown()
	net := fabric.New(k, fabric.DefaultParams(), s.Seed|1)
	rcfg := rpc.DefaultConfig()
	rcfg.Workers = s.Workers
	rcfg.LogBytes = 128 << 10
	scfg := pmpool.DefaultServerConfig()
	scfg.PoolBytes = 512 * 4096
	cfg.MaxChunk = int(scfg.SlabBytes) // every block must fit one slab
	srvs := make([]*pmpool.Server, servers)
	for i := range srvs {
		h := host.New(k, fmt.Sprintf("pool%d", i), net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
		srvs[i] = pmpool.NewServer(h, rcfg, scfg)
	}
	pools := make([]*pmpool.Pool, clients)
	for c := range pools {
		h := host.New(k, fmt.Sprintf("cli%d", c), net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
		pcfg := pmpool.DefaultPoolConfig(uint64(c + 1))
		pcfg.Kind = kind
		pcfg.ConnsPerServer = 2
		pcfg.LeaseTTL = scfg.LeaseTTL
		pools[c] = pmpool.NewPool(h, srvs, rcfg, pcfg)
	}

	var ranks []float64
	var st pmpool.ShuffleStats
	var runErr error
	var start, end sim.Time
	k.Go("scenario-pmpool", func(p *sim.Proc) {
		start = p.Now()
		ranks, st, runErr = pmpool.ShufflePageRank(p, pools, g, cfg)
		end = p.Now()
		for _, pl := range pools {
			pl.Stop()
		}
		for _, sv := range srvs {
			sv.Stop()
		}
	})
	k.Run()
	if runErr != nil {
		return nil, fmt.Errorf("scenario: pmpool shuffle: %w", runErr)
	}
	leaked := 0
	for _, sv := range srvs {
		leaked += sv.Live()
	}
	if leaked != 0 {
		return nil, fmt.Errorf("scenario: pmpool leaked %d blocks (every shuffle block is freed with an ack)", leaked)
	}
	local := pmpool.LocalShufflePageRank(g, cfg)
	if err := pmpool.CompareRanks(ranks, local); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	elapsed := end.Sub(start)
	rep := &Report{
		Name:    s.Name,
		RPC:     kind.String(),
		Ops:     int(st.Blocks),
		Elapsed: elapsed.String(),
		KOPS:    stats.Throughput{Ops: int(st.Blocks), Elapsed: elapsed}.KOPS(),
	}
	rep.Counters = map[string]int64{
		"shuffleBlocks": st.Blocks,
		"shuffleBytes":  st.Bytes,
		"blocksLeaked":  int64(leaked),
		"ranks":         int64(len(ranks)),
		"iterations":    int64(cfg.Iterations),
	}
	return rep, nil
}
