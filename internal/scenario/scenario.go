// Package scenario runs user-described experiments on the simulated
// testbed: a JSON document picks the RPC system, workload shape, model
// knobs and optional crash injection, and the runner reports throughput,
// latency percentiles and model counters. cmd/prdmasim is the CLI front
// end; the package exists so scenarios are testable.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"prdma/internal/cluster"
	"prdma/internal/fabric"
	"prdma/internal/failure"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/rpc"
	"prdma/internal/sim"
	"prdma/internal/stats"
	"prdma/internal/trace"
	"prdma/internal/ycsb"
)

// Spec is the JSON scenario document.
type Spec struct {
	// Name labels the run in the report.
	Name string `json:"name"`
	// RPC selects the system by its display name, e.g. "WFlush-RPC",
	// "FaRM", "DaRPC".
	RPC string `json:"rpc"`
	// Ops, Objects, ObjectSize and ReadFraction shape the workload.
	Ops          int     `json:"ops"`
	Objects      int     `json:"objects"`
	ObjectSize   int     `json:"objectSize"`
	ReadFraction float64 `json:"readFraction"`
	// Clients is the number of concurrent sender hosts.
	Clients int `json:"clients"`
	// ProcessingUS injects per-request server processing (µs).
	ProcessingUS int `json:"processingUS"`
	// Workers sizes the server worker pool.
	Workers int `json:"workers"`
	// Seed makes runs reproducible.
	Seed uint64 `json:"seed"`

	// Model knobs.
	BusyNetwork  bool `json:"busyNetwork"`
	BusyReceiver bool `json:"busyReceiver"`
	BusySender   bool `json:"busySender"`
	DDIO         bool `json:"ddio"`
	NativeFlush  bool `json:"nativeFlush"`

	// Crashes optionally injects failures (durable/recoverable RPCs and
	// the FaRM baseline only).
	Crashes *CrashSpec `json:"crashes"`

	// Cluster runs the workload against a sharded, replicated durable-KV
	// cluster (internal/cluster) instead of a single server.
	Cluster *ClusterSpec `json:"cluster"`

	// PMPool runs the disaggregated shuffle through the remote
	// persistent-memory pool (internal/pmpool) instead of the KV workload.
	PMPool *PMPoolSpec `json:"pmpool,omitempty"`

	// Trace records up to TraceEvents model events (NIC staging, flush
	// ACKs, retransmissions, crashes, recovery) into the report.
	Trace       bool `json:"trace"`
	TraceEvents int  `json:"traceEvents"`
}

// CrashSpec configures failure injection.
type CrashSpec struct {
	Count        int `json:"count"`
	RestartMS    int `json:"restartMS"`
	RetransferMS int `json:"retransferMS"`
	Pipeline     int `json:"pipeline"`
}

// ClusterSpec shapes the sharded, replicated deployment.
type ClusterSpec struct {
	Shards   int `json:"shards"`
	Replicas int `json:"replicas"`
	// CrashPrimary crashes shard 0's primary once a fifth of the
	// operations have completed; the failover controller must promote a
	// survivor, resynchronize the victim, and lose no acknowledged write.
	CrashPrimary bool `json:"crashPrimary"`
	// OpenLoop switches the load generator to Poisson arrivals at
	// RatePerSec ops/s (closed loop otherwise).
	OpenLoop   bool    `json:"openLoop"`
	RatePerSec float64 `json:"ratePerSec"`
	// Workload, when set, drives the load from one YCSB core workload
	// letter ("A".."F") instead of the plain readFraction mix.
	Workload string `json:"workload,omitempty"`
	// FaultName installs a builtin fabric adversary by name (the
	// adversarial-matrix library: "partition", "gray", "reorder", ...);
	// Fault embeds a custom adversary inline. At most one of the two.
	FaultName string            `json:"faultName,omitempty"`
	Fault     *fabric.FaultSpec `json:"fault,omitempty"`
}

// Report is the scenario outcome.
type Report struct {
	Name    string  `json:"name"`
	RPC     string  `json:"rpc"`
	Ops     int     `json:"ops"`
	Elapsed string  `json:"virtualTime"`
	KOPS    float64 `json:"kops"`

	AvgUS float64 `json:"avgUS"`
	P50US float64 `json:"p50US"`
	P95US float64 `json:"p95US"`
	P99US float64 `json:"p99US"`

	Counters map[string]int64 `json:"counters"`

	// Trace holds recorded model events when the spec enabled tracing.
	Trace []string `json:"trace,omitempty"`

	// Failure fields, present when crashes were injected.
	Crashes  int `json:"crashes,omitempty"`
	Replayed int `json:"replayed,omitempty"`
	Resent   int `json:"resent,omitempty"`
}

// kindByName resolves an RPC display name.
func kindByName(name string) (rpc.Kind, error) {
	all := append(append([]rpc.Kind{}, rpc.Kinds...), rpc.Herd, rpc.LITE, rpc.OctopusWFlush, rpc.Hotpot)
	for _, k := range all {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown rpc %q (try e.g. %q, %q, %q)", name, rpc.WFlushRPC, rpc.FaRM, rpc.DaRPC)
}

// applyDefaults fills unset fields.
func (s *Spec) applyDefaults() {
	if s.Ops == 0 {
		s.Ops = 20000
	}
	if s.Objects == 0 {
		s.Objects = 10000
	}
	if s.ObjectSize == 0 {
		s.ObjectSize = 4096
	}
	if s.Clients == 0 {
		s.Clients = 1
	}
	if s.Workers == 0 {
		s.Workers = 3
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.RPC == "" {
		s.RPC = rpc.WFlushRPC.String()
	}
}

// Load parses a JSON scenario.
func Load(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s.applyDefaults()
	return &s, nil
}

// Run executes the scenario.
func (s *Spec) Run() (*Report, error) {
	s.applyDefaults()
	kind, err := kindByName(s.RPC)
	if err != nil {
		return nil, err
	}
	if s.Crashes != nil && s.Cluster != nil {
		return nil, fmt.Errorf("scenario: crashes and cluster are mutually exclusive (cluster runs inject failures via crashPrimary or a fault spec)")
	}
	if s.PMPool != nil && (s.Crashes != nil || s.Cluster != nil) {
		return nil, fmt.Errorf("scenario: pmpool is its own deployment shape — it excludes crashes and cluster (pool crash coverage lives in prdmabench -crashcheck -pmpool)")
	}
	if s.PMPool != nil {
		return s.runPMPool(kind)
	}
	if s.Cluster != nil {
		return s.runCluster(kind)
	}

	np := fabric.DefaultParams()
	if s.BusyNetwork {
		np.BusyQueueMean = 4 * time.Microsecond
		np.BusyBandwidthShare = 0.6
	}
	nicp := rnic.DefaultParams()
	nicp.EmulateFlush = !s.NativeFlush
	nicp.DDIO = s.DDIO
	hpCli, hpSrv := host.DefaultParams(), host.DefaultParams()
	if s.BusySender {
		hpCli.LoadFactor = 4
	}
	if s.BusyReceiver {
		hpSrv.LoadFactor = 4
	}
	cfg := rpc.DefaultConfig()
	cfg.Workers = s.Workers
	cfg.ProcessingTime = time.Duration(s.ProcessingUS) * time.Microsecond

	k := sim.New()
	net := fabric.New(k, np, s.Seed)
	srv := host.New(k, "server", net, hpSrv, pmem.DefaultParams(), nicp)
	store, err := rpc.NewStore(srv, s.Objects, s.ObjectSize)
	if err != nil {
		return nil, err
	}
	engine := rpc.NewServer(srv, store, cfg)

	var tr *trace.Tracer
	if s.Trace {
		tr = trace.New(func() int64 { return int64(k.Now()) }, s.TraceEvents)
		srv.NIC.Trace = tr.Emit
	}

	rep := &Report{Name: s.Name, RPC: kind.String()}

	if s.Crashes != nil {
		if s.Clients != 1 {
			return nil, fmt.Errorf("scenario: crash injection supports a single client host")
		}
		cli := host.New(k, "client-0", net, hpCli, pmem.DefaultParams(), nicp)
		rcl, ok := rpc.New(kind, cli, engine, cfg).(rpc.Recoverable)
		if !ok {
			return nil, fmt.Errorf("scenario: %v does not support crash recovery", kind)
		}
		fp := failure.Params{
			Restart:      time.Duration(orDefault(s.Crashes.RestartMS, 300)) * time.Millisecond,
			Retransfer:   time.Duration(orDefault(s.Crashes.RetransferMS, 100)) * time.Millisecond,
			Crashes:      orDefault(s.Crashes.Count, 3),
			OpsPerWindow: s.Ops / (orDefault(s.Crashes.Count, 3) + 1),
			Pipeline:     orDefault(s.Crashes.Pipeline, 8),
		}
		drv := failure.NewDriver(k, srv, engine, rcl, fp)
		mix := ycsb.NewMix(s.ReadFraction, int64(s.Objects), s.ObjectSize, s.Seed)
		payload := make([]byte, s.ObjectSize)
		var m failure.Measurement
		var start, end sim.Time
		k.Go("driver", func(p *sim.Proc) {
			start = p.Now()
			m = drv.Run(p, func(i int) *rpc.Request {
				req := mix.Next()
				if req.Op == rpc.OpWrite {
					req.Payload = payload
				} else {
					req.Payload = []byte{}
				}
				return req
			})
			end = p.Now()
		})
		k.Run()
		rep.Ops = m.Ops
		rep.Crashes = m.Crashes
		rep.Replayed = m.Replayed
		rep.Resent = m.Resent
		rep.Elapsed = end.Sub(start).String()
		rep.KOPS = stats.Throughput{Ops: m.Ops, Elapsed: end.Sub(start)}.KOPS()
		rep.AvgUS = us(m.CleanPerOp)
		rep.Counters = s.counters(srv, engine)
		s.attachTrace(rep, tr)
		return rep, nil
	}

	lat := stats.NewLatency(s.Ops)
	wg := sim.NewWaitGroup(k)
	per := s.Ops / s.Clients
	var end sim.Time
	for i := 0; i < s.Clients; i++ {
		cli := host.New(k, fmt.Sprintf("client-%d", i), net, hpCli, pmem.DefaultParams(), nicp)
		client := rpc.New(kind, cli, engine, cfg)
		mix := ycsb.NewMix(s.ReadFraction, int64(s.Objects), s.ObjectSize, s.Seed+uint64(i)*7919)
		wg.Add(1)
		k.Go(fmt.Sprintf("driver-%d", i), func(p *sim.Proc) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				r, err := client.Call(p, mix.Next())
				if err != nil {
					panic(err)
				}
				lat.Add(r.ReadyAt.Sub(r.IssuedAt))
			}
		})
	}
	completed := false
	k.Go("joiner", func(p *sim.Proc) {
		wg.Wait(p)
		end = p.Now()
		completed = true
	})
	k.Run()
	if !completed {
		return nil, fmt.Errorf("scenario: run did not complete (protocol stall)")
	}

	rep.Ops = per * s.Clients
	rep.Elapsed = end.Duration().String()
	rep.KOPS = stats.Throughput{Ops: rep.Ops, Elapsed: end.Duration()}.KOPS()
	rep.AvgUS = us(lat.Mean())
	rep.P50US = us(lat.Percentile(50))
	rep.P95US = us(lat.Percentile(95))
	rep.P99US = us(lat.Percentile(99))
	rep.Counters = s.counters(srv, engine)
	s.attachTrace(rep, tr)
	return rep, nil
}

// runCluster executes the scenario against a sharded, replicated cluster:
// the workload fans over a consistent-hash ring of Shards replication
// groups, optionally losing one shard primary mid-run. The run fails if
// any operation fails permanently, any read returns a malformed payload,
// the victim is never readmitted, or any acknowledged write is lost or
// diverges across replicas.
func (s *Spec) runCluster(kind rpc.Kind) (*Report, error) {
	cs := s.Cluster
	fault, err := cs.resolveFault()
	if err != nil {
		return nil, err
	}
	var wl ycsb.Workload
	if cs.Workload != "" {
		ws, err := ParseWorkloads(cs.Workload)
		if err != nil {
			return nil, err
		}
		if len(ws) != 1 {
			return nil, fmt.Errorf("scenario: cluster workload must be a single YCSB letter, got %q", cs.Workload)
		}
		if cs.OpenLoop {
			return nil, fmt.Errorf("scenario: YCSB workloads drive the closed loop only")
		}
		wl = ws[0]
	}
	p := cluster.DefaultParams()
	if cs.Shards > 0 {
		p.Shards = cs.Shards
	}
	if cs.Replicas > 0 {
		p.Replicas = cs.Replicas
	}
	p.Kind = kind
	p.Objects = s.Objects
	p.ObjSize = s.ObjectSize
	p.Seed = s.Seed
	p.Cfg.Workers = s.Workers
	p.Cfg.ProcessingTime = time.Duration(s.ProcessingUS) * time.Microsecond
	if fault != nil {
		// Adversary runs retransmit aggressively: a sub-millisecond
		// partition or drop burst must be ridden out by RC retries well
		// inside the retry budget, not kill the queue pair.
		p.NIC.RetransmitInterval = 100 * time.Microsecond
		p.NIC.RetryCount = 64
	}

	k := sim.New()
	c, err := cluster.New(k, p)
	if err != nil {
		return nil, err
	}
	if fault != nil {
		c.Net.SetInjector(fabric.NewInjector(*fault, s.Seed^0xfa175eed))
	}
	ct := c.StartController()
	crashes := 0
	if cs.CrashPrimary {
		k.Go("crash-script", func(sp *sim.Proc) {
			target := int64(s.Ops / 5)
			for {
				var total int64
				for _, sh := range c.Shards {
					total += sh.Puts + sh.Gets
				}
				if total >= target {
					break
				}
				sp.Sleep(20 * time.Microsecond)
			}
			c.CrashReplica(0, c.Shards[0].Primary)
			crashes++
		})
	}
	var res *cluster.LoadResult
	var loadErr error
	healthy := true
	k.Go("driver", func(mp *sim.Proc) {
		res, loadErr = c.RunLoad(mp, cluster.Load{
			Clients:  s.Clients,
			Ops:      s.Ops,
			ReadFrac: s.ReadFraction,
			Workload: wl,
			OpenLoop: cs.OpenLoop,
			Rate:     cs.RatePerSec,
			Verify:   true,
			Seed:     s.Seed,
		})
		if loadErr != nil {
			return
		}
		healthy = c.AwaitHealthy(mp, 200*time.Millisecond)
		mp.Sleep(2 * time.Millisecond) // engines apply their tails
		ct.Stop()
	})
	k.Run()
	if loadErr != nil {
		return nil, loadErr
	}
	if res.Errors > 0 || res.BadReads > 0 {
		return nil, fmt.Errorf("scenario: cluster run had %d failed ops, %d bad reads", res.Errors, res.BadReads)
	}
	if !healthy {
		return nil, fmt.Errorf("scenario: cluster never returned to full health")
	}
	if err := c.CheckConsistency(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	lat := stats.NewLatency(len(res.Samples))
	for _, sm := range res.Samples {
		lat.Add(sm.Dur)
	}
	elapsed := res.End.Sub(res.Start)
	rep := &Report{
		Name:    s.Name,
		RPC:     kind.String(),
		Ops:     len(res.Samples),
		Elapsed: elapsed.String(),
		KOPS:    stats.Throughput{Ops: len(res.Samples), Elapsed: elapsed}.KOPS(),
		AvgUS:   us(lat.Mean()),
		P50US:   us(lat.Percentile(50)),
		P95US:   us(lat.Percentile(95)),
		P99US:   us(lat.Percentile(99)),
		Crashes: crashes,
	}
	rep.Counters = map[string]int64{}
	for _, sh := range c.Shards {
		rep.Counters["puts"] += sh.Puts
		rep.Counters["gets"] += sh.Gets
		rep.Counters["retries"] += sh.Retries
		rep.Counters["failovers"] += sh.Failovers
		rep.Counters["promotions"] += sh.Promotions
		rep.Counters["resyncs"] += sh.Resyncs
		rep.Counters["imagesShipped"] += sh.Shipped
		rep.Counters["logReplayed"] += sh.Replayed
		rep.Replayed = int(rep.Counters["logReplayed"])
	}
	if fault != nil {
		rep.Counters["retransmits"] = c.Retransmits()
		rep.Counters["staleDrops"] = c.StaleDrops()
		rep.Counters["faultDrops"] = c.Net.DroppedFault
		rep.Counters["duplicated"] = c.Net.Duplicated
		rep.Counters["reordered"] = c.Net.Reordered
	}
	return rep, nil
}

// resolveFault turns the spec's fault fields into one validated adversary
// (nil when the run is unfaulted).
func (cs *ClusterSpec) resolveFault() (*fabric.FaultSpec, error) {
	if cs.FaultName != "" && cs.Fault != nil {
		return nil, fmt.Errorf("scenario: set faultName or an inline fault, not both")
	}
	var f fabric.FaultSpec
	switch {
	case cs.FaultName != "":
		var err error
		if f, err = FaultByName(cs.FaultName); err != nil {
			return nil, err
		}
	case cs.Fault != nil:
		f = *cs.Fault
		if err := f.Validate(); err != nil {
			return nil, err
		}
	default:
		return nil, nil
	}
	if f.Empty() {
		return nil, nil
	}
	return &f, nil
}

// attachTrace copies recorded events into the report.
func (s *Spec) attachTrace(rep *Report, tr *trace.Tracer) {
	if tr == nil {
		return
	}
	for _, ev := range tr.Events() {
		rep.Trace = append(rep.Trace, fmt.Sprintf("%.3fus %s %s", float64(ev.AtNanos)/1e3, ev.Cat, ev.Msg))
	}
}

// counters gathers model introspection totals.
func (s *Spec) counters(srv *host.Host, engine *rpc.Server) map[string]int64 {
	return map[string]int64{
		"serverPersistOps":   srv.PM.PersistOps,
		"serverPersistBytes": srv.PM.PersistBytes,
		"serverPMReads":      srv.PM.ReadOps,
		"nicStagedMsgs":      srv.NIC.StagedMsgs,
		"nicFlushAcks":       srv.NIC.FlushAcks,
		"llcFlushes":         srv.LLC.Flushes,
		"handled":            engine.Handled,
		"storeReads":         engine.Store.Reads,
		"storeWrites":        engine.Store.Writes,
	}
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func orDefault(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}
