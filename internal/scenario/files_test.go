package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestShippedScenarioFiles loads and runs every scenario in /scenarios at a
// reduced op count: the shipped examples must never rot.
func TestShippedScenarioFiles(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no shipped scenarios found")
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			f, err := os.Open(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			spec, err := Load(f)
			if err != nil {
				t.Fatal(err)
			}
			// Round-trip: a loaded spec must survive re-encoding — every
			// field Load accepts, Marshal emits and Load accepts again.
			enc, err := json.Marshal(spec)
			if err != nil {
				t.Fatal(err)
			}
			again, err := Load(bytes.NewReader(enc))
			if err != nil {
				t.Fatalf("re-loading the marshaled spec: %v", err)
			}
			if !reflect.DeepEqual(spec, again) {
				t.Fatalf("round-trip changed the spec:\n%+v\n%+v", spec, again)
			}
			// Shrink for test speed; semantics unchanged.
			spec.Ops = 300
			spec.Objects = 128
			if spec.Crashes != nil {
				spec.Crashes.Count = 1
				spec.Crashes.RestartMS = 2
				spec.Crashes.RetransferMS = 1
			}
			rep, err := spec.Run()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Ops == 0 {
				t.Fatal("scenario ran zero ops")
			}
		})
	}
}
