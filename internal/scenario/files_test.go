package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// TestShippedScenarioFiles loads and runs every scenario in /scenarios at a
// reduced op count: the shipped examples must never rot.
func TestShippedScenarioFiles(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no shipped scenarios found")
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			f, err := os.Open(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			spec, err := Load(f)
			if err != nil {
				t.Fatal(err)
			}
			// Shrink for test speed; semantics unchanged.
			spec.Ops = 300
			spec.Objects = 128
			if spec.Crashes != nil {
				spec.Crashes.Count = 1
				spec.Crashes.RestartMS = 2
				spec.Crashes.RetransferMS = 1
			}
			rep, err := spec.Run()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Ops == 0 {
				t.Fatal("scenario ran zero ops")
			}
		})
	}
}
