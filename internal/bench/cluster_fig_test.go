package bench

import (
	"strings"
	"testing"
)

// TestClusterFigures smoke-runs the -cluster driver at quick scale: all
// three phases must collect samples, no acknowledged write may be lost, and
// the victim must be readmitted.
func TestClusterFigures(t *testing.T) {
	f := Quick().clusterFigRun(4, 3)
	tabs := []Table{f.phaseTable(), f.shardTable(), f.controlTable()}
	if len(tabs) != 3 {
		t.Fatalf("want 3 tables, got %d", len(tabs))
	}
	if f.consistency != nil {
		t.Fatalf("acked-write loss: %v", f.consistency)
	}
	if f.res.Errors != 0 || f.res.BadReads != 0 {
		t.Fatalf("errors=%d badReads=%d", f.res.Errors, f.res.BadReads)
	}
	if !f.healthy {
		t.Fatal("victim never readmitted")
	}
	if f.crashAt == 0 {
		t.Fatal("crash script never fired")
	}
	for _, row := range tabs[0].Rows {
		if row[1] == "0" {
			t.Errorf("phase %q collected no samples", row[0])
		}
	}
	var b strings.Builder
	tabs[2].Fprint(&b)
	if !strings.Contains(b.String(), "0 (every acked write byte-identical") {
		t.Fatalf("controller table missing zero-loss line:\n%s", b.String())
	}
}

// TestClusterFiguresDeterministic renders the full figure set twice at a
// fixed seed and requires byte-identical output — the acceptance bar for
// the -cluster driver.
func TestClusterFiguresDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two cluster runs are seconds-long")
	}
	render := func() string {
		var b strings.Builder
		for _, tab := range Quick().ClusterFigures(4, 3) {
			tab.Fprint(&b)
		}
		return b.String()
	}
	a, bb := render(), render()
	if a != bb {
		t.Fatalf("cluster figure output not byte-identical across runs:\n--- a ---\n%s\n--- b ---\n%s", a, bb)
	}
}
