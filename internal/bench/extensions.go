package bench

import (
	"fmt"
	"time"

	"prdma/internal/host"
	"prdma/internal/replicate"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// Fig7CaseStudy reproduces the §4.4.1 case study (Fig. 7(a)): Octopus made
// durable with the WFlush primitive, versus plain Octopus (whose write-imm
// reply only confirms processing) — write latency to durability.
func (o Options) Fig7CaseStudy() Table {
	t := Table{
		Title:  "Fig 7(a) case study: Octopus +/- WFlush, write avg latency (us)",
		Header: []string{"system", "1KB", "4KB", "64KB"},
		Notes:  "Octopus+WFlush guarantees persistence with no receiver CPU on the path: cheaper for large objects (DMA vs clwb persist), one extra read round for small ones",
	}
	sizes := []int{1024, 4096, 65536}
	for _, durable := range []bool{false, true} {
		label := "Octopus"
		if durable {
			label = "Octopus+WFlush"
		}
		row := []string{label}
		for _, size := range sizes {
			row = append(row, fmtUS(o.octopusCase(durable, size)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// octopusCase measures write latency for the case-study pair.
func (o Options) octopusCase(durable bool, size int) time.Duration {
	d := o.deploy(size)
	c := d.build()
	var client rpc.Client
	if durable {
		client = rpc.NewOctopusDurable(c.cli[0], c.engine, d.cfg)
	} else {
		client = rpc.NewOctopus(c.cli[0], c.engine, d.cfg)
	}
	var total time.Duration
	ops := o.Ops / 4
	if ops == 0 {
		ops = 1
	}
	c.k.Go("driver", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			r, err := client.Call(p, &rpc.Request{Op: rpc.OpWrite, Key: uint64(i % d.objects), Size: size})
			if err != nil {
				panic(err)
			}
			total += r.ReadyAt.Sub(r.IssuedAt)
		}
	})
	c.k.Run()
	return total / time.Duration(ops)
}

// Replication measures the §4.5 extension: replicated durable-write latency
// across replication factors and completion policies, with and without a
// straggler replica.
func (o Options) Replication() Table {
	t := Table{
		Title:  "Extension (§4.5): replicated durable writes, avg latency (us), 4KB",
		Header: []string{"config", "R=1", "R=2", "R=3", "R=5"},
		Notes:  "wait-all tracks the slowest replica; a quorum hides stragglers — the consistency/performance tradeoff §4.5 describes",
	}
	cases := []struct {
		label    string
		policy   replicate.Policy
		straggle bool
	}{
		{"all, uniform", replicate.WaitAll, false},
		{"quorum, uniform", replicate.WaitQuorum, false},
		{"all, 1 straggler", replicate.WaitAll, true},
		{"quorum, 1 straggler", replicate.WaitQuorum, true},
	}
	for _, cse := range cases {
		row := []string{cse.label}
		for _, r := range []int{1, 2, 3, 5} {
			row = append(row, fmtUS(o.replicatedWrite(cse.policy, r, cse.straggle)))
		}
		t.Rows = append(t.Rows, row)
	}
	// The HyperLoop-style NIC-offloaded chain (native primitives): hops
	// serialize, but no client fan-out and zero replica CPU.
	row := []string{"chain (NIC offload)"}
	for _, r := range []int{1, 2, 3, 5} {
		row = append(row, fmtUS(o.chainWrite(r)))
	}
	t.Rows = append(t.Rows, row)
	return t
}

// chainWrite measures mean NIC-chain write latency (native flush mode).
func (o Options) chainWrite(replicas int) time.Duration {
	d := o.deploy(4096, nativeFlush)
	k := sim.New()
	net := newFabric(k, d)
	cli := newHost(k, "client-0", net, d.hostCli, d)
	var members []*host.Host
	for i := 0; i < replicas; i++ {
		members = append(members, newHost(k, fmt.Sprintf("replica-%d", i), net, d.hostSrv, d))
	}
	chain, err := replicate.NewChain(cli, members)
	if err != nil {
		panic(err)
	}
	var total time.Duration
	ops := o.Ops / 8
	if ops == 0 {
		ops = 1
	}
	k.Go("driver", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			start := p.Now()
			chain.Write(p, int64(i%d.objects)*4096, 4096, nil)
			total += p.Now().Sub(start)
		}
	})
	k.Run()
	return total / time.Duration(ops)
}

// replicatedWrite measures mean replicated-write latency.
func (o Options) replicatedWrite(policy replicate.Policy, replicas int, straggle bool) time.Duration {
	d := o.deploy(4096)
	k := sim.New()
	c := buildReplicaSet(k, d, replicas, straggle)
	rc, err := replicate.New(k, policy, c.clients)
	if err != nil {
		panic(err)
	}
	var total time.Duration
	ops := o.Ops / 8
	if ops == 0 {
		ops = 1
	}
	k.Go("driver", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			start := p.Now()
			if _, _, err := rc.Write(p, &rpc.Request{Op: rpc.OpWrite, Key: uint64(i % d.objects), Size: 4096}); err != nil {
				panic(err)
			}
			total += p.Now().Sub(start)
		}
	})
	k.Run()
	return total / time.Duration(ops)
}

// replicaSet is a client host plus R replica servers.
type replicaSet struct {
	clients []rpc.Client
}

// buildReplicaSet wires one client host against R replica servers.
func buildReplicaSet(k *sim.Kernel, d *deployment, replicas int, straggle bool) *replicaSet {
	net := newFabric(k, d)
	cli := newHost(k, "client-0", net, d.hostCli, d)
	out := &replicaSet{}
	for i := 0; i < replicas; i++ {
		hp := d.hostSrv
		if straggle && i == replicas-1 && replicas > 1 {
			hp.LoadFactor = 6
		}
		srv := newHost(k, fmt.Sprintf("replica-%d", i), net, hp, d)
		store, err := rpc.NewStore(srv, d.objects, d.objSize)
		if err != nil {
			panic(err)
		}
		engine := rpc.NewServer(srv, store, d.cfg)
		out.clients = append(out.clients, rpc.New(rpc.WFlushRPC, cli, engine, d.cfg))
	}
	return out
}

// Table1Extras measures the Table 1 systems the paper tabulates but does not
// plot: Hotpot's multi-phase commit and Mojim's primary-backup mirroring,
// against DaRPC (same primitive class) and the durable SFlush-RPC.
func (o Options) Table1Extras() Table {
	t := Table{
		Title:  "Table 1 extras: send-based systems, write avg latency (us)",
		Header: []string{"system", "1KB", "4KB"},
		Notes:  "Hotpot pays two commit round trips; Mojim pays a mirroring hop; SFlush-RPC acknowledges at NIC persistence",
	}
	for _, kind := range []rpc.Kind{rpc.DaRPC, rpc.Hotpot, rpc.SFlushRPC} {
		row := []string{kind.String()}
		for _, size := range []int{1024, 4096} {
			m := o.micro(kind, o.deploy(size), o.Ops/4, 0.0)
			row = append(row, fmtUS(m.Lat.Mean()))
		}
		t.Rows = append(t.Rows, row)
	}
	row := []string{"Mojim"}
	for _, size := range []int{1024, 4096} {
		row = append(row, fmtUS(o.mojimWrite(size)))
	}
	t.Rows = append(t.Rows, row)
	return t
}

// mojimWrite measures Mojim's mirrored write latency (needs two servers).
func (o Options) mojimWrite(size int) time.Duration {
	d := o.deploy(size)
	k := sim.New()
	net := newFabric(k, d)
	cli := newHost(k, "client-0", net, d.hostCli, d)
	ph := newHost(k, "primary", net, d.hostSrv, d)
	mh := newHost(k, "mirror", net, d.hostSrv, d)
	ps, err := rpc.NewStore(ph, d.objects, size)
	if err != nil {
		panic(err)
	}
	ms, err := rpc.NewStore(mh, d.objects, size)
	if err != nil {
		panic(err)
	}
	primary := rpc.NewServer(ph, ps, d.cfg)
	mirror := rpc.NewServer(mh, ms, d.cfg)
	client := rpc.NewMojim(cli, primary, mirror, d.cfg)
	var total time.Duration
	ops := o.Ops / 8
	if ops == 0 {
		ops = 1
	}
	k.Go("driver", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			r, err := client.Call(p, &rpc.Request{Op: rpc.OpWrite, Key: uint64(i % d.objects), Size: size})
			if err != nil {
				panic(err)
			}
			total += r.ReadyAt.Sub(r.IssuedAt)
		}
	})
	k.Run()
	return total / time.Duration(ops)
}
