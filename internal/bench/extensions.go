package bench

import (
	"fmt"
	"time"

	"prdma/internal/host"
	"prdma/internal/replicate"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// Fig7CaseStudy reproduces the §4.4.1 case study (Fig. 7(a)): Octopus made
// durable with the WFlush primitive, versus plain Octopus (whose write-imm
// reply only confirms processing) — write latency to durability.
func (o Options) Fig7CaseStudy() Table {
	t := Table{
		Title:  "Fig 7(a) case study: Octopus +/- WFlush, write avg latency (us)",
		Header: []string{"system", "1KB", "4KB", "64KB"},
		Notes:  "Octopus+WFlush guarantees persistence with no receiver CPU on the path: cheaper for large objects (DMA vs clwb persist), one extra read round for small ones",
	}
	sizes := []int{1024, 4096, 65536}
	variants := []bool{false, true}
	cells := mapCells(o.runner(), len(variants)*len(sizes), func(i int) string {
		return fmtUS(o.octopusCase(variants[i/len(sizes)], sizes[i%len(sizes)]))
	})
	for vi, durable := range variants {
		label := "Octopus"
		if durable {
			label = "Octopus+WFlush"
		}
		row := append([]string{label}, cells[vi*len(sizes):(vi+1)*len(sizes)]...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// octopusCase measures write latency for the case-study pair.
func (o Options) octopusCase(durable bool, size int) time.Duration {
	d := o.deploy(size)
	c := d.build()
	var client rpc.Client
	if durable {
		client = rpc.NewOctopusDurable(c.cli[0], c.engine, d.cfg)
	} else {
		client = rpc.NewOctopus(c.cli[0], c.engine, d.cfg)
	}
	var total time.Duration
	ops := o.Ops / 4
	if ops == 0 {
		ops = 1
	}
	c.k.Go("driver", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			r, err := client.Call(p, &rpc.Request{Op: rpc.OpWrite, Key: uint64(i % d.objects), Size: size})
			if err != nil {
				panic(err)
			}
			total += r.ReadyAt.Sub(r.IssuedAt)
		}
	})
	c.k.Run()
	return total / time.Duration(ops)
}

// Replication measures the §4.5 extension: replicated durable-write latency
// across replication factors and completion policies, with and without a
// straggler replica.
func (o Options) Replication() Table {
	t := Table{
		Title:  "Extension (§4.5): replicated durable writes, avg latency (us), 4KB",
		Header: []string{"config", "R=1", "R=2", "R=3", "R=5"},
		Notes:  "wait-all tracks the slowest replica; a quorum hides stragglers — the consistency/performance tradeoff §4.5 describes",
	}
	cases := []struct {
		label    string
		policy   replicate.Policy
		straggle bool
	}{
		{"all, uniform", replicate.WaitAll, false},
		{"quorum, uniform", replicate.WaitQuorum, false},
		{"all, 1 straggler", replicate.WaitAll, true},
		{"quorum, 1 straggler", replicate.WaitQuorum, true},
	}
	factors := []int{1, 2, 3, 5}
	// The last case row is the HyperLoop-style NIC-offloaded chain (native
	// primitives): hops serialize, but no client fan-out and zero replica
	// CPU. It shares the cell matrix: (case..., chain) x factors.
	cells := mapCells(o.runner(), (len(cases)+1)*len(factors), func(i int) string {
		ci, r := i/len(factors), factors[i%len(factors)]
		if ci == len(cases) {
			return fmtUS(o.chainWrite(r))
		}
		return fmtUS(o.replicatedWrite(cases[ci].policy, r, cases[ci].straggle))
	})
	for ci, cse := range cases {
		row := append([]string{cse.label}, cells[ci*len(factors):(ci+1)*len(factors)]...)
		t.Rows = append(t.Rows, row)
	}
	row := append([]string{"chain (NIC offload)"}, cells[len(cases)*len(factors):]...)
	t.Rows = append(t.Rows, row)
	return t
}

// chainWrite measures mean NIC-chain write latency (native flush mode).
func (o Options) chainWrite(replicas int) time.Duration {
	d := o.deploy(4096, nativeFlush)
	k := sim.New()
	net := newFabric(k, d)
	cli := newHost(k, "client-0", net, d.hostCli, d)
	var members []*host.Host
	for i := 0; i < replicas; i++ {
		members = append(members, newHost(k, fmt.Sprintf("replica-%d", i), net, d.hostSrv, d))
	}
	chain, err := replicate.NewChain(cli, members)
	if err != nil {
		panic(err)
	}
	var total time.Duration
	ops := o.Ops / 8
	if ops == 0 {
		ops = 1
	}
	k.Go("driver", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			start := p.Now()
			chain.Write(p, int64(i%d.objects)*4096, 4096, nil)
			total += p.Now().Sub(start)
		}
	})
	k.Run()
	return total / time.Duration(ops)
}

// replicatedWrite measures mean replicated-write latency.
func (o Options) replicatedWrite(policy replicate.Policy, replicas int, straggle bool) time.Duration {
	d := o.deploy(4096)
	k := sim.New()
	c := buildReplicaSet(k, d, replicas, straggle)
	rc, err := replicate.New(k, policy, c.clients)
	if err != nil {
		panic(err)
	}
	var total time.Duration
	ops := o.Ops / 8
	if ops == 0 {
		ops = 1
	}
	k.Go("driver", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			start := p.Now()
			if _, _, err := rc.Write(p, &rpc.Request{Op: rpc.OpWrite, Key: uint64(i % d.objects), Size: 4096}); err != nil {
				panic(err)
			}
			total += p.Now().Sub(start)
		}
	})
	k.Run()
	return total / time.Duration(ops)
}

// replicaSet is a client host plus R replica servers.
type replicaSet struct {
	clients []rpc.Client
}

// buildReplicaSet wires one client host against R replica servers.
func buildReplicaSet(k *sim.Kernel, d *deployment, replicas int, straggle bool) *replicaSet {
	net := newFabric(k, d)
	cli := newHost(k, "client-0", net, d.hostCli, d)
	out := &replicaSet{}
	for i := 0; i < replicas; i++ {
		hp := d.hostSrv
		if straggle && i == replicas-1 && replicas > 1 {
			hp.LoadFactor = 6
		}
		srv := newHost(k, fmt.Sprintf("replica-%d", i), net, hp, d)
		store, err := rpc.NewStore(srv, d.objects, d.objSize)
		if err != nil {
			panic(err)
		}
		engine := rpc.NewServer(srv, store, d.cfg)
		out.clients = append(out.clients, rpc.New(rpc.WFlushRPC, cli, engine, d.cfg))
	}
	return out
}

// Table1Extras measures the Table 1 systems the paper tabulates but does not
// plot: Hotpot's multi-phase commit and Mojim's primary-backup mirroring,
// against DaRPC (same primitive class) and the durable SFlush-RPC.
func (o Options) Table1Extras() Table {
	t := Table{
		Title:  "Table 1 extras: send-based systems, write avg latency (us)",
		Header: []string{"system", "1KB", "4KB"},
		Notes:  "Hotpot pays two commit round trips; Mojim pays a mirroring hop; SFlush-RPC acknowledges at NIC persistence",
	}
	kinds := []rpc.Kind{rpc.DaRPC, rpc.Hotpot, rpc.SFlushRPC}
	sizes := []int{1024, 4096}
	// Cell matrix: (kinds..., Mojim) x sizes; Mojim needs its own two-server
	// topology, so it is measured by mojimWrite instead of micro.
	cells := mapCells(o.runner(), (len(kinds)+1)*len(sizes), func(i int) string {
		ki, size := i/len(sizes), sizes[i%len(sizes)]
		if ki == len(kinds) {
			return fmtUS(o.mojimWrite(size))
		}
		m := o.micro(kinds[ki], o.deploy(size), o.Ops/4, 0.0)
		return fmtUS(m.Lat.Mean())
	})
	for ki, kind := range kinds {
		row := append([]string{kind.String()}, cells[ki*len(sizes):(ki+1)*len(sizes)]...)
		t.Rows = append(t.Rows, row)
	}
	row := append([]string{"Mojim"}, cells[len(kinds)*len(sizes):]...)
	t.Rows = append(t.Rows, row)
	return t
}

// mojimWrite measures Mojim's mirrored write latency (needs two servers).
func (o Options) mojimWrite(size int) time.Duration {
	d := o.deploy(size)
	k := sim.New()
	net := newFabric(k, d)
	cli := newHost(k, "client-0", net, d.hostCli, d)
	ph := newHost(k, "primary", net, d.hostSrv, d)
	mh := newHost(k, "mirror", net, d.hostSrv, d)
	ps, err := rpc.NewStore(ph, d.objects, size)
	if err != nil {
		panic(err)
	}
	ms, err := rpc.NewStore(mh, d.objects, size)
	if err != nil {
		panic(err)
	}
	primary := rpc.NewServer(ph, ps, d.cfg)
	mirror := rpc.NewServer(mh, ms, d.cfg)
	client := rpc.NewMojim(cli, primary, mirror, d.cfg)
	var total time.Duration
	ops := o.Ops / 8
	if ops == 0 {
		ops = 1
	}
	k.Go("driver", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			r, err := client.Call(p, &rpc.Request{Op: rpc.OpWrite, Key: uint64(i % d.objects), Size: size})
			if err != nil {
				panic(err)
			}
			total += r.ReadyAt.Sub(r.IssuedAt)
		}
	})
	k.Run()
	return total / time.Duration(ops)
}
