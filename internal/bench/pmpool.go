package bench

import (
	"fmt"
	"math"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/graph"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/pmpool"
	"prdma/internal/rnic"
	"prdma/internal/rpc"
	"prdma/internal/sim"
	"prdma/internal/stats"
)

// PMPoolFigures drives the remote persistent-memory pool (internal/pmpool)
// two ways. First a closed-loop allocation grid: for each pool-server ×
// client-host cell, every client cycles alloc → durable write → free
// through the striped pool and the cell reports alloc/free throughput,
// write bandwidth, and alloc latency percentiles. Then the disaggregated
// shuffle: PageRank with every map→reduce exchange staged through the pool,
// asserted bit-identical against the in-memory baseline.
func (o Options) PMPoolFigures() []Table {
	return []Table{o.pmpoolGridTable(), o.pmpoolShuffleTable()}
}

// pmpoolCell is one completed grid cell.
type pmpoolCell struct {
	servers, clients int
	cycles           int64
	writeBytes       int64
	elapsed          time.Duration
	allocLat         *stats.Latency
	leaked           int
}

// pmpoolDeploy builds servers pool nodes and clients client hosts, each
// with its own striping Pool front end, on a fresh kernel.
func pmpoolDeploy(k *sim.Kernel, servers, clients int, seed uint64) ([]*pmpool.Server, []*pmpool.Pool) {
	net := fabric.New(k, fabric.DefaultParams(), seed|1)
	rcfg := rpc.DefaultConfig()
	rcfg.LogBytes = 128 << 10
	scfg := pmpool.DefaultServerConfig()
	scfg.PoolBytes = 512 * 4096
	srvs := make([]*pmpool.Server, servers)
	for i := range srvs {
		h := host.New(k, fmt.Sprintf("pool%d", i), net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
		srvs[i] = pmpool.NewServer(h, rcfg, scfg)
	}
	pools := make([]*pmpool.Pool, clients)
	for c := range pools {
		h := host.New(k, fmt.Sprintf("cli%d", c), net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
		pcfg := pmpool.DefaultPoolConfig(uint64(c + 1))
		pcfg.ConnsPerServer = 2
		pcfg.LeaseTTL = scfg.LeaseTTL
		pools[c] = pmpool.NewPool(h, srvs, rcfg, pcfg)
	}
	return srvs, pools
}

// pmpoolStop retires every renewer and reclaimer so k.Run can drain.
func pmpoolStop(srvs []*pmpool.Server, pools []*pmpool.Pool) {
	for _, pl := range pools {
		pl.Stop()
	}
	for _, s := range srvs {
		s.Stop()
	}
}

func (o Options) pmpoolGridCell(servers, clients int) pmpoolCell {
	cell := pmpoolCell{
		servers: servers, clients: clients,
		allocLat: stats.NewLatency(o.Ops),
	}
	perClient := o.Ops / (10 * clients)
	if perClient < 20 {
		perClient = 20
	}
	sizes := []int64{64, 256, 1024, 3000}

	k := sim.New()
	srvs, pools := pmpoolDeploy(k, servers, clients, o.Seed)
	var start, end sim.Time
	wg := sim.NewWaitGroup(k)
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		c := c
		pool := pools[c]
		k.Go(fmt.Sprintf("pmpool-bench-%d", c), func(p *sim.Proc) {
			defer wg.Done()
			buf := make([]byte, sizes[len(sizes)-1])
			for i := range buf {
				buf[i] = byte(i*31 + c)
			}
			for i := 0; i < perClient; i++ {
				size := sizes[(i+c)%len(sizes)]
				t0 := p.Now()
				h, err := pool.Alloc(p, size)
				if err != nil {
					panic(fmt.Sprintf("pmpool bench: alloc: %v", err))
				}
				cell.allocLat.Add(p.Now().Sub(t0))
				if err := pool.Write(p, h, 0, buf[:size]); err != nil {
					panic(fmt.Sprintf("pmpool bench: write: %v", err))
				}
				if err := pool.Free(p, h); err != nil {
					panic(fmt.Sprintf("pmpool bench: free: %v", err))
				}
				cell.cycles++
				cell.writeBytes += size
			}
		})
	}
	k.Go("pmpool-bench-main", func(p *sim.Proc) {
		start = p.Now()
		wg.Wait(p)
		end = p.Now()
		pmpoolStop(srvs, pools)
	})
	k.Run()
	for _, s := range srvs {
		cell.leaked += s.Live()
	}
	k.Shutdown()
	cell.elapsed = end.Sub(start)
	AddSimOps(cell.cycles)
	return cell
}

func (o Options) pmpoolGridTable() Table {
	grid := []struct{ servers, clients int }{
		{1, 1}, {1, 4}, {2, 4}, {4, 4}, {4, 8},
	}
	cells := mapCells(o.runner(), len(grid), func(i int) pmpoolCell {
		return o.pmpoolGridCell(grid[i].servers, grid[i].clients)
	})
	t := Table{
		Title:  "Remote PM pool: closed-loop alloc+write+free grid (striped by consistent hash, durable-on-return writes)",
		Header: []string{"servers", "clients", "cycles", "alloc KOPS", "free KOPS", "write GB/s", "alloc p50 (us)", "alloc p99 (us)", "leaked"},
		Notes:  "each cycle allocs a rotating size class, lands one durable write, and frees; leaked must be 0 — every handle was freed with an ack",
	}
	for _, c := range cells {
		kops := stats.Throughput{Ops: int(c.cycles), Elapsed: c.elapsed}.KOPS()
		gbs := float64(c.writeBytes) / c.elapsed.Seconds() / 1e9
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c.servers),
			fmt.Sprintf("%d", c.clients),
			fmt.Sprintf("%d", c.cycles),
			fmt.Sprintf("%.1f", kops),
			fmt.Sprintf("%.1f", kops),
			fmt.Sprintf("%.3f", gbs),
			fmtUS(c.allocLat.Percentile(50)),
			fmtUS(c.allocLat.Percentile(99)),
			fmt.Sprintf("%d", c.leaked),
		})
	}
	return t
}

func (o Options) pmpoolShuffleTable() Table {
	ds := graph.Dataset{
		Name:  graph.WordAssociation.Name,
		Nodes: graph.WordAssociation.Nodes / o.GraphScale,
		Edges: graph.WordAssociation.Edges / o.GraphScale,
	}
	g := graph.Generate(ds, o.Seed)
	cfg := pmpool.DefaultShuffleConfig()
	cfg.Iterations = o.PageRankIters
	cfg.MaxChunk = 4096 // every block must fit one pool slab

	k := sim.New()
	srvs, pools := pmpoolDeploy(k, 2, 2, o.Seed)
	var ranks []float64
	var shuffleStats pmpool.ShuffleStats
	var start, end sim.Time
	k.Go("pmpool-shuffle", func(p *sim.Proc) {
		start = p.Now()
		var err error
		ranks, shuffleStats, err = pmpool.ShufflePageRank(p, pools, g, cfg)
		if err != nil {
			panic(fmt.Sprintf("pmpool shuffle: %v", err))
		}
		end = p.Now()
		pmpoolStop(srvs, pools)
	})
	k.Run()
	leaked := 0
	for _, s := range srvs {
		leaked += s.Live()
	}
	k.Shutdown()
	AddSimOps(shuffleStats.Blocks)

	local := pmpool.LocalShufflePageRank(g, cfg)
	identical := len(ranks) == len(local)
	var maxDelta float64
	for i := range local {
		if i >= len(ranks) {
			break
		}
		if math.Float64bits(ranks[i]) != math.Float64bits(local[i]) {
			identical = false
		}
		if d := math.Abs(ranks[i] - local[i]); d > maxDelta {
			maxDelta = d
		}
	}
	equal := "bit-identical to local baseline"
	if !identical {
		equal = fmt.Sprintf("DIVERGED (max |delta| %.3g)", maxDelta)
	}
	t := Table{
		Title: fmt.Sprintf("Disaggregated shuffle: PageRank %s/%d, %d iters, %dx%d map/reduce through 2 pool servers",
			ds.Name, o.GraphScale, cfg.Iterations, cfg.Maps, cfg.Reducers),
		Header: []string{"metric", "value"},
		Notes:  "the only channel between map and reduce is remote PM; identical emit/reduce code on both paths makes the float accumulation order — and so the ranks — bit-identical",
	}
	t.Rows = [][]string{
		{"shuffle blocks", fmt.Sprintf("%d", shuffleStats.Blocks)},
		{"shuffle bytes", fmt.Sprintf("%d", shuffleStats.Bytes)},
		{"wall (us)", fmtUS(end.Sub(start))},
		{"blocks leaked", fmt.Sprintf("%d", leaked)},
		{"ranks", equal},
	}
	return t
}
