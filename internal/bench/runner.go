package bench

import (
	"runtime"
	"sync"
)

// Runner fans independent experiment cells across a bounded worker pool.
// Every cell of every figure driver builds its own sim.Kernel, network, and
// RNG streams from the deployment seed, so cells share no mutable state and
// their results depend only on their parameters — never on execution order.
// That makes the experiment matrix embarrassingly parallel: the runner
// executes cells concurrently but collects results into their insertion
// slots, so the emitted tables are byte-identical to a sequential run.
type Runner struct {
	workers int
}

// NewRunner returns a runner executing up to workers cells concurrently.
// workers <= 1 means strictly sequential, in submission order.
func NewRunner(workers int) *Runner {
	if workers < 1 {
		workers = 1
	}
	return &Runner{workers: workers}
}

// runner materializes the Options' parallelism setting: 0 or 1 is
// sequential (the default, and the reference for determinism tests),
// negative means one worker per available CPU.
func (o Options) runner() *Runner {
	n := o.Parallel
	if n < 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return NewRunner(n)
}

// Do runs fn(i) for every i in [0, n), spread across the pool. It returns
// only when all cells finished. A panic in any cell is re-raised on the
// caller after the pool drains, preserving the sequential drivers' panic-on-
// model-bug contract.
func (r *Runner) Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if r == nil || r.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	workers := r.workers
	if workers > n {
		workers = n
	}
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if p := recover(); p != nil {
							panicOnce.Do(func() { panicked = p })
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// mapCells runs fn(i) for each i in [0, n) on the runner and returns the
// results in index order regardless of completion order. It is the shape
// every figure driver reduces to: enumerate the cell matrix, measure each
// cell in isolation, then format rows from the ordered slots.
func mapCells[T any](r *Runner, n int, fn func(i int) T) []T {
	out := make([]T, n)
	r.Do(n, func(i int) { out[i] = fn(i) })
	return out
}
