package bench

import (
	"runtime"
	"testing"
)

// TestParallelScaleDeterminism runs a reduced worker ladder — 1/2/4/8, with
// window fusion and the pooled cross-transfer slabs active — and checks the
// driver's own verdict plus the per-rung invariants: same events, same
// fingerprint, same coordination counters, consistency clean (ParallelScale
// errors otherwise).
func TestParallelScaleDeterminism(t *testing.T) {
	o := tiny()
	o.Ops = 400
	sr, err := o.ParallelScale([]int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Deterministic {
		t.Fatalf("worker ladder diverged: %+v", sr.Points)
	}
	if len(sr.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(sr.Points))
	}
	for _, p := range sr.Points {
		if p.Events == 0 || p.Crossed == 0 || p.Windows == 0 {
			t.Fatalf("workers=%d: degenerate counters %+v", p.Workers, p)
		}
		if p.Fingerprint != sr.Points[0].Fingerprint {
			t.Fatalf("workers=%d: fingerprint mismatch", p.Workers)
		}
		if p.Windows != sr.Points[0].Windows || p.Barriers != sr.Points[0].Barriers ||
			p.IdleSkips != sr.Points[0].IdleSkips || p.FusedWindows != sr.Points[0].FusedWindows {
			t.Fatalf("workers=%d: coordination counters not worker-invariant: %+v vs %+v",
				p.Workers, p, sr.Points[0])
		}
		if p.SlabHitPct < 50 {
			t.Fatalf("workers=%d: cross-transfer slab hit rate %.1f%% — pooling not engaging", p.Workers, p.SlabHitPct)
		}
	}
}

// TestMillionClientSmokeReduced runs the population smoke at a reduced
// population: invariants must hold and the run must be reproducible.
func TestMillionClientSmokeReduced(t *testing.T) {
	o := tiny()
	o.Ops = 300
	a, err := o.MillionClientSmoke(2, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if !a.OK {
		t.Fatalf("smoke invariants failed: %+v", a)
	}
	if a.Completed != o.Ops || a.Errors != 0 {
		t.Fatalf("completed=%d errors=%d", a.Completed, a.Errors)
	}
	b, err := o.MillionClientSmoke(4, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if b.Fingerprint != a.Fingerprint {
		t.Fatalf("smoke fingerprint diverged across workers: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
}

// TestPartitionedShutdownReleasesHeap is the cross-transfer counterpart of
// TestDeploymentShutdownReleasesHeap: the partitioned ladder exercises the
// engine outboxes and the fabric's pooled transfer slabs, both of which
// buffer delivered messages and their completion closures. Engine.Shutdown
// must drop those references (and flush must zero delivered entries) or
// every retired deployment pins its last windows' payloads and closures.
func TestPartitionedShutdownReleasesHeap(t *testing.T) {
	heap := func() uint64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	o := tiny()
	o.Ops = 200
	ladder := func() {
		if _, err := o.ParallelScale([]int{2}); err != nil {
			t.Fatal(err)
		}
	}
	ladder() // warm-up: pools and lazily built tables
	before := heap()
	const repeats = 4
	for i := 0; i < repeats; i++ {
		ladder()
	}
	after := heap()
	growth := int64(after) - int64(before)
	t.Logf("heap before=%.1f MB after=%.1f MB growth=%.1f MB over %d partitioned deployments",
		float64(before)/(1<<20), float64(after)/(1<<20), float64(growth)/(1<<20), repeats)
	if growth > 16<<20 {
		t.Fatalf("retained heap grew %.1f MB over %d shut-down partitioned deployments — outbox or transfer slabs leaking",
			float64(growth)/(1<<20), repeats)
	}
}

// TestDeploymentShutdownReleasesHeap pins the parked-proc leak fix:
// back-to-back deployments previously each pinned ~100 MB (every proc
// goroutine parked at its resume channel, plus the event free lists), so a
// ladder of runs grew the heap linearly. With Engine.Shutdown reaping each
// finished deployment, retained heap must stay flat across repeats.
func TestDeploymentShutdownReleasesHeap(t *testing.T) {
	heap := func() uint64 {
		runtime.GC()
		runtime.GC() // second pass collects what the first pass's finalizers freed
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	o := tiny()
	o.Ops = 200
	// Warm-up establishes the steady-state baseline (pools, lazily built
	// tables) so the delta below measures per-deployment retention only.
	if _, err := o.MillionClientSmoke(2, 10_000); err != nil {
		t.Fatal(err)
	}
	before := heap()
	const repeats = 4
	for i := 0; i < repeats; i++ {
		if _, err := o.MillionClientSmoke(2, 10_000); err != nil {
			t.Fatal(err)
		}
	}
	after := heap()
	growth := int64(after) - int64(before)
	t.Logf("heap before=%.1f MB after=%.1f MB growth=%.1f MB over %d deployments",
		float64(before)/(1<<20), float64(after)/(1<<20), float64(growth)/(1<<20), repeats)
	// A single leaked deployment at this size pins tens of MB; four pin well
	// over the bound. Flat-with-noise passes, linear growth fails.
	if growth > 16<<20 {
		t.Fatalf("retained heap grew %.1f MB over %d shut-down deployments — parked procs leaking again",
			float64(growth)/(1<<20), repeats)
	}
}
