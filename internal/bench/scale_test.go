package bench

import "testing"

// TestParallelScaleDeterminism runs a reduced worker ladder and checks the
// driver's own verdict plus the per-rung invariants: same events, same
// fingerprint, consistency clean (ParallelScale errors otherwise).
func TestParallelScaleDeterminism(t *testing.T) {
	o := tiny()
	o.Ops = 400
	sr, err := o.ParallelScale([]int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Deterministic {
		t.Fatalf("worker ladder diverged: %+v", sr.Points)
	}
	if len(sr.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(sr.Points))
	}
	for _, p := range sr.Points {
		if p.Events == 0 || p.Crossed == 0 {
			t.Fatalf("workers=%d: degenerate counters %+v", p.Workers, p)
		}
		if p.Fingerprint != sr.Points[0].Fingerprint {
			t.Fatalf("workers=%d: fingerprint mismatch", p.Workers)
		}
	}
}

// TestMillionClientSmokeReduced runs the population smoke at a reduced
// population: invariants must hold and the run must be reproducible.
func TestMillionClientSmokeReduced(t *testing.T) {
	o := tiny()
	o.Ops = 300
	a, err := o.MillionClientSmoke(2, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if !a.OK {
		t.Fatalf("smoke invariants failed: %+v", a)
	}
	if a.Completed != o.Ops || a.Errors != 0 {
		t.Fatalf("completed=%d errors=%d", a.Completed, a.Errors)
	}
	b, err := o.MillionClientSmoke(4, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if b.Fingerprint != a.Fingerprint {
		t.Fatalf("smoke fingerprint diverged across workers: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
}
