// Package bench implements one experiment driver per table/figure of the
// paper's evaluation (§5). Each driver builds fresh clusters, runs the
// workload the paper describes, and returns rows shaped like the published
// plot. cmd/prdmabench prints them; the repository's bench_test.go wraps
// them as Go benchmarks; EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"fmt"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/rpc"
	"prdma/internal/sim"
	"prdma/internal/stats"
	"prdma/internal/ycsb"
)

// Options scales the experiments. The paper's full parameters (300 K ops,
// 50 K objects) reproduce exactly with Full(); tests and quick runs use
// smaller counts — the workloads are statistically identical, just shorter.
type Options struct {
	// Ops per configuration (paper: 300 000).
	Ops int
	// Objects pre-loaded in the store (paper: 50 000).
	Objects int
	// Senders for the concurrency experiment's per-sender op count
	// (paper: 30 000 each).
	OpsPerSender int
	// PageRankIters per run.
	PageRankIters int
	// GraphScale divides the paper's dataset sizes (1 = full).
	GraphScale int
	// Seed for all generators.
	Seed uint64
	// EmulateFlush selects the paper's measured emulation (default) or
	// the native primitives.
	EmulateFlush bool
	// Parallel is the number of experiment cells run concurrently by each
	// figure driver: 0 or 1 runs strictly sequentially, a negative value
	// uses one worker per available CPU. Each cell builds its own
	// sim.Kernel, so results are identical at any setting; only wall time
	// changes (see internal/bench/runner.go).
	Parallel int
}

// Quick returns options sized for unit tests and smoke runs.
func Quick() Options {
	return Options{
		Ops: 1500, Objects: 2000, OpsPerSender: 150,
		PageRankIters: 1, GraphScale: 20, Seed: 1, EmulateFlush: true,
	}
}

// Default returns options sized for a few-minute full harness run.
func Default() Options {
	return Options{
		Ops: 20000, Objects: 10000, OpsPerSender: 1500,
		PageRankIters: 2, GraphScale: 4, Seed: 1, EmulateFlush: true,
	}
}

// Full returns the paper's exact workload sizes. Expect long runs.
func Full() Options {
	return Options{
		Ops: 300000, Objects: 50000, OpsPerSender: 30000,
		PageRankIters: 5, GraphScale: 1, Seed: 1, EmulateFlush: true,
	}
}

// cluster bundles one experiment deployment.
type cluster struct {
	k      *sim.Kernel
	net    *fabric.Network
	server *host.Host
	engine *rpc.Server
	store  *rpc.Store
	cli    []*host.Host
}

// tweak adjusts the model before a run.
type tweak func(*deployment)

// deployment is the full parameter set for one run.
type deployment struct {
	net     fabric.Params
	hostCli host.Params
	hostSrv host.Params
	pm      pmem.Params
	nic     rnic.Params
	cfg     rpc.Config
	senders int
	objSize int
	objects int
	seed    uint64
}

func (o Options) deploy(objSize int, tweaks ...tweak) *deployment {
	d := &deployment{
		net: fabric.DefaultParams(), hostCli: host.DefaultParams(),
		hostSrv: host.DefaultParams(), pm: pmem.DefaultParams(),
		nic: rnic.DefaultParams(), cfg: rpc.DefaultConfig(),
		senders: 1, objSize: objSize, objects: o.Objects, seed: o.Seed,
	}
	d.nic.EmulateFlush = o.EmulateFlush
	for _, t := range tweaks {
		t(d)
	}
	return d
}

// newFabric and newHost are the deployment's component constructors, shared
// with multi-server topologies (the replication extension).
func newFabric(k *sim.Kernel, d *deployment) *fabric.Network {
	return fabric.New(k, d.net, d.seed)
}

func newHost(k *sim.Kernel, name string, net *fabric.Network, hp host.Params, d *deployment) *host.Host {
	return host.New(k, name, net, hp, d.pm, d.nic)
}

// build instantiates a deployment.
func (d *deployment) build() *cluster {
	k := sim.New()
	net := fabric.New(k, d.net, d.seed)
	srv := host.New(k, "server", net, d.hostSrv, d.pm, d.nic)
	store, err := rpc.NewStore(srv, d.objects, d.objSize)
	if err != nil {
		panic(err)
	}
	engine := rpc.NewServer(srv, store, d.cfg)
	c := &cluster{k: k, net: net, server: srv, engine: engine, store: store}
	for i := 0; i < d.senders; i++ {
		c.cli = append(c.cli, host.New(k, fmt.Sprintf("client-%d", i), net, d.hostCli, d.pm, d.nic))
	}
	return c
}

// Common tweaks.
func heavyLoad(d *deployment) { d.cfg.ProcessingTime = 100 * time.Microsecond }
func withSenders(n int) tweak { return func(d *deployment) { d.senders = n } }
func busyNetwork(d *deployment) {
	// A background flood of small packets: queueing delay plus reduced
	// effective bandwidth (§5.5, Fig. 14).
	d.net.BusyQueueMean = 4 * time.Microsecond
	d.net.BusyBandwidthShare = 0.6
}
func busyReceiver(d *deployment) { d.hostSrv.LoadFactor = 4 }
func busySender(d *deployment)   { d.hostCli.LoadFactor = 4 }
func nativeFlush(d *deployment)  { d.nic.EmulateFlush = false }
func withDDIO(d *deployment)     { d.nic.DDIO = true }
func workers(n int) tweak        { return func(d *deployment) { d.cfg.Workers = n } }
func throttle(n int) tweak       { return func(d *deployment) { d.cfg.ThrottleOutstanding = n } }

// microResult is one micro-benchmark measurement.
type microResult struct {
	Kind    rpc.Kind
	Lat     *stats.Latency
	Elapsed time.Duration
	Ops     int
	// SenderSW and ReceiverSW are cumulative host software times divided
	// by Ops (Fig. 20 raw material).
	SenderSW   time.Duration
	ReceiverSW time.Duration
}

// KOPS returns throughput in the paper's Fig. 8 unit.
func (m microResult) KOPS() float64 {
	return stats.Throughput{Ops: m.Ops, Elapsed: m.Elapsed}.KOPS()
}

// micro runs the §5.1 micro-benchmark: `ops` object accesses with the given
// read fraction over a zipfian key distribution, spread across the
// deployment's senders in closed loops.
func (o Options) micro(kind rpc.Kind, d *deployment, ops int, readFrac float64) microResult {
	c := d.build()
	lat := stats.NewLatency(ops)
	// The workload starts at virtual time zero: build() performs no
	// simulated work and every driver proc spawns at Time 0, so the
	// joiner's finish time is also the elapsed workload duration.
	var end sim.Time
	wg := sim.NewWaitGroup(c.k)
	per := ops / d.senders
	if per == 0 {
		per = 1
	}
	for s := 0; s < d.senders; s++ {
		s := s
		wg.Add(1)
		client := rpc.New(kind, c.cli[s], c.engine, d.cfg)
		mix := ycsb.NewMix(readFrac, int64(d.objects), d.objSize, o.Seed+uint64(s)*7919)
		c.k.Go(fmt.Sprintf("driver-%d", s), func(p *sim.Proc) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				req := mix.Next()
				r, err := client.Call(p, req)
				if err != nil {
					panic(err)
				}
				lat.Add(r.ReadyAt.Sub(r.IssuedAt))
			}
		})
	}
	done := false
	c.k.Go("joiner", func(p *sim.Proc) {
		wg.Wait(p)
		end = p.Now()
		done = true
	})
	c.k.Run()
	if !done {
		panic("bench: micro run did not complete")
	}
	total := per * d.senders
	AddSimOps(int64(total))
	var cliSW time.Duration
	for _, h := range c.cli {
		cliSW += h.SWTime
	}
	return microResult{
		Kind: kind, Lat: lat, Elapsed: end.Duration(), Ops: total,
		SenderSW:   cliSW / time.Duration(total),
		ReceiverSW: c.server.SWTime / time.Duration(total),
	}
}

// skip reports whether a kind cannot run a configuration (FaSST's UD MTU).
func skip(kind rpc.Kind, objSize int) bool {
	return kind == rpc.FaSST && objSize > 4096-64
}

// fmtUS formats a duration in microseconds for table output.
func fmtUS(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Microsecond))
}
