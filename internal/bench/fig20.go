package bench

import (
	"fmt"

	"prdma/internal/rpc"
)

// Fig20 reproduces Fig. 20: the hardware/software breakdown of RPC latency
// under a YCSB-A-like mix (50/50 read-update, 4 KB values).
//
// The sender software cost is measured directly (accumulated host software
// time per op). The receiver's critical-path software cost is isolated
// differentially: the same workload is re-run with the receiver's software
// model zeroed (free polling/dispatch/memcpy and an infinitely fast CPU
// persist path); the drop in mean latency is exactly the receiver software
// that was on the critical path — asynchronous processing that durable RPCs
// hide does not count, matching the paper's "no more than 7%" claim. The
// remainder is network RTT plus NIC/DMA/PM hardware time.
func (o Options) Fig20() Table {
	t := Table{
		Title:  "Fig 20: latency breakdown, YCSB-A mix, 4KB (us)",
		Header: []string{"rpc", "sender-sw", "receiver-sw", "rtt+hw", "total", "sw-share"},
		Notes:  "expect: RTT dominates; DaRPC RTT ~2x FaRM's; durable RPCs' software share <~7%",
	}
	size := 4096
	var kinds []rpc.Kind
	for _, kind := range rpc.Kinds {
		if skip(kind, size) {
			continue
		}
		kinds = append(kinds, kind)
	}
	cells := mapCells(o.runner(), len(kinds)*2, func(i int) microResult {
		kind := kinds[i/2]
		if i%2 == 0 {
			return o.micro(kind, o.deploy(size), o.Ops, 0.5)
		}
		return o.micro(kind, o.deploy(size, zeroServerSW), o.Ops, 0.5)
	})
	for ki, kind := range kinds {
		normal, zeroed := cells[ki*2], cells[ki*2+1]
		mean := normal.Lat.Mean()
		recvSW := mean - zeroed.Lat.Mean()
		if recvSW < 0 {
			recvSW = 0
		}
		sendSW := normal.SenderSW
		hw := mean - sendSW - recvSW
		if hw < 0 {
			hw = 0
		}
		share := float64(sendSW+recvSW) / float64(mean) * 100
		t.Rows = append(t.Rows, []string{
			kind.String(), fmtUS(sendSW), fmtUS(recvSW), fmtUS(hw), fmtUS(mean),
			fmtPct(share),
		})
	}
	return t
}

// zeroServerSW removes the receiver's software costs so the differential
// isolates them.
func zeroServerSW(d *deployment) {
	d.hostSrv.PostWR = 0
	d.hostSrv.PollDetect = 0
	d.hostSrv.Dispatch = 0
	d.hostSrv.MemcpyBytesPerSec = 1e18
	d.hostSrv.JitterSigma = 0
	// The CPU store+clwb persist is receiver software work too (the
	// paper's "data persisting cost"); the NIC DMA path — including the
	// shared PersistBase — is hardware and stays untouched.
	d.pm.CPUBytesPerSec = 1e18
}

func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
