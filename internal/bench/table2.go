package bench

import (
	"fmt"
	"time"

	"prdma/internal/rpc"
)

// Table2 reproduces Table 2: a qualitative summary of the durable RPCs
// derived from the sensitivity measurements rather than hand-written — each
// cell is classified from the same runs that produce Figs. 9, 14, 15 and 17.
func (o Options) Table2() Table {
	kinds := []rpc.Kind{rpc.SRFlushRPC, rpc.SFlushRPC, rpc.WRFlushRPC, rpc.WFlushRPC, rpc.FaRM}
	labels := []string{"SRFlush", "SFlush", "WRFlush", "WFlush", "Other RPCs (FaRM)"}

	size := 4096
	type sens struct {
		netSlow, cpuSlow float64
		p99              time.Duration
		scaleGrowth      float64
	}
	// Five independent runs per kind; each (kind, variant) pair is one
	// runner cell.
	const variants = 5
	cells := mapCells(o.runner(), len(kinds)*variants, func(i int) microResult {
		kind := kinds[i/variants]
		switch i % variants {
		case 0: // idle
			return o.micro(kind, o.deploy(size), o.Ops, 0.5)
		case 1: // busy network
			return o.micro(kind, o.deploy(size, busyNetwork), o.Ops, 0.5)
		case 2: // busy receiver CPU
			return o.micro(kind, o.deploy(size, busyReceiver), o.Ops, 0.5)
		case 3: // few senders
			return o.micro(kind, o.deploy(size, withSenders(4), workers(4)), o.OpsPerSender*4, 0.5)
		default: // many senders
			return o.micro(kind, o.deploy(size, withSenders(16), workers(4)), o.OpsPerSender*16, 0.5)
		}
	})
	measured := make([]sens, len(kinds))
	for i := range kinds {
		idle := cells[i*variants]
		net := cells[i*variants+1]
		cpu := cells[i*variants+2]
		few := cells[i*variants+3]
		many := cells[i*variants+4]
		measured[i] = sens{
			netSlow:     ratio(net.Lat.Mean(), idle.Lat.Mean()),
			cpuSlow:     ratio(cpu.Lat.Mean(), idle.Lat.Mean()),
			p99:         idle.Lat.Percentile(99),
			scaleGrowth: ratio(many.Lat.Mean(), few.Lat.Mean()),
		}
	}

	classify := func(v float64, hi, lo float64) string {
		switch {
		case v >= hi:
			return "High"
		case v <= lo:
			return "Low"
		default:
			return "Medium"
		}
	}

	t := Table{
		Title:  "Table 2: summary of RPCs using different RDMA Flush primitives (derived from measurements)",
		Header: []string{"metric", labels[0], labels[1], labels[2], labels[3], labels[4]},
		Notes:  "paper: sender-initiated flushes load the network more; receiver CPU demand Medium (RFlush) / Low (Flush) / High (others); durable RPCs scale better",
	}
	rows := []struct {
		name string
		cell func(s sens) string
	}{
		{"network-load sensitivity", func(s sens) string { return classify(s.netSlow, 1.6, 1.25) + fmt.Sprintf(" (%.2fx)", s.netSlow) }},
		{"receiver CPU requirement", func(s sens) string { return classify(s.cpuSlow, 1.8, 1.3) + fmt.Sprintf(" (%.2fx)", s.cpuSlow) }},
		{"tail latency (P99 us)", func(s sens) string { return fmtUS(s.p99) }},
		{"scalability (4→16 senders)", func(s sens) string {
			return classify(2.0-s.scaleGrowth, 0.9, 0.4) + fmt.Sprintf(" (%.2fx)", s.scaleGrowth)
		}},
	}
	for _, r := range rows {
		row := []string{r.name}
		for i := range kinds {
			row = append(row, r.cell(measured[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	// The qualitative rows that come from design, not measurement.
	t.Rows = append(t.Rows,
		[]string{"data persistence", "proactive/decoupled", "proactive/decoupled", "proactive/decoupled", "proactive/decoupled", "passive"},
		[]string{"application scenarios", "msgs/KVs/objects/files", "msgs/KVs/objects/files", "msgs/KVs/objects/files", "msgs/KVs/objects/files", "small messages"},
	)
	return t
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
