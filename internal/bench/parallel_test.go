package bench

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// render flattens tables to the exact bytes prdmabench would print.
func render(tables []Table) string {
	var sb strings.Builder
	for i := range tables {
		tables[i].Fprint(&sb)
	}
	return sb.String()
}

// TestParallelDeterminismFig8 runs the Fig. 8 driver sequentially and on the
// parallel runner with the same seed: the rendered tables must be
// byte-identical, because every cell builds its own kernel and derives all
// randomness from the cell parameters.
func TestParallelDeterminismFig8(t *testing.T) {
	o := tiny()
	o.Ops = 200
	seq, par := o, o
	seq.Parallel = 1
	par.Parallel = -1 // one worker per CPU
	got, want := render(par.Fig8()), render(seq.Fig8())
	if got != want {
		t.Errorf("parallel Fig8 diverged from sequential run:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
}

// TestParallelDeterminismFig11 is the macro-benchmark counterpart: YCSB
// workloads A-F across all RPC kinds.
func TestParallelDeterminismFig11(t *testing.T) {
	o := tiny()
	o.Ops = 200
	seq, par := o, o
	seq.Parallel = 1
	par.Parallel = -1
	got, want := render([]Table{par.Fig11()}), render([]Table{seq.Fig11()})
	if got != want {
		t.Errorf("parallel Fig11 diverged from sequential run:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
}

// TestRunnerOrdering: results land in submission slots regardless of
// completion order, for pools smaller, equal to, and larger than the job
// count.
func TestRunnerOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 64} {
		r := NewRunner(workers)
		n := 37
		out := mapCells(r, n, func(i int) string { return fmt.Sprintf("cell-%d", i) })
		if len(out) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(out), n)
		}
		for i, v := range out {
			if v != fmt.Sprintf("cell-%d", i) {
				t.Fatalf("workers=%d: slot %d holds %q", workers, i, v)
			}
		}
	}
}

// TestRunnerPanicPropagates: a cell panic must drain the pool and re-raise
// on the caller, preserving the drivers' panic-on-model-bug contract.
func TestRunnerPanicPropagates(t *testing.T) {
	r := NewRunner(4)
	var ran atomic.Int32
	defer func() {
		if p := recover(); p == nil {
			t.Error("cell panic was swallowed")
		} else if s, ok := p.(string); !ok || s != "cell 5 exploded" {
			t.Errorf("unexpected panic payload: %v", p)
		}
		if got := ran.Load(); got != 16 {
			t.Errorf("pool did not drain: %d/16 cells ran", got)
		}
	}()
	r.Do(16, func(i int) {
		ran.Add(1)
		if i == 5 {
			panic("cell 5 exploded")
		}
	})
}
