package bench

import (
	"fmt"
	"time"

	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// fig8Sizes are the paper's three object classes (§5.1): message-passing,
// KV stores, file systems.
var fig8Sizes = []int{32, 1024, 65536}

// Fig8 reproduces Fig. 8: micro-benchmark throughput (KOPS) of every RPC
// under heavy (100 µs processing) and light load, 1:1 read/write, zipfian.
func (o Options) Fig8() []Table {
	r := o.runner()
	var out []Table
	for _, heavy := range []bool{true, false} {
		title := "Fig 8(b): throughput, light load (KOPS)"
		var tweaks []tweak
		notes := "expect: durable RPCs 20-90% over same-primitive baselines at 64KB; moderate gains for small objects"
		if heavy {
			title = "Fig 8(a): throughput, heavy load (KOPS)"
			tweaks = append(tweaks, heavyLoad)
			notes = "expect: durable RPCs best everywhere; +58-85% (write kinds), +43-69% (send kinds)"
		}
		cells := mapCells(r, len(rpc.Kinds)*len(fig8Sizes), func(i int) string {
			kind := rpc.Kinds[i/len(fig8Sizes)]
			size := fig8Sizes[i%len(fig8Sizes)]
			if skip(kind, size) {
				return "-"
			}
			m := o.micro(kind, o.deploy(size, tweaks...), o.Ops, 0.5)
			return fmt.Sprintf("%.1f", m.KOPS())
		})
		t := Table{Title: title, Header: []string{"rpc", "32B", "1KB", "64KB"}, Notes: notes}
		for ki, kind := range rpc.Kinds {
			row := append([]string{kind.String()}, cells[ki*len(fig8Sizes):(ki+1)*len(fig8Sizes)]...)
			t.Rows = append(t.Rows, row)
		}
		out = append(out, t)
	}
	return out
}

// Fig9 reproduces Fig. 9: 95th/99th percentile and average latency for 1 KB
// and 64 KB objects.
func (o Options) Fig9() []Table {
	r := o.runner()
	var out []Table
	for _, size := range []int{1024, 65536} {
		cells := mapCells(r, len(rpc.Kinds), func(i int) *microResult {
			kind := rpc.Kinds[i]
			if skip(kind, size) {
				return nil
			}
			m := o.micro(kind, o.deploy(size), o.Ops, 0.5)
			return &m
		})
		t := Table{
			Title:  fmt.Sprintf("Fig 9: latency, %s objects (us)", sizeLabel(size)),
			Header: []string{"rpc", "95th", "99th", "avg"},
			Notes:  "expect: W-RFlush/WFlush cut P99 ~49% (1KB) / ~24% (64KB) vs write-based RPCs; ~10% vs DaRPC for send-based",
		}
		for i, kind := range rpc.Kinds {
			m := cells[i]
			if m == nil {
				continue
			}
			t.Rows = append(t.Rows, []string{
				kind.String(),
				fmtUS(m.Lat.Percentile(95)),
				fmtUS(m.Lat.Percentile(99)),
				fmtUS(m.Lat.Mean()),
			})
		}
		out = append(out, t)
	}
	return out
}

// Fig13 reproduces Fig. 13: average latency across object sizes.
func (o Options) Fig13() Table {
	sizes := []int{64, 256, 1024, 4096, 16384}
	t := Table{
		Title:  "Fig 13: avg latency vs object size (us)",
		Header: []string{"rpc", "64B", "256B", "1KB", "4KB", "16KB"},
		Notes:  "expect: flat to 4KB, then steep growth; send-based RPCs most size-sensitive",
	}
	cells := mapCells(o.runner(), len(rpc.Kinds)*len(sizes), func(i int) string {
		kind := rpc.Kinds[i/len(sizes)]
		size := sizes[i%len(sizes)]
		if skip(kind, size) {
			return "-"
		}
		m := o.micro(kind, o.deploy(size), o.Ops, 0.5)
		return fmtUS(m.Lat.Mean())
	})
	for ki, kind := range rpc.Kinds {
		row := append([]string{kind.String()}, cells[ki*len(sizes):(ki+1)*len(sizes)]...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig14 reproduces Fig. 14: average latency under idle vs busy network.
func (o Options) Fig14() Table {
	return o.loadFigure(
		"Fig 14: avg latency vs RDMA network load (us)",
		"expect: receiver-initiated RFlush RPCs degrade least (fewer wire primitives); write RPCs more sensitive than send RPCs",
		busyNetwork,
	)
}

// Fig15 reproduces Fig. 15: average latency under idle vs busy receiver CPU.
func (o Options) Fig15() Table {
	return o.loadFigure(
		"Fig 15: avg latency vs receiver CPU load (us)",
		"expect: all RPCs degrade; one-sided RPCs suffer the largest relative slowdown",
		busyReceiver,
	)
}

// Fig16 reproduces Fig. 16: average latency under idle vs busy sender CPU.
func (o Options) Fig16() Table {
	return o.loadFigure(
		"Fig 16: avg latency vs sender CPU load (us)",
		"expect: every RPC degrades significantly — sender CPU is on every critical path",
		busySender,
	)
}

// loadFigure runs the idle/busy comparison shared by Figs. 14-16. Each
// (kind, load) pair is one runner cell.
func (o Options) loadFigure(title, notes string, busy tweak) Table {
	t := Table{Title: title, Header: []string{"rpc", "idle", "busy", "slowdown"}, Notes: notes}
	size := 4096
	cells := mapCells(o.runner(), len(rpc.Kinds)*2, func(i int) *microResult {
		kind := rpc.Kinds[i/2]
		if skip(kind, size) {
			return nil
		}
		var m microResult
		if i%2 == 0 {
			m = o.micro(kind, o.deploy(size), o.Ops, 0.5)
		} else {
			m = o.micro(kind, o.deploy(size, busy), o.Ops, 0.5)
		}
		return &m
	})
	for ki, kind := range rpc.Kinds {
		idle, loaded := cells[ki*2], cells[ki*2+1]
		if idle == nil {
			continue
		}
		t.Rows = append(t.Rows, []string{
			kind.String(),
			fmtUS(idle.Lat.Mean()),
			fmtUS(loaded.Lat.Mean()),
			fmt.Sprintf("%.2fx", float64(loaded.Lat.Mean())/float64(idle.Lat.Mean())),
		})
	}
	return t
}

// Fig17 reproduces Fig. 17: average latency with 10..50 concurrent senders.
func (o Options) Fig17() Table {
	counts := []int{10, 20, 30, 40, 50}
	t := Table{
		Title:  "Fig 17: avg latency vs concurrent senders (us)",
		Header: []string{"rpc", "10", "20", "30", "40", "50"},
		Notes:  "expect: traditional RPC latency grows with senders; durable RPCs stay near-flat (less remote CPU on the persist path)",
	}
	size := 1024
	cells := mapCells(o.runner(), len(rpc.Kinds)*len(counts), func(i int) string {
		kind := rpc.Kinds[i/len(counts)]
		if skip(kind, size) {
			return ""
		}
		n := counts[i%len(counts)]
		d := o.deploy(size, withSenders(n), workers(4))
		m := o.micro(kind, d, o.OpsPerSender*n, 0.5)
		return fmtUS(m.Lat.Mean())
	})
	for ki, kind := range rpc.Kinds {
		if skip(kind, size) {
			continue
		}
		row := append([]string{kind.String()}, cells[ki*len(counts):(ki+1)*len(counts)]...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig18 reproduces Fig. 18: average latency across read/write mixes.
func (o Options) Fig18() Table {
	mixes := []struct {
		label string
		frac  float64
	}{{"5%read+95%write", 0.05}, {"50%read+50%write", 0.5}, {"95%read+5%write", 0.95}}
	t := Table{
		Title:  "Fig 18: avg latency vs access pattern (us)",
		Header: []string{"rpc", mixes[0].label, mixes[1].label, mixes[2].label},
		Notes:  "expect: durable RPCs shine on write-heavy mixes (persist-ack early return); parity on read-heavy",
	}
	size := 4096
	cells := mapCells(o.runner(), len(rpc.Kinds)*len(mixes), func(i int) string {
		kind := rpc.Kinds[i/len(mixes)]
		if skip(kind, size) {
			return ""
		}
		m := o.micro(kind, o.deploy(size), o.Ops, mixes[i%len(mixes)].frac)
		return fmtUS(m.Lat.Mean())
	})
	for ki, kind := range rpc.Kinds {
		if skip(kind, size) {
			continue
		}
		row := append([]string{kind.String()}, cells[ki*len(mixes):(ki+1)*len(mixes)]...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig19 reproduces Fig. 19: total execution time vs batch size for the
// batching-capable systems.
func (o Options) Fig19() Table {
	batches := []int{1, 4, 8}
	kinds := []rpc.Kind{rpc.DaRPC, rpc.ScaleRPC, rpc.SRFlushRPC, rpc.SFlushRPC, rpc.WRFlushRPC, rpc.WFlushRPC}
	t := Table{
		Title:  "Fig 19: total time vs batch size (ms)",
		Header: []string{"rpc", "batch=1", "batch=4", "batch=8"},
		Notes:  "expect: batching helps write-based durable RPCs most; DaRPC gains little (send cost is size-sensitive)",
	}
	size := 1024
	cells := mapCells(o.runner(), len(kinds)*len(batches), func(i int) string {
		elapsed := o.batchRun(kinds[i/len(batches)], size, batches[i%len(batches)])
		return fmt.Sprintf("%.2f", elapsed.Seconds()*1e3)
	})
	for ki, kind := range kinds {
		row := append([]string{kind.String()}, cells[ki*len(batches):(ki+1)*len(batches)]...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// batchRun executes o.Ops writes grouped into batches of bs.
func (o Options) batchRun(kind rpc.Kind, size, bs int) time.Duration {
	d := o.deploy(size)
	c := d.build()
	client := rpc.New(kind, c.cli[0], c.engine, d.cfg)
	bc, _ := client.(rpc.BatchClient)
	var elapsed time.Duration
	c.k.Go("driver", func(p *sim.Proc) {
		start := p.Now()
		issued := 0
		for issued < o.Ops {
			if bs <= 1 || bc == nil {
				if _, err := client.Call(p, &rpc.Request{Op: rpc.OpWrite, Key: uint64(issued % d.objects), Size: size}); err != nil {
					panic(err)
				}
				issued++
				continue
			}
			reqs := make([]*rpc.Request, bs)
			for i := range reqs {
				reqs[i] = &rpc.Request{Op: rpc.OpWrite, Key: uint64((issued + i) % d.objects), Size: size}
			}
			if _, err := bc.CallBatch(p, reqs); err != nil {
				panic(err)
			}
			issued += bs
		}
		elapsed = p.Now().Sub(start)
	})
	c.k.Run()
	return elapsed
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
