package bench

import "sync/atomic"

// simOps counts simulated RPC operations completed by micro-benchmark-style
// cells. cmd/prdmabench samples it around each figure to report wall-clock
// nanoseconds per simulated operation (-json). Figures whose drivers do not
// run a counted op stream (PageRank, recovery sweeps, …) contribute zero;
// the harness reports only wall time for those.
var simOps int64

// AddSimOps records n completed simulated operations. Cells run on a worker
// pool, hence the atomic.
func AddSimOps(n int64) { atomic.AddInt64(&simOps, n) }

// SimOps returns the simulated operations completed so far.
func SimOps() int64 { return atomic.LoadInt64(&simOps) }
