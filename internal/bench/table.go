package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result shaped like the paper's plot.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries the paper-expectation reminder printed under the data.
	Notes string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "-- %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

// Cell looks a value up by row label and column name (tests use this).
func (t *Table) Cell(rowLabel, col string) (string, bool) {
	ci := -1
	for i, h := range t.Header {
		if h == col {
			ci = i
		}
	}
	if ci < 0 {
		return "", false
	}
	for _, r := range t.Rows {
		if len(r) > ci && r[0] == rowLabel {
			return r[ci], true
		}
	}
	return "", false
}

// CSV renders the table as RFC-4180-ish CSV (quotes only where needed),
// for plotting pipelines.
func (t *Table) CSV(w io.Writer) error {
	row := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := row(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}
