package bench

import (
	"fmt"
	"time"

	"prdma/internal/graph"
	"prdma/internal/kv"
	"prdma/internal/rpc"
	"prdma/internal/sim"
	"prdma/internal/ycsb"
)

// Fig10 reproduces Fig. 10: PageRank execution time over the paper's three
// graph datasets, with graph data fetched from remote PM via each RPC.
func (o Options) Fig10() Table {
	scale := o.GraphScale
	if scale < 1 {
		scale = 1
	}
	t := Table{
		Title:  fmt.Sprintf("Fig 10: PageRank time (s), datasets scaled 1/%d, %d iterations", scale, o.PageRankIters),
		Header: []string{"rpc", "wordassociation-2011", "enron", "dblp-2010"},
		Notes:  "expect: SFlush/S-RFlush -8..-30% vs DaRPC; WFlush/W-RFlush -8..-38% vs write-based RPCs",
	}
	graphs := make([]*graph.Graph, len(graph.Datasets))
	for i, ds := range graph.Datasets {
		scaled := graph.Dataset{Name: ds.Name, Nodes: ds.Nodes / scale, Edges: ds.Edges / scale}
		graphs[i] = graph.Generate(scaled, o.Seed)
	}
	var kinds []rpc.Kind
	for _, kind := range rpc.Kinds {
		if kind == rpc.FaSST {
			continue // adjacency chunks exceed the UD MTU on big vertices
		}
		kinds = append(kinds, kind)
	}
	// The generated graphs are shared across cells but only read: each cell
	// builds its own PageRank state over its own deployment.
	cells := mapCells(o.runner(), len(kinds)*len(graphs), func(i int) string {
		return fmt.Sprintf("%.3f", o.pageRankTime(kinds[i/len(graphs)], graphs[i%len(graphs)]))
	})
	for ki, kind := range kinds {
		row := append([]string{kind.String()}, cells[ki*len(graphs):(ki+1)*len(graphs)]...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// pageRankTime runs PageRank once and returns virtual seconds.
func (o Options) pageRankTime(kind rpc.Kind, g *graph.Graph) float64 {
	d := o.deploy(4096)
	d.objects = 16 // adjacency objects allocate lazily per vertex key
	c := d.build()
	client := rpc.New(kind, c.cli[0], c.engine, d.cfg)
	pr := &graph.PageRank{G: g, Client: client, Iterations: o.PageRankIters}
	var elapsed sim.Time
	c.k.Go("pagerank", func(p *sim.Proc) {
		if err := pr.Run(p, c.cli[0]); err != nil {
			panic(err)
		}
		elapsed = p.Now()
	})
	c.k.Run()
	return elapsed.Duration().Seconds()
}

// Fig11 reproduces Fig. 11: average RPC latency across YCSB workloads A–F
// (8-byte keys, 4 KB values).
func (o Options) Fig11() Table {
	t := Table{
		Title:  "Fig 11: YCSB avg latency (us)",
		Header: []string{"rpc", "A", "B", "C", "D", "E", "F"},
		Notes:  "expect: durable RPCs up to -50% on write-heavy A/E(inserts)/F; parity on read-heavy B/C/D",
	}
	var kinds []rpc.Kind
	for _, kind := range rpc.Kinds {
		if skip(kind, 4096) {
			continue
		}
		kinds = append(kinds, kind)
	}
	cells := mapCells(o.runner(), len(kinds)*len(ycsb.Workloads), func(i int) string {
		return fmtUS(o.ycsbLatency(kinds[i/len(ycsb.Workloads)], ycsb.Workloads[i%len(ycsb.Workloads)]))
	})
	for ki, kind := range kinds {
		row := append([]string{kind.String()}, cells[ki*len(ycsb.Workloads):(ki+1)*len(ycsb.Workloads)]...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ycsbLatency runs one workload and returns the mean RPC latency in seconds.
func (o Options) ycsbLatency(kind rpc.Kind, w ycsb.Workload) (mean time.Duration) {
	d := o.deploy(4096)
	c := d.build()
	client := rpc.New(kind, c.cli[0], c.engine, d.cfg)
	store := kv.Open(client, c.cli[0], d.objects, 4096)
	cfg := ycsb.DefaultConfig()
	cfg.Records = d.objects
	cfg.ValueSize = 4096
	cfg.Seed = o.Seed
	gen := ycsb.NewGenerator(w, cfg)
	c.k.Go("ycsb", func(p *sim.Proc) {
		res, err := store.Run(p, gen.Next, o.Ops)
		if err != nil {
			panic(err)
		}
		mean = res.Latency.Mean()
	})
	c.k.Run()
	return mean
}
