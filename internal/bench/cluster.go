package bench

import (
	"fmt"
	"time"

	kv "prdma/internal/cluster"
	"prdma/internal/sim"
	"prdma/internal/stats"
)

// ClusterFigures drives the sharded, replicated durable-KV cluster
// (internal/cluster) under zipfian load, crashes shard 0's primary once a
// fifth of the traffic has completed, and reports the client-visible
// impact — latency and throughput before, during, and after failover —
// alongside the per-shard balance and the failover controller's internal
// work. Zero acknowledged-write loss is asserted byte-for-byte against
// every live replica after the run.
func (o Options) ClusterFigures(shards, replicas int) []Table {
	f := o.clusterFigRun(shards, replicas)
	return []Table{f.phaseTable(), f.shardTable(), f.controlTable()}
}

// clusterFig is one completed cluster run plus its phase boundaries.
type clusterFig struct {
	p            kv.Params
	c            *kv.Cluster
	ct           *kv.Controller
	res          *kv.LoadResult
	ops, clients int
	victim       int
	crashAt      sim.Time
	resyncDoneAt sim.Time
	healthy      bool
	consistency  error
}

func (o Options) clusterFigRun(shards, replicas int) *clusterFig {
	k := sim.New()
	p := kv.DefaultParams()
	p.Shards, p.Replicas = shards, replicas
	p.PoolSize = 8
	p.Objects = o.Objects
	p.Seed = o.Seed
	// Shorten the outage window relative to the run so the post-failover
	// phase collects enough samples even at Quick scale.
	p.Restart = 500 * time.Microsecond
	p.Grace = 300 * time.Microsecond
	// The run must comfortably outlast the outage (restart + resync) or the
	// post-failover phase starves: 3x the figure-wide op count, crash at 20%.
	f := &clusterFig{p: p, ops: 3 * o.Ops, clients: o.Ops / 5}
	if f.clients < 8 {
		f.clients = 8
	}
	if f.clients > 20000 {
		f.clients = 20000
	}
	c, err := kv.New(k, p)
	if err != nil {
		panic(err)
	}
	f.c = c
	f.ct = c.StartController()

	// Crash script: once 20% of operations have completed, kill shard 0's
	// primary. Triggering on the op count (not wall time) keeps the crash
	// placement meaningful at every scale, and is just as deterministic.
	k.Go("crash-script", func(sp *sim.Proc) {
		target := int64(f.ops / 5)
		for {
			var total int64
			for _, sh := range c.Shards {
				total += sh.Puts + sh.Gets
			}
			if total >= target {
				break
			}
			sp.Sleep(20 * time.Microsecond)
		}
		f.victim = c.Shards[0].Primary
		f.crashAt = sp.Now()
		c.CrashReplica(0, f.victim)
	})

	k.Go("cluster-bench", func(mp *sim.Proc) {
		res, err := c.RunLoad(mp, kv.Load{
			Clients:  f.clients,
			Ops:      f.ops,
			ReadFrac: 0.5,
			Verify:   true,
			Seed:     o.Seed,
		})
		if err != nil {
			panic(err)
		}
		f.res = res
		f.healthy = c.AwaitHealthy(mp, 200*time.Millisecond)
		mp.Sleep(2 * time.Millisecond) // engines apply their tails
		f.ct.Stop()
	})
	k.Run()
	f.resyncDoneAt = f.ct.LastEvent("resync-done")
	f.consistency = c.CheckConsistency()
	k.Shutdown() // tables below read counters and samples only; reap the parked procs
	AddSimOps(int64(f.ops))
	return f
}

func (f *clusterFig) phaseTable() Table {
	t := Table{
		Title: fmt.Sprintf("Cluster failover: %d shards x %d replicas, %d clients zipfian(0.99), crash primary s0r%d at 20%% of %d ops",
			f.p.Shards, f.p.Replicas, f.clients, f.victim, f.ops),
		Header: []string{"phase", "ops", "p50 (us)", "p99 (us)", "KOPS"},
		Notes:  "failover = crash..resync-done: shard-0 ops ride retry loops until the survivors serve the quorum, the other shards are untouched; post returns to baseline with the victim readmitted",
	}
	// Every sample falls in exactly one phase: [Start, crash), [crash,
	// resync-done), [resync-done, End]. When the load drains before the
	// victim is readmitted, the post phase is empty and the failover phase
	// runs to the end of the load.
	end := f.res.End
	resyncEnd := f.resyncDoneAt
	if resyncEnd == 0 || resyncEnd > end {
		resyncEnd = end
	}
	phases := []struct {
		name     string
		from, to sim.Time
	}{
		{"pre-failover", f.res.Start, f.crashAt},
		{"failover", f.crashAt, resyncEnd},
		{"post-failover", resyncEnd, end},
	}
	lats := make([]*stats.Latency, len(phases))
	for i := range lats {
		lats[i] = stats.NewLatency(len(f.res.Samples))
	}
	for _, s := range f.res.Samples {
		switch {
		case s.At < f.crashAt:
			lats[0].Add(s.Dur)
		case s.At < resyncEnd:
			lats[1].Add(s.Dur)
		default:
			lats[2].Add(s.Dur)
		}
	}
	for i, ph := range phases {
		lat := lats[i]
		row := []string{ph.name, fmt.Sprintf("%d", lat.Count()), "-", "-", "-"}
		if lat.Count() > 0 {
			row[2] = fmtUS(lat.Percentile(50))
			row[3] = fmtUS(lat.Percentile(99))
			row[4] = fmt.Sprintf("%.1f", stats.Throughput{Ops: lat.Count(), Elapsed: ph.to.Sub(ph.from)}.KOPS())
		}
		t.Rows = append(t.Rows, row)
	}
	total := stats.NewLatency(len(f.res.Samples))
	for _, s := range f.res.Samples {
		total.Add(s.Dur)
	}
	t.Rows = append(t.Rows, []string{
		"whole run",
		fmt.Sprintf("%d", total.Count()),
		fmtUS(total.Percentile(50)),
		fmtUS(total.Percentile(99)),
		fmt.Sprintf("%.1f", stats.Throughput{Ops: total.Count(), Elapsed: f.res.End.Sub(f.res.Start)}.KOPS()),
	})
	return t
}

func (f *clusterFig) shardTable() Table {
	t := Table{
		Title:  "Cluster per-shard load and latency",
		Header: []string{"shard", "puts", "gets", "retries", "p50 (us)", "p99 (us)"},
		Notes:  "the consistent-hash ring spreads the zipfian keyspace; only the crashed shard accumulates retries",
	}
	for i, sh := range f.c.Shards {
		lat := stats.NewLatency(len(f.res.Samples) / len(f.c.Shards))
		for _, s := range f.res.Samples {
			if s.Shard == i {
				lat.Add(s.Dur)
			}
		}
		p50, p99 := "-", "-"
		if lat.Count() > 0 {
			p50, p99 = fmtUS(lat.Percentile(50)), fmtUS(lat.Percentile(99))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", sh.Puts),
			fmt.Sprintf("%d", sh.Gets),
			fmt.Sprintf("%d", sh.Retries),
			p50, p99,
		})
	}
	return t
}

func (f *clusterFig) controlTable() Table {
	var failovers, promotions, resyncs, replayed, shipped int64
	var detect, resyncWall time.Duration
	for _, sh := range f.c.Shards {
		failovers += sh.Failovers
		promotions += sh.Promotions
		resyncs += sh.Resyncs
		replayed += sh.Replayed
		shipped += sh.Shipped
		detect += sh.DetectLag
		resyncWall += sh.ResyncTime
	}
	meanDetect := time.Duration(0)
	if failovers > 0 {
		meanDetect = detect / time.Duration(failovers)
	}
	lost := "0 (every acked write byte-identical on all live replicas)"
	if f.consistency != nil {
		lost = "LOST: " + f.consistency.Error()
	}
	health := "readmitted, full health"
	if !f.healthy {
		health = "NOT healthy at horizon"
	}
	t := Table{
		Title:  "Cluster failover controller internals",
		Header: []string{"metric", "value"},
		Notes:  "detect lag is crash→MarkDown; resync ships the deduplicated acked-write log, then readmits behind the pool barrier so no in-flight write is missed",
	}
	t.Rows = [][]string{
		{"crash at (us into run)", fmtUS(f.crashAt.Sub(f.res.Start))},
		{"failovers detected", fmt.Sprintf("%d", failovers)},
		{"mean detect lag (us)", fmtUS(meanDetect)},
		{"promotions", fmt.Sprintf("%d", promotions)},
		{"resyncs completed", fmt.Sprintf("%d", resyncs)},
		{"resync wall (us)", fmtUS(resyncWall)},
		{"log entries replayed", fmt.Sprintf("%d", replayed)},
		{"images shipped", fmt.Sprintf("%d", shipped)},
		{"pm-full backpressure stalls", fmt.Sprintf("%d", f.c.PMFull())},
		{"op errors", fmt.Sprintf("%d", f.res.Errors)},
		{"bad reads", fmt.Sprintf("%d", f.res.BadReads)},
		{"acked writes lost", lost},
		{"victim status", health},
	}
	return t
}
