package bench

import (
	"fmt"
	"runtime"
	"time"

	kv "prdma/internal/cluster"
)

// This file is the PR 7 parallel-kernel scaling driver: it runs the
// partitioned KV cluster at a ladder of worker counts, checks that every
// rung produces the identical simulation (the engine's determinism
// contract), and reports wall time, events/second and speedup versus one
// worker. Worker threads are pure execution resources — the partitioning is
// fixed by the topology — so any fingerprint divergence is a bug, not a
// tuning artifact.

// ScalePoint is one rung of the worker ladder.
type ScalePoint struct {
	Workers      int     `json:"workers"`
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	Crossed      uint64  `json:"crossed"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup"`
	Fingerprint  string  `json:"fingerprint"`
	// Coordination counters (deterministic at any worker count): total
	// conservative windows, windows fused into solo stretches, idle kernel
	// dispatches skipped, windows that entered the worker barrier, and the
	// cross-transfer slab hit rate (percent of crossings served from a
	// pooled envelope).
	Windows      uint64  `json:"windows"`
	FusedWindows uint64  `json:"fused_windows"`
	IdleSkips    uint64  `json:"idle_skips"`
	Barriers     uint64  `json:"barriers"`
	SlabHitPct   float64 `json:"slab_hit_pct"`
}

// ScaleResult is the scaling figure plus its determinism verdict.
type ScaleResult struct {
	Shards        int          `json:"shards"`
	Replicas      int          `json:"replicas"`
	Gateways      int          `json:"gateways"`
	Partitions    int          `json:"partitions"`
	Clients       int          `json:"clients"`
	Ops           int          `json:"ops"`
	MaxProcs      int          `json:"maxprocs"`
	Points        []ScalePoint `json:"points"`
	Deterministic bool         `json:"deterministic"`
}

// scaleParams is the fixed 8-shard topology of the scaling figure.
func scaleParams(o Options) kv.Params {
	p := kv.DefaultParams()
	p.Shards = 8
	p.Replicas = 2
	p.Gateways = 4
	p.PoolSize = 4
	p.Objects = o.Objects
	p.ObjSize = 64
	p.Seed = o.Seed
	return p
}

// ParallelScale runs the scaling ladder. Every rung replays the same
// workload on a fresh deployment; only the worker count changes.
func (o Options) ParallelScale(workerCounts []int) (*ScaleResult, error) {
	p := scaleParams(o)
	load := kv.Load{Clients: 16, Ops: o.Ops, ReadFrac: 0.5, Verify: true, Seed: o.Seed}
	res := &ScaleResult{
		Shards: p.Shards, Replicas: p.Replicas, Gateways: p.Gateways,
		Partitions: p.Gateways + p.Shards,
		Clients:    load.Clients, Ops: load.Ops,
		MaxProcs:      runtime.GOMAXPROCS(0),
		Deterministic: true,
	}
	for _, w := range workerCounts {
		c, err := kv.NewPartitioned(w, p)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		lr, err := c.RunLoad(load)
		wall := time.Since(start)
		if err != nil {
			c.Eng.Shutdown()
			return nil, err
		}
		if lr.Errors != 0 || lr.BadReads != 0 {
			c.Eng.Shutdown()
			return nil, fmt.Errorf("bench: scale workers=%d: errors=%d badReads=%d", w, lr.Errors, lr.BadReads)
		}
		cerr := c.CheckConsistency()
		windows, fusedW, idleSkips, barriers, slabHits, slabMisses := c.CoordStats()
		// Reap the rung's deployment before the next one: each parked-proc
		// set otherwise survives the ladder (~100 MB per deployment).
		c.Eng.Shutdown()
		if cerr != nil {
			return nil, fmt.Errorf("bench: scale workers=%d: %w", w, cerr)
		}
		pt := ScalePoint{
			Workers:      w,
			WallMS:       float64(wall.Microseconds()) / 1e3,
			Events:       c.Eng.Fired(),
			Crossed:      c.Eng.Crossed(),
			Fingerprint:  fmt.Sprintf("%016x", lr.Fingerprint()),
			Windows:      windows,
			FusedWindows: fusedW,
			IdleSkips:    idleSkips,
			Barriers:     barriers,
		}
		if total := slabHits + slabMisses; total > 0 {
			pt.SlabHitPct = 100 * float64(slabHits) / float64(total)
		}
		if wall > 0 {
			pt.EventsPerSec = float64(pt.Events) / wall.Seconds()
		}
		if len(res.Points) > 0 {
			base := res.Points[0]
			if pt.WallMS > 0 {
				pt.Speedup = base.WallMS / pt.WallMS
			}
			if pt.Fingerprint != base.Fingerprint || pt.Events != base.Events ||
				pt.Windows != base.Windows || pt.FusedWindows != base.FusedWindows ||
				pt.IdleSkips != base.IdleSkips || pt.Barriers != base.Barriers {
				res.Deterministic = false
			}
		} else {
			pt.Speedup = 1
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Table renders the scaling figure.
func (r *ScaleResult) Table() Table {
	t := Table{
		Title: fmt.Sprintf("parallel kernel scaling (%d shards x %d replicas, %d gateways, %d partitions, GOMAXPROCS=%d)",
			r.Shards, r.Replicas, r.Gateways, r.Partitions, r.MaxProcs),
		Header: []string{"workers", "wall_ms", "events", "crossed", "events/sec", "speedup", "windows", "fused", "skips", "barriers", "slab%", "fingerprint"},
		Notes: "identical fingerprints across workers = the determinism contract holds; " +
			"speedup needs real cores (GOMAXPROCS>1) to materialize; " +
			"fused/skips/barriers/slab are worker-count-invariant coordination counters",
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Workers),
			fmt.Sprintf("%.2f", p.WallMS),
			fmt.Sprintf("%d", p.Events),
			fmt.Sprintf("%d", p.Crossed),
			fmt.Sprintf("%.0f", p.EventsPerSec),
			fmt.Sprintf("%.2fx", p.Speedup),
			fmt.Sprintf("%d", p.Windows),
			fmt.Sprintf("%d", p.FusedWindows),
			fmt.Sprintf("%d", p.IdleSkips),
			fmt.Sprintf("%d", p.Barriers),
			fmt.Sprintf("%.1f", p.SlabHitPct),
			p.Fingerprint,
		})
	}
	return t
}

// SmokeResult is the large-population open-loop smoke run.
type SmokeResult struct {
	Workers         int     `json:"workers"`
	LogicalClients  int     `json:"logical_clients"`
	DistinctClients int     `json:"distinct_clients"`
	Ops             int     `json:"ops"`
	Completed       int     `json:"completed"`
	Errors          int     `json:"errors"`
	QueueHWM        int     `json:"queue_hwm"`
	SimMS           float64 `json:"sim_ms"`
	WallMS          float64 `json:"wall_ms"`
	ThroughputOps   float64 `json:"throughput_ops_per_sec"`
	HeapMB          float64 `json:"heap_mb"`
	Fingerprint     string  `json:"fingerprint"`
	OK              bool    `json:"ok"`
}

// MillionClientSmoke drives the partitioned cluster open-loop with a
// million-client logical population over a reduced horizon (o.Ops arrivals)
// and asserts the stats invariants: every arrival completes, no errors, the
// arrival queues stay bounded by the horizon, and memory stays flat because
// the population is modelled by attribution, not by a million procs.
func (o Options) MillionClientSmoke(workers, logicalClients int) (*SmokeResult, error) {
	if logicalClients <= 0 {
		logicalClients = 1_000_000
	}
	p := scaleParams(o)
	load := kv.Load{
		Clients: 64, Ops: o.Ops, ReadFrac: 0.5,
		OpenLoop: true, Rate: 2e6, LogicalClients: logicalClients,
		Seed: o.Seed,
	}
	c, err := kv.NewPartitioned(workers, p)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	lr, err := c.RunLoad(load)
	wall := time.Since(start)
	if err != nil {
		c.Eng.Shutdown()
		return nil, err
	}
	cerr := c.CheckConsistency()
	// Reap the deployment first: the heap figure must report what a finished
	// deployment retains, which is nothing once its parked procs are gone.
	c.Eng.Shutdown()
	var ms runtime.MemStats
	runtime.GC() // report retained heap, not accumulated garbage
	runtime.ReadMemStats(&ms)
	res := &SmokeResult{
		Workers:         workers,
		LogicalClients:  logicalClients,
		DistinctClients: lr.DistinctClients,
		Ops:             load.Ops,
		Completed:       len(lr.Samples),
		Errors:          lr.Errors,
		QueueHWM:        lr.QueueHWM,
		SimMS:           lr.End.Duration().Seconds() * 1e3,
		WallMS:          float64(wall.Microseconds()) / 1e3,
		ThroughputOps:   lr.Throughput(),
		HeapMB:          float64(ms.HeapAlloc) / (1 << 20),
		Fingerprint:     fmt.Sprintf("%016x", lr.Fingerprint()),
	}
	res.OK = res.Completed == load.Ops && res.Errors == 0 &&
		res.QueueHWM > 0 && res.QueueHWM <= load.Ops &&
		res.DistinctClients > 0
	if cerr != nil {
		return res, fmt.Errorf("bench: smoke consistency: %w", cerr)
	}
	return res, nil
}

// Table renders the smoke result.
func (r *SmokeResult) Table() Table {
	status := "FAIL"
	if r.OK {
		status = "ok"
	}
	return Table{
		Title:  fmt.Sprintf("open-loop population smoke (%d logical clients, workers=%d)", r.LogicalClients, r.Workers),
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"arrivals completed", fmt.Sprintf("%d/%d", r.Completed, r.Ops)},
			{"distinct logical clients", fmt.Sprintf("%d", r.DistinctClients)},
			{"errors", fmt.Sprintf("%d", r.Errors)},
			{"arrival-queue high water", fmt.Sprintf("%d", r.QueueHWM)},
			{"simulated time", fmt.Sprintf("%.3f ms", r.SimMS)},
			{"wall time", fmt.Sprintf("%.1f ms", r.WallMS)},
			{"throughput", fmt.Sprintf("%.0f ops/s", r.ThroughputOps)},
			{"heap", fmt.Sprintf("%.1f MB", r.HeapMB)},
			{"invariants", status},
		},
		Notes: "population is modelled by arrival attribution (Poisson superposition); " +
			"memory scales with workers and keyspace, not population",
	}
}
