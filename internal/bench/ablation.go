package bench

import (
	"fmt"

	"prdma/internal/rpc"
)

// AblationNativeFlush compares the paper's read-after-write flush emulation
// against the proposed native primitives (DESIGN.md §6): the native WFlush
// saves the extra read's wire round and WQE costs.
func (o Options) AblationNativeFlush() Table {
	t := Table{
		Title:  "Ablation: emulated (read-after-write) vs native Flush primitives, avg latency (us)",
		Header: []string{"rpc", "emulated", "native", "native gain"},
		Notes:  "the paper measures the emulation; native WFlush saves the read round; native SFlush serializes its address lookup at the NIC (two DMAs, Fig. 5), so it roughly matches the emulation",
	}
	kinds := []rpc.Kind{rpc.WFlushRPC, rpc.SFlushRPC}
	sizes := []int{1024, 65536}
	// Cell layout: (kind, size, emulated|native), flattened.
	cells := mapCells(o.runner(), len(kinds)*len(sizes)*2, func(i int) microResult {
		kind := kinds[i/(len(sizes)*2)]
		size := sizes[i/2%len(sizes)]
		if i%2 == 0 {
			return o.micro(kind, o.deploy(size), o.Ops, 0.0)
		}
		return o.micro(kind, o.deploy(size, nativeFlush), o.Ops, 0.0)
	})
	for ki, kind := range kinds {
		for si, size := range sizes {
			em := cells[(ki*len(sizes)+si)*2]
			nat := cells[(ki*len(sizes)+si)*2+1]
			gain := 1 - float64(nat.Lat.Mean())/float64(em.Lat.Mean())
			t.Rows = append(t.Rows, []string{
				kind.String() + "/" + sizeLabel(size),
				fmtUS(em.Lat.Mean()), fmtUS(nat.Lat.Mean()),
				fmt.Sprintf("%.1f%%", gain*100),
			})
		}
	}
	return t
}

// AblationDDIO compares remote-persistence cost with DDIO off (the paper's
// default, §5.1) and on (the §4.4.2 clflush dance for receiver-initiated
// flushes; flush-flagged operations use non-cacheable regions).
func (o Options) AblationDDIO() Table {
	t := Table{
		Title:  "Ablation: DDIO off vs on, write-only avg latency (us)",
		Header: []string{"rpc", "ddio-off", "ddio-on", "penalty"},
		Notes:  "DDIO forces a CPU clflush onto W-RFlush's persist path; WFlush rides the non-cacheable bypass",
	}
	kinds := []rpc.Kind{rpc.WFlushRPC, rpc.WRFlushRPC, rpc.FaRM}
	cells := mapCells(o.runner(), len(kinds)*2, func(i int) microResult {
		kind := kinds[i/2]
		if i%2 == 0 {
			return o.micro(kind, o.deploy(4096), o.Ops, 0.0)
		}
		return o.micro(kind, o.deploy(4096, withDDIO), o.Ops, 0.0)
	})
	for ki, kind := range kinds {
		off, on := cells[ki*2], cells[ki*2+1]
		t.Rows = append(t.Rows, []string{
			kind.String(), fmtUS(off.Lat.Mean()), fmtUS(on.Lat.Mean()),
			fmt.Sprintf("%.2fx", ratio(on.Lat.Mean(), off.Lat.Mean())),
		})
	}
	return t
}

// AblationWorkers sweeps the server worker pool: the durable RPCs' heavy-
// load throughput is bounded by how much processing can overlap.
func (o Options) AblationWorkers() Table {
	t := Table{
		Title:  "Ablation: server workers vs heavy-load throughput (KOPS), WFlush-RPC",
		Header: []string{"workers", "WFlush-RPC", "FaRM"},
		Notes:  "durable RPC throughput scales with workers until the persist path saturates; FaRM is client-bound",
	}
	counts := []int{1, 2, 4, 8}
	cells := mapCells(o.runner(), len(counts)*2, func(i int) microResult {
		w := counts[i/2]
		if i%2 == 0 {
			return o.micro(rpc.WFlushRPC, o.deploy(1024, heavyLoad, workers(w)), o.Ops, 0.0)
		}
		return o.micro(rpc.FaRM, o.deploy(1024, heavyLoad, workers(w)), o.Ops, 0.0)
	})
	for wi, w := range counts {
		wf, fm := cells[wi*2], cells[wi*2+1]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%.1f", wf.KOPS()),
			fmt.Sprintf("%.1f", fm.KOPS()),
		})
	}
	return t
}

// AblationThrottle sweeps the §4.2 back-pressure threshold.
func (o Options) AblationThrottle() Table {
	t := Table{
		Title:  "Ablation: redo-log back-pressure threshold, heavy load, WFlush-RPC",
		Header: []string{"threshold", "KOPS", "p99 (us)"},
		Notes:  "too-low thresholds stall the sender; high thresholds trade memory for throughput",
	}
	thresholds := []int{2, 8, 32, 128, 512}
	cells := mapCells(o.runner(), len(thresholds), func(i int) microResult {
		return o.micro(rpc.WFlushRPC, o.deploy(1024, heavyLoad, workers(4), throttle(thresholds[i])), o.Ops, 0.0)
	})
	for ti, th := range thresholds {
		m := cells[ti]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", th),
			fmt.Sprintf("%.1f", m.KOPS()),
			fmtUS(m.Lat.Percentile(99)),
		})
	}
	return t
}
