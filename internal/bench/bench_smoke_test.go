package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// tiny returns minimal options for smoke tests.
func tiny() Options {
	o := Quick()
	o.Ops = 300
	o.Objects = 256
	o.OpsPerSender = 30
	o.GraphScale = 100
	return o
}

func cellF(t *testing.T, tb *Table, row, col string) float64 {
	t.Helper()
	s, ok := tb.Cell(row, col)
	if !ok {
		t.Fatalf("missing cell %s/%s in %s", row, col, tb.Title)
	}
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %s/%s = %q: %v", row, col, s, err)
	}
	return v
}

func TestFig8Shapes(t *testing.T) {
	o := tiny()
	tables := o.Fig8()
	if len(tables) != 2 {
		t.Fatal("expected heavy and light tables")
	}
	heavy := &tables[0]
	// Durable RPCs must beat their same-primitive baselines under heavy load.
	if cellF(t, heavy, "WFlush-RPC", "1KB") <= cellF(t, heavy, "FaRM", "1KB") {
		t.Error("heavy load: WFlush-RPC did not beat FaRM at 1KB")
	}
	if cellF(t, heavy, "SFlush-RPC", "1KB") <= cellF(t, heavy, "DaRPC", "1KB") {
		t.Error("heavy load: SFlush-RPC did not beat DaRPC at 1KB")
	}
	// FaSST is absent at 64KB (UD MTU).
	if v, _ := heavy.Cell("FaSST", "64KB"); v != "-" {
		t.Errorf("FaSST at 64KB should be '-', got %q", v)
	}
	light := &tables[1]
	if cellF(t, light, "WFlush-RPC", "64KB") <= cellF(t, light, "FaRM", "64KB") {
		t.Error("light load: WFlush-RPC did not beat FaRM at 64KB")
	}
}

func TestFig9Runs(t *testing.T) {
	o := tiny()
	tables := o.Fig9()
	if len(tables) != 2 {
		t.Fatal("want 2 tables")
	}
	for _, tb := range tables {
		for _, row := range tb.Rows {
			p95 := cellF(t, &tb, row[0], "95th")
			p99 := cellF(t, &tb, row[0], "99th")
			if p99 < p95 {
				t.Errorf("%s: p99 %v < p95 %v", row[0], p99, p95)
			}
		}
	}
}

func TestFig12Shape(t *testing.T) {
	o := tiny()
	o.Ops = 600
	tb := o.Fig12()
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Write-heavy workloads benefit clearly; read-only stays at parity
	// (reads skip the flush machinery entirely, EXPERIMENTS.md discusses
	// the divergence from the paper's availability trend).
	lowAvail := tb.Rows[0]
	w, _ := strconv.ParseFloat(lowAvail[3], 64)
	m, _ := strconv.ParseFloat(lowAvail[2], 64)
	r, _ := strconv.ParseFloat(lowAvail[1], 64)
	if w >= 0.95 {
		t.Errorf("100%%Write normalized %v: durable RPC shows no recovery benefit", w)
	}
	if r > 1.1 || m > 1.1 {
		t.Errorf("read-heavy columns far from parity: read=%v mixed=%v", r, m)
	}
	if w > m || w > r {
		t.Errorf("write column (%v) should benefit most (mixed=%v read=%v)", w, m, r)
	}
}

func TestFig18WriteHeavyFavorsDurable(t *testing.T) {
	o := tiny()
	tb := o.Fig18()
	col := "5%read+95%write"
	if cellF(t, &tb, "WFlush-RPC", col) >= cellF(t, &tb, "FaRM", col) {
		t.Error("write-heavy mix: WFlush-RPC latency should beat FaRM")
	}
}

func TestFig19BatchingHelps(t *testing.T) {
	o := tiny()
	tb := o.Fig19()
	for _, row := range tb.Rows {
		b1 := cellF(t, &tb, row[0], "batch=1")
		b8 := cellF(t, &tb, row[0], "batch=8")
		if b8 >= b1 {
			t.Errorf("%s: batch=8 (%v ms) not faster than batch=1 (%v ms)", row[0], b8, b1)
		}
	}
}

func TestFig20SharesSane(t *testing.T) {
	o := tiny()
	tb := o.Fig20()
	for _, row := range tb.Rows {
		total := cellF(t, &tb, row[0], "total")
		send := cellF(t, &tb, row[0], "sender-sw")
		recv := cellF(t, &tb, row[0], "receiver-sw")
		if send < 0 || recv < 0 || send+recv > total+0.01 {
			t.Errorf("%s: breakdown inconsistent: send=%v recv=%v total=%v", row[0], send, recv, total)
		}
	}
	// Durable RPC software share should be modest (paper: <= ~7%; allow slack).
	if share := cellF(t, &tb, "WFlush-RPC", "sw-share"); share > 25 {
		t.Errorf("WFlush-RPC software share %v%% implausibly high", share)
	}
}

func TestFig10And11Run(t *testing.T) {
	o := tiny()
	o.Ops = 200
	t10 := o.Fig10()
	if len(t10.Rows) == 0 {
		t.Fatal("fig10 empty")
	}
	for _, row := range t10.Rows {
		for i := 1; i < len(row); i++ {
			v, err := strconv.ParseFloat(row[i], 64)
			if err != nil || v <= 0 {
				t.Fatalf("fig10 %s: bad time %q", row[0], row[i])
			}
		}
	}
	t11 := o.Fig11()
	if len(t11.Rows) == 0 {
		t.Fatal("fig11 empty")
	}
}

func TestSensitivityFigsRun(t *testing.T) {
	o := tiny()
	for _, tb := range []Table{o.Fig13(), o.Fig14(), o.Fig15(), o.Fig16(), o.Fig18()} {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s empty", tb.Title)
		}
	}
	// Busy loads must slow things down.
	for _, tb := range []Table{o.Fig14(), o.Fig15(), o.Fig16()} {
		for _, row := range tb.Rows {
			if cellF(t, &tb, row[0], "busy") < cellF(t, &tb, row[0], "idle") {
				t.Errorf("%s / %s: busy faster than idle", tb.Title, row[0])
			}
		}
	}
}

func TestFig17Runs(t *testing.T) {
	o := tiny()
	o.OpsPerSender = 20
	tb := o.Fig17()
	if len(tb.Rows) == 0 {
		t.Fatal("fig17 empty")
	}
}

func TestAblationsRun(t *testing.T) {
	o := tiny()
	nat := o.AblationNativeFlush()
	for _, row := range nat.Rows {
		em := cellF(t, &nat, row[0], "emulated")
		nv := cellF(t, &nat, row[0], "native")
		if strings.HasPrefix(row[0], "WFlush") && nv > em {
			t.Errorf("%s: native (%v) slower than emulated (%v)", row[0], nv, em)
		}
		// SFlush pays its address lookup at the NIC either way: native
		// must at least stay in the same ballpark.
		if nv > em*1.6 {
			t.Errorf("%s: native (%v) far slower than emulated (%v)", row[0], nv, em)
		}
	}
	dd := o.AblationDDIO()
	if len(dd.Rows) != 3 {
		t.Fatal("ddio ablation rows")
	}
	wk := o.AblationWorkers()
	w1 := cellF(t, &wk, "1", "WFlush-RPC")
	w8 := cellF(t, &wk, "8", "WFlush-RPC")
	if w8 <= w1 {
		t.Errorf("workers ablation: 8 workers (%v KOPS) not faster than 1 (%v)", w8, w1)
	}
	th := o.AblationThrottle()
	if len(th.Rows) != 5 {
		t.Fatal("throttle ablation rows")
	}
}

func TestTable2Runs(t *testing.T) {
	o := tiny()
	o.OpsPerSender = 20
	tb := o.Table2()
	if len(tb.Rows) < 6 {
		t.Fatalf("table2 rows = %d", len(tb.Rows))
	}
}

func TestTablePrintAndCell(t *testing.T) {
	tb := Table{Title: "x", Header: []string{"a", "b"}, Rows: [][]string{{"r1", "v"}}, Notes: "n"}
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== x", "r1", "-- n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output", want)
		}
	}
	if _, ok := tb.Cell("r1", "b"); !ok {
		t.Fatal("Cell lookup failed")
	}
	if _, ok := tb.Cell("r1", "zzz"); ok {
		t.Fatal("Cell found nonexistent column")
	}
	_ = time.Now
}

func TestTableCSV(t *testing.T) {
	tb := Table{
		Header: []string{"rpc", "v"},
		Rows:   [][]string{{"a,b", "1"}, {`q"x`, "2"}},
	}
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "rpc,v\n\"a,b\",1\n\"q\"\"x\",2\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}
