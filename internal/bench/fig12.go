package bench

import (
	"fmt"
	"time"

	"prdma/internal/failure"
	"prdma/internal/rpc"
	"prdma/internal/sim"
	"prdma/internal/ycsb"
)

// fig12Availabilities are the x-axis points of Fig. 12.
var fig12Availabilities = []float64{0.99, 0.999, 0.9999, 0.99999}

// Fig12 reproduces Fig. 12: total execution time of read/write mixes using
// a durable RPC, normalized to a traditional RPC that must re-send
// incomplete requests after a failure. Per DESIGN.md, the driver measures
// clean throughput and per-crash recovery cost empirically, then
// extrapolates to the paper's 1e9-operation run at each availability.
func (o Options) Fig12() Table {
	t := Table{
		Title:  "Fig 12: normalized total time, W-RFlush-RPC vs re-send baseline (lower is better)",
		Header: []string{"availability", "100%Read", "50%R+50%W", "100%Write"},
		Notes:  "expect: <1 everywhere; lower with more writes; lower at lower availability",
	}
	mixes := []float64{1.0, 0.5, 0.0} // read fractions
	// W-RFlush is the durable representative: the paper recommends
	// receiver-initiated flushes under load (§5.7), and the emulated
	// WFlush's read-after-write probe serializes behind the DMA
	// backlog when requests are pipelined.
	//
	// Pipelining semantics: early persistence visibility is what
	// LICENSES pipelining mutations ("the sender can issue other RPC
	// requests without waiting for the completion event", §4.2) — a
	// traditional client must serialize dependent writes because it
	// cannot tell when they are safe. Reads are safe to overlap for
	// everyone. Baseline effective overlap: reads overlap freely;
	// writes serialize; a mix lands in between.
	cells := mapCells(o.runner(), len(mixes)*2, func(i int) failure.Measurement {
		rf := mixes[i/2]
		if i%2 == 0 {
			return o.failureRun(rpc.WRFlushRPC, rf, 8)
		}
		return o.failureRun(rpc.FaRM, rf, 1+int(rf*7))
	})
	durable := make([]failure.Measurement, len(mixes))
	baseline := make([]failure.Measurement, len(mixes))
	for i := range mixes {
		durable[i], baseline[i] = cells[i*2], cells[i*2+1]
	}
	const ops = int64(1e9)
	restart := 300 * time.Millisecond
	for _, a := range fig12Availabilities {
		row := []string{fmt.Sprintf("%.3f%%", a*100)}
		for i := range mixes {
			norm := float64(durable[i].ExpectedTotal(ops, a, restart)) /
				float64(baseline[i].ExpectedTotal(ops, a, restart))
			row = append(row, fmt.Sprintf("%.3f", norm))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// failureRun measures one (kind, read-fraction) failure configuration with
// the paper's real constants: ~300 ms unikernel restarts and the 100 ms
// RDMA re-transfer interval. Virtual time is cheap during the idle waits,
// so no scaling is needed.
func (o Options) failureRun(kind rpc.Kind, readFrac float64, pipeline int) failure.Measurement {
	d := o.deploy(4096, workers(3))
	// A small real per-request processing cost (the paper's workloads do
	// real work): the server is then the shared steady-state bottleneck
	// and the normalized ratio isolates persistence-path and recovery
	// differences.
	d.cfg.ProcessingTime = 5 * time.Microsecond
	c := d.build()
	client := rpc.New(kind, c.cli[0], c.engine, d.cfg).(rpc.Recoverable)

	fp := failure.Params{
		Restart:      300 * time.Millisecond,
		Retransfer:   100 * time.Millisecond,
		Crashes:      5,
		OpsPerWindow: o.Ops/10 + 100,
		Pipeline:     pipeline,
	}
	drv := failure.NewDriver(c.k, c.server, c.engine, client, fp)
	mix := ycsb.NewMix(readFrac, int64(d.objects), 4096, o.Seed)
	payload := make([]byte, 4096)
	var m failure.Measurement
	c.k.Go("failure-driver", func(p *sim.Proc) {
		m = drv.Run(p, func(i int) *rpc.Request {
			req := mix.Next()
			if req.Op == rpc.OpWrite {
				req.Payload = payload // real bytes: entries must be recoverable
			} else {
				req.Payload = []byte{}
			}
			return req
		})
	})
	c.k.Run()
	AddSimOps(int64(m.Ops))
	// The scaled restart only affects measurement speed; recovery overhead
	// beyond the restart is what PerCrashCost isolates, and ExpectedTotal
	// re-applies the paper's real 300 ms restart.
	return m
}
