package bench

import "testing"

func TestFig7CaseStudy(t *testing.T) {
	o := tiny()
	tb := o.Fig7CaseStudy()
	// Large objects: the NIC's DMA persist beats the receiver CPU's
	// copy+clwb outright.
	if flush, plain := cellF(t, &tb, "Octopus+WFlush", "64KB"), cellF(t, &tb, "Octopus", "64KB"); flush >= plain {
		t.Errorf("64KB: Octopus+WFlush (%v) not faster than Octopus (%v)", flush, plain)
	}
	// Small objects: the emulated flush read adds at most a modest round
	// trip over the plain RPC.
	if flush, plain := cellF(t, &tb, "Octopus+WFlush", "1KB"), cellF(t, &tb, "Octopus", "1KB"); flush > plain*1.8 {
		t.Errorf("1KB: Octopus+WFlush (%v) far above Octopus (%v)", flush, plain)
	}
}

func TestReplicationTable(t *testing.T) {
	o := tiny()
	tb := o.Replication()
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Wait-all latency grows with R; quorum hides the straggler.
	allR1 := cellF(t, &tb, "all, uniform", "R=1")
	allR5 := cellF(t, &tb, "all, uniform", "R=5")
	if allR5 < allR1 {
		t.Errorf("wait-all R=5 (%v) below R=1 (%v)", allR5, allR1)
	}
	qs := cellF(t, &tb, "quorum, 1 straggler", "R=3")
	as := cellF(t, &tb, "all, 1 straggler", "R=3")
	if qs >= as {
		t.Errorf("quorum with straggler (%v) not below wait-all (%v)", qs, as)
	}
	// The NIC chain serializes hops: R=3 costs more than R=1, and remains
	// within a small multiple (forwarding overlaps persistence).
	c1 := cellF(t, &tb, "chain (NIC offload)", "R=1")
	c3 := cellF(t, &tb, "chain (NIC offload)", "R=3")
	if c3 <= c1 {
		t.Errorf("chain R=3 (%v) should exceed R=1 (%v)", c3, c1)
	}
}

func TestTable1Extras(t *testing.T) {
	o := tiny()
	tb := o.Table1Extras()
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	darpc := cellF(t, &tb, "DaRPC", "1KB")
	hotpot := cellF(t, &tb, "Hotpot", "1KB")
	mojim := cellF(t, &tb, "Mojim", "1KB")
	if hotpot <= darpc {
		t.Errorf("Hotpot (%v) should exceed DaRPC (%v): two phases", hotpot, darpc)
	}
	if mojim <= darpc {
		t.Errorf("Mojim (%v) should exceed DaRPC (%v): mirroring hop", mojim, darpc)
	}
}
