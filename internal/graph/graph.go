// Package graph provides the PageRank macro-benchmark of §5.3 (Fig. 10):
// the graph lives in a remote server's PM, adjacency lists are fetched over
// RPCs, and ranks are computed in the client's local memory.
//
// The paper's datasets (wordassociation-2011, enron, dblp-2010) matter to
// the experiment only through their node/edge counts and degree skew, so we
// generate deterministic power-law graphs at the published sizes.
package graph

import (
	"fmt"
	"time"

	"prdma/internal/rpc"
	"prdma/internal/sim"
)

// Graph is a directed graph in CSR form.
type Graph struct {
	Name string
	// Offsets has N+1 entries; Edges[Offsets[v]:Offsets[v+1]] are v's
	// out-neighbours.
	Offsets []int32
	Edges   []int32
}

// Nodes returns the vertex count.
func (g *Graph) Nodes() int { return len(g.Offsets) - 1 }

// EdgeCount returns the edge count.
func (g *Graph) EdgeCount() int { return len(g.Edges) }

// Degree returns v's out-degree.
func (g *Graph) Degree(v int32) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns v's out-neighbours.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// Dataset describes one of the paper's graphs.
type Dataset struct {
	Name  string
	Nodes int
	Edges int
}

// The paper's three datasets (§5.1).
var (
	WordAssociation = Dataset{"wordassociation-2011", 10_000, 72_000}
	Enron           = Dataset{"enron", 69_000, 276_000}
	DBLP            = Dataset{"dblp-2010", 326_000, 1_615_000}
)

// Datasets lists them in the paper's order.
var Datasets = []Dataset{WordAssociation, Enron, DBLP}

// Generate builds a deterministic power-law graph with ds's node and edge
// counts using a preferential-attachment edge sampler.
func Generate(ds Dataset, seed uint64) *Graph {
	rng := sim.NewRand(seed)
	n := ds.Nodes
	m := ds.Edges

	// Sample destination endpoints preferentially (power-law in-degree)
	// and sources near-uniformly, mirroring web-like graphs.
	deg := make([]int32, n)
	type edge struct{ src, dst int32 }
	edges := make([]edge, 0, m)
	// endpointPool repeats vertices proportionally to current degree.
	pool := make([]int32, 0, 2*m)
	for i := 0; i < n; i++ {
		pool = append(pool, int32(i)) // every vertex seeds the pool once
	}
	for len(edges) < m {
		src := int32(rng.Intn(n))
		var dst int32
		if rng.Float64() < 0.7 {
			dst = pool[rng.Intn(len(pool))] // preferential
		} else {
			dst = int32(rng.Intn(n))
		}
		if dst == src {
			continue
		}
		edges = append(edges, edge{src, dst})
		pool = append(pool, dst)
		deg[src]++
	}

	g := &Graph{Name: ds.Name, Offsets: make([]int32, n+1), Edges: make([]int32, m)}
	for v := 0; v < n; v++ {
		g.Offsets[v+1] = g.Offsets[v] + deg[v]
	}
	cursor := make([]int32, n)
	copy(cursor, g.Offsets[:n])
	for _, e := range edges {
		g.Edges[cursor[e.src]] = e.dst
		cursor[e.src]++
	}
	return g
}

// PageRank runs the computation against a remote graph store.
type PageRank struct {
	G *Graph
	// Client fetches adjacency data from the server's PM.
	Client rpc.Client
	// Damping is the PageRank damping factor.
	Damping float64
	// Iterations per run (the rank vector converges in ~10–20; the
	// benchmark's shape is per-iteration, so fewer keep runs fast).
	Iterations int
	// ChunkBytes caps a single adjacency fetch; longer lists take
	// multiple RPCs (the server's slot size bounds one response).
	ChunkBytes int

	// Ranks holds the result after Run.
	Ranks []float64
	// Fetches counts adjacency RPCs issued.
	Fetches int64
}

// edgeBytes is the wire size of one adjacency entry.
const edgeBytes = 4

// Run executes PageRank, fetching every vertex's adjacency list from the
// remote store each iteration and combining ranks locally.
func (pr *PageRank) Run(p *sim.Proc, h computeHost) error {
	n := pr.G.Nodes()
	if pr.Damping == 0 {
		pr.Damping = 0.85
	}
	if pr.Iterations == 0 {
		pr.Iterations = 5
	}
	if pr.ChunkBytes == 0 {
		pr.ChunkBytes = 60 * 1024
	}
	ranks := make([]float64, n)
	next := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	for it := 0; it < pr.Iterations; it++ {
		for i := range next {
			next[i] = (1 - pr.Damping) / float64(n)
		}
		for v := int32(0); v < int32(n); v++ {
			deg := pr.G.Degree(v)
			if deg == 0 {
				continue
			}
			// Fetch the adjacency list from remote PM (chunked).
			remain := deg * edgeBytes
			for remain > 0 {
				sz := remain
				if sz > pr.ChunkBytes {
					sz = pr.ChunkBytes
				}
				pr.Fetches++
				if _, err := pr.Client.Call(p, &rpc.Request{Op: rpc.OpRead, Key: uint64(v), Size: sz}); err != nil {
					return fmt.Errorf("pagerank: fetch v%d: %w", v, err)
				}
				remain -= sz
			}
			// Local combine: real arithmetic plus a modelled CPU cost.
			share := pr.Damping * ranks[v] / float64(deg)
			for _, u := range pr.G.Neighbors(v) {
				next[u] += share
			}
			h.Compute(p, time.Duration(20+2*deg)*time.Nanosecond)
		}
		ranks, next = next, ranks
	}
	pr.Ranks = ranks
	return nil
}

// computeHost is the slice of host.Host the driver needs (keeps tests free
// to fake the CPU model).
type computeHost interface {
	Compute(p *sim.Proc, d time.Duration)
}
