package graph

import (
	"math"
	"testing"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/rpc"
	"prdma/internal/sim"
)

func TestGenerateMatchesDataset(t *testing.T) {
	for _, ds := range []Dataset{WordAssociation, {Name: "tiny", Nodes: 100, Edges: 500}} {
		g := Generate(ds, 1)
		if g.Nodes() != ds.Nodes {
			t.Fatalf("%s: nodes %d want %d", ds.Name, g.Nodes(), ds.Nodes)
		}
		if g.EdgeCount() != ds.Edges {
			t.Fatalf("%s: edges %d want %d", ds.Name, g.EdgeCount(), ds.Edges)
		}
	}
}

func TestGenerateCSRConsistent(t *testing.T) {
	g := Generate(Dataset{Name: "t", Nodes: 500, Edges: 3000}, 2)
	total := 0
	for v := int32(0); v < int32(g.Nodes()); v++ {
		nb := g.Neighbors(v)
		total += len(nb)
		if len(nb) != g.Degree(v) {
			t.Fatal("degree mismatch")
		}
		for _, u := range nb {
			if u < 0 || int(u) >= g.Nodes() {
				t.Fatalf("edge target %d out of range", u)
			}
			if u == v {
				t.Fatal("self loop generated")
			}
		}
	}
	if total != g.EdgeCount() {
		t.Fatalf("CSR total %d != %d", total, g.EdgeCount())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Dataset{Name: "t", Nodes: 200, Edges: 1000}, 5)
	b := Generate(Dataset{Name: "t", Nodes: 200, Edges: 1000}, 5)
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestGenerateSkewedInDegree(t *testing.T) {
	g := Generate(Dataset{Name: "t", Nodes: 2000, Edges: 20000}, 3)
	in := make([]int, g.Nodes())
	for _, u := range g.Edges {
		in[u]++
	}
	max := 0
	for _, d := range in {
		if d > max {
			max = d
		}
	}
	mean := float64(g.EdgeCount()) / float64(g.Nodes())
	if float64(max) < 3*mean {
		t.Fatalf("in-degree not skewed: max %d vs mean %.1f", max, mean)
	}
}

type fakeHost struct{}

func (fakeHost) Compute(p *sim.Proc, d time.Duration) { p.Sleep(d) }

func TestPageRankOverRPC(t *testing.T) {
	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), 3)
	cli := host.New(k, "cli", net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
	srv := host.New(k, "srv", net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
	g := Generate(Dataset{Name: "t", Nodes: 300, Edges: 1500}, 4)
	store, err := rpc.NewStore(srv, g.Nodes(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	engine := rpc.NewServer(srv, store, rpc.DefaultConfig())
	c := rpc.New(rpc.WFlushRPC, cli, engine, engine.Cfg)

	pr := &PageRank{G: g, Client: c, Iterations: 3}
	var runErr error
	k.Go("pagerank", func(p *sim.Proc) { runErr = pr.Run(p, fakeHost{}) })
	k.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	// Rank vector is a probability distribution.
	sum := 0.0
	for _, r := range pr.Ranks {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	if math.Abs(sum-1) > 0.15 {
		t.Fatalf("ranks sum to %.3f", sum)
	}
	if pr.Fetches == 0 {
		t.Fatal("no adjacency fetches over RPC")
	}
	if k.Now() == 0 {
		t.Fatal("run consumed no virtual time")
	}
}

func TestPageRankChunksLargeAdjacency(t *testing.T) {
	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), 3)
	cli := host.New(k, "cli", net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
	srv := host.New(k, "srv", net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
	// Star graph: vertex 0 points at everyone — one huge adjacency list.
	n := 3000
	g := &Graph{Name: "star", Offsets: make([]int32, n+1), Edges: make([]int32, n-1)}
	for i := 1; i < n; i++ {
		g.Edges[i-1] = int32(i)
	}
	for i := 1; i <= n; i++ {
		g.Offsets[i] = int32(n - 1)
	}
	store, _ := rpc.NewStore(srv, 16, 4096)
	engine := rpc.NewServer(srv, store, rpc.DefaultConfig())
	c := rpc.New(rpc.FaRM, cli, engine, engine.Cfg)
	pr := &PageRank{G: g, Client: c, Iterations: 1, ChunkBytes: 4096}
	k.Go("pr", func(p *sim.Proc) {
		if err := pr.Run(p, fakeHost{}); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	want := int64((n-1)*edgeBytes+4095) / 4096
	if pr.Fetches != want {
		t.Fatalf("fetches = %d, want %d (chunked)", pr.Fetches, want)
	}
}

func TestPaperDatasetsDeclared(t *testing.T) {
	if len(Datasets) != 3 {
		t.Fatal("expected 3 paper datasets")
	}
	if DBLP.Nodes != 326000 || DBLP.Edges != 1615000 {
		t.Fatal("dblp-2010 sizes wrong")
	}
	if WordAssociation.Nodes != 10000 || Enron.Edges != 276000 {
		t.Fatal("dataset sizes wrong")
	}
}
