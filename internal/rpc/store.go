package rpc

import (
	"encoding/binary"
	"fmt"

	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/sim"
)

// Store is the server-side object store that every RPC system serves: a set
// of fixed-size objects in PM. Clients (realistically) cache the key→address
// index in their local DRAM; the store hands the mapping out at setup time.
type Store struct {
	H       *host.Host
	ObjSize int

	addrs map[uint64]int64

	// VersionAt, when non-negative, is the byte offset of a little-endian
	// uint32 version embedded in every write payload; the store then drops
	// writes older than the version it holds for the key. This is the
	// last-writer-wins guard: under loss or reordering, a retransmitted
	// stale write can arrive after a newer acknowledged write (even
	// in-order per QP, the two versions may ride different connections),
	// and an unconditional apply would silently regress the object. The
	// guard is volatile by design — a restarted replica rebuilds it while
	// replaying its durable redo logs in order. Negative (the default)
	// disables the guard: payloads stay fully opaque.
	VersionAt int

	vers map[uint64]uint32
	// verBuf is the scratch for the guard's PM version read-back.
	verBuf [4]byte

	// sparseBuf is the scratch that materializes sparse-flyweight payloads
	// before they are persisted; PersistSync outlives the device's use of
	// it, so one buffer per store suffices.
	sparseBuf []byte

	// Reads/Writes/Scans count applied operations; StaleDrops counts
	// version-guarded writes rejected as older than the resident object.
	Reads, Writes, Scans int64
	StaleDrops           int64
	// PMFull counts operations dropped because the PM arena could not
	// allocate a home for a first-touch key: backpressure surfaced to the
	// deployment's stats instead of a panic aborting the simulation. The
	// durability contract is unaffected — the request's log entry is
	// durable and replays to the same counted drop.
	PMFull int64
}

// NewStore allocates n objects of objSize bytes in h's PM.
func NewStore(h *host.Host, n int, objSize int) (*Store, error) {
	s := &Store{H: h, ObjSize: objSize, addrs: make(map[uint64]int64, n), VersionAt: -1}
	for i := 0; i < n; i++ {
		a, err := h.PMArena.Alloc(int64(objSize))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		s.addrs[uint64(i)] = a
	}
	return s, nil
}

// Addr returns the PM address of key, allocating on first touch (inserts).
// Exhaustion panics; the apply paths use tryAddr, which degrades to a
// counted drop instead — external callers reach Addr only after Has.
func (s *Store) Addr(key uint64) int64 {
	a, ok := s.tryAddr(key)
	if !ok {
		panic("store: out of PM")
	}
	return a
}

// tryAddr is Addr without the panic: ok is false when the key is absent and
// the PM arena cannot fit another object, counting the drop in PMFull.
func (s *Store) tryAddr(key uint64) (int64, bool) {
	if a, ok := s.addrs[key]; ok {
		return a, true
	}
	a, err := s.H.PMArena.Alloc(int64(s.ObjSize))
	if err != nil {
		s.PMFull++
		return 0, false
	}
	s.addrs[key] = a
	return a, true
}

// Has reports whether key exists.
func (s *Store) Has(key uint64) bool {
	_, ok := s.addrs[key]
	return ok
}

// Len returns the object count.
func (s *Store) Len() int { return len(s.addrs) }

// ApplyFromBuffer executes req whose payload sits in a volatile message
// buffer: the traditional-RPC receive path. Writes copy the payload to the
// object's PM home and persist it over the CPU store+clwb path — the slow
// path the paper's durable RPCs bypass. Returns response data for reads.
func (s *Store) ApplyFromBuffer(p *sim.Proc, req *Request) []byte {
	switch req.Op {
	case OpWrite:
		if s.stale(p, req) {
			s.StaleDrops++
			return nil
		}
		addr, ok := s.tryAddr(req.Key)
		if !ok {
			return nil // out of PM: counted backpressure drop
		}
		s.Writes++
		s.H.Memcpy(p, req.Size)
		payload := req.Payload
		if req.Sparse.Len > 0 {
			payload = s.materialize(req.Sparse)
		}
		s.H.PM.PersistSync(p, addr, req.Size, payload, pmem.CPU)
		return nil
	case OpScan:
		s.Scans++
		return s.readRange(p, req)
	default:
		s.Reads++
		addr, ok := s.tryAddr(req.Key)
		if !ok || req.Payload == nil {
			// Synthetic traffic — or a first-touch read the exhausted
			// arena cannot home: pay the media latency, skip contents.
			s.readTiming(p, req.Size)
			return nil
		}
		return s.H.PM.ReadSync(p, addr, req.Size)
	}
}

// ApplyFromLog executes req whose payload is already durable in the redo
// log (the durable-RPC path): writes copy log→object and persist; the
// request was complete from the sender's perspective long before this runs.
func (s *Store) ApplyFromLog(p *sim.Proc, req *Request) []byte {
	// The mechanics are identical to ApplyFromBuffer — what differs is
	// *when* it runs (off the sender's critical path) and that the payload
	// source is durable.
	return s.ApplyFromBuffer(p, req)
}

// stale applies the version guard (see VersionAt): it reports whether req
// carries an older version than the store holds for its key, advancing the
// watermark otherwise. Payloads too short to carry a version — including
// version zero, the unversioned-payload value — always apply.
//
// On a watermark miss the guard reads the resident object's embedded version
// back from PM. The volatile map dies with a crash, but the durable object
// does not: a stale entry replayed from one connection's redo log must not
// regress a newer acknowledged write that another connection applied — and
// durably consumed — before the crash. The read-back is paid once per key
// per incarnation; the map answers every later check.
func (s *Store) stale(p *sim.Proc, req *Request) bool {
	if s.VersionAt < 0 || len(req.Payload) < s.VersionAt+4 {
		return false
	}
	ver := binary.LittleEndian.Uint32(req.Payload[s.VersionAt:])
	if ver == 0 {
		return false
	}
	cur, ok := s.vers[req.Key]
	if !ok {
		if addr, exists := s.addrs[req.Key]; exists {
			s.readTiming(p, 4)
			cur = binary.LittleEndian.Uint32(s.H.PM.ReadBytesInto(addr+int64(s.VersionAt), s.verBuf[:]))
			ok = cur != 0
		}
	}
	if ok && ver < cur {
		return true
	}
	if s.vers == nil {
		s.vers = make(map[uint64]uint32)
	}
	s.vers[req.Key] = ver
	return false
}

// Crash drops the store's volatile state: the version watermarks are
// rebuilt from the durable redo logs as recovery replays them in order.
func (s *Store) Crash() { s.vers = nil }

// readRange serves OpScan: ScanLen sequential objects from Key.
func (s *Store) readRange(p *sim.Proc, req *Request) []byte {
	n := req.ScanLen
	if n <= 0 {
		n = 1
	}
	var out []byte
	for i := 0; i < n; i++ {
		addr, ok := s.tryAddr(req.Key + uint64(i))
		if !ok || req.Payload == nil {
			s.readTiming(p, req.Size)
			continue
		}
		out = append(out, s.H.PM.ReadSync(p, addr, req.Size)...)
	}
	return out
}

// materialize expands a sparse flyweight into the store's scratch buffer,
// valid until the next call (PersistSync blocks past the device's use).
func (s *Store) materialize(sp pmem.SparsePayload) []byte {
	if cap(s.sparseBuf) < sp.Len {
		s.sparseBuf = make([]byte, sp.Len)
	}
	b := s.sparseBuf[:sp.Len]
	sp.Materialize(b)
	return b
}

// readTiming pays a media read's latency without materializing contents.
func (s *Store) readTiming(p *sim.Proc, n int) {
	end := s.H.PM.Read(p.K.Now(), 0, n)
	p.Sleep(end.Sub(p.K.Now()))
}
