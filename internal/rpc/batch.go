package rpc

import "encoding/binary"

// Batch op codes mark a batched request: one wire message carrying several
// application requests (§4.3, Fig. 6 / Fig. 19). A batch containing at least
// one write travels as opBatch and engages the durability machinery; a
// read-only batch travels as opBatchRO and must not — "RDMA Flush primitives
// are only needed for a small portion of RDMA write operations" (§5.5).
const (
	opBatch   Op = 200
	opBatchRO Op = 201
)

// isBatchOp reports whether op is a batch frame.
func isBatchOp(op Op) bool { return op == opBatch || op == opBatchRO }

// makeBatchFrame builds the enclosing wire request for a batch. The frame's
// payload serializes the constituent requests back-to-back, so a batch entry
// recovered from the redo log can be replayed after a crash even though the
// connection's volatile batch table died with the process. Batches whose
// write payloads are synthetic (timing-only) stay unmaterialized and are —
// like all synthetic traffic — not recoverable by design.
func makeBatchFrame(reqs []*Request) (*Request, bool) {
	total := 0
	hasWrite := false
	material := true
	for _, r := range reqs {
		total += reqWireBytes(r)
		if r.Op == OpWrite {
			hasWrite = true
			if len(r.Payload) != r.Size {
				material = false
			}
		}
	}
	var body []byte
	if material {
		body = make([]byte, 0, total)
		for _, r := range reqs {
			body = append(body, encodeReq(0, r)...)
		}
	}
	op := opBatch
	if !hasWrite {
		op = opBatchRO
	}
	return &Request{Op: op, Size: total, Key: uint64(len(reqs)), Payload: body}, hasWrite
}

// decodeBatch reconstructs a batch's constituent requests from the frame
// body (the recovery path; the live path uses the volatile stash).
func decodeBatch(body []byte) []*Request {
	var out []*Request
	for off := 0; off+reqHeaderBytes <= len(body); {
		op := Op(body[off+24])
		n := reqWireBytes(&Request{Op: op, Size: int(binary.LittleEndian.Uint32(body[off+16:]))})
		if off+n > len(body) {
			break
		}
		_, r := decodeReq(body[off : off+n])
		out = append(out, r)
		off += n
	}
	return out
}

// stash registers a batch's constituent requests under seq.
func (c *conn) stash(seq uint64, reqs []*Request) {
	if c.batches == nil {
		c.batches = make(map[uint64][]*Request)
	}
	c.batches[seq] = reqs
}

// stashBatch registers a batch under seq and returns the enclosing wire
// request plus whether any constituent mutates.
func (c *conn) stashBatch(seq uint64, reqs []*Request) (*Request, bool) {
	breq, hasWrite := makeBatchFrame(reqs)
	c.stash(seq, reqs)
	return breq, hasWrite
}

// takeBatch retrieves and forgets the batch stashed under seq.
func (c *conn) takeBatch(seq uint64) []*Request {
	reqs := c.batches[seq]
	delete(c.batches, seq)
	return reqs
}

// batchReqs resolves a batch frame to its constituent requests: the volatile
// stash on the live path, the serialized frame body after a crash.
func (c *conn) batchReqs(seq uint64, req *Request) []*Request {
	if reqs := c.takeBatch(seq); reqs != nil {
		return reqs
	}
	return decodeBatch(req.Payload)
}
