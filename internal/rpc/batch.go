package rpc

// opBatch is the internal operation code marking a batched request: one wire
// message carrying several application requests (§4.3, Fig. 6 / Fig. 19).
const opBatch Op = 200

// stashBatch registers a batch under seq and returns the enclosing wire
// request. The constituent requests travel inside the message body in a real
// system; the simulation times the full body and passes the decoded slice
// through the connection's batch table.
func (c *conn) stashBatch(seq uint64, reqs []*Request) *Request {
	total := 0
	hasWrite := false
	for _, r := range reqs {
		total += reqWireBytes(r)
		if r.Op == OpWrite {
			hasWrite = true
		}
	}
	_ = hasWrite
	if c.batches == nil {
		c.batches = make(map[uint64][]*Request)
	}
	c.batches[seq] = reqs
	return &Request{Op: opBatch, Size: total - reqHeaderBytes, Key: uint64(len(reqs))}
}

// takeBatch retrieves and forgets the batch stashed under seq.
func (c *conn) takeBatch(seq uint64) []*Request {
	reqs := c.batches[seq]
	delete(c.batches, seq)
	return reqs
}

// batchRespBytes sums the response sizes of a batch.
func batchRespBytes(reqs []*Request) int {
	n := respHeaderBytes
	for _, r := range reqs {
		n += respWireBytes(r) - respHeaderBytes
	}
	return n
}
