package rpc

import (
	"fmt"

	"prdma/internal/host"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// sendClient implements the two-sided RPC models: DaRPC (Fig. 2(a), RC
// send/recv both ways) and FaSST (Fig. 2(d), UD send/recv both ways, 4 KB
// MTU). The receiver's CPU is interrupted for every message: it parses the
// request from the receive buffer, processes it, and sends the response.
type sendClient struct {
	*conn
}

// NewDaRPC connects a DaRPC-style client from cli to srv.
func NewDaRPC(cli *host.Host, srv *Server, cfg Config) Client {
	return newSendClient(DaRPC, rnic.RC, cli, srv, cfg)
}

// NewFaSST connects a FaSST-style client (UD datagrams).
func NewFaSST(cli *host.Host, srv *Server, cfg Config) Client {
	return newSendClient(FaSST, rnic.UD, cli, srv, cfg)
}

func newSendClient(kind Kind, tp rnic.Transport, cli *host.Host, srv *Server, cfg Config) Client {
	c := &sendClient{conn: newConn(kind, cli, srv, cfg, tp)}
	// Server receive buffers live in the request ring (DRAM).
	for i := 0; i < cfg.RingSlots; i++ {
		c.sq.PostRecv(c.reqSlot(uint64(i)), cfg.SlotSize)
	}
	c.postClientRecvs()
	c.startRecvDrain(true)
	c.startServerRecv()
	return c
}

func (c *sendClient) startServerRecv() {
	c.srv.H.K.Go(c.srv.H.Name+"-"+c.kind.String()+"-recv", func(p *sim.Proc) {
		for !c.closed {
			rcv := c.sq.RecvCQ.Pop(p)
			c.srv.H.PollDelay(p)
			c.sq.PostRecv(rcv.Addr, c.cfg.SlotSize)
			seq, req := decodeReq(rcv.Data)
			var reqs []*Request
			if isBatchOp(req.Op) {
				reqs = c.batchReqs(seq, req)
			}
			c.srv.enqueue(workItem{req: req, reqs: reqs, respond: c.respondSend(seq, req)})
		}
	})
}

func (c *sendClient) Call(p *sim.Proc, req *Request) (*Response, error) {
	if c.kind == FaSST && reqWireBytes(req) > rnic.UDMTU {
		return nil, fmt.Errorf("fasst: request %d bytes exceeds the UD MTU (%d)", reqWireBytes(req), rnic.UDMTU)
	}
	issued := p.Now()
	seq := c.nextSeq()
	f := c.await(seq)
	c.cli.Post(p)
	c.cq.SendAsync(reqWireBytes(req), encodeReq(seq, req))
	rm := f.Wait(p)
	return traditionalResponse(issued, rm, p.K), nil
}

// CallBatch batches several requests into one send (DaRPC batching, §4.3):
// one message, one receiver interrupt, one response.
func (c *sendClient) CallBatch(p *sim.Proc, reqs []*Request) ([]*Response, error) {
	issued := p.Now()
	seq := c.nextSeq()
	breq, _ := c.stashBatch(seq, reqs)
	f := c.await(seq)
	c.cli.Post(p)
	c.cq.SendAsync(reqWireBytes(breq), encodeReq(seq, breq))
	rm := f.Wait(p)
	out := make([]*Response, len(reqs))
	for i := range reqs {
		out[i] = traditionalResponse(issued, rm, p.K)
	}
	return out, nil
}
