package rpc

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// bench is a one-client one-server test cluster.
type bench struct {
	k     *sim.Kernel
	cli   *host.Host
	srv   *host.Host
	store *Store
	s     *Server
}

func newBench(t *testing.T, objSize int, mod func(*Config), nicMod func(*rnic.Params)) *bench {
	t.Helper()
	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), 7)
	np := rnic.DefaultParams()
	if nicMod != nil {
		nicMod(&np)
	}
	cli := host.New(k, "cli", net, host.DefaultParams(), pmem.DefaultParams(), np)
	srv := host.New(k, "srv", net, host.DefaultParams(), pmem.DefaultParams(), np)
	store, err := NewStore(srv, 128, objSize)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if mod != nil {
		mod(&cfg)
	}
	return &bench{k: k, cli: cli, srv: srv, store: store, s: NewServer(srv, store, cfg)}
}

func (b *bench) client(kind Kind) Client {
	cfg := b.s.Cfg
	return New(kind, b.cli, b.s, cfg)
}

// run drives fn in a client proc and runs the sim to completion. A driver
// that never finishes (a deadlocked protocol) fails the test.
func (b *bench) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	completed := false
	b.k.Go("driver", func(p *sim.Proc) {
		fn(p)
		completed = true
	})
	b.k.Run()
	if !completed {
		t.Fatal("driver blocked forever: protocol deadlock")
	}
}

func allKinds() []Kind {
	out := append([]Kind{}, Kinds...)
	return append(out, Herd, LITE)
}

func TestAllSystemsWriteReadRoundTrip(t *testing.T) {
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			b := newBench(t, 256, nil, nil)
			c := b.client(kind)
			payload := bytes.Repeat([]byte{0x5A}, 256)
			copy(payload, []byte("object-42"))
			b.run(t, func(p *sim.Proc) {
				wr, err := c.Call(p, &Request{Op: OpWrite, Key: 42, Size: 256, Payload: payload})
				if err != nil {
					t.Error(err)
					return
				}
				if wr.ReadyAt <= wr.IssuedAt {
					t.Error("write completed instantly")
				}
				// Wait for full processing before reading back.
				wr.Done.Wait(p)
				rd, err := c.Call(p, &Request{Op: OpRead, Key: 42, Size: 256, Payload: payload})
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(rd.Data, payload) {
					t.Errorf("read back %d bytes, mismatch", len(rd.Data))
				}
			})
		})
	}
}

func TestDurableWriteReturnsBeforeProcessing(t *testing.T) {
	for _, kind := range DurableKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			b := newBench(t, 1024, func(c *Config) { c.ProcessingTime = 100 * time.Microsecond }, nil)
			c := b.client(kind)
			b.run(t, func(p *sim.Proc) {
				r, err := c.Call(p, &Request{Op: OpWrite, Key: 1, Size: 1024})
				if err != nil {
					t.Error(err)
					return
				}
				doneAt := r.Done.Wait(p)
				if doneAt < r.ReadyAt.Add(50*time.Microsecond) {
					t.Errorf("processing (%v) should lag persistence (%v) by ~100us", doneAt, r.ReadyAt)
				}
				if r.DurableAt == 0 {
					t.Error("durable RPC did not report durability")
				}
			})
		})
	}
}

func TestTraditionalWriteWaitsForProcessing(t *testing.T) {
	b := newBench(t, 1024, func(c *Config) { c.ProcessingTime = 100 * time.Microsecond }, nil)
	c := b.client(FaRM)
	b.run(t, func(p *sim.Proc) {
		r, _ := c.Call(p, &Request{Op: OpWrite, Key: 1, Size: 1024})
		if r.ReadyAt.Sub(r.IssuedAt) < 100*time.Microsecond {
			t.Errorf("FaRM write returned in %v, before the 100us processing", r.ReadyAt.Sub(r.IssuedAt))
		}
	})
}

func TestDurableWriteIsDurableAtReady(t *testing.T) {
	for _, kind := range DurableKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			b := newBench(t, 512, nil, nil)
			c := b.client(kind).(*durableClient)
			payload := bytes.Repeat([]byte{0xAA}, 512)
			b.run(t, func(p *sim.Proc) {
				r, err := c.Call(p, &Request{Op: OpWrite, Key: 7, Size: 512, Payload: payload})
				if err != nil {
					t.Error(err)
					return
				}
				// At ReadyAt (== now), the request must be durable in the
				// redo log — either still live (header durable in PM) or,
				// if the fast server already processed it, consumed.
				if c.Log().Appends != 1 {
					t.Fatalf("appends = %d", c.Log().Appends)
				}
				if addr, ok := c.Log().EntryAddr(1); ok {
					img := b.srv.PM.ReadBytes(addr, 16)
					if img[0] == 0 {
						t.Error("log entry header not durable at persist-ack")
					}
				} else if c.Log().Consumes != 1 {
					t.Error("entry neither live nor consumed at persist-ack")
				}
				_ = r
			})
		})
	}
}

func TestDurableThroughputBeatsTraditionalHeavyLoad(t *testing.T) {
	measure := func(kind Kind) float64 {
		b := newBench(t, 1024, func(c *Config) {
			c.ProcessingTime = 100 * time.Microsecond
			c.Workers = 2
		}, nil)
		c := b.client(kind)
		const ops = 200
		var elapsed time.Duration
		b.run(t, func(p *sim.Proc) {
			start := p.Now()
			for i := 0; i < ops; i++ {
				if _, err := c.Call(p, &Request{Op: OpWrite, Key: uint64(i % 64), Size: 1024}); err != nil {
					t.Fatal(err)
				}
			}
			elapsed = p.Now().Sub(start)
		})
		return float64(ops) / elapsed.Seconds()
	}
	farm := measure(FaRM)
	wflush := measure(WFlushRPC)
	if wflush < farm*1.3 {
		t.Fatalf("WFlush-RPC (%.0f ops/s) should beat FaRM (%.0f ops/s) by >30%% under heavy load", wflush, farm)
	}
}

func TestFaSSTMTUCap(t *testing.T) {
	b := newBench(t, 8192, nil, nil)
	c := b.client(FaSST)
	b.run(t, func(p *sim.Proc) {
		if _, err := c.Call(p, &Request{Op: OpWrite, Key: 1, Size: 8192}); err == nil {
			t.Error("FaSST accepted an 8KB request over UD")
		}
		if _, err := c.Call(p, &Request{Op: OpWrite, Key: 1, Size: 1024}); err != nil {
			t.Errorf("FaSST rejected a 1KB request: %v", err)
		}
	})
}

func TestBatchingAmortizes(t *testing.T) {
	for _, kind := range []Kind{DaRPC, ScaleRPC, WFlushRPC, SFlushRPC, WRFlushRPC, SRFlushRPC} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			mkReqs := func() []*Request {
				reqs := make([]*Request, 8)
				for i := range reqs {
					reqs[i] = &Request{Op: OpWrite, Key: uint64(i), Size: 1024}
				}
				return reqs
			}
			// Batched.
			b1 := newBench(t, 1024, nil, nil)
			c1 := b1.client(kind).(BatchClient)
			var batched time.Duration
			b1.run(t, func(p *sim.Proc) {
				start := p.Now()
				for r := 0; r < 10; r++ {
					if _, err := c1.CallBatch(p, mkReqs()); err != nil {
						t.Fatal(err)
					}
				}
				batched = p.Now().Sub(start)
			})
			// Unbatched.
			b2 := newBench(t, 1024, nil, nil)
			c2 := b2.client(kind)
			var single time.Duration
			b2.run(t, func(p *sim.Proc) {
				start := p.Now()
				for r := 0; r < 10; r++ {
					for _, req := range mkReqs() {
						if _, err := c2.Call(p, req); err != nil {
							t.Fatal(err)
						}
					}
				}
				single = p.Now().Sub(start)
			})
			if batched >= single {
				t.Errorf("batching did not help: batched=%v single=%v", batched, single)
			}
		})
	}
}

func TestPipelinedDurableWritesStayOrdered(t *testing.T) {
	// Issue many writes back-to-back (each returning at persist-ack);
	// the server must process and consume all of them.
	b := newBench(t, 128, nil, nil)
	c := b.client(WFlushRPC).(*durableClient)
	const ops = 64
	b.run(t, func(p *sim.Proc) {
		var last *Response
		for i := 0; i < ops; i++ {
			r, err := c.Call(p, &Request{Op: OpWrite, Key: uint64(i), Size: 128})
			if err != nil {
				t.Fatal(err)
			}
			last = r
		}
		last.Done.Wait(p)
	})
	// Give the remaining responses time to drain.
	b.k.Run()
	if got := c.Log().Outstanding(); got != 0 {
		t.Fatalf("%d log entries never consumed", got)
	}
	if b.s.Handled != ops {
		t.Fatalf("server handled %d of %d", b.s.Handled, ops)
	}
}

func TestThrottleOnSmallRing(t *testing.T) {
	// A tiny log ring forces the §4.2 back-pressure path; the client must
	// make progress anyway.
	b := newBench(t, 128, func(c *Config) {
		c.LogBytes = 4096
		c.ThrottleOutstanding = 4
	}, nil)
	c := b.client(WFlushRPC)
	b.run(t, func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			if _, err := c.Call(p, &Request{Op: OpWrite, Key: uint64(i % 8), Size: 128}); err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestScaleRPCWarmupInterleaving(t *testing.T) {
	b := newBench(t, 256, func(c *Config) { c.ScaleRPCProcessPhases = 5 }, nil)
	c := b.client(ScaleRPC)
	var latencies []time.Duration
	b.run(t, func(p *sim.Proc) {
		for i := 0; i < 12; i++ {
			r, err := c.Call(p, &Request{Op: OpWrite, Key: 1, Size: 256})
			if err != nil {
				t.Fatal(err)
			}
			latencies = append(latencies, r.ReadyAt.Sub(r.IssuedAt))
		}
	})
	// Calls 0 and 6 are warm-ups: strictly slower than their process-phase
	// neighbours (extra RTT for the server-side read).
	if latencies[0] <= latencies[1] || latencies[6] <= latencies[7] {
		t.Fatalf("warm-up calls not slower: %v", latencies)
	}
}

func TestRFPPollsUntilResult(t *testing.T) {
	b := newBench(t, 256, func(c *Config) { c.ProcessingTime = 50 * time.Microsecond }, nil)
	c := b.client(RFP)
	b.run(t, func(p *sim.Proc) {
		r, err := c.Call(p, &Request{Op: OpWrite, Key: 3, Size: 256})
		if err != nil {
			t.Fatal(err)
		}
		if r.ReadyAt.Sub(r.IssuedAt) < 50*time.Microsecond {
			t.Fatalf("RFP returned before processing: %v", r.ReadyAt.Sub(r.IssuedAt))
		}
	})
}

func TestSendBasedSlowerThanWriteBasedLargeObjects(t *testing.T) {
	// Lesson 1 of §5.2: one-sided beats two-sided for large payloads.
	lat := func(kind Kind) time.Duration {
		b := newBench(t, 65536, nil, nil)
		c := b.client(kind)
		var total time.Duration
		b.run(t, func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				r, err := c.Call(p, &Request{Op: OpWrite, Key: 1, Size: 65536})
				if err != nil {
					t.Fatal(err)
				}
				total += r.ReadyAt.Sub(r.IssuedAt)
			}
		})
		return total / 10
	}
	if w, s := lat(FaRM), lat(DaRPC); s <= w {
		t.Fatalf("DaRPC 64KB latency (%v) should exceed FaRM (%v)", s, w)
	}
}

func TestWFlushFasterThanWRFlushOnLatency(t *testing.T) {
	// Sender-initiated vs receiver-initiated: similar, but receiver-init
	// pays poll+notify where WFlush's NIC acks directly; under an idle
	// network WFlush should be at most slightly faster — both must be in
	// the same ballpark (lesson 3).
	lat := func(kind Kind) time.Duration {
		b := newBench(t, 1024, nil, nil)
		c := b.client(kind)
		var total time.Duration
		b.run(t, func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				r, err := c.Call(p, &Request{Op: OpWrite, Key: 1, Size: 1024})
				if err != nil {
					t.Fatal(err)
				}
				total += r.ReadyAt.Sub(r.IssuedAt)
			}
		})
		return total / 50
	}
	w, wr := lat(WFlushRPC), lat(WRFlushRPC)
	ratio := float64(wr) / float64(w)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("W-RFlush (%v) and WFlush (%v) should be comparable; ratio %.2f", wr, w, ratio)
	}
}

func TestDurableReadsReturnData(t *testing.T) {
	for _, kind := range DurableKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			b := newBench(t, 300, nil, nil)
			c := b.client(kind)
			payload := bytes.Repeat([]byte{9}, 300)
			b.run(t, func(p *sim.Proc) {
				w, err := c.Call(p, &Request{Op: OpWrite, Key: 5, Size: 300, Payload: payload})
				if err != nil {
					t.Fatal(err)
				}
				w.Done.Wait(p)
				r, err := c.Call(p, &Request{Op: OpRead, Key: 5, Size: 300, Payload: payload})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(r.Data, payload) {
					t.Errorf("durable read returned wrong data (%d bytes)", len(r.Data))
				}
			})
		})
	}
}

func TestNativeSFlushMode(t *testing.T) {
	b := newBench(t, 512, nil, func(p *rnic.Params) { p.EmulateFlush = false })
	c := b.client(SFlushRPC)
	payload := bytes.Repeat([]byte{3}, 512)
	b.run(t, func(p *sim.Proc) {
		r, err := c.Call(p, &Request{Op: OpWrite, Key: 2, Size: 512, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		r.Done.Wait(p)
		rd, err := c.Call(p, &Request{Op: OpRead, Key: 2, Size: 512, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rd.Data, payload) {
			t.Error("native SFlush round trip corrupted data")
		}
	})
}

func TestScanOp(t *testing.T) {
	b := newBench(t, 64, nil, nil)
	c := b.client(FaRM)
	b.run(t, func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			pl := bytes.Repeat([]byte{byte(i + 1)}, 64)
			r, err := c.Call(p, &Request{Op: OpWrite, Key: uint64(10 + i), Size: 64, Payload: pl})
			if err != nil {
				t.Fatal(err)
			}
			r.Done.Wait(p)
		}
		r, err := c.Call(p, &Request{Op: OpScan, Key: 10, Size: 64, ScanLen: 4, Payload: []byte{1}})
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Data) != 256 {
			t.Fatalf("scan returned %d bytes, want 256", len(r.Data))
		}
		if r.Data[0] != 1 || r.Data[255] != 4 {
			t.Fatal("scan data wrong")
		}
	})
}

// TestAllSystemsAllModes runs the write/read round trip across the model's
// mode matrix: emulated vs native primitives, DDIO off vs on. Every system
// must stay correct in every mode.
func TestAllSystemsAllModes(t *testing.T) {
	for _, native := range []bool{false, true} {
		for _, ddio := range []bool{false, true} {
			for _, kind := range allKinds() {
				kind, native, ddio := kind, native, ddio
				t.Run(fmt.Sprintf("%v/native=%v/ddio=%v", kind, native, ddio), func(t *testing.T) {
					b := newBench(t, 256, nil, func(p *rnic.Params) {
						p.EmulateFlush = !native
						p.DDIO = ddio
					})
					c := b.client(kind)
					payload := bytes.Repeat([]byte{0x3C}, 256)
					b.run(t, func(p *sim.Proc) {
						w, err := c.Call(p, &Request{Op: OpWrite, Key: 11, Size: 256, Payload: payload})
						if err != nil {
							t.Error(err)
							return
						}
						w.Done.Wait(p)
						rd, err := c.Call(p, &Request{Op: OpRead, Key: 11, Size: 256, Payload: []byte{}})
						if err != nil {
							t.Error(err)
							return
						}
						if !bytes.Equal(rd.Data, payload) {
							t.Errorf("round trip mismatch (%d bytes back)", len(rd.Data))
						}
					})
				})
			}
		}
	}
}

// A read-only batch must travel as opBatchRO: no flush acknowledgement, no
// redo-log entry image persisted — only the ctrl words move (§5.5). A batch
// holding even one write must engage the full durability machinery.
func TestBatchMutatingDerivedFromContents(t *testing.T) {
	for _, kind := range DurableKinds {
		kind := kind
		t.Run(kind.String()+"/read-only", func(t *testing.T) {
			// Native flush mode so the flush-ack counter is live (the
			// default emulates Flush with a read-after-write).
			b := newBench(t, 256, nil, func(p *rnic.Params) { p.EmulateFlush = false })
			c := b.client(kind).(BatchClient)
			b.run(t, func(p *sim.Proc) {
				// Populate so the batched reads hit real objects.
				w, err := c.Call(p, &Request{Op: OpWrite, Key: 3, Size: 256, Payload: bytes.Repeat([]byte{0x11}, 256)})
				if err != nil {
					t.Fatal(err)
				}
				w.Done.Wait(p)
				acksBefore := b.srv.NIC.FlushAcks
				persistBefore := b.srv.PM.PersistBytes
				reqs := make([]*Request, 8)
				for i := range reqs {
					reqs[i] = &Request{Op: OpRead, Key: 3, Size: 256}
				}
				rs, err := c.CallBatch(p, reqs)
				if err != nil {
					t.Fatal(err)
				}
				rs[0].Done.Wait(p)
				if got := b.srv.NIC.FlushAcks - acksBefore; got != 0 {
					t.Errorf("read-only batch triggered %d flush acks", got)
				}
				// The frame (8 reads x 32B headers) must never reach PM;
				// at most the log's 16B of ctrl words persist on consume.
				frame, hasWrite := makeBatchFrame(reqs)
				if hasWrite {
					t.Fatal("all-read batch classified as mutating")
				}
				if frame.Op != opBatchRO {
					t.Fatalf("all-read batch framed as %d", frame.Op)
				}
				if delta := b.srv.PM.PersistBytes - persistBefore; delta >= int64(reqWireBytes(frame)) {
					t.Errorf("read-only batch persisted %d bytes to PM", delta)
				}
				if b.s.Store.Reads < 8 {
					t.Errorf("only %d constituent reads applied", b.s.Store.Reads)
				}
			})
		})
		t.Run(kind.String()+"/mutating", func(t *testing.T) {
			b := newBench(t, 256, nil, func(p *rnic.Params) { p.EmulateFlush = false })
			c := b.client(kind).(BatchClient)
			b.run(t, func(p *sim.Proc) {
				acksBefore := b.srv.NIC.FlushAcks
				reqs := make([]*Request, 8)
				payloads := make([][]byte, 8)
				for i := range reqs {
					payloads[i] = bytes.Repeat([]byte{byte(0x20 + i)}, 256)
					reqs[i] = &Request{Op: OpWrite, Key: uint64(10 + i), Size: 256, Payload: payloads[i]}
				}
				rs, err := c.CallBatch(p, reqs)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range rs {
					if r.DurableAt == 0 {
						t.Fatal("mutating batch reported no durability")
					}
				}
				switch kind {
				case WFlushRPC, SFlushRPC:
					if b.srv.NIC.FlushAcks == acksBefore {
						t.Error("mutating batch produced no flush ack")
					}
				}
				rs[0].Done.Wait(p)
				for i, want := range payloads {
					rd, err := c.Call(p, &Request{Op: OpRead, Key: uint64(10 + i), Size: 256, Payload: []byte{}})
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(rd.Data, want) {
						t.Errorf("constituent write %d not applied", i)
					}
				}
			})
		})
	}
}

// The batch frame body round-trips through decodeBatch losslessly — the
// recovery path depends on it (the volatile stash dies with the client).
func TestBatchFrameRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Op: OpWrite, Key: 5, Size: 64, Payload: bytes.Repeat([]byte{0xA5}, 64)},
		{Op: OpRead, Key: 9, Size: 128},
		{Op: OpWrite, Key: 6, Size: 32, Payload: bytes.Repeat([]byte{0x5A}, 32)},
	}
	frame, hasWrite := makeBatchFrame(reqs)
	if !hasWrite || frame.Op != opBatch {
		t.Fatalf("frame op=%d hasWrite=%v", frame.Op, hasWrite)
	}
	got := decodeBatch(frame.Payload)
	if len(got) != len(reqs) {
		t.Fatalf("decoded %d of %d requests", len(got), len(reqs))
	}
	for i, r := range got {
		want := reqs[i]
		if r.Op != want.Op || r.Key != want.Key || r.Size != want.Size {
			t.Errorf("req %d header mismatch: %+v vs %+v", i, r, want)
		}
		if want.Op == OpWrite && !bytes.Equal(r.Payload, want.Payload) {
			t.Errorf("req %d payload mismatch", i)
		}
	}
}
