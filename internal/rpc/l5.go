package rpc

import (
	"encoding/binary"

	"prdma/internal/host"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// l5Client implements L5's RPC model (Fig. 2(e)): the sender issues two RDMA
// writes — the request data, then a small valid flag — and the receiver
// polls for the flag before processing. The response returns via an RDMA
// write to the sender's ring.
type l5Client struct {
	*conn
	flagRing int64
}

// l5FlagBytes is the valid-flag write size.
const l5FlagBytes = 8

// NewL5 connects an L5-style client from cli to srv.
func NewL5(cli *host.Host, srv *Server, cfg Config) Client {
	c := &l5Client{conn: newConn(L5, cli, srv, cfg, rnic.RC)}
	var err error
	c.flagRing, err = srv.H.DRAMArena.Alloc(int64(cfg.RingSlots) * l5FlagBytes)
	if err != nil {
		panic(err)
	}
	c.startWriteDrain()
	c.startPoller()
	return c
}

// startPoller polls for valid flags; data writes (which RC delivers first)
// are stashed until their flag lands.
func (c *l5Client) startPoller() {
	c.srv.H.K.Go(c.srv.H.Name+"-l5-poll", func(p *sim.Proc) {
		stash := make(map[uint64][]byte)
		for !c.closed {
			arr := c.sq.Arrivals.Pop(p)
			c.srv.H.PollDelay(p)
			if arr.N > l5FlagBytes {
				seq, _ := decodeReq(arr.Data)
				stash[seq] = arr.Data
				continue
			}
			seq := binary.LittleEndian.Uint64(arr.Data)
			data, ok := stash[seq]
			if !ok {
				continue // flag without data: model bug guard
			}
			delete(stash, seq)
			s, req := decodeReq(data)
			c.srv.enqueue(workItem{req: req, respond: c.respondWrite(s, req)})
		}
	})
}

func (c *l5Client) Call(p *sim.Proc, req *Request) (*Response, error) {
	issued := p.Now()
	seq := c.nextSeq()
	f := c.await(seq)
	c.cli.Post(p)
	c.cq.WriteAsync(c.reqSlot(seq), reqWireBytes(req), encodeReq(seq, req))
	flag := make([]byte, l5FlagBytes)
	binary.LittleEndian.PutUint64(flag, seq)
	c.cli.Post(p)
	c.cq.WriteAsync(c.flagRing+int64(int(seq)%c.cfg.RingSlots)*l5FlagBytes, l5FlagBytes, flag)
	rm := f.Wait(p)
	return traditionalResponse(issued, rm, p.K), nil
}
