package rpc

import (
	"prdma/internal/host"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// scaleClient implements ScaleRPC (Fig. 2(g)): connections are time-sliced
// into a warm-up phase and process phases. In the warm-up, the sender only
// writes a descriptor holding the local address of the request; the receiver
// fetches the payload with an RDMA read, processes it, and writes back a
// completion. Process-phase calls then behave like FaRM. The paper
// interleaves one warm-up per 100 process calls (§5.1).
type scaleClient struct {
	*conn
	calls int
	// stageBuf is the client-DRAM staging area the server reads from
	// during warm-ups.
	stageBuf int64
}

// warmupMark tags warm-up descriptors (stored in the ScanLen header field,
// which warm-up descriptors do not otherwise use).
const warmupMark = 0x7FFFFFFF

// NewScaleRPC connects a ScaleRPC-style client from cli to srv.
func NewScaleRPC(cli *host.Host, srv *Server, cfg Config) Client {
	c := &scaleClient{conn: newConn(ScaleRPC, cli, srv, cfg, rnic.RC)}
	var err error
	c.stageBuf, err = cli.DRAMArena.Alloc(int64(cfg.SlotSize))
	if err != nil {
		panic(err)
	}
	c.startWriteDrain()
	c.startPoller()
	return c
}

func (c *scaleClient) startPoller() {
	c.srv.H.K.Go(c.srv.H.Name+"-scale-poll", func(p *sim.Proc) {
		for !c.closed {
			arr := c.sq.Arrivals.Pop(p)
			c.srv.H.PollDelay(p)
			seq, req := decodeReq(arr.Data)
			if req.ScanLen == warmupMark {
				// Warm-up: fetch the real request from the client.
				c.srv.H.Post(p)
				b := c.sq.Read(p, c.stageBuf, req.Size)
				seq, req = decodeReq(b)
				var reqs []*Request
				if isBatchOp(req.Op) {
					reqs = c.batchReqs(seq, req)
				}
				c.srv.enqueue(workItem{req: req, reqs: reqs, respond: c.respondWrite(seq, req)})
				continue
			}
			var reqs []*Request
			if isBatchOp(req.Op) {
				reqs = c.batchReqs(seq, req)
			}
			c.srv.enqueue(workItem{req: req, reqs: reqs, respond: c.respondWrite(seq, req)})
		}
	})
}

func (c *scaleClient) Call(p *sim.Proc, req *Request) (*Response, error) {
	issued := p.Now()
	seq := c.nextSeq()
	f := c.await(seq)
	phases := c.cfg.ScaleRPCProcessPhases
	if phases <= 0 {
		phases = 100
	}
	warm := c.calls%(phases+1) == 0
	c.calls++
	if warm {
		// Stage the request locally, then write only its descriptor.
		c.cli.DRAM.Write(c.stageBuf, encodeReq(seq, req))
		desc := &Request{Op: req.Op, Key: req.Key, Size: reqWireBytes(req), ScanLen: warmupMark}
		c.cli.Post(p)
		c.cq.WriteAsync(c.reqSlot(seq), reqHeaderBytes, encodeReq(seq, desc))
	} else {
		c.cli.Post(p)
		c.cq.WriteAsync(c.reqSlot(seq), reqWireBytes(req), encodeReq(seq, req))
	}
	rm := f.Wait(p)
	return traditionalResponse(issued, rm, p.K), nil
}

// CallBatch issues a process-phase batch as one large write (ScaleRPC's
// batching, Fig. 19).
func (c *scaleClient) CallBatch(p *sim.Proc, reqs []*Request) ([]*Response, error) {
	issued := p.Now()
	seq := c.nextSeq()
	breq, _ := c.stashBatch(seq, reqs)
	f := c.await(seq)
	c.cli.Post(p)
	c.calls++
	c.cq.WriteAsync(c.reqSlot(seq), reqWireBytes(breq), encodeReq(seq, breq))
	rm := f.Wait(p)
	out := make([]*Response, len(reqs))
	for i := range reqs {
		out[i] = traditionalResponse(issued, rm, p.K)
	}
	return out, nil
}
