package rpc

import (
	"fmt"

	"prdma/internal/host"
)

// New connects a client of the given kind from cli to srv.
func New(kind Kind, cli *host.Host, srv *Server, cfg Config) Client {
	switch kind {
	case L5:
		return NewL5(cli, srv, cfg)
	case RFP:
		return NewRFP(cli, srv, cfg)
	case FaSST:
		return NewFaSST(cli, srv, cfg)
	case Octopus:
		return NewOctopus(cli, srv, cfg)
	case FaRM:
		return NewFaRM(cli, srv, cfg)
	case ScaleRPC:
		return NewScaleRPC(cli, srv, cfg)
	case DaRPC:
		return NewDaRPC(cli, srv, cfg)
	case Herd:
		return NewHerd(cli, srv, cfg)
	case LITE:
		return NewLITE(cli, srv, cfg)
	case SRFlushRPC, SFlushRPC, WRFlushRPC, WFlushRPC:
		return NewDurable(kind, cli, srv, cfg)
	case OctopusWFlush:
		return NewOctopusDurable(cli, srv, cfg)
	case Hotpot:
		return NewHotpot(cli, srv, cfg)
	}
	panic(fmt.Sprintf("rpc: unknown kind %v (Mojim needs two servers: use NewMojim)", kind))
}
