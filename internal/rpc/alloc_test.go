package rpc

import (
	"testing"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// echoBench builds a one-client one-server cluster without *testing.T so
// both benchmarks and AllocsPerRun tests can drive it.
type echoBench struct {
	k *sim.Kernel
	c Client
}

func newEchoBench(kind Kind, objSize int) (*echoBench, error) {
	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), 7)
	np := rnic.DefaultParams()
	cli := host.New(k, "cli", net, host.DefaultParams(), pmem.DefaultParams(), np)
	srv := host.New(k, "srv", net, host.DefaultParams(), pmem.DefaultParams(), np)
	store, err := NewStore(srv, 128, objSize)
	if err != nil {
		return nil, err
	}
	cfg := DefaultConfig()
	s := NewServer(srv, store, cfg)
	return &echoBench{k: k, c: New(kind, cli, s, cfg)}, nil
}

// echo drives n durable write round trips (call + wait for server-side
// processing) and returns the first error.
func (e *echoBench) echo(n, size int, payload []byte) error {
	var firstErr error
	e.k.Go("driver", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			r, err := e.c.Call(p, &Request{Op: OpWrite, Key: uint64(i % 128), Size: size, Payload: payload})
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			r.Done.Wait(p)
		}
	})
	e.k.Run()
	return firstErr
}

// TestDurableEchoAllocRegression pins the steady-state allocation cost of a
// full durable-RPC write round trip for every durable family. With the
// pooled data plane warm (wire messages, fabric envelopes, NIC jobs, retry
// timers, entry images, response headers), the remaining allocations are
// dominated by per-op futures/conds in the sim layer plus the response
// struct, none of which are pooled (they escape to callers).
//
// Measured on the reference toolchain: WFlush ≈ 35, SFlush ≈ 37,
// W-RFlush ≈ 29, S-RFlush ≈ 30 allocs/op. The seed tree spent 88–108 on
// the same loop, so the ceiling of 55 both leaves headroom for toolchain
// drift and still proves the ≥30% reduction this PR claims.
func TestDurableEchoAllocRegression(t *testing.T) {
	const size = 1024
	const ceiling = 55.0
	for _, kind := range DurableKinds {
		t.Run(kind.String(), func(t *testing.T) {
			e, err := newEchoBench(kind, size)
			if err != nil {
				t.Fatal(err)
			}
			payload := make([]byte, size)
			if err := e.echo(200, size, payload); err != nil {
				t.Fatal(err) // warm the pools and the event heap
			}
			const rounds = 100
			per := testing.AllocsPerRun(3, func() {
				if err := e.echo(rounds, size, payload); err != nil {
					t.Fatal(err)
				}
			}) / rounds
			if per > ceiling {
				t.Fatalf("%s echo allocates %.1f objects/op, want <= %.0f", kind, per, ceiling)
			}
			t.Logf("%s: %.1f allocs/op", kind, per)
		})
	}
}

// BenchmarkDurableEcho measures the full durable-RPC write round trip
// (encode, log append, NIC/fabric hops, PM persist, response) for each
// durable family at a 1 KiB object size.
func BenchmarkDurableEcho(b *testing.B) {
	for _, kind := range DurableKinds {
		b.Run(kind.String(), func(b *testing.B) {
			const size = 1024
			e, err := newEchoBench(kind, size)
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, size)
			b.ReportAllocs()
			b.ResetTimer()
			if err := e.echo(b.N, size, payload); err != nil {
				b.Error(err)
			}
		})
	}
}
