package rpc

import (
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// Hotpot is the Table 1 entry for Hotpot (SoCC '17): a distributed shared
// persistent memory system whose writes run a multi-phase commit through
// the data server's CPU.
const Hotpot = Kind(101)

// hotpotClient models Hotpot's write path as a two-phase send-based RPC:
//
//	phase 1: the client sends the data; the server CPU persists it into a
//	         staging area and acknowledges;
//	phase 2: the client sends a commit; the server atomically commits
//	         (applies the staged data to its home) and acknowledges.
//
// Durability is only certain after the second acknowledgement — two full
// round trips with the receiver CPU on both, which is exactly the overhead
// the paper contrasts its one-round NIC-acknowledged primitives against.
// Reads are ordinary one-round send RPCs.
type hotpotClient struct {
	*conn
	// staged holds phase-1 payloads awaiting commit, keyed by sequence.
	staged map[uint64]*Request
	// stagingBuf is the PM staging area the server persists into.
	stagingBuf int64
}

// opHotpotPrepare and opHotpotCommit are the protocol's internal ops.
const (
	opHotpotPrepare Op = 210
	opHotpotCommit  Op = 211
)

// NewHotpot connects a Hotpot-style client from cli to srv.
func NewHotpot(cli *host.Host, srv *Server, cfg Config) Client {
	c := &hotpotClient{
		conn:   newConn(Hotpot, cli, srv, cfg, rnic.RC),
		staged: make(map[uint64]*Request),
	}
	var err error
	c.stagingBuf, err = srv.H.PMArena.Alloc(int64(cfg.RingSlots * cfg.SlotSize))
	if err != nil {
		panic(err)
	}
	for i := 0; i < cfg.RingSlots; i++ {
		c.sq.PostRecv(c.reqSlot(uint64(i)), cfg.SlotSize)
	}
	c.postClientRecvs()
	c.startRecvDrain(true)
	c.startServer()
	return c
}

// stageSlot is the staging address for a sequence number.
func (c *hotpotClient) stageSlot(seq uint64) int64 {
	return c.stagingBuf + int64(int(seq)%c.cfg.RingSlots)*int64(c.cfg.SlotSize)
}

// startServer runs the receiver loop: prepares persist to staging, commits
// apply the staged request through the worker pool.
func (c *hotpotClient) startServer() {
	sq := c.sq
	c.srv.H.K.Go(c.srv.H.Name+"-hotpot-recv", func(p *sim.Proc) {
		for !c.closed && !sq.Dead() {
			rcv := sq.RecvCQ.Pop(p)
			c.srv.H.PollDelay(p)
			if sq.Dead() {
				return
			}
			sq.PostRecv(rcv.Addr, c.cfg.SlotSize)
			seq, req := decodeReq(rcv.Data)
			switch req.Op {
			case opHotpotPrepare:
				// Persist the payload into the staging area (CPU path)
				// and acknowledge phase 1.
				req.Op = OpWrite
				c.staged[seq] = req
				c.srv.H.Memcpy(p, req.Size)
				c.srv.H.PM.PersistSync(p, c.stageSlot(seq), req.Size, req.Payload, pmem.CPU)
				c.srv.H.Post(p)
				sq.SendAsync(respHeaderBytes, encodeResp(seq, nil))
			case opHotpotCommit:
				// Commit: apply the staged write via the worker pool and
				// acknowledge when durable at its home.
				staged, ok := c.staged[seq-1]
				if !ok {
					continue // commit without prepare: protocol bug guard
				}
				delete(c.staged, seq-1)
				c.srv.enqueue(workItem{req: staged, respond: c.respondSend(seq, staged)})
			default:
				c.srv.enqueue(workItem{req: req, respond: c.respondSend(seq, req)})
			}
		}
	})
}

func (c *hotpotClient) Call(p *sim.Proc, req *Request) (*Response, error) {
	issued := p.Now()
	if req.Op != OpWrite {
		seq := c.nextSeq()
		f := c.await(seq)
		c.cli.Post(p)
		c.cq.SendAsync(reqWireBytes(req), encodeReq(seq, req))
		rm := f.Wait(p)
		return traditionalResponse(issued, rm, p.K), nil
	}
	// Phase 1: prepare (data travels here).
	prep := *req
	prep.Op = opHotpotPrepare
	seq1 := c.nextSeq()
	f1 := c.await(seq1)
	c.cli.Post(p)
	c.cq.SendAsync(reqHeaderBytes+req.Size, encodeReq(seq1, &prep))
	f1.Wait(p)
	// Phase 2: commit (seq2 == seq1+1 by construction; the server pairs
	// the commit with the immediately preceding prepare).
	commit := Request{Op: opHotpotCommit, Key: req.Key}
	seq2 := c.nextSeq()
	f2 := c.await(seq2)
	c.cli.Post(p)
	c.cq.SendAsync(reqHeaderBytes, encodeReq(seq2, &commit))
	rm := f2.Wait(p)
	return traditionalResponse(issued, rm, p.K), nil
}
