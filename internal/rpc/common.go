package rpc

import (
	"encoding/binary"
	"fmt"

	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/redolog"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// reqHeaderBytes is the wire header prepended to every request payload:
// seq(8) key(8) size(4) scan(4) op(1) pad(7).
const reqHeaderBytes = 32

// respHeaderBytes is the response header: seq(8) len(4) pad(4).
const respHeaderBytes = 16

// Contents markers carried in request-header byte 25.
const (
	contentsNone   = 0 // synthetic payload: timed but never materialized
	contentsReal   = 1 // payload bytes follow (or: reads want contents back)
	contentsSparse = 2 // uniform flyweight: fill byte in b[26], Size bytes
)

// reqImageBytes returns the materialized length of a request's wire image —
// the byte count encodeReqInto produces (the timed size is reqWireBytes).
func reqImageBytes(req *Request) int {
	if carriesPayload(req.Op) && req.Payload != nil {
		return reqHeaderBytes + len(req.Payload)
	}
	return reqHeaderBytes
}

// putReqHeader writes the 32-byte request header into b. flag is the
// contents marker for byte 25; fill is the sparse fill byte (byte 26).
// Every pad byte is written so a reused scratch buffer yields the same
// image a fresh allocation would.
func putReqHeader(b []byte, seq uint64, req *Request, flag, fill byte) {
	binary.LittleEndian.PutUint64(b[0:], seq)
	binary.LittleEndian.PutUint64(b[8:], req.Key)
	binary.LittleEndian.PutUint32(b[16:], uint32(req.Size))
	binary.LittleEndian.PutUint32(b[20:], uint32(req.ScanLen))
	b[24] = byte(req.Op)
	b[25], b[26], b[27] = flag, fill, 0
	binary.LittleEndian.PutUint32(b[28:], 0)
}

// encodeReqInto serializes req into b, which must be exactly
// reqImageBytes(req) long, and returns b. The alloc-free encodeReq.
func encodeReqInto(b []byte, seq uint64, req *Request) []byte {
	var flag byte = contentsNone
	if req.Payload != nil {
		flag = contentsReal // "real contents": the server materializes results
	}
	putReqHeader(b, seq, req, flag, 0)
	if carriesPayload(req.Op) {
		copy(b[reqHeaderBytes:], req.Payload)
	}
	return b
}

// encodeReq serializes a request. Synthetic payloads (nil) yield a
// header-only buffer; the wire/memory size is still header+Size.
func encodeReq(seq uint64, req *Request) []byte {
	return encodeReqInto(make([]byte, reqImageBytes(req)), seq, req)
}

// decodeReq parses a request from message bytes.
func decodeReq(b []byte) (uint64, *Request) {
	seq := binary.LittleEndian.Uint64(b[0:])
	req := &Request{
		Key:     binary.LittleEndian.Uint64(b[8:]),
		Size:    int(binary.LittleEndian.Uint32(b[16:])),
		ScanLen: int(binary.LittleEndian.Uint32(b[20:])),
		Op:      Op(b[24]),
	}
	if b[25] == contentsSparse {
		// Sparse flyweight: the wire (and any log bytes beyond the header
		// run) carries no payload image; the contents are Size copies of
		// the fill byte. Decoding from a recovered log entry also lands
		// here, which is what makes sparse entries replay correctly even
		// though their payload gap may cover stale reused ring bytes.
		req.Sparse = pmem.SparsePayload{Fill: b[26], Len: req.Size}
		return seq, req
	}
	if len(b) > reqHeaderBytes {
		pl := b[reqHeaderBytes:]
		if len(pl) > req.Size {
			pl = pl[:req.Size] // strip log-entry padding/commit trailer
		}
		req.Payload = pl
	} else if b[25] == contentsReal {
		req.Payload = []byte{} // non-nil: reads want real contents back
	}
	return seq, req
}

// carriesPayload reports whether op's requests carry body bytes beyond the
// header: object contents for writes, control records for OpCtrl,
// serialized constituent requests for batch frames.
func carriesPayload(op Op) bool {
	return op == OpWrite || op == OpCtrl || op == opHotpotPrepare || isBatchOp(op)
}

// reqWireBytes is the timed message size for a request.
func reqWireBytes(req *Request) int {
	if carriesPayload(req.Op) {
		return reqHeaderBytes + req.Size
	}
	return reqHeaderBytes
}

// encodeResp serializes a response.
func encodeResp(seq uint64, data []byte) []byte {
	b := make([]byte, respHeaderBytes+len(data))
	binary.LittleEndian.PutUint64(b[0:], seq)
	binary.LittleEndian.PutUint32(b[8:], uint32(len(data)))
	copy(b[respHeaderBytes:], data)
	return b
}

// decodeResp parses a response.
func decodeResp(b []byte) (uint64, []byte) {
	seq := binary.LittleEndian.Uint64(b[0:])
	n := int(binary.LittleEndian.Uint32(b[8:]))
	if len(b) >= respHeaderBytes+n {
		return seq, b[respHeaderBytes : respHeaderBytes+n]
	}
	return seq, nil
}

// respWireBytes is the timed message size for a response to req.
func respWireBytes(req *Request) int {
	switch req.Op {
	case OpRead:
		return respHeaderBytes + req.Size
	case OpScan:
		n := req.ScanLen
		if n <= 0 {
			n = 1
		}
		return respHeaderBytes + n*req.Size
	case OpCtrl:
		// Control results are small fixed records (status + two words).
		return respHeaderBytes + ctrlRespWire
	default:
		return respHeaderBytes
	}
}

// ctrlRespWire is the timed result size budgeted for an OpCtrl response.
const ctrlRespWire = 64

// respMsg is a matched response.
type respMsg struct {
	data []byte
	at   sim.Time
}

// Server hosts the receive side of one or more RPC connections: the shared
// worker pool and the object store.
type Server struct {
	H     *host.Host
	Store *Store
	Cfg   Config

	// Handler, when set, replaces Store.ApplyFromBuffer as the per-request
	// apply function: services with their own state machine (the pmpool
	// allocation protocol) mount it here and the whole transport — durable
	// logging, crash replay, worker dispatch — is reused unchanged. The
	// handler runs on a worker proc; whatever it returns travels back as
	// the response data. It must persist its own effects before returning:
	// the transport acks durability of the *request*, the handler owns
	// durability of its *state*.
	Handler func(p *sim.Proc, req *Request) []byte

	work *sim.Chan[workItem]

	// Stats.
	Handled int64
}

// workItem is one queued request at the server. A batch carries its
// constituent requests in reqs (req is then the enclosing opBatch frame).
type workItem struct {
	req     *Request
	reqs    []*Request
	respond func(p *sim.Proc, data []byte)
	consume func(at sim.Time)
	// epoch is the server crash epoch at enqueue time: items from before a
	// crash are dropped (their state died with the DRAM work queue).
	epoch int
}

// NewServer starts the worker pool on h.
func NewServer(h *host.Host, store *Store, cfg Config) *Server {
	s := &Server{H: h, Store: store, Cfg: cfg, work: sim.NewChan[workItem](h.K)}
	if s.Cfg.Workers <= 0 {
		s.Cfg.Workers = 1
	}
	for i := 0; i < s.Cfg.Workers; i++ {
		h.K.Go(fmt.Sprintf("%s-worker-%d", h.Name, i), s.workerLoop)
	}
	return s
}

// Declined is a sentinel a Handler returns when the service cannot apply
// requests yet — restarted but not recovered, so applying (and consuming
// the log entry) would discard a durably-acked request before the rebuilt
// state exists to receive it. The worker drops the item without responding
// or consuming: the entry stays durable in the redo log and replays on the
// next reestablish, while live callers time out and retry. Identity of the
// slice is what's checked, so a genuine response can never collide with it.
var Declined = []byte{0}

// declined reports whether a handler returned the Declined sentinel.
func declined(data []byte) bool {
	return len(data) == 1 && &data[0] == &Declined[0]
}

// workerLoop drains the shared work queue.
func (s *Server) workerLoop(p *sim.Proc) {
	for {
		it := s.work.Pop(p)
		if it.epoch != s.H.PM.Epoch() {
			continue // enqueued before a crash: the request is gone
		}
		s.H.Dispatch(p)
		reqs := it.reqs
		if reqs == nil {
			reqs = []*Request{it.req}
		}
		var data []byte
		for _, r := range reqs {
			if s.Cfg.ProcessingTime > 0 {
				// The paper injects a fixed 100 µs to emulate real
				// RPC logic (heavy load, following DaRPC).
				s.H.ComputeExact(p, s.Cfg.ProcessingTime)
			}
			if s.Handler != nil {
				data = s.Handler(p, r)
			} else {
				data = s.Store.ApplyFromBuffer(p, r)
			}
		}
		if it.epoch != s.H.PM.Epoch() {
			continue // the server crashed mid-processing: work lost
		}
		if declined(data) {
			continue // service not recovered yet: leave the entry in the log
		}
		if it.respond != nil {
			it.respond(p, data)
		}
		if it.consume != nil {
			it.consume(p.Now())
		}
		s.Handled += int64(len(reqs))
	}
}

// enqueue hands a request to the worker pool.
func (s *Server) enqueue(it workItem) {
	it.epoch = s.H.PM.Epoch()
	s.work.Push(it)
}

// QueueDepth returns the number of waiting requests.
func (s *Server) QueueDepth() int { return s.work.Len() }

// Crash discards the volatile work queue (call alongside Host.Crash).
func (s *Server) Crash() { s.work.Drain() }

// conn is the shared state of one client↔server connection.
type conn struct {
	kind Kind
	cli  *host.Host
	srv  *Server
	cfg  Config

	cq *rnic.QP // client-side QP
	sq *rnic.QP // server-side QP

	// reqRing is the request message ring (server memory).
	reqRing int64
	// respRing is the response ring (client DRAM).
	respRing int64

	// log is the connection's redo log (durable RPCs only).
	log *redolog.Log

	// eng is non-nil when the client and server hosts live on different
	// kernels of one sim.Engine (cross-partition connection). The log's
	// accounting then runs on the client's kernel and every hop between the
	// two sides — consume notifications, control-word persists, recv-buffer
	// and reservation registrations — travels as a lookahead-delayed engine
	// message (see NewDurable for the per-family split). All durable
	// families run engine mode; Reestablish additionally requires a
	// serialized engine span, and CallBatch is unsupported.
	eng *sim.Engine

	seq     uint64
	pending map[uint64]*sim.Future[respMsg]
	// batches passes decoded batch contents to the server (see batch.go).
	batches map[uint64][]*Request

	// imgFree pools request/entry image buffers; imgBySeq holds the buffer
	// in flight for each sequence until its response completes (by then the
	// server has applied the request, so nothing aliases the image). respFree
	// and respBySeq do the same for header-only response images — responses
	// that carry data still allocate, because the bytes escape to the caller
	// through Response.Data.
	imgFree   [][]byte
	imgBySeq  map[uint64][]byte
	respFree  [][]byte
	respBySeq map[uint64][]byte

	closed bool
}

// newConn wires QPs and rings. The request ring is server DRAM — durable
// RPCs place their write payloads in the PM redo log directly and only use
// the ring as a message buffer for non-mutating requests.
func newConn(kind Kind, cli *host.Host, srv *Server, cfg Config, tp rnic.Transport) *conn {
	c := &conn{
		kind: kind, cli: cli, srv: srv, cfg: cfg,
		pending:   make(map[uint64]*sim.Future[respMsg]),
		imgBySeq:  make(map[uint64][]byte),
		respBySeq: make(map[uint64][]byte),
	}
	if cli.K != srv.H.K {
		eng := cli.K.Engine()
		if eng == nil || eng != srv.H.K.Engine() {
			panic("rpc: cross-kernel connection requires both hosts on one sim.Engine")
		}
		c.eng = eng
	}
	c.cq = cli.NIC.CreateQP(tp)
	c.sq = srv.H.NIC.CreateQP(tp)
	rnic.Connect(c.cq, c.sq)

	ringBytes := int64(cfg.RingSlots * cfg.SlotSize)
	var err error
	c.reqRing, err = srv.H.DRAMArena.Alloc(ringBytes)
	if err != nil {
		panic(err)
	}
	c.respRing, err = cli.DRAMArena.Alloc(ringBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// newLog attaches a redo log to the connection (durable RPCs). The ring
// bytes always live in the server's PM; the accounting side (Reserve,
// Consume, the FIFO window) runs on whichever kernel issues requests — the
// server's normally, the client's in engine mode, where Reserve must not
// touch server-partition state from the client's kernel.
func (c *conn) newLog() {
	base, err := c.srv.H.PMArena.Alloc(c.cfg.LogBytes)
	if err != nil {
		panic(err)
	}
	logK := c.srv.H.K
	if c.eng != nil {
		logK = c.cli.K
	}
	c.log = redolog.New(logK, c.srv.H.PM, base, c.cfg.LogBytes)
	if c.eng != nil {
		// Control-word persists execute where the PM device lives: hop to
		// the server partition, persist both words, and hop back to settle
		// the durable-span accounting. The extra 2·lookahead lag only
		// delays space reclamation — correctness never depends on it.
		srvK, cliK := c.srv.H.K, c.cli.K
		pm, logBase := c.srv.H.PM, base
		c.log.CtrlPersist = func(at sim.Time, headOff int64, floor uint64, done func()) {
			c.eng.PostAfterLookahead(cliK, srvK, func() {
				t1 := pm.PersistWord(srvK.Now(), logBase, uint64(headOff), pmem.CPU)
				t2 := pm.PersistWord(srvK.Now(), logBase+8, floor, pmem.CPU)
				if t1 > t2 {
					t2 = t1
				}
				srvK.Schedule(t2, func() { c.eng.PostAfterLookahead(srvK, cliK, done) })
			})
		}
	}
}

func (c *conn) nextSeq() uint64 {
	c.seq++
	return c.seq
}

func (c *conn) reqSlot(seq uint64) int64 {
	return c.reqRing + int64(int(seq)%c.cfg.RingSlots)*int64(c.cfg.SlotSize)
}

func (c *conn) respSlot(seq uint64) int64 {
	return c.respRing + int64(int(seq)%c.cfg.RingSlots)*int64(c.cfg.SlotSize)
}

// await registers a response future for seq.
func (c *conn) await(seq uint64) *sim.Future[respMsg] {
	f := sim.NewFuture[respMsg](c.cli.K)
	c.pending[seq] = f
	return f
}

// getImage returns a pooled buffer of n bytes registered under seq; it
// returns to the pool when seq's response completes. Until then the buffer
// may be aliased by the wire message, the device persist pipeline, and the
// server-side request view, all of which quiesce before the response.
func (c *conn) getImage(seq uint64, n int) []byte {
	var b []byte
	if l := len(c.imgFree); l > 0 {
		b = c.imgFree[l-1]
		c.imgFree = c.imgFree[:l-1]
	}
	if cap(b) < n {
		b = make([]byte, n)
	}
	b = b[:n]
	c.imgBySeq[seq] = b
	return b
}

// complete resolves the pending future for seq and releases any pooled
// request/response images registered under it. Retransmit timers may still
// reference the buffers, but a settled transfer is never re-read — and an
// unsettled one means the response has not arrived, so complete has not run.
func (c *conn) complete(seq uint64, data []byte, at sim.Time) {
	if b, ok := c.imgBySeq[seq]; ok {
		delete(c.imgBySeq, seq)
		c.imgFree = append(c.imgFree, b)
	}
	if b, ok := c.respBySeq[seq]; ok {
		delete(c.respBySeq, seq)
		c.respFree = append(c.respFree, b)
	}
	if f, ok := c.pending[seq]; ok {
		delete(c.pending, seq)
		f.Complete(respMsg{data: data, at: at})
	}
}

// startWriteDrain consumes response writes landing in the client's response
// ring and matches them to pending futures.
func (c *conn) startWriteDrain() {
	cq := c.cq // bind to this connection incarnation
	c.cli.K.Go(c.cli.Name+"-resp-drain", func(p *sim.Proc) {
		for !c.closed && !cq.Dead() {
			arr := cq.Arrivals.Pop(p)
			c.cli.PollDelay(p)
			if arr.Data == nil {
				continue
			}
			seq, data := decodeResp(arr.Data)
			c.complete(seq, data, p.Now())
		}
	})
}

// startRecvDrain consumes response sends (and write-imms) on the client QP.
func (c *conn) startRecvDrain(repostDRAM bool) {
	cq := c.cq // bind to this connection incarnation
	c.cli.K.Go(c.cli.Name+"-resp-recv", func(p *sim.Proc) {
		for !c.closed && !cq.Dead() {
			rcv := cq.RecvCQ.Pop(p)
			c.cli.PollDelay(p)
			if repostDRAM && !rcv.IsImm {
				cq.PostRecv(rcv.Addr, c.cfg.SlotSize)
			}
			if rcv.Data == nil {
				continue
			}
			seq, data := decodeResp(rcv.Data)
			c.complete(seq, data, p.Now())
		}
	})
}

// postClientRecvs posts the client's receive buffers for send-based
// responses.
func (c *conn) postClientRecvs() {
	for i := 0; i < c.cfg.RingSlots; i++ {
		c.cq.PostRecv(c.respSlot(uint64(i)), c.cfg.SlotSize)
	}
}

// encodeRespPooled serializes a response like encodeResp, but draws from the
// connection's header-only buffer pool when there is no data to carry — the
// write-path case, where the reply is pure control traffic. The buffer is
// released when seq completes at the client. Responses with data still
// allocate: their bytes escape to the caller through Response.Data. Engine
// mode always allocates: the responder runs on the server's kernel, and the
// pool (respFree/respBySeq) is client-kernel state it must not touch.
func (c *conn) encodeRespPooled(seq uint64, data []byte) []byte {
	if len(data) > 0 || c.eng != nil {
		return encodeResp(seq, data)
	}
	var b []byte
	if l := len(c.respFree); l > 0 {
		b = c.respFree[l-1]
		c.respFree = c.respFree[:l-1]
	} else {
		b = make([]byte, respHeaderBytes)
	}
	binary.LittleEndian.PutUint64(b[0:], seq)
	binary.LittleEndian.PutUint64(b[8:], 0) // len + pad
	c.respBySeq[seq] = b
	return b
}

// respondWrite returns a responder that writes the result into the client's
// response ring (the write-based reply path of Fig. 2).
func (c *conn) respondWrite(seq uint64, req *Request) func(p *sim.Proc, data []byte) {
	return func(p *sim.Proc, data []byte) {
		c.srv.H.Post(p)
		c.sq.WriteAsync(c.respSlot(seq), respWireBytes(req), c.encodeRespPooled(seq, data))
	}
}

// respondSend returns a responder that sends the result (two-sided reply).
func (c *conn) respondSend(seq uint64, req *Request) func(p *sim.Proc, data []byte) {
	return func(p *sim.Proc, data []byte) {
		c.srv.H.Post(p)
		c.sq.SendAsync(respWireBytes(req), c.encodeRespPooled(seq, data))
	}
}

// respondWriteImm returns a responder using write-with-immediate (Octopus).
func (c *conn) respondWriteImm(seq uint64, req *Request) func(p *sim.Proc, data []byte) {
	return func(p *sim.Proc, data []byte) {
		c.srv.H.Post(p)
		c.sq.WriteImmAsync(c.respSlot(seq), respWireBytes(req), c.encodeRespPooled(seq, data), uint32(seq))
	}
}

// traditionalResponse assembles the Response for a fully-synchronous RPC:
// ready, durable and done all coincide with the reply.
func traditionalResponse(issued sim.Time, rm respMsg, k *sim.Kernel) *Response {
	done := sim.NewFuture[sim.Time](k)
	done.Complete(rm.at)
	return &Response{
		Data: rm.data, IssuedAt: issued, ReadyAt: rm.at,
		DurableAt: rm.at, Durable: done, Done: done,
	}
}

// Close tears down the connection's client-side procs.
func (c *conn) Close() { c.closed = true }

func (c *conn) Kind() Kind { return c.kind }
