package rpc

import (
	"prdma/internal/host"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// octopusDurable implements the §4.4.1 case study (Fig. 7(a)): retrofitting
// remote data persistence onto Octopus with the WFlush primitive.
//
// Octopus normally learns an object's address through a write-imm RPC and
// then writes the data one-sided — with no persistence guarantee. The case
// study appends a WFlush to the data write: the sender observes durability
// at the flush ACK, without the receiver's CPU persisting anything.
//
// Unlike the durable RPCs of §4.2, there is no redo log here: the write
// goes straight to the object's PM home. Durability is guaranteed, failure
// *atomicity* is not — this is exactly the gap §4.2 fills, which the case
// study makes measurable.
type octopusDurable struct {
	*conn
	// addrCache caches resolved object addresses (the imm-RPC results),
	// as Octopus clients do.
	addrCache map[uint64]int64
}

// OctopusWFlush is the Kind reported by the case-study client.
const OctopusWFlush = Kind(100)

// NewOctopusDurable connects the Fig. 7(a) case-study client.
func NewOctopusDurable(cli *host.Host, srv *Server, cfg Config) Client {
	c := &octopusDurable{
		conn:      newConn(OctopusWFlush, cli, srv, cfg, rnic.RC),
		addrCache: make(map[uint64]int64),
	}
	c.startRecvDrain(false)
	c.startAddrServer()
	return c
}

// startAddrServer answers the metadata write-imm RPCs: it resolves the
// object's PM address and write-imms it back (the warm-up of Fig. 7(a)).
func (c *octopusDurable) startAddrServer() {
	sq := c.sq
	c.srv.H.K.Go(c.srv.H.Name+"-octopus-wflush-cq", func(p *sim.Proc) {
		for !c.closed && !sq.Dead() {
			rcv := sq.RecvCQ.Pop(p)
			c.srv.H.PollDelay(p)
			if sq.Dead() {
				return
			}
			seq, req := decodeReq(rcv.Data)
			// Address resolution is a metadata lookup, not a data op.
			c.srv.H.Dispatch(p)
			addr := c.srv.Store.Addr(req.Key)
			resp := encodeResp(seq, encodeAddr(addr))
			c.srv.H.Post(p)
			sq.WriteImmAsync(c.respSlot(seq), respHeaderBytes+8, resp, uint32(seq))
		}
	})
}

func encodeAddr(a int64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(a >> (8 * i))
	}
	return b
}

func decodeAddr(b []byte) int64 {
	var a int64
	for i := 0; i < 8 && i < len(b); i++ {
		a |= int64(b[i]) << (8 * i)
	}
	return a
}

// resolve returns the object's remote PM address, using the imm-RPC on a
// cache miss.
func (c *octopusDurable) resolve(p *sim.Proc, key uint64) (int64, error) {
	if a, ok := c.addrCache[key]; ok {
		return a, nil
	}
	seq := c.nextSeq()
	f := c.await(seq)
	c.cli.Post(p)
	c.cq.WriteImmAsync(c.reqSlot(seq), reqHeaderBytes, encodeReq(seq, &Request{Op: OpRead, Key: key}), uint32(seq))
	rm := f.Wait(p)
	addr := decodeAddr(rm.data)
	c.addrCache[key] = addr
	return addr, nil
}

// Call implements the case-study data path: resolve the address (cached
// after the first touch), then write+WFlush directly to the object home.
// Reads use a one-sided RDMA read of the object.
func (c *octopusDurable) Call(p *sim.Proc, req *Request) (*Response, error) {
	issued := p.Now()
	addr, err := c.resolve(p, req.Key)
	if err != nil {
		return nil, err
	}
	done := sim.NewFuture[sim.Time](p.K)
	switch req.Op {
	case OpWrite:
		c.cli.Post(p)
		dur := c.cq.WriteFlush(p, addr, req.Size, req.Payload)
		c.srv.Store.Writes++
		done.Complete(dur)
		return &Response{IssuedAt: issued, ReadyAt: dur, DurableAt: dur, Durable: done, Done: done}, nil
	default:
		c.cli.Post(p)
		data := c.cq.Read(p, addr, req.Size)
		c.srv.Store.Reads++
		now := p.Now()
		done.Complete(now)
		if req.Payload == nil {
			data = nil
		}
		return &Response{Data: data, IssuedAt: issued, ReadyAt: now, DurableAt: now, Durable: done, Done: done}, nil
	}
}
