package rpc

import (
	"errors"
	"time"

	"prdma/internal/sim"
)

// ErrTimeout is returned by CallTimeout when the server did not respond in
// time — in the failure experiments this means the server crashed.
var ErrTimeout = errors.New("rpc: call timed out")

// ErrCrossPartition is returned when an operation cannot run on a
// cross-partition (engine-mode) connection: batching (the batch stash is
// shared client/server state), and reestablishment outside a serialized
// engine span. Callers fall back — unbatched calls, or sim.Engine.Serialize
// around the recovery span — instead of crashing the run.
var ErrCrossPartition = errors.New("rpc: not supported on a cross-partition connection")

// Recoverable is the contract the failure-recovery experiments (§5.4,
// Fig. 12) drive: calls with timeouts, and connection re-establishment
// after a server restart. For durable RPCs, Reestablish also recovers the
// redo log and replays unprocessed-but-durable requests server-side —
// without any client re-transmission, the paper's headline recovery win.
type Recoverable interface {
	Client
	// CallTimeout is Call with a deadline (the RDMA re-transfer interval).
	CallTimeout(p *sim.Proc, req *Request, d time.Duration) (*Response, error)
	// Reestablish rebuilds the connection after the server restarts and
	// returns how many requests were replayed from the redo log. On an
	// engine-mode connection it returns ErrCrossPartition unless the engine
	// is inside a serialized span (recovery needs a global event order).
	Reestablish(p *sim.Proc) (int, error)
}

// CallTimeout implements Recoverable for the durable RPCs.
func (c *durableClient) CallTimeout(p *sim.Proc, req *Request, d time.Duration) (*Response, error) {
	issued := p.Now()
	_, durF, respF, err := c.issue(p, req)
	if err != nil {
		return nil, err
	}
	done := sim.NewFuture[sim.Time](p.K)
	respF.Then(func(rm respMsg) { done.Complete(rm.at) })

	if req.Op == OpWrite {
		dur, ok := durF.WaitTimeout(p, d)
		if !ok {
			return nil, ErrTimeout
		}
		return &Response{IssuedAt: issued, ReadyAt: dur, DurableAt: dur, Durable: durF, Done: done}, nil
	}
	rm, ok := respF.WaitTimeout(p, d)
	if !ok {
		return nil, ErrTimeout
	}
	return readResponse(issued, rm, durF, done), nil
}

// Reestablish rebuilds the durable connection: fresh QPs and rings, redo-log
// recovery from PM, and server-side replay of every recovered entry. If the
// server crashes again mid-recovery, the whole procedure retries against the
// new incarnation.
func (c *durableClient) Reestablish(p *sim.Proc) (int, error) {
	if c.eng != nil && !c.eng.Serialized() {
		// Recovery walks server PM from the client proc and replays into a
		// rebuilt connection — inherently global-order work. The partitioned
		// failover controller serializes the engine around resync spans;
		// anything else must not attempt cross-partition recovery.
		return 0, ErrCrossPartition
	}
	log := c.log
	for {
		epoch := c.srv.H.PM.Epoch()
		// Retire the old connection's procs; they stay parked on dead QPs.
		old := c.conn
		old.closed = true

		nc := newConn(c.kind, old.cli, old.srv, old.cfg, c.cq.Transport)
		nc.log = log
		c.conn = nc
		c.resQueue = nil
		c.wire()

		// Recover the log from PM and replay: the server re-executes
		// durable requests without the client re-sending data (§4.2).
		entries := log.Recover(p)
		if c.srv.H.PM.Epoch() != epoch {
			continue // crashed again mid-recovery: start over
		}
		for _, e := range entries {
			seq, req := decodeReq(e.Payload)
			var respond func(*sim.Proc, []byte)
			if c.kind.SendBased() {
				respond = c.respondSend(seq, req)
			} else {
				respond = c.respondWrite(seq, req)
			}
			c.enqueueLogged(seq, req, respond)
		}
		return len(entries), nil
	}
}

// CallTimeout implements Recoverable for the FaRM baseline.
func (c *farmClient) CallTimeout(p *sim.Proc, req *Request, d time.Duration) (*Response, error) {
	issued := p.Now()
	seq := c.nextSeq()
	f := c.await(seq)
	c.cli.Post(p)
	c.cq.WriteAsync(c.reqSlot(seq), reqWireBytes(req), encodeReq(seq, req))
	rm, ok := f.WaitTimeout(p, d)
	if !ok {
		delete(c.pending, seq)
		return nil, ErrTimeout
	}
	return traditionalResponse(issued, rm, p.K), nil
}

// Reestablish rebuilds the FaRM connection. Traditional RPCs have no log:
// nothing replays, and the client must re-send every incomplete request.
func (c *farmClient) Reestablish(p *sim.Proc) (int, error) {
	old := c.conn
	old.closed = true
	nc := newConn(FaRM, old.cli, old.srv, old.cfg, c.cq.Transport)
	c.conn = nc
	c.startWriteDrain()
	startRingPoller(c.conn)
	return 0, nil
}
