package rpc

import (
	"bytes"
	"testing"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

func TestHotpotTwoPhaseWrite(t *testing.T) {
	b := newBench(t, 512, nil, nil)
	c := NewHotpot(b.cli, b.s, b.s.Cfg)
	payload := bytes.Repeat([]byte{0x55}, 512)
	b.run(t, func(p *sim.Proc) {
		w, err := c.Call(p, &Request{Op: OpWrite, Key: 3, Size: 512, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		// Two round trips: clearly slower than a single-round send RPC.
		if w.ReadyAt.Sub(w.IssuedAt) < 5*time.Microsecond {
			t.Errorf("hotpot write finished suspiciously fast: %v", w.ReadyAt.Sub(w.IssuedAt))
		}
		// Durable at the object home at completion.
		addr := b.store.Addr(3)
		if got := b.srv.PM.ReadBytes(addr, 512); !bytes.Equal(got, payload) {
			t.Error("hotpot commit did not persist the object")
		}
		r, err := c.Call(p, &Request{Op: OpRead, Key: 3, Size: 512, Payload: []byte{}})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r.Data, payload) {
			t.Error("hotpot read-back mismatch")
		}
	})
}

func TestHotpotSlowerThanDaRPCWrites(t *testing.T) {
	lat := func(mk func(*bench) Client) time.Duration {
		b := newBench(t, 1024, nil, nil)
		c := mk(b)
		var total time.Duration
		const ops = 30
		b.run(t, func(p *sim.Proc) {
			for i := 0; i < ops; i++ {
				r, err := c.Call(p, &Request{Op: OpWrite, Key: uint64(i % 16), Size: 1024})
				if err != nil {
					t.Fatal(err)
				}
				total += r.ReadyAt.Sub(r.IssuedAt)
			}
		})
		return total / ops
	}
	hotpot := lat(func(b *bench) Client { return NewHotpot(b.cli, b.s, b.s.Cfg) })
	darpc := lat(func(b *bench) Client { return NewDaRPC(b.cli, b.s, b.s.Cfg) })
	if hotpot <= darpc {
		t.Fatalf("hotpot 2-phase write (%v) should cost more than DaRPC (%v)", hotpot, darpc)
	}
}

// mojimRig builds a client plus primary and mirror servers.
func mojimRig(t *testing.T) (*sim.Kernel, *host.Host, *Server, *Server) {
	t.Helper()
	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), 41)
	np := rnic.DefaultParams()
	cli := host.New(k, "cli", net, host.DefaultParams(), pmem.DefaultParams(), np)
	ph := host.New(k, "primary", net, host.DefaultParams(), pmem.DefaultParams(), np)
	mh := host.New(k, "mirror", net, host.DefaultParams(), pmem.DefaultParams(), np)
	ps, err := NewStore(ph, 64, 1024)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewStore(mh, 64, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	return k, cli, NewServer(ph, ps, cfg), NewServer(mh, ms, cfg)
}

func TestMojimMirrorsBeforeAck(t *testing.T) {
	k, cli, primary, mirror := mojimRig(t)
	c := NewMojim(cli, primary, mirror, primary.Cfg)
	payload := bytes.Repeat([]byte{0x66}, 1024)
	completed := false
	k.Go("driver", func(p *sim.Proc) {
		w, err := c.Call(p, &Request{Op: OpWrite, Key: 7, Size: 1024, Payload: payload})
		if err != nil {
			t.Error(err)
			return
		}
		_ = w
		// At ack time BOTH copies are durable.
		for i, s := range []*Server{primary, mirror} {
			addr := s.Store.Addr(7)
			if got := s.H.PM.ReadBytes(addr, 1024); !bytes.Equal(got, payload) {
				t.Errorf("copy %d not durable at Mojim ack", i)
			}
		}
		completed = true
	})
	k.Run()
	if !completed {
		t.Fatal("mojim write never completed")
	}
}

func TestMojimCostsTwoHops(t *testing.T) {
	// Mojim's write must cost roughly two DaRPC-style hops.
	k, cli, primary, mirror := mojimRig(t)
	c := NewMojim(cli, primary, mirror, primary.Cfg)
	var mojim time.Duration
	k.Go("driver", func(p *sim.Proc) {
		const ops = 20
		for i := 0; i < ops; i++ {
			r, err := c.Call(p, &Request{Op: OpWrite, Key: uint64(i % 16), Size: 1024})
			if err != nil {
				t.Error(err)
				return
			}
			mojim += r.ReadyAt.Sub(r.IssuedAt) / ops
		}
	})
	k.Run()

	b := newBench(t, 1024, nil, nil)
	d := NewDaRPC(b.cli, b.s, b.s.Cfg)
	var darpc time.Duration
	b.run(t, func(p *sim.Proc) {
		const ops = 20
		for i := 0; i < ops; i++ {
			r, _ := d.Call(p, &Request{Op: OpWrite, Key: uint64(i % 16), Size: 1024})
			darpc += r.ReadyAt.Sub(r.IssuedAt) / ops
		}
	})
	ratio := float64(mojim) / float64(darpc)
	if ratio < 1.4 || ratio > 3.0 {
		t.Fatalf("mojim/darpc ratio %.2f, want ~2 (mirroring adds a hop)", ratio)
	}
}

func TestMojimReadsFromPrimaryOnly(t *testing.T) {
	k, cli, primary, mirror := mojimRig(t)
	c := NewMojim(cli, primary, mirror, primary.Cfg)
	k.Go("driver", func(p *sim.Proc) {
		if _, err := c.Call(p, &Request{Op: OpRead, Key: 1, Size: 1024}); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if primary.Store.Reads != 1 {
		t.Fatalf("primary reads = %d", primary.Store.Reads)
	}
	if mirror.Store.Reads != 0 {
		t.Fatal("read leaked to the mirror")
	}
}
