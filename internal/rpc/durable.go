package rpc

import (
	"fmt"
	"time"

	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/redolog"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// durableClient implements the paper's four durable RPCs (§4.2, Fig. 4).
// All of them decouple data persisting from RPC processing: every request is
// deposited durably in the connection's redo log, the sender learns of
// persistence via an RDMA Flush acknowledgement (or receiver notification),
// and the server processes logged requests asynchronously, consuming log
// entries as it completes them. After a crash, unprocessed-but-durable
// requests replay from the log without client re-transmission.
//
//	WFlush-RPC   : RDMA write of the log entry + WFlush   (sender-initiated)
//	SFlush-RPC   : RDMA send of the log entry  + SFlush   (sender-initiated)
//	W-RFlush-RPC : RDMA write + receiver-side RFlush notify (receiver-init.)
//	S-RFlush-RPC : RDMA send  + receiver-side RFlush notify (receiver-init.)
type durableClient struct {
	*conn
	// resQueue is the FIFO of reserved log addresses for native SFlush.
	resQueue []int64
}

// nativeSFlush reports whether this connection runs SFlush natively (NIC
// resolves log addresses) rather than via the read-after-write emulation.
func nativeSFlush(kind Kind, srv *Server) bool {
	return kind == SFlushRPC && !srv.H.NIC.Params.EmulateFlush
}

// NewDurable connects one of the durable RPC clients from cli to srv.
//
// When cli and srv live on different kernels of one sim.Engine the
// connection runs in engine mode, and the redo-log ownership splits the same
// way in every family: the entry bytes always land in the server's PM (the
// NIC persists them on arrival, exactly as in serial mode), while the
// accounting half — Reserve, Consume, the FIFO durable window — runs on the
// client's kernel. Every hop that would touch the other side's state crosses
// as a lookahead-delayed engine message. Per family:
//
//	WFlush-RPC   : control-word persists hop to the server partition and
//	               back (redolog.CtrlPersist); worker-side consume
//	               notifications hop back to the client (enqueueLogged).
//	SFlush-RPC   : the per-request receive buffer (emulated) or the
//	               reservation FIFO the server NIC pops (native) is
//	               server-kernel state, so its registration hops over; the
//	               hop lands a full lookahead before the send can arrive,
//	               because the send still has to traverse the client NIC's
//	               WQE pipeline (ProcPerWQE > 0) before reaching the wire.
//	W-RFlush-RPC : nothing extra — the RFlush notification is a plain wire
//	               message, its expectation table is client-local, and the
//	               server-side clflush touches only server state.
//	S-RFlush-RPC : the receive-buffer registration hops like SFlush.
//
// Reestablish works cross-partition only inside a serialized engine span
// (sim.Engine.Serialize gives recovery the global event order it needs);
// CallBatch returns ErrCrossPartition — the batch stash is shared
// client/server state no hop discipline covers.
func NewDurable(kind Kind, cli *host.Host, srv *Server, cfg Config) Client {
	if !kind.Durable() {
		panic(fmt.Sprintf("rpc: %v is not a durable kind", kind))
	}
	c := &durableClient{conn: newConn(kind, cli, srv, cfg, rnic.RC)}
	c.newLog()
	c.wire()
	return c
}

// wire starts the connection's procs and receive-buffer plumbing; it runs
// both at construction and after Reestablish.
func (c *durableClient) wire() {
	switch c.kind {
	case WFlushRPC, WRFlushRPC:
		// Responses come back as writes into the client ring.
		c.startWriteDrain()
		c.startLogPoller()
	case SFlushRPC, SRFlushRPC:
		c.postClientRecvs()
		c.startRecvDrain(true)
		if nativeSFlush(c.kind, c.srv) {
			// Native SFlush: the server NIC resolves log addresses
			// autonomously. Reservations queue in FIFO order — RC
			// delivery matches sends to reservations exactly. The
			// message buffer is an ordinary DRAM recv ring.
			c.sq.FlushSink = c.popReservation
			for i := 0; i < c.cfg.RingSlots; i++ {
				c.sq.PostRecv(c.reqSlot(uint64(i)), c.cfg.SlotSize)
			}
		}
		c.cq.FlushProbe = c.log.Base()
		c.startLogRecv()
	}
}

// popReservation hands the server NIC the log address the sender reserved
// for the next in-flight send (native SFlush); RC's in-order delivery makes
// the FIFO matching exact.
func (c *durableClient) popReservation(n int) int64 {
	if len(c.resQueue) == 0 {
		panic("rpc: SFlush arrived with no reservation")
	}
	a := c.resQueue[0]
	c.resQueue = c.resQueue[1:]
	return a
}

// startLogPoller is the server loop for the write-based durable RPCs: it
// polls the log region for arrivals. For WFlush the NIC already
// acknowledged durability to the sender; for W-RFlush the CPU sends the
// RFlush notification here — before processing, which is the whole point.
func (c *durableClient) startLogPoller() {
	kind := c.kind
	// Bind to this connection incarnation: Reestablish replaces c.conn, so
	// reading c.closed through the embedded pointer would keep a replaced
	// incarnation's poller alive — and a late RC retransmit landing on its
	// still-registered QP would be fed into the shared redo log.
	cn := c.conn
	sq := c.sq
	c.srv.H.K.Go(c.srv.H.Name+"-"+kind.String()+"-poll", func(p *sim.Proc) {
		for !cn.closed && !sq.Dead() {
			arr := sq.Arrivals.Pop(p)
			c.srv.H.PollDelay(p)
			if cn.closed || sq.Dead() {
				return // crashed or replaced while polling
			}
			seq, req := c.decodeEntry(arr.Data)
			if kind == WRFlushRPC && mutatingOp(req.Op) {
				// RFlush: with DDIO the write landed in the volatile
				// LLC; the CPU must clflush it to the persist domain
				// before acknowledging (§4.4.2). Without DDIO the log
				// is a PM region the NIC persisted into already.
				if arr.Durable == 0 {
					c.srv.H.LLC.ClflushSync(p, arr.Addr, arr.N)
				}
				sq.Notify(seq)
			}
			c.enqueueLogged(seq, req, c.respondWrite(seq, req))
		}
	})
}

// startLogRecv is the server loop for the send-based durable RPCs.
func (c *durableClient) startLogRecv() {
	kind := c.kind
	cn := c.conn // bind to this connection incarnation (see startLogPoller)
	sq := c.sq
	repost := nativeSFlush(kind, c.srv)
	c.srv.H.K.Go(c.srv.H.Name+"-"+kind.String()+"-recv", func(p *sim.Proc) {
		for !cn.closed && !sq.Dead() {
			rcv := sq.RecvCQ.Pop(p)
			c.srv.H.PollDelay(p)
			if cn.closed || sq.Dead() {
				return // crashed or replaced while polling
			}
			if repost {
				sq.PostRecv(rcv.Addr, c.cfg.SlotSize)
			}
			seq, req := c.decodeEntry(rcv.Data)
			if kind == SRFlushRPC && mutatingOp(req.Op) {
				// RFlush: the receive buffers are log-resident PM; the
				// payload is durable on arrival. Notify, then process.
				sq.Notify(seq)
			}
			c.enqueueLogged(seq, req, c.respondSend(seq, req))
		}
	})
}

// enqueueLogged dispatches a logged request to the worker pool; completing a
// mutating request consumes its log entry. Non-mutating requests hold a
// sequence number but no log entry (see Log.NextSeq), so there is nothing to
// consume.
func (c *durableClient) enqueueLogged(seq uint64, req *Request, respond func(*sim.Proc, []byte)) {
	var reqs []*Request
	if isBatchOp(req.Op) {
		reqs = c.batchReqs(seq, req)
	}
	var consume func(at sim.Time)
	if mutatingOp(req.Op) {
		if c.eng != nil {
			// Engine mode: the log lives on the client's kernel, so the
			// worker's completion crosses back as a lookahead-delayed
			// message. The entry stays in the durable window one hop
			// longer than strictly needed — reclamation lag, not a
			// correctness concern.
			srvK, cliK := c.srv.H.K, c.cli.K
			consume = func(at sim.Time) {
				c.eng.PostAfterLookahead(srvK, cliK, func() {
					c.log.Consume(cliK.Now(), seq)
				})
			}
		} else {
			consume = func(at sim.Time) { c.log.Consume(at, seq) }
		}
	}
	c.srv.enqueue(workItem{req: req, reqs: reqs, respond: respond, consume: consume})
}

// mutatingOp reports whether op needs a durability acknowledgement. A
// read-only batch (opBatchRO) deliberately does not: it rides the same FIFO
// channel but skips the flush machinery (§5.5). OpCtrl records mutate
// service state, so they log and flush like writes — but their caller waits
// for the processing response (which carries the result), not the flush.
func mutatingOp(op Op) bool { return op == OpWrite || op == OpCtrl || op == opBatch }

// decodeEntry parses a redo-log entry image back into (seq, request).
func (c *durableClient) decodeEntry(b []byte) (uint64, *Request) {
	if len(b) < redolog.HeaderBytes+reqHeaderBytes {
		panic("rpc: truncated log entry image")
	}
	seq, req := decodeReq(b[redolog.HeaderBytes:])
	return seq, req
}

// admit performs §4.2 back-pressure (throttle on outstanding, retry on a
// full ring) and allocates the request's sequence number — with a log slot
// for mutating requests, without one otherwise (a reserved-but-never-written
// slot would read as garbage to the recovery scan and truncate replay). It
// aborts with ErrTimeout if the connection is replaced (crash recovery)
// while the caller waits — a waiter must not touch a log that is being
// recovered; it re-runs its reconnection protocol instead.
func (c *durableClient) admit(p *sim.Proc, n int, mutating bool) (uint64, int64, error) {
	myConn := c.conn
	// stale reports conditions under which waiting is pointless: the
	// connection was replaced under us, or the server crashed (outstanding
	// entries will only drain after recovery, which the caller initiates).
	stale := func() bool { return c.conn != myConn || myConn.sq.Dead() }
	for c.log.Outstanding() >= c.cfg.ThrottleOutstanding {
		p.Sleep(2 * time.Microsecond)
		if stale() {
			return 0, 0, ErrTimeout
		}
	}
	if !mutating {
		return c.log.NextSeq(), -1, nil
	}
	seq, addr, err := c.log.Reserve(n)
	for err != nil {
		// Ring full: §4.2 back-pressure — throttle and retry.
		p.Sleep(5 * time.Microsecond)
		if stale() {
			return 0, 0, ErrTimeout
		}
		seq, addr, err = c.log.Reserve(n)
	}
	return seq, addr, nil
}

// encodeEntry builds the redo-log entry image for req in a pooled
// per-connection buffer (released when seq's response completes) and returns
// (image, tail). In sparse mode the image is the 48-byte header run and tail
// the 8-byte commit word — the payload travels and persists as an
// unmaterialized gap, per wireMsg.Tail semantics. Otherwise tail is nil and
// the image is the full entry (or the short header-only prefix for
// synthetic payloads), exactly what redolog.Encode would have produced.
func (c *durableClient) encodeEntry(seq uint64, req *Request, n int, sparse bool) ([]byte, []byte) {
	op := byte(req.Op)
	if sparse {
		b := c.getImage(seq, redolog.HeaderBytes+reqHeaderBytes+redolog.CommitBytes)
		redolog.PutHeader(b, seq, op, n)
		putReqHeader(b[redolog.HeaderBytes:], seq, req, contentsSparse, 0)
		head := b[:redolog.HeaderBytes+reqHeaderBytes]
		tail := b[redolog.HeaderBytes+reqHeaderBytes:]
		redolog.PutCommit(tail, seq, op, n)
		return head, tail
	}
	reqLen := reqImageBytes(req)
	if reqLen < n {
		// Synthetic short image: header run only, never recoverable.
		b := c.getImage(seq, redolog.HeaderBytes+reqLen)
		redolog.PutHeader(b, seq, op, n)
		encodeReqInto(b[redolog.HeaderBytes:], seq, req)
		return b, nil
	}
	foot := int(redolog.EntrySize(n))
	b := c.getImage(seq, foot)
	redolog.PutHeader(b, seq, op, n)
	encodeReqInto(b[redolog.HeaderBytes:redolog.HeaderBytes+reqLen], seq, req)
	for i := redolog.HeaderBytes + n; i < foot-redolog.CommitBytes; i++ {
		b[i] = 0 // pad bytes: a reused buffer must equal a fresh image
	}
	redolog.PutCommit(b[foot-redolog.CommitBytes:], seq, op, n)
	return b, nil
}

// sparseOK reports whether req may travel as a sparse flyweight: opt-in,
// mutating, with a fully materialized uniform-zero payload.
func (c *durableClient) sparseOK(req *Request) bool {
	return c.cfg.SparsePayloads && req.Op == OpWrite && req.Payload != nil &&
		len(req.Payload) == req.Size && pmem.Uniform(req.Payload, 0)
}

// dispatch transmits a prepared log-entry image per the client's family and
// returns the durability future. Flush machinery is engaged only when the
// request mutates state: "RDMA Flush primitives are only needed for a small
// portion of RDMA write operations" (§5.5) — read requests travel over the
// same logged channel (FIFO ordering) but complete on their response, so
// their durability future is just the transport acknowledgement.
//
// dispatch must not yield: ring order (assigned by Reserve) has to equal
// wire-posting order. Callers pay the WQE-posting CPU cost before admit —
// a sleep between Reserve and the NIC post would let a concurrent caller
// invert the two orders, and the durable families depend on them agreeing:
// the send-based kinds match pre-posted log-slot receive buffers to sends
// in FIFO order, and the flush-ack horizon only covers entries that arrived
// earlier. An entry landing in another request's slot — or acknowledged
// ahead of a predecessor that is still in flight — loses acknowledged
// writes when a crash hits (the crash-point sweep catches both).
func (c *durableClient) dispatch(p *sim.Proc, seq uint64, addr int64, entryBytes int, image, tail []byte, mutating bool) *sim.Future[sim.Time] {
	// Non-mutating requests ride the DRAM message ring instead of the PM
	// log: they keep FIFO order (same QP) but skip the persist machinery
	// entirely. They carry a sequence number but own no log bytes — a read
	// lost in a crash needs no recovery.
	if !mutating {
		switch c.kind {
		case WFlushRPC, WRFlushRPC:
			return c.cq.WriteAsync(c.reqSlot(seq), entryBytes, image)
		default: // SFlushRPC, SRFlushRPC
			if !nativeSFlush(c.kind, c.srv) {
				// Native mode keeps a pre-posted recv ring; the
				// emulated modes post buffers per request.
				c.postRecvServer(c.reqSlot(seq), entryBytes)
			}
			return c.cq.SendAsync(entryBytes, image)
		}
	}
	switch c.kind {
	case WFlushRPC:
		return c.cq.WriteFlushTailAsync(addr, entryBytes, image, tail)
	case WRFlushRPC:
		durF := c.cq.ExpectNotify(seq)
		c.cq.WriteTailAsync(addr, entryBytes, image, tail)
		return durF
	case SFlushRPC:
		if nativeSFlush(c.kind, c.srv) {
			// The reservation FIFO is consumed by the server NIC
			// (popReservation), so in engine mode it is server-kernel
			// state and the append crosses partitions.
			if c.eng != nil {
				c.eng.PostAfterLookahead(c.cli.K, c.srv.H.K, func() {
					c.resQueue = append(c.resQueue, addr)
				})
			} else {
				c.resQueue = append(c.resQueue, addr)
			}
		} else {
			// Emulated SFlush: the receive buffer IS the log slot.
			c.postRecvServer(addr, entryBytes)
		}
		return c.cq.SendFlushTailAsync(entryBytes, image, tail)
	default: // SRFlushRPC
		// Receive buffers are log-resident PM slots; the NIC persists
		// on placement and the server CPU notifies.
		c.postRecvServer(addr, entryBytes)
		durF := c.cq.ExpectNotify(seq)
		c.cq.SendTailAsync(entryBytes, image, tail)
		return durF
	}
}

// postRecvServer registers a receive buffer on the server QP. The recv queue
// is server-NIC state: in engine mode the registration crosses as a
// lookahead-delayed control message. It always lands before the matching
// send — the hop arrives exactly one lookahead after the dispatch event,
// while the send leaves the client NIC strictly later (the WQE pipeline
// costs ProcPerWQE > 0) and then pays at least one lookahead of propagation.
// Hop emission order equals send order (the canonical cross merge preserves
// per-source order), so the FIFO buffer↔send matching is unchanged. The
// serial path stays closure-free for the alloc pins.
func (c *durableClient) postRecvServer(addr int64, length int) {
	if c.eng == nil {
		c.sq.PostRecv(addr, length)
		return
	}
	sq := c.sq // bind this incarnation: a reestablish swaps c.conn
	c.eng.PostAfterLookahead(c.cli.K, c.srv.H.K, func() {
		sq.PostRecv(addr, length)
	})
}

// issue deposits one request durably and returns (seq, durable future,
// response future).
func (c *durableClient) issue(p *sim.Proc, req *Request) (uint64, *sim.Future[sim.Time], *sim.Future[respMsg], error) {
	n := reqWireBytes(req)
	mutating := mutatingOp(req.Op)
	c.cli.Post(p) // WQE-posting cost up front: dispatch must not yield
	seq, addr, err := c.admit(p, n, mutating)
	if err != nil {
		return 0, nil, nil, err
	}
	image, tail := c.encodeEntry(seq, req, n, c.sparseOK(req))
	entryBytes := int(redolog.EntrySize(n))
	respF := c.await(seq)
	durF := c.dispatch(p, seq, addr, entryBytes, image, tail, mutating)
	return seq, durF, respF, nil
}

// Call implements the durable RPC contract: writes return at remote
// persistence (the paper's early visibility), reads return with the data.
func (c *durableClient) Call(p *sim.Proc, req *Request) (*Response, error) {
	issued := p.Now()
	_, durF, respF, err := c.issue(p, req)
	if err != nil {
		return nil, err
	}
	done := sim.NewFuture[sim.Time](p.K)
	respF.Then(func(rm respMsg) { done.Complete(rm.at) })

	if req.Op == OpWrite {
		dur := durF.Wait(p)
		return &Response{
			IssuedAt: issued, ReadyAt: dur, DurableAt: dur,
			Durable: durF, Done: done,
		}, nil
	}
	return readResponse(issued, respF.Wait(p), durF, done), nil
}

// readResponse assembles a durable-RPC read-path Response. The transport
// acknowledgement can trail the response the server already sent, so the
// future may be unresolved here; DurableAt is then backfilled when it
// completes rather than returned as a misleading zero ("durable at t=0").
func readResponse(issued sim.Time, rm respMsg, durF, done *sim.Future[sim.Time]) *Response {
	resp := &Response{
		Data: rm.data, IssuedAt: issued, ReadyAt: rm.at,
		Durable: durF, Done: done,
	}
	if durF.Done() {
		resp.DurableAt = durF.Value()
	} else {
		durF.Then(func(at sim.Time) { resp.DurableAt = at })
	}
	return resp
}

// CallBatch deposits a batch as one log entry with a single Flush (§4.3,
// Fig. 6(b)): one large transfer, one durability acknowledgement. A batch
// with no writes skips the flush machinery entirely (§5.5) — its durability
// future is just the transport acknowledgement.
func (c *durableClient) CallBatch(p *sim.Proc, reqs []*Request) ([]*Response, error) {
	if c.eng != nil {
		// The batch stash (c.batches) is written by the client and read by
		// the server; cross-partition that is a data race. Callers fall
		// back to unbatched Calls.
		return nil, ErrCrossPartition
	}
	issued := p.Now()
	breq, hasWrite := makeBatchFrame(reqs)
	n := reqWireBytes(breq)
	c.cli.Post(p) // WQE-posting cost up front: dispatch must not yield
	seq, addr, err := c.admit(p, n, hasWrite)
	if err != nil {
		return nil, err
	}
	c.stash(seq, reqs)
	image, _ := c.encodeEntry(seq, breq, n, false)
	entryBytes := int(redolog.EntrySize(n))
	respF := c.await(seq)
	durF := c.dispatch(p, seq, addr, entryBytes, image, nil, hasWrite)
	done := sim.NewFuture[sim.Time](p.K)
	respF.Then(func(rm respMsg) { done.Complete(rm.at) })
	dur := durF.Wait(p)
	out := make([]*Response, len(reqs))
	for i := range reqs {
		out[i] = &Response{IssuedAt: issued, ReadyAt: dur, DurableAt: dur, Durable: durF, Done: done}
	}
	return out, nil
}

// Log exposes the connection's redo log (failure-recovery drivers use it).
func (c *durableClient) Log() *redolog.Log { return c.log }
