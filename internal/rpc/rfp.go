package rpc

import (
	"prdma/internal/host"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// rfpClient implements RFP's "remote fetching paradigm" (Fig. 2(f)): the
// sender writes the request to the receiver, the receiver processes it and
// deposits the result in its own memory, and the sender collects the result
// with RDMA reads — polling until the result appears.
type rfpClient struct {
	*conn
	// resultRing holds results in the server's DRAM, fetched by the client.
	resultRing int64
}

// NewRFP connects an RFP-style client from cli to srv.
func NewRFP(cli *host.Host, srv *Server, cfg Config) Client {
	c := &rfpClient{conn: newConn(RFP, cli, srv, cfg, rnic.RC)}
	var err error
	c.resultRing, err = srv.H.DRAMArena.Alloc(int64(cfg.RingSlots * cfg.SlotSize))
	if err != nil {
		panic(err)
	}
	c.startPoller()
	return c
}

func (c *rfpClient) resultSlot(seq uint64) int64 {
	return c.resultRing + int64(int(seq)%c.cfg.RingSlots)*int64(c.cfg.SlotSize)
}

func (c *rfpClient) startPoller() {
	c.srv.H.K.Go(c.srv.H.Name+"-rfp-poll", func(p *sim.Proc) {
		for !c.closed {
			arr := c.sq.Arrivals.Pop(p)
			c.srv.H.PollDelay(p)
			seq, req := decodeReq(arr.Data)
			slot := c.resultSlot(seq)
			c.srv.enqueue(workItem{req: req, respond: func(p *sim.Proc, data []byte) {
				// The result is deposited locally; no wire traffic —
				// the client fetches it.
				c.srv.H.Memcpy(p, respHeaderBytes+len(data))
				c.srv.H.DRAM.Write(slot, encodeResp(seq, data))
			}})
		}
	})
}

func (c *rfpClient) Call(p *sim.Proc, req *Request) (*Response, error) {
	issued := p.Now()
	seq := c.nextSeq()
	c.cli.Post(p)
	c.cq.WriteAsync(c.reqSlot(seq), reqWireBytes(req), encodeReq(seq, req))
	// Fetch loop: RDMA read the result slot until our seq appears.
	slot := c.resultSlot(seq)
	for {
		p.Sleep(c.cfg.RFPPollInterval)
		c.cli.Post(p)
		b := c.cq.Read(p, slot, respWireBytes(req))
		got, data := decodeResp(b)
		if got == seq {
			done := sim.NewFuture[sim.Time](p.K)
			done.Complete(p.Now())
			return &Response{
				Data: data, IssuedAt: issued, ReadyAt: p.Now(),
				DurableAt: p.Now(), Durable: done, Done: done,
			}, nil
		}
	}
}
