package rpc

import (
	"bytes"
	"fmt"
	"testing"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// engineTrace runs a durable-RPC workload of the given family with the
// client and server on separate kernels of one engine and returns a textual
// trace of every response's timing plus end-state counters. The trace must
// be identical at every worker count: the partitioning is fixed, so worker
// threads are pure execution resources. native=true turns off the
// read-after-write flush emulation (exercising, for SFlush, the server-NIC
// reservation FIFO path).
func engineTrace(t *testing.T, kind Kind, native bool, workers, procs, ops int) (string, uint64) {
	t.Helper()
	fp := fabric.DefaultParams()
	e := sim.NewEngine(fp.Lookahead(), workers)
	kc, ks := e.NewKernel(), e.NewKernel()
	net := fabric.New(kc, fp, 7)
	np := rnic.DefaultParams()
	np.EmulateFlush = !native
	cli := host.New(kc, "cli", net, host.DefaultParams(), pmem.DefaultParams(), np)
	srv := host.New(ks, "srv", net, host.DefaultParams(), pmem.DefaultParams(), np)
	store, err := NewStore(srv, 256, 256)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(srv, store, DefaultConfig())
	c := New(kind, cli, s, s.Cfg)

	var b bytes.Buffer
	done := 0
	for pi := 0; pi < procs; pi++ {
		pi := pi
		kc.Go(fmt.Sprintf("drv-%d", pi), func(p *sim.Proc) {
			payload := bytes.Repeat([]byte{byte(pi + 1)}, 256)
			for i := 0; i < ops; i++ {
				key := uint64(pi*ops + i)
				wr, err := c.Call(p, &Request{Op: OpWrite, Key: key, Size: 256, Payload: payload})
				if err != nil {
					t.Errorf("write: %v", err)
					return
				}
				rd, err := c.Call(p, &Request{Op: OpRead, Key: key, Size: 256, Payload: []byte{}})
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if len(rd.Data) != 256 || rd.Data[0] != byte(pi+1) {
					t.Errorf("proc %d op %d: read back wrong contents", pi, i)
					return
				}
				fmt.Fprintf(&b, "p%d op%d w[%d %d %d] r[%d %d]\n", pi, i,
					wr.IssuedAt, wr.ReadyAt, wr.DurableAt, rd.IssuedAt, rd.ReadyAt)
				done++
			}
		})
	}
	e.Run()
	if done != procs*ops {
		t.Fatalf("workers=%d: %d/%d ops completed (deadlock?)", workers, done, procs*ops)
	}
	fmt.Fprintf(&b, "handled=%d appends=%d consumes=%d outstanding=%d\n",
		s.Handled, c.(*durableClient).log.Appends, c.(*durableClient).log.Consumes,
		c.(*durableClient).log.Outstanding())
	return b.String(), e.Crossed()
}

// TestEngineModeWFlushDeterminism pins the tentpole contract at the RPC
// layer: a cross-partition WFlush-RPC connection produces byte-identical
// response timings at 1, 2 and 4 workers, and traffic genuinely crosses the
// partition boundary.
func TestEngineModeWFlushDeterminism(t *testing.T) {
	const procs, ops = 4, 25
	want, crossed := engineTrace(t, WFlushRPC, false, 1, procs, ops)
	if crossed == 0 {
		t.Fatal("no messages crossed the partition boundary")
	}
	for _, workers := range []int{2, 4} {
		got, _ := engineTrace(t, WFlushRPC, false, workers, procs, ops)
		if got != want {
			t.Fatalf("workers=%d: trace diverged from workers=1\n--- workers=1\n%.2000s\n--- workers=%d\n%.2000s",
				workers, want, workers, got)
		}
	}
}

// TestEngineModeFamilyDeterminism extends the engine-mode contract to every
// durable family: each runs cross-kernel with byte-identical traces at
// workers 1, 2, 4 and 8. SFlush is exercised in both flavors — emulated
// (per-request recv-buffer registration hops to the server partition) and
// native (the reservation FIFO the server NIC pops hops over instead);
// SRFlush always registers its log-slot buffers cross-partition, and
// WRFlush checks that the notification path needs no extra routing.
func TestEngineModeFamilyDeterminism(t *testing.T) {
	const procs, ops = 3, 12
	cases := []struct {
		name   string
		kind   Kind
		native bool
	}{
		{"sflush-emulated", SFlushRPC, false},
		{"sflush-native", SFlushRPC, true},
		{"wrflush", WRFlushRPC, false},
		{"srflush", SRFlushRPC, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, crossed := engineTrace(t, tc.kind, tc.native, 1, procs, ops)
			if crossed == 0 {
				t.Fatal("no messages crossed the partition boundary")
			}
			for _, workers := range []int{2, 4, 8} {
				got, _ := engineTrace(t, tc.kind, tc.native, workers, procs, ops)
				if got != want {
					t.Fatalf("workers=%d: trace diverged from workers=1\n--- workers=1\n%.2000s\n--- workers=%d\n%.2000s",
						workers, want, workers, got)
				}
			}
		})
	}
}
