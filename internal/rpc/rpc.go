// Package rpc implements the RPC communication models the paper compares
// (§3, Fig. 2) — DaRPC, FaRM, Herd, FaSST, L5, RFP, ScaleRPC, Octopus, LITE
// — and the paper's four durable RPCs built on the RDMA Flush primitives
// (§4): WFlush-RPC, SFlush-RPC, W-RFlush-RPC and S-RFlush-RPC.
//
// Every system is expressed against the rnic verbs layer, running on the
// simulated testbed. A Client is a sender-side handle; Call returns when the
// sender may safely proceed — for traditional RPCs that is the response, for
// durable RPCs it is the moment remote persistence is visible (the paper's
// core contribution: decoupling data persisting from RPC processing).
package rpc

import (
	"fmt"
	"time"

	"prdma/internal/pmem"
	"prdma/internal/sim"
)

// Op is the application-level operation carried by an RPC.
type Op byte

const (
	// OpRead fetches an object.
	OpRead Op = iota + 1
	// OpWrite stores an object durably.
	OpWrite
	// OpScan reads a range of objects (YCSB workload E).
	OpScan
)

// OpCtrl is a durable control record: it rides the mutating (redo-logged,
// flush-acknowledged) path like OpWrite — its payload is durable in the
// connection's redo log before the server processes it, and it replays
// after a crash — but the caller waits for the processing response, which
// carries result bytes back. Services layered on the durable families (the
// pmpool allocation protocol) use it for metadata operations that must
// both survive a crash and return an answer. The opcode sits in the
// internal range (batch/hotpot frames occupy 200..211).
const OpCtrl Op = 220

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCtrl:
		return "ctrl"
	default:
		return "scan"
	}
}

// Request is one RPC invocation.
type Request struct {
	Op   Op
	Key  uint64
	Size int
	// Payload may be nil: synthetic benchmark traffic that is timed but
	// not materialized.
	Payload []byte
	// Sparse, when Len > 0, is the decoded flyweight of a uniform payload
	// transmitted in SparsePayloads mode; Payload is then nil and the
	// contents are Len copies of Fill. Set by decodeReq, never by callers.
	Sparse pmem.SparsePayload
	// ScanLen is the object count for OpScan.
	ScanLen int
}

// Response is the outcome of an RPC.
type Response struct {
	// Data is the object contents for reads (nil for synthetic traffic).
	Data []byte
	// IssuedAt is when the sender started the call.
	IssuedAt sim.Time
	// ReadyAt is when the sender could proceed: the quantity the paper's
	// latency plots report.
	ReadyAt sim.Time
	// DurableAt is when the written data was persistent in the remote PM.
	// Zero means not yet known when the Response was assembled (on the
	// durable-RPC read path the transport acknowledgement can trail the
	// response); Durable backfills it on completion. For traditional RPCs
	// it is the reply time — durability is simply whatever the reply
	// implies, the deficiency the paper's durable RPCs fix.
	DurableAt sim.Time
	// Durable resolves when the request's durability (transport)
	// acknowledgement arrives and backfills DurableAt. Traditional RPCs
	// complete it at the reply.
	Durable *sim.Future[sim.Time]
	// Done resolves when the full RPC (processing included) finished;
	// durable-RPC writes resolve it after Call returns.
	Done *sim.Future[sim.Time]
}

// Client issues RPCs from one sender host.
type Client interface {
	// Call blocks until the sender may proceed (see Response.ReadyAt).
	Call(p *sim.Proc, req *Request) (*Response, error)
	// Kind identifies the RPC system.
	Kind() Kind
	// Close tears down client-side resources.
	Close()
}

// BatchClient is implemented by systems that support batching several
// requests into one network interaction (§4.3, Fig. 19).
type BatchClient interface {
	Client
	// CallBatch issues reqs as one batch and returns when the sender may
	// proceed past the whole batch.
	CallBatch(p *sim.Proc, reqs []*Request) ([]*Response, error)
}

// Kind enumerates the RPC systems.
type Kind int

const (
	// Traditional systems (Table 1 / Fig. 2).
	L5 Kind = iota
	RFP
	FaSST
	Octopus
	FaRM
	ScaleRPC
	DaRPC
	Herd
	LITE
	// Durable RPCs (§4.2 / Fig. 4).
	SRFlushRPC
	SFlushRPC
	WRFlushRPC
	WFlushRPC
)

// Kinds lists all systems in the paper's plotting order.
var Kinds = []Kind{L5, RFP, FaSST, Octopus, FaRM, ScaleRPC, DaRPC, SRFlushRPC, SFlushRPC, WRFlushRPC, WFlushRPC}

// WriteKinds are the systems built on RDMA write primitives (the paper
// compares WFlush/W-RFlush against these).
var WriteKinds = []Kind{L5, RFP, Octopus, FaRM, ScaleRPC, WRFlushRPC, WFlushRPC}

// SendKinds are the systems built on RDMA send primitives.
var SendKinds = []Kind{FaSST, DaRPC, SRFlushRPC, SFlushRPC}

// DurableKinds are the paper's contributions.
var DurableKinds = []Kind{SRFlushRPC, SFlushRPC, WRFlushRPC, WFlushRPC}

func (k Kind) String() string {
	switch k {
	case L5:
		return "L5"
	case RFP:
		return "RFP"
	case FaSST:
		return "FaSST"
	case Octopus:
		return "Octopus"
	case FaRM:
		return "FaRM"
	case ScaleRPC:
		return "ScaleRPC"
	case DaRPC:
		return "DaRPC"
	case Herd:
		return "Herd"
	case LITE:
		return "LITE"
	case SRFlushRPC:
		return "S-RFlush-RPC"
	case SFlushRPC:
		return "SFlush-RPC"
	case WRFlushRPC:
		return "W-RFlush-RPC"
	case WFlushRPC:
		return "WFlush-RPC"
	case OctopusWFlush:
		return "Octopus+WFlush"
	case Hotpot:
		return "Hotpot"
	case Mojim:
		return "Mojim"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Durable reports whether k is one of the paper's durable RPCs.
func (k Kind) Durable() bool {
	switch k {
	case SRFlushRPC, SFlushRPC, WRFlushRPC, WFlushRPC:
		return true
	}
	return false
}

// SendBased reports whether k transfers data with RDMA send.
func (k Kind) SendBased() bool {
	switch k {
	case DaRPC, FaSST, SRFlushRPC, SFlushRPC:
		return true
	}
	return false
}

// Config tunes an RPC deployment.
type Config struct {
	// ProcessingTime is the injected per-request processing cost: 0 for
	// the paper's "light load", 100 µs for "heavy load" (§5.2).
	ProcessingTime time.Duration
	// Workers is the server worker-pool size for asynchronous processing
	// of durable RPCs.
	Workers int
	// RingSlots and SlotSize shape the per-connection message rings.
	RingSlots int
	SlotSize  int
	// LogBytes sizes the per-connection redo log ring.
	LogBytes int64
	// ThrottleOutstanding is the §4.2 back-pressure threshold: a durable
	// RPC sender stalls while this many requests are unprocessed.
	ThrottleOutstanding int
	// ScaleRPCProcessPhases is the number of process-phase calls per
	// warm-up in ScaleRPC (the paper interleaves 1:100).
	ScaleRPCProcessPhases int
	// RFPPollInterval is RFP's sender-side result polling period.
	RFPPollInterval time.Duration
	// LITESyscall is LITE's extra kernel-crossing cost per operation.
	LITESyscall time.Duration
	// SparsePayloads, when true, ships uniform-zero write payloads on the
	// durable paths as sparse flyweights: the wire, DMA and persist still
	// model the full payload size (timing and figure outputs are identical),
	// but only the entry header run and commit word are materialized, and
	// the server reconstructs the contents from the flyweight. Off by
	// default; the crash-point checker forces it off because its torn-write
	// probes inspect raw entry bytes.
	SparsePayloads bool
}

// DefaultConfig returns the paper-matched defaults.
func DefaultConfig() Config {
	return Config{
		ProcessingTime:        0,
		Workers:               3,
		RingSlots:             64,
		SlotSize:              64*1024 + 256,
		LogBytes:              64 << 20,
		ThrottleOutstanding:   128,
		ScaleRPCProcessPhases: 100,
		RFPPollInterval:       2 * time.Microsecond,
		LITESyscall:           1500 * time.Nanosecond,
	}
}
