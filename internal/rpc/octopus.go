package rpc

import (
	"prdma/internal/host"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// immClient implements the write-with-immediate RPC models: Octopus
// (Fig. 2(h)) and LITE (Fig. 2(i)). The request is an RDMA write-imm into
// the server's ring — the immediate value interrupts the server CPU via a
// receive completion rather than memory polling — and the response returns
// the same way. LITE additionally pays a kernel crossing on each side
// because its RPCs live in the kernel.
type immClient struct {
	*conn
	syscall bool
}

// NewOctopus connects an Octopus-style client from cli to srv.
func NewOctopus(cli *host.Host, srv *Server, cfg Config) Client {
	return newImmClient(Octopus, cli, srv, cfg, false)
}

// NewLITE connects a LITE-style client (kernel-level write-imm RPCs).
func NewLITE(cli *host.Host, srv *Server, cfg Config) Client {
	return newImmClient(LITE, cli, srv, cfg, true)
}

func newImmClient(kind Kind, cli *host.Host, srv *Server, cfg Config, syscall bool) Client {
	c := &immClient{conn: newConn(kind, cli, srv, cfg, rnic.RC), syscall: syscall}
	c.startRecvDrain(false)
	c.startServerCQ()
	return c
}

func (c *immClient) startServerCQ() {
	c.srv.H.K.Go(c.srv.H.Name+"-"+c.kind.String()+"-cq", func(p *sim.Proc) {
		for !c.closed {
			rcv := c.sq.RecvCQ.Pop(p)
			c.srv.H.PollDelay(p)
			if c.syscall {
				c.srv.H.Compute(p, c.cfg.LITESyscall)
			}
			seq, req := decodeReq(rcv.Data)
			c.srv.enqueue(workItem{req: req, respond: c.respondWriteImm(seq, req)})
		}
	})
}

func (c *immClient) Call(p *sim.Proc, req *Request) (*Response, error) {
	issued := p.Now()
	seq := c.nextSeq()
	f := c.await(seq)
	if c.syscall {
		c.cli.Compute(p, c.cfg.LITESyscall)
	}
	c.cli.Post(p)
	c.cq.WriteImmAsync(c.reqSlot(seq), reqWireBytes(req), encodeReq(seq, req), uint32(seq))
	rm := f.Wait(p)
	return traditionalResponse(issued, rm, p.K), nil
}
