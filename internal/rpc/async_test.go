package rpc

import (
	"bytes"
	"testing"
	"time"

	"prdma/internal/sim"
)

func TestCallAsyncPipelinesWrites(t *testing.T) {
	b := newBench(t, 1024, func(c *Config) { c.ProcessingTime = 50 * time.Microsecond }, nil)
	c := b.client(WFlushRPC).(AsyncClient)
	const depth = 8
	b.run(t, func(p *sim.Proc) {
		start := p.Now()
		pendings := make([]*Pending, depth)
		for i := range pendings {
			pend, err := c.CallAsync(p, &Request{Op: OpWrite, Key: uint64(i), Size: 1024})
			if err != nil {
				t.Fatal(err)
			}
			pendings[i] = pend
		}
		issued := p.Now().Sub(start)
		// Issuing 8 writes asynchronously must cost far less than 8
		// serial persists (the whole point of the async API).
		if issued > 20*time.Microsecond {
			t.Errorf("async issue of %d writes took %v", depth, issued)
		}
		for _, pend := range pendings {
			at := pend.Durable.Wait(p)
			if at == 0 {
				t.Fatal("no durability time")
			}
		}
		// Processing (50us each) still completes eventually.
		for _, pend := range pendings {
			pend.Done.Wait(p)
		}
	})
	if b.s.Handled != depth {
		t.Fatalf("handled %d of %d", b.s.Handled, depth)
	}
}

func TestCallAsyncReadDataDelivered(t *testing.T) {
	b := newBench(t, 256, nil, nil)
	c := b.client(SFlushRPC).(AsyncClient)
	payload := bytes.Repeat([]byte{0x77}, 256)
	b.run(t, func(p *sim.Proc) {
		w, err := c.CallAsync(p, &Request{Op: OpWrite, Key: 4, Size: 256, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		w.Done.Wait(p)
		r, err := c.CallAsync(p, &Request{Op: OpRead, Key: 4, Size: 256, Payload: []byte{}})
		if err != nil {
			t.Fatal(err)
		}
		r.Done.Wait(p)
		if !bytes.Equal(r.Data(), payload) {
			t.Errorf("async read returned %d bytes, mismatch", len(r.Data()))
		}
	})
}

func TestCallAsyncDurableBeforeDone(t *testing.T) {
	b := newBench(t, 2048, func(c *Config) { c.ProcessingTime = 80 * time.Microsecond }, nil)
	c := b.client(WRFlushRPC).(AsyncClient)
	b.run(t, func(p *sim.Proc) {
		pend, err := c.CallAsync(p, &Request{Op: OpWrite, Key: 1, Size: 2048})
		if err != nil {
			t.Fatal(err)
		}
		durAt := pend.Durable.Wait(p)
		doneAt := pend.Done.Wait(p)
		if doneAt < durAt.Add(50*time.Microsecond) {
			t.Errorf("done (%v) should lag durable (%v) by the processing time", doneAt, durAt)
		}
	})
}
