package rpc

import (
	"prdma/internal/sim"
)

// Pending is an in-flight asynchronous RPC (see AsyncClient).
type Pending struct {
	IssuedAt sim.Time
	// Durable resolves when the payload is persistent in the remote PM.
	Durable *sim.Future[sim.Time]
	// Done resolves when the RPC is fully processed (response received).
	Done *sim.Future[sim.Time]

	data []byte
}

// Data returns the response payload; valid once Done has resolved.
func (p *Pending) Data() []byte { return p.data }

// AsyncClient issues RPCs without blocking the caller — the building block
// for replication (§4.5), where one write fans out to several replicas and
// the sender coordinates on their flush acknowledgements.
type AsyncClient interface {
	Client
	// CallAsync deposits the request and returns immediately with its
	// completion futures.
	CallAsync(p *sim.Proc, req *Request) (*Pending, error)
}

// CallAsync implements AsyncClient for the durable RPCs.
func (c *durableClient) CallAsync(p *sim.Proc, req *Request) (*Pending, error) {
	issued := p.Now()
	_, durF, respF, err := c.issue(p, req)
	if err != nil {
		return nil, err
	}
	pend := &Pending{IssuedAt: issued, Durable: durF}
	done := sim.NewFuture[sim.Time](p.K)
	respF.Then(func(rm respMsg) {
		pend.data = rm.data
		done.Complete(rm.at)
	})
	pend.Done = done
	return pend, nil
}
