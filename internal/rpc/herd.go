package rpc

import (
	"prdma/internal/host"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// herdClient implements Herd's RPC model (Fig. 2(c)): requests are UC RDMA
// writes into the server's request region (no ACKs), responses are UD sends.
type herdClient struct {
	*conn
	// Second QP pair for the UD response channel.
	cud, sud *rnic.QP
}

// NewHerd connects a Herd-style client from cli to srv.
func NewHerd(cli *host.Host, srv *Server, cfg Config) Client {
	c := &herdClient{conn: newConn(Herd, cli, srv, cfg, rnic.UC)}
	c.cud = cli.NIC.CreateQP(rnic.UD)
	c.sud = srv.H.NIC.CreateQP(rnic.UD)
	rnic.Connect(c.cud, c.sud)
	for i := 0; i < cfg.RingSlots; i++ {
		c.cud.PostRecv(c.respSlot(uint64(i)), cfg.SlotSize)
	}
	c.startUDDrain()
	c.startPoller()
	return c
}

func (c *herdClient) startUDDrain() {
	c.cli.K.Go(c.cli.Name+"-herd-resp", func(p *sim.Proc) {
		for !c.closed {
			rcv := c.cud.RecvCQ.Pop(p)
			c.cli.PollDelay(p)
			c.cud.PostRecv(rcv.Addr, c.cfg.SlotSize)
			seq, data := decodeResp(rcv.Data)
			c.complete(seq, data, p.Now())
		}
	})
}

func (c *herdClient) startPoller() {
	c.srv.H.K.Go(c.srv.H.Name+"-herd-poll", func(p *sim.Proc) {
		for !c.closed {
			arr := c.sq.Arrivals.Pop(p)
			c.srv.H.PollDelay(p)
			seq, req := decodeReq(arr.Data)
			c.srv.enqueue(workItem{req: req, respond: func(p *sim.Proc, data []byte) {
				c.srv.H.Post(p)
				n := respWireBytes(req)
				if n > rnic.UDMTU {
					n = rnic.UDMTU // Herd segments large responses; model the first MTU
				}
				c.sud.SendAsync(n, encodeResp(seq, data))
			}})
		}
	})
}

func (c *herdClient) Call(p *sim.Proc, req *Request) (*Response, error) {
	issued := p.Now()
	seq := c.nextSeq()
	f := c.await(seq)
	c.cli.Post(p)
	c.cq.WriteAsync(c.reqSlot(seq), reqWireBytes(req), encodeReq(seq, req))
	rm := f.Wait(p)
	return traditionalResponse(issued, rm, p.K), nil
}
