package rpc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// recFill builds the versioned payload the recovery check inspects: key at
// offset 0, version at 8, deterministic pattern from 16.
func recFill(size int, key uint64, ver uint32) []byte {
	b := make([]byte, size)
	binary.LittleEndian.PutUint64(b, key)
	binary.LittleEndian.PutUint32(b[8:], ver)
	for j := 16; j < size; j++ {
		b[j] = byte(13*key + 7*uint64(ver) + uint64(j))
	}
	return b
}

// TestEngineModeRecovery crashes the server of a cross-kernel durable
// connection mid-persist at a window barrier, restarts it a barrier later,
// reestablishes from the client partition inside the serialized span, and
// asserts the §4.2 contract: every write whose durability was acknowledged
// before the crash is resident untorn at its acked version or newer after
// replay. S-Flush and WR-Flush cover both redo-log ownership splits
// (server-side persist scheduling vs client-driven flush).
func TestEngineModeRecovery(t *testing.T) {
	const (
		objSize  = 64
		procs    = 3
		ops      = 30
		restart  = 500 * time.Microsecond
		retry    = 100 * time.Microsecond
		crashWin = 25
	)
	for _, tc := range []struct {
		name string
		kind Kind
	}{
		{"sflush", SFlushRPC},
		{"wrflush", WRFlushRPC},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fp := fabric.DefaultParams()
			e := sim.NewEngine(fp.Lookahead(), 2)
			kc, ks := e.NewKernel(), e.NewKernel()
			net := fabric.New(kc, fp, 11)
			cli := host.New(kc, "cli", net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
			srv := host.New(ks, "srv", net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
			store, err := NewStore(srv, 256, objSize)
			if err != nil {
				t.Fatal(err)
			}
			store.VersionAt = 8
			server := NewServer(srv, store, DefaultConfig())
			c := New(tc.kind, cli, server, server.Cfg)
			rec, ok := c.(Recoverable)
			if !ok {
				t.Fatalf("%v is not recoverable", tc.kind)
			}

			serverUp := true
			generation, reestGen := 0, 0
			reconnecting := false
			acked := make(map[uint64]uint32)
			done := 0

			// One client-kernel proc owns re-establishment so the replay is
			// enqueued before any worker's retried requests (the serial
			// crashcheck monitor pattern; Reestablish is legal here because
			// the driver holds the Serialize token across the outage).
			kc.Go("monitor", func(p *sim.Proc) {
				for {
					p.Sleep(20 * time.Microsecond)
					if serverUp && reestGen != generation {
						reconnecting = true
						if _, err := rec.Reestablish(p); err != nil {
							panic(err)
						}
						reestGen = generation
						reconnecting = false
					}
				}
			})
			for pi := 0; pi < procs; pi++ {
				pi := pi
				kc.Go(fmt.Sprintf("wrk-%d", pi), func(p *sim.Proc) {
					for i := 0; i < ops; i++ {
						key := uint64(pi*8 + i%8)
						ver := uint32(i/8 + 1)
						req := &Request{Op: OpWrite, Key: key, Size: objSize, Payload: recFill(objSize, key, ver)}
						for {
							for !serverUp || reconnecting || reestGen != generation {
								p.Sleep(retry / 4)
							}
							if _, err := rec.CallTimeout(p, req, retry); err == nil {
								break
							}
						}
						if ver > acked[key] {
							acked[key] = ver
						}
						done++
					}
				})
			}

			// Run the healthy prefix in parallel windows, then crash at a
			// barrier and drive the outage serialized.
			e.RunWindows(crashWin)
			e.Serialize()
			srv.Crash()
			server.Crash()
			store.Crash()
			serverUp = false
			crashAt := kc.Now()
			if len(acked) == 0 {
				t.Fatal("no write acked before the crash — the crash window tests nothing")
			}
			restarted := false
			horizon := crashAt.Add(200 * time.Millisecond)
			for done < procs*ops && kc.Now() < horizon {
				if !restarted && kc.Now() >= crashAt.Add(restart) {
					srv.Restart()
					serverUp = true
					generation++
					restarted = true
				}
				if e.RunWindows(8) == 0 {
					break
				}
			}
			e.Unserialize()
			if done != procs*ops {
				t.Fatalf("%d/%d ops completed (stranded worker?)", done, procs*ops)
			}
			if reestGen != generation || generation == 0 {
				t.Fatalf("reestablish never completed: gen=%d reestGen=%d", generation, reestGen)
			}

			// §4.2 invariants: every acked write resident, untorn, at its
			// acked version or newer (version monotone through replay).
			buf := make([]byte, objSize)
			for key, ver := range acked {
				if !store.Has(key) {
					t.Fatalf("key %d: acked ver %d but nothing resident after replay", key, ver)
				}
				got := srv.PM.ReadBytesInto(store.Addr(key), buf)
				gotVer := binary.LittleEndian.Uint32(got[8:12])
				if gotVer < ver {
					t.Fatalf("key %d: acked ver %d but stored ver %d — acked write lost", key, ver, gotVer)
				}
				if !bytes.Equal(got, recFill(objSize, key, gotVer)) {
					t.Fatalf("key %d: stored payload torn at ver %d", key, gotVer)
				}
			}
			e.Shutdown()
		})
	}
}
