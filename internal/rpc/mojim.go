package rpc

import (
	"prdma/internal/host"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// Mojim is the Table 1 entry for Mojim (ASPLOS '15): a reliable NVM system
// with primary-backup mirroring.
const Mojim = Kind(102)

// mojimClient models Mojim's replicated write path: the client sends data
// to the primary; the primary's CPU persists it locally, forwards it to the
// mirror node, and only acknowledges the client once the mirror has
// persisted too. Every hop involves a CPU — the contrast the paper's §4.5
// discussion (and our NIC-offloaded chain) is about. Reads are served by
// the primary alone.
type mojimClient struct {
	*conn
	// fwd is the primary→mirror connection; the primary host is its
	// client side.
	fwd    *conn
	mirror *Server
}

// NewMojim connects a Mojim-style client: cli → primary, mirrored to
// mirror. The two servers must live on different hosts.
func NewMojim(cli *host.Host, primary, mirror *Server, cfg Config) Client {
	c := &mojimClient{
		conn:   newConn(Mojim, cli, primary, cfg, rnic.RC),
		fwd:    newConn(Mojim, primary.H, mirror, cfg, rnic.RC),
		mirror: mirror,
	}
	for i := 0; i < cfg.RingSlots; i++ {
		c.sq.PostRecv(c.reqSlot(uint64(i)), cfg.SlotSize)
		c.fwd.sq.PostRecv(c.fwd.reqSlot(uint64(i)), cfg.SlotSize)
	}
	c.postClientRecvs()
	c.fwd.postClientRecvs()
	c.startRecvDrain(true)
	c.fwd.startRecvDrain(true)
	c.startPrimary()
	c.startMirror()
	return c
}

// startPrimary persists locally, mirrors, then acknowledges.
func (c *mojimClient) startPrimary() {
	sq := c.sq
	c.srv.H.K.Go(c.srv.H.Name+"-mojim-primary", func(p *sim.Proc) {
		for !c.closed && !sq.Dead() {
			rcv := sq.RecvCQ.Pop(p)
			c.srv.H.PollDelay(p)
			if sq.Dead() {
				return
			}
			sq.PostRecv(rcv.Addr, c.cfg.SlotSize)
			seq, req := decodeReq(rcv.Data)
			if req.Op != OpWrite {
				c.srv.enqueue(workItem{req: req, respond: c.respondSend(seq, req)})
				continue
			}
			// Local persist.
			data := c.srv.Store.ApplyFromBuffer(p, req)
			_ = data
			// Mirror before acknowledging.
			fseq := c.fwd.nextSeq()
			ff := c.fwd.await(fseq)
			c.srv.H.Post(p)
			c.fwd.cq.SendAsync(reqWireBytes(req), encodeReq(fseq, req))
			ff.Wait(p)
			c.srv.H.Post(p)
			sq.SendAsync(respHeaderBytes, encodeResp(seq, nil))
		}
	})
}

// startMirror persists the forwarded copy and acknowledges the primary.
func (c *mojimClient) startMirror() {
	msq := c.fwd.sq
	c.mirror.H.K.Go(c.mirror.H.Name+"-mojim-mirror", func(p *sim.Proc) {
		for !c.closed && !msq.Dead() {
			rcv := msq.RecvCQ.Pop(p)
			c.mirror.H.PollDelay(p)
			if msq.Dead() {
				return
			}
			msq.PostRecv(rcv.Addr, c.cfg.SlotSize)
			seq, req := decodeReq(rcv.Data)
			c.mirror.Store.ApplyFromBuffer(p, req)
			c.mirror.H.Post(p)
			msq.SendAsync(respHeaderBytes, encodeResp(seq, nil))
		}
	})
}

func (c *mojimClient) Call(p *sim.Proc, req *Request) (*Response, error) {
	issued := p.Now()
	seq := c.nextSeq()
	f := c.await(seq)
	c.cli.Post(p)
	c.cq.SendAsync(reqWireBytes(req), encodeReq(seq, req))
	rm := f.Wait(p)
	return traditionalResponse(issued, rm, p.K), nil
}
