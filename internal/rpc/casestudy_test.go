package rpc

import (
	"bytes"
	"testing"
	"time"

	"prdma/internal/sim"
)

func TestOctopusWFlushRoundTrip(t *testing.T) {
	b := newBench(t, 512, nil, nil)
	c := NewOctopusDurable(b.cli, b.s, b.s.Cfg)
	payload := bytes.Repeat([]byte{0x6F}, 512)
	b.run(t, func(p *sim.Proc) {
		w, err := c.Call(p, &Request{Op: OpWrite, Key: 9, Size: 512, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		if w.DurableAt == 0 {
			t.Fatal("no durability time")
		}
		// Direct-to-home write: the object bytes are durable at the ACK,
		// no server processing needed at all.
		addr := b.store.Addr(9)
		if got := b.srv.PM.ReadBytes(addr, 512); !bytes.Equal(got, payload) {
			t.Fatal("object not durable in PM home at flush ACK")
		}
		r, err := c.Call(p, &Request{Op: OpRead, Key: 9, Size: 512, Payload: []byte{}})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r.Data, payload) {
			t.Fatal("one-sided read mismatch")
		}
	})
}

func TestOctopusWFlushAddressCache(t *testing.T) {
	b := newBench(t, 128, nil, nil)
	c := NewOctopusDurable(b.cli, b.s, b.s.Cfg).(*octopusDurable)
	var first, second time.Duration
	b.run(t, func(p *sim.Proc) {
		r1, _ := c.Call(p, &Request{Op: OpWrite, Key: 3, Size: 128})
		first = r1.ReadyAt.Sub(r1.IssuedAt)
		r2, _ := c.Call(p, &Request{Op: OpWrite, Key: 3, Size: 128})
		second = r2.ReadyAt.Sub(r2.IssuedAt)
	})
	if second >= first {
		t.Fatalf("cached-address write (%v) should beat cold write (%v): the imm-RPC is skipped", second, first)
	}
	if len(c.addrCache) != 1 {
		t.Fatalf("addrCache size %d", len(c.addrCache))
	}
}

func TestOctopusWFlushBeatsPlainOctopusOnWrites(t *testing.T) {
	mean := func(durable bool) time.Duration {
		b := newBench(t, 4096, func(c *Config) { c.ProcessingTime = 30 * time.Microsecond }, nil)
		var cl Client
		if durable {
			cl = NewOctopusDurable(b.cli, b.s, b.s.Cfg)
		} else {
			cl = NewOctopus(b.cli, b.s, b.s.Cfg)
		}
		var total time.Duration
		const ops = 40
		b.run(t, func(p *sim.Proc) {
			for i := 0; i < ops; i++ {
				r, err := cl.Call(p, &Request{Op: OpWrite, Key: uint64(i % 16), Size: 4096})
				if err != nil {
					t.Fatal(err)
				}
				total += r.ReadyAt.Sub(r.IssuedAt)
			}
		})
		return total / ops
	}
	plain, withFlush := mean(false), mean(true)
	if withFlush >= plain {
		t.Fatalf("Octopus+WFlush (%v) should beat plain Octopus (%v) for writes", withFlush, plain)
	}
}

func TestOctopusWFlushDecodeAddrRoundTrip(t *testing.T) {
	for _, a := range []int64{0, 1, 1 << 20, 1<<44 + 12345} {
		if got := decodeAddr(encodeAddr(a)); got != a {
			t.Fatalf("addr %d round-tripped to %d", a, got)
		}
	}
}
