package rpc

import (
	"prdma/internal/host"
	"prdma/internal/rnic"
	"prdma/internal/sim"
)

// farmClient implements FaRM's RPC model (Fig. 2(b)): the sender writes the
// request into a ring buffer in the receiver's memory over RC; the receiver
// polls the ring, processes, and writes the response into the sender's ring.
type farmClient struct {
	*conn
}

// NewFaRM connects a FaRM-style client from cli to srv.
func NewFaRM(cli *host.Host, srv *Server, cfg Config) Client {
	c := &farmClient{conn: newConn(FaRM, cli, srv, cfg, rnic.RC)}
	c.startWriteDrain()
	startRingPoller(c.conn)
	return c
}

// startRingPoller runs the receiver-side polling loop shared by the
// write-ring systems (FaRM, and the process phase of ScaleRPC).
func startRingPoller(c *conn) {
	sq := c.sq // bind to this connection incarnation
	c.srv.H.K.Go(c.srv.H.Name+"-"+c.kind.String()+"-poll", func(p *sim.Proc) {
		for !c.closed && !sq.Dead() {
			arr := sq.Arrivals.Pop(p)
			c.srv.H.PollDelay(p)
			if sq.Dead() {
				return // crashed while polling
			}
			seq, req := decodeReq(arr.Data)
			c.srv.enqueue(workItem{req: req, respond: c.respondWrite(seq, req)})
		}
	})
}

func (c *farmClient) Call(p *sim.Proc, req *Request) (*Response, error) {
	issued := p.Now()
	seq := c.nextSeq()
	f := c.await(seq)
	c.cli.Post(p)
	c.cq.WriteAsync(c.reqSlot(seq), reqWireBytes(req), encodeReq(seq, req))
	rm := f.Wait(p)
	return traditionalResponse(issued, rm, p.K), nil
}
