package rpc

import (
	"fmt"

	"prdma/internal/redolog"
)

// DecodeLoggedRequest decodes a recovered redo-log entry back into the
// request it logged and cross-checks the entry's header against the frame
// it carries. The crash-point sweep checker uses it to assert that every
// entry surviving Recover is internally consistent — a torn or misframed
// entry that slipped past the commit-word check would surface here.
func DecodeLoggedRequest(e redolog.Entry) (uint64, *Request, error) {
	if len(e.Payload) < reqHeaderBytes {
		return 0, nil, fmt.Errorf("entry seq %d: payload %d bytes < request header", e.Seq, len(e.Payload))
	}
	seq, req := decodeReq(e.Payload)
	if seq != e.Seq {
		return 0, nil, fmt.Errorf("entry seq %d: framed seq %d disagrees", e.Seq, seq)
	}
	if byte(req.Op) != e.Op {
		return 0, nil, fmt.Errorf("entry seq %d: framed op %d disagrees with entry op %d", e.Seq, req.Op, e.Op)
	}
	if n := reqWireBytes(req); n != e.Len {
		return 0, nil, fmt.Errorf("entry seq %d: framed wire size %d disagrees with entry length %d", e.Seq, n, e.Len)
	}
	if carriesPayload(req.Op) && len(req.Payload) != req.Size {
		return 0, nil, fmt.Errorf("entry seq %d: payload %d bytes, declared size %d", e.Seq, len(req.Payload), req.Size)
	}
	return seq, req, nil
}

// BatchContents returns the constituent requests serialized in a batch
// frame, or (nil, false) when req is not a batch frame.
func BatchContents(req *Request) ([]*Request, bool) {
	if !isBatchOp(req.Op) {
		return nil, false
	}
	return decodeBatch(req.Payload), true
}
