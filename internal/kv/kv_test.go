package kv

import (
	"bytes"
	"testing"

	"prdma/internal/fabric"
	"prdma/internal/host"
	"prdma/internal/pmem"
	"prdma/internal/rnic"
	"prdma/internal/rpc"
	"prdma/internal/sim"
	"prdma/internal/ycsb"
)

func newKV(t *testing.T, kind rpc.Kind, preload, valueSize int) (*sim.Kernel, *Store) {
	t.Helper()
	k := sim.New()
	net := fabric.New(k, fabric.DefaultParams(), 5)
	cli := host.New(k, "cli", net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
	srv := host.New(k, "srv", net, host.DefaultParams(), pmem.DefaultParams(), rnic.DefaultParams())
	store, err := rpc.NewStore(srv, preload, valueSize)
	if err != nil {
		t.Fatal(err)
	}
	engine := rpc.NewServer(srv, store, rpc.DefaultConfig())
	return k, Open(rpc.New(kind, cli, engine, engine.Cfg), cli, preload, valueSize)
}

func TestPutGetRoundTrip(t *testing.T) {
	k, s := newKV(t, rpc.WFlushRPC, 64, 128)
	val := bytes.Repeat([]byte{0x42}, 128)
	k.Go("c", func(p *sim.Proc) {
		w, err := s.Put(p, 7, val)
		if err != nil {
			t.Error(err)
			return
		}
		w.Done.Wait(p)
		// A durable-RPC read needs the server to return real contents:
		// pass a non-nil payload marker via Get's request (the store uses
		// ValueSize; contents realness flows from Put having stored them).
		r, err := s.Client.Call(p, &rpc.Request{Op: rpc.OpRead, Key: 7, Size: 128, Payload: []byte{}})
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(r.Data, val) {
			t.Errorf("got %d bytes, mismatch", len(r.Data))
		}
	})
	k.Run()
}

func TestGetMissingKey(t *testing.T) {
	k, s := newKV(t, rpc.FaRM, 8, 64)
	k.Go("c", func(p *sim.Proc) {
		if _, err := s.Get(p, 999); err == nil {
			t.Error("expected not-found error")
		}
	})
	k.Run()
}

func TestInsertExtendsIndex(t *testing.T) {
	k, s := newKV(t, rpc.FaRM, 8, 64)
	k.Go("c", func(p *sim.Proc) {
		if _, err := s.Put(p, 100, nil); err != nil {
			t.Error(err)
			return
		}
		if _, err := s.Get(p, 100); err != nil {
			t.Errorf("inserted key unreadable: %v", err)
		}
	})
	k.Run()
}

func TestRunWorkloadA(t *testing.T) {
	k, s := newKV(t, rpc.WFlushRPC, 200, 512)
	cfg := ycsb.DefaultConfig()
	cfg.Records = 200
	cfg.ValueSize = 512
	gen := ycsb.NewGenerator(ycsb.A, cfg)
	var res RunResult
	k.Go("c", func(p *sim.Proc) {
		var err error
		res, err = s.Run(p, gen.Next, 300)
		if err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if res.Ops != 300 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.Latency.Count() != 300 || res.Latency.Mean() <= 0 {
		t.Fatal("latency not recorded")
	}
	if res.Throughput().KOPS() <= 0 {
		t.Fatal("throughput not positive")
	}
	if s.Gets == 0 || s.Puts == 0 {
		t.Fatalf("workload A should mix gets (%d) and puts (%d)", s.Gets, s.Puts)
	}
}

func TestRunWorkloadEScans(t *testing.T) {
	k, s := newKV(t, rpc.FaRM, 200, 256)
	cfg := ycsb.DefaultConfig()
	cfg.Records = 200
	cfg.ValueSize = 256
	gen := ycsb.NewGenerator(ycsb.E, cfg)
	k.Go("c", func(p *sim.Proc) {
		if _, err := s.Run(p, gen.Next, 200); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if s.Scans == 0 {
		t.Fatal("workload E issued no scans")
	}
}

func TestAllWorkloadsAllDurableKinds(t *testing.T) {
	for _, w := range ycsb.Workloads {
		for _, kind := range []rpc.Kind{rpc.WFlushRPC, rpc.DaRPC} {
			w, kind := w, kind
			t.Run(w.String()+"/"+kind.String(), func(t *testing.T) {
				k, s := newKV(t, kind, 100, 256)
				cfg := ycsb.DefaultConfig()
				cfg.Records = 100
				cfg.ValueSize = 256
				gen := ycsb.NewGenerator(w, cfg)
				k.Go("c", func(p *sim.Proc) {
					if _, err := s.Run(p, gen.Next, 100); err != nil {
						t.Error(err)
					}
				})
				k.Run()
			})
		}
	}
}
