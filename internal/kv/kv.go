// Package kv is the key-value store substrate of the YCSB evaluation
// (§5.1): 50 K objects with 8-byte keys and 4 KB values live in the server's
// PM; clients keep the key→object index in their local memory and reach
// values over whichever RPC system is under test.
//
// Modeling note: the key→address index is client-cached state, re-synced on
// reconnect in a real deployment; the simulation keeps it in ordinary Go
// memory across server crashes, which matches the paper's setup ("maintain
// KV indexes in the main memory of clients locally", §5.1) — the durability
// experiments are about the values, whose crash behaviour is fully modeled.
package kv

import (
	"fmt"
	"time"

	"prdma/internal/host"
	"prdma/internal/rpc"
	"prdma/internal/sim"
	"prdma/internal/stats"
)

// indexLookup is the client-side cost of one index probe.
const indexLookup = 100 * time.Nanosecond

// Store is a client handle to the remote KV store.
type Store struct {
	Client    rpc.Client
	H         *host.Host
	ValueSize int

	// keys tracks known keys (the client-side index contents).
	keys map[uint64]bool

	// Gets/Puts/Scans count operations.
	Gets, Puts, Scans int64
}

// Open wraps an RPC client as a KV store with n pre-loaded keys.
func Open(c rpc.Client, h *host.Host, preload int, valueSize int) *Store {
	s := &Store{Client: c, H: h, ValueSize: valueSize, keys: make(map[uint64]bool, preload)}
	for i := 0; i < preload; i++ {
		s.keys[uint64(i)] = true
	}
	return s
}

// Get fetches the value for key.
func (s *Store) Get(p *sim.Proc, key uint64) (*rpc.Response, error) {
	s.Gets++
	s.H.Compute(p, indexLookup)
	if !s.keys[key] {
		return nil, fmt.Errorf("kv: key %d not found", key)
	}
	return s.Client.Call(p, &rpc.Request{Op: rpc.OpRead, Key: key, Size: s.ValueSize})
}

// Put stores value under key (insert or overwrite). value may be nil for
// synthetic traffic.
func (s *Store) Put(p *sim.Proc, key uint64, value []byte) (*rpc.Response, error) {
	s.Puts++
	s.H.Compute(p, indexLookup)
	s.keys[key] = true
	return s.Client.Call(p, &rpc.Request{Op: rpc.OpWrite, Key: key, Size: s.ValueSize, Payload: value})
}

// Scan reads n consecutive keys starting at key (workload E).
func (s *Store) Scan(p *sim.Proc, key uint64, n int) (*rpc.Response, error) {
	s.Scans++
	s.H.Compute(p, indexLookup)
	return s.Client.Call(p, &rpc.Request{Op: rpc.OpScan, Key: key, Size: s.ValueSize, ScanLen: n})
}

// Do dispatches a generated request through the typed API.
func (s *Store) Do(p *sim.Proc, req *rpc.Request) (*rpc.Response, error) {
	switch req.Op {
	case rpc.OpWrite:
		return s.Put(p, req.Key, req.Payload)
	case rpc.OpScan:
		return s.Scan(p, req.Key, req.ScanLen)
	default:
		return s.Get(p, req.Key)
	}
}

// RunResult summarizes a workload run.
type RunResult struct {
	Ops     int
	Elapsed time.Duration
	Latency *stats.Latency
}

// Throughput returns the run's throughput.
func (r RunResult) Throughput() stats.Throughput {
	return stats.Throughput{Ops: r.Ops, Elapsed: r.Elapsed}
}

// Run executes ops operations drawn from gen (which may emit multi-request
// sequences, e.g. read-modify-writes) and records per-RPC latency.
func (s *Store) Run(p *sim.Proc, gen func() []*rpc.Request, ops int) (RunResult, error) {
	lat := stats.NewLatency(ops)
	start := p.Now()
	issued := 0
	for issued < ops {
		for _, req := range gen() {
			if !s.keys[req.Key] && req.Op != rpc.OpWrite {
				req.Key = 0 // generator raced ahead of inserts: clamp
			}
			r, err := s.Do(p, req)
			if err != nil {
				return RunResult{}, err
			}
			lat.Add(r.ReadyAt.Sub(r.IssuedAt))
			issued++
			if issued >= ops {
				break
			}
		}
	}
	return RunResult{Ops: issued, Elapsed: p.Now().Sub(start), Latency: lat}, nil
}
