package cache

import (
	"bytes"
	"testing"
	"testing/quick"

	"prdma/internal/pmem"
	"prdma/internal/sim"
)

func newLLC() (*sim.Kernel, *pmem.Device, *LLC) {
	k := sim.New()
	pm := pmem.New(k, pmem.DefaultParams())
	return k, pm, New(k, pm)
}

func TestDirtyDataVisibleButVolatile(t *testing.T) {
	k, pm, c := newLLC()
	data := []byte("ddio placed me in the cache")
	c.InstallDirty(1000, len(data), data)
	if got := c.Read(1000, len(data)); !bytes.Equal(got, data) {
		t.Fatalf("cache read = %q", got)
	}
	// PM does not have it: this is the read-after-write trap.
	if got := pm.ReadBytes(1000, len(data)); bytes.Equal(got, data) {
		t.Fatal("dirty data leaked to PM without a flush")
	}
	c.Crash()
	if got := c.Read(1000, len(data)); bytes.Equal(got, data) {
		t.Fatal("dirty data survived a crash")
	}
	_ = k
}

func TestClflushPersists(t *testing.T) {
	k, pm, c := newLLC()
	data := bytes.Repeat([]byte{0x5A}, 256)
	c.InstallDirty(0, len(data), data)
	done := c.Clflush(k.Now(), 0, len(data))
	k.RunUntil(done)
	if got := pm.ReadBytes(0, len(data)); !bytes.Equal(got, data) {
		t.Fatal("clflush did not persist data")
	}
	if c.DirtyIn(0, len(data)) {
		t.Fatal("lines still dirty after clflush")
	}
	// After flush, crash loses nothing.
	c.Crash()
	if got := c.Read(0, len(data)); !bytes.Equal(got, data) {
		t.Fatal("persisted data lost after crash")
	}
}

func TestClflushCleanRangeIsFree(t *testing.T) {
	k, _, c := newLLC()
	done := c.Clflush(k.Now(), 0, 4096)
	if done != k.Now() {
		t.Fatalf("clean flush cost time: %v", done)
	}
}

func TestPartialLineWritePreservesDurableBytes(t *testing.T) {
	k, pm, c := newLLC()
	// Durable bytes first.
	pm.WriteRaw(0, bytes.Repeat([]byte{1}, 64))
	// Dirty just the middle of the line.
	c.InstallDirty(16, 8, bytes.Repeat([]byte{2}, 8))
	got := c.Read(0, 64)
	for i, b := range got {
		want := byte(1)
		if i >= 16 && i < 24 {
			want = 2
		}
		if b != want {
			t.Fatalf("byte %d = %d, want %d", i, b, want)
		}
	}
	// Flush writes the merged line.
	done := c.Clflush(k.Now(), 0, 64)
	k.RunUntil(done)
	if pm.ReadBytes(20, 1)[0] != 2 || pm.ReadBytes(0, 1)[0] != 1 {
		t.Fatal("merged line not persisted correctly")
	}
}

func TestReadMergesCacheAndPM(t *testing.T) {
	_, pm, c := newLLC()
	pm.WriteRaw(0, bytes.Repeat([]byte{9}, 192))
	c.InstallDirty(64, 64, bytes.Repeat([]byte{8}, 64))
	got := c.Read(0, 192)
	if got[0] != 9 || got[64] != 8 || got[128] != 9 {
		t.Fatalf("merge wrong: %v %v %v", got[0], got[64], got[128])
	}
}

func TestDirtyTrackingAndPeak(t *testing.T) {
	_, _, c := newLLC()
	c.InstallDirty(0, 128, nil)
	if !c.DirtyIn(0, 1) || !c.DirtyIn(64, 64) {
		t.Fatal("DirtyIn false for dirty range")
	}
	if c.DirtyIn(128, 64) {
		t.Fatal("DirtyIn true for clean range")
	}
	if c.DirtyBytes() != 128 {
		t.Fatalf("DirtyBytes = %d", c.DirtyBytes())
	}
	if c.DirtyBytesPeak != 128 {
		t.Fatalf("peak = %d", c.DirtyBytesPeak)
	}
}

func TestClflushSyncBlocks(t *testing.T) {
	k, _, c := newLLC()
	c.InstallDirty(0, 4096, nil)
	var done sim.Time
	k.Go("f", func(p *sim.Proc) {
		c.ClflushSync(p, 0, 4096)
		done = p.Now()
	})
	k.Run()
	if done == 0 {
		t.Fatal("flush of dirty data consumed no time")
	}
}

func TestUnalignedRanges(t *testing.T) {
	_, _, c := newLLC()
	c.InstallDirty(100, 10, []byte("0123456789"))
	got := c.Read(100, 10)
	if string(got) != "0123456789" {
		t.Fatalf("got %q", got)
	}
	if !c.DirtyIn(64, 1) || !c.DirtyIn(105, 1) {
		t.Fatal("line covering unaligned write not dirty")
	}
}

// Property: read-your-writes — Read always returns the most recent
// InstallDirty contents for any byte, regardless of overlap pattern.
func TestReadYourWritesProperty(t *testing.T) {
	type op struct {
		Addr uint16
		Len  uint8
		Val  byte
	}
	f := func(ops []op) bool {
		_, _, c := newLLC()
		shadow := make(map[int64]byte)
		for _, o := range ops {
			n := int(o.Len%200) + 1
			data := bytes.Repeat([]byte{o.Val}, n)
			c.InstallDirty(int64(o.Addr), n, data)
			for i := 0; i < n; i++ {
				shadow[int64(o.Addr)+int64(i)] = o.Val
			}
		}
		for a, v := range shadow {
			if c.Read(a, 1)[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: after Clflush of everything, PM equals the cache view and a
// crash changes nothing.
func TestFlushThenCrashEquivalenceProperty(t *testing.T) {
	f := func(vals []byte) bool {
		if len(vals) == 0 {
			return true
		}
		k, pm, c := newLLC()
		c.InstallDirty(0, len(vals), vals)
		view := c.Read(0, len(vals))
		done := c.Clflush(k.Now(), 0, len(vals))
		k.RunUntil(done)
		c.Crash()
		after := c.Read(0, len(vals))
		return bytes.Equal(view, after) && bytes.Equal(pm.ReadBytes(0, len(vals)), view)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
