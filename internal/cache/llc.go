// Package cache models the CPU last-level cache as it matters to remote
// persistence: a volatile dirty-byte overlay in front of persistent memory.
//
// With Intel DDIO enabled, inbound RNIC DMA is steered into the LLC instead
// of the memory controller (paper §2.3). Data there is visible to CPU loads
// — and, crucially, to subsequent RDMA reads, which is why the SNIA
// read-after-write persistence check is defeated (§2.4) — but it is lost on
// a power failure until the CPU explicitly writes it back with
// clflush/clwb (§4.4.2).
package cache

import (
	"time"

	"prdma/internal/pmem"
	"prdma/internal/sim"
)

// LineSize is the coherence granularity. Dirty state is tracked per line.
const LineSize = 64

// LLC is a last-level-cache model for one host.
type LLC struct {
	K  *sim.Kernel
	PM *pmem.Device

	// dirty maps line-aligned addresses to line contents not yet in PM.
	// Lines may be partially valid; we store whole lines and fill from PM
	// on allocation, which is exactly what a write-allocate cache does.
	dirty map[int64][]byte

	// Flushes counts clflush operations for model introspection.
	Flushes int64
	// DirtyBytesPeak tracks the high-water mark of volatile dirty data.
	DirtyBytesPeak int
}

// New returns an empty cache in front of pm.
func New(k *sim.Kernel, pm *pmem.Device) *LLC {
	return &LLC{K: k, PM: pm, dirty: make(map[int64][]byte)}
}

// InstallDirty places data into the cache (DDIO DMA or CPU stores) without
// persisting it. Contents become visible to Read immediately; they are
// volatile until Clflush. data may be nil, or shorter than n, for
// timing-only traffic with a real prefix: the remaining lines are marked
// dirty with zero contents so that crash/flush accounting still works.
func (c *LLC) InstallDirty(addr int64, n int, data []byte) {
	if n <= 0 {
		return
	}
	end := addr + int64(n)
	for a := alignDown(addr); a < end; a += LineSize {
		line, ok := c.dirty[a]
		if !ok {
			// Write-allocate: fill the line from PM so partially
			// overwritten lines keep their durable bytes visible.
			line = c.PM.ReadBytes(a, LineSize)
			c.dirty[a] = line
		}
		if data != nil {
			lo := max64(a, addr)
			hi := min64(a+LineSize, end)
			srcLo, srcHi := lo-addr, hi-addr
			if srcLo >= int64(len(data)) {
				continue // synthetic tail
			}
			if srcHi > int64(len(data)) {
				srcHi = int64(len(data))
			}
			copy(line[lo-a:], data[srcLo:srcHi])
		}
	}
	if n := len(c.dirty) * LineSize; n > c.DirtyBytesPeak {
		c.DirtyBytesPeak = n
	}
}

// Read returns the bytes of [addr, addr+n) as the CPU (or a DDIO-served
// RDMA read) would see them: dirty cache lines take precedence over PM.
func (c *LLC) Read(addr int64, n int) []byte {
	return c.ReadInto(addr, make([]byte, n))
}

// ReadInto fills dst with the bytes of [addr, addr+len(dst)) — PM contents
// overlaid with dirty cache lines — and returns dst. The alloc-free Read
// for hot paths that reuse a scratch buffer.
func (c *LLC) ReadInto(addr int64, dst []byte) []byte {
	n := len(dst)
	c.PM.ReadBytesInto(addr, dst)
	end := addr + int64(n)
	for a := alignDown(addr); a < end; a += LineSize {
		line, ok := c.dirty[a]
		if !ok {
			continue
		}
		lo := max64(a, addr)
		hi := min64(a+LineSize, end)
		copy(dst[lo-addr:hi-addr], line[lo-a:hi-a])
	}
	return dst
}

// DirtyIn reports whether any line of [addr, addr+n) is dirty (volatile).
func (c *LLC) DirtyIn(addr int64, n int) bool {
	end := addr + int64(n)
	for a := alignDown(addr); a < end; a += LineSize {
		if _, ok := c.dirty[a]; ok {
			return true
		}
	}
	return false
}

// DirtyBytes returns the current volatile byte count.
func (c *LLC) DirtyBytes() int { return len(c.dirty) * LineSize }

// Clflush writes the dirty lines of [addr, addr+n) back to PM over the CPU
// persist path and returns the completion time of the resulting persist.
// Clean ranges cost nothing and complete immediately.
func (c *LLC) Clflush(at sim.Time, addr int64, n int) sim.Time {
	c.Flushes++
	end := addr + int64(n)
	done := at
	for a := alignDown(addr); a < end; a += LineSize {
		line, ok := c.dirty[a]
		if !ok {
			continue
		}
		t := c.PM.Persist(at, a, LineSize, line, pmem.CPU)
		if t > done {
			done = t
		}
		delete(c.dirty, a)
	}
	return done
}

// ClflushSync flushes and blocks p until the data is durable.
func (c *LLC) ClflushSync(p *sim.Proc, addr int64, n int) {
	done := c.Clflush(p.K.Now(), addr, n)
	p.Sleep(done.Sub(p.K.Now()))
}

// FlushCost estimates the CPU-path persist time for n dirty bytes without
// performing the flush (used by timing-only fast paths).
func (c *LLC) FlushCost(n int) time.Duration {
	return c.PM.PersistCost(n, pmem.CPU)
}

// Crash discards all dirty lines: they were volatile.
func (c *LLC) Crash() {
	c.dirty = make(map[int64][]byte)
}

func alignDown(a int64) int64 { return a &^ (LineSize - 1) }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
