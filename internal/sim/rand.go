package sim

import "math"

// Rand is a small deterministic pseudo-random generator (splitmix64 core).
// The simulation cannot use math/rand's global state because experiment
// drivers must be exactly reproducible across processes and Go versions.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative pseudo-random int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a pseudo-random int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed value (Box–Muller).
func (r *Rand) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// LogNorm returns a log-normally distributed value whose underlying normal
// has the given mu and sigma. Used for service-time jitter: long right tail,
// never negative.
func (r *Rand) LogNorm(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork returns a new generator deterministically derived from this one,
// used to give independent substreams to independent model components.
func (r *Rand) Fork() *Rand { return NewRand(r.Uint64()) }
