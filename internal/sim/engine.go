package sim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Engine runs several Kernels as one deterministic simulation using
// conservative time windows (classic conservative PDES with a global window
// barrier instead of per-link null messages).
//
// The deployment is partitioned: every simulated component lives on exactly
// one kernel, and all interaction between partitions goes through Post, which
// must target a timestamp at least one lookahead past the sender's clock. The
// lookahead is the minimum cross-partition latency the model guarantees — for
// the RDMA fabric, the wire propagation delay, since no message can arrive
// sooner than it.
//
// The window loop is:
//
//  1. deliver all cross-partition messages emitted by the previous window
//     (merged in canonical (time, source-partition, emission-index) order,
//     so destination sequence numbers — the tie-break — are reproducible),
//  2. find the earliest pending event across all kernels; call it T,
//  3. run every kernel up to the window edge T+lookahead-1, in parallel,
//  4. barrier, go to 1.
//
// Step 3 is safe because a message sent at time s >= T arrives at
// s+lookahead > T+lookahead-1: nothing a peer does inside the window can
// affect this window. Step 2's canonical merge makes the result independent
// of worker count and interleaving: kernels are deterministic in isolation,
// and everything that crosses between them is ordered by data, not by
// execution order. That is the engine's contract — byte-identical output at
// a fixed seed for any number of workers, including one.
type Engine struct {
	kernels   []*Kernel
	lookahead Time
	workers   int

	// deadline is the inclusive edge of the window being executed; workers
	// read it (written by the coordinator strictly before dispatch).
	deadline Time
	// outboxes holds cross-partition messages: one slot per source kernel,
	// appended only by events running on that kernel.
	outboxes [][]crossMsg
	merged   []crossMsg // flush scratch, reused across windows

	// work/wg form the persistent worker pool, created lazily on the first
	// parallel window and torn down by Shutdown. workersUp guards both.
	work      chan *Kernel
	wg        sync.WaitGroup
	workersUp bool

	// serialized is a nesting counter: while positive, windows execute the
	// kernels sequentially on the stepping goroutine in creation order —
	// exactly the workers<=1 code path. Crash/recovery spans hold a token
	// per crashed replica so recovery procs see one global event order.
	// Written only by the stepping goroutine (driver context at a window
	// barrier, or an event inside a serialized window).
	serialized int

	stopped atomic.Bool
	crossed uint64 // cross-partition messages delivered
	windows uint64 // windows executed; the partitioned crash coordinate
}

type crossMsg struct {
	dst *Kernel
	at  Time
	fn  func()
}

// NewEngine returns an engine with the given lookahead (the minimum
// cross-partition delay any Post will honor) and worker goroutine count.
// workers <= 1 runs the windows on the calling goroutine; the output is
// byte-identical at any setting. Kernels are added with NewKernel.
func NewEngine(lookahead time.Duration, workers int) *Engine {
	if lookahead <= 0 {
		panic("sim: engine lookahead must be positive")
	}
	if workers < 1 {
		workers = 1
	}
	return &Engine{lookahead: Time(lookahead), workers: workers, deadline: -1}
}

// NewKernel adds a partition to the engine and returns its kernel.
// Partitions must all be created before Run.
func (e *Engine) NewKernel() *Kernel {
	k := New()
	k.eng = e
	k.engID = len(e.kernels)
	e.kernels = append(e.kernels, k)
	e.outboxes = append(e.outboxes, nil)
	return k
}

// Kernels returns the partition kernels in creation order.
func (e *Engine) Kernels() []*Kernel { return e.kernels }

// Lookahead returns the engine's conservative lookahead.
func (e *Engine) Lookahead() time.Duration { return time.Duration(e.lookahead) }

// Workers returns the worker count the engine was built with.
func (e *Engine) Workers() int { return e.workers }

// Fired reports the total events executed across all partitions.
func (e *Engine) Fired() uint64 {
	var n uint64
	for _, k := range e.kernels {
		n += k.Fired()
	}
	return n
}

// Crossed reports how many cross-partition messages have been delivered.
func (e *Engine) Crossed() uint64 { return e.crossed }

// Windows reports how many conservative windows have executed. Every window
// boundary is a global barrier — no kernel is mid-event, every delivered
// cross message is in a destination queue — so the window index is a stable,
// enumerable coordinate for external intervention: with identical inputs the
// i-th window covers the same events in every run, at any worker count. The
// partitioned crash sweep crashes "at window i" the way the serial sweep
// crashes "after event i".
func (e *Engine) Windows() uint64 { return e.windows }

// Serialize forces subsequent windows to run as an exact global event merge
// on the stepping goroutine (see stepMerged) — the same total order a single
// serial kernel would produce, independent of the worker count — until a
// matching Unserialize. Calls nest. Crash/recovery spans use it: with a
// replica down, recovery procs reach across kernels in patterns the
// conservative lookahead cannot order (reestablish, log replay, quiesce
// barriers), and a serialized window gives them that global order, while
// Post delivers cross messages directly instead of deferring them to the
// next barrier. Call only from a window barrier (driver context) or from an
// event already inside a serialized window.
func (e *Engine) Serialize() {
	e.serialized++
	e.syncClocks()
}

// syncClocks raises every kernel's clock to the engine-wide maximum. Legal
// whenever a global order holds (a window barrier, or mid-event in a merged
// window): every pending event is then at or past the maximum clock, so no
// kernel's queue can go backwards. Serialized spans need it because driver
// barrier actions and recovery procs schedule onto kernels whose clocks lag
// the barrier (a crashed replica's clock froze at its crash) — without the
// sync those events would land in other kernels' past. stepMerged re-syncs
// at every serialized barrier so the invariant holds for the span's length.
func (e *Engine) syncClocks() {
	var max Time
	for _, k := range e.kernels {
		if k.now > max {
			max = k.now
		}
	}
	for _, k := range e.kernels {
		if k.now < max {
			k.now = max
		}
	}
}

// Unserialize releases one Serialize token.
func (e *Engine) Unserialize() {
	if e.serialized <= 0 {
		panic("sim: Unserialize without matching Serialize")
	}
	e.serialized--
}

// Serialized reports whether the engine is inside a serialized span.
func (e *Engine) Serialized() bool { return e.serialized > 0 }

// Post schedules fn at time `at` on the dst partition, from an event
// currently executing on src (or from setup code before Run). The timestamp
// must be beyond the current window edge; posts at src.Now() plus at least
// the lookahead always are. Messages are buffered per source and delivered
// at the next window barrier in canonical order.
//
// Inside a serialized span the window edge does not bind: kernels step
// sequentially on one goroutine, so a global event order exists without the
// lookahead discipline, and the message is scheduled onto dst directly
// (clamped to dst's clock — recovery procs reach kernels whose clocks lag
// the window, exactly the interactions Serialize exists to legalize). The
// branch depends only on the serialized state, never the worker count, so
// runs stay byte-identical across workers.
func (e *Engine) Post(src, dst *Kernel, at Time, fn func()) {
	if src == dst {
		src.Schedule(at, fn)
		return
	}
	if src.eng != e || dst.eng != e {
		panic("sim: Post across kernels that do not share this engine")
	}
	if e.serialized > 0 {
		if at < dst.now {
			at = dst.now
		}
		dst.Schedule(at, fn)
		return
	}
	if at <= e.deadline {
		panic(fmt.Sprintf("sim: cross-partition post at %v inside the current window (edge %v): lookahead violated", at, e.deadline))
	}
	e.outboxes[src.engID] = append(e.outboxes[src.engID], crossMsg{dst: dst, at: at, fn: fn})
}

// PostAfterLookahead schedules fn on dst exactly one lookahead past src's
// clock — the earliest always-legal cross-partition timestamp.
func (e *Engine) PostAfterLookahead(src, dst *Kernel, fn func()) {
	e.Post(src, dst, src.Now()+e.lookahead, fn)
}

// Stop makes Run return at the next window barrier. Safe to call from any
// partition's events.
func (e *Engine) Stop() { e.stopped.Store(true) }

// startWorkers lazily brings up the persistent worker pool. The pool lives
// until Shutdown so that window-stepped drivers (RunWindows callers) do not
// respawn goroutines per call.
func (e *Engine) startWorkers() {
	if e.workersUp {
		return
	}
	e.work = make(chan *Kernel)
	for i := 0; i < e.workers; i++ {
		go func() {
			for k := range e.work {
				k.RunUntil(e.deadline)
				e.wg.Done()
			}
		}()
	}
	e.workersUp = true
}

// stepWindow executes one conservative window: deliver the previous window's
// cross messages, open the window at the globally earliest event (idle
// stretches are jumped in one step, exactly like the serial kernel), run
// every kernel with work up to the inclusive edge, barrier. Returns false
// when the simulation is quiescent (no pending events anywhere and nothing
// buffered) or Stop was called.
func (e *Engine) stepWindow() bool {
	if e.stopped.Load() {
		return false
	}
	e.flush()
	next := Time(math.MaxInt64)
	for _, k := range e.kernels {
		if t, ok := k.NextEventAt(); ok && t < next {
			next = t
		}
	}
	if next == math.MaxInt64 {
		return false
	}
	e.deadline = next + e.lookahead - 1
	e.windows++
	if e.serialized > 0 {
		e.stepMerged()
		return true
	}
	if e.workers <= 1 {
		for _, k := range e.kernels {
			if t, ok := k.NextEventAt(); ok && t <= e.deadline {
				k.RunUntil(e.deadline)
			}
		}
		return true
	}
	e.startWorkers()
	n := 0
	for _, k := range e.kernels {
		if t, ok := k.NextEventAt(); ok && t <= e.deadline {
			n++
		}
	}
	e.wg.Add(n)
	for _, k := range e.kernels {
		if t, ok := k.NextEventAt(); ok && t <= e.deadline {
			e.work <- k
		}
	}
	e.wg.Wait()
	return true
}

// stepMerged runs one serialized window as an exact global event merge:
// repeatedly execute the globally earliest head event (ties broken by kernel
// creation order) until nothing at or before the window edge remains. No
// kernel ever runs ahead of the merge clock, so an event touching another
// kernel directly — or posting to it — always lands in that kernel's future,
// which is what makes recovery choreography legal inside a serialized span.
func (e *Engine) stepMerged() {
	for {
		var kmin *Kernel
		var tmin Time
		for _, k := range e.kernels {
			if t, ok := k.NextEventAt(); ok && t <= e.deadline && (kmin == nil || t < tmin) {
				tmin, kmin = t, k
			}
		}
		if kmin == nil {
			e.syncClocks()
			return
		}
		kmin.runHead(e.deadline)
	}
}

// Run executes windows until every partition is quiescent (no pending events
// and no undelivered cross messages) or Stop is called.
func (e *Engine) Run() {
	e.stopped.Store(false)
	for e.stepWindow() {
	}
}

// RunWindows executes at most n windows and reports how many ran (fewer only
// when the simulation went quiescent or was stopped first). It pauses the
// world at an exact window barrier — no kernel mid-event, a global order over
// everything executed so far — which is where the partitioned crash sweep
// injects crashes; see Windows.
func (e *Engine) RunWindows(n int) int {
	e.stopped.Store(false)
	ran := 0
	for ran < n && e.stepWindow() {
		ran++
	}
	return ran
}

// Shutdown tears the deployment down: stops the worker pool and reaps every
// kernel's parked procs and event pools. Back-to-back deployments in one
// process previously pinned ~100 MB each, because every proc goroutine left
// blocked at its resume channel (plus the event free lists keeping payload
// buffers reachable) survived the deployment. The engine must be paused at a
// barrier (not running) and cannot be reused afterwards.
func (e *Engine) Shutdown() {
	e.stopped.Store(true)
	if e.workersUp {
		close(e.work)
		e.workersUp = false
	}
	for _, k := range e.kernels {
		k.Shutdown()
	}
	for i := range e.outboxes {
		e.outboxes[i] = nil
	}
	e.merged = nil
}

// flush delivers buffered cross messages into their destination kernels in
// canonical order: ascending timestamp, ties by (source partition, emission
// index). Destination Schedule assigns the tie-breaking sequence numbers in
// this order, so the resulting execution order is a pure function of the
// messages' data — independent of how many workers produced them.
func (e *Engine) flush() {
	m := e.merged[:0]
	for i, box := range e.outboxes {
		m = append(m, box...)
		for j := range box {
			box[j] = crossMsg{}
		}
		e.outboxes[i] = box[:0]
	}
	if len(m) == 0 {
		return
	}
	sortCrossStable(m)
	for i := range m {
		cm := &m[i]
		cm.dst.Schedule(cm.at, cm.fn)
		*cm = crossMsg{}
	}
	e.crossed += uint64(len(m))
	e.merged = m[:0]
}

// sortCrossStable is a stable insertion/merge sort by timestamp. Cross
// batches per window are small (bounded by messages in flight), and the
// concatenation is already sorted per source, so insertion sort with a
// binary search beats the generic sort for the common sizes.
func sortCrossStable(m []crossMsg) {
	for i := 1; i < len(m); i++ {
		if m[i].at >= m[i-1].at {
			continue
		}
		// Binary search the insertion point in the sorted prefix; equal
		// timestamps insert after, preserving source order (stability).
		lo, hi := 0, i
		for lo < hi {
			mid := (lo + hi) / 2
			if m[mid].at <= m[i].at {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		cm := m[i]
		copy(m[lo+1:i+1], m[lo:i])
		m[lo] = cm
	}
}
