package sim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Engine runs several Kernels as one deterministic simulation using
// conservative time windows (classic conservative PDES with a global window
// barrier instead of per-link null messages).
//
// The deployment is partitioned: every simulated component lives on exactly
// one kernel, and all interaction between partitions goes through Post, which
// must target a timestamp at least one lookahead past the sender's clock. The
// lookahead is the minimum cross-partition latency the model guarantees — for
// the RDMA fabric, the wire propagation delay, since no message can arrive
// sooner than it.
//
// The window loop is:
//
//  1. deliver all cross-partition messages emitted by the previous window
//     (merged in canonical (time, source-partition, emission-index) order,
//     so destination sequence numbers — the tie-break — are reproducible),
//  2. find the earliest pending event across all kernels; call it T,
//  3. run every kernel up to the window edge T+lookahead-1, in parallel,
//  4. barrier, go to 1.
//
// Step 3 is safe because a message sent at time s >= T arrives at
// s+lookahead > T+lookahead-1: nothing a peer does inside the window can
// affect this window. Step 2's canonical merge makes the result independent
// of worker count and interleaving: kernels are deterministic in isolation,
// and everything that crosses between them is ordered by data, not by
// execution order. That is the engine's contract — byte-identical output at
// a fixed seed for any number of workers, including one.
type Engine struct {
	kernels   []*Kernel
	lookahead Time
	workers   int

	// deadline is the inclusive edge of the window being executed; workers
	// read it (written by the coordinator strictly before dispatch).
	deadline Time
	// outboxes holds cross-partition messages: one slot per source kernel,
	// appended only by events running on that kernel.
	outboxes [][]crossMsg
	merged   []crossMsg // flush scratch, reused across windows

	stopped atomic.Bool
	crossed uint64 // cross-partition messages delivered
}

type crossMsg struct {
	dst *Kernel
	at  Time
	fn  func()
}

// NewEngine returns an engine with the given lookahead (the minimum
// cross-partition delay any Post will honor) and worker goroutine count.
// workers <= 1 runs the windows on the calling goroutine; the output is
// byte-identical at any setting. Kernels are added with NewKernel.
func NewEngine(lookahead time.Duration, workers int) *Engine {
	if lookahead <= 0 {
		panic("sim: engine lookahead must be positive")
	}
	if workers < 1 {
		workers = 1
	}
	return &Engine{lookahead: Time(lookahead), workers: workers, deadline: -1}
}

// NewKernel adds a partition to the engine and returns its kernel.
// Partitions must all be created before Run.
func (e *Engine) NewKernel() *Kernel {
	k := New()
	k.eng = e
	k.engID = len(e.kernels)
	e.kernels = append(e.kernels, k)
	e.outboxes = append(e.outboxes, nil)
	return k
}

// Kernels returns the partition kernels in creation order.
func (e *Engine) Kernels() []*Kernel { return e.kernels }

// Lookahead returns the engine's conservative lookahead.
func (e *Engine) Lookahead() time.Duration { return time.Duration(e.lookahead) }

// Workers returns the worker count the engine was built with.
func (e *Engine) Workers() int { return e.workers }

// Fired reports the total events executed across all partitions.
func (e *Engine) Fired() uint64 {
	var n uint64
	for _, k := range e.kernels {
		n += k.Fired()
	}
	return n
}

// Crossed reports how many cross-partition messages have been delivered.
func (e *Engine) Crossed() uint64 { return e.crossed }

// Post schedules fn at time `at` on the dst partition, from an event
// currently executing on src (or from setup code before Run). The timestamp
// must be beyond the current window edge; posts at src.Now() plus at least
// the lookahead always are. Messages are buffered per source and delivered
// at the next window barrier in canonical order.
func (e *Engine) Post(src, dst *Kernel, at Time, fn func()) {
	if src == dst {
		src.Schedule(at, fn)
		return
	}
	if src.eng != e || dst.eng != e {
		panic("sim: Post across kernels that do not share this engine")
	}
	if at <= e.deadline {
		panic(fmt.Sprintf("sim: cross-partition post at %v inside the current window (edge %v): lookahead violated", at, e.deadline))
	}
	e.outboxes[src.engID] = append(e.outboxes[src.engID], crossMsg{dst: dst, at: at, fn: fn})
}

// PostAfterLookahead schedules fn on dst exactly one lookahead past src's
// clock — the earliest always-legal cross-partition timestamp.
func (e *Engine) PostAfterLookahead(src, dst *Kernel, fn func()) {
	e.Post(src, dst, src.Now()+e.lookahead, fn)
}

// Stop makes Run return at the next window barrier. Safe to call from any
// partition's events.
func (e *Engine) Stop() { e.stopped.Store(true) }

// Run executes windows until every partition is quiescent (no pending events
// and no undelivered cross messages) or Stop is called.
func (e *Engine) Run() {
	e.stopped.Store(false)
	var work chan *Kernel
	var wg sync.WaitGroup
	if e.workers > 1 {
		work = make(chan *Kernel)
		for i := 0; i < e.workers; i++ {
			go func() {
				for k := range work {
					k.RunUntil(e.deadline)
					wg.Done()
				}
			}()
		}
		defer close(work)
	}
	for !e.stopped.Load() {
		e.flush()
		next := Time(math.MaxInt64)
		for _, k := range e.kernels {
			if t, ok := k.NextEventAt(); ok && t < next {
				next = t
			}
		}
		if next == math.MaxInt64 {
			return
		}
		// The window opens at the globally earliest event: idle stretches
		// are jumped in one step, exactly like the serial kernel.
		e.deadline = next + e.lookahead - 1
		if e.workers <= 1 {
			for _, k := range e.kernels {
				if t, ok := k.NextEventAt(); ok && t <= e.deadline {
					k.RunUntil(e.deadline)
				}
			}
			continue
		}
		n := 0
		for _, k := range e.kernels {
			if t, ok := k.NextEventAt(); ok && t <= e.deadline {
				n++
			}
		}
		wg.Add(n)
		for _, k := range e.kernels {
			if t, ok := k.NextEventAt(); ok && t <= e.deadline {
				work <- k
			}
		}
		wg.Wait()
	}
}

// flush delivers buffered cross messages into their destination kernels in
// canonical order: ascending timestamp, ties by (source partition, emission
// index). Destination Schedule assigns the tie-breaking sequence numbers in
// this order, so the resulting execution order is a pure function of the
// messages' data — independent of how many workers produced them.
func (e *Engine) flush() {
	m := e.merged[:0]
	for i, box := range e.outboxes {
		m = append(m, box...)
		for j := range box {
			box[j] = crossMsg{}
		}
		e.outboxes[i] = box[:0]
	}
	if len(m) == 0 {
		return
	}
	sortCrossStable(m)
	for i := range m {
		cm := &m[i]
		cm.dst.Schedule(cm.at, cm.fn)
		*cm = crossMsg{}
	}
	e.crossed += uint64(len(m))
	e.merged = m[:0]
}

// sortCrossStable is a stable insertion/merge sort by timestamp. Cross
// batches per window are small (bounded by messages in flight), and the
// concatenation is already sorted per source, so insertion sort with a
// binary search beats the generic sort for the common sizes.
func sortCrossStable(m []crossMsg) {
	for i := 1; i < len(m); i++ {
		if m[i].at >= m[i-1].at {
			continue
		}
		// Binary search the insertion point in the sorted prefix; equal
		// timestamps insert after, preserving source order (stability).
		lo, hi := 0, i
		for lo < hi {
			mid := (lo + hi) / 2
			if m[mid].at <= m[i].at {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		cm := m[i]
		copy(m[lo+1:i+1], m[lo:i])
		m[lo] = cm
	}
}
