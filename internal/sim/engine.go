package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Engine runs several Kernels as one deterministic simulation using
// conservative time windows (classic conservative PDES with a global window
// barrier instead of per-link null messages).
//
// The deployment is partitioned: every simulated component lives on exactly
// one kernel, and all interaction between partitions goes through Post, which
// must target a timestamp at least one lookahead past the sender's clock. The
// lookahead is the minimum cross-partition latency the model guarantees — for
// the RDMA fabric, the wire propagation delay, since no message can arrive
// sooner than it.
//
// The window loop is:
//
//  1. deliver all cross-partition messages emitted by the previous window
//     (merged in canonical (time, source-partition, emission-index) order,
//     so destination sequence numbers — the tie-break — are reproducible),
//  2. find the earliest pending event across all kernels; call it T,
//  3. run every kernel with work up to the window edge T+lookahead-1,
//  4. barrier, go to 1.
//
// Step 3 is safe because a message sent at time s >= T arrives at
// s+lookahead > T+lookahead-1: nothing a peer does inside the window can
// affect this window. Step 2's canonical merge makes the result independent
// of worker count and interleaving: kernels are deterministic in isolation,
// and everything that crosses between them is ordered by data, not by
// execution order. That is the engine's contract — byte-identical output at
// a fixed seed for any number of workers, including one.
//
// Coordination tax. Steady-state windows avoid almost all of the loop above:
// a window whose only active kernel cannot interact with anyone is *fused*
// with its successors and run back-to-back on the coordinator (see fuse),
// idle kernels are never dispatched, and multi-kernel windows use a
// generation barrier (two atomics per worker per window) over statically
// sharded kernels instead of channel sends. None of this changes what a
// window *is*: the window counter, the delivery order, and the state at
// every window boundary are bit-identical whether or not windows fuse.
type Engine struct {
	kernels   []*Kernel
	lookahead Time
	workers   int

	// deadline is the inclusive edge of the window being executed; workers
	// read it (written by the coordinator strictly before the barrier
	// release, so the generation bump publishes it).
	deadline Time
	// outboxes holds cross-partition messages: one slot per source kernel,
	// appended only by events running on that kernel.
	outboxes [][]crossMsg

	// Barrier worker pool (lazily started, torn down by Shutdown, restarted
	// clean by the next startWorkers). The coordinator owns shard 0; helper i
	// owns shards[i]. A window is opened by bumping barGen (helpers spin
	// briefly, then park on barCond) and closed when barDone reaches helpers.
	shards    [][]*Kernel
	sharded   int // len(kernels) when shards were last built
	helpers   int
	barGen    atomic.Uint64
	barDone   atomic.Int64
	barQuit   atomic.Bool
	sleepers  atomic.Int64
	barMu     sync.Mutex
	barCond   *sync.Cond
	hwg       sync.WaitGroup
	workersUp bool

	// serialized is a nesting counter: while positive, windows execute as an
	// exact global event merge on the stepping goroutine (see stepMerged).
	// Crash/recovery spans hold a token per crashed replica so recovery
	// procs see one global event order. Written only by the stepping
	// goroutine (driver context at a window barrier, or an event inside a
	// serialized window).
	serialized int

	// fusion gates window fusion (on by default); SetWindowFusion turns it
	// off for before/after comparisons. Fusion never changes simulation
	// results, only how many barriers realize the same windows.
	fusion bool

	// spin is how many Gosched rounds a helper waits on the generation
	// before parking on the condvar; fixed at construction (from
	// barSpinRounds) so helpers never read a mutable global.
	spin int

	// hooks run at every window barrier's flush, in coordinator context with
	// all kernels quiesced (see AddFlushHook).
	hooks []func()

	stopped atomic.Bool
	crossed uint64 // cross-partition messages delivered
	windows uint64 // windows executed; the partitioned crash coordinate

	// Coordination counters (deterministic at any worker count).
	fused     uint64 // windows executed inside fused stretches
	idleSkips uint64 // kernel dispatches skipped because the kernel was idle
	barriers  uint64 // windows that needed more than one kernel

	// flush scratch for the k-way outbox merge, reused across windows.
	mergeSrcs  []int
	mergeHeads []int
}

type crossMsg struct {
	dst *Kernel
	at  Time
	fn  func()
}

// barSpinRounds seeds Engine.spin: how many Gosched rounds a helper spins on
// the generation before parking on the condvar. A var so tests can force the
// park path (set to 0 around engine construction) and hammer the
// park/broadcast handshake under -race; like windowFusionDefault it must not
// change concurrently with engine construction.
var barSpinRounds = 256

// barStallTimeout bounds the coordinator's wait for helpers to finish a
// window. Helpers cannot legally disappear mid-window, so hitting it means a
// lost helper (or a barrier-protocol bug); the coordinator panics with the
// barrier state instead of spinning silently forever.
const barStallTimeout = 30 * time.Second

// windowFusionDefault seeds the fusion flag of new engines. Tests flip it
// via SetDefaultWindowFusion for before/after comparisons; it is not safe to
// change concurrently with engine construction.
var windowFusionDefault = true

// SetDefaultWindowFusion sets whether newly created engines fuse windows.
// A test knob: production engines always run with fusion on.
func SetDefaultWindowFusion(on bool) { windowFusionDefault = on }

// NewEngine returns an engine with the given lookahead (the minimum
// cross-partition delay any Post will honor) and worker goroutine count.
// workers <= 1 runs the windows on the calling goroutine; the output is
// byte-identical at any setting. Kernels are added with NewKernel.
func NewEngine(lookahead time.Duration, workers int) *Engine {
	if lookahead <= 0 {
		panic("sim: engine lookahead must be positive")
	}
	if workers < 1 {
		workers = 1
	}
	return &Engine{lookahead: Time(lookahead), workers: workers, deadline: -1, fusion: windowFusionDefault, spin: barSpinRounds}
}

// NewKernel adds a partition to the engine and returns its kernel. Create
// partitions during setup or at a window barrier (driver context, engine
// paused) — never from inside an event. Kernels added after the worker pool
// came up are folded into the shards at the next multi-kernel window.
func (e *Engine) NewKernel() *Kernel {
	k := New()
	k.eng = e
	k.engID = len(e.kernels)
	e.kernels = append(e.kernels, k)
	e.outboxes = append(e.outboxes, nil)
	return k
}

// Kernels returns the partition kernels in creation order.
func (e *Engine) Kernels() []*Kernel { return e.kernels }

// Lookahead returns the engine's conservative lookahead.
func (e *Engine) Lookahead() time.Duration { return time.Duration(e.lookahead) }

// Workers returns the worker count the engine was built with.
func (e *Engine) Workers() int { return e.workers }

// Fired reports the total events executed across all partitions.
func (e *Engine) Fired() uint64 {
	var n uint64
	for _, k := range e.kernels {
		n += k.Fired()
	}
	return n
}

// Crossed reports how many cross-partition messages have been delivered.
func (e *Engine) Crossed() uint64 { return e.crossed }

// Windows reports how many conservative windows have executed. Every window
// boundary is a global barrier — no kernel is mid-event, every delivered
// cross message is in a destination queue — so the window index is a stable,
// enumerable coordinate for external intervention: with identical inputs the
// i-th window covers the same events in every run, at any worker count and
// with fusion on or off. The partitioned crash sweep crashes "at window i"
// the way the serial sweep crashes "after event i".
func (e *Engine) Windows() uint64 { return e.windows }

// Fused reports how many windows ran inside fused stretches: consecutive
// solo-kernel windows executed back-to-back without re-scanning the world.
func (e *Engine) Fused() uint64 { return e.fused }

// IdleSkips reports how many per-window kernel dispatches were skipped
// because the kernel had no event inside the window.
func (e *Engine) IdleSkips() uint64 { return e.idleSkips }

// Barriers reports how many windows had more than one active kernel — the
// windows that actually pay for multi-worker coordination.
func (e *Engine) Barriers() uint64 { return e.barriers }

// SetWindowFusion enables or disables window fusion on this engine. Fusion
// only affects how windows are executed, never their contents, indices, or
// delivery order; the default is on. Call from a window barrier (never from
// inside an event).
func (e *Engine) SetWindowFusion(on bool) { e.fusion = on }

// AddFlushHook registers fn to run at every window barrier, immediately
// before buffered cross messages are delivered (including the mini-barriers
// inside fused stretches). Hooks run in coordinator context: exactly one
// goroutine, all kernels quiesced, so they may touch any partition's state.
// The fabric uses this to recycle cross-transfer slabs whose envelopes were
// released by destination partitions. Register during setup, before Run.
func (e *Engine) AddFlushHook(fn func()) { e.hooks = append(e.hooks, fn) }

// Serialize forces subsequent windows to run as an exact global event merge
// on the stepping goroutine (see stepMerged) — the same total order a single
// serial kernel would produce, independent of the worker count — until a
// matching Unserialize. Calls nest. Crash/recovery spans use it: with a
// replica down, recovery procs reach across kernels in patterns the
// conservative lookahead cannot order (reestablish, log replay, quiesce
// barriers), and a serialized window gives them that global order, while
// Post delivers cross messages directly instead of deferring them to the
// next barrier. Call only from a window barrier (driver context) or from an
// event already inside a serialized window.
func (e *Engine) Serialize() {
	e.serialized++
	e.syncClocks()
}

// syncClocks raises every kernel's clock to the engine-wide maximum. Legal
// whenever a global order holds (a window barrier, or mid-event in a merged
// window): every pending event is then at or past the maximum clock, so no
// kernel's queue can go backwards. Serialized spans need it because driver
// barrier actions and recovery procs schedule onto kernels whose clocks lag
// the barrier (a crashed replica's clock froze at its crash) — without the
// sync those events would land in other kernels' past. stepMerged re-syncs
// at every serialized barrier so the invariant holds for the span's length.
func (e *Engine) syncClocks() {
	var max Time
	for _, k := range e.kernels {
		if k.now > max {
			max = k.now
		}
	}
	for _, k := range e.kernels {
		if k.now < max {
			k.now = max
		}
	}
}

// Unserialize releases one Serialize token.
func (e *Engine) Unserialize() {
	if e.serialized <= 0 {
		panic("sim: Unserialize without matching Serialize")
	}
	e.serialized--
}

// Serialized reports whether the engine is inside a serialized span.
func (e *Engine) Serialized() bool { return e.serialized > 0 }

// Post schedules fn at time `at` on the dst partition, from an event
// currently executing on src (or from setup code before Run). The timestamp
// must be beyond the current window edge; posts at src.Now() plus at least
// the lookahead always are. Messages are buffered per source and delivered
// at the next window barrier in canonical order.
//
// Inside a serialized span the window edge does not bind: kernels step
// sequentially on one goroutine, so a global event order exists without the
// lookahead discipline, and the message is scheduled onto dst directly
// (clamped to dst's clock — recovery procs reach kernels whose clocks lag
// the window, exactly the interactions Serialize exists to legalize). The
// branch depends only on the serialized state, never the worker count, so
// runs stay byte-identical across workers.
func (e *Engine) Post(src, dst *Kernel, at Time, fn func()) {
	if src == dst {
		src.Schedule(at, fn)
		return
	}
	if src.eng != e || dst.eng != e {
		panic("sim: Post across kernels that do not share this engine")
	}
	if e.serialized > 0 {
		if at < dst.now {
			at = dst.now
		}
		dst.Schedule(at, fn)
		return
	}
	if at <= e.deadline {
		panic(fmt.Sprintf("sim: cross-partition post at %v inside the current window (edge %v): lookahead violated", at, e.deadline))
	}
	e.outboxes[src.engID] = append(e.outboxes[src.engID], crossMsg{dst: dst, at: at, fn: fn})
}

// PostAfterLookahead schedules fn on dst exactly one lookahead past src's
// clock — the earliest always-legal cross-partition timestamp.
func (e *Engine) PostAfterLookahead(src, dst *Kernel, fn func()) {
	e.Post(src, dst, src.Now()+e.lookahead, fn)
}

// Stop makes Run return at the next window barrier. Safe to call from any
// partition's events.
func (e *Engine) Stop() { e.stopped.Store(true) }

// startWorkers lazily brings up the barrier worker pool: helpers = workers-1
// goroutines (capped at one per kernel), each owning a round-robin shard of
// the kernels; the coordinator runs shard 0 itself. The pool lives until
// Shutdown so that window-stepped drivers (RunWindows callers) do not respawn
// goroutines per call; a pool torn down by Shutdown restarts clean here.
// Called only at a window barrier (no helpers mid-window), so it may also
// rebuild the shards when kernels were added since the pool came up.
func (e *Engine) startWorkers() {
	if e.workersUp {
		if e.helpers > 0 && e.sharded != len(e.kernels) {
			e.reshard()
		}
		return
	}
	w := e.workers
	if w > len(e.kernels) {
		w = len(e.kernels)
	}
	e.helpers = w - 1
	if e.barCond == nil {
		e.barCond = sync.NewCond(&e.barMu)
	}
	if e.helpers > 0 {
		// Fresh pools (including post-Shutdown restarts) must not inherit the
		// previous pool's barrier state: helpers start at seen=0, so a stale
		// barGen would open a phantom window, and a stale barQuit would make
		// them exit before ever reporting barDone.
		e.barQuit.Store(false)
		e.barGen.Store(0)
		e.barDone.Store(0)
		e.sleepers.Store(0)
		e.reshard()
		for i := 1; i <= e.helpers; i++ {
			e.hwg.Add(1)
			go e.helperLoop(i)
		}
	}
	e.workersUp = true
}

// reshard (re)builds the static round-robin kernel shards for the current
// pool width. Coordinator-only, at a barrier: helpers read e.shards only
// after observing a barGen bump, which publishes the new slices. The helper
// count never changes while the pool is up — kernels added late are folded
// into the existing shards, so they execute in every multi-kernel window
// just like founding kernels (they may just not add parallelism).
func (e *Engine) reshard() {
	w := e.helpers + 1
	e.shards = make([][]*Kernel, w)
	for i, k := range e.kernels {
		e.shards[i%w] = append(e.shards[i%w], k)
	}
	e.sharded = len(e.kernels)
}

// helperLoop is one barrier worker: wait for the coordinator to open a
// window (a barGen bump), run this shard's kernels that have work inside it,
// report done. The wait yields for a bounded number of rounds — windows are
// short — then parks on the condvar so long fused or serialized stretches do
// not burn a core. The generation bump publishes e.deadline and everything
// the coordinator wrote before it; barDone publishes this shard's kernel
// state back.
func (e *Engine) helperLoop(shard int) {
	defer e.hwg.Done()
	seen := uint64(0)
	for {
		spins := 0
		for e.barGen.Load() == seen {
			if e.barQuit.Load() {
				return
			}
			spins++
			if spins < e.spin {
				runtime.Gosched()
				continue
			}
			// Park. sleepers must be raised *before* the gen re-check: both
			// sides use sequentially consistent atomics, so if the re-check
			// still sees the old generation, the coordinator's barGen bump is
			// later in the total order and its sleepers load (later still)
			// observes the increment and takes the broadcast path. Raising
			// sleepers after the re-check loses that wakeup — the coordinator
			// can bump, see sleepers==0, skip the broadcast, and this helper
			// parks forever. The broadcast itself runs under barMu, so it
			// cannot fire in the gap between the re-check and Wait.
			e.barMu.Lock()
			e.sleepers.Add(1)
			for e.barGen.Load() == seen && !e.barQuit.Load() {
				e.barCond.Wait()
			}
			e.sleepers.Add(-1)
			e.barMu.Unlock()
		}
		seen = e.barGen.Load()
		if e.barQuit.Load() {
			return
		}
		dl := e.deadline
		for _, k := range e.shards[shard] {
			if t, ok := k.NextEventAt(); ok && t <= dl {
				k.RunUntil(dl)
			}
		}
		e.barDone.Add(1)
	}
}

// runSerial executes the current window's active kernels on the calling
// goroutine in creation order — the workers<=1 path, and the fallback when
// the pool would be empty.
func (e *Engine) runSerial() {
	for _, k := range e.kernels {
		if t, ok := k.NextEventAt(); ok && t <= e.deadline {
			k.RunUntil(e.deadline)
		}
	}
}

// stepWindows executes up to budget conservative windows and reports how
// many ran (fewer only when the simulation went quiescent or was stopped).
// Each window: deliver the previous window's cross messages, open the window
// at the globally earliest event (idle stretches are jumped in one step,
// exactly like the serial kernel), run every kernel with work up to the
// inclusive edge, barrier. Windows whose only active kernel cannot interact
// with anyone fuse with their successors (see fuse); windows with several
// active kernels release the worker barrier.
func (e *Engine) stepWindows(budget int) int {
	ran := 0
	for ran < budget {
		if e.stopped.Load() {
			return ran
		}
		e.flush()
		next := Time(math.MaxInt64)
		for _, k := range e.kernels {
			if t, ok := k.NextEventAt(); ok && t < next {
				next = t
			}
		}
		if next == math.MaxInt64 {
			return ran
		}
		e.deadline = next + e.lookahead - 1
		e.windows++
		ran++
		if e.serialized > 0 {
			e.stepMerged()
			continue
		}
		// Classify the window: count kernels with work inside it, find the
		// solo active kernel if there is exactly one, and the earliest event
		// any *other* kernel holds — the fusion horizon.
		actives := 0
		var solo *Kernel
		othersMin := Time(math.MaxInt64)
		for _, k := range e.kernels {
			t, ok := k.NextEventAt()
			if !ok {
				continue
			}
			if t <= e.deadline {
				actives++
				if actives == 1 {
					solo = k
					continue
				}
			}
			if t < othersMin {
				othersMin = t
			}
		}
		e.idleSkips += uint64(len(e.kernels) - actives)
		if actives == 1 {
			// Solo window: no other kernel can observe anything before the
			// next barrier, so run it on the coordinator and try to fuse
			// follow-up windows without re-scanning the world.
			solo.RunUntil(e.deadline)
			if e.fusion && ran < budget {
				ran += e.fuse(solo, othersMin, budget-ran)
			}
			continue
		}
		e.barriers++
		if e.workers <= 1 {
			e.runSerial()
			continue
		}
		e.startWorkers()
		if e.helpers == 0 {
			e.runSerial()
			continue
		}
		e.barDone.Store(0)
		e.barGen.Add(1)
		// The sleepers check elides the mutex when every helper is spinning.
		// It is race-free against helpers parking: a helper raises sleepers
		// before its under-lock gen re-check, so a helper that parks on the
		// old generation is visible here (see helperLoop).
		if e.sleepers.Load() > 0 {
			e.barMu.Lock()
			e.barCond.Broadcast()
			e.barMu.Unlock()
		}
		for _, k := range e.shards[0] {
			if t, ok := k.NextEventAt(); ok && t <= e.deadline {
				k.RunUntil(e.deadline)
			}
		}
		e.waitHelpers()
	}
	return ran
}

// waitHelpers spins until every helper reports the open window done. The
// wait is normally a few iterations — windows are short and helpers are
// already running — so it stays a spin, but it is bounded: if helpers stop
// reporting (a lost goroutine, a torn-down pool, a protocol bug) it panics
// with the barrier state after barStallTimeout rather than hanging the
// simulation silently.
func (e *Engine) waitHelpers() {
	var slowSince time.Time
	for spins := 0; e.barDone.Load() != int64(e.helpers); spins++ {
		if spins < 64 {
			continue
		}
		runtime.Gosched()
		if spins&1023 != 0 {
			continue
		}
		if slowSince.IsZero() {
			slowSince = time.Now()
		} else if time.Since(slowSince) > barStallTimeout {
			panic(fmt.Sprintf(
				"sim: window barrier stalled: %d/%d helpers reported (gen %d, sleepers %d, quit %v, window %d)",
				e.barDone.Load(), e.helpers, e.barGen.Load(), e.sleepers.Load(), e.barQuit.Load(), e.windows))
		}
	}
}

// fuse advances the solo kernel k through consecutive windows without
// barriers or world re-scans, for as long as no other kernel can become
// active: othersMin is the earliest event any other kernel holds (their
// queues are frozen — only k runs, and deliveries are buffered), and every
// message k emits is inspected before the next window opens. Each iteration
// reproduces one unfused window exactly: deliver the messages the previous
// window buffered (single source, stable-sorted by time = the canonical
// (time, source, emission) order), bump the window counter, set the edge,
// run. Window indices, destination sequence numbers and the state at every
// boundary are therefore bit-identical to the unfused engine — which is what
// keeps the partitioned crash sweep's (seed, window) coordinates valid.
// On exit the last window's messages stay buffered for the outer flush,
// again exactly like the unfused loop. Returns the number of extra windows
// executed beyond the entry window.
func (e *Engine) fuse(k *Kernel, othersMin Time, budget int) int {
	ran := 0
	id := k.engID
	for ran < budget {
		if e.stopped.Load() || e.serialized > 0 {
			break
		}
		// Earliest pending delivery among the messages k just emitted.
		box := e.outboxes[id]
		pend := Time(math.MaxInt64)
		for i := range box {
			if box[i].at < pend {
				pend = box[i].at
			}
		}
		horizon := othersMin
		if pend < horizon {
			horizon = pend
		}
		next, ok := k.NextEventAt()
		if !ok || next+e.lookahead-1 >= horizon {
			// k went quiescent, or someone else would be active in the next
			// window: fall back to the full loop.
			break
		}
		// The next window belongs to k alone. Deliver the buffered messages
		// (they all land beyond its edge, on kernels that stay idle) and run.
		e.runHooks()
		if len(box) > 0 {
			e.deliverBox(id)
			if pend < othersMin {
				othersMin = pend
			}
		}
		e.windows++
		e.fused++
		e.idleSkips += uint64(len(e.kernels) - 1)
		ran++
		e.deadline = next + e.lookahead - 1
		k.RunUntil(e.deadline)
	}
	return ran
}

// stepMerged runs one serialized window as an exact global event merge:
// repeatedly execute the globally earliest head event (ties broken by kernel
// creation order) until nothing at or before the window edge remains. No
// kernel ever runs ahead of the merge clock, so an event touching another
// kernel directly — or posting to it — always lands in that kernel's future,
// which is what makes recovery choreography legal inside a serialized span.
func (e *Engine) stepMerged() {
	for {
		var kmin *Kernel
		var tmin Time
		for _, k := range e.kernels {
			if t, ok := k.NextEventAt(); ok && t <= e.deadline && (kmin == nil || t < tmin) {
				tmin, kmin = t, k
			}
		}
		if kmin == nil {
			e.syncClocks()
			return
		}
		kmin.runHead(e.deadline)
	}
}

// Run executes windows until every partition is quiescent (no pending events
// and no undelivered cross messages) or Stop is called.
func (e *Engine) Run() {
	e.stopped.Store(false)
	const chunk = 1 << 30
	for e.stepWindows(chunk) == chunk {
	}
}

// RunWindows executes at most n windows and reports how many ran (fewer only
// when the simulation went quiescent or was stopped first). It pauses the
// world at an exact window barrier — no kernel mid-event, a global order over
// everything executed so far — which is where the partitioned crash sweep
// injects crashes; see Windows. The budget is exact even through fused
// stretches: fusion stops at the cap, never overshooting the target window.
func (e *Engine) RunWindows(n int) int {
	e.stopped.Store(false)
	return e.stepWindows(n)
}

// Shutdown tears the deployment down: stops the worker pool and reaps every
// kernel's parked procs and event pools. Back-to-back deployments in one
// process previously pinned ~100 MB each, because every proc goroutine left
// blocked at its resume channel (plus the event free lists keeping payload
// buffers reachable) survived the deployment. The engine must be paused at a
// barrier (not running). A shut-down engine may be rescheduled and run
// again: the next Run/RunWindows restarts the worker pool with fresh barrier
// state (kernel queues and free lists start empty, as after construction).
func (e *Engine) Shutdown() {
	e.stopped.Store(true)
	if e.workersUp {
		e.barQuit.Store(true)
		e.barGen.Add(1)
		e.barMu.Lock()
		e.barCond.Broadcast()
		e.barMu.Unlock()
		e.hwg.Wait()
		e.workersUp = false
	}
	for _, k := range e.kernels {
		k.Shutdown()
	}
	for i := range e.outboxes {
		e.outboxes[i] = nil
	}
	e.shards, e.sharded = nil, 0
	e.mergeSrcs, e.mergeHeads = nil, nil
	e.hooks = nil
}

// runHooks fires the barrier flush hooks (coordinator context, kernels
// quiesced).
func (e *Engine) runHooks() {
	for _, h := range e.hooks {
		h()
	}
}

// deliverBox delivers one source's buffered messages in canonical order: the
// per-source box stable-sorted by timestamp preserves emission order within
// equal times, which for a single source is exactly the global (time,
// source, emission) order. Entries are zeroed after delivery so the box —
// scratch that persists across windows — never retains delivered closures or
// their captured transfer buffers.
func (e *Engine) deliverBox(src int) {
	box := e.outboxes[src]
	sortCrossStable(box)
	for i := range box {
		cm := &box[i]
		cm.dst.Schedule(cm.at, cm.fn)
		*cm = crossMsg{}
	}
	e.crossed += uint64(len(box))
	e.outboxes[src] = box[:0]
}

// flush delivers buffered cross messages into their destination kernels in
// canonical order: ascending timestamp, ties by (source partition, emission
// index). Destination Schedule assigns the tie-breaking sequence numbers in
// this order, so the resulting execution order is a pure function of the
// messages' data — independent of how many workers produced them. Each
// source box is nearly sorted already (FIFO egress per endpoint), so the
// boxes are insertion-sorted in place and k-way merged with ties going to
// the lowest source index — the same total order a global stable sort of the
// concatenation produces, without a shared scratch slice.
func (e *Engine) flush() {
	e.runHooks()
	srcs := e.mergeSrcs[:0]
	total := 0
	for i := range e.outboxes {
		if n := len(e.outboxes[i]); n > 0 {
			srcs = append(srcs, i)
			total += n
		}
	}
	e.mergeSrcs = srcs
	if total == 0 {
		return
	}
	if len(srcs) == 1 {
		e.deliverBox(srcs[0])
		return
	}
	heads := e.mergeHeads[:0]
	for _, s := range srcs {
		sortCrossStable(e.outboxes[s])
		heads = append(heads, 0)
	}
	e.mergeHeads = heads
	for n := 0; n < total; n++ {
		best := -1
		var bt Time
		for si, s := range srcs {
			h := heads[si]
			if h >= len(e.outboxes[s]) {
				continue
			}
			// Strict less keeps ties on the earliest source index, which the
			// ascending srcs scan visits first.
			if t := e.outboxes[s][h].at; best < 0 || t < bt {
				best, bt = si, t
			}
		}
		cm := &e.outboxes[srcs[best]][heads[best]]
		heads[best]++
		cm.dst.Schedule(cm.at, cm.fn)
		*cm = crossMsg{}
	}
	for _, s := range srcs {
		e.outboxes[s] = e.outboxes[s][:0]
	}
	e.crossed += uint64(total)
}

// sortCrossStable is a stable insertion/merge sort by timestamp. Cross
// batches per window are small (bounded by messages in flight), and each
// box is already sorted per endpoint, so insertion sort with a binary
// search beats the generic sort for the common sizes.
func sortCrossStable(m []crossMsg) {
	for i := 1; i < len(m); i++ {
		if m[i].at >= m[i-1].at {
			continue
		}
		// Binary search the insertion point in the sorted prefix; equal
		// timestamps insert after, preserving emission order (stability).
		lo, hi := 0, i
		for lo < hi {
			mid := (lo + hi) / 2
			if m[mid].at <= m[i].at {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		cm := m[i]
		copy(m[lo+1:i+1], m[lo:i])
		m[lo] = cm
	}
}
