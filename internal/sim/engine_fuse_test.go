package sim

import (
	"testing"
	"time"
)

// traceRun executes the property-test workload on a fresh engine and returns
// the merged trace plus the engine (for counter inspection).
func traceRun(t *testing.T, nodes int, seed uint64, rounds int, lookahead Time, workers int, fusion bool) (string, *Engine) {
	t.Helper()
	e := NewEngine(time.Duration(lookahead), workers)
	e.SetWindowFusion(fusion)
	nds := newTraceNodes(nodes, seed, func(int) *Kernel { return e.NewKernel() })
	runTraceWorkload(nds, rounds, lookahead, func(src, dst *traceNode, at Time, fn func()) {
		e.Post(src.k, dst.k, at, fn)
	})
	e.Run()
	return mergedTrace(t, nds), e
}

// TestEngineFusionParity is the fingerprint-parity property test for window
// fusion: across node counts and seeds, the merged event trace AND the
// window count must be byte-identical with fusion off and on, at workers
// 1, 2, 4 and 8. The window count equality is the partitioned crashcheck's
// contract — fusion must never renumber the (seed, window) crash coordinate.
func TestEngineFusionParity(t *testing.T) {
	const rounds = 30
	for _, nodes := range []int{1, 3, 5} {
		for _, seed := range []uint64{1, 0xdecafbad} {
			lookahead := Time(nodes * (nodes + 1) * 16)
			want, base := traceRun(t, nodes, seed, rounds, lookahead, 1, false)
			wantWin := base.Windows()
			fusedAny := false
			for _, workers := range []int{1, 2, 4, 8} {
				got, e := traceRun(t, nodes, seed, rounds, lookahead, workers, true)
				if got != want {
					t.Fatalf("nodes=%d seed=%d workers=%d: fused trace diverged from unfused", nodes, seed, workers)
				}
				if e.Windows() != wantWin {
					t.Fatalf("nodes=%d seed=%d workers=%d: fused windows=%d, unfused=%d — crash coordinates renumbered",
						nodes, seed, workers, e.Windows(), wantWin)
				}
				if e.Fused() > 0 {
					fusedAny = true
				}
				if e.Fused()+e.Barriers() > e.Windows() {
					t.Fatalf("counter overlap: fused=%d barriers=%d windows=%d", e.Fused(), e.Barriers(), e.Windows())
				}
			}
			if nodes > 1 && !fusedAny {
				t.Logf("nodes=%d seed=%d: no window fused (workload too dense) — parity still verified", nodes, seed)
			}
		}
	}
}

// TestEngineRunWindowsExactThroughFusion proves the window budget stays
// exact when fusion is active: stepping a fused engine in small RunWindows
// increments must visit exactly the same number of windows as a single Run,
// with the same final trace — fusion stops at the budget instead of
// overshooting. This is what keeps crashcheck's stepTo(w) landing exactly on
// window w.
func TestEngineRunWindowsExactThroughFusion(t *testing.T) {
	const nodes, rounds = 4, 30
	lookahead := Time(nodes * (nodes + 1) * 16)
	for _, seed := range []uint64{3, 11} {
		want, base := traceRun(t, nodes, seed, rounds, lookahead, 1, true)
		wantWin := base.Windows()
		for _, step := range []int{1, 3, 7} {
			e := NewEngine(time.Duration(lookahead), 2)
			e.SetWindowFusion(true)
			nds := newTraceNodes(nodes, seed, func(int) *Kernel { return e.NewKernel() })
			runTraceWorkload(nds, rounds, lookahead, func(src, dst *traceNode, at Time, fn func()) {
				e.Post(src.k, dst.k, at, fn)
			})
			total := uint64(0)
			for {
				n := e.RunWindows(step)
				total += uint64(n)
				if e.Windows() != total {
					t.Fatalf("seed=%d step=%d: Windows()=%d after %d budgeted windows", seed, step, e.Windows(), total)
				}
				if n < step {
					break
				}
			}
			if total != wantWin {
				t.Fatalf("seed=%d step=%d: stepped run visited %d windows, Run visited %d", seed, step, total, wantWin)
			}
			if got := mergedTrace(t, nds); got != want {
				t.Fatalf("seed=%d step=%d: stepped trace diverged", seed, step)
			}
		}
	}
}

// TestEngineFusionSoloKernel pins the pure fused fast path: a single busy
// kernel beside idle ones must fuse nearly every window into one stretch
// (no barriers at all), and idle-skip accounting must cover the idle
// kernels every window.
func TestEngineFusionSoloKernel(t *testing.T) {
	e := NewEngine(100*time.Nanosecond, 4)
	busy := e.NewKernel()
	e.NewKernel() // idle
	e.NewKernel() // idle
	n := 0
	var tick func()
	tick = func() {
		if n++; n < 1000 {
			busy.Schedule(busy.Now()+37, tick)
		}
	}
	busy.Schedule(0, tick)
	e.Run()
	if n != 1000 {
		t.Fatalf("ran %d ticks, want 1000", n)
	}
	if e.Barriers() != 0 {
		t.Fatalf("solo workload entered %d barriers, want 0", e.Barriers())
	}
	if e.Fused() == 0 || e.Fused() >= e.Windows() {
		t.Fatalf("fused=%d windows=%d: expected almost-all-but-first fused", e.Fused(), e.Windows())
	}
	if want := (e.Windows()) * 2; e.IdleSkips() != want {
		t.Fatalf("idleSkips=%d, want %d (2 idle kernels every window)", e.IdleSkips(), want)
	}
}

// TestEngineFusionDeliversInOrder pins lazy delivery: messages emitted by a
// fused window must be delivered before the destination's next window, in
// canonical order, even though no global flush ran in between.
func TestEngineFusionDeliversInOrder(t *testing.T) {
	la := Time(100)
	e := NewEngine(time.Duration(la), 1)
	a, b := e.NewKernel(), e.NewKernel()
	var got []Time
	// a runs a long solo stretch (b idle), emitting to b mid-stretch.
	n := 0
	var tick func()
	tick = func() {
		n++
		if n == 5 || n == 9 {
			at := a.Now() + la
			e.Post(a, b, at, func() { got = append(got, b.Now()) })
		}
		if n < 50 {
			a.Schedule(a.Now()+13, tick)
		}
	}
	a.Schedule(0, tick)
	e.Run()
	if len(got) != 2 || got[0] >= got[1] {
		t.Fatalf("cross deliveries out of order or lost: %v", got)
	}
	if e.Crossed() != 2 {
		t.Fatalf("crossed=%d, want 2", e.Crossed())
	}
}
