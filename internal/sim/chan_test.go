package sim

import (
	"testing"
	"time"
)

func TestChanFIFO(t *testing.T) {
	k := New()
	c := NewChan[int](k)
	var got []int
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, c.Pop(p))
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(time.Millisecond)
			c.Push(i)
		}
	})
	k.Run()
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestChanTryPop(t *testing.T) {
	k := New()
	c := NewChan[string](k)
	if _, ok := c.TryPop(); ok {
		t.Fatal("TryPop on empty returned ok")
	}
	c.Push("x")
	v, ok := c.TryPop()
	if !ok || v != "x" {
		t.Fatalf("TryPop = %q, %v", v, ok)
	}
	if c.Len() != 0 {
		t.Fatal("Len after TryPop != 0")
	}
}

func TestChanPopTimeout(t *testing.T) {
	k := New()
	c := NewChan[int](k)
	var ok1, ok2 bool
	k.Go("a", func(p *Proc) {
		_, ok1 = c.PopTimeout(p, time.Millisecond)
		v, ok := c.PopTimeout(p, 10*time.Millisecond)
		ok2 = ok && v == 7
	})
	k.After(3*time.Millisecond, func() { c.Push(7) })
	k.Run()
	if ok1 {
		t.Fatal("first PopTimeout should time out")
	}
	if !ok2 {
		t.Fatal("second PopTimeout should succeed with 7")
	}
}

func TestChanDrain(t *testing.T) {
	k := New()
	c := NewChan[int](k)
	c.Push(1)
	c.Push(2)
	out := c.Drain()
	if len(out) != 2 || out[0] != 1 || out[1] != 2 {
		t.Fatalf("Drain = %v", out)
	}
	if c.Len() != 0 {
		t.Fatal("chan not empty after Drain")
	}
}

func TestFuture(t *testing.T) {
	k := New()
	f := NewFuture[int](k)
	sum := 0
	for i := 0; i < 3; i++ {
		k.Go("w", func(p *Proc) { sum += f.Wait(p) })
	}
	k.After(time.Millisecond, func() { f.Complete(5) })
	k.Run()
	if sum != 15 {
		t.Fatalf("sum = %d, want 15", sum)
	}
	if !f.Done() || f.Value() != 5 {
		t.Fatal("future state wrong")
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	k := New()
	f := NewFuture[int](k)
	f.Complete(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Complete(2)
}

func TestFutureWaitAfterComplete(t *testing.T) {
	k := New()
	f := NewFuture[string](k)
	f.Complete("done")
	var got string
	k.Go("late", func(p *Proc) { got = f.Wait(p) })
	k.Run()
	if got != "done" {
		t.Fatalf("got %q", got)
	}
}

func TestWaitGroup(t *testing.T) {
	k := New()
	wg := NewWaitGroup(k)
	wg.Add(3)
	doneAt := Time(0)
	k.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Millisecond
		k.After(d, func() { wg.Done() })
	}
	k.Run()
	if doneAt != Time(3*time.Millisecond) {
		t.Fatalf("waiter resumed at %v, want 3ms", doneAt)
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	k := New()
	wg := NewWaitGroup(k)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	wg.Done()
}

func TestFutureThen(t *testing.T) {
	k := New()
	f := NewFuture[int](k)
	got := 0
	f.Then(func(v int) { got += v })
	f.Complete(5)
	if got != 5 {
		t.Fatalf("then not run: %d", got)
	}
	// Then after completion runs immediately.
	f.Then(func(v int) { got += v })
	if got != 10 {
		t.Fatalf("late then not run: %d", got)
	}
}

func TestFutureWaitTimeout(t *testing.T) {
	k := New()
	f := NewFuture[int](k)
	var ok1, ok2 bool
	var v2 int
	k.Go("w", func(p *Proc) {
		_, ok1 = f.WaitTimeout(p, time.Millisecond)
		v2, ok2 = f.WaitTimeout(p, 10*time.Millisecond)
	})
	k.After(3*time.Millisecond, func() { f.Complete(9) })
	k.Run()
	if ok1 {
		t.Fatal("first wait should time out")
	}
	if !ok2 || v2 != 9 {
		t.Fatalf("second wait: ok=%v v=%d", ok2, v2)
	}
}
