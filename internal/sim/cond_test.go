package sim

import (
	"fmt"
	"testing"
	"time"
)

// TestCondWaitTimeoutStaleTimer: a signaled proc that immediately re-waits
// must not be woken early by its previous wait's still-pending timeout.
func TestCondWaitTimeoutStaleTimer(t *testing.T) {
	k := New()
	c := NewCond(k)
	var first, second bool
	k.Go("w", func(p *Proc) {
		first = c.WaitTimeout(p, 10*time.Microsecond) // signaled at 5 µs
		// The first wait's timer is still pending for t=10 µs; it must not
		// terminate this wait, which times out at 5+20 = 25 µs.
		second = c.WaitTimeout(p, 20*time.Microsecond)
	})
	k.Schedule(Time(5*time.Microsecond), func() { c.Signal() })
	k.Run()
	if !first {
		t.Error("first wait should report signaled")
	}
	if second {
		t.Error("second wait should report timeout")
	}
	if k.Now() != Time(25*time.Microsecond) {
		t.Errorf("clock = %v: the stale 10µs timer ended the second wait early", k.Now())
	}
}

// TestCondSignalSkipsTimedOutWaiter: after a waiter times out, its lazily-
// deleted queue entry must not absorb a later Signal.
func TestCondSignalSkipsTimedOutWaiter(t *testing.T) {
	k := New()
	c := NewCond(k)
	var a, b bool
	k.Go("a", func(p *Proc) { a = c.WaitTimeout(p, 5*time.Microsecond) })
	k.GoAt(Time(time.Microsecond), "b", func(p *Proc) { b = c.WaitTimeout(p, 50*time.Microsecond) })
	k.Schedule(Time(10*time.Microsecond), func() { c.Signal() })
	k.Run()
	if a {
		t.Error("a should have timed out")
	}
	if !b {
		t.Error("signal should skip a's stale entry and wake b")
	}
	if n := len(c.waiters); n != 0 {
		t.Errorf("stale cond entries left behind: %d", n)
	}
}

// TestCondSignalTimeoutSameInstant pins the tie-break for a signal landing
// at the exact timeout instant: whichever event fires first wins, and the
// proc is woken exactly once either way.
func TestCondSignalTimeoutSameInstant(t *testing.T) {
	// Signal scheduled before the wait exists: its event sequence number is
	// lower than the timeout timer's, so the signal fires first and wins.
	k := New()
	c := NewCond(k)
	var res bool
	k.Go("w", func(p *Proc) { res = c.WaitTimeout(p, 10*time.Microsecond) })
	k.Schedule(Time(10*time.Microsecond), func() { c.Signal() })
	k.Run()
	if !res {
		t.Error("signal scheduled first should win the same-instant race")
	}

	// Signal scheduled after the wait began: the timeout timer's sequence
	// number is lower, the timeout fires first, and the signal must treat
	// the entry as stale rather than double-waking the proc.
	k2 := New()
	c2 := NewCond(k2)
	var res2 bool
	woken := 0
	k2.Go("w", func(p *Proc) {
		res2 = c2.WaitTimeout(p, 10*time.Microsecond)
		woken++
	})
	k2.Schedule(Time(5*time.Microsecond), func() {
		k2.Schedule(Time(10*time.Microsecond), func() { c2.Signal() })
	})
	k2.Run()
	if res2 {
		t.Error("timeout scheduled first should win the same-instant race")
	}
	if woken != 1 {
		t.Errorf("proc woken %d times, want exactly 1", woken)
	}
}

// TestCondSignalSkipsKilledWaiter: killing a blocked proc invalidates its
// queue entry; a subsequent Signal must reach the next live waiter instead
// of being swallowed.
func TestCondSignalSkipsKilledWaiter(t *testing.T) {
	k := New()
	c := NewCond(k)
	resumed := false
	var b bool
	pa := k.Go("a", func(p *Proc) {
		c.Wait(p)
		resumed = true
	})
	k.GoAt(Time(time.Microsecond), "b", func(p *Proc) { b = c.WaitTimeout(p, 50*time.Microsecond) })
	k.Schedule(Time(5*time.Microsecond), func() { pa.Kill() })
	k.Schedule(Time(10*time.Microsecond), func() { c.Signal() })
	k.Run()
	if resumed {
		t.Error("killed proc resumed past Wait")
	}
	if !b {
		t.Error("signal should skip the killed waiter and wake b")
	}
}

// TestCondNoStaleBookkeeping: signaled procs that never wait again must
// leave the Cond completely empty — the regression this guards against kept
// a "woken" record per signaled proc forever.
func TestCondNoStaleBookkeeping(t *testing.T) {
	k := New()
	c := NewCond(k)
	done := 0
	for i := 0; i < 3; i++ {
		k.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			if !c.WaitTimeout(p, time.Millisecond) {
				t.Errorf("waiter timed out")
			}
			done++
		})
	}
	for i := 1; i <= 3; i++ {
		k.Schedule(Time(i)*Time(time.Microsecond), func() { c.Signal() })
	}
	k.Run()
	if done != 3 {
		t.Fatalf("signaled %d waiters, want 3", done)
	}
	if n := len(c.waiters); n != 0 {
		t.Errorf("cond retains %d entries after all waits ended", n)
	}
}

// TestCondBroadcastMixedStaleness: Broadcast over a queue containing live,
// timed-out, and killed entries wakes exactly the live ones.
func TestCondBroadcastMixedStaleness(t *testing.T) {
	k := New()
	c := NewCond(k)
	var live1, live2, timedOut bool
	k.Go("timeout", func(p *Proc) { timedOut = !c.WaitTimeout(p, 2*time.Microsecond) })
	victim := k.Go("victim", func(p *Proc) {
		c.Wait(p)
		t.Error("killed proc resumed")
	})
	k.GoAt(Time(time.Microsecond), "live1", func(p *Proc) { live1 = c.WaitTimeout(p, time.Second) })
	k.GoAt(Time(time.Microsecond), "live2", func(p *Proc) {
		c.Wait(p)
		live2 = true
	})
	k.Schedule(Time(3*time.Microsecond), func() { victim.Kill() })
	k.Schedule(Time(5*time.Microsecond), func() { c.Broadcast() })
	k.Run()
	if !timedOut {
		t.Error("timeout waiter should have timed out before the broadcast")
	}
	if !live1 || !live2 {
		t.Errorf("live waiters not woken: live1=%v live2=%v", live1, live2)
	}
}
