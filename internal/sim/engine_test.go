package sim

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestEngineCrossDelivery checks the basics: cross posts arrive at their
// timestamp on the destination kernel, idle stretches are jumped in one
// window, and PostAfterLookahead lands exactly one lookahead out.
func TestEngineCrossDelivery(t *testing.T) {
	e := NewEngine(100*time.Nanosecond, 1)
	a, b := e.NewKernel(), e.NewKernel()
	var got []string
	a.Schedule(5, func() {
		e.Post(a, b, 105, func() { got = append(got, fmt.Sprintf("b@%d", b.Now())) })
		e.PostAfterLookahead(a, b, func() { got = append(got, fmt.Sprintf("b2@%d", b.Now())) })
	})
	// A long-idle event: the window loop must jump, not crawl.
	b.Schedule(1_000_000, func() { got = append(got, fmt.Sprintf("late@%d", b.Now())) })
	e.Run()
	// Both posts land at 105 (5+lookahead); same source, so emission order.
	want := "b@105,b2@105,late@1000000"
	if s := strings.Join(got, ","); s != want {
		t.Fatalf("delivery order = %s, want %s", s, want)
	}
	if e.Crossed() != 2 {
		t.Fatalf("crossed = %d, want 2", e.Crossed())
	}
	if a.Partition() != 0 || b.Partition() != 1 || a.Engine() != e {
		t.Fatalf("partition bookkeeping wrong: %d %d", a.Partition(), b.Partition())
	}
}

// TestEngineCanonicalMergeOrder pins the tie-break: messages with equal
// timestamps deliver in source-partition order, then emission order, no
// matter which source emitted first in wall-clock terms.
func TestEngineCanonicalMergeOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := NewEngine(100*time.Nanosecond, workers)
		a, b, c := e.NewKernel(), e.NewKernel(), e.NewKernel()
		var got []string
		rec := func(tag string) func() { return func() { got = append(got, tag) } }
		// Both sources target c at the same timestamp; b also emits twice.
		a.Schedule(0, func() { e.Post(a, c, 200, rec("a0")) })
		b.Schedule(0, func() {
			e.Post(b, c, 200, rec("b0"))
			e.Post(b, c, 200, rec("b1"))
			e.Post(b, c, 150, rec("early"))
		})
		e.Run()
		want := "early,a0,b0,b1"
		if s := strings.Join(got, ","); s != want {
			t.Fatalf("workers=%d: merge order = %s, want %s", workers, s, want)
		}
	}
}

// TestEnginePostInsideWindowPanics: a cross post below the lookahead bound is
// a model bug and must fail loudly, not silently reorder.
func TestEnginePostInsideWindowPanics(t *testing.T) {
	e := NewEngine(100*time.Nanosecond, 1)
	a, b := e.NewKernel(), e.NewKernel()
	a.Schedule(50, func() { e.Post(a, b, a.Now(), func() {}) })
	defer func() {
		if recover() == nil {
			t.Fatal("post inside the window did not panic")
		}
	}()
	e.Run()
}

// The partition-determinism property test needs a workload where the global
// event order is a pure function of the event data, because serial and
// engine runs cannot assign identical tie-break sequence numbers: a tie
// between a cross arrival and an unrelated event at the same instant may
// legitimately resolve differently. The workload therefore keeps independent
// events off shared timestamps with residue classes modulo M = n*(n+1):
//
//   - node i's self-scheduled activity happens at times ≡ i (mod M): procs
//     align once at start, every sleep and service time is a multiple of M;
//   - a cross send src→dst arrives at a time ≡ n + src*n + dst (mod M), a
//     class no other pair and no local activity uses, and each sender bumps
//     its per-destination arrival so two of its messages never share a slot;
//   - a consumer woken in a foreign class (by a cross push) realigns into
//     its own class before acting.
//
// The only same-timestamp events left are one event and its same-node causal
// descendants, which both modes execute in program order. mergedTrace
// asserts the invariant: no timestamp is shared by two nodes.
type traceNode struct {
	k      *Kernel
	id     int
	nodes  int
	rng    *Rand
	ch     *Chan[int]
	res    *Resource
	lastTo []Time // last arrival slot used per destination
	trace  []traceEntry
	sent   int
}

type traceEntry struct {
	at   Time
	node int
	s    string
}

// toResidue rounds t up to the next time congruent to r modulo m.
func toResidue(t Time, r, m int64) Time {
	d := ((r-int64(t))%m + m) % m
	return t + Time(d)
}

func (nd *traceNode) emit(format string, args ...any) {
	nd.trace = append(nd.trace, traceEntry{nd.k.Now(), nd.id, fmt.Sprintf(format, args...)})
}

// runTraceWorkload drives the nodes for `rounds` producer rounds. send
// schedules fn on the destination node at time `at`; the caller wires it to
// Kernel.Schedule (serial) or Engine.Post (parallel).
func runTraceWorkload(nodes []*traceNode, rounds int, lookahead Time, send func(src, dst *traceNode, at Time, fn func())) {
	n := len(nodes)
	m := int64(n) * int64(n+1)
	for _, nd := range nodes {
		nd := nd
		nd.lastTo = make([]Time, n)
		// Producer: local pushes plus random cross sends.
		nd.k.Go(fmt.Sprintf("prod-%d", nd.id), func(p *Proc) {
			p.Sleep(time.Duration(nd.id)) // align to this node's residue class
			for r := 0; r < rounds; r++ {
				p.Sleep(time.Duration(m * int64(1+nd.rng.Intn(40))))
				v := nd.id*1000 + r
				nd.emit("push %d", v)
				nd.ch.Push(v)
				if nd.rng.Intn(3) == 0 {
					dst := nodes[nd.rng.Intn(n)]
					if dst != nd {
						class := int64(n) + int64(nd.id)*int64(n) + int64(dst.id)
						at := toResidue(p.Now()+lookahead+Time(m*int64(nd.rng.Intn(8))), class, m)
						if at <= nd.lastTo[dst.id] {
							at = nd.lastTo[dst.id] + Time(m)
						}
						nd.lastTo[dst.id] = at
						nd.sent++
						nd.emit("send->%d %d", dst.id, v)
						send(nd, dst, at, func() {
							dst.emit("recv %d", v)
							dst.ch.Push(-v)
						})
					}
				}
			}
		})
		// Consumer: pops until the workload drains, with a resource in the
		// loop so contention timing is exercised too.
		nd.k.Go(fmt.Sprintf("cons-%d", nd.id), func(p *Proc) {
			p.Sleep(time.Duration(nd.id)) // align to this node's residue class
			for {
				v, ok := nd.ch.PopTimeout(p, time.Duration(m*50000))
				if !ok {
					nd.emit("done")
					return
				}
				// A cross push wakes this proc in the sender pair's class;
				// realign into our own before acting.
				if d := int64(toResidue(p.Now(), int64(nd.id), m) - p.Now()); d > 0 {
					p.Sleep(time.Duration(d))
				}
				free := nd.res.Reserve(time.Duration(m * int64(1+nd.rng.Intn(5))))
				p.Sleep(free.Sub(p.Now()))
				nd.emit("pop %d", v)
			}
		})
	}
}

func mergedTrace(t *testing.T, nodes []*traceNode) string {
	t.Helper()
	var all []traceEntry
	for _, nd := range nodes {
		all = append(all, nd.trace...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].at < all[j].at })
	var b strings.Builder
	for i, e := range all {
		if i > 0 && e.at == all[i-1].at && e.node != all[i-1].node {
			t.Fatalf("residue invariant violated: nodes %d and %d both act at %d",
				all[i-1].node, e.node, e.at)
		}
		fmt.Fprintf(&b, "%d n%d %s\n", e.at, e.node, e.s)
	}
	return b.String()
}

func newTraceNodes(n int, seed uint64, mk func(i int) *Kernel) []*traceNode {
	nodes := make([]*traceNode, n)
	for i := range nodes {
		k := mk(i)
		nodes[i] = &traceNode{
			k: k, id: i, nodes: n,
			rng: NewRand(seed ^ uint64(i)*0x9e3779b97f4a7c15),
			ch:  NewChan[int](k), res: NewResource(k),
		}
	}
	return nodes
}

// TestEnginePartitionPropertyDeterminism is the partition-determinism
// property test: for node counts 1..5 and several seeds, the merged event
// trace of the chan/resource/rand workload is byte-identical between a
// single serial kernel hosting every node and an engine with one kernel per
// node, at 1, 2 and 4 workers.
func TestEnginePartitionPropertyDeterminism(t *testing.T) {
	const rounds = 30
	for nodes := 1; nodes <= 5; nodes++ {
		for _, seed := range []uint64{1, 7, 0xdecafbad} {
			lookahead := Time(nodes * (nodes + 1) * 16)

			serialK := New()
			serial := newTraceNodes(nodes, seed, func(int) *Kernel { return serialK })
			runTraceWorkload(serial, rounds, lookahead, func(src, dst *traceNode, at Time, fn func()) {
				src.k.Schedule(at, fn)
			})
			serialK.Run()
			want := mergedTrace(t, serial)

			for _, workers := range []int{1, 2, 4} {
				e := NewEngine(time.Duration(lookahead), workers)
				par := newTraceNodes(nodes, seed, func(int) *Kernel { return e.NewKernel() })
				runTraceWorkload(par, rounds, lookahead, func(src, dst *traceNode, at Time, fn func()) {
					e.Post(src.k, dst.k, at, fn)
				})
				e.Run()
				if got := mergedTrace(t, par); got != want {
					t.Fatalf("nodes=%d seed=%d workers=%d: trace diverged from serial\nserial:\n%s\nparallel:\n%s",
						nodes, seed, workers, want, got)
				}
			}
		}
	}
}

// TestEngineCrossStress hammers the window barrier from many kernels at
// once: every kernel's procs push through local chans, wait on conds via
// PopTimeout, and fling cross posts at other partitions, with enough workers
// that windows genuinely overlap. Run under -race (the sim CI job does) this
// is the proof that parallel mode is race-free; the conservation check
// proves no message was lost or duplicated at a barrier.
func TestEngineCrossStress(t *testing.T) {
	const (
		kernels = 8
		workers = 4
		msgs    = 400
	)
	e := NewEngine(200*time.Nanosecond, workers)
	type part struct {
		k    *Kernel
		in   *Chan[int]
		rng  *Rand
		got  int
		sent int
	}
	parts := make([]*part, kernels)
	for i := range parts {
		k := e.NewKernel()
		parts[i] = &part{k: k, in: NewChan[int](k), rng: NewRand(uint64(i) + 99)}
	}
	for i, p := range parts {
		i, p := i, p
		p.k.Go("sender", func(pr *Proc) {
			for m := 0; m < msgs; m++ {
				pr.Sleep(time.Duration(1 + p.rng.Intn(300)))
				dst := parts[(i+1+p.rng.Intn(kernels-1))%kernels]
				p.sent++
				e.PostAfterLookahead(p.k, dst.k, func() { dst.in.Push(m) })
			}
		})
		p.k.Go("receiver", func(pr *Proc) {
			for {
				if _, ok := p.in.PopTimeout(pr, time.Millisecond); !ok {
					return
				}
				p.got++
			}
		})
	}
	e.Run()
	sent, got := 0, 0
	for _, p := range parts {
		sent += p.sent
		got += p.got
	}
	if sent != kernels*msgs || got != sent {
		t.Fatalf("message conservation violated: sent %d (want %d), received %d", sent, kernels*msgs, got)
	}
	if e.Crossed() != uint64(sent) {
		t.Fatalf("engine crossed = %d, want %d", e.Crossed(), sent)
	}
}
