package sim

import (
	"testing"
	"time"
)

// barrierChain schedules a self-rescheduling event chain on k: one event at
// each of start, start+step, ... (steps of them), all at times shared with
// the other kernels' chains so every window has several active kernels and
// takes the barrier path. Each firing appends the kernel's clock to *trace
// (per-kernel slices only — a kernel's events run on one goroutine at a
// time, and window barriers publish the writes).
func barrierChain(k *Kernel, start, step Time, steps int, trace *[]Time) {
	var tick func()
	left := steps
	tick = func() {
		*trace = append(*trace, k.Now())
		left--
		if left > 0 {
			k.Schedule(k.Now()+step, tick)
		}
	}
	k.Schedule(start, tick)
}

// TestEngineBarrierParkWakeup hammers the helper park/broadcast handshake:
// with the spin budget forced to 0 every helper parks on the condvar at
// every window, so each of the thousands of barrier windows crosses the racy
// region between the coordinator's generation bump and the helper's
// sleepers/gen re-check. The historical lost-wakeup bug (sleepers raised
// after the under-lock gen re-check) parked a helper forever under exactly
// this interleaving; waitHelpers then turns the hang into a diagnosed panic.
func TestEngineBarrierParkWakeup(t *testing.T) {
	oldSpin := barSpinRounds
	barSpinRounds = 0
	const kernels, steps = 4, 2000
	e := NewEngine(100*time.Nanosecond, kernels)
	barSpinRounds = oldSpin
	traces := make([][]Time, kernels)
	for i := 0; i < kernels; i++ {
		barrierChain(e.NewKernel(), 0, 1000, steps, &traces[i])
	}
	e.Run()
	if got := e.Fired(); got != kernels*steps {
		t.Fatalf("fired = %d, want %d", got, kernels*steps)
	}
	if e.Barriers() == 0 {
		t.Fatal("workload never took the barrier path; test exercises nothing")
	}
	for i, tr := range traces {
		if len(tr) != steps {
			t.Fatalf("kernel %d ran %d chain events, want %d", i, len(tr), steps)
		}
	}
	e.Shutdown()
}

// TestEngineRestartAfterShutdown pins pool restart: Shutdown used to leave
// barQuit set, so a later Run spawned helpers that exited before ever
// reporting barDone and the first multi-kernel window spun forever.
// startWorkers now resets the barrier state, so a shut-down engine can be
// rescheduled and run again.
func TestEngineRestartAfterShutdown(t *testing.T) {
	const kernels, steps = 4, 50
	e := NewEngine(100*time.Nanosecond, kernels)
	traces := make([][]Time, kernels)
	for i := 0; i < kernels; i++ {
		barrierChain(e.NewKernel(), 0, 1000, steps, &traces[i])
	}
	e.Run()
	if got := e.Fired(); got != kernels*steps {
		t.Fatalf("first run fired = %d, want %d", got, kernels*steps)
	}
	e.Shutdown()

	// Reschedule aligned chains on the surviving kernels and run again; the
	// pool must come back up with fresh barrier state. Kernel clocks kept
	// their final values, so restart activity begins past them.
	start := Time(0)
	for _, k := range e.Kernels() {
		if k.Now() > start {
			start = k.Now()
		}
	}
	start += 1000
	for i, k := range e.Kernels() {
		barrierChain(k, start, 1000, steps, &traces[i])
	}
	before := e.Barriers()
	e.Run()
	if got := e.Fired(); got != 2*kernels*steps {
		t.Fatalf("after restart fired = %d, want %d", got, 2*kernels*steps)
	}
	if e.Barriers() == before {
		t.Fatal("restarted run never took the barrier path; restart untested")
	}
	e.Shutdown()
}

// TestEngineLateKernelJoinsShards pins resharding: a kernel created after
// the worker pool came up used to belong to no shard, so multi-kernel
// windows never executed it — the run limped along on the solo-kernel path
// with inflated window counts that diverged from the serial engine. The
// late kernel must now fold into the shards and the run must stay
// byte-identical across worker counts (same windows, same per-kernel event
// times).
func TestEngineLateKernelJoinsShards(t *testing.T) {
	type result struct {
		windows uint64
		fired   uint64
		traces  [][]Time
	}
	run := func(workers int) result {
		const warm = 5
		e := NewEngine(100*time.Nanosecond, workers)
		traces := make([][]Time, 3)
		barrierChain(e.NewKernel(), 0, 1000, warm+20, &traces[0])
		barrierChain(e.NewKernel(), 0, 1000, warm+20, &traces[1])
		// Bring the pool up on a few multi-kernel windows first.
		if n := e.RunWindows(warm); n != warm {
			t.Fatalf("workers=%d: warmup ran %d windows, want %d", workers, n, warm)
		}
		// Late join, at a window barrier: its chain shares every remaining
		// window with the founding kernels, so it only makes progress if the
		// barrier path actually dispatches it.
		barrierChain(e.NewKernel(), Time(warm)*1000, 1000, 20, &traces[2])
		e.Run()
		e.Shutdown()
		return result{e.Windows(), e.Fired(), traces}
	}

	want := run(1)
	if n := len(want.traces[2]); n != 20 {
		t.Fatalf("serial: late kernel ran %d events, want 20", n)
	}
	for _, workers := range []int{2, 4} {
		got := run(workers)
		if got.windows != want.windows || got.fired != want.fired {
			t.Fatalf("workers=%d: windows/fired = %d/%d, serial = %d/%d",
				workers, got.windows, got.fired, want.windows, want.fired)
		}
		for ki := range want.traces {
			if len(got.traces[ki]) != len(want.traces[ki]) {
				t.Fatalf("workers=%d: kernel %d ran %d events, serial ran %d",
					workers, ki, len(got.traces[ki]), len(want.traces[ki]))
			}
			for i := range want.traces[ki] {
				if got.traces[ki][i] != want.traces[ki][i] {
					t.Fatalf("workers=%d: kernel %d event %d at %v, serial at %v",
						workers, ki, i, got.traces[ki][i], want.traces[ki][i])
				}
			}
		}
	}
}
