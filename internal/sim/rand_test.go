package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(8)
	same := true
	a2 := NewRand(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(1)
	f := func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(2)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandFloat64Mean(t *testing.T) {
	r := NewRand(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Exp(10)
		if v < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.3 {
		t.Fatalf("exp mean = %v, want ~10", mean)
	}
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(5)
	sum, sumsq := 0.0, 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Norm(3, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("norm mean = %v", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("norm stddev = %v", math.Sqrt(variance))
	}
}

func TestRandLogNormPositive(t *testing.T) {
	r := NewRand(6)
	for i := 0; i < 10000; i++ {
		if r.LogNorm(0, 1) <= 0 {
			t.Fatal("log-normal draw not positive")
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(9)
	f := func(n uint8) bool {
		m := int(n % 64)
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRandFork(t *testing.T) {
	r := NewRand(10)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams identical")
	}
}

func TestRandIntnPanics(t *testing.T) {
	r := NewRand(11)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Intn(0)
}

func TestRandInt63Family(t *testing.T) {
	r := NewRand(20)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 negative")
		}
		v := r.Int63n(77)
		if v < 0 || v >= 77 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Int63n(0)
}
