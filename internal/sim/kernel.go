// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel maintains a priority queue of events ordered by virtual time,
// with ties broken by insertion sequence so that runs are exactly
// reproducible. Simulated "threads" (Proc) are backed by goroutines, but the
// kernel guarantees that at most one proc runs at any instant and that
// control is handed over synchronously, so the simulation is deterministic
// regardless of the Go scheduler.
//
// Virtual time is measured in integer nanoseconds (Time). All latencies in
// the PRDMA models are expressed as time.Duration and added to Time values.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time s.
func (t Time) Sub(s Time) time.Duration { return time.Duration(t - s) }

// Duration converts t to a duration since time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
	// canceled events stay in the heap but are skipped when popped.
	canceled *bool
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Kernel is a discrete-event simulation engine.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap

	// handoff channel used by procs to return control to the kernel.
	handoff chan struct{}
	// current proc, nil while the kernel itself runs an event callback.
	cur *Proc

	procs   int // live procs, for leak diagnostics
	stopped bool
}

// New returns a fresh kernel at virtual time zero.
func New() *Kernel {
	return &Kernel{handoff: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of scheduled (possibly canceled) events.
func (k *Kernel) Pending() int { return len(k.events) }

// Procs reports the number of live procs.
func (k *Kernel) Procs() int { return k.procs }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// that is always a model bug.
func (k *Kernel) At(t Time, fn func()) *Timer {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	c := false
	ev := &event{at: t, seq: k.seq, fn: fn, canceled: &c}
	heap.Push(&k.events, ev)
	return &Timer{canceled: &c, at: t}
}

// After schedules fn to run d from now.
func (k *Kernel) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// Timer is a handle to a scheduled event that can be canceled.
type Timer struct {
	canceled *bool
	at       Time
}

// Stop cancels the timer. It is safe to call after the event fired (no-op).
func (t *Timer) Stop() {
	if t != nil && t.canceled != nil {
		*t.canceled = true
	}
}

// When returns the virtual time the timer fires at.
func (t *Timer) When() Time { return t.at }

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes events with timestamps <= deadline. The virtual clock is
// left at the timestamp of the last executed event (or the deadline if that
// is later and events remain).
func (k *Kernel) RunUntil(deadline Time) {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		ev := k.events[0]
		if ev.at > deadline {
			k.now = deadline
			return
		}
		heap.Pop(&k.events)
		if *ev.canceled {
			continue
		}
		if ev.at < k.now {
			panic("sim: event queue went backwards")
		}
		k.now = ev.at
		ev.fn()
	}
}

// Stop makes Run/RunUntil return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// RunFor runs for d of virtual time from now.
func (k *Kernel) RunFor(d time.Duration) { k.RunUntil(k.now.Add(d)) }
