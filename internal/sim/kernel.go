// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel maintains a priority queue of events ordered by virtual time,
// with ties broken by insertion sequence so that runs are exactly
// reproducible. Simulated "threads" (Proc) are backed by goroutines, but the
// kernel guarantees that at most one proc runs at any instant and that
// control is handed over synchronously, so the simulation is deterministic
// regardless of the Go scheduler.
//
// Virtual time is measured in integer nanoseconds (Time). All latencies in
// the PRDMA models are expressed as time.Duration and added to Time values.
//
// Engine performance: the scheduling hot path is allocation-free. Events are
// pooled on a per-kernel free list and recycled as soon as they fire; the
// cancel flag lives inside the event (no escaping *bool); and Timer handles
// use the event's unique sequence number as a generation tag so a recycled
// event can never be canceled through a stale handle. Callers that discard
// the Timer — the overwhelming majority of model code — should use Schedule
// or AfterFunc, which skip the Timer allocation entirely. See DESIGN.md
// "Engine performance".
package sim

import (
	"fmt"
	"time"
)

// event is a scheduled callback. Events are pooled: once fired (or popped
// after cancellation) they return to the kernel's free list and are reused.
// seq doubles as a generation tag — it is unique per scheduling and reset to
// zero while the event sits on the free list, so stale Timer handles cannot
// touch a recycled event.
type event struct {
	at  Time
	seq uint64
	fn  func()
	// canceled events stay in the heap (lazy deletion) and are recycled
	// when they reach the top.
	canceled bool
}

// eventHeap is a hand-rolled d-ary min-heap ordered by (at, seq). A 4-ary
// layout beats both container/heap (interface-call overhead) and a binary
// layout of the same code (shallower tree, better cache locality on the
// sift-down path); see BenchmarkKernelEvents in bench_test.go and DESIGN.md
// for the measurements that picked it.
type eventHeap []*event

// heapArity is the heap branching factor. 4 won the microbenchmark shootout
// against 2 (see DESIGN.md "Engine performance"); the code works for any
// arity >= 2 so the experiment is one constant away.
const heapArity = 4

func (h eventHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	h.up(len(*h) - 1)
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / heapArity
		if !h.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() *event {
	old := *h
	n := len(old) - 1
	ev := old[0]
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	if n > 1 {
		h.down(0)
	}
	return ev
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		m := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(c, m) {
				m = c
			}
		}
		if !h.less(m, i) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Kernel is a discrete-event simulation engine.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	// free is the event free list; dead counts canceled events still
	// parked in the heap awaiting lazy deletion.
	free []*event
	dead int
	// fired counts executed (non-canceled) events since New. Crash-point
	// sweeps use it as a stable coordinate: with identical inputs the i-th
	// fired event is the same across runs, so "crash after event i" is a
	// deterministic, enumerable injection point.
	fired uint64

	// handoff channel used by procs to return control to the kernel.
	handoff chan struct{}
	// current proc, nil while the kernel itself runs an event callback.
	cur *Proc

	procs int // live procs, for leak diagnostics
	// live registers every spawned proc until its goroutine exits, so
	// Shutdown can reap procs parked in blocking calls (or never started).
	live    map[*Proc]struct{}
	stopped bool

	// eng/engID are set when the kernel is one partition of a multi-kernel
	// Engine (see engine.go); standalone kernels have eng nil, engID -1.
	eng   *Engine
	engID int
}

// New returns a fresh kernel at virtual time zero.
func New() *Kernel {
	return &Kernel{handoff: make(chan struct{}), engID: -1, live: make(map[*Proc]struct{})}
}

// Engine returns the multi-kernel engine this kernel belongs to, or nil for
// a standalone kernel.
func (k *Kernel) Engine() *Engine { return k.eng }

// Partition returns the kernel's partition index within its engine, or -1
// for a standalone kernel.
func (k *Kernel) Partition() int { return k.engID }

// NextEventAt reports the timestamp of the earliest scheduled event, if any.
// Canceled events still parked in the heap count: popping them is progress.
func (k *Kernel) NextEventAt() (Time, bool) {
	if len(k.events) == 0 {
		return 0, false
	}
	return k.events[0].at, true
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// runHead pops the single head event if it is at or before deadline,
// executing it when live and merely recycling it when canceled. It reports
// whether the head was consumed — the engine's serialized window stepping
// interleaves kernels one head event at a time to realize an exact global
// event order (see Engine.Serialize).
func (k *Kernel) runHead(deadline Time) bool {
	if len(k.events) == 0 {
		return false
	}
	ev := k.events[0]
	if ev.at > deadline {
		return false
	}
	k.events.pop()
	if ev.canceled {
		k.dead--
		k.recycle(ev)
		return true
	}
	if ev.at < k.now {
		panic("sim: event queue went backwards")
	}
	k.now = ev.at
	fn := ev.fn
	k.recycle(ev)
	k.fired++
	fn()
	return true
}

// Pending reports the number of live (not canceled) scheduled events.
func (k *Kernel) Pending() int { return len(k.events) - k.dead }

// Procs reports the number of live procs.
func (k *Kernel) Procs() int { return k.procs }

// Fired reports how many events have executed since New.
func (k *Kernel) Fired() uint64 { return k.fired }

// schedule books fn at time t, drawing the event from the free list.
func (k *Kernel) scheduleEvent(t Time, fn func()) *event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.fn, ev.canceled = t, k.seq, fn, false
	k.events.push(ev)
	return ev
}

// recycle returns a popped event to the free list. seq 0 marks it free so
// stale Timer handles (whose saved seq is always >= 1) become no-ops.
func (k *Kernel) recycle(ev *event) {
	ev.seq, ev.fn, ev.canceled = 0, nil, false
	k.free = append(k.free, ev)
}

// Schedule runs fn at virtual time t. It is the allocation-free counterpart
// of At for the common case where the caller never cancels: no Timer handle
// is returned. Scheduling in the past panics: that is always a model bug.
func (k *Kernel) Schedule(t Time, fn func()) {
	k.scheduleEvent(t, fn)
}

// AfterFunc runs fn d from now; the allocation-free counterpart of After.
func (k *Kernel) AfterFunc(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.scheduleEvent(k.now.Add(d), fn)
}

// At schedules fn to run at virtual time t and returns a cancel handle.
// Callers that discard the handle should use Schedule instead.
func (k *Kernel) At(t Time, fn func()) *Timer {
	ev := k.scheduleEvent(t, fn)
	return &Timer{k: k, ev: ev, seq: ev.seq, at: t}
}

// After schedules fn to run d from now.
func (k *Kernel) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// Timer is a handle to a scheduled event that can be canceled. The handle
// pins the event's sequence number: once the event fires and is recycled the
// numbers no longer match and Stop becomes a no-op.
type Timer struct {
	k   *Kernel
	ev  *event
	seq uint64
	at  Time
}

// Stop cancels the timer. It is safe to call after the event fired (no-op).
func (t *Timer) Stop() {
	if t == nil || t.ev == nil {
		return
	}
	if t.ev.seq == t.seq && !t.ev.canceled {
		t.ev.canceled = true
		t.ev.fn = nil
		t.k.dead++
	}
}

// When returns the virtual time the timer fires at.
func (t *Timer) When() Time { return t.at }

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes events with timestamps <= deadline. The virtual clock is
// left at the timestamp of the last executed event (or the deadline if that
// is later and events remain).
func (k *Kernel) RunUntil(deadline Time) {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		ev := k.events[0]
		if ev.at > deadline {
			k.now = deadline
			return
		}
		k.events.pop()
		if ev.canceled {
			k.dead--
			k.recycle(ev)
			continue
		}
		if ev.at < k.now {
			panic("sim: event queue went backwards")
		}
		k.now = ev.at
		fn := ev.fn
		// Recycle before firing so fn can schedule onto the freed slot.
		k.recycle(ev)
		k.fired++
		fn()
	}
}

// RunEvents executes at most n live events and reports how many ran (fewer
// only when the queue empties first). It stops the world at an exact event
// boundary: the crashcheck harness steps to event i, injects a crash from
// outside the event loop, and resumes with Run.
func (k *Kernel) RunEvents(n uint64) uint64 {
	k.stopped = false
	var ran uint64
	for ran < n && len(k.events) > 0 && !k.stopped {
		ev := k.events.pop()
		if ev.canceled {
			k.dead--
			k.recycle(ev)
			continue
		}
		if ev.at < k.now {
			panic("sim: event queue went backwards")
		}
		k.now = ev.at
		fn := ev.fn
		k.recycle(ev)
		k.fired++
		ran++
		fn()
	}
	return ran
}

// Stop makes Run/RunUntil return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Shutdown kills every live proc and releases the kernel's event pools so a
// finished deployment stops pinning memory. Each proc goroutine is parked at
// its resume channel (in a blocking call, or at spawn if it never started);
// Shutdown resumes it with the kill flag set, which unwinds it synchronously
// on the caller's goroutine — when Shutdown returns, no proc goroutine
// remains. A proc whose deferred cleanup blocks again is simply re-reaped on
// the next loop iteration. Must not be called from inside the simulation.
func (k *Kernel) Shutdown() {
	if k.cur != nil {
		panic("sim: Shutdown from inside the simulation")
	}
	for len(k.live) > 0 {
		var p *Proc
		for q := range k.live {
			p = q
			break
		}
		p.killed = true
		p.waitGen++
		p.waiting = false
		k.schedule(p) // resume → kill unwind → exit path removes p from live
	}
	k.events = nil
	k.free = nil
	k.dead = 0
	k.stopped = true
}

// RunFor runs for d of virtual time from now.
func (k *Kernel) RunFor(d time.Duration) { k.RunUntil(k.now.Add(d)) }
