// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel maintains a priority queue of events ordered by virtual time,
// with ties broken by insertion sequence so that runs are exactly
// reproducible. Simulated "threads" (Proc) are backed by goroutines, but the
// kernel guarantees that at most one proc runs at any instant and that
// control is handed over synchronously, so the simulation is deterministic
// regardless of the Go scheduler.
//
// Virtual time is measured in integer nanoseconds (Time). All latencies in
// the PRDMA models are expressed as time.Duration and added to Time values.
//
// Engine performance: the scheduling hot path is allocation-free. Events are
// pooled on a per-kernel free list and recycled as soon as they fire; the
// cancel flag lives inside the event (no escaping *bool); and Timer handles
// use the event's unique sequence number as a generation tag so a recycled
// event can never be canceled through a stale handle. Callers that discard
// the Timer — the overwhelming majority of model code — should use Schedule
// or AfterFunc, which skip the Timer allocation entirely. See DESIGN.md
// "Engine performance".
package sim

import (
	"fmt"
	"time"
)

// event is a scheduled callback. Events are pooled: once fired (or popped
// after cancellation) they return to the kernel's free list and are reused.
// seq doubles as a generation tag — it is unique per scheduling and reset to
// zero while the event sits on the free list, so stale Timer handles cannot
// touch a recycled event.
type event struct {
	at  Time
	seq uint64
	fn  func()
	// canceled events stay in the heap (lazy deletion) and are recycled
	// when they reach the top.
	canceled bool
}

// heapSlot is one entry of the event heap. The (at, seq) ordering key is
// stored inline next to the event pointer so heap comparisons read
// contiguous slice memory instead of chasing a pointer per compare — the
// sift paths were cache-miss-bound with a []*event layout. The key is
// immutable once pushed (cancellation flips flags inside the event, never
// its timestamp), so the copies cannot go stale.
type heapSlot struct {
	at  Time
	seq uint64
	ev  *event
}

// eventHeap is a hand-rolled d-ary min-heap ordered by (at, seq). A 4-ary
// layout beats both container/heap (interface-call overhead) and a binary
// layout of the same code (shallower tree, better cache locality on the
// sift-down path); see BenchmarkKernelEvents in bench_test.go and DESIGN.md
// for the measurements that picked it.
type eventHeap []heapSlot

// heapArity is the heap branching factor. 4 won the microbenchmark shootout
// against 2 (see DESIGN.md "Engine performance"); the code works for any
// arity >= 2 so the experiment is one constant away.
const heapArity = 8

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, heapSlot{at: ev.at, seq: ev.seq, ev: ev})
	h.up(len(*h) - 1)
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / heapArity
		if !h.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() *event {
	old := *h
	n := len(old) - 1
	ev := old[0].ev
	old[0] = old[n]
	old[n] = heapSlot{}
	*h = old[:n]
	if n > 1 {
		h.down(0)
	}
	return ev
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		m := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(c, m) {
				m = c
			}
		}
		if !h.less(m, i) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Kernel is a discrete-event simulation engine.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	// nowQ is the fast path for events scheduled at exactly the current
	// virtual time — Cond wakes, Yields, completion chains. They bypass the
	// heap on a FIFO ring consumed in (at, seq) order relative to the heap:
	// every heap entry at the same timestamp was scheduled earlier (lower
	// seq — a later same-time schedule lands here too, because the clock
	// cannot advance while the ring is non-empty), so draining the heap
	// first at equal timestamps reproduces the heap's total order exactly.
	nowQ    []*event
	nowHead int
	// monoQ is the monotone deadline lane: a FIFO for events whose
	// timestamps are scheduled in non-decreasing order (retransmit timers —
	// now + a constant interval). Entries are sorted by construction (ties
	// in seq order, since appends carry increasing seq), so the lane merges
	// into popNext by an exact (at, seq) head comparison instead of paying
	// heap sifts. Crucially it also keeps far-future timers out of the
	// heap: a 100 ms retry timer otherwise sits under every short-fuse
	// event for the rest of the run, growing the sift depth without bound.
	monoQ    []*event
	monoHead int
	// free is the event free list; dead counts canceled events still
	// parked in the heap awaiting lazy deletion.
	free []*event
	dead int
	// fired counts executed (non-canceled) events since New. Crash-point
	// sweeps use it as a stable coordinate: with identical inputs the i-th
	// fired event is the same across runs, so "crash after event i" is a
	// deterministic, enumerable injection point.
	fired uint64

	// handoff channel used by procs to return control to the kernel.
	handoff chan struct{}
	// current proc, nil while the kernel itself runs an event callback.
	cur *Proc

	procs int // live procs, for leak diagnostics
	// live registers every spawned proc until its goroutine exits, so
	// Shutdown can reap procs parked in blocking calls (or never started).
	live    map[*Proc]struct{}
	stopped bool

	// eng/engID are set when the kernel is one partition of a multi-kernel
	// Engine (see engine.go); standalone kernels have eng nil, engID -1.
	eng   *Engine
	engID int
}

// New returns a fresh kernel at virtual time zero.
func New() *Kernel {
	return &Kernel{handoff: make(chan struct{}), engID: -1, live: make(map[*Proc]struct{})}
}

// Engine returns the multi-kernel engine this kernel belongs to, or nil for
// a standalone kernel.
func (k *Kernel) Engine() *Engine { return k.eng }

// Partition returns the kernel's partition index within its engine, or -1
// for a standalone kernel.
func (k *Kernel) Partition() int { return k.engID }

// NextEventAt reports the timestamp of the earliest scheduled event, if any.
// Canceled events still parked in the heap count: popping them is progress.
func (k *Kernel) NextEventAt() (Time, bool) {
	if k.nowHead < len(k.nowQ) {
		return k.nowQ[k.nowHead].at, true // == now; nothing can be earlier
	}
	hOK, mOK := len(k.events) > 0, k.monoHead < len(k.monoQ)
	switch {
	case hOK && mOK:
		if m := k.monoQ[k.monoHead].at; m < k.events[0].at {
			return m, true
		}
		return k.events[0].at, true
	case hOK:
		return k.events[0].at, true
	case mOK:
		return k.monoQ[k.monoHead].at, true
	}
	return 0, false
}

// pendingAny reports whether any event (live or canceled) is queued.
func (k *Kernel) pendingAny() bool {
	return len(k.events) > 0 || k.nowHead < len(k.nowQ) || k.monoHead < len(k.monoQ)
}

// popRing pops the head of a FIFO ring, compacting it when it empties.
func popRing(q *[]*event, head *int) *event {
	ev := (*q)[*head]
	(*q)[*head] = nil
	*head++
	if *head == len(*q) {
		*q = (*q)[:0]
		*head = 0
	}
	return ev
}

// popNext removes and returns the earliest event in (at, seq) order across
// the heap, the monotone lane, and the now-queue. Heap and lane heads carry
// their seq and are compared exactly; a now-queue entry loses every same-
// timestamp tie because it was scheduled latest (see the nowQ invariant).
func (k *Kernel) popNext() *event {
	hOK, mOK := len(k.events) > 0, k.monoHead < len(k.monoQ)
	fromMono := false
	var bestAt Time
	switch {
	case hOK && mOK:
		m, h := k.monoQ[k.monoHead], &k.events[0]
		fromMono = m.at < h.at || (m.at == h.at && m.seq < h.seq)
		if fromMono {
			bestAt = m.at
		} else {
			bestAt = h.at
		}
	case hOK:
		bestAt = k.events[0].at
	case mOK:
		fromMono, bestAt = true, k.monoQ[k.monoHead].at
	default:
		return popRing(&k.nowQ, &k.nowHead)
	}
	if k.nowHead < len(k.nowQ) && k.nowQ[k.nowHead].at < bestAt {
		return popRing(&k.nowQ, &k.nowHead)
	}
	if fromMono {
		return popRing(&k.monoQ, &k.monoHead)
	}
	return k.events.pop()
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// runHead pops the single head event if it is at or before deadline,
// executing it when live and merely recycling it when canceled. It reports
// whether the head was consumed — the engine's serialized window stepping
// interleaves kernels one head event at a time to realize an exact global
// event order (see Engine.Serialize).
func (k *Kernel) runHead(deadline Time) bool {
	if !k.pendingAny() {
		return false
	}
	if at, _ := k.NextEventAt(); at > deadline {
		return false
	}
	ev := k.popNext()
	if ev.canceled {
		k.dead--
		k.recycle(ev)
		return true
	}
	if ev.at < k.now {
		panic("sim: event queue went backwards")
	}
	k.now = ev.at
	fn := ev.fn
	k.recycle(ev)
	k.fired++
	fn()
	return true
}

// Pending reports the number of live (not canceled) scheduled events.
func (k *Kernel) Pending() int {
	return len(k.events) + len(k.nowQ) - k.nowHead + len(k.monoQ) - k.monoHead - k.dead
}

// Procs reports the number of live procs.
func (k *Kernel) Procs() int { return k.procs }

// Fired reports how many events have executed since New.
func (k *Kernel) Fired() uint64 { return k.fired }

// schedule books fn at time t, drawing the event from the free list.
func (k *Kernel) scheduleEvent(t Time, fn func()) *event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.fn, ev.canceled = t, k.seq, fn, false
	if t == k.now {
		if k.nowHead > 0 && k.nowHead == len(k.nowQ) {
			k.nowQ = k.nowQ[:0]
			k.nowHead = 0
		}
		k.nowQ = append(k.nowQ, ev)
	} else {
		k.events.push(ev)
	}
	return ev
}

// recycle returns a popped event to the free list. seq 0 marks it free so
// stale Timer handles (whose saved seq is always >= 1) become no-ops.
func (k *Kernel) recycle(ev *event) {
	ev.seq, ev.fn, ev.canceled = 0, nil, false
	k.free = append(k.free, ev)
}

// Schedule runs fn at virtual time t. It is the allocation-free counterpart
// of At for the common case where the caller never cancels: no Timer handle
// is returned. Scheduling in the past panics: that is always a model bug.
func (k *Kernel) Schedule(t Time, fn func()) {
	k.scheduleEvent(t, fn)
}

// AfterFunc runs fn d from now; the allocation-free counterpart of After.
func (k *Kernel) AfterFunc(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.scheduleEvent(k.now.Add(d), fn)
}

// AfterFuncMonotonic is AfterFunc for deadlines drawn from a fixed offset —
// retransmit timers, lease refreshes — where successive calls on a kernel
// produce non-decreasing timestamps. Such events ride the monotone FIFO lane:
// O(1) to book and to pop, and they never inflate the heap (a long retry
// timer would otherwise deepen every sift for the rest of the run). Calls
// that arrive out of order are legal and simply fall back to the heap.
func (k *Kernel) AfterFuncMonotonic(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	t := k.now.Add(d)
	if t == k.now || (k.monoHead < len(k.monoQ) && k.monoQ[len(k.monoQ)-1].at > t) {
		k.scheduleEvent(t, fn) // now-queue, or out of order: heap fallback
		return
	}
	k.seq++
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.fn, ev.canceled = t, k.seq, fn, false
	if k.monoHead > 0 && k.monoHead == len(k.monoQ) {
		k.monoQ = k.monoQ[:0]
		k.monoHead = 0
	}
	k.monoQ = append(k.monoQ, ev)
}

// At schedules fn to run at virtual time t and returns a cancel handle.
// Callers that discard the handle should use Schedule instead.
func (k *Kernel) At(t Time, fn func()) *Timer {
	ev := k.scheduleEvent(t, fn)
	return &Timer{k: k, ev: ev, seq: ev.seq, at: t}
}

// After schedules fn to run d from now.
func (k *Kernel) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// Timer is a handle to a scheduled event that can be canceled. The handle
// pins the event's sequence number: once the event fires and is recycled the
// numbers no longer match and Stop becomes a no-op.
type Timer struct {
	k   *Kernel
	ev  *event
	seq uint64
	at  Time
}

// Stop cancels the timer. It is safe to call after the event fired (no-op).
func (t *Timer) Stop() {
	if t == nil || t.ev == nil {
		return
	}
	if t.ev.seq == t.seq && !t.ev.canceled {
		t.ev.canceled = true
		t.ev.fn = nil
		t.k.dead++
	}
}

// When returns the virtual time the timer fires at.
func (t *Timer) When() Time { return t.at }

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes events with timestamps <= deadline. The virtual clock is
// left at the timestamp of the last executed event (or the deadline if that
// is later and events remain).
func (k *Kernel) RunUntil(deadline Time) {
	k.stopped = false
	for k.pendingAny() && !k.stopped {
		if at, _ := k.NextEventAt(); at > deadline {
			k.now = deadline
			return
		}
		ev := k.popNext()
		if ev.canceled {
			k.dead--
			k.recycle(ev)
			continue
		}
		if ev.at < k.now {
			panic("sim: event queue went backwards")
		}
		k.now = ev.at
		fn := ev.fn
		// Recycle before firing so fn can schedule onto the freed slot.
		k.recycle(ev)
		k.fired++
		fn()
	}
}

// RunEvents executes at most n live events and reports how many ran (fewer
// only when the queue empties first). It stops the world at an exact event
// boundary: the crashcheck harness steps to event i, injects a crash from
// outside the event loop, and resumes with Run.
func (k *Kernel) RunEvents(n uint64) uint64 {
	k.stopped = false
	var ran uint64
	for ran < n && k.pendingAny() && !k.stopped {
		ev := k.popNext()
		if ev.canceled {
			k.dead--
			k.recycle(ev)
			continue
		}
		if ev.at < k.now {
			panic("sim: event queue went backwards")
		}
		k.now = ev.at
		fn := ev.fn
		k.recycle(ev)
		k.fired++
		ran++
		fn()
	}
	return ran
}

// Stop makes Run/RunUntil return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Shutdown kills every live proc and releases the kernel's event pools so a
// finished deployment stops pinning memory. Each proc goroutine is parked at
// its resume channel (in a blocking call, or at spawn if it never started);
// Shutdown resumes it with the kill flag set, which unwinds it synchronously
// on the caller's goroutine — when Shutdown returns, no proc goroutine
// remains. A proc whose deferred cleanup blocks again is simply re-reaped on
// the next loop iteration. Must not be called from inside the simulation.
func (k *Kernel) Shutdown() {
	if k.cur != nil {
		panic("sim: Shutdown from inside the simulation")
	}
	for len(k.live) > 0 {
		var p *Proc
		for q := range k.live {
			p = q
			break
		}
		p.killed = true
		p.waitGen++
		p.waiting = false
		k.schedule(p) // resume → kill unwind → exit path removes p from live
	}
	k.events = nil
	k.nowQ = nil
	k.nowHead = 0
	k.monoQ = nil
	k.monoHead = 0
	k.free = nil
	k.dead = 0
	k.stopped = true
}

// RunFor runs for d of virtual time from now.
func (k *Kernel) RunFor(d time.Duration) { k.RunUntil(k.now.Add(d)) }
