package sim

import "time"

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time s.
func (t Time) Sub(s Time) time.Duration { return time.Duration(t - s) }

// Duration converts t to a duration since time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats t exactly like time.Duration.String ("1.5µs", "2m3.004s"),
// but through a local formatter: one string allocation, no conversion through
// the time package. Trace lines format a Time on every event, so this is on
// the tracing hot path; AppendTo is the zero-allocation variant for callers
// that own a scratch buffer. timeStringEquivalence in time_test.go pins the
// output byte-identical to the stdlib across the full value range, and the
// alloc test pins String to 1 alloc and AppendTo to 0.
func (t Time) String() string {
	var buf [32]byte
	return string(t.appendTo(buf[:0]))
}

// AppendTo appends the formatted time to dst and returns the extended slice.
// It performs no allocation when dst has capacity (max formatted length is
// 32 bytes).
func (t Time) AppendTo(dst []byte) []byte {
	return t.appendTo(dst)
}

func (t Time) appendTo(dst []byte) []byte {
	// Largest formatted value is -2562047h47m16.854775808s: 24 bytes.
	var arr [32]byte
	w := len(arr)
	u := uint64(t)
	neg := t < 0
	if neg {
		u = -u
	}
	if u < uint64(time.Second) {
		// Sub-second: pick ns/µs/ms so the mantissa stays small.
		var prec int
		w--
		arr[w] = 's'
		w--
		switch {
		case u == 0:
			return append(dst, '0', 's')
		case u < uint64(time.Microsecond):
			prec = 0
			arr[w] = 'n'
		case u < uint64(time.Millisecond):
			prec = 3
			// U+00B5 'µ' is two bytes in UTF-8.
			w--
			copy(arr[w:], "µ")
		default:
			prec = 6
			arr[w] = 'm'
		}
		w, u = fmtFrac(arr[:w], u, prec)
		w = fmtInt(arr[:w], u)
	} else {
		w--
		arr[w] = 's'
		w, u = fmtFrac(arr[:w], u, 9)
		w = fmtInt(arr[:w], u%60) // seconds
		u /= 60
		if u > 0 {
			w--
			arr[w] = 'm'
			w = fmtInt(arr[:w], u%60) // minutes
			u /= 60
			if u > 0 {
				w--
				arr[w] = 'h'
				w = fmtInt(arr[:w], u) // hours (days vary in length; stop here)
			}
		}
	}
	if neg {
		w--
		arr[w] = '-'
	}
	return append(dst, arr[w:]...)
}

// fmtFrac formats the fraction of v/10**prec (e.g. ".12345") into the tail of
// buf, omitting trailing zeros; it omits the decimal point too when the
// fraction is all zeros. It returns the index where the output begins and the
// value v/10**prec.
func fmtFrac(buf []byte, v uint64, prec int) (nw int, nv uint64) {
	w := len(buf)
	printing := false
	for i := 0; i < prec; i++ {
		digit := v % 10
		printing = printing || digit != 0
		if printing {
			w--
			buf[w] = byte(digit) + '0'
		}
		v /= 10
	}
	if printing {
		w--
		buf[w] = '.'
	}
	return w, v
}

// fmtInt formats v into the tail of buf and returns the index where the
// output begins.
func fmtInt(buf []byte, v uint64) int {
	w := len(buf)
	if v == 0 {
		w--
		buf[w] = '0'
		return w
	}
	for v > 0 {
		w--
		buf[w] = byte(v%10) + '0'
		v /= 10
	}
	return w
}
