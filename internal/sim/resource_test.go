package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestResourceFIFOQueueing(t *testing.T) {
	k := New()
	r := NewResource(k)
	e1 := r.Reserve(10 * time.Microsecond)
	e2 := r.Reserve(5 * time.Microsecond)
	if e1 != Time(10*time.Microsecond) {
		t.Fatalf("e1 = %v", e1)
	}
	if e2 != Time(15*time.Microsecond) {
		t.Fatalf("e2 = %v (should queue behind e1)", e2)
	}
	if r.BusyTime() != 15*time.Microsecond {
		t.Fatalf("busy = %v", r.BusyTime())
	}
}

func TestResourceIdleGap(t *testing.T) {
	k := New()
	r := NewResource(k)
	r.Reserve(time.Microsecond)
	k.After(10*time.Microsecond, func() {
		end := r.Reserve(2 * time.Microsecond)
		if end != Time(12*time.Microsecond) {
			t.Errorf("end = %v, want 12us (no queueing after idle gap)", end)
		}
	})
	k.Run()
}

func TestResourceUse(t *testing.T) {
	k := New()
	r := NewResource(k)
	var t1, t2 Time
	k.Go("a", func(p *Proc) { r.Use(p, 10*time.Microsecond); t1 = p.Now() })
	k.Go("b", func(p *Proc) { r.Use(p, 10*time.Microsecond); t2 = p.Now() })
	k.Run()
	if t1 != Time(10*time.Microsecond) || t2 != Time(20*time.Microsecond) {
		t.Fatalf("t1=%v t2=%v", t1, t2)
	}
}

func TestResourceReserveAt(t *testing.T) {
	k := New()
	r := NewResource(k)
	end := r.ReserveAt(Time(5*time.Microsecond), 3*time.Microsecond)
	if end != Time(8*time.Microsecond) {
		t.Fatalf("end = %v", end)
	}
}

func TestCostModel(t *testing.T) {
	c := CostModel{Base: time.Microsecond, BytesPerSec: 1e9} // 1 GB/s
	if got := c.Cost(0); got != time.Microsecond {
		t.Fatalf("Cost(0) = %v", got)
	}
	if got := c.Cost(1000); got != 2*time.Microsecond {
		t.Fatalf("Cost(1000) = %v, want 2us", got)
	}
	var zero CostModel
	if zero.Cost(1<<20) != 0 {
		t.Fatal("zero CostModel should be free")
	}
}

func TestCostModelMonotonic(t *testing.T) {
	c := CostModel{Base: 500 * time.Nanosecond, BytesPerSec: 2e9}
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return c.Cost(x) <= c.Cost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMutexFIFO(t *testing.T) {
	k := New()
	m := NewMutex(k)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.GoAfter(time.Duration(i)*time.Microsecond, "p", func(p *Proc) {
			m.Lock(p)
			order = append(order, i)
			p.Sleep(10 * time.Microsecond)
			m.Unlock()
		})
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("lock order: %v", order)
		}
	}
}

func TestMutexDoubleUnlockPanics(t *testing.T) {
	k := New()
	m := NewMutex(k)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Unlock()
}

func TestResourceNextFreeAndReset(t *testing.T) {
	k := New()
	r := NewResource(k)
	r.Reserve(10 * time.Microsecond)
	if r.NextFree() != Time(10*time.Microsecond) {
		t.Fatalf("NextFree = %v", r.NextFree())
	}
	r.Reset()
	if r.NextFree() != k.Now() {
		t.Fatal("Reset did not clear the queue")
	}
}
