package sim

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestTimeStringEquivalence pins Time.String (and AppendTo) byte-identical to
// time.Duration.String across edge cases and a broad random sweep of every
// magnitude band.
func TestTimeStringEquivalence(t *testing.T) {
	check := func(v int64) {
		t.Helper()
		want := time.Duration(v).String()
		if got := Time(v).String(); got != want {
			t.Fatalf("Time(%d).String() = %q, want %q", v, got, want)
		}
		if got := string(Time(v).AppendTo(nil)); got != want {
			t.Fatalf("Time(%d).AppendTo(nil) = %q, want %q", v, got, want)
		}
	}

	edges := []int64{
		0, 1, -1, 9, 10, 999, 1000, 1001, 999999, 1000000, 1000001,
		int64(time.Millisecond), int64(time.Second) - 1, int64(time.Second),
		int64(time.Second) + 1, int64(90 * time.Second), int64(time.Minute),
		int64(time.Hour) - 1, int64(time.Hour), int64(time.Hour) + 1,
		int64(26*time.Hour + 3*time.Minute + 4*time.Second + 5),
		int64(1200 * time.Microsecond), int64(2*time.Millisecond + 300),
		math.MaxInt64, math.MinInt64, math.MinInt64 + 1,
		-int64(time.Second), -int64(time.Hour + 500*time.Millisecond),
	}
	for _, v := range edges {
		check(v)
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		// Random magnitude band so ns, µs, ms, s, m, h all get coverage.
		bits := uint(rng.Intn(63) + 1)
		v := rng.Int63() & (1<<bits - 1)
		if rng.Intn(2) == 0 {
			v = -v
		}
		check(v)
	}
}

// TestTimeStringAllocs pins the formatter's allocation budget: String is one
// string allocation, AppendTo into a sized buffer is zero. Tracing formats a
// Time per event, so regressions here show up directly in parallel-run walls.
func TestTimeStringAllocs(t *testing.T) {
	v := Time(26*time.Hour + 3*time.Minute + 4*time.Second + 567891234)
	var sink string
	if n := testing.AllocsPerRun(200, func() { sink = v.String() }); n > 1 {
		t.Fatalf("Time.String allocates %.1f times per call, want <= 1", n)
	}
	buf := make([]byte, 0, 32)
	var bsink []byte
	if n := testing.AllocsPerRun(200, func() { bsink = v.AppendTo(buf[:0]) }); n != 0 {
		t.Fatalf("Time.AppendTo allocates %.1f times per call, want 0", n)
	}
	_, _ = sink, bsink
}

func BenchmarkTimeString(b *testing.B) {
	v := Time(1234567) // 1.234567ms: the common trace-line magnitude
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.String()
	}
}

func BenchmarkTimeAppendTo(b *testing.B) {
	v := Time(1234567)
	buf := make([]byte, 0, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = v.AppendTo(buf[:0])
	}
}
