package sim

import (
	"testing"
	"time"
)

func TestKernelEventOrdering(t *testing.T) {
	k := New()
	var got []int
	k.After(30*time.Microsecond, func() { got = append(got, 3) })
	k.After(10*time.Microsecond, func() { got = append(got, 1) })
	k.After(20*time.Microsecond, func() { got = append(got, 2) })
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if k.Now() != Time(30*time.Microsecond) {
		t.Fatalf("clock = %v, want 30us", k.Now())
	}
}

func TestKernelTieBreakBySequence(t *testing.T) {
	k := New()
	var got []int
	at := Time(5 * time.Microsecond)
	for i := 0; i < 10; i++ {
		i := i
		k.At(at, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break violated at %d: %v", i, got)
		}
	}
}

func TestKernelSchedulingInPastPanics(t *testing.T) {
	k := New()
	k.After(time.Millisecond, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	k.At(Time(time.Microsecond), func() {})
}

func TestKernelRunUntil(t *testing.T) {
	k := New()
	fired := 0
	k.After(time.Millisecond, func() { fired++ })
	k.After(3*time.Millisecond, func() { fired++ })
	k.RunUntil(Time(2 * time.Millisecond))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != Time(2*time.Millisecond) {
		t.Fatalf("clock = %v, want 2ms", k.Now())
	}
	k.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestTimerStop(t *testing.T) {
	k := New()
	fired := false
	tm := k.After(time.Millisecond, func() { fired = true })
	tm.Stop()
	k.Run()
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestKernelStop(t *testing.T) {
	k := New()
	n := 0
	var reschedule func()
	reschedule = func() {
		n++
		if n == 5 {
			k.Stop()
		}
		k.After(time.Microsecond, reschedule)
	}
	k.After(time.Microsecond, reschedule)
	k.Run()
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
}

func TestProcSleepAndOrdering(t *testing.T) {
	k := New()
	var got []string
	k.Go("a", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		got = append(got, "a10")
		p.Sleep(20 * time.Microsecond)
		got = append(got, "a30")
	})
	k.Go("b", func(p *Proc) {
		p.Sleep(20 * time.Microsecond)
		got = append(got, "b20")
	})
	k.Run()
	want := []string{"a10", "b20", "a30"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if k.Procs() != 0 {
		t.Fatalf("leaked procs: %d", k.Procs())
	}
}

func TestProcYield(t *testing.T) {
	k := New()
	var got []int
	k.Go("a", func(p *Proc) {
		got = append(got, 1)
		p.Yield()
		got = append(got, 3)
	})
	k.Go("b", func(p *Proc) {
		got = append(got, 2)
	})
	k.Run()
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("yield ordering: %v", got)
		}
	}
}

func TestProcKill(t *testing.T) {
	k := New()
	reached := false
	p := k.Go("victim", func(p *Proc) {
		p.Sleep(time.Second)
		reached = true
	})
	k.After(time.Millisecond, func() { p.Kill() })
	k.Run()
	if reached {
		t.Fatal("killed proc kept running")
	}
	if !p.Dead() {
		t.Fatal("killed proc not dead")
	}
	if k.Procs() != 0 {
		t.Fatalf("leaked procs: %d", k.Procs())
	}
}

func TestProcKillWhileWaitingOnCond(t *testing.T) {
	k := New()
	c := NewCond(k)
	p := k.Go("waiter", func(p *Proc) {
		c.Wait(p)
		t.Error("wait returned on killed proc")
	})
	k.After(time.Millisecond, func() { p.Kill() })
	k.Run()
	if !p.Dead() {
		t.Fatal("proc not dead")
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	k := New()
	c := NewCond(k)
	var got []int
	for i := 0; i < 3; i++ {
		i := i
		k.Go("w", func(p *Proc) {
			c.Wait(p)
			got = append(got, i)
		})
	}
	k.After(time.Millisecond, func() { c.Signal() })
	k.After(2*time.Millisecond, func() { c.Signal() })
	k.After(3*time.Millisecond, func() { c.Signal() })
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestCondBroadcast(t *testing.T) {
	k := New()
	c := NewCond(k)
	n := 0
	for i := 0; i < 5; i++ {
		k.Go("w", func(p *Proc) {
			c.Wait(p)
			n++
		})
	}
	k.After(time.Millisecond, func() { c.Broadcast() })
	k.Run()
	if n != 5 {
		t.Fatalf("woke %d of 5", n)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	k := New()
	c := NewCond(k)
	var timedOut, signaled bool
	k.Go("t", func(p *Proc) {
		timedOut = !c.WaitTimeout(p, time.Millisecond)
	})
	k.Go("s", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		c.Signal() // no waiters left; must be a no-op
	})
	k.Run()
	if !timedOut {
		t.Fatal("expected timeout")
	}

	k2 := New()
	c2 := NewCond(k2)
	k2.Go("t", func(p *Proc) {
		signaled = c2.WaitTimeout(p, 10*time.Millisecond)
	})
	k2.After(time.Millisecond, func() { c2.Signal() })
	k2.Run()
	if !signaled {
		t.Fatal("expected signal before timeout")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		k := New()
		rng := NewRand(42)
		var trace []int64
		for i := 0; i < 50; i++ {
			k.GoAfter(time.Duration(rng.Intn(1000))*time.Microsecond, "p", func(p *Proc) {
				p.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
				trace = append(trace, int64(p.Now()))
			})
		}
		k.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(0).Add(3 * time.Microsecond)
	if tm.Sub(Time(time.Microsecond)) != 2*time.Microsecond {
		t.Fatal("Sub wrong")
	}
	if tm.Duration() != 3*time.Microsecond {
		t.Fatal("Duration wrong")
	}
	if tm.String() != "3µs" {
		t.Fatalf("String = %q", tm.String())
	}
}

func TestKernelSmallAccessors(t *testing.T) {
	k := New()
	if k.Pending() != 0 {
		t.Fatal("pending not 0")
	}
	tm := k.After(time.Millisecond, func() {})
	if k.Pending() != 1 {
		t.Fatal("pending not 1")
	}
	if tm.When() != Time(time.Millisecond) {
		t.Fatalf("When = %v", tm.When())
	}
	k.RunFor(2 * time.Millisecond)
	if k.Now() != Time(time.Millisecond) {
		t.Fatalf("clock = %v after RunFor past the last event", k.Now())
	}
	// Negative After clamps to now.
	fired := false
	k.After(-time.Second, func() { fired = true })
	k.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
}

func TestProcAccessors(t *testing.T) {
	k := New()
	p := k.Go("named", func(p *Proc) { p.Sleep(time.Second) })
	k.RunFor(time.Millisecond)
	if p.String() != "proc(named)" {
		t.Fatalf("String = %q", p.String())
	}
	if p.Killed() {
		t.Fatal("not yet killed")
	}
	p.Kill()
	if !p.Killed() {
		t.Fatal("Killed() false after Kill")
	}
	p.Kill() // idempotent
	k.Run()
	if !p.Dead() {
		t.Fatal("not dead")
	}
	p.Kill() // killing the dead: no-op
}
