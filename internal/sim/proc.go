package sim

import (
	"fmt"
	"time"
)

// Proc is a simulated thread of execution. Procs are backed by goroutines,
// but the kernel ensures at most one proc runs at a time: a proc only
// executes between a resume handoff from the kernel and its next blocking
// call (Sleep, Yield, Chan.Pop, Cond.Wait, ...), at which point it hands
// control back synchronously. This gives sequential, deterministic semantics
// while letting protocol code be written in a natural blocking style.
type Proc struct {
	K      *Kernel
	Name   string
	resume chan struct{}
	dead   bool
	killed bool
}

// Go spawns a new proc that starts executing at the current virtual time
// (after already-scheduled events at the same timestamp).
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	return k.GoAt(k.now, name, fn)
}

// GoAfter spawns a proc that starts after delay d.
func (k *Kernel) GoAfter(d time.Duration, name string, fn func(p *Proc)) *Proc {
	return k.GoAt(k.now.Add(d), name, fn)
}

// GoAt spawns a proc that starts at time t.
func (k *Kernel) GoAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{K: k, Name: name, resume: make(chan struct{})}
	k.procs++
	go func() {
		<-p.resume // wait for first scheduling
		if !p.killed {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(procKilled); ok {
							return // Kill() unwound the proc
						}
						panic(r)
					}
				}()
				fn(p)
			}()
		}
		p.dead = true
		p.K.procs--
		p.K.cur = nil
		p.K.handoff <- struct{}{}
	}()
	k.At(t, func() { k.schedule(p) })
	return p
}

// procKilled is the panic payload used to unwind a killed proc.
type procKilled struct{}

// schedule transfers control from the kernel to p until p blocks or exits.
func (k *Kernel) schedule(p *Proc) {
	if p.dead {
		return
	}
	k.cur = p
	p.resume <- struct{}{}
	<-k.handoff
}

// block hands control back to the kernel; the proc stays suspended until
// something calls wake (via a scheduled event).
func (p *Proc) block() {
	if p.K.cur != p {
		panic("sim: blocking call from a proc that is not running")
	}
	p.K.cur = nil
	p.K.handoff <- struct{}{}
	<-p.resume
	p.K.cur = p
	if p.killed {
		panic(procKilled{})
	}
}

// wakeAt schedules p to resume at time t.
func (p *Proc) wakeAt(t Time) {
	p.K.At(t, func() { p.K.schedule(p) })
}

// Sleep suspends the proc for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.wakeAt(p.K.now.Add(d))
	p.block()
}

// Yield reschedules the proc at the current time, after other pending events
// with the same timestamp.
func (p *Proc) Yield() { p.Sleep(0) }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.K.Now() }

// Kill terminates the proc the next time it would resume. A proc cannot kill
// itself; it should just return instead.
func (p *Proc) Kill() {
	if p.dead || p.killed {
		return
	}
	if p.K.cur == p {
		panic("sim: proc cannot Kill itself; return instead")
	}
	p.killed = true
	// Wake it so the kill panic unwinds it promptly. If it is currently
	// blocked on a Cond/Chan it will be resumed here; double resumes are
	// harmless because killed procs unwind immediately.
	p.wakeAt(p.K.now)
}

// Dead reports whether the proc has finished.
func (p *Proc) Dead() bool { return p.dead }

// Killed reports whether the proc was killed (it may not have unwound yet).
func (p *Proc) Killed() bool { return p.killed }

func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.Name) }

// Cond is a waiting list that procs can block on until signaled. Unlike
// sync.Cond there is no associated lock: the simulation is single-threaded,
// so state checked before Wait cannot change until the proc blocks.
type Cond struct {
	K       *Kernel
	waiters []*Proc
	// woken tracks procs resumed by Signal/Broadcast so WaitTimeout can
	// tell signals from timeouts.
	woken []*Proc
}

// NewCond returns a Cond bound to kernel k.
func NewCond(k *Kernel) *Cond { return &Cond{K: k} }

// Wait blocks p until Signal or Broadcast. Spurious wakeups do not occur,
// but callers typically still re-check their predicate in a loop because
// another woken proc may consume the state first.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.block()
	c.clearWoken(p)
}

// WaitTimeout blocks p until signaled or until d elapses. It reports whether
// the proc was signaled (false = timeout).
func (c *Cond) WaitTimeout(p *Proc, d time.Duration) bool {
	signaled := false
	c.waiters = append(c.waiters, p)
	timer := p.K.After(d, func() {
		// Remove p from the wait list and wake it.
		for i, w := range c.waiters {
			if w == p {
				c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
				p.wakeAt(p.K.now)
				return
			}
		}
	})
	p.block()
	// If we are no longer in the waiters list due to Signal, the timer may
	// still be pending; stop it. If the timer fired, Signal can no longer
	// find us. Either way this is safe.
	timer.Stop()
	// We were signaled iff the timer's removal path did not run. The removal
	// path only runs when p was still in waiters; Signal also removes us.
	// Disambiguate via the signaled flag set below by Signal.
	for _, w := range c.woken {
		if w == p {
			signaled = true
		}
	}
	c.clearWoken(p)
	return signaled
}

func (c *Cond) clearWoken(p *Proc) {
	for i, w := range c.woken {
		if w == p {
			c.woken = append(c.woken[:i], c.woken[i+1:]...)
			return
		}
	}
}

// Signal wakes the longest-waiting proc, if any.
func (c *Cond) Signal() {
	for len(c.waiters) > 0 {
		p := c.waiters[0]
		c.waiters = c.waiters[1:]
		if p.dead {
			continue
		}
		c.woken = append(c.woken, p)
		p.wakeAt(c.K.now)
		return
	}
}

// Broadcast wakes all waiting procs.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		if p.dead {
			continue
		}
		c.woken = append(c.woken, p)
		p.wakeAt(c.K.now)
	}
}
