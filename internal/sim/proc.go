package sim

import (
	"fmt"
	"time"
)

// Proc is a simulated thread of execution. Procs are backed by goroutines,
// but the kernel ensures at most one proc runs at a time: a proc only
// executes between a resume handoff from the kernel and its next blocking
// call (Sleep, Yield, Chan.Pop, Cond.Wait, ...), at which point it hands
// control back synchronously. This gives sequential, deterministic semantics
// while letting protocol code be written in a natural blocking style.
type Proc struct {
	K      *Kernel
	Name   string
	resume chan struct{}
	dead   bool
	killed bool

	// wakeFn is the proc's resume thunk, allocated once at spawn so that
	// Sleep/wake cycles schedule with zero allocations.
	wakeFn func()

	// Cond wait bookkeeping. A proc blocks on at most one Cond at a time,
	// so the per-wait state lives here instead of in per-wait heap nodes.
	// waitGen tags each wait; entries in a Cond's queue carry the tag, so
	// entries from an expired wait (timeout, kill) are recognized as stale
	// and skipped lazily — no O(n) removal, no retained "woken" list.
	waitGen      uint64
	waiting      bool
	waitWoken    bool
	waitSignaled bool
}

// Go spawns a new proc that starts executing at the current virtual time
// (after already-scheduled events at the same timestamp).
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	return k.GoAt(k.now, name, fn)
}

// GoAfter spawns a proc that starts after delay d.
func (k *Kernel) GoAfter(d time.Duration, name string, fn func(p *Proc)) *Proc {
	return k.GoAt(k.now.Add(d), name, fn)
}

// GoAt spawns a proc that starts at time t.
func (k *Kernel) GoAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{K: k, Name: name, resume: make(chan struct{})}
	p.wakeFn = func() { k.schedule(p) }
	k.procs++
	k.live[p] = struct{}{}
	go func() {
		<-p.resume // wait for first scheduling
		if !p.killed {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(procKilled); ok {
							return // Kill() unwound the proc
						}
						panic(r)
					}
				}()
				fn(p)
			}()
		}
		p.dead = true
		p.K.procs--
		delete(p.K.live, p)
		p.K.cur = nil
		p.K.handoff <- struct{}{}
	}()
	k.Schedule(t, p.wakeFn)
	return p
}

// procKilled is the panic payload used to unwind a killed proc.
type procKilled struct{}

// schedule transfers control from the kernel to p until p blocks or exits.
func (k *Kernel) schedule(p *Proc) {
	if p.dead {
		return
	}
	k.cur = p
	p.resume <- struct{}{}
	<-k.handoff
}

// block hands control back to the kernel; the proc stays suspended until
// something calls wake (via a scheduled event).
func (p *Proc) block() {
	if p.K.cur != p {
		panic("sim: blocking call from a proc that is not running")
	}
	p.K.cur = nil
	p.K.handoff <- struct{}{}
	<-p.resume
	p.K.cur = p
	if p.killed {
		panic(procKilled{})
	}
}

// wakeAt schedules p to resume at time t.
func (p *Proc) wakeAt(t Time) {
	p.K.Schedule(t, p.wakeFn)
}

// Sleep suspends the proc for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.wakeAt(p.K.now.Add(d))
	p.block()
}

// Yield reschedules the proc at the current time, after other pending events
// with the same timestamp.
func (p *Proc) Yield() { p.Sleep(0) }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.K.Now() }

// Kill terminates the proc the next time it would resume. A proc cannot kill
// itself; it should just return instead.
func (p *Proc) Kill() {
	if p.dead || p.killed {
		return
	}
	if p.K.cur == p {
		panic("sim: proc cannot Kill itself; return instead")
	}
	p.killed = true
	// Wake it so the kill panic unwinds it promptly. If it is currently
	// blocked on a Cond/Chan it will be resumed here; double resumes are
	// harmless because killed procs unwind immediately. Any Cond entry it
	// leaves behind is invalidated by bumping the wait generation.
	p.waitGen++
	p.waiting = false
	p.wakeAt(p.K.now)
}

// Dead reports whether the proc has finished.
func (p *Proc) Dead() bool { return p.dead }

// Killed reports whether the proc was killed (it may not have unwound yet).
func (p *Proc) Killed() bool { return p.killed }

func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.Name) }

// beginWait opens a Cond wait and returns its generation tag.
func (p *Proc) beginWait() uint64 {
	p.waitGen++
	p.waiting = true
	p.waitWoken = false
	p.waitSignaled = false
	return p.waitGen
}

// endWait closes the wait and reports whether it ended by Signal/Broadcast
// (false = timeout). Closing bumps nothing: the generation only advances on
// the next beginWait, and stale queue entries are skipped via !waiting.
func (p *Proc) endWait() bool {
	p.waiting = false
	return p.waitSignaled
}

// waitActive reports whether p is still blocked in the wait tagged gen and
// has not yet been woken by anyone (signal or timeout).
func (p *Proc) waitActive(gen uint64) bool {
	return p.waiting && p.waitGen == gen && !p.waitWoken &&
		!p.dead && !p.killed
}

// Cond is a waiting list that procs can block on until signaled. Unlike
// sync.Cond there is no associated lock: the simulation is single-threaded,
// so state checked before Wait cannot change until the proc blocks.
//
// The queue uses lazy deletion: a wait that ends by timeout or kill leaves
// its entry behind, tagged with a generation that no longer matches, and
// Signal/Broadcast skip such entries when they surface. This makes the
// timeout path O(1) and leaves no per-Cond bookkeeping behind for procs
// that never wait again.
//
// The queue is consumed through a head index rather than re-slicing, so the
// backing array survives drain/refill cycles and steady-state Wait/Signal
// traffic never allocates.
type Cond struct {
	K       *Kernel
	head    int
	waiters []condEntry
}

// condEntry is one queued wait; gen guards against the proc having since
// timed out, been killed, or started a different wait.
type condEntry struct {
	p   *Proc
	gen uint64
}

// NewCond returns a Cond bound to kernel k.
func NewCond(k *Kernel) *Cond { return &Cond{K: k} }

// enqueue appends a wait entry, first compacting a fully-consumed queue so
// the append reuses the existing backing array.
func (c *Cond) enqueue(e condEntry) {
	if c.head > 0 && c.head == len(c.waiters) {
		c.waiters = c.waiters[:0]
		c.head = 0
	}
	c.waiters = append(c.waiters, e)
}

// dequeue pops the head entry; ok is false when the queue is empty.
func (c *Cond) dequeue() (e condEntry, ok bool) {
	if c.head == len(c.waiters) {
		return condEntry{}, false
	}
	e = c.waiters[c.head]
	c.waiters[c.head] = condEntry{} // drop the proc reference
	c.head++
	if c.head == len(c.waiters) {
		c.waiters = c.waiters[:0]
		c.head = 0
	}
	return e, true
}

// Wait blocks p until Signal or Broadcast. Spurious wakeups do not occur,
// but callers typically still re-check their predicate in a loop because
// another woken proc may consume the state first.
func (c *Cond) Wait(p *Proc) {
	gen := p.beginWait()
	c.enqueue(condEntry{p, gen})
	p.block()
	p.endWait()
}

// WaitTimeout blocks p until signaled or until d elapses. It reports whether
// the proc was signaled (false = timeout).
func (c *Cond) WaitTimeout(p *Proc, d time.Duration) bool {
	gen := p.beginWait()
	c.enqueue(condEntry{p, gen})
	p.K.AfterFunc(d, func() {
		// Fires for every timed wait; a no-op unless p is still blocked
		// in this exact wait and unsignaled. The queue entry is left for
		// Signal to skip lazily.
		if p.waitActive(gen) {
			p.waitWoken = true
			p.wakeAt(p.K.now)
		}
	})
	p.block()
	return p.endWait()
}

// Signal wakes the longest-waiting proc, if any.
func (c *Cond) Signal() {
	for {
		e, ok := c.dequeue()
		if !ok {
			return
		}
		if !e.p.waitActive(e.gen) {
			continue // stale: timed out, killed, dead, or a later wait
		}
		e.p.waitWoken = true
		e.p.waitSignaled = true
		e.p.wakeAt(c.K.now)
		return
	}
}

// Broadcast wakes all waiting procs. Waking only schedules resume events —
// no proc runs inside the loop — so nothing can enqueue while it drains.
func (c *Cond) Broadcast() {
	for {
		e, ok := c.dequeue()
		if !ok {
			return
		}
		if !e.p.waitActive(e.gen) {
			continue
		}
		e.p.waitWoken = true
		e.p.waitSignaled = true
		e.p.wakeAt(c.K.now)
	}
}
