package sim

import (
	"testing"
	"time"
)

// BenchmarkKernelEvents measures raw event dispatch throughput — the floor
// under every experiment's wall-clock time.
func BenchmarkKernelEvents(b *testing.B) {
	k := New()
	b.ReportAllocs()
	n := 0
	var reschedule func()
	reschedule = func() {
		n++
		if n < b.N {
			k.After(time.Microsecond, reschedule)
		}
	}
	k.After(time.Microsecond, reschedule)
	b.ResetTimer()
	k.Run()
}

// BenchmarkProcSwitch measures a full proc sleep/wake round trip (two
// goroutine handoffs per iteration).
func BenchmarkProcSwitch(b *testing.B) {
	k := New()
	b.ReportAllocs()
	k.Go("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkResourceReserve measures the FIFO resource hot path.
func BenchmarkResourceReserve(b *testing.B) {
	k := New()
	r := NewResource(k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reserve(time.Nanosecond)
	}
}

// BenchmarkChanPushPop measures the proc queue hot path.
func BenchmarkChanPushPop(b *testing.B) {
	k := New()
	c := NewChan[int](k)
	b.ReportAllocs()
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Pop(p)
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Push(i)
			p.Yield()
		}
	})
	b.ResetTimer()
	k.Run()
}
