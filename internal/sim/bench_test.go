package sim

import (
	"testing"
	"time"
)

// BenchmarkKernelEvents measures raw event dispatch throughput on the
// allocation-free AfterFunc path — the floor under every experiment's
// wall-clock time. The event free list makes this 0 allocs/op.
func BenchmarkKernelEvents(b *testing.B) {
	k := New()
	b.ReportAllocs()
	n := 0
	var reschedule func()
	reschedule = func() {
		n++
		if n < b.N {
			k.AfterFunc(time.Microsecond, reschedule)
		}
	}
	k.AfterFunc(time.Microsecond, reschedule)
	b.ResetTimer()
	k.Run()
}

// BenchmarkKernelEventsDeep measures dispatch with 4096 events live in the
// heap — the regime the heap arity was chosen on. Each fired event
// reschedules itself at a varied offset so the sift paths see real churn
// (a singleton heap never exercises them).
func BenchmarkKernelEventsDeep(b *testing.B) {
	const depth = 4096
	k := New()
	b.ReportAllocs()
	n := 0
	fns := make([]func(), depth)
	for i := 0; i < depth; i++ {
		// Offsets vary per slot and per firing so the heap keeps mixing.
		slot := i
		fns[i] = func() {
			n++
			if n < b.N {
				k.AfterFunc(time.Duration(1+(slot*2654435761+n)%1024)*time.Nanosecond, fns[slot])
			}
		}
		k.AfterFunc(time.Duration(1+slot)*time.Nanosecond, fns[i])
	}
	b.ResetTimer()
	k.Run()
}

// BenchmarkKernelEventsTimer is the same loop via After, which returns a
// cancel handle: the one remaining alloc/op is the Timer itself. Callers
// that discard the handle should use AfterFunc (see BenchmarkKernelEvents).
func BenchmarkKernelEventsTimer(b *testing.B) {
	k := New()
	b.ReportAllocs()
	n := 0
	var reschedule func()
	reschedule = func() {
		n++
		if n < b.N {
			k.After(time.Microsecond, reschedule)
		}
	}
	k.After(time.Microsecond, reschedule)
	b.ResetTimer()
	k.Run()
}

// BenchmarkTimerCancel measures the schedule+Stop cycle: the canceled event
// is lazily deleted when it surfaces, then recycled through the free list.
func BenchmarkTimerCancel(b *testing.B) {
	k := New()
	b.ReportAllocs()
	n := 0
	var reschedule func()
	reschedule = func() {
		n++
		if n < b.N {
			// A decoy timer that is always canceled before it fires:
			// each iteration exercises push, Stop, lazy deletion, and
			// free-list recycling.
			decoy := k.After(time.Millisecond, func() { b.Fatal("canceled timer fired") })
			k.AfterFunc(time.Microsecond, reschedule)
			decoy.Stop()
		}
	}
	k.AfterFunc(time.Microsecond, reschedule)
	b.ResetTimer()
	k.Run()
	if pending := k.Pending(); pending != 0 {
		b.Fatalf("live events left after run: %d", pending)
	}
}

// BenchmarkProcSwitch measures a full proc sleep/wake round trip (two
// goroutine handoffs per iteration). The cached per-proc wake thunk makes
// the scheduling half 0 allocs/op.
func BenchmarkProcSwitch(b *testing.B) {
	k := New()
	b.ReportAllocs()
	k.Go("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkResourceReserve measures the FIFO resource hot path.
func BenchmarkResourceReserve(b *testing.B) {
	k := New()
	r := NewResource(k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reserve(time.Nanosecond)
	}
}

// BenchmarkChanPushPop measures the proc queue hot path.
func BenchmarkChanPushPop(b *testing.B) {
	k := New()
	c := NewChan[int](k)
	b.ReportAllocs()
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Pop(p)
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Push(i)
			p.Yield()
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkCondSignalTimeout measures the WaitTimeout signal path: the lazy
// wait-queue must not accumulate stale entries across iterations.
func BenchmarkCondSignalTimeout(b *testing.B) {
	k := New()
	c := NewCond(k)
	b.ReportAllocs()
	k.Go("waiter", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if !c.WaitTimeout(p, time.Millisecond) {
				b.Fatal("timed out under steady signaling")
			}
		}
	})
	k.Go("signaler", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Signal()
			p.Yield()
		}
	})
	b.ResetTimer()
	k.Run()
	if n := len(c.waiters); n != 0 {
		b.Fatalf("stale cond entries left: %d", n)
	}
}
