package sim

import "time"

// Resource models a serially-shared device with a FIFO service discipline,
// such as a memory controller, a DMA engine, or a network link direction.
// Each use occupies the resource for a duration derived from a base latency
// plus a size-proportional bandwidth term; concurrent users queue.
//
// Resource does not block procs itself: Reserve returns the completion time
// so callers can either sleep until it (synchronous use) or schedule an
// event at it (asynchronous use). This keeps the model composable: a single
// operation often traverses several resources.
type Resource struct {
	k *Kernel
	// nextFree is the earliest time a new request can start service.
	nextFree Time
	// busy accumulates total busy time for utilization accounting.
	busy time.Duration
}

// NewResource returns an idle resource.
func NewResource(k *Kernel) *Resource { return &Resource{k: k} }

// Reserve queues a request of the given service duration and returns the
// time at which it completes.
func (r *Resource) Reserve(service time.Duration) Time {
	if service < 0 {
		service = 0
	}
	start := r.k.Now()
	if r.nextFree > start {
		start = r.nextFree
	}
	end := start.Add(service)
	r.nextFree = end
	r.busy += service
	return end
}

// ReserveAt is like Reserve but for a request arriving at time at (>= now).
func (r *Resource) ReserveAt(at Time, service time.Duration) Time {
	if service < 0 {
		service = 0
	}
	start := at
	if r.nextFree > start {
		start = r.nextFree
	}
	end := start.Add(service)
	r.nextFree = end
	r.busy += service
	return end
}

// Use reserves the resource and sleeps p until the request completes.
func (r *Resource) Use(p *Proc, service time.Duration) {
	end := r.Reserve(service)
	p.Sleep(end.Sub(p.K.Now()))
}

// BusyTime returns the cumulative busy time.
func (r *Resource) BusyTime() time.Duration { return r.busy }

// NextFree returns the earliest service start time for a new request.
func (r *Resource) NextFree() Time { return r.nextFree }

// Reset clears queueing state (used when a crashed device restarts).
func (r *Resource) Reset() { r.nextFree = r.k.Now() }

// CostModel converts a payload size to a service time using a base latency
// plus a bandwidth term. A zero-valued CostModel costs nothing.
type CostModel struct {
	// Base is the fixed per-operation latency.
	Base time.Duration
	// BytesPerSec is the throughput of the size-dependent part;
	// zero means the size-dependent part is free.
	BytesPerSec float64
}

// Cost returns the service time for n bytes.
func (c CostModel) Cost(n int) time.Duration {
	d := c.Base
	if c.BytesPerSec > 0 && n > 0 {
		d += time.Duration(float64(n) / c.BytesPerSec * 1e9)
	}
	return d
}

// Mutex is a FIFO mutual-exclusion lock for procs.
type Mutex struct {
	k      *Kernel
	locked bool
	cond   Cond
}

// NewMutex returns an unlocked mutex.
func NewMutex(k *Kernel) *Mutex {
	m := &Mutex{k: k}
	m.cond.K = k
	return m
}

// Lock blocks p until the mutex is acquired.
func (m *Mutex) Lock(p *Proc) {
	for m.locked {
		m.cond.Wait(p)
	}
	m.locked = true
}

// Unlock releases the mutex and wakes one waiter.
func (m *Mutex) Unlock() {
	if !m.locked {
		panic("sim: unlock of unlocked mutex")
	}
	m.locked = false
	m.cond.Signal()
}
