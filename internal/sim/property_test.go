package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// Property: a Resource services requests FIFO with no overlap and no gaps
// while backlogged — completion times are non-decreasing and each request's
// service time is fully accounted.
func TestResourceFIFOProperty(t *testing.T) {
	f := func(arrivalGaps []uint8, services []uint8) bool {
		if len(arrivalGaps) == 0 || len(services) == 0 {
			return true
		}
		k := New()
		r := NewResource(k)
		var completions []Time
		var totalService time.Duration
		at := Time(0)
		n := len(arrivalGaps)
		if len(services) < n {
			n = len(services)
		}
		for i := 0; i < n; i++ {
			at = at.Add(time.Duration(arrivalGaps[i]) * time.Microsecond)
			svc := time.Duration(services[i]%50+1) * time.Microsecond
			totalService += svc
			completions = append(completions, r.ReserveAt(at, svc))
		}
		prev := Time(-1)
		for _, c := range completions {
			if c < prev {
				return false // FIFO violated
			}
			prev = c
		}
		// The last completion is at least the total service time (no
		// overlap) and the busy-time accounting is exact.
		if completions[len(completions)-1] < Time(totalService) {
			return false
		}
		return r.BusyTime() == totalService
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: proc wakeups honor virtual time — a proc sleeping d always
// resumes exactly d later, regardless of how many other procs run.
func TestProcSleepExactProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 || len(delays) > 64 {
			return true
		}
		k := New()
		ok := true
		for _, d := range delays {
			d := time.Duration(d) * time.Nanosecond
			k.Go("p", func(p *Proc) {
				start := p.Now()
				p.Sleep(d)
				if p.Now().Sub(start) != d {
					ok = false
				}
			})
		}
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Chan preserves FIFO under arbitrary producer/consumer timing.
func TestChanFIFOProperty(t *testing.T) {
	f := func(gaps []uint8) bool {
		if len(gaps) == 0 || len(gaps) > 100 {
			return true
		}
		k := New()
		c := NewChan[int](k)
		var got []int
		k.Go("consumer", func(p *Proc) {
			for i := 0; i < len(gaps); i++ {
				got = append(got, c.Pop(p))
			}
		})
		k.Go("producer", func(p *Proc) {
			for i, g := range gaps {
				p.Sleep(time.Duration(g) * time.Nanosecond)
				c.Push(i)
			}
		})
		k.Run()
		if len(got) != len(gaps) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
