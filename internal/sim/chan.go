package sim

import "time"

// Chan is an unbounded FIFO queue that procs can block on. It is the
// simulation analogue of a Go channel: Push never blocks (queues are
// unbounded; back-pressure is modelled explicitly where the paper models
// it), Pop blocks the calling proc until an item is available.
//
// The queue is consumed through a head index (like Cond's waiter list) so
// the backing array survives drain/refill cycles: steady-state Push/Pop
// traffic reuses capacity instead of allocating. The Cond is embedded by
// value — a Chan is one heap object, not two.
type Chan[T any] struct {
	k     *Kernel
	head  int
	items []T
	cond  Cond
}

// NewChan returns an empty queue bound to kernel k.
func NewChan[T any](k *Kernel) *Chan[T] {
	c := &Chan[T]{k: k}
	c.cond.K = k
	return c
}

// Push appends v and wakes one waiting proc.
func (c *Chan[T]) Push(v T) {
	if c.head > 0 && c.head == len(c.items) {
		c.items = c.items[:0]
		c.head = 0
	}
	c.items = append(c.items, v)
	c.cond.Signal()
}

// popFront removes and returns the head item; the queue must be non-empty.
func (c *Chan[T]) popFront() T {
	v := c.items[c.head]
	var zero T
	c.items[c.head] = zero // drop the reference for GC
	c.head++
	if c.head == len(c.items) {
		c.items = c.items[:0]
		c.head = 0
	}
	return v
}

// Pop removes and returns the head item, blocking p until one is available.
func (c *Chan[T]) Pop(p *Proc) T {
	for c.Len() == 0 {
		c.cond.Wait(p)
	}
	return c.popFront()
}

// PopTimeout is like Pop but gives up after d. ok is false on timeout.
func (c *Chan[T]) PopTimeout(p *Proc, d time.Duration) (v T, ok bool) {
	deadline := p.K.Now().Add(d)
	for c.Len() == 0 {
		remain := deadline.Sub(p.K.Now())
		if remain <= 0 {
			return v, false
		}
		if !c.cond.WaitTimeout(p, remain) && c.Len() == 0 {
			return v, false
		}
	}
	return c.popFront(), true
}

// TryPop removes and returns the head item without blocking.
func (c *Chan[T]) TryPop() (v T, ok bool) {
	if c.Len() == 0 {
		return v, false
	}
	return c.popFront(), true
}

// Len returns the number of queued items.
func (c *Chan[T]) Len() int { return len(c.items) - c.head }

// Drain removes and returns all queued items.
func (c *Chan[T]) Drain() []T {
	out := c.items[c.head:]
	c.items = nil
	c.head = 0
	return out
}

// Future is a one-shot completion carrying a value of type T. It is used
// for work completions: the producer calls Complete once, any number of
// procs may Wait. The Cond is embedded by value and the first Then callback
// lives in an inline slot, so the common RPC round trip (one future, one
// completion callback) costs a single allocation.
type Future[T any] struct {
	k     *Kernel
	done  bool
	val   T
	cond  Cond
	then0 func(T)
	then  []func(T)
}

// NewFuture returns an incomplete future.
func NewFuture[T any](k *Kernel) *Future[T] {
	f := &Future[T]{k: k}
	f.cond.K = k
	return f
}

// Complete resolves the future. Completing twice panics: completions in the
// models are unique events and a double completion is a protocol bug.
func (f *Future[T]) Complete(v T) {
	if f.done {
		panic("sim: future completed twice")
	}
	f.done = true
	f.val = v
	f.cond.Broadcast()
	if fn := f.then0; fn != nil {
		f.then0 = nil
		fn(v)
	}
	for _, fn := range f.then {
		fn(v)
	}
	f.then = nil
}

// Then registers fn to run (at the completion event's virtual time) when the
// future resolves; if it already has, fn runs immediately.
func (f *Future[T]) Then(fn func(T)) {
	if f.done {
		fn(f.val)
		return
	}
	if f.then0 == nil && len(f.then) == 0 {
		f.then0 = fn
		return
	}
	f.then = append(f.then, fn)
}

// Done reports whether the future has resolved.
func (f *Future[T]) Done() bool { return f.done }

// Value returns the resolved value; valid only after Done.
func (f *Future[T]) Value() T { return f.val }

// Wait blocks p until the future resolves and returns its value.
func (f *Future[T]) Wait(p *Proc) T {
	for !f.done {
		f.cond.Wait(p)
	}
	return f.val
}

// WaitTimeout blocks p until the future resolves or d elapses. ok reports
// whether the future resolved.
func (f *Future[T]) WaitTimeout(p *Proc, d time.Duration) (v T, ok bool) {
	deadline := p.K.Now().Add(d)
	for !f.done {
		remain := deadline.Sub(p.K.Now())
		if remain <= 0 {
			return v, false
		}
		if !f.cond.WaitTimeout(p, remain) && !f.done {
			return v, false
		}
	}
	return f.val, true
}

// WaitGroup counts outstanding work items for procs.
type WaitGroup struct {
	k    *Kernel
	n    int
	cond Cond
}

// NewWaitGroup returns a WaitGroup bound to kernel k.
func NewWaitGroup(k *Kernel) *WaitGroup {
	w := &WaitGroup{k: k}
	w.cond.K = k
	return w
}

// Add increments the counter by delta.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.cond.Broadcast()
	}
}

// Done decrements the counter.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks p until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.n != 0 {
		w.cond.Wait(p)
	}
}
